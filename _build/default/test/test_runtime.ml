(* Tests for the distributed runtime: threading and placement, migration,
   channels, Darc/Datomic/Dmutex, the global controller, and the
   fault-tolerance (replication) layer. *)

module Engine = Drust_sim.Engine
module Cluster = Drust_machine.Cluster
module Params = Drust_machine.Params
module Ctx = Drust_machine.Ctx
module Dthread = Drust_runtime.Dthread
module Channel = Drust_runtime.Channel
module Darc = Drust_runtime.Darc
module Datomic = Drust_runtime.Datomic
module Dmutex = Drust_runtime.Dmutex
module Controller = Drust_runtime.Controller
module Replication = Drust_runtime.Replication
module Registry = Drust_runtime.Registry
module P = Drust_core.Protocol
module Univ = Drust_util.Univ

let int_tag : int Univ.tag = Univ.create_tag ~name:"rt.int"
let pack = Univ.pack int_tag
let unpack v = Univ.unpack_exn int_tag v

let small_params nodes =
  {
    Params.default with
    Params.nodes;
    cores_per_node = 4;
    mem_per_node = Drust_util.Units.mib 64;
  }

let in_cluster ?(nodes = 4) body =
  let cluster = Cluster.create (small_params nodes) in
  let result = ref None in
  ignore
    (Engine.spawn (Cluster.engine cluster) (fun () ->
         let ctx = Ctx.make cluster ~node:0 in
         result := Some (body cluster ctx)));
  Cluster.run cluster;
  match !result with Some v -> v | None -> Alcotest.fail "body did not run"

(* ------------------------------------------------------------------ *)
(* Threads *)

let test_spawn_runs_on_node () =
  in_cluster (fun _cluster ctx ->
      let where = ref (-1) in
      let h = Dthread.spawn_on ctx ~node:2 (fun w -> where := w.Ctx.node) in
      Dthread.join ctx h;
      Alcotest.(check int) "ran on 2" 2 !where)

let test_spawn_prefers_local () =
  in_cluster (fun _cluster ctx ->
      let where = ref (-1) in
      let h = Dthread.spawn ctx (fun w -> where := w.Ctx.node) in
      Dthread.join ctx h;
      Alcotest.(check int) "local node" 0 !where)

let test_spawn_overflows_when_saturated () =
  (* Saturate node 0's cores with long-running threads; further spawns
     must land elsewhere. *)
  in_cluster (fun _cluster ctx ->
      let hogs =
        List.init 4 (fun _ ->
            Dthread.spawn_on ctx ~node:0 (fun w ->
                Ctx.compute w ~cycles:5_000_000.0))
      in
      Engine.delay (Ctx.engine ctx) 1e-6;
      let where = ref (-1) in
      let h = Dthread.spawn ctx (fun w -> where := w.Ctx.node) in
      Dthread.join ctx h;
      Dthread.join_all ctx hogs;
      Alcotest.(check bool) "moved off node 0" true (!where <> 0))

let test_spawn_to_follows_data () =
  in_cluster (fun _cluster ctx ->
      let o = P.create_on ctx ~node:3 ~size:64 (pack 1) in
      let where = ref (-1) in
      let h = Dthread.spawn_to ctx o (fun w -> where := w.Ctx.node) in
      Dthread.join ctx h;
      Alcotest.(check int) "placed with data" 3 !where)

let test_join_all () =
  in_cluster (fun _cluster ctx ->
      let counter = ref 0 in
      let hs =
        List.init 10 (fun i ->
            Dthread.spawn_on ctx ~node:(i mod 4) (fun w ->
                Ctx.compute w ~cycles:1000.0;
                incr counter))
      in
      Dthread.join_all ctx hs;
      Alcotest.(check int) "all ran" 10 !counter)

let test_remote_spawn_costs_time () =
  in_cluster (fun cluster ctx ->
      let t0 = Engine.now (Cluster.engine cluster) in
      let h = Dthread.spawn_on ctx ~node:1 (fun _ -> ()) in
      Dthread.join ctx h;
      Alcotest.(check bool) "RPC time charged" true
        (Engine.now (Cluster.engine cluster) -. t0 > 5e-6))

(* ------------------------------------------------------------------ *)
(* Migration *)

let test_migrate_now () =
  in_cluster (fun _cluster ctx ->
      let h =
        Dthread.spawn_on ctx ~node:0 (fun w ->
            let latency = Dthread.migrate_now w ~target:2 in
            Alcotest.(check int) "context moved" 2 w.Ctx.node;
            (* Stack copy dominates: ~1 MiB at 5 GB/s plus control. *)
            Alcotest.(check bool) "latency in the 100us..1ms band" true
              (latency > 100e-6 && latency < 1e-3))
      in
      Dthread.join ctx h;
      Alcotest.(check int) "handle agrees" 2 (Dthread.node_of h))

let test_migration_stats_recorded () =
  let cluster = Cluster.create (small_params 4) in
  ignore
    (Engine.spawn (Cluster.engine cluster) (fun () ->
         let ctx = Ctx.make cluster ~node:0 in
         let hs =
           List.init 5 (fun _ ->
               Dthread.spawn_on ctx ~node:0 (fun w ->
                   ignore (Dthread.migrate_now w ~target:1)))
         in
         Dthread.join_all ctx hs));
  Cluster.run cluster;
  let stats = Dthread.migration_latency_stats cluster in
  Alcotest.(check int) "five migrations" 5 (Drust_util.Stats.count stats)

let test_controller_orders_migration_on_cpu_pressure () =
  let cluster = Cluster.create (small_params 4) in
  let controller = Controller.start ~probe_interval:0.2e-3 cluster in
  ignore
    (Engine.spawn (Cluster.engine cluster) (fun () ->
         let ctx = Ctx.make cluster ~node:0 in
         (* Overload node 0 with threads that also touch node 1's data so
            the policy has a preferred target. *)
         let o = P.create_on ctx ~node:1 ~size:64 (pack 0) in
         let hs =
           List.init 12 (fun _ ->
               Dthread.spawn_on ctx ~node:0 (fun w ->
                   for _ = 1 to 30 do
                     let r = P.borrow_imm w o in
                     ignore (P.imm_deref w r);
                     P.drop_imm w r;
                     Ctx.compute w ~cycles:500_000.0
                   done))
         in
         Dthread.join_all ctx hs;
         P.drop_owner ctx o;
         Controller.stop controller));
  Cluster.run cluster;
  Alcotest.(check bool) "controller migrated threads" true
    (Controller.migrations_ordered controller > 0);
  Alcotest.(check bool) "probes ran" true (Controller.probes_performed controller > 0)

let test_controller_memory_pressure_policy () =
  (* A node with a small heap fills up; the controller must move the
     heaviest allocator away. *)
  let params =
    { (small_params 4) with Params.mem_per_node = Drust_util.Units.kib 256 }
  in
  let cluster = Cluster.create params in
  let controller = Controller.start ~probe_interval:0.2e-3 cluster in
  ignore
    (Engine.spawn (Cluster.engine cluster) (fun () ->
         let ctx = Ctx.make cluster ~node:0 in
         let hs =
           List.init 3 (fun _ ->
               Dthread.spawn_on ctx ~node:0 (fun w ->
                   (* Allocate ~80 KiB each, slowly, so probes see the
                      pressure build. *)
                   for _ = 1 to 20 do
                     ignore (P.create w ~size:4096 (pack 0));
                     Ctx.compute w ~cycles:300_000.0
                   done))
         in
         Dthread.join_all ctx hs;
         Controller.stop controller));
  Cluster.run cluster;
  Alcotest.(check bool) "memory pressure triggered migrations" true
    (Controller.migrations_ordered controller > 0)

let test_await_yields_and_migrates () =
  in_cluster (fun _cluster ctx ->
      let h =
        Dthread.spawn_on ctx ~node:0 (fun w ->
            (* Order a migration, then hit an await: it must execute. *)
            Ctx.compute w ~cycles:10_000.0;
            Dthread.await w;
            Ctx.compute w ~cycles:10_000.0)
      in
      Engine.delay (Ctx.engine ctx) 1e-7;
      (match Registry.threads_on (Ctx.cluster ctx) ~node:0 with
      | r :: _ -> Registry.order_migration r ~target:3
      | [] -> Alcotest.fail "thread not registered");
      Dthread.join ctx h;
      Alcotest.(check int) "migrated at await" 3 (Dthread.node_of h);
      Alcotest.(check int) "counted" 1 (Dthread.migrations_of h))

let test_registry_tracks_threads () =
  in_cluster (fun cluster ctx ->
      let before = List.length (Registry.live_threads cluster) in
      let h =
        Dthread.spawn_on ctx ~node:1 (fun w -> Ctx.compute w ~cycles:100_000.0)
      in
      Alcotest.(check int) "one more live" (before + 1)
        (List.length (Registry.live_threads cluster));
      Alcotest.(check int) "on node 1" 1
        (Registry.thread_count_on cluster ~node:1);
      Dthread.join ctx h;
      Alcotest.(check int) "unregistered" before
        (List.length (Registry.live_threads cluster)))

(* ------------------------------------------------------------------ *)
(* Channels *)

let test_channel_same_node () =
  in_cluster (fun _cluster ctx ->
      let tx, rx = Channel.create ctx in
      Channel.send ctx tx 42;
      Alcotest.(check int) "recv" 42 (Channel.recv ctx rx))

let test_channel_cross_node () =
  in_cluster (fun _cluster ctx ->
      let tx, rx = Channel.create ctx in
      let sender =
        Dthread.spawn_on ctx ~node:2 (fun w ->
            Channel.send w tx ~bytes:16 "hello")
      in
      let got = Channel.recv ctx rx in
      Dthread.join ctx sender;
      Alcotest.(check string) "crossed nodes" "hello" got)

let test_channel_fifo_per_sender () =
  in_cluster (fun _cluster ctx ->
      let tx, rx = Channel.create ctx in
      List.iter (Channel.send ctx tx) [ 1; 2; 3 ];
      (* Bind in order: list literals evaluate right to left. *)
      let a = Channel.recv ctx rx in
      let b = Channel.recv ctx rx in
      let c = Channel.recv ctx rx in
      Alcotest.(check (list int)) "order kept" [ 1; 2; 3 ] [ a; b; c ])

let test_channel_send_owner_transfers () =
  in_cluster (fun _cluster ctx ->
      let tx, rx = Channel.create ctx in
      let o = P.create ctx ~size:64 (pack 9) in
      let receiver =
        Dthread.spawn_on ctx ~node:1 (fun w ->
            (* Re-home the queue to node 1, then consume. *)
            let o' = Channel.recv w rx in
            Alcotest.(check int) "value survives transfer" 9
              (unpack (P.owner_read w o')))
      in
      Engine.delay (Ctx.engine ctx) 1e-4;
      Channel.send_owner ctx tx o o;
      Dthread.join ctx receiver)

(* ------------------------------------------------------------------ *)
(* Darc / Datomic / Dmutex *)

let test_darc_clone_and_count () =
  in_cluster (fun _cluster ctx ->
      let a = Darc.create ctx ~size:128 (pack 7) in
      let b = Darc.clone ctx a in
      Alcotest.(check int) "count 2" 2 (Darc.strong_count ctx a);
      Alcotest.(check int) "read via clone" 7 (unpack (Darc.get ctx b));
      Darc.drop ctx b;
      Alcotest.(check int) "count 1" 1 (Darc.strong_count ctx a);
      Darc.drop ctx a)

let test_darc_remote_get_caches () =
  in_cluster (fun cluster ctx ->
      let a = Darc.create ctx ~size:128 (pack 5) in
      let h =
        Dthread.spawn_on ctx ~node:2 (fun w ->
            Alcotest.(check int) "remote read" 5 (unpack (Darc.get w a));
            let t0 = Engine.now (Cluster.engine cluster) in
            Ctx.flush w;
            ignore (Darc.get w a);
            Ctx.flush w;
            let dt = Engine.now (Cluster.engine cluster) -. t0 in
            Alcotest.(check bool) "second read is cached (fast)" true (dt < 2e-6))
      in
      Dthread.join ctx h;
      Darc.drop ctx a)

let test_darc_last_drop_frees () =
  in_cluster (fun cluster ctx ->
      let a = Darc.create ctx ~size:64 (pack 1) in
      let g = Darc.home a in
      ignore g;
      Darc.drop ctx a;
      Alcotest.(check bool) "reuse raises" true
        (try
           ignore (Darc.get ctx a);
           false
         with Invalid_argument _ -> true);
      ignore cluster)

let test_datomic_ops () =
  in_cluster (fun _cluster ctx ->
      let a = Datomic.create ctx 10 in
      Alcotest.(check int) "load" 10 (Datomic.load ctx a);
      Alcotest.(check int) "faa returns old" 10 (Datomic.fetch_add ctx a 5);
      Alcotest.(check int) "after faa" 15 (Datomic.load ctx a);
      Alcotest.(check bool) "cas hits" true
        (Datomic.compare_and_swap ctx a ~expected:15 ~desired:20);
      Alcotest.(check bool) "cas misses" false
        (Datomic.compare_and_swap ctx a ~expected:15 ~desired:30);
      Datomic.store ctx a 0;
      Alcotest.(check int) "store" 0 (Datomic.load ctx a);
      Datomic.free ctx a)

let test_datomic_remote_single_version () =
  in_cluster (fun _cluster ctx ->
      let a = Datomic.create ctx 0 in
      let hs =
        List.init 4 (fun i ->
            Dthread.spawn_on ctx ~node:i (fun w ->
                for _ = 1 to 25 do
                  ignore (Datomic.fetch_add w a 1)
                done))
      in
      Dthread.join_all ctx hs;
      Alcotest.(check int) "all increments serialized" 100 (Datomic.load ctx a);
      Datomic.free ctx a)

let test_dmutex_mutual_exclusion () =
  in_cluster (fun _cluster ctx ->
      let m = Dmutex.create ctx ~size:8 (pack 0) in
      let in_cs = ref 0 and max_in_cs = ref 0 and total = ref 0 in
      let hs =
        List.init 6 (fun i ->
            Dthread.spawn_on ctx ~node:(i mod 4) (fun w ->
                for _ = 1 to 10 do
                  Dmutex.lock w m;
                  incr in_cs;
                  max_in_cs := max !max_in_cs !in_cs;
                  Ctx.compute w ~cycles:2_000.0;
                  incr total;
                  decr in_cs;
                  Dmutex.unlock w m
                done))
      in
      Dthread.join_all ctx hs;
      Alcotest.(check int) "never two holders" 1 !max_in_cs;
      Alcotest.(check int) "all sections ran" 60 !total)

let test_dmutex_guarded_data () =
  in_cluster (fun _cluster ctx ->
      let m = Dmutex.create ctx ~size:8 (pack 0) in
      let hs =
        List.init 4 (fun i ->
            Dthread.spawn_on ctx ~node:i (fun w ->
                for _ = 1 to 10 do
                  Dmutex.with_lock w m (fun v -> (pack (unpack v + 1), ()))
                done))
      in
      Dthread.join_all ctx hs;
      Dmutex.lock ctx m;
      Alcotest.(check int) "counter consistent" 40 (unpack (Dmutex.read_guarded ctx m));
      Dmutex.unlock ctx m)

let test_dmutex_unlock_requires_holder () =
  in_cluster (fun _cluster ctx ->
      let m = Dmutex.create ctx ~size:8 (pack 0) in
      Alcotest.(check bool) "unheld unlock raises" true
        (try
           Dmutex.unlock ctx m;
           false
         with Invalid_argument _ -> true))

(* ------------------------------------------------------------------ *)
(* Drc (single-thread Rc) and scoped threads *)

module Drc = Drust_runtime.Drc

let test_drc_same_thread () =
  in_cluster (fun _ ctx ->
      let a = Drc.create ctx ~size:64 (pack 3) in
      let b = Drc.clone ctx a in
      Alcotest.(check int) "count" 2 (Drc.strong_count a);
      Alcotest.(check int) "read" 3 (unpack (Drc.get ctx b));
      Drc.drop ctx a;
      Alcotest.(check int) "count after drop" 1 (Drc.strong_count b);
      Drc.drop ctx b;
      Alcotest.(check bool) "freed handle unusable" true
        (try
           ignore (Drc.get ctx b);
           false
         with Invalid_argument _ -> true))

let test_drc_cross_thread_rejected () =
  in_cluster (fun _ ctx ->
      let a = Drc.create ctx ~size:64 (pack 1) in
      let h =
        Dthread.spawn_on ctx ~node:1 (fun w ->
            Alcotest.(check bool) "clone from other thread" true
              (try
                 ignore (Drc.clone w a);
                 false
               with Drc.Cross_thread _ -> true))
      in
      Dthread.join ctx h;
      Drc.drop ctx a)

let test_scope_joins_all () =
  in_cluster (fun _ ctx ->
      let finished = ref 0 in
      Dthread.scope ctx (fun s ->
          for i = 0 to 5 do
            ignore
              (Dthread.spawn_in s ~node:(i mod 4) (fun w ->
                   Ctx.compute w ~cycles:50_000.0;
                   incr finished))
          done);
      (* scope returns only after every scoped thread finished. *)
      Alcotest.(check int) "all joined" 6 !finished)

let test_scope_joins_on_exception () =
  in_cluster (fun _ ctx ->
      let finished = ref 0 in
      (try
         Dthread.scope ctx (fun s ->
             ignore
               (Dthread.spawn_in s (fun w ->
                    Ctx.compute w ~cycles:100_000.0;
                    incr finished));
             failwith "scope body failed")
       with Failure _ -> ());
      Alcotest.(check int) "joined despite exception" 1 !finished)

(* ------------------------------------------------------------------ *)
(* Replication / fault tolerance *)

let test_replication_snapshot_and_writeback () =
  in_cluster (fun cluster ctx ->
      let o = P.create_on ctx ~node:1 ~size:64 (pack 1) in
      let r = Replication.enable cluster in
      (* Mutate, then transfer ownership: the transfer must flush the
         batched write-back. *)
      let m = P.borrow_mut ctx o in
      P.mut_write ctx m (pack 2);
      P.drop_mut ctx m;
      Alcotest.(check bool) "write batched" true (Replication.pending_writes r > 0);
      P.transfer ctx o ~to_node:2;
      Alcotest.(check int) "flushed on transfer" 0 (Replication.pending_writes r);
      Alcotest.(check bool) "write-back happened" true
        (Replication.writebacks_performed r > 0);
      Replication.disable r)

let test_replication_survives_failure () =
  in_cluster (fun cluster ctx ->
      (* Objects on node 1 before replication is enabled. *)
      let o1 = P.create_on ctx ~node:1 ~size:64 (pack 11) in
      let r = Replication.enable cluster in
      (* A post-enable write, escaped via ownership transfer. *)
      let m = P.borrow_mut ctx o1 in
      P.mut_write ctx m (pack 12);
      P.drop_mut ctx m;
      (* The write-back target must be node 1's range; the mutable borrow
         moved the object into node 0's partition, so give it back. *)
      P.transfer ctx o1 ~to_node:2;
      Replication.sync_now ctx r;
      (* Kill the node currently hosting the object. *)
      let victim =
        Cluster.serving_node cluster
          (Drust_memory.Gaddr.node_of (P.gaddr o1))
      in
      Replication.fail_and_promote ctx r ~node:victim;
      Alcotest.(check int) "promoted read sees committed value" 12
        (unpack (P.owner_read ctx o1));
      Replication.disable r)

let test_replication_unsynced_writes_lost () =
  in_cluster (fun cluster ctx ->
      let o = P.create_on ctx ~node:0 ~size:64 (pack 1) in
      let r = Replication.enable cluster in
      (* Move the object to node 1 via a writer there, committing 2. *)
      let h =
        Dthread.spawn_on ctx ~node:1 (fun w ->
            let m = P.borrow_mut w o in
            P.mut_write w m (pack 2);
            P.drop_mut w m)
      in
      Dthread.join ctx h;
      Replication.sync_now ctx r;
      (* A later write that never escapes node 1... *)
      let h2 =
        Dthread.spawn_on ctx ~node:1 (fun w ->
            let m = P.borrow_mut w o in
            P.mut_write w m (pack 3);
            P.drop_mut w m)
      in
      Dthread.join ctx h2;
      (* ...is lost when node 1 dies: the backup still has 2. *)
      Replication.fail_and_promote ctx r ~node:1;
      Alcotest.(check int) "rolls back to last escape" 2
        (unpack (P.owner_read ctx o));
      Replication.disable r)

let test_replication_two_failures_with_two_replicas () =
  in_cluster ~nodes:4 (fun cluster ctx ->
      let o = P.create_on ctx ~node:1 ~size:64 (pack 7) in
      let r = Replication.enable ~replicas:2 cluster in
      (* Kill node 1 (the home), then node 2 (the first backup): the
         second replica on node 3 must still serve the range. *)
      Replication.fail_and_promote ctx r ~node:1;
      Alcotest.(check int) "served by first backup" 2
        (Cluster.serving_node cluster 1);
      Alcotest.(check int) "value intact" 7 (unpack (P.owner_read ctx o));
      Replication.fail_and_promote ctx r ~node:2;
      Alcotest.(check int) "served by second backup" 3
        (Cluster.serving_node cluster 1);
      Alcotest.(check int) "value still intact" 7 (unpack (P.owner_read ctx o));
      Replication.disable r)

let test_backup_node_ring () =
  in_cluster (fun cluster _ctx ->
      let r = Replication.enable cluster in
      Alcotest.(check int) "ring" 1 (Replication.backup_node r 0);
      Alcotest.(check int) "wraps" 0 (Replication.backup_node r 3);
      Replication.disable r)

let () =
  Alcotest.run "runtime"
    [
      ( "threads",
        [
          Alcotest.test_case "spawn_on node" `Quick test_spawn_runs_on_node;
          Alcotest.test_case "spawn prefers local" `Quick test_spawn_prefers_local;
          Alcotest.test_case "spawn overflows" `Quick test_spawn_overflows_when_saturated;
          Alcotest.test_case "spawn_to data" `Quick test_spawn_to_follows_data;
          Alcotest.test_case "join_all" `Quick test_join_all;
          Alcotest.test_case "remote spawn cost" `Quick test_remote_spawn_costs_time;
        ] );
      ( "migration",
        [
          Alcotest.test_case "migrate_now" `Quick test_migrate_now;
          Alcotest.test_case "stats recorded" `Quick test_migration_stats_recorded;
          Alcotest.test_case "controller cpu policy" `Quick
            test_controller_orders_migration_on_cpu_pressure;
          Alcotest.test_case "controller memory policy" `Quick
            test_controller_memory_pressure_policy;
          Alcotest.test_case "await yields+migrates" `Quick test_await_yields_and_migrates;
          Alcotest.test_case "registry tracks" `Quick test_registry_tracks_threads;
        ] );
      ( "channels",
        [
          Alcotest.test_case "same node" `Quick test_channel_same_node;
          Alcotest.test_case "cross node" `Quick test_channel_cross_node;
          Alcotest.test_case "fifo" `Quick test_channel_fifo_per_sender;
          Alcotest.test_case "send_owner" `Quick test_channel_send_owner_transfers;
        ] );
      ( "shared-state",
        [
          Alcotest.test_case "darc clone/count" `Quick test_darc_clone_and_count;
          Alcotest.test_case "darc caches" `Quick test_darc_remote_get_caches;
          Alcotest.test_case "darc last drop" `Quick test_darc_last_drop_frees;
          Alcotest.test_case "datomic ops" `Quick test_datomic_ops;
          Alcotest.test_case "datomic single version" `Quick
            test_datomic_remote_single_version;
          Alcotest.test_case "dmutex exclusion" `Quick test_dmutex_mutual_exclusion;
          Alcotest.test_case "dmutex guarded" `Quick test_dmutex_guarded_data;
          Alcotest.test_case "dmutex misuse" `Quick test_dmutex_unlock_requires_holder;
        ] );
      ( "rc-and-scope",
        [
          Alcotest.test_case "drc same thread" `Quick test_drc_same_thread;
          Alcotest.test_case "drc cross thread" `Quick test_drc_cross_thread_rejected;
          Alcotest.test_case "scope joins all" `Quick test_scope_joins_all;
          Alcotest.test_case "scope joins on exception" `Quick
            test_scope_joins_on_exception;
        ] );
      ( "replication",
        [
          Alcotest.test_case "snapshot+writeback" `Quick
            test_replication_snapshot_and_writeback;
          Alcotest.test_case "survives failure" `Quick test_replication_survives_failure;
          Alcotest.test_case "unsynced lost" `Quick test_replication_unsynced_writes_lost;
          Alcotest.test_case "two failures, two replicas" `Quick
            test_replication_two_failures_with_two_replicas;
          Alcotest.test_case "backup ring" `Quick test_backup_node_ring;
        ] );
    ]
