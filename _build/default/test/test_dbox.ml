(* Tests for the typed public API (Dbox / Imm / Mut / Tbox) and the
   unsafe global-heap primitives (dalloc / dread / dwrite). *)

module Engine = Drust_sim.Engine
module Cluster = Drust_machine.Cluster
module Params = Drust_machine.Params
module Ctx = Drust_machine.Ctx
module Dbox = Drust_core.Dbox
module U = Drust_core.Unsafe_prims
module Univ = Drust_util.Univ
module B = Drust_ownership.Borrow_state

let int_tag : int Univ.tag = Univ.create_tag ~name:"dbox.int"
let str_tag : string Univ.tag = Univ.create_tag ~name:"dbox.str"

let small_params nodes =
  {
    Params.default with
    Params.nodes;
    cores_per_node = 4;
    mem_per_node = Drust_util.Units.mib 64;
  }

let in_cluster ?(nodes = 4) body =
  let cluster = Cluster.create (small_params nodes) in
  let result = ref None in
  ignore
    (Engine.spawn (Cluster.engine cluster) (fun () ->
         let ctx = Ctx.make cluster ~node:0 in
         result := Some (body cluster ctx)));
  Cluster.run cluster;
  match !result with Some v -> v | None -> Alcotest.fail "body did not run"

(* ------------------------------------------------------------------ *)
(* Dbox typed layer *)

let test_make_read_write () =
  in_cluster (fun _ ctx ->
      let b = Dbox.make ctx ~tag:int_tag ~size:8 41 in
      Alcotest.(check int) "read" 41 (Dbox.read ctx b);
      Dbox.write ctx b 42;
      Alcotest.(check int) "write" 42 (Dbox.read ctx b);
      Dbox.modify ctx b succ;
      Alcotest.(check int) "modify" 43 (Dbox.read ctx b);
      Dbox.drop ctx b)

let test_type_safety () =
  in_cluster (fun _ ctx ->
      (* Two boxes with different tags cannot be confused even though the
         heap stores untyped values. *)
      let a = Dbox.make ctx ~tag:int_tag ~size:8 1 in
      let s = Dbox.make ctx ~tag:str_tag ~size:16 "hi" in
      Alcotest.(check int) "int box" 1 (Dbox.read ctx a);
      Alcotest.(check string) "string box" "hi" (Dbox.read ctx s))

let test_scoped_borrows () =
  in_cluster (fun _ ctx ->
      let b = Dbox.make ctx ~tag:int_tag ~size:8 10 in
      let doubled = Dbox.with_borrow ctx b (fun v -> v * 2) in
      Alcotest.(check int) "scoped read" 20 doubled;
      let old = Dbox.with_borrow_mut ctx b (fun v -> (v + 5, v)) in
      Alcotest.(check int) "returned result" 10 old;
      Alcotest.(check int) "wrote through" 15 (Dbox.read ctx b))

let test_imm_refs_shared_across_nodes () =
  in_cluster (fun _ ctx ->
      let b = Dbox.make_on ctx ~node:1 ~tag:int_tag ~size:64 7 in
      let r1 = Dbox.Imm.borrow ctx b in
      let r2 = Dbox.Imm.clone ctx r1 in
      Alcotest.(check int) "r1" 7 (Dbox.Imm.deref ctx r1);
      Alcotest.(check int) "r2" 7 (Dbox.Imm.deref ctx r2);
      Dbox.Imm.drop ctx r1;
      Dbox.Imm.drop ctx r2;
      Dbox.write ctx b 8;
      Alcotest.(check int) "post-borrow write" 8 (Dbox.read ctx b))

let test_mut_ref_cycle () =
  in_cluster (fun _ ctx ->
      let b = Dbox.make ctx ~tag:int_tag ~size:8 0 in
      let m = Dbox.Mut.borrow ctx b in
      Alcotest.(check int) "deref" 0 (Dbox.Mut.deref ctx m);
      Dbox.Mut.write ctx m 9;
      Dbox.Mut.modify ctx m succ;
      Dbox.Mut.drop ctx m;
      Alcotest.(check int) "owner sees" 10 (Dbox.read ctx b))

let test_borrow_conflicts_raise () =
  in_cluster (fun _ ctx ->
      let b = Dbox.make ctx ~tag:int_tag ~size:8 0 in
      let r = Dbox.Imm.borrow ctx b in
      Alcotest.(check bool) "mut during imm" true
        (try
           ignore (Dbox.Mut.borrow ctx b);
           false
         with B.Violation _ -> true);
      Dbox.Imm.drop ctx r)

let test_transfer_and_exception_safety () =
  in_cluster (fun _ ctx ->
      let b = Dbox.make ctx ~tag:int_tag ~size:8 1 in
      (* Exceptions inside scoped borrows release them. *)
      (try Dbox.with_borrow ctx b (fun _ -> failwith "x") with Failure _ -> ());
      (try Dbox.with_borrow_mut ctx b (fun _ -> failwith "x") with Failure _ -> ());
      (* Borrow machinery is balanced, so transfer succeeds. *)
      Dbox.transfer ctx b ~to_node:2;
      Alcotest.(check int) "still readable" 1 (Dbox.read ctx b))

let test_tbox_list () =
  in_cluster (fun cluster ctx ->
      (* The Listing 3 pattern: tying nodes makes traversal one fetch. *)
      let nodes_ =
        Array.init 8 (fun i -> Dbox.make_on ctx ~node:1 ~tag:int_tag ~size:64 i)
      in
      for i = 1 to 7 do
        Dbox.Tbox.tie ctx ~parent:nodes_.(i - 1) ~child:nodes_.(i)
      done;
      Ctx.flush ctx;
      let t0 = Engine.now (Cluster.engine cluster) in
      let total = Array.fold_left (fun acc n -> acc + Dbox.read ctx n) 0 nodes_ in
      Ctx.flush ctx;
      let dt = Engine.now (Cluster.engine cluster) -. t0 in
      Alcotest.(check int) "sum" 28 total;
      (* One batched fetch, not eight round trips (8 x ~3.6us). *)
      Alcotest.(check bool)
        (Printf.sprintf "one batch: %.1fus < 10us" (dt *. 1e6))
        true (dt < 10e-6))

(* ------------------------------------------------------------------ *)
(* Stack values (App. D.1): copy-and-write-back, eager cache eviction *)

module Sr = Drust_core.Stack_ref

let test_stack_value_roundtrip () =
  in_cluster (fun _ ctx ->
      let s = Sr.create ctx ~tag:int_tag ~size:32 5 in
      Alcotest.(check int) "read" 5 (Sr.read ctx s);
      let old = Sr.with_mut ctx s (fun v -> (v + 1, v)) in
      Alcotest.(check int) "old" 5 old;
      Alcotest.(check int) "written back" 6 (Sr.read ctx s);
      Sr.drop ctx s)

let test_stack_value_never_moves () =
  in_cluster (fun _ ctx ->
      let s = Sr.create ctx ~tag:int_tag ~size:32 1 in
      let home = Sr.home s in
      (* A remote writer works on a copy and writes back; the slot stays
         pinned to its frame. *)
      let h =
        Drust_runtime.Dthread.spawn_on ctx ~node:2 (fun w ->
            ignore (Sr.with_mut w s (fun v -> (v * 10, ()))))
      in
      Drust_runtime.Dthread.join ctx h;
      Alcotest.(check int) "home unchanged" home (Sr.home s);
      Alcotest.(check int) "write-back visible" 10 (Sr.read ctx s);
      Sr.drop ctx s)

let test_stack_value_eager_eviction () =
  in_cluster (fun cluster ctx ->
      let s = Sr.create ctx ~tag:int_tag ~size:32 1 in
      let h =
        Drust_runtime.Dthread.spawn_on ctx ~node:3 (fun w ->
            ignore (Sr.read w s);
            (* Eager eviction: nothing lingers in node 3's cache. *)
            Alcotest.(check int) "no cached copy" 0
              (Drust_memory.Cache.entries
                 (Cluster.node cluster 3).Cluster.cache))
      in
      Drust_runtime.Dthread.join ctx h;
      Sr.drop ctx s)

let test_stack_value_borrow_discipline () =
  in_cluster (fun _ ctx ->
      let s = Sr.create ctx ~tag:int_tag ~size:32 1 in
      Alcotest.(check bool) "exception releases borrow" true
        (try
           Sr.with_mut ctx s (fun _ -> failwith "boom")
         with Failure _ -> true);
      Alcotest.(check int) "usable after" 1 (Sr.read ctx s);
      Sr.drop ctx s;
      Alcotest.(check bool) "use after drop" true
        (try
           ignore (Sr.read ctx s);
           false
         with B.Violation _ -> true))

(* ------------------------------------------------------------------ *)
(* Unsafe primitives *)

let test_unsafe_roundtrip () =
  in_cluster (fun _ ctx ->
      let g = U.dalloc ctx ~size:32 (Univ.pack int_tag 5) in
      Alcotest.(check int) "dread" 5
        (Univ.unpack_exn int_tag (U.dread ctx g ~size:32));
      U.dwrite ctx g ~size:32 (Univ.pack int_tag 6);
      Alcotest.(check int) "dwrite" 6
        (Univ.unpack_exn int_tag (U.dread ctx g ~size:32));
      U.dfree ctx g)

let test_unsafe_remote_costs () =
  in_cluster (fun cluster ctx ->
      let g = U.dalloc_on ctx ~node:2 ~size:512 (Univ.pack int_tag 0) in
      Ctx.flush ctx;
      let t0 = Engine.now (Cluster.engine cluster) in
      ignore (U.dread ctx g ~size:512);
      Ctx.flush ctx;
      let dt = Engine.now (Cluster.engine cluster) -. t0 in
      (* One one-sided READ, never cached. *)
      Alcotest.(check bool) "first ~3.6us" true (dt > 3e-6 && dt < 5e-6);
      let t1 = Engine.now (Cluster.engine cluster) in
      ignore (U.dread ctx g ~size:512);
      Ctx.flush ctx;
      let dt2 = Engine.now (Cluster.engine cluster) -. t1 in
      Alcotest.(check bool) "second still remote" true (dt2 > 3e-6))

let test_unsafe_atomic_update () =
  in_cluster (fun _ ctx ->
      let g = U.dalloc_on ctx ~node:1 ~size:8 (Univ.pack int_tag 10) in
      let old =
        U.datomic_update ctx g (fun v ->
            Univ.pack int_tag (Univ.unpack_exn int_tag v + 1))
      in
      Alcotest.(check int) "old value returned" 10 (Univ.unpack_exn int_tag old);
      Alcotest.(check int) "updated" 11
        (Univ.unpack_exn int_tag (U.dread ctx g ~size:8)))

(* ------------------------------------------------------------------ *)
(* Wire pointer layout (Fig. 8) *)

module Pl = Drust_core.Pointer_layout
module Gaddr = Drust_memory.Gaddr

let test_layout_roundtrip () =
  let g = Gaddr.with_color (Gaddr.make ~node:5 ~offset:0xABCDE) 1234 in
  let w = Pl.encode ~gaddr:g ~ubit:true ~ext:42L in
  let g', ubit, ext = Pl.decode w in
  Alcotest.(check bool) "gaddr" true (Gaddr.equal g g');
  Alcotest.(check bool) "ubit" true ubit;
  Alcotest.(check int64) "ext" 42L ext

let test_layout_bytes () =
  let g = Gaddr.make ~node:1 ~offset:64 in
  let w = Pl.encode ~gaddr:g ~ubit:false ~ext:7L in
  let b = Pl.to_bytes w in
  Alcotest.(check int) "16 bytes on the wire" 16 (Bytes.length b);
  let w' = Pl.of_bytes b in
  Alcotest.(check bool) "identical after the wire" true (w = w');
  Alcotest.(check bool) "null detection" true (Pl.is_null Pl.null);
  Alcotest.(check bool) "nonnull" false (Pl.is_null w)

let test_layout_ext_overflow () =
  let g = Gaddr.make ~node:0 ~offset:8 in
  Alcotest.(check bool) "64-bit ext rejected" true
    (try
       ignore (Pl.encode ~gaddr:g ~ubit:false ~ext:Int64.min_int);
       false
     with Invalid_argument _ -> true)

let prop_layout_roundtrip =
  QCheck.Test.make ~name:"wire layout roundtrips every pointer" ~count:500
    QCheck.(
      quad
        (int_bound (Gaddr.max_nodes - 1))
        (int_bound 1_000_000)
        (int_bound Gaddr.max_color)
        (pair bool (int_bound max_int)))
    (fun (node, offset, color, (ubit, ext)) ->
      let g = Gaddr.with_color (Gaddr.make ~node ~offset) color in
      let ext = Int64.of_int ext in
      let w = Pl.of_bytes (Pl.to_bytes (Pl.encode ~gaddr:g ~ubit ~ext)) in
      let g', ubit', ext' = Pl.decode w in
      Gaddr.equal g g' && ubit = ubit' && ext = ext')

let () =
  Alcotest.run "dbox"
    [
      ( "typed",
        [
          Alcotest.test_case "make/read/write" `Quick test_make_read_write;
          Alcotest.test_case "type safety" `Quick test_type_safety;
          Alcotest.test_case "scoped borrows" `Quick test_scoped_borrows;
          Alcotest.test_case "imm refs" `Quick test_imm_refs_shared_across_nodes;
          Alcotest.test_case "mut ref cycle" `Quick test_mut_ref_cycle;
          Alcotest.test_case "conflicts raise" `Quick test_borrow_conflicts_raise;
          Alcotest.test_case "transfer + exception safety" `Quick
            test_transfer_and_exception_safety;
          Alcotest.test_case "tbox list" `Quick test_tbox_list;
        ] );
      ( "stack-values",
        [
          Alcotest.test_case "roundtrip" `Quick test_stack_value_roundtrip;
          Alcotest.test_case "never moves" `Quick test_stack_value_never_moves;
          Alcotest.test_case "eager eviction" `Quick test_stack_value_eager_eviction;
          Alcotest.test_case "borrow discipline" `Quick test_stack_value_borrow_discipline;
        ] );
      ( "wire-layout",
        [
          Alcotest.test_case "roundtrip" `Quick test_layout_roundtrip;
          Alcotest.test_case "bytes" `Quick test_layout_bytes;
          Alcotest.test_case "ext overflow" `Quick test_layout_ext_overflow;
          QCheck_alcotest.to_alcotest prop_layout_roundtrip;
        ] );
      ( "unsafe",
        [
          Alcotest.test_case "roundtrip" `Quick test_unsafe_roundtrip;
          Alcotest.test_case "remote costs" `Quick test_unsafe_remote_costs;
          Alcotest.test_case "atomic update" `Quick test_unsafe_atomic_update;
        ] );
    ]
