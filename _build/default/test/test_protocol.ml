(* Tests for the DRust coherence protocol (Algorithms 1-8): moves on
   remote writes, color bumps on local writes, colored-address cache
   invalidation, owner write-back, affinity groups, and — the crown — a
   property test of the paper's data-value invariant over random SWMR
   schedules. *)

module Engine = Drust_sim.Engine
module Cluster = Drust_machine.Cluster
module Params = Drust_machine.Params
module Ctx = Drust_machine.Ctx
module P = Drust_core.Protocol
module Gaddr = Drust_memory.Gaddr
module Cache = Drust_memory.Cache
module Univ = Drust_util.Univ
module B = Drust_ownership.Borrow_state

let int_tag : int Univ.tag = Univ.create_tag ~name:"int"
let pack = Univ.pack int_tag
let unpack v = Univ.unpack_exn int_tag v

let small_params nodes =
  {
    Params.default with
    Params.nodes;
    cores_per_node = 4;
    mem_per_node = Drust_util.Units.mib 64;
  }

(* Run [body] as a simulated process on node 0 of a fresh cluster and
   drive the engine to completion. *)
let in_cluster ?(nodes = 4) body =
  let cluster = Cluster.create (small_params nodes) in
  let result = ref None in
  ignore
    (Engine.spawn (Cluster.engine cluster) (fun () ->
         result := Some (body cluster)));
  Cluster.run cluster;
  match !result with Some v -> v | None -> Alcotest.fail "body did not run"

let ctx_on cluster node = Ctx.make cluster ~node

(* ------------------------------------------------------------------ *)
(* Basics *)

let test_create_reads_back () =
  in_cluster (fun cluster ->
      let ctx = ctx_on cluster 0 in
      let o = P.create ctx ~size:64 (pack 7) in
      Alcotest.(check int) "read" 7 (unpack (P.owner_read ctx o));
      Alcotest.(check int) "allocated locally" 0 (Gaddr.node_of (P.gaddr o)))

let test_local_write_bumps_color_once () =
  in_cluster (fun cluster ->
      let ctx = ctx_on cluster 0 in
      let o = P.create ctx ~size:64 (pack 0) in
      Alcotest.(check int) "color 0" 0 (P.color o);
      P.owner_write ctx o (pack 1);
      Alcotest.(check int) "color bumped" 1 (P.color o);
      (* Second write in the same epoch: U bit suppresses another bump. *)
      P.owner_write ctx o (pack 2);
      Alcotest.(check int) "no second bump" 1 (P.color o);
      Alcotest.(check int) "value" 2 (unpack (P.owner_read ctx o)))

let test_ubit_reset_on_imm_borrow () =
  in_cluster (fun cluster ->
      let ctx = ctx_on cluster 0 in
      let o = P.create ctx ~size:64 (pack 0) in
      P.owner_write ctx o (pack 1);
      Alcotest.(check int) "first epoch" 1 (P.color o);
      let r = P.borrow_imm ctx o in
      Alcotest.(check int) "borrow sees v1" 1 (unpack (P.imm_deref ctx r));
      P.drop_imm ctx r;
      (* New epoch after the read: the next write must change the colored
         address again (Global-Address-Change-on-Write invariant). *)
      P.owner_write ctx o (pack 2);
      Alcotest.(check int) "second epoch" 2 (P.color o))

let test_remote_write_moves_object () =
  in_cluster (fun cluster ->
      let ctx0 = ctx_on cluster 0 in
      let o = P.create ctx0 ~size:64 (pack 5) in
      Alcotest.(check int) "starts on 0" 0 (Gaddr.node_of (P.gaddr o));
      (* A writer on node 2 takes a mutable borrow: the object must move
         into node 2's partition. *)
      let ctx2 = ctx_on cluster 2 in
      let m = P.borrow_mut ctx2 o in
      P.mut_write ctx2 m (pack 6);
      P.drop_mut ctx2 m;
      Alcotest.(check int) "moved to 2" 2 (Gaddr.node_of (P.gaddr o));
      Alcotest.(check int) "move count" 1 (P.moves ctx2);
      Alcotest.(check int) "reader on 0 sees new value" 6
        (unpack (P.owner_read ctx0 o)))

let test_remote_read_caches () =
  in_cluster (fun cluster ->
      let ctx0 = ctx_on cluster 0 in
      let o = P.create ctx0 ~size:64 (pack 9) in
      let ctx1 = ctx_on cluster 1 in
      let r = P.borrow_imm ctx1 o in
      Alcotest.(check int) "first read fetches" 9 (unpack (P.imm_deref ctx1 r));
      let node1 = Cluster.node cluster 1 in
      Alcotest.(check int) "cached on node 1" 1 (Cache.entries node1.Cluster.cache);
      (* Address unchanged by the read. *)
      Alcotest.(check int) "object stayed home" 0 (Gaddr.node_of (P.gaddr o));
      Alcotest.(check int) "second read hits" 9 (unpack (P.imm_deref ctx1 r));
      P.drop_imm ctx1 r)

let test_stale_cache_not_read_after_write () =
  in_cluster (fun cluster ->
      let ctx0 = ctx_on cluster 0 in
      let o = P.create ctx0 ~size:64 (pack 1) in
      (* Node 1 reads and caches v1. *)
      let ctx1 = ctx_on cluster 1 in
      let r1 = P.borrow_imm ctx1 o in
      Alcotest.(check int) "v1 cached" 1 (unpack (P.imm_deref ctx1 r1));
      P.drop_imm ctx1 r1;
      (* Owner writes v2 locally (color bump, no invalidation message). *)
      P.owner_write ctx0 o (pack 2);
      (* Node 1 borrows again: colored address changed, cache misses, the
         fresh value is fetched. *)
      let r2 = P.borrow_imm ctx1 o in
      Alcotest.(check int) "v2 visible on node 1" 2 (unpack (P.imm_deref ctx1 r2));
      P.drop_imm ctx1 r2)

let test_concurrent_readers_on_multiple_nodes () =
  in_cluster (fun cluster ->
      let ctx0 = ctx_on cluster 0 in
      let o = P.create ctx0 ~size:64 (pack 11) in
      let refs =
        List.init 3 (fun i ->
            let ctx = ctx_on cluster (i + 1) in
            (ctx, P.borrow_imm ctx o))
      in
      List.iter
        (fun (ctx, r) ->
          Alcotest.(check int) "each node reads" 11 (unpack (P.imm_deref ctx r)))
        refs;
      List.iter (fun (ctx, r) -> P.drop_imm ctx r) refs)

let test_drop_mut_writes_back_to_owner () =
  in_cluster (fun cluster ->
      let ctx0 = ctx_on cluster 0 in
      let o = P.create ctx0 ~size:64 (pack 0) in
      let ctx3 = ctx_on cluster 3 in
      let m = P.borrow_mut ctx3 o in
      P.mut_write ctx3 m (pack 1);
      (* Before the drop, the owner's address is stale — that is fine
         because the single-writer invariant forbids owner access now. *)
      P.drop_mut ctx3 m;
      Alcotest.(check bool) "owner updated to writer's address" true
        (Gaddr.node_of (P.gaddr o) = 3))

let test_mut_read_moves_too () =
  in_cluster (fun cluster ->
      let ctx0 = ctx_on cluster 0 in
      let o = P.create ctx0 ~size:64 (pack 42) in
      let ctx1 = ctx_on cluster 1 in
      let m = P.borrow_mut ctx1 o in
      Alcotest.(check int) "read via mut" 42 (unpack (P.mut_read ctx1 m));
      P.drop_mut ctx1 m;
      Alcotest.(check int) "claimed locally" 1 (Gaddr.node_of (P.gaddr o)))

let test_borrow_discipline_enforced () =
  in_cluster (fun cluster ->
      let ctx = ctx_on cluster 0 in
      let o = P.create ctx ~size:64 (pack 0) in
      let r = P.borrow_imm ctx o in
      Alcotest.(check bool) "mut while imm" true
        (try
           ignore (P.borrow_mut ctx o);
           false
         with B.Violation _ -> true);
      P.drop_imm ctx r;
      let m = P.borrow_mut ctx o in
      Alcotest.(check bool) "imm while mut" true
        (try
           ignore (P.borrow_imm ctx o);
           false
         with B.Violation _ -> true);
      P.drop_mut ctx m)

let test_color_overflow_moves () =
  in_cluster (fun cluster ->
      let ctx = ctx_on cluster 0 in
      let o = P.create ctx ~size:32 (pack 0) in
      let initial_phys = Gaddr.clear_color (P.gaddr o) in
      (* Write through max_color epochs: each epoch is borrow-read (resets
         U bit) + write (bumps).  Spot-check with a smaller loop against
         the real overflow threshold would take 65k iterations — do them
         but with the cheap owner path. *)
      for i = 1 to Gaddr.max_color + 1 do
        let r = P.borrow_imm ctx o in
        ignore (P.imm_deref ctx r);
        P.drop_imm ctx r;
        P.owner_write ctx o (pack i)
      done;
      Alcotest.(check bool) "address moved on overflow" false
        (Gaddr.equal initial_phys (Gaddr.clear_color (P.gaddr o)));
      Alcotest.(check int) "value survives" (Gaddr.max_color + 1)
        (unpack (P.owner_read ctx o)))

let test_transfer_evicts_source_cache () =
  in_cluster (fun cluster ->
      let ctx0 = ctx_on cluster 0 in
      let ctx1 = ctx_on cluster 1 in
      let o = P.create_on ctx0 ~node:0 ~size:64 (pack 3) in
      (* Owner box moves to node 1's thread; then node 1 reads (caches),
         transfers to node 2: node 1's cached copy must be evicted. *)
      P.transfer ctx0 o ~to_node:1;
      ignore (P.owner_read ctx1 o);
      Alcotest.(check bool) "cached on 1" true
        (Cache.entries (Cluster.node cluster 1).Cluster.cache > 0);
      P.transfer ctx1 o ~to_node:2;
      Alcotest.(check int) "evicted on 1" 0
        (Cache.entries (Cluster.node cluster 1).Cluster.cache))

let test_transfer_while_borrowed_rejected () =
  in_cluster (fun cluster ->
      let ctx = ctx_on cluster 0 in
      let o = P.create ctx ~size:64 (pack 0) in
      let r = P.borrow_imm ctx o in
      Alcotest.(check bool) "rejected" true
        (try
           P.transfer ctx o ~to_node:1;
           false
         with B.Violation _ -> true);
      P.drop_imm ctx r)

let test_drop_owner_frees () =
  in_cluster (fun cluster ->
      let ctx = ctx_on cluster 0 in
      let o = P.create ctx ~size:64 (pack 0) in
      let g = P.gaddr o in
      P.drop_owner ctx o;
      Alcotest.(check bool) "freed" false (Cluster.heap_mem cluster g);
      Alcotest.(check bool) "use after drop" true
        (try
           ignore (P.owner_read ctx o);
           false
         with B.Violation _ -> true))

let test_dealloc_invalidates_remote_caches () =
  in_cluster (fun cluster ->
      let ctx0 = ctx_on cluster 0 in
      let ctx1 = ctx_on cluster 1 in
      let o = P.create ctx0 ~size:64 (pack 8) in
      let r = P.borrow_imm ctx1 o in
      ignore (P.imm_deref ctx1 r);
      P.drop_imm ctx1 r;
      P.drop_owner ctx0 o;
      (* The async invalidation runs a little later in virtual time. *)
      Engine.delay (Cluster.engine cluster) 1e-3;
      Alcotest.(check int) "remote cache invalidated" 0
        (Cache.entries (Cluster.node cluster 1).Cluster.cache))

let test_clone_imm_starts_null () =
  in_cluster (fun cluster ->
      let ctx0 = ctx_on cluster 0 in
      let o = P.create ctx0 ~size:64 (pack 4) in
      let ctx1 = ctx_on cluster 1 in
      let r = P.borrow_imm ctx1 o in
      ignore (P.imm_deref ctx1 r);
      let ctx2 = ctx_on cluster 2 in
      let r2 = P.clone_imm ctx2 r in
      Alcotest.(check int) "clone reads" 4 (unpack (P.imm_deref ctx2 r2));
      P.drop_imm ctx2 r2;
      P.drop_imm ctx1 r;
      Alcotest.(check bool) "borrow balanced" true
        (B.state
           (let m = P.borrow_mut ctx0 o in
            let st = B.Mut_borrowed in
            P.drop_mut ctx0 m;
            ignore st;
            B.create ())
         = B.Owned))

(* ------------------------------------------------------------------ *)
(* Affinity (TBox) *)

let test_tie_colocates () =
  in_cluster (fun cluster ->
      let ctx0 = ctx_on cluster 0 in
      let parent = P.create_on ctx0 ~node:0 ~size:64 (pack 1) in
      let child = P.create_on ctx0 ~node:2 ~size:64 (pack 2) in
      P.tie ctx0 ~parent ~child;
      Alcotest.(check int) "child moved next to parent" 0
        (Gaddr.node_of (P.gaddr child));
      Alcotest.(check int) "group size" 128 (P.group_size parent))

let test_group_moves_together () =
  in_cluster (fun cluster ->
      let ctx0 = ctx_on cluster 0 in
      let parent = P.create_on ctx0 ~node:0 ~size:64 (pack 1) in
      let child = P.create_on ctx0 ~node:0 ~size:64 (pack 2) in
      P.tie ctx0 ~parent ~child;
      let ctx1 = ctx_on cluster 1 in
      let m = P.borrow_mut ctx1 parent in
      P.mut_write ctx1 m (pack 10);
      P.drop_mut ctx1 m;
      Alcotest.(check int) "parent on 1" 1 (Gaddr.node_of (P.gaddr parent));
      Alcotest.(check int) "child followed" 1 (Gaddr.node_of (P.gaddr child)))

let test_group_fetch_seeds_cache () =
  in_cluster (fun cluster ->
      let ctx0 = ctx_on cluster 0 in
      let parent = P.create_on ctx0 ~node:0 ~size:64 (pack 1) in
      let child = P.create_on ctx0 ~node:0 ~size:64 (pack 2) in
      P.tie ctx0 ~parent ~child;
      let ctx1 = ctx_on cluster 1 in
      let r = P.borrow_imm ctx1 parent in
      ignore (P.imm_deref ctx1 r);
      (* Both parent and child copies should now be on node 1. *)
      Alcotest.(check int) "two entries cached" 2
        (Cache.entries (Cluster.node cluster 1).Cluster.cache);
      P.drop_imm ctx1 r)

let test_tie_cycle_rejected () =
  in_cluster (fun cluster ->
      let ctx = ctx_on cluster 0 in
      let a = P.create ctx ~size:8 (pack 1) in
      let b = P.create ctx ~size:8 (pack 2) in
      P.tie ctx ~parent:a ~child:b;
      Alcotest.(check bool) "cycle rejected" true
        (try
           P.tie ctx ~parent:b ~child:a;
           false
         with Invalid_argument _ -> true);
      Alcotest.(check bool) "double tie rejected" true
        (try
           P.tie ctx ~parent:a ~child:b;
           false
         with Invalid_argument _ -> true))

let test_clone_chains_balance () =
  in_cluster (fun cluster ->
      let ctx0 = ctx_on cluster 0 in
      let o = P.create ctx0 ~size:64 (pack 1) in
      (* Clone a chain r -> r2 -> r3 across nodes; all read correctly and
         every drop rebalances the borrow count. *)
      let r = P.borrow_imm ctx0 o in
      let ctx1 = ctx_on cluster 1 in
      let r2 = P.clone_imm ctx1 r in
      let ctx2 = ctx_on cluster 2 in
      let r3 = P.clone_imm ctx2 r2 in
      Alcotest.(check int) "r3 reads" 1 (unpack (P.imm_deref ctx2 r3));
      P.drop_imm ctx0 r;
      P.drop_imm ctx1 r2;
      Alcotest.(check int) "r3 still valid" 1 (unpack (P.imm_deref ctx2 r3));
      P.drop_imm ctx2 r3;
      (* Balanced: a mutable borrow is possible again. *)
      let m = P.borrow_mut ctx0 o in
      P.mut_write ctx0 m (pack 2);
      P.drop_mut ctx0 m;
      Alcotest.(check int) "write after drain" 2 (unpack (P.owner_read ctx0 o)))

let test_group_size_transitive () =
  in_cluster (fun cluster ->
      let ctx = ctx_on cluster 0 in
      let a = P.create ctx ~size:10 (pack 0) in
      let b = P.create ctx ~size:20 (pack 1) in
      let c = P.create ctx ~size:30 (pack 2) in
      P.tie ctx ~parent:b ~child:c;
      P.tie ctx ~parent:a ~child:b;
      Alcotest.(check int) "transitive bytes" 60 (P.group_size a);
      Alcotest.(check int) "subgroup" 50 (P.group_size b))

let test_tie_pinned_rejected () =
  in_cluster (fun cluster ->
      let ctx = ctx_on cluster 0 in
      let parent = P.create ctx ~size:8 (pack 0) in
      let child = P.create ctx ~size:8 (pack 1) in
      P.pin ctx child;
      Alcotest.(check bool) "pinned child rejected" true
        (try
           P.tie ctx ~parent ~child;
           false
         with Invalid_argument _ -> true);
      Alcotest.(check bool) "is_pinned" true (P.is_pinned child);
      P.tie ctx ~parent:child ~child:parent |> ignore;
      (* tying UNDER a pinned parent is fine *)
      Alcotest.(check int) "group under pin" 16 (P.group_size child))

let test_pinned_never_moves () =
  in_cluster (fun cluster ->
      let ctx0 = ctx_on cluster 0 in
      let o = P.create_on ctx0 ~node:0 ~size:64 (pack 1) in
      P.pin ctx0 o;
      let ctx1 = ctx_on cluster 1 in
      let m = P.borrow_mut ctx1 o in
      P.mut_write ctx1 m (pack 2);
      P.drop_mut ctx1 m;
      Alcotest.(check int) "still on node 0" 0 (Gaddr.node_of (P.gaddr o));
      Alcotest.(check int) "value written through" 2 (unpack (P.owner_read ctx0 o)))

(* ------------------------------------------------------------------ *)
(* The data-value invariant, property-tested.

   We generate a random schedule of operations over a handful of objects
   and nodes, always respecting the SWMR discipline (the generator only
   emits legal schedules — rustc would have rejected the rest).  A
   shadow oracle records the last written value per object; every read
   executed by the protocol must return the oracle value. *)

type oracle_obj = {
  owner : P.owner;
  mutable expected : int;
  mutable readers : (Ctx.t * P.imm) list;
  mutable box_node : int; (* where the owner box currently lives *)
}

let prop_data_value_invariant =
  QCheck.Test.make ~name:"data-value invariant over random SWMR schedules"
    ~count:60
    QCheck.(pair small_int (list_of_size Gen.(return 120) (pair small_int small_int)))
    (fun (seed, script) ->
      in_cluster ~nodes:4 (fun cluster ->
          let rng = Drust_util.Rng.create ~seed:(seed + 1) in
          let ctxs = Array.init 4 (fun n -> ctx_on cluster n) in
          let objs =
            Array.init 3 (fun i ->
                {
                  owner = P.create ctxs.(0) ~size:64 (pack (1000 + i));
                  expected = 1000 + i;
                  readers = [];
                  box_node = 0;
                })
          in
          let step (a, b) =
            let obj = objs.(abs a mod 3) in
            let node = abs b mod 4 in
            let ctx = ctxs.(node) in
            match abs (a + b) mod 6 with
            | 0 ->
                (* open a reader somewhere *)
                let r = P.borrow_imm ctx obj.owner in
                let v = unpack (P.imm_deref ctx r) in
                if v <> obj.expected then
                  failwith
                    (Printf.sprintf "reader saw %d, expected %d" v obj.expected);
                obj.readers <- (ctx, r) :: obj.readers
            | 1 -> (
                (* close one reader *)
                match obj.readers with
                | [] -> ()
                | (rctx, r) :: rest ->
                    let v = unpack (P.imm_deref rctx r) in
                    (* A still-open reader may legitimately see the value
                       from when its borrow epoch started; since we only
                       write when no readers exist, expected is stable. *)
                    if v <> obj.expected then
                      failwith "open reader diverged from oracle";
                    P.drop_imm rctx r;
                    obj.readers <- rest)
            | 2 | 3 ->
                (* write, only legal when no readers are open *)
                if obj.readers = [] then begin
                  let nv = Drust_util.Rng.int rng 100_000 in
                  let m = P.borrow_mut ctx obj.owner in
                  P.mut_write ctx m (pack nv);
                  P.drop_mut ctx m;
                  obj.expected <- nv
                end
            | 4 ->
                (* owner read from the owner's box node *)
                if obj.readers = [] then begin
                  let v = unpack (P.owner_read ctxs.(obj.box_node) obj.owner) in
                  if v <> obj.expected then failwith "owner read diverged"
                end
            | _ ->
                (* ownership transfer: the box moves to another thread's
                   node (spawn/channel semantics); legal only with no
                   outstanding borrows *)
                if obj.readers = [] then begin
                  P.transfer ctxs.(obj.box_node) obj.owner ~to_node:node;
                  obj.box_node <- node;
                  (* The new owner immediately reads: must see the oracle
                     value (ownership transfer preserves the heap). *)
                  let v = unpack (P.owner_read ctxs.(node) obj.owner) in
                  if v <> obj.expected then failwith "post-transfer read diverged"
                end
          in
          List.iter step script;
          (* Drain readers and verify once more. *)
          Array.iter
            (fun obj ->
              List.iter
                (fun (rctx, r) ->
                  let v = unpack (P.imm_deref rctx r) in
                  if v <> obj.expected then failwith "final reader diverged";
                  P.drop_imm rctx r)
                obj.readers)
            objs;
          (* And the executable Appendix C audit must find no stale
             cache entries. *)
          (match P.audit cluster with
          | [] -> ()
          | v :: _ -> failwith ("audit: " ^ v));
          true))

(* Property: the colored global address always changes across write
   epochs (Global-Address-Change-on-Write). *)
let prop_address_changes_on_write =
  QCheck.Test.make ~name:"colored address changes on every write epoch" ~count:50
    QCheck.(list_of_size Gen.(1 -- 30) (pair small_int small_int))
    (fun script ->
      in_cluster ~nodes:3 (fun cluster ->
          let ctxs = Array.init 3 (fun n -> ctx_on cluster n) in
          let o = P.create ctxs.(0) ~size:32 (pack 0) in
          let ok = ref true in
          List.iter
            (fun (a, b) ->
              let node = abs a mod 3 in
              let before = P.gaddr o in
              (* Read first (starts a shared epoch), then write. *)
              let r = P.borrow_imm ctxs.(node) o in
              ignore (P.imm_deref ctxs.(node) r);
              P.drop_imm ctxs.(node) r;
              let m = P.borrow_mut ctxs.(abs b mod 3) o in
              P.mut_write ctxs.(abs b mod 3) m (pack (a + b));
              P.drop_mut ctxs.(abs b mod 3) m;
              if Gaddr.equal before (P.gaddr o) then ok := false)
            script;
          !ok))

let test_alloc_pressure_evicts_cache_first () =
  (* Fill a node's partition until allocation pressure; unreferenced cache
     copies must be reclaimed before spilling to another server. *)
  let params =
    { (small_params 2) with Params.mem_per_node = Drust_util.Units.kib 64 }
  in
  let cluster = Cluster.create params in
  ignore
    (Engine.spawn (Cluster.engine cluster) (fun () ->
         let ctx0 = ctx_on cluster 0 in
         let ctx1 = ctx_on cluster 1 in
         (* A big object on node 1, read by node 0: ~32 KiB cached. *)
         let big = P.create_on ctx1 ~node:1 ~size:32768 (pack 1) in
         let r = P.borrow_imm ctx0 big in
         ignore (P.imm_deref ctx0 r);
         P.drop_imm ctx0 r;
         Alcotest.(check bool) "copy cached" true
           (Cache.entries (Cluster.node cluster 0).Cluster.cache > 0);
         (* Now allocate from node 0 until its 64 KiB partition is tight:
            the allocator must evict the 32 KiB copy and stay local. *)
         let addrs = List.init 7 (fun i -> P.create ctx0 ~size:4096 (pack i)) in
         List.iter
           (fun o ->
             Alcotest.(check int) "stayed local" 0 (Gaddr.node_of (P.gaddr o)))
           addrs;
         ignore (P.create ctx0 ~size:30000 (pack 99));
         Alcotest.(check int) "cache evicted under pressure" 0
           (Cache.entries (Cluster.node cluster 0).Cluster.cache)));
  Cluster.run cluster

let test_audit_clean_after_mixed_traffic () =
  in_cluster (fun cluster ->
      let ctxs = Array.init 4 (fun n -> ctx_on cluster n) in
      let objs =
        Array.init 8 (fun i -> P.create ctxs.(i mod 4) ~size:64 (pack i))
      in
      for round = 1 to 20 do
        Array.iteri
          (fun i o ->
            let ctx = ctxs.((i + round) mod 4) in
            let r = P.borrow_imm ctx o in
            ignore (P.imm_deref ctx r);
            P.drop_imm ctx r;
            let m = P.borrow_mut ctxs.((i + (2 * round)) mod 4) o in
            P.mut_write ctxs.((i + (2 * round)) mod 4) m (pack (round * 10));
            P.drop_mut ctxs.((i + (2 * round)) mod 4) m)
          objs
      done;
      Alcotest.(check (list string)) "no violations" [] (P.audit cluster))

let test_audit_detects_corruption () =
  in_cluster (fun cluster ->
      let ctx0 = ctx_on cluster 0 in
      let ctx1 = ctx_on cluster 1 in
      let o = P.create_on ctx0 ~node:0 ~size:64 (pack 1) in
      (* Cache a copy on node 1... *)
      let r = P.borrow_imm ctx1 o in
      ignore (P.imm_deref ctx1 r);
      P.drop_imm ctx1 r;
      (* ...then corrupt the heap behind the protocol's back (what a
         buggy unsafe block could do). *)
      Cluster.heap_write cluster (P.gaddr o) (pack 999);
      Alcotest.(check bool) "audit flags stale copy" true
        (P.audit cluster <> []))

let () =
  Alcotest.run "protocol"
    [
      ( "basics",
        [
          Alcotest.test_case "create/read" `Quick test_create_reads_back;
          Alcotest.test_case "local write bumps color" `Quick
            test_local_write_bumps_color_once;
          Alcotest.test_case "U bit reset on borrow" `Quick test_ubit_reset_on_imm_borrow;
          Alcotest.test_case "remote write moves" `Quick test_remote_write_moves_object;
          Alcotest.test_case "remote read caches" `Quick test_remote_read_caches;
          Alcotest.test_case "stale cache never read" `Quick
            test_stale_cache_not_read_after_write;
          Alcotest.test_case "concurrent readers" `Quick
            test_concurrent_readers_on_multiple_nodes;
          Alcotest.test_case "drop_mut writes back" `Quick
            test_drop_mut_writes_back_to_owner;
          Alcotest.test_case "mut read moves" `Quick test_mut_read_moves_too;
          Alcotest.test_case "borrow discipline" `Quick test_borrow_discipline_enforced;
          Alcotest.test_case "color overflow" `Slow test_color_overflow_moves;
          Alcotest.test_case "transfer evicts cache" `Quick
            test_transfer_evicts_source_cache;
          Alcotest.test_case "transfer while borrowed" `Quick
            test_transfer_while_borrowed_rejected;
          Alcotest.test_case "drop frees" `Quick test_drop_owner_frees;
          Alcotest.test_case "dealloc invalidates caches" `Quick
            test_dealloc_invalidates_remote_caches;
          Alcotest.test_case "clone starts null" `Quick test_clone_imm_starts_null;
        ] );
      ( "affinity",
        [
          Alcotest.test_case "tie colocates" `Quick test_tie_colocates;
          Alcotest.test_case "group moves together" `Quick test_group_moves_together;
          Alcotest.test_case "group fetch seeds cache" `Quick test_group_fetch_seeds_cache;
          Alcotest.test_case "cycle rejected" `Quick test_tie_cycle_rejected;
          Alcotest.test_case "pinned never moves" `Quick test_pinned_never_moves;
          Alcotest.test_case "clone chains balance" `Quick test_clone_chains_balance;
          Alcotest.test_case "group size transitive" `Quick test_group_size_transitive;
          Alcotest.test_case "tie/pin interaction" `Quick test_tie_pinned_rejected;
        ] );
      ( "invariants",
        [
          QCheck_alcotest.to_alcotest prop_data_value_invariant;
          QCheck_alcotest.to_alcotest prop_address_changes_on_write;
          Alcotest.test_case "alloc pressure evicts cache" `Quick
            test_alloc_pressure_evicts_cache_first;
          Alcotest.test_case "audit clean after traffic" `Quick
            test_audit_clean_after_mixed_traffic;
          Alcotest.test_case "audit detects corruption" `Quick
            test_audit_detects_corruption;
        ] );
    ]
