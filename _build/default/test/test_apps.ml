(* Tests for the four evaluation applications and the workload
   generators: each app must run to completion on every backend, conserve
   its operation counts, and show the qualitative behaviours the
   evaluation relies on (caching helps DRust, delegation hurts Grappa,
   affinity helps DataFrame). *)

module Cluster = Drust_machine.Cluster
module Params = Drust_machine.Params
module Appkit = Drust_appkit.Appkit
module B = Drust_experiments.Bench_setup
module Ycsb = Drust_workloads.Ycsb
module Social_graph = Drust_workloads.Social_graph
module Df = Drust_dataframe.Dataframe
module Gm = Drust_gemm.Gemm
module Kv = Drust_kvstore.Kvstore
module Sn = Drust_socialnet.Socialnet

let tiny_params nodes =
  {
    Params.default with
    Params.nodes;
    cores_per_node = 4;
    mem_per_node = Drust_util.Units.mib 256;
  }

let tiny_df =
  {
    Df.default_config with
    Df.partitions = 16;
    chunk_bytes = Drust_util.Units.kib 32;
    index_entries = 32;
    queries = 2;
  }

let tiny_gemm =
  {
    Gm.default_config with
    Gm.grid = 4;
    block_bytes = Drust_util.Units.kib 16;
    strips = 8;
  }

let tiny_kv =
  {
    Kv.default_config with
    Kv.keys = 10_000;
    buckets = 512;
    ops = 800;
    clients_per_node = 4;
  }

let tiny_sn = { Sn.default_config with Sn.users = 200; requests = 400; clients_per_node = 4 }

let run_app ?(nodes = 4) system runner =
  let cluster = Cluster.create (tiny_params nodes) in
  let backend = B.make_backend system cluster in
  runner ~cluster ~backend

(* ------------------------------------------------------------------ *)
(* Workload generators *)

let test_ycsb_mix () =
  let gen = Ycsb.create ~keys:1000 ~seed:5 () in
  let gets = ref 0 and total = 10_000 in
  for _ = 1 to total do
    match Ycsb.next gen with
    | Ycsb.Get _ -> incr gets
    | Ycsb.Set _ -> ()
    | Ycsb.Insert _ | Ycsb.Scan _ | Ycsb.Rmw _ ->
        Alcotest.fail "paper mix only emits Get/Set" 
  done;
  let ratio = Float.of_int !gets /. Float.of_int total in
  Alcotest.(check bool) "~90% gets" true (Float.abs (ratio -. 0.9) < 0.02)

let test_ycsb_keys_in_range () =
  let gen = Ycsb.create ~keys:50 ~seed:6 () in
  for _ = 1 to 1000 do
    let k =
      match Ycsb.next gen with
      | Ycsb.Get k | Ycsb.Set k | Ycsb.Insert k | Ycsb.Scan (k, _) | Ycsb.Rmw k
        -> k
    in
    Alcotest.(check bool) "range" true (k >= 0 && k < 50)
  done

let test_ycsb_shared_zipf () =
  let zipf = Drust_util.Zipf.create ~n:100 ~theta:0.9 in
  let a = Ycsb.with_zipf ~zipf ~get_ratio:0.5 ~seed:1 in
  let b = Ycsb.with_zipf ~zipf ~get_ratio:0.5 ~seed:2 in
  Alcotest.(check bool) "independent streams" true
    (List.init 20 (fun _ -> Ycsb.next a) <> List.init 20 (fun _ -> Ycsb.next b))

let test_social_graph_shape () =
  let g = Social_graph.create ~users:500 ~seed:3 () in
  Alcotest.(check int) "users" 500 (Social_graph.users g);
  (* Power law: user 0 has many more followers than user 400. *)
  Alcotest.(check bool) "skewed fanout" true
    (Social_graph.fanout g 0 > 4 * Social_graph.fanout g 400);
  let f = Social_graph.followers g 0 in
  Alcotest.(check bool) "bounded" true (List.length f <= 256);
  List.iter
    (fun u -> Alcotest.(check bool) "valid ids" true (u >= 0 && u < 500))
    f;
  Alcotest.(check bool) "memoized deterministic" true
    (Social_graph.followers g 0 == Social_graph.followers g 0)

(* ------------------------------------------------------------------ *)
(* Applications complete with the right op counts on every backend *)

let app_completes name runner expected_ops system () =
  let r = run_app system runner in
  Alcotest.(check (float 0.5)) (name ^ " ops") expected_ops r.Appkit.ops;
  Alcotest.(check bool) (name ^ " advanced time") true (r.Appkit.elapsed > 0.0);
  Alcotest.(check bool) (name ^ " positive throughput") true (r.Appkit.throughput > 0.0)

let df_runner ~cluster ~backend = Df.run ~cluster ~backend tiny_df
let gemm_runner ~cluster ~backend = Gm.run ~cluster ~backend tiny_gemm
let kv_runner ~cluster ~backend = Kv.run ~cluster ~backend tiny_kv
let sn_runner ~cluster ~backend = Sn.run ~cluster ~backend tiny_sn

let test_kv_get_fraction () =
  let r = run_app B.Drust kv_runner in
  let gf = List.assoc "get_fraction" r.Appkit.extra in
  Alcotest.(check bool) "~0.9 gets" true (Float.abs (gf -. 0.9) < 0.05)

(* ------------------------------------------------------------------ *)
(* Qualitative behaviours the evaluation depends on *)

let test_drust_beats_grappa_on_gemm () =
  (* Caching vs re-delegation on a reuse-heavy workload. *)
  let d = run_app ~nodes:4 B.Drust gemm_runner in
  let g = run_app ~nodes:4 B.Grappa gemm_runner in
  Alcotest.(check bool)
    (Printf.sprintf "drust %.0f > grappa %.0f" d.Appkit.throughput
       g.Appkit.throughput)
    true
    (d.Appkit.throughput > g.Appkit.throughput)

let test_drust_single_node_overhead_small () =
  (* The paper: at most 2.42% slower than the original on one node. *)
  let params = { (tiny_params 1) with Params.cores_per_node = 8 } in
  let orig =
    let cluster = Cluster.create params in
    Kv.run ~cluster ~backend:(B.make_backend B.Original cluster) tiny_kv
  in
  let drust =
    let cluster = Cluster.create params in
    Kv.run ~cluster ~backend:(B.make_backend B.Drust cluster) tiny_kv
  in
  let overhead = 1.0 -. (drust.Appkit.throughput /. orig.Appkit.throughput) in
  Alcotest.(check bool)
    (Printf.sprintf "overhead %.2f%% < 5%%" (overhead *. 100.0))
    true (overhead < 0.05)

let test_dataframe_affinity_helps () =
  let plain =
    run_app ~nodes:4 B.Drust (fun ~cluster ~backend ->
        Df.run ~cluster ~backend tiny_df)
  in
  let annotated =
    run_app ~nodes:4 B.Drust (fun ~cluster ~backend ->
        Df.run ~cluster ~backend
          { tiny_df with Df.use_tbox = true; use_spawn_to = true })
  in
  Alcotest.(check bool) "annotations never hurt" true
    (annotated.Appkit.throughput >= 0.95 *. plain.Appkit.throughput)

let test_socialnet_dsm_beats_original () =
  (* Reference passing eliminates serialization. *)
  let orig =
    run_app ~nodes:2 B.Original (fun ~cluster ~backend ->
        Sn.run ~cluster ~backend { tiny_sn with Sn.pass_by_value = true })
  in
  let drust = run_app ~nodes:2 B.Drust sn_runner in
  Alcotest.(check bool) "drust faster" true
    (drust.Appkit.throughput > orig.Appkit.throughput)

let test_determinism () =
  (* Same seed, same cluster, same workload -> identical throughput. *)
  let a = run_app B.Drust kv_runner in
  let b = run_app B.Drust kv_runner in
  Alcotest.(check (float 1e-6)) "deterministic" a.Appkit.throughput b.Appkit.throughput

let () =
  let app_cases name runner ops =
    List.map
      (fun sys ->
        Alcotest.test_case
          (Printf.sprintf "%s on %s" name (B.system_name sys))
          `Quick
          (app_completes name runner ops sys))
      [ B.Drust; B.Gam; B.Grappa; B.Original ]
  in
  Alcotest.run "apps"
    [
      ( "workloads",
        [
          Alcotest.test_case "ycsb mix" `Quick test_ycsb_mix;
          Alcotest.test_case "ycsb range" `Quick test_ycsb_keys_in_range;
          Alcotest.test_case "ycsb shared zipf" `Quick test_ycsb_shared_zipf;
          Alcotest.test_case "social graph" `Quick test_social_graph_shape;
        ] );
      ("dataframe", app_cases "dataframe" df_runner 2.0);
      ("gemm", app_cases "gemm" gemm_runner 64.0);
      ("kvstore", app_cases "kvstore" kv_runner 800.0);
      ("socialnet", app_cases "socialnet" sn_runner 400.0);
      ( "behaviour",
        [
          Alcotest.test_case "kv get fraction" `Quick test_kv_get_fraction;
          Alcotest.test_case "caching beats delegation" `Quick
            test_drust_beats_grappa_on_gemm;
          Alcotest.test_case "single-node overhead" `Quick
            test_drust_single_node_overhead_small;
          Alcotest.test_case "affinity helps" `Quick test_dataframe_affinity_helps;
          Alcotest.test_case "dsm beats serialization" `Quick
            test_socialnet_dsm_beats_original;
          Alcotest.test_case "determinism" `Quick test_determinism;
        ] );
    ]
