(* Tests for the GAM and Grappa baseline DSMs and the backend-neutral
   interface: directory-state transitions, false sharing, bounded caching,
   delegation serialization, and cross-backend semantic equivalence. *)

module Engine = Drust_sim.Engine
module Cluster = Drust_machine.Cluster
module Params = Drust_machine.Params
module Ctx = Drust_machine.Ctx
module Gam = Drust_gam.Gam
module Grappa = Drust_grappa.Grappa
module Dsm = Drust_dsm.Dsm
module Dthread = Drust_runtime.Dthread
module Univ = Drust_util.Univ
module B = Drust_experiments.Bench_setup

let int_tag : int Univ.tag = Univ.create_tag ~name:"bl.int"
let pack = Univ.pack int_tag
let unpack v = Univ.unpack_exn int_tag v

let small_params nodes =
  {
    Params.default with
    Params.nodes;
    cores_per_node = 4;
    mem_per_node = Drust_util.Units.mib 64;
  }

let in_cluster ?(nodes = 4) body =
  let cluster = Cluster.create (small_params nodes) in
  let result = ref None in
  ignore
    (Engine.spawn (Cluster.engine cluster) (fun () ->
         let ctx = Ctx.make cluster ~node:0 in
         result := Some (body cluster ctx)));
  Cluster.run cluster;
  match !result with Some v -> v | None -> Alcotest.fail "body did not run"

(* ------------------------------------------------------------------ *)
(* GAM *)

let test_gam_read_write_roundtrip () =
  in_cluster (fun cluster ctx ->
      let g = Gam.create cluster in
      let h = Gam.alloc_on g ctx ~node:1 ~size:100 (pack 1) in
      Alcotest.(check int) "read" 1 (unpack (Gam.read g ctx h));
      Gam.write g ctx h (pack 2);
      Alcotest.(check int) "after write" 2 (unpack (Gam.read g ctx h)))

let test_gam_uncached_remote_read_costs_16us () =
  in_cluster (fun cluster ctx ->
      let g = Gam.create cluster in
      let h = Gam.alloc_on g ctx ~node:1 ~size:512 (pack 0) in
      Ctx.flush ctx;
      let t0 = Engine.now (Cluster.engine cluster) in
      ignore (Gam.read g ctx h);
      Ctx.flush ctx;
      let dt = Engine.now (Cluster.engine cluster) -. t0 in
      (* The S3 calibration: ~16 us end to end. *)
      Alcotest.(check bool)
        (Printf.sprintf "%.1f us in [13, 19]" (dt *. 1e6))
        true
        (dt > 13e-6 && dt < 19e-6))

let test_gam_second_read_hits () =
  in_cluster (fun cluster ctx ->
      let g = Gam.create cluster in
      let h = Gam.alloc_on g ctx ~node:1 ~size:512 (pack 0) in
      ignore (Gam.read g ctx h);
      Ctx.flush ctx;
      let t0 = Engine.now (Cluster.engine cluster) in
      ignore (Gam.read g ctx h);
      Ctx.flush ctx;
      Alcotest.(check bool) "hit is sub-microsecond" true
        (Engine.now (Cluster.engine cluster) -. t0 < 1e-6))

let test_gam_write_invalidates_reader () =
  in_cluster (fun cluster ctx ->
      let g = Gam.create cluster in
      let h = Gam.alloc_on g ctx ~node:0 ~size:512 (pack 0) in
      ignore (Gam.read g ctx h);
      let reader =
        Dthread.spawn_on ctx ~node:1 (fun w -> ignore (Gam.read g w h))
      in
      Dthread.join ctx reader;
      Gam.reset_stats g;
      (* A writer on node 2 must invalidate both sharers. *)
      let writer =
        Dthread.spawn_on ctx ~node:2 (fun w -> Gam.write g w h (pack 5))
      in
      Dthread.join ctx writer;
      Alcotest.(check bool) "invalidations sent" true (Gam.invalidations_sent g > 0);
      (* Reader must refetch and see the new value. *)
      Gam.reset_stats g;
      Alcotest.(check int) "coherent read" 5 (unpack (Gam.read g ctx h));
      Alcotest.(check bool) "read missed after invalidation" true
        (Gam.read_misses g > 0))

(* Two 64 B objects packed into the same 512 B block: writing one must
   invalidate cached copies of the other. *)
let test_gam_false_sharing () =
  in_cluster (fun cluster ctx ->
      let g = Gam.create cluster in
      let a = Gam.alloc_on g ctx ~node:0 ~size:64 (pack 1) in
      let b = Gam.alloc_on g ctx ~node:0 ~size:64 (pack 2) in
      let reader =
        Dthread.spawn_on ctx ~node:1 (fun w -> ignore (Gam.read g w b))
      in
      Dthread.join ctx reader;
      Gam.reset_stats g;
      (* Writing a (same block as b) invalidates node 1's copy of b... *)
      Gam.write g ctx a (pack 10);
      Alcotest.(check bool) "write caused invalidation of co-resident object"
        true
        (Gam.invalidations_sent g > 0);
      (* ...so node 1's next read of b misses even though b never changed. *)
      Gam.reset_stats g;
      let reader2 =
        Dthread.spawn_on ctx ~node:1 (fun w ->
            Alcotest.(check int) "b unchanged" 2 (unpack (Gam.read g w b)))
      in
      Dthread.join ctx reader2;
      Alcotest.(check bool) "false-sharing miss" true (Gam.read_misses g > 0))

let test_gam_small_object_spans_blocks () =
  in_cluster (fun cluster ctx ->
      let g = Gam.create ~block_size:128 cluster in
      (* 100-byte objects with a 128 B block: b straddles a's block. *)
      let _a = Gam.alloc_on g ctx ~node:0 ~size:100 (pack 1) in
      let b = Gam.alloc_on g ctx ~node:0 ~size:100 (pack 2) in
      let reader =
        Dthread.spawn_on ctx ~node:1 (fun w ->
            Alcotest.(check int) "reads through" 2 (unpack (Gam.read g w b)))
      in
      Dthread.join ctx reader;
      Alcotest.(check int) "block size honoured" 128 (Gam.block_size g))

let test_gam_bounded_cache_evicts () =
  in_cluster (fun cluster ctx ->
      let g = Gam.create ~cache_budget:(Drust_util.Units.kib 64) cluster in
      (* Stream three 32 KiB objects through a 64 KiB cache on node 0. *)
      let objs =
        List.init 3 (fun i ->
            Gam.alloc_on g ctx ~node:1 ~size:(Drust_util.Units.kib 32) (pack i))
      in
      List.iter (fun h -> ignore (Gam.read g ctx h)) objs;
      Gam.reset_stats g;
      (* The first object was evicted: re-reading it misses again. *)
      ignore (Gam.read g ctx (List.hd objs));
      Alcotest.(check bool) "evicted object re-faults" true (Gam.read_misses g > 0))

let test_gam_mutex_serializes () =
  in_cluster (fun cluster ctx ->
      let backend = Gam.backend (Gam.create cluster) in
      let m = backend.Dsm.mutex_create ctx in
      let in_cs = ref 0 and max_cs = ref 0 in
      let hs =
        List.init 4 (fun i ->
            Dthread.spawn_on ctx ~node:i (fun w ->
                for _ = 1 to 5 do
                  backend.Dsm.mutex_lock w m;
                  incr in_cs;
                  max_cs := max !max_cs !in_cs;
                  Ctx.compute w ~cycles:1_000.0;
                  decr in_cs;
                  backend.Dsm.mutex_unlock w m
                done))
      in
      Dthread.join_all ctx hs;
      Alcotest.(check int) "exclusive" 1 !max_cs)

(* ------------------------------------------------------------------ *)
(* Grappa *)

let test_grappa_roundtrip () =
  in_cluster (fun cluster ctx ->
      let g = Grappa.create cluster in
      let h = Grappa.alloc_on g ctx ~node:2 ~size:128 (pack 3) in
      Alcotest.(check int) "read" 3 (unpack (Grappa.read g ctx h));
      Grappa.write g ctx h (pack 4);
      Alcotest.(check int) "after write" 4 (unpack (Grappa.read g ctx h)))

let test_grappa_never_caches () =
  in_cluster (fun cluster ctx ->
      let g = Grappa.create cluster in
      let h = Grappa.alloc_on g ctx ~node:1 ~size:128 (pack 0) in
      let engine = Cluster.engine cluster in
      ignore (Grappa.read g ctx h);
      Ctx.flush ctx;
      let t0 = Engine.now engine in
      ignore (Grappa.read g ctx h);
      Ctx.flush ctx;
      (* The second read still crosses the network (no cache). *)
      Alcotest.(check bool) "still remote" true (Engine.now engine -. t0 > 5e-6))

let test_grappa_delegation_counter () =
  in_cluster (fun cluster ctx ->
      let g = Grappa.create cluster in
      let h = Grappa.alloc_on g ctx ~node:1 ~size:64 (pack 0) in
      Grappa.reset_stats g;
      ignore (Grappa.read g ctx h);
      Grappa.write g ctx h (pack 1);
      Grappa.update g ctx h (fun v -> v);
      Alcotest.(check int) "three delegations" 3 (Grappa.delegations g))

let test_grappa_process_serializes_per_object () =
  in_cluster (fun cluster ctx ->
      let g = Grappa.create cluster in
      let h = Grappa.alloc_on g ctx ~node:0 ~size:64 (pack 0) in
      let engine = Cluster.engine cluster in
      let t0 = Engine.now engine in
      (* Four concurrent 100 us computations against one object must run
         back to back at the home core. *)
      let hs =
        List.init 4 (fun i ->
            Dthread.spawn_on ctx ~node:i (fun w ->
                ignore (Grappa.process g w h ~cycles:260_000.0)))
      in
      Dthread.join_all ctx hs;
      let dt = Engine.now engine -. t0 in
      Alcotest.(check bool)
        (Printf.sprintf "%.0f us >= 400 us (serialized)" (dt *. 1e6))
        true (dt >= 400e-6))

let test_grappa_adaptive_aggregation () =
  (* A busy sender's delegations wait far less in the aggregator than a
     sparse sender's. *)
  in_cluster (fun cluster ctx ->
      let g = Grappa.create cluster in
      let h = Grappa.alloc_on g ctx ~node:1 ~size:64 (pack 0) in
      let engine = Cluster.engine cluster in
      (* Sparse: first-ever delegation pays the flush timeout. *)
      Ctx.flush ctx;
      let t0 = Engine.now engine in
      ignore (Grappa.read g ctx h);
      Ctx.flush ctx;
      let sparse = Engine.now engine -. t0 in
      (* Busy: eight concurrent clients on this node drive the (0,1)
         aggregation buffer; batches fill instead of timing out. *)
      let hs =
        List.init 8 (fun _ ->
            Dthread.spawn_on ctx ~node:0 (fun w ->
                for _ = 1 to 30 do
                  ignore (Grappa.read g w h)
                done))
      in
      Dthread.join_all ctx hs;
      Ctx.flush ctx;
      let t1 = Engine.now engine in
      ignore (Grappa.read g ctx h);
      Ctx.flush ctx;
      let busy = Engine.now engine -. t1 in
      Alcotest.(check bool)
        (Printf.sprintf "busy %.1fus < sparse %.1fus" (busy *. 1e6)
           (sparse *. 1e6))
        true
        (busy < 0.5 *. sparse))

let test_grappa_update_is_atomic () =
  in_cluster (fun cluster ctx ->
      let g = Grappa.create cluster in
      let h = Grappa.alloc_on g ctx ~node:0 ~size:64 (pack 0) in
      let hs =
        List.init 4 (fun i ->
            Dthread.spawn_on ctx ~node:i (fun w ->
                for _ = 1 to 25 do
                  Grappa.update g w h (fun v -> pack (unpack v + 1))
                done))
      in
      Dthread.join_all ctx hs;
      Alcotest.(check int) "all increments applied" 100
        (unpack (Grappa.read g ctx h)))

(* ------------------------------------------------------------------ *)
(* Cross-backend semantic equivalence on the Dsm interface *)

let backend_semantics system () =
  in_cluster (fun cluster ctx ->
      let backend = B.make_backend system cluster in
      let h = backend.Dsm.alloc_on ctx ~node:1 ~size:256 (pack 10) in
      Alcotest.(check int) "read" 10 (unpack (backend.Dsm.read ctx h));
      backend.Dsm.write ctx h (pack 11);
      Alcotest.(check int) "write" 11 (unpack (backend.Dsm.read ctx h));
      backend.Dsm.update ctx h (fun v -> pack (unpack v + 1));
      Alcotest.(check int) "update" 12 (unpack (backend.Dsm.read ctx h));
      backend.Dsm.read_part ctx h ~bytes:64;
      Alcotest.(check int) "process returns value" 12
        (unpack (backend.Dsm.process ctx h ~cycles:100.0));
      backend.Dsm.process_update ctx h ~cycles:100.0 (fun v ->
          pack (unpack v * 2));
      Alcotest.(check int) "process_update" 24 (unpack (backend.Dsm.read ctx h));
      let m = backend.Dsm.mutex_create ctx in
      Dsm.with_mutex backend ctx m (fun () -> ());
      backend.Dsm.free ctx h)

let test_foreign_handle_rejected () =
  in_cluster (fun cluster ctx ->
      let drust = B.make_backend B.Drust cluster in
      let gam = B.make_backend B.Gam cluster in
      let h = drust.Dsm.alloc ctx ~size:64 (pack 0) in
      Alcotest.(check bool) "foreign rejected" true
        (try
           ignore (gam.Dsm.read ctx h);
           false
         with Dsm.Foreign_handle _ -> true))

let () =
  Alcotest.run "baselines"
    [
      ( "gam",
        [
          Alcotest.test_case "roundtrip" `Quick test_gam_read_write_roundtrip;
          Alcotest.test_case "16us uncached read" `Quick
            test_gam_uncached_remote_read_costs_16us;
          Alcotest.test_case "second read hits" `Quick test_gam_second_read_hits;
          Alcotest.test_case "write invalidates" `Quick test_gam_write_invalidates_reader;
          Alcotest.test_case "false sharing" `Quick test_gam_false_sharing;
          Alcotest.test_case "spans blocks" `Quick test_gam_small_object_spans_blocks;
          Alcotest.test_case "bounded cache" `Quick test_gam_bounded_cache_evicts;
          Alcotest.test_case "mutex serializes" `Quick test_gam_mutex_serializes;
        ] );
      ( "grappa",
        [
          Alcotest.test_case "roundtrip" `Quick test_grappa_roundtrip;
          Alcotest.test_case "never caches" `Quick test_grappa_never_caches;
          Alcotest.test_case "delegation counter" `Quick test_grappa_delegation_counter;
          Alcotest.test_case "per-object serialization" `Quick
            test_grappa_process_serializes_per_object;
          Alcotest.test_case "atomic update" `Quick test_grappa_update_is_atomic;
          Alcotest.test_case "adaptive aggregation" `Quick test_grappa_adaptive_aggregation;
        ] );
      ( "dsm-interface",
        [
          Alcotest.test_case "drust semantics" `Quick (backend_semantics B.Drust);
          Alcotest.test_case "gam semantics" `Quick (backend_semantics B.Gam);
          Alcotest.test_case "grappa semantics" `Quick (backend_semantics B.Grappa);
          Alcotest.test_case "original semantics" `Quick (backend_semantics B.Original);
          Alcotest.test_case "foreign handle" `Quick test_foreign_handle_rejected;
        ] );
    ]
