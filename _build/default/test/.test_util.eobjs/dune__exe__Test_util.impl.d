test/test_util.ml: Alcotest Array Drust_util Float Format Fun List Printf QCheck QCheck_alcotest
