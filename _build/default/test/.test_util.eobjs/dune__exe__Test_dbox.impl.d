test/test_dbox.ml: Alcotest Array Bytes Drust_core Drust_machine Drust_memory Drust_ownership Drust_runtime Drust_sim Drust_util Int64 Printf QCheck QCheck_alcotest
