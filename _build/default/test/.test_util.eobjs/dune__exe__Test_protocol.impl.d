test/test_protocol.ml: Alcotest Array Drust_core Drust_machine Drust_memory Drust_ownership Drust_sim Drust_util Gen List Printf QCheck QCheck_alcotest
