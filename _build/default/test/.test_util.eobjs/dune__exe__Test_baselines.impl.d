test/test_baselines.ml: Alcotest Drust_dsm Drust_experiments Drust_gam Drust_grappa Drust_machine Drust_runtime Drust_sim Drust_util List Printf
