test/test_runtime.ml: Alcotest Drust_core Drust_machine Drust_memory Drust_runtime Drust_sim Drust_util List
