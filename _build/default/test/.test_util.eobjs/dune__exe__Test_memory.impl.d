test/test_memory.ml: Alcotest Drust_memory Drust_util Gen Hashtbl List QCheck QCheck_alcotest
