test/test_dbox.mli:
