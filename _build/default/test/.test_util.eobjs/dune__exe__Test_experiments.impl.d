test/test_experiments.ml: Alcotest Drust_appkit Drust_experiments Drust_workloads Float List Printf String
