test/test_net.ml: Alcotest Drust_net Drust_sim Drust_util List
