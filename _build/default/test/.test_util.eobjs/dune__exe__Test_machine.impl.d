test/test_machine.ml: Alcotest Drust_machine Drust_memory Drust_sim Drust_util Float List
