test/test_ownership.ml: Alcotest Drust_ownership List QCheck QCheck_alcotest String
