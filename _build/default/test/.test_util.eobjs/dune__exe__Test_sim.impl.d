test/test_sim.ml: Alcotest Drust_sim Float Gen List Printf QCheck QCheck_alcotest String
