test/test_ownership.mli:
