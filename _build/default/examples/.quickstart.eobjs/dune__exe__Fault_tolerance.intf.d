examples/fault_tolerance.mli:
