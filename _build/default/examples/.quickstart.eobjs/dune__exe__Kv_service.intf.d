examples/kv_service.mli:
