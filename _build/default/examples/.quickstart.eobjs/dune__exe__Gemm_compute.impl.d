examples/gemm_compute.ml: Drust_appkit Drust_experiments Drust_gemm Drust_machine Drust_util Float Format List Printf
