examples/dataframe_analytics.mli:
