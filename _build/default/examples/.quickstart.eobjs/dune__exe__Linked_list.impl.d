examples/linked_list.ml: Array Drust_core Drust_machine Drust_sim Drust_util Format Printf
