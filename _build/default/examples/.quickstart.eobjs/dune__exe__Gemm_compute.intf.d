examples/gemm_compute.mli:
