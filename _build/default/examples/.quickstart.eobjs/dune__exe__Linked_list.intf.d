examples/linked_list.mli:
