examples/protocol_trace.ml: Drust_core Drust_machine Drust_memory Drust_net Drust_sim Drust_util List Option Printf
