examples/socialnet_service.mli:
