examples/kv_service.ml: Drust_appkit Drust_experiments Drust_kvstore Drust_machine Drust_util Drust_workloads Float Format List Printf
