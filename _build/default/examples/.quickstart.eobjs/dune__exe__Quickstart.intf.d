examples/quickstart.mli:
