(* Watch the coherence protocol on the wire: enable fabric tracing and
   replay a small ownership story — create, remote read (one-sided READ),
   local write (color bump: silence!), remote write (move + owner
   write-back), and a TBox group fetch.

   Run with:  dune exec examples/protocol_trace.exe *)

module Engine = Drust_sim.Engine
module Trace = Drust_sim.Trace
module Cluster = Drust_machine.Cluster
module Params = Drust_machine.Params
module Ctx = Drust_machine.Ctx
module Fabric = Drust_net.Fabric
module P = Drust_core.Protocol
module Univ = Drust_util.Univ

let tag : int Univ.tag = Univ.create_tag ~name:"trace.int"

let step trace name f =
  Printf.printf "\n--- %s ---\n" name;
  let before = Trace.count trace in
  f ();
  if Trace.count trace = before then
    print_endline "  (no network traffic — the point of the protocol)"
  else
    List.iteri
      (fun i e ->
        if i >= before then
          Printf.printf "  %s\n" e.Trace.detail)
      (Trace.events trace)

let () =
  let cluster = Cluster.create { Params.default with Params.nodes = 4 } in
  let trace = Trace.create (Cluster.engine cluster) in
  Trace.enable trace;
  Fabric.set_trace (Cluster.fabric cluster) (Some trace);
  ignore
    (Engine.spawn (Cluster.engine cluster) (fun () ->
         let ctx0 = Ctx.make cluster ~node:0 in
         let ctx2 = Ctx.make cluster ~node:2 in

         let o = ref None in
         step trace "create on node 0 (local: silent)" (fun () ->
             o := Some (P.create ctx0 ~size:256 (Univ.pack tag 1)));
         let o = Option.get !o in

         step trace "remote read from node 2 (one one-sided READ)" (fun () ->
             let r = P.borrow_imm ctx2 o in
             ignore (P.imm_deref ctx2 r);
             P.drop_imm ctx2 r);

         step trace "second remote read (cache hit: silent)" (fun () ->
             let r = P.borrow_imm ctx2 o in
             ignore (P.imm_deref ctx2 r);
             P.drop_imm ctx2 r);

         step trace "local write on node 0 (color bump: silent)" (fun () ->
             P.owner_write ctx0 o (Univ.pack tag 2));

         step trace "remote write from node 2 (move + async dealloc + owner update)"
           (fun () ->
             let m = P.borrow_mut ctx2 o in
             P.mut_write ctx2 m (Univ.pack tag 3);
             P.drop_mut ctx2 m);

         step trace "TBox group: tie two children, fetch all in one READ"
           (fun () ->
             let p = P.create_on ctx0 ~node:0 ~size:128 (Univ.pack tag 10) in
             let c1 = P.create_on ctx0 ~node:0 ~size:128 (Univ.pack tag 11) in
             let c2 = P.create_on ctx0 ~node:0 ~size:128 (Univ.pack tag 12) in
             P.tie ctx0 ~parent:p ~child:c1;
             P.tie ctx0 ~parent:c1 ~child:c2;
             let r = P.borrow_imm ctx2 p in
             ignore (P.imm_deref ctx2 r);
             P.drop_imm ctx2 r);

         Printf.printf "\n%d fabric events total; final value lives on node %d\n"
           (Trace.count trace)
           (Drust_memory.Gaddr.node_of (P.gaddr o))));
  Cluster.run cluster
