(* SocialNet: the 12-microservice benchmark, pass-by-value RPC vs
   references over the shared heap.  Prints throughput and tail latency
   for the original deployment and the DRust port on the same cluster.

   Run with:  dune exec examples/socialnet_service.exe *)

module Cluster = Drust_machine.Cluster
module Params = Drust_machine.Params
module Appkit = Drust_appkit.Appkit
module Sn = Drust_socialnet.Socialnet
module B = Drust_experiments.Bench_setup

let config = { Sn.default_config with Sn.requests = 3_000 }

let run_variant label system ~pass_by_value =
  let cluster = Cluster.create { Params.default with Params.nodes = 4 } in
  let backend = B.make_backend system cluster in
  let r = Sn.run ~cluster ~backend { config with Sn.pass_by_value } in
  Printf.printf "%-28s %9.0f req/s   p50 %6.1f us   p99 %7.1f us\n" label
    r.Appkit.throughput
    (List.assoc "lat_p50_us" r.Appkit.extra)
    (List.assoc "lat_p99_us" r.Appkit.extra)

let () =
  Printf.printf
    "SocialNet on 4 nodes: %d users, %d requests (%d services)\n\n"
    config.Sn.users config.Sn.requests Sn.services;
  run_variant "original (serialize values)" B.Original ~pass_by_value:true;
  run_variant "DRust (pass references)" B.Drust ~pass_by_value:false;
  run_variant "GAM (pass references)" B.Gam ~pass_by_value:false;
  print_newline ();
  Printf.printf
    "The DSM ports skip serialization and redundant copies at every hop;\n";
  Printf.printf
    "DRust additionally keeps hot posts cached and moves timelines to\n";
  Printf.printf "their writers instead of invalidating readers.\n"
