(* Fault tolerance (S4.2.3): replicate the global heap, batch write-backs
   until ownership escapes, kill a primary, and read on through the
   promoted backup.

   Run with:  dune exec examples/fault_tolerance.exe *)

module Engine = Drust_sim.Engine
module Cluster = Drust_machine.Cluster
module Params = Drust_machine.Params
module Ctx = Drust_machine.Ctx
module P = Drust_core.Protocol
module Replication = Drust_runtime.Replication
module Dthread = Drust_runtime.Dthread
module Univ = Drust_util.Univ
module Gaddr = Drust_memory.Gaddr

let tag : string Univ.tag = Univ.create_tag ~name:"ft.doc"

let () =
  let cluster = Cluster.create { Params.default with Params.nodes = 4 } in
  ignore
    (Engine.spawn (Cluster.engine cluster) (fun () ->
         let ctx = Ctx.make cluster ~node:0 in
         let doc = P.create_on ctx ~node:1 ~size:256 (Univ.pack tag "v1") in
         Printf.printf "doc lives on node %d\n" (Gaddr.node_of (P.gaddr doc));

         let repl = Replication.enable cluster in
         Printf.printf "replication on: node 1's backup is node %d\n"
           (Replication.backup_node repl 1);

         (* A writer thread on node 1 commits v2 and hands the document
            away — the transfer flushes the batched backup write-back. *)
         let writer =
           Dthread.spawn_on ctx ~node:1 (fun w ->
               let m = P.borrow_mut w doc in
               P.mut_write w m (Univ.pack tag "v2");
               P.drop_mut w m;
               Printf.printf "writer committed v2 (pending write-backs: %d)\n"
                 (Replication.pending_writes repl);
               P.transfer w doc ~to_node:2;
               Printf.printf "ownership escaped   (pending write-backs: %d)\n"
                 (Replication.pending_writes repl))
         in
         Dthread.join ctx writer;

         (* Kill whichever node now hosts the object. *)
         let victim = Cluster.serving_node cluster (Gaddr.node_of (P.gaddr doc)) in
         Printf.printf "killing node %d...\n" victim;
         Replication.fail_and_promote ctx repl ~node:victim;
         Printf.printf "promoted: node %d's range now served by node %d\n" victim
           (Cluster.serving_node cluster victim);

         let v = Univ.unpack_exn tag (P.owner_read ctx doc) in
         Printf.printf "read after failover: %S (expected \"v2\")\n" v;
         Replication.disable repl));
  Cluster.run cluster
