(* Quickstart: the paper's accumulator (Listings 2 and 4), run on a
   simulated 4-node cluster.

   A single-machine program — allocate two integers, add one to the other,
   spawn a thread to do it again — becomes distributed without rewriting:
   the runtime places objects in the global heap, threads may run on other
   servers, and dereferences fetch or move objects per the ownership-
   guided coherence protocol.

   Run with:  dune exec examples/quickstart.exe *)

module Engine = Drust_sim.Engine
module Cluster = Drust_machine.Cluster
module Params = Drust_machine.Params
module Ctx = Drust_machine.Ctx
module Dbox = Drust_core.Dbox
module Dthread = Drust_runtime.Dthread
module Univ = Drust_util.Univ

let int_tag : int Univ.tag = Univ.create_tag ~name:"quickstart.int"

(* pub struct Accumulator { pub val: Box<i32> } — the owner box lives in
   the global heap; [add] mutably borrows it. *)
type accumulator = { value : int Dbox.t }

let add ctx acc delta =
  Dbox.with_borrow_mut ctx acc.value (fun v -> (v + delta, v + delta))

let () =
  let params = { Params.default with Params.nodes = 4 } in
  let cluster = Cluster.create params in
  ignore
    (Engine.spawn (Cluster.engine cluster) (fun () ->
         let ctx = Ctx.make cluster ~node:0 in

         (* let val = Box::new(5); let b = Box::new(10); *)
         let acc = { value = Dbox.make ctx ~tag:int_tag ~size:8 5 } in
         let b = Dbox.make ctx ~tag:int_tag ~size:8 10 in

         (* Synchronous add: both values are (fetched) local. *)
         let local_add = add ctx acc (Dbox.read ctx b) in
         Printf.printf "local add   : a.val = %d (expected 15)\n" local_add;

         (* thread::spawn(move || a.add(&*b)) — only the pointers ship to
            the remote thread; dereferencing fetches the values there. *)
         let t =
           Dthread.spawn_on ctx ~node:2 (fun worker ->
               let remote_add = add worker acc (Dbox.read worker b) in
               Printf.printf "remote add  : a.val = %d on node %d (expected 25)\n"
                 remote_add worker.Ctx.node)
         in
         Dthread.join ctx t;

         (* spawn_to (Listing 4): run the closure where a.val lives, so
            the dereference inside add is guaranteed local. *)
         let t2 =
           Dthread.spawn_to ctx (Dbox.owner acc.value) (fun worker ->
               let affine_add = add worker acc 10 in
               Printf.printf "spawn_to add: a.val = %d on node %d (expected 35)\n"
                 affine_add worker.Ctx.node)
         in
         Dthread.join ctx t2;

         Printf.printf "final value : %d\n" (Dbox.read ctx acc.value);
         Printf.printf "object ended on node %d after %d protocol moves\n"
           (Drust_memory.Gaddr.node_of (Dbox.gaddr acc.value))
           (Drust_core.Protocol.moves ctx);
         Dbox.drop ctx acc.value;
         Dbox.drop ctx b));
  Cluster.run cluster;
  Printf.printf "simulated time: %s\n"
    (Format.asprintf "%a" Drust_util.Units.pp_seconds (Cluster.now cluster))
