(* A distributed KV cache on DRust: a chained hash table in the global
   heap, bucket mutexes via one-sided CAS, and a YCSB zipf client load.

   Run with:  dune exec examples/kv_service.exe *)

module Cluster = Drust_machine.Cluster
module Params = Drust_machine.Params
module Appkit = Drust_appkit.Appkit
module Kv = Drust_kvstore.Kvstore
module Ycsb = Drust_workloads.Ycsb
module B = Drust_experiments.Bench_setup

let config =
  {
    Kv.default_config with
    Kv.keys = 500_000;
    buckets = 16_384;
    ops = 20_000;
  }

let () =
  let gen = Ycsb.create ~keys:config.Kv.keys ~seed:1 () in
  Printf.printf "KV service: %d keys in %d buckets, zipf(%.2f) %d%% GET\n"
    config.Kv.keys config.Kv.buckets config.Kv.theta
    (Float.to_int (100.0 *. config.Kv.get_ratio));
  Printf.printf "hottest 10 keys carry %.1f%% of the load\n\n"
    (100.0 *. Ycsb.hot_share gen ~k:10);
  List.iter
    (fun nodes ->
      let cluster = Cluster.create { Params.default with Params.nodes = nodes } in
      let backend = B.make_backend B.Drust cluster in
      let r = Kv.run ~cluster ~backend config in
      Printf.printf "%d node(s): %s  (%.0f clients, GETs %.0f%%)\n" nodes
        (Format.asprintf "%a" Drust_util.Units.pp_rate r.Appkit.throughput)
        (List.assoc "clients" r.Appkit.extra)
        (100.0 *. List.assoc "get_fraction" r.Appkit.extra))
    [ 1; 2; 4; 8 ]
