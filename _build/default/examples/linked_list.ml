(* Listing 3: a linked list whose nodes are tied with TBox.

   Summing a remote list by chasing plain Box pointers pays one network
   round trip per node; tying the nodes into an affinity group makes the
   first dereference fetch the whole list in one batch, after which every
   access is local.  This example measures both variants.

   Run with:  dune exec examples/linked_list.exe *)

module Engine = Drust_sim.Engine
module Cluster = Drust_machine.Cluster
module Params = Drust_machine.Params
module Ctx = Drust_machine.Ctx
module Dbox = Drust_core.Dbox
module Univ = Drust_util.Univ

let int_tag : int Univ.tag = Univ.create_tag ~name:"list.val"

(* pub struct Node { val: i32, next: Option<TBox<Node>> } — represented
   as an array of value boxes whose affinity chain mirrors `next`. *)
let build_list ctx ~on_node ~len ~tie =
  let nodes =
    Array.init len (fun i ->
        Dbox.make_on ctx ~node:on_node ~tag:int_tag ~size:64 (i + 1))
  in
  if tie then
    for i = 1 to len - 1 do
      Dbox.Tbox.tie ctx ~parent:nodes.(i - 1) ~child:nodes.(i)
    done;
  nodes

let sum ctx nodes =
  Array.fold_left (fun acc node -> acc + Dbox.read ctx node) 0 nodes

let timed_sum cluster ctx label nodes =
  Ctx.flush ctx;
  let t0 = Engine.now (Cluster.engine cluster) in
  let total = sum ctx nodes in
  Ctx.flush ctx;
  let dt = Engine.now (Cluster.engine cluster) -. t0 in
  Printf.printf "%-28s sum = %4d   time = %s\n" label total
    (Format.asprintf "%a" Drust_util.Units.pp_seconds dt);
  dt

let () =
  let len = 64 in
  let cluster = Cluster.create { Params.default with Params.nodes = 2 } in
  ignore
    (Engine.spawn (Cluster.engine cluster) (fun () ->
         (* Both lists live on node 1; the reader runs on node 0. *)
         let ctx = Ctx.make cluster ~node:0 in
         let plain = build_list ctx ~on_node:1 ~len ~tie:false in
         let tied = build_list ctx ~on_node:1 ~len ~tie:true in

         let t_plain = timed_sum cluster ctx "plain Box (pointer chase)" plain in
         let t_tied = timed_sum cluster ctx "TBox chain (batched fetch)" tied in
         Printf.printf "TBox speedup on first traversal: %.1fx\n"
           (t_plain /. t_tied);

         (* Second traversals are cached either way. *)
         ignore (timed_sum cluster ctx "plain Box (cached)" plain);
         ignore (timed_sum cluster ctx "TBox chain (cached)" tied)));
  Cluster.run cluster
