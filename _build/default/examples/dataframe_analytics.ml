(* DataFrame analytics on DRust: run a chain of dependent columnar
   queries over a 4-node cluster, with and without affinity annotations,
   and compare against GAM.

   Run with:  dune exec examples/dataframe_analytics.exe *)

module Cluster = Drust_machine.Cluster
module Params = Drust_machine.Params
module Appkit = Drust_appkit.Appkit
module Df = Drust_dataframe.Dataframe
module B = Drust_experiments.Bench_setup

let config =
  {
    Df.default_config with
    Df.partitions = 64;
    queries = 3;
    chunk_bytes = Drust_util.Units.kib 128;
  }

let run_variant name system ~affinity =
  let cluster = Cluster.create { Params.default with Params.nodes = 4 } in
  let backend = B.make_backend system cluster in
  let r =
    Df.run ~cluster ~backend
      { config with Df.use_tbox = affinity; use_spawn_to = affinity }
  in
  Printf.printf "%-24s %8.1f queries/s  (%.1f ms per query)\n" name
    r.Appkit.throughput
    (r.Appkit.elapsed /. r.Appkit.ops *. 1e3);
  r.Appkit.throughput

let () =
  Printf.printf
    "DataFrame: %d partitions x %s chunks, %d dependent queries, 4 nodes\n\n"
    config.Df.partitions
    (Format.asprintf "%a" Drust_util.Units.pp_bytes config.Df.chunk_bytes)
    config.Df.queries;
  let plain = run_variant "DRust" B.Drust ~affinity:false in
  let annotated = run_variant "DRust + TBox/spawn_to" B.Drust ~affinity:true in
  let gam = run_variant "GAM" B.Gam ~affinity:false in
  Printf.printf "\nannotations: %+.1f%%   DRust vs GAM: %.2fx\n"
    (100.0 *. ((annotated /. plain) -. 1.0))
    (annotated /. gam)
