type t = {
  nodes : int;
  cores_per_node : int;
  mem_per_node : int;
  ghz : float;
  net : Drust_net.Model.t;
  local_deref_cycles : float;
  runtime_check_cycles : float;
  cache_hit_cycles : float;
  flush_grain : float;
  seed : int;
}

let default =
  {
    nodes = 8;
    cores_per_node = 16;
    mem_per_node = Drust_util.Units.gib 128;
    ghz = 2.6;
    net = Drust_net.Model.infiniband_40g;
    local_deref_cycles = 364.0;
    runtime_check_cycles = 31.0;
    cache_hit_cycles = 120.0;
    flush_grain = 2e-6;
    seed = 42;
  }

let with_nodes t nodes =
  if nodes <= 0 then invalid_arg "Params.with_nodes: need at least one node";
  { t with nodes }

let fixed_resource t ~total_cores ~total_mem ~nodes =
  if nodes <= 0 then invalid_arg "Params.fixed_resource: need at least one node";
  if total_cores mod nodes <> 0 then
    invalid_arg "Params.fixed_resource: cores must divide evenly";
  {
    t with
    nodes;
    cores_per_node = total_cores / nodes;
    mem_per_node = total_mem / nodes;
  }

let cycles_to_seconds t cycles = cycles /. (t.ghz *. 1e9)
let seconds_to_cycles t seconds = seconds *. t.ghz *. 1e9

let pp fmt t =
  Format.fprintf fmt "%d nodes x %d cores @ %.1f GHz, %a/node, %a" t.nodes
    t.cores_per_node t.ghz Drust_util.Units.pp_bytes t.mem_per_node
    Drust_net.Model.pp t.net
