(** Cluster hardware parameters.

    Defaults mirror the paper's testbed (§7): 8 nodes, dual Xeon E5-2640 v3
    (16 cores at 2.6 GHz), 128 GB RAM, 40 Gbps InfiniBand.  Local memory
    timing is calibrated so a plain local pointer dereference costs the 364
    cycles the paper measures for ordinary Rust [Box] (Table 2) and DRust's
    checked dereference costs ~30 cycles more. *)

type t = {
  nodes : int;
  cores_per_node : int;
  mem_per_node : int;  (** heap partition capacity in bytes *)
  ghz : float;  (** core clock in GHz; converts cycles to seconds *)
  net : Drust_net.Model.t;
  local_deref_cycles : float;
      (** plain uncached local object dereference (Table 2 "Rust" row) *)
  runtime_check_cycles : float;
      (** extra cycles for DRust's location check on dereference *)
  cache_hit_cycles : float;
      (** hitting the per-node read-only cache hashmap *)
  flush_grain : float;
      (** compute is batched into core-occupying bursts of at least this
          many seconds to keep the event count manageable *)
  seed : int;
}

val default : t
(** The paper's 8-node testbed. *)

val with_nodes : t -> int -> t
(** Same hardware, different node count (for scaling sweeps). *)

val fixed_resource : t -> total_cores:int -> total_mem:int -> nodes:int -> t
(** Fig. 7 setup: distribute a fixed core/memory budget evenly over
    [nodes] servers. *)

val cycles_to_seconds : t -> float -> float
val seconds_to_cycles : t -> float -> float

val pp : Format.formatter -> t -> unit
