lib/machine/params.ml: Drust_net Drust_util Format
