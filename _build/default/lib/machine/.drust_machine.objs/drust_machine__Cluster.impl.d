lib/machine/cluster.ml: Array Drust_memory Drust_net Drust_sim Drust_util Float List Params Printf
