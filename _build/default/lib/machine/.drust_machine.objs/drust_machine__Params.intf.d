lib/machine/params.mli: Drust_net Format
