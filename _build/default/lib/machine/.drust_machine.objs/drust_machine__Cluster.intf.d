lib/machine/cluster.mli: Drust_memory Drust_net Drust_sim Drust_util Params
