lib/machine/ctx.mli: Cluster Drust_net Drust_sim Drust_util Params
