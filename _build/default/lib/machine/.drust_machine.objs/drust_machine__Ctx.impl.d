lib/machine/ctx.ml: Array Cluster Drust_sim Drust_util Params
