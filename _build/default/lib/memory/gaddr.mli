(** Colored global addresses (the paper's pointer layout, Fig. 8).

    A global address packs three fields into one 63-bit OCaml integer:

    {v
      bits 62..47 : 16-bit color (version number of the pointed-to value)
      bits 46..40 : 7-bit node id (up to 128 servers)
      bits 39..0  : 40-bit offset within the node's heap partition (1 TiB)
    v}

    The color is the heart of DRust's local-write optimization: bumping it
    changes the cache-lookup key without moving the object, so stale cached
    copies on other nodes can never be returned again.  [clear_color]
    recovers the {e physical} address used for actual storage access. *)

type t = private int
(** A colored global address.  The [private] row keeps arithmetic out of
    client code while allowing O(1) hashing and comparison. *)

val color_bits : int
(** 16. *)

val max_color : int
(** [2^16 - 1]; reaching it triggers the move-on-overflow policy. *)

val max_nodes : int
val max_offset : int

val make : node:int -> offset:int -> t
(** A color-0 address.  Raises [Invalid_argument] if a field overflows. *)

val node_of : t -> int
val offset_of : t -> int
val color_of : t -> int

val with_color : t -> int -> t
(** [with_color a c] replaces the color field. *)

val clear_color : t -> t
(** The paper's [ClearColor]: the physical address (color = 0). *)

val bump_color : t -> t
(** [bump_color a] increments the color.  Raises [Color_overflow] when the
    color is already {!max_color}; the caller must then move the object. *)

exception Color_overflow of t

val is_local : t -> node:int -> bool
(** The paper's [IsLocal]: does this address live in [node]'s partition? *)

val to_int : t -> int
val of_int_exn : int -> t
(** Validates field ranges; for deserialization in tests. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
