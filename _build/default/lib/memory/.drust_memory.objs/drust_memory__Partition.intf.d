lib/memory/partition.mli: Drust_util Gaddr
