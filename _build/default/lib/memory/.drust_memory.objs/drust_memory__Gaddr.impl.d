lib/memory/gaddr.ml: Format Hashtbl Int Printf
