lib/memory/cache.mli: Drust_util Gaddr
