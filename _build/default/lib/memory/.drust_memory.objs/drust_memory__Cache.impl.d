lib/memory/cache.ml: Drust_util Gaddr Hashtbl List
