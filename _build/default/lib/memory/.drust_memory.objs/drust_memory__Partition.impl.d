lib/memory/partition.ml: Drust_util Float Gaddr Hashtbl Printf
