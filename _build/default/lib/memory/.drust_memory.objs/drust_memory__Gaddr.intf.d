lib/memory/gaddr.mli: Format
