type copy = {
  key : Gaddr.t;
  mutable value : Drust_util.Univ.t;
  size : int;
  mutable refcount : int;
  mutable dead : bool;
  mutable detached : bool;
}

type t = {
  node : int;
  (* Keyed by the physical (color-cleared) address; the copy remembers the
     full colored key so lookups can compare colors in O(1). *)
  map : (Gaddr.t, copy) Hashtbl.t;
  mutable used : int;
  mutable hits : int;
  mutable misses : int;
}

let create ~node =
  { node; map = Hashtbl.create 256; used = 0; hits = 0; misses = 0 }

let node t = t.node
let entries t = Hashtbl.length t.map
let used_bytes t = t.used

let lookup t g =
  match Hashtbl.find_opt t.map (Gaddr.clear_color g) with
  | Some copy when Gaddr.equal copy.key g && not copy.dead ->
      t.hits <- t.hits + 1;
      Some copy
  | Some _ | None ->
      t.misses <- t.misses + 1;
      None

let reclaim t copy =
  if not copy.dead then begin
    copy.dead <- true;
    t.used <- t.used - copy.size
  end

(* Remove a copy from the map.  If references still pin it they keep
   reading through their direct record; the bytes are reclaimed when the
   last reference drains ([release]). *)
let detach t phys copy =
  Hashtbl.remove t.map phys;
  copy.detached <- true;
  if copy.refcount = 0 then reclaim t copy

let insert t g ~size v =
  let phys = Gaddr.clear_color g in
  (match Hashtbl.find_opt t.map phys with
  | Some old -> detach t phys old
  | None -> ());
  let copy =
    { key = g; value = v; size; refcount = 1; dead = false; detached = false }
  in
  Hashtbl.replace t.map phys copy;
  t.used <- t.used + size;
  copy

let retain copy =
  if copy.dead then invalid_arg "Cache.retain: dead copy";
  copy.refcount <- copy.refcount + 1

let release t copy =
  if copy.refcount <= 0 then invalid_arg "Cache.release: refcount underflow";
  copy.refcount <- copy.refcount - 1;
  if copy.refcount = 0 && copy.detached then reclaim t copy

let invalidate_physical t g =
  let phys = Gaddr.clear_color g in
  match Hashtbl.find_opt t.map phys with
  | None -> ()
  | Some copy -> detach t phys copy

let evict_unreferenced t =
  let reclaimed = ref 0 in
  let victims =
    Hashtbl.fold
      (fun phys copy acc -> if copy.refcount = 0 then (phys, copy) :: acc else acc)
      t.map []
  in
  let kill (phys, copy) =
    reclaimed := !reclaimed + copy.size;
    detach t phys copy
  in
  List.iter kill victims;
  !reclaimed

let iter t f = Hashtbl.iter (fun _ copy -> f copy) t.map

let clear t =
  Hashtbl.iter (fun _ copy -> reclaim t copy) t.map;
  Hashtbl.reset t.map;
  t.used <- 0

let hits t = t.hits
let misses t = t.misses

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0
