type entry = { value : Drust_util.Univ.t; size : int }

(* Size-class free lists: freed offsets are recycled for any request that
   fits the same class, which keeps the bump pointer from running away in
   long simulations with allocation churn. *)
type t = {
  node : int;
  capacity : int;
  objects : (int, entry) Hashtbl.t; (* keyed by color-less offset *)
  free_lists : (int, int list ref) Hashtbl.t; (* size class -> offsets *)
  mutable bump : int;
  mutable used : int;
}

exception Out_of_memory of { node : int; requested : int }

let create ~node ~capacity_bytes =
  if capacity_bytes <= 0 then invalid_arg "Partition.create: empty capacity";
  {
    node;
    capacity = capacity_bytes;
    objects = Hashtbl.create 1024;
    free_lists = Hashtbl.create 32;
    bump = 8; (* offset 0 is reserved as a null-like sentinel *)
    used = 0;
  }

let node t = t.node
let capacity_bytes t = t.capacity
let used_bytes t = t.used
let live_objects t = Hashtbl.length t.objects
let usage_fraction t = Float.of_int t.used /. Float.of_int t.capacity

(* Round a request up to its size class: powers of two from 16 bytes. *)
let size_class size =
  let rec up c = if c >= size then c else up (c * 2) in
  up 16

let take_free t cls =
  match Hashtbl.find_opt t.free_lists cls with
  | Some ({ contents = off :: rest } as cell) ->
      cell := rest;
      Some off
  | Some { contents = [] } | None -> None

let alloc t ~size v =
  if size < 0 then invalid_arg "Partition.alloc: negative size";
  let cls = size_class (max 1 size) in
  if t.used + cls > t.capacity then
    raise (Out_of_memory { node = t.node; requested = size });
  let offset =
    match take_free t cls with
    | Some off -> off
    | None ->
        let off = t.bump in
        t.bump <- t.bump + cls;
        if t.bump > Gaddr.max_offset then
          raise (Out_of_memory { node = t.node; requested = size });
        off
  in
  Hashtbl.replace t.objects offset { value = v; size };
  t.used <- t.used + cls;
  Gaddr.make ~node:t.node ~offset

let check_home t a label =
  if Gaddr.node_of a <> t.node then
    invalid_arg
      (Printf.sprintf "Partition.%s: address on node %d, partition is node %d"
         label (Gaddr.node_of a) t.node)

let free t a =
  check_home t a "free";
  let off = Gaddr.offset_of a in
  match Hashtbl.find_opt t.objects off with
  | None -> invalid_arg "Partition.free: dead address"
  | Some e ->
      Hashtbl.remove t.objects off;
      let cls = size_class (max 1 e.size) in
      t.used <- t.used - cls;
      let cell =
        match Hashtbl.find_opt t.free_lists cls with
        | Some c -> c
        | None ->
            let c = ref [] in
            Hashtbl.replace t.free_lists cls c;
            c
      in
      cell := off :: !cell

let get t a =
  check_home t a "get";
  match Hashtbl.find_opt t.objects (Gaddr.offset_of a) with
  | Some e -> e
  | None -> raise Not_found

let mem t a =
  Gaddr.node_of a = t.node && Hashtbl.mem t.objects (Gaddr.offset_of a)

let set t a v =
  check_home t a "set";
  let off = Gaddr.offset_of a in
  match Hashtbl.find_opt t.objects off with
  | None -> invalid_arg "Partition.set: dead address"
  | Some e -> Hashtbl.replace t.objects off { e with value = v }

let put t a ~size v =
  check_home t a "put";
  let off = Gaddr.offset_of a in
  let cls = size_class (max 1 size) in
  (match Hashtbl.find_opt t.objects off with
  | Some old -> t.used <- t.used - size_class (max 1 old.size)
  | None -> ());
  Hashtbl.replace t.objects off { value = v; size };
  t.used <- t.used + cls;
  (* Keep the bump pointer ahead of mirrored offsets so that a promoted
     backup never mints an address that collides with a mirrored object. *)
  if off + cls > t.bump then t.bump <- off + cls

let remove t a =
  check_home t a "remove";
  let off = Gaddr.offset_of a in
  match Hashtbl.find_opt t.objects off with
  | None -> ()
  | Some e ->
      Hashtbl.remove t.objects off;
      t.used <- t.used - size_class (max 1 e.size)

let iter t f =
  Hashtbl.iter (fun off e -> f (Gaddr.make ~node:t.node ~offset:off) e) t.objects

let clear t =
  Hashtbl.reset t.objects;
  Hashtbl.reset t.free_lists;
  t.bump <- 8;
  t.used <- 0
