module Ctx = Drust_machine.Ctx
module Cluster = Drust_machine.Cluster
module Engine = Drust_sim.Engine
module Resource = Drust_sim.Resource
module Fabric = Drust_net.Fabric
module Univ = Drust_util.Univ
module Dsm = Drust_dsm.Dsm

type costs = {
  aggregation_delay : float;  (* flush timeout: the worst-case wait *)
  delegate_cycles : float;
  local_overhead : float;
}

(* The aggregation delay models Grappa's message batching: a delegation
   waits in the sender-side aggregator until its destination buffer
   flushes.  At the modest concurrency of these applications the flush is
   timeout-driven, which is the known cause of Grappa's poor latency on
   sparse traffic (and of the paper's 2-node collapse in Fig. 5d). *)
let default_costs =
  { aggregation_delay = 40e-6; delegate_cycles = 1500.0; local_overhead = 0.35e-6 }

type t = {
  cluster : Cluster.t;
  costs : costs;
  workers : Resource.t array; (* per-node delegation worker cores *)
  (* Adaptive aggregation: a message waits until its batch fills or the
     flush timeout fires.  We track an EWMA of each node's inter-send gap;
     the expected wait is a few gaps (batch fill) capped by the timeout.
     Busy senders therefore see low aggregation latency, sparse senders
     eat the timeout — Grappa's characteristic behaviour. *)
  last_send : float array array; (* per (src, dst) pair *)
  gap_ewma : float array array;
  store : (int, Univ.t) Hashtbl.t;
  (* Per-object serialization: Grappa runs delegations for one object on
     one core, so they never interleave. *)
  object_units : (int, Resource.t) Hashtbl.t;
  mutable next_oid : int;
  mutable count : int;
}

type handle = { oid : int; obj_home : int; size : int }

let create ?(costs = default_costs) cluster =
  let cores = (Cluster.params cluster).Drust_machine.Params.cores_per_node in
  {
    cluster;
    costs;
    workers =
      Array.init (Cluster.node_count cluster) (fun _ ->
          Resource.create (Cluster.engine cluster) ~capacity:(max 1 cores));
    last_send =
      Array.init (Cluster.node_count cluster) (fun _ ->
          Array.make (Cluster.node_count cluster) 0.0);
    gap_ewma =
      Array.init (Cluster.node_count cluster) (fun _ ->
          Array.make (Cluster.node_count cluster) 1e-3);
    store = Hashtbl.create 4096;
    object_units = Hashtbl.create 4096;
    next_oid = 0;
    count = 0;
  }

let delegate t ctx ~home ~req_bytes ~resp_bytes ~extra_cycles f =
  t.count <- t.count + 1;
  let engine = Cluster.engine t.cluster in
  let params = Cluster.params t.cluster in
  let run_at_home () =
    Resource.use t.workers.(home) (fun () ->
        Engine.delay engine
          (Drust_machine.Params.cycles_to_seconds params
             (t.costs.delegate_cycles +. extra_cycles));
        f ())
  in
  let aggregation_wait src dst =
    let now = Engine.now engine in
    let gap = now -. t.last_send.(src).(dst) in
    t.last_send.(src).(dst) <- now;
    t.gap_ewma.(src).(dst) <- (0.8 *. t.gap_ewma.(src).(dst)) +. (0.2 *. gap);
    Float.min t.costs.aggregation_delay
      (Float.max 1e-6 (2.0 *. t.gap_ewma.(src).(dst)))
  in
  if home = ctx.Ctx.node then begin
    (* Local delegation skips the network but still hops through the
       delegation queue. *)
    Ctx.flush ctx;
    Engine.delay engine t.costs.local_overhead;
    run_at_home ()
  end
  else begin
    Ctx.note_remote_access ctx ~target:home;
    Ctx.flush ctx;
    (* Sender-side aggregation batches small messages... *)
    Engine.delay engine (aggregation_wait ctx.Ctx.node home);
    let v =
      Fabric.rpc (Cluster.fabric t.cluster) ~from:ctx.Ctx.node ~target:home
        ~req_bytes ~resp_bytes run_at_home
    in
    (* ...and so does the reply path. *)
    Engine.delay engine (aggregation_wait home ctx.Ctx.node);
    v
  end

let object_unit t oid =
  match Hashtbl.find_opt t.object_units oid with
  | Some r -> r
  | None ->
      let r = Resource.create (Cluster.engine t.cluster) ~capacity:1 in
      Hashtbl.replace t.object_units oid r;
      r

let alloc_on t ctx ~node ~size v =
  Ctx.charge_cycles ctx 150.0;
  let oid = t.next_oid in
  t.next_oid <- oid + 1;
  Hashtbl.replace t.store oid v;
  { oid; obj_home = node; size }

let alloc t ctx ~size v = alloc_on t ctx ~node:ctx.Ctx.node ~size v

let home h = h.obj_home

let get_value t h =
  match Hashtbl.find_opt t.store h.oid with
  | Some v -> v
  | None -> invalid_arg "Grappa: freed object"

let read t ctx h =
  delegate t ctx ~home:h.obj_home ~req_bytes:64 ~resp_bytes:h.size
    ~extra_cycles:0.0 (fun () ->
      Resource.use (object_unit t h.oid) (fun () -> get_value t h))

(* Compute ships to the data: the work runs on the home's delegation
   worker, serialized per object — a hot object's home core becomes the
   bottleneck under skew, exactly the paper's observation. *)
let read_part t ctx h ~bytes =
  delegate t ctx ~home:h.obj_home ~req_bytes:64 ~resp_bytes:(min h.size bytes)
    ~extra_cycles:0.0 (fun () -> ignore (get_value t h))

let process t ctx h ~cycles =
  let params = Cluster.params t.cluster in
  delegate t ctx ~home:h.obj_home ~req_bytes:64 ~resp_bytes:(min h.size 512)
    ~extra_cycles:0.0 (fun () ->
      Resource.use (object_unit t h.oid) (fun () ->
          Engine.delay (Cluster.engine t.cluster)
            (Drust_machine.Params.cycles_to_seconds params cycles);
          get_value t h))

let process_update t ctx h ~cycles f =
  let params = Cluster.params t.cluster in
  delegate t ctx ~home:h.obj_home ~req_bytes:96 ~resp_bytes:8 ~extra_cycles:0.0
    (fun () ->
      Resource.use (object_unit t h.oid) (fun () ->
          Engine.delay (Cluster.engine t.cluster)
            (Drust_machine.Params.cycles_to_seconds params cycles);
          Hashtbl.replace t.store h.oid (f (get_value t h))))

let write t ctx h v =
  delegate t ctx ~home:h.obj_home ~req_bytes:(64 + h.size) ~resp_bytes:8
    ~extra_cycles:0.0 (fun () ->
      Resource.use (object_unit t h.oid) (fun () ->
          Hashtbl.replace t.store h.oid v))

let update t ctx h f =
  delegate t ctx ~home:h.obj_home ~req_bytes:96 ~resp_bytes:8 ~extra_cycles:0.0
    (fun () ->
      Resource.use (object_unit t h.oid) (fun () ->
          Hashtbl.replace t.store h.oid (f (get_value t h))))

let free t ctx h =
  Ctx.charge_cycles ctx 60.0;
  Hashtbl.remove t.store h.oid;
  Hashtbl.remove t.object_units h.oid

let delegations t = t.count
let reset_stats t = t.count <- 0

type Dsm.handle += H of handle
type Dsm.mutex += M of unit

let handle_of = function H h -> h | _ -> Dsm.foreign "grappa"

let backend t =
  {
    Dsm.name = "Grappa";
    alloc = (fun ctx ~size v -> H (alloc t ctx ~size v));
    alloc_on = (fun ctx ~node ~size v -> H (alloc_on t ctx ~node ~size v));
    read = (fun ctx h -> read t ctx (handle_of h));
    write = (fun ctx h v -> write t ctx (handle_of h) v);
    update = (fun ctx h f -> update t ctx (handle_of h) f);
    free = (fun ctx h -> free t ctx (handle_of h));
    read_part = (fun ctx h ~bytes -> read_part t ctx (handle_of h) ~bytes);
    process = (fun ctx h ~cycles -> process t ctx (handle_of h) ~cycles);
    process_update =
      (fun ctx h ~cycles f -> process_update t ctx (handle_of h) ~cycles f);
    home = (fun h -> home (handle_of h));
    tie = (fun _ctx ~parent:_ ~child:_ -> ());
    supports_affinity = false;
    (* Delegation already serializes conflicting accesses at the home
       core, so Grappa-style code needs no separate lock. *)
    mutex_create = (fun _ctx -> M ());
    mutex_lock = (fun _ctx _m -> ());
    mutex_unlock = (fun _ctx _m -> ());
  }
