lib/grappa/grappa.mli: Drust_dsm Drust_machine Drust_util
