lib/grappa/grappa.ml: Array Drust_dsm Drust_machine Drust_net Drust_sim Drust_util Float Hashtbl
