(** Grappa baseline (Nelson et al., ATC'15) re-implemented on the
    simulated fabric.

    Grappa's programming model is {e always-delegation}: every access to
    shared memory ships a function to the data's home core and executes it
    there; nothing is ever cached remotely.  Messages are batched by an
    aggregator to amortize network overhead, which adds latency.  Under
    skewed load the home cores of popular objects become the bottleneck —
    the delegation queue is explicit here, so that behaviour emerges
    naturally (the paper's KV-store and DataFrame results). *)

module Ctx = Drust_machine.Ctx

type t

type costs = {
  aggregation_delay : float;
      (** average time a message waits in the sender-side aggregator *)
  delegate_cycles : float;  (** home-core cycles to run one delegation *)
  local_overhead : float;  (** delegation overhead when home = caller *)
}

val default_costs : costs

val create : ?costs:costs -> Drust_machine.Cluster.t -> t

val delegate :
  t ->
  Ctx.t ->
  home:int ->
  req_bytes:int ->
  resp_bytes:int ->
  extra_cycles:float ->
  (unit -> 'a) ->
  'a
(** Ship a closure to [home], queue on its delegation workers, run it
    (plus [extra_cycles] of application work), return the result. *)

type handle

val alloc : t -> Ctx.t -> size:int -> Drust_util.Univ.t -> handle
val alloc_on : t -> Ctx.t -> node:int -> size:int -> Drust_util.Univ.t -> handle
val read : t -> Ctx.t -> handle -> Drust_util.Univ.t
val write : t -> Ctx.t -> handle -> Drust_util.Univ.t -> unit
val update : t -> Ctx.t -> handle -> (Drust_util.Univ.t -> Drust_util.Univ.t) -> unit
val free : t -> Ctx.t -> handle -> unit

val read_part : t -> Ctx.t -> handle -> bytes:int -> unit
(** Delegate a fragment read; never cached. *)

val process : t -> Ctx.t -> handle -> cycles:float -> Drust_util.Univ.t
(** Ship [cycles] of computation to the object's home core, serialized
    per object (Grappa's compute-to-data model). *)

val process_update :
  t -> Ctx.t -> handle -> cycles:float -> (Drust_util.Univ.t -> Drust_util.Univ.t) -> unit

val home : handle -> int

val delegations : t -> int
val reset_stats : t -> unit

val backend : t -> Drust_dsm.Dsm.t
(** Mutexes are free on Grappa: delegations to the same object serialize
    at its home core by construction. *)
