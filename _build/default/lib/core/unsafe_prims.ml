module Ctx = Drust_machine.Ctx
module Cluster = Drust_machine.Cluster
module Fabric = Drust_net.Fabric
module Gaddr = Drust_memory.Gaddr

let dalloc_on ctx ~node ~size v =
  Ctx.charge_cycles ctx 90.0;
  Cluster.heap_alloc (Ctx.cluster ctx) ~node ~size v

let dalloc ctx ~size v = dalloc_on ctx ~node:ctx.Ctx.node ~size v

let serving ctx g = Cluster.serving_node (Ctx.cluster ctx) (Gaddr.node_of g)

let dread ctx g ~size =
  let cluster = Ctx.cluster ctx in
  let target = serving ctx g in
  if target = ctx.Ctx.node then Ctx.charge_cycles ctx 364.0
  else begin
    Ctx.note_remote_access ctx ~target;
    Ctx.flush ctx;
    Fabric.rdma_read (Ctx.fabric ctx) ~from:ctx.Ctx.node ~target ~bytes:size
  end;
  (Cluster.heap_read cluster g).Drust_memory.Partition.value

let dwrite ctx g ~size v =
  let cluster = Ctx.cluster ctx in
  let target = serving ctx g in
  if target = ctx.Ctx.node then Ctx.charge_cycles ctx 364.0
  else begin
    Ctx.note_remote_access ctx ~target;
    Ctx.flush ctx;
    Fabric.rdma_write (Ctx.fabric ctx) ~from:ctx.Ctx.node ~target ~bytes:size
  end;
  Cluster.heap_write cluster g v

let datomic_update ctx g f =
  let cluster = Ctx.cluster ctx in
  let target = serving ctx g in
  let update () =
    let old = (Cluster.heap_read cluster g).Drust_memory.Partition.value in
    Cluster.heap_write cluster g (f old);
    old
  in
  if target = ctx.Ctx.node then begin
    Ctx.charge_cycles ctx 30.0;
    update ()
  end
  else begin
    Ctx.note_remote_access ctx ~target;
    Ctx.flush ctx;
    Fabric.rdma_atomic (Ctx.fabric ctx) ~from:ctx.Ctx.node ~target update
  end

let dfree ctx g =
  Ctx.charge_cycles ctx 60.0;
  Cluster.heap_free (Ctx.cluster ctx) g
