(** Typed DRust pointers — the public programming model.

    ['a Dbox.t] is the reproduction of the paper's [DBox<T>] (the
    re-implemented [Box]); {!Imm.t} and {!Mut.t} correspond to [Ref<T>]
    and [MutRef<T>] (the re-implemented [&T] / [&mut T]).  All coherence
    behaviour comes from {!Protocol}; this layer adds type safety through
    {!Drust_util.Univ} tags and scoped-borrow conveniences.

    Object sizes: the heap stores simulated payloads, so every allocation
    declares the byte size the real object would occupy — that size drives
    transfer costs. *)

module Ctx = Drust_machine.Ctx

type 'a t

val make : Ctx.t -> tag:'a Drust_util.Univ.tag -> size:int -> 'a -> 'a t
(** [Box::new]: allocate on the global heap (local partition preferred). *)

val make_on :
  Ctx.t -> node:int -> tag:'a Drust_util.Univ.tag -> size:int -> 'a -> 'a t

val read : Ctx.t -> 'a t -> 'a
(** Owner read (immutable access through the box). *)

val write : Ctx.t -> 'a t -> 'a -> unit
(** Owner write (exclusive access required). *)

val modify : Ctx.t -> 'a t -> ('a -> 'a) -> unit

val owner : 'a t -> Protocol.owner
(** Escape hatch to the protocol object (used by [spawn_to]). *)

val gaddr : 'a t -> Drust_memory.Gaddr.t
val size : 'a t -> int

val transfer : Ctx.t -> 'a t -> to_node:int -> unit
val drop : Ctx.t -> 'a t -> unit

(** Immutable references. *)
module Imm : sig
  type 'a r

  val borrow : Ctx.t -> 'a t -> 'a r
  val clone : Ctx.t -> 'a r -> 'a r
  val deref : Ctx.t -> 'a r -> 'a
  val drop : Ctx.t -> 'a r -> unit
end

(** Mutable references. *)
module Mut : sig
  type 'a r

  val borrow : Ctx.t -> 'a t -> 'a r
  val deref : Ctx.t -> 'a r -> 'a
  val write : Ctx.t -> 'a r -> 'a -> unit
  val modify : Ctx.t -> 'a r -> ('a -> 'a) -> unit
  val drop : Ctx.t -> 'a r -> unit
end

val with_borrow : Ctx.t -> 'a t -> ('a -> 'b) -> 'b
(** Scoped immutable borrow. *)

val with_borrow_mut : Ctx.t -> 'a t -> ('a -> 'a * 'b) -> 'b
(** Scoped mutable borrow: return the new value and a result. *)

(** Affinity pointers (TBox). *)
module Tbox : sig
  val tie : Ctx.t -> parent:'a t -> child:'b t -> unit
  (** Drop-in affinity: the child co-locates with (and travels with) the
      parent from now on. *)

  val pin : Ctx.t -> 'a t -> unit
end
