(** Unsafe global-heap primitives (§4.1.1, "Writing Unsafe Code in DRust").

    For code that bypasses the ownership discipline, DRust offers raw
    primitives: [dalloc], [dread], [dwrite] (and a remote [datomic_update]).
    They never cache, never move objects, and provide no consistency —
    callers carry the burden of correctness, exactly like Rust [unsafe].
    The distributed shared-state utilities (atomics, mutexes) are built on
    these. *)

module Ctx = Drust_machine.Ctx
module Gaddr = Drust_memory.Gaddr

val dalloc : Ctx.t -> size:int -> Drust_util.Univ.t -> Gaddr.t
(** Raw allocation in the caller's partition. *)

val dalloc_on : Ctx.t -> node:int -> size:int -> Drust_util.Univ.t -> Gaddr.t

val dread : Ctx.t -> Gaddr.t -> size:int -> Drust_util.Univ.t
(** Uncached read: local access or a one-sided READ of [size] bytes. *)

val dwrite : Ctx.t -> Gaddr.t -> size:int -> Drust_util.Univ.t -> unit
(** Write-through: local access or a one-sided WRITE. *)

val datomic_update :
  Ctx.t -> Gaddr.t -> (Drust_util.Univ.t -> Drust_util.Univ.t) -> Drust_util.Univ.t
(** Atomic read-modify-write serialized at the object's home; returns the
    previous value. *)

val dfree : Ctx.t -> Gaddr.t -> unit
