module Rng = Drust_util.Rng

type sample_kind = Plain_box | Drust_box

(* Fast path: DRAM access with small gaussian jitter.  Slow tail: an
   exponential component standing for TLB misses and row-buffer conflicts.
   Constants fitted to the paper's Table 2 (Rust row: 364/332/496). *)
let fast_median = 315.0
let fast_sigma = 20.0
let slow_probability = 0.30
let slow_scale = 163.0

let check_overhead_cycles = 31.0

let sample rng kind =
  let base = Rng.gaussian rng ~mu:fast_median ~sigma:fast_sigma in
  let tail =
    if Rng.bernoulli rng ~p:slow_probability then
      Rng.exponential rng ~mean:slow_scale
    else 0.0
  in
  let check = match kind with Plain_box -> 0.0 | Drust_box -> check_overhead_cycles in
  Float.max 1.0 (base +. tail +. check)

let collect rng kind ~n =
  let stats = Drust_util.Stats.create () in
  for _ = 1 to n do
    Drust_util.Stats.add stats (sample rng kind)
  done;
  stats
