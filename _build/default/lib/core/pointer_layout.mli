(** Bit-level pointer layout (the paper's Figure 8).

    DRust extends every pointer/reference to two 64-bit words:

    {v
      word 0 — colored global address:
        bits 63..48 : 16-bit color (version of the referenced value)
        bits 47..0  : global address (node | offset)
      word 1 — extension field:
        bit  63     : U bit (color updated this write epoch)
        bits 62..0  : local-copy address (reads) or owner address (writes)
    v}

    Because pointers are plain bit patterns valid cluster-wide, messages
    carrying them cross the network as raw bytes — the receiver recovers
    references by direct type conversion, with no serialization (§4.1.2).
    This module is that wire format: encoding and decoding between the
    simulator's structured addresses and the two-word representation, with
    the same field widths as the paper. *)

type words = { w0 : int64; w1 : int64 }
(** A wire pointer: exactly 16 bytes. *)

val encode :
  gaddr:Drust_memory.Gaddr.t -> ubit:bool -> ext:int64 -> words
(** Packs a colored global address plus extension payload ([ext] must fit
    63 bits). *)

val decode : words -> Drust_memory.Gaddr.t * bool * int64
(** Inverse of {!encode}: (colored address, U bit, extension payload).
    Raises [Invalid_argument] on a malformed word (bad node/offset). *)

val null : words
(** All-zero pointer (offset 0 is the reserved sentinel). *)

val is_null : words -> bool

val to_bytes : words -> bytes
(** 16-byte little-endian rendering — what actually crosses the wire. *)

val of_bytes : bytes -> words
(** Raises [Invalid_argument] unless exactly 16 bytes. *)

val byte_size : int
(** 16. *)
