lib/core/stack_ref.ml: Drust_machine Drust_memory Drust_net Drust_ownership Drust_util
