lib/core/dbox.mli: Drust_machine Drust_memory Drust_util Protocol
