lib/core/dbox.ml: Drust_machine Drust_util Protocol
