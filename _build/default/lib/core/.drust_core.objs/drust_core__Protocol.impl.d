lib/core/protocol.ml: Array Drust_machine Drust_memory Drust_net Drust_ownership Drust_util Float Format Hashtbl List Printf
