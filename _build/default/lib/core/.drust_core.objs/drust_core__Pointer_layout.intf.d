lib/core/pointer_layout.mli: Drust_memory
