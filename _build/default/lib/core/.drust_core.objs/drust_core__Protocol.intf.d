lib/core/protocol.mli: Drust_machine Drust_memory Drust_util
