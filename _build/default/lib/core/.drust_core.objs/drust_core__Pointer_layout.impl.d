lib/core/pointer_layout.ml: Bytes Drust_memory Int64
