lib/core/unsafe_prims.mli: Drust_machine Drust_memory Drust_util
