lib/core/deref_cost.ml: Drust_util Float
