lib/core/stack_ref.mli: Drust_machine Drust_util
