lib/core/unsafe_prims.ml: Drust_machine Drust_memory Drust_net
