lib/core/deref_cost.mli: Drust_util
