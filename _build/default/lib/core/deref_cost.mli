(** Dereference-latency model for the Table 2 microbenchmark.

    The paper measures the cost of dereferencing an 8-byte local object
    that is not in the CPU cache: ordinary Rust [Box] costs 364 cycles on
    average (median 332, P90 496); DRust's checked pointer adds ~30 cycles.
    This module models that distribution — a fast path with gaussian
    jitter plus an exponential slow tail for TLB/DRAM misses — and lets
    the benchmark regenerate the table from samples. *)

type sample_kind = Plain_box | Drust_box

val sample : Drust_util.Rng.t -> sample_kind -> float
(** One dereference latency in cycles. *)

val collect : Drust_util.Rng.t -> sample_kind -> n:int -> Drust_util.Stats.t
(** [n] samples as a statistics collection. *)

val check_overhead_cycles : float
(** The constant runtime-check cost DRust adds on the local fast path. *)
