(** Borrowing stack values across servers (Appendix D.1).

    Stack values have no owner [Box] and their address can never change, so
    the move-on-write protocol does not apply.  DRust instead uses
    {e copy-and-write-back}: a remote mutable borrow works on a local
    scratch copy and writes it back to the original frame when dropped;
    remote immutable borrows are cached with an {e eager} eviction policy —
    the copy is deleted as soon as its reference count hits zero, so later
    borrows always re-read the original location (no color bits protect
    stack slots). *)

module Ctx = Drust_machine.Ctx

type 'a t
(** A stack value pinned to the frame (node) that created it. *)

val create : Ctx.t -> tag:'a Drust_util.Univ.tag -> size:int -> 'a -> 'a t
(** Allocates the slot on the calling thread's current node. *)

val home : 'a t -> int

val read : Ctx.t -> 'a t -> 'a
(** Immutable borrow + deref + return: local direct access, or a fetch
    whose cached copy is eagerly dropped when the borrow ends. *)

val with_mut : Ctx.t -> 'a t -> ('a -> 'a * 'b) -> 'b
(** Scoped mutable borrow: copies the value locally, applies the
    function, writes the modified copy back to the original frame when
    the borrow expires.  Exclusive per the borrow discipline. *)

val drop : Ctx.t -> 'a t -> unit
(** Frame pop: the slot dies.  Requires no outstanding borrows. *)
