module Ctx = Drust_machine.Ctx
module Cluster = Drust_machine.Cluster
module Fabric = Drust_net.Fabric
module Gaddr = Drust_memory.Gaddr
module Borrow_state = Drust_ownership.Borrow_state
module Univ = Drust_util.Univ

type 'a t = {
  g : Gaddr.t; (* the frame slot: fixed for the value's whole life *)
  size : int;
  tag : 'a Univ.tag;
  borrow : Borrow_state.t;
  mutable live : bool;
}

let create ctx ~tag ~size v =
  Ctx.charge_cycles ctx 40.0;
  let g =
    Cluster.heap_alloc (Ctx.cluster ctx) ~node:ctx.Ctx.node ~size
      (Univ.pack tag v)
  in
  { g; size; tag; borrow = Borrow_state.create (); live = true }

let home t = Gaddr.node_of t.g

let check_live t context =
  if not t.live then
    raise
      (Borrow_state.Violation
         { kind = Borrow_state.Use_after_death; state = Borrow_state.Dead; context })

let serving ctx t = Cluster.serving_node (Ctx.cluster ctx) (home t)

let read ctx t =
  check_live t "Stack_ref.read";
  Borrow_state.borrow_imm t.borrow ~context:"Stack_ref.read";
  let cluster = Ctx.cluster ctx in
  let target = serving ctx t in
  if target = ctx.Ctx.node then Ctx.charge_cycles ctx 370.0
  else begin
    (* Fetch a copy; with eager eviction the copy dies with this borrow,
       so there is nothing to install in the cache. *)
    Ctx.note_remote_access ctx ~target;
    Ctx.flush ctx;
    Fabric.rdma_read (Ctx.fabric ctx) ~from:ctx.Ctx.node ~target ~bytes:t.size
  end;
  let v = Univ.unpack_exn t.tag (Cluster.heap_read cluster t.g).Drust_memory.Partition.value in
  Borrow_state.return_imm t.borrow ~context:"Stack_ref.read";
  v

let with_mut ctx t f =
  check_live t "Stack_ref.with_mut";
  Borrow_state.borrow_mut t.borrow ~context:"Stack_ref.with_mut";
  let cluster = Ctx.cluster ctx in
  let target = serving ctx t in
  let remote = target <> ctx.Ctx.node in
  if remote then begin
    (* Copy the value into a local scratch buffer... *)
    Ctx.note_remote_access ctx ~target;
    Ctx.flush ctx;
    Fabric.rdma_read (Ctx.fabric ctx) ~from:ctx.Ctx.node ~target ~bytes:t.size
  end
  else Ctx.charge_cycles ctx 370.0;
  let v = Univ.unpack_exn t.tag (Cluster.heap_read cluster t.g).Drust_memory.Partition.value in
  let finish () =
    if remote then begin
      (* ...and write the modified copy back when the borrow expires. *)
      Ctx.flush ctx;
      Fabric.rdma_write (Ctx.fabric ctx) ~from:ctx.Ctx.node ~target ~bytes:t.size
    end
    else Ctx.charge_cycles ctx 370.0;
    Borrow_state.return_mut t.borrow ~context:"Stack_ref.with_mut"
  in
  match f v with
  | new_value, result ->
      Cluster.heap_write cluster t.g (Univ.pack t.tag new_value);
      finish ();
      result
  | exception e ->
      finish ();
      raise e

let drop ctx t =
  check_live t "Stack_ref.drop";
  Borrow_state.kill t.borrow ~context:"Stack_ref.drop";
  t.live <- false;
  Ctx.charge_cycles ctx 20.0;
  Cluster.heap_free (Ctx.cluster ctx) t.g
