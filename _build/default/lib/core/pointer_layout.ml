module Gaddr = Drust_memory.Gaddr

type words = { w0 : int64; w1 : int64 }

(* Word 0: [ color:16 | address:48 ].  The simulator's Gaddr packs
   (color | node | offset) into an OCaml int with the same widths, so the
   translation is a shift: Gaddr's color sits at bit 47, the wire format
   puts it at bit 48. *)

let color_shift_wire = 48
let addr_mask_wire = 0xFFFF_FFFF_FFFFL

let encode ~gaddr ~ubit ~ext =
  if Int64.logand ext 0x8000_0000_0000_0000L <> 0L then
    invalid_arg "Pointer_layout.encode: ext overflows 63 bits";
  let color = Int64.of_int (Gaddr.color_of gaddr) in
  let addr = Int64.of_int (Gaddr.to_int (Gaddr.clear_color gaddr)) in
  let w0 =
    Int64.logor (Int64.shift_left color color_shift_wire)
      (Int64.logand addr addr_mask_wire)
  in
  let w1 =
    Int64.logor (if ubit then 0x8000_0000_0000_0000L else 0L) ext
  in
  { w0; w1 }

let decode { w0; w1 } =
  let color = Int64.to_int (Int64.shift_right_logical w0 color_shift_wire) in
  let addr = Int64.to_int (Int64.logand w0 addr_mask_wire) in
  let gaddr = Gaddr.with_color (Gaddr.of_int_exn addr) color in
  let ubit = Int64.logand w1 0x8000_0000_0000_0000L <> 0L in
  let ext = Int64.logand w1 0x7FFF_FFFF_FFFF_FFFFL in
  (gaddr, ubit, ext)

let null = { w0 = 0L; w1 = 0L }
let is_null w = w.w0 = 0L && w.w1 = 0L

let byte_size = 16

let to_bytes { w0; w1 } =
  let b = Bytes.create byte_size in
  Bytes.set_int64_le b 0 w0;
  Bytes.set_int64_le b 8 w1;
  b

let of_bytes b =
  if Bytes.length b <> byte_size then
    invalid_arg "Pointer_layout.of_bytes: need exactly 16 bytes";
  { w0 = Bytes.get_int64_le b 0; w1 = Bytes.get_int64_le b 8 }
