(** §3 motivation measurement: the cost anatomy of a GAM remote object
    read.  The paper reports that reading an uncached 512-byte object in
    GAM takes 16 µs while the wire-level read itself is only 3.6 µs —
    coherence maintenance is 77 % of the access.  DRust's equivalent read
    is a single one-sided fetch. *)

type result = {
  gam_total : float;
  wire_time : float;
  coherence_fraction : float;
  drust_total : float;
}

val run : unit -> result
