lib/experiments/motivation.mli:
