lib/experiments/traffic.mli: Bench_setup
