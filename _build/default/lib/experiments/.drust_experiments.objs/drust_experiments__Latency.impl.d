lib/experiments/latency.ml: Bench_setup Drust_appkit List Printf Report
