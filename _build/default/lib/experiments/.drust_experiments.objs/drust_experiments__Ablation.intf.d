lib/experiments/ablation.mli:
