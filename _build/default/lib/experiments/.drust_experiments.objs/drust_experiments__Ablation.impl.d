lib/experiments/ablation.ml: Bench_setup Drust_appkit Drust_core Drust_dsm Drust_machine Drust_runtime Drust_sim Float List Printf Report
