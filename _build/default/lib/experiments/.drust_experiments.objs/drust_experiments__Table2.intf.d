lib/experiments/table2.mli:
