lib/experiments/table2.ml: Drust_core Drust_util List Printf Report
