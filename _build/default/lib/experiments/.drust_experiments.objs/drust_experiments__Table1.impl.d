lib/experiments/table1.ml: Drust_dataframe Drust_gemm Drust_kvstore Drust_socialnet Drust_util Format List Printf Report
