lib/experiments/ycsb_suite.mli: Bench_setup Drust_workloads
