lib/experiments/ycsb_suite.ml: Bench_setup Drust_appkit Drust_kvstore Drust_machine Drust_workloads List Report
