lib/experiments/fig7.mli: Bench_setup
