lib/experiments/bench_setup.mli: Drust_appkit Drust_dsm Drust_machine
