lib/experiments/migration.ml: Array Bench_setup Drust_appkit Drust_core Drust_machine Drust_runtime Drust_sim Drust_util List Report
