lib/experiments/fig5.ml: Bench_setup Drust_appkit List Printf Report
