lib/experiments/fig5.mli: Bench_setup
