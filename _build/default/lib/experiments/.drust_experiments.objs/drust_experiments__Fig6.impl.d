lib/experiments/fig6.ml: Bench_setup Drust_appkit Drust_dataframe Drust_machine Printf Report
