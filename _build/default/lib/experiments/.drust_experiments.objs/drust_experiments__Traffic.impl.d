lib/experiments/traffic.ml: Bench_setup Drust_appkit Drust_dataframe Drust_gemm Drust_kvstore Drust_machine Drust_net Drust_socialnet Drust_util Float Format List Printf Report
