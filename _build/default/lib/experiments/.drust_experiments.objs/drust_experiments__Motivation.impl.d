lib/experiments/motivation.ml: Bench_setup Drust_appkit Drust_core Drust_gam Drust_machine Drust_net Drust_sim Float Report
