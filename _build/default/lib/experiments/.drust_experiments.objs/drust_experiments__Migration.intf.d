lib/experiments/migration.mli:
