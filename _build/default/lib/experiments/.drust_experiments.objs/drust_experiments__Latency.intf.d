lib/experiments/latency.mli: Bench_setup
