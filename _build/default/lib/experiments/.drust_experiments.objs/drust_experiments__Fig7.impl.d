lib/experiments/fig7.ml: Bench_setup Drust_appkit List Printf Report
