lib/experiments/report.ml: Buffer Char Drust_util Filename Format List Printf String Sys Unix
