lib/experiments/report.mli:
