module Deref_cost = Drust_core.Deref_cost
module Stats = Drust_util.Stats

type row = { label : string; average : float; median : float; p90 : float }

let paper = [ ("DRust", (395.0, 356.0, 536.0)); ("Rust", (364.0, 332.0, 496.0)) ]

let run ?(samples = 200_000) ?(seed = 42) () =
  Report.section "Table 2: pointer dereference latency (cycles)";
  let rng = Drust_util.Rng.create ~seed in
  let collect label kind =
    let s = Deref_cost.collect rng kind ~n:samples in
    {
      label;
      average = Stats.mean s;
      median = Stats.median s;
      p90 = Stats.percentile s 90.0;
    }
  in
  let rows =
    [ collect "DRust" Deref_cost.Drust_box; collect "Rust" Deref_cost.Plain_box ]
  in
  Report.table
    ~header:[ "pointer"; "average"; "median"; "P90"; "paper (avg/med/P90)" ]
    ~rows:
      (List.map
         (fun r ->
           let pa, pm, pp = List.assoc r.label paper in
           [
             r.label;
             Printf.sprintf "%.0f" r.average;
             Printf.sprintf "%.0f" r.median;
             Printf.sprintf "%.0f" r.p90;
             Printf.sprintf "%.0f / %.0f / %.0f" pa pm pp;
           ])
         rows);
  Report.note
    (Printf.sprintf "modelled runtime-check overhead: %.0f cycles"
       Deref_cost.check_overhead_cycles);
  rows
