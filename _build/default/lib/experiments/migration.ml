module B = Bench_setup
module Cluster = Drust_machine.Cluster
module Ctx = Drust_machine.Ctx
module Engine = Drust_sim.Engine
module Dthread = Drust_runtime.Dthread
module Controller = Drust_runtime.Controller
module Stats = Drust_util.Stats

type result = {
  migrations : int;
  average_latency : float;
  p90_latency : float;
  controller_migrations : int;
}

(* Controller-driven run: overload one node with compute threads and let
   the rebalancer spread them. *)
let controller_run () =
  let cluster = Cluster.create (B.testbed ~nodes:8 ()) in
  let controller = Controller.start ~probe_interval:0.5e-3 cluster in
  let engine = Cluster.engine cluster in
  ignore
    (Engine.spawn engine (fun () ->
         let ctx = Ctx.make cluster ~node:0 in
         (* 48 compute-heavy threads all born on node 0 (~3x its cores),
            each also touching data on other servers so the CPU-pressure
            policy has migration targets. *)
         let remote =
           Array.init 8 (fun n ->
               Drust_core.Protocol.create_on ctx ~node:n ~size:256
                 Drust_appkit.Appkit.blob)
         in
         let threads =
           List.init 48 (fun i ->
               Dthread.spawn_on ctx ~node:0 (fun wctx ->
                   for _ = 1 to 40 do
                     let o = remote.((i + 1) mod 8) in
                     let r = Drust_core.Protocol.borrow_imm wctx o in
                     ignore (Drust_core.Protocol.imm_deref wctx r);
                     Drust_core.Protocol.drop_imm wctx r;
                     Ctx.compute wctx ~cycles:2_000_000.0
                   done))
         in
         Dthread.join_all ctx threads;
         Controller.stop controller));
  Cluster.run cluster;
  Controller.migrations_ordered controller

let run () =
  Report.section "S7.3 drill-down: thread migration latency";
  (* Direct protocol measurement: migrate 15 threads between node pairs
     (the count the paper observed during GEMM). *)
  let cluster = Cluster.create (B.testbed ~nodes:8 ()) in
  let engine = Cluster.engine cluster in
  ignore
    (Engine.spawn engine (fun () ->
         let ctx = Ctx.make cluster ~node:0 in
         let threads =
           List.init 15 (fun i ->
               Dthread.spawn_on ctx ~node:(i mod 8) (fun wctx ->
                   Ctx.compute wctx ~cycles:50_000.0;
                   ignore (Dthread.migrate_now wctx ~target:((wctx.Ctx.node + 3) mod 8));
                   Ctx.compute wctx ~cycles:50_000.0))
         in
         Dthread.join_all ctx threads));
  Cluster.run cluster;
  let stats = Dthread.migration_latency_stats cluster in
  let controller_migrations = controller_run () in
  let result =
    {
      migrations = Stats.count stats;
      average_latency = Stats.mean stats;
      p90_latency = Stats.percentile stats 90.0;
      controller_migrations;
    }
  in
  Report.table
    ~header:[ "metric"; "measured"; "paper" ]
    ~rows:
      [
        [ "threads migrated"; string_of_int result.migrations; "15" ];
        [ "avg latency"; Report.cell_time result.average_latency; "218 us" ];
        [ "P90 latency"; Report.cell_time result.p90_latency; "-" ];
        [
          "controller-ordered migrations (overload run)";
          string_of_int result.controller_migrations;
          "-";
        ];
      ];
  result
