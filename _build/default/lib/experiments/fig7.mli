(** Figure 7: cost of cache coherence — each application run with a fixed
    total resource budget (16 cores / 64 GB) on one node vs spread over
    eight nodes.  The slowdown isolates protocol + cross-server access
    cost from scaling effects.  Paper: DRust loses 4 % (GEMM) to 32 %
    (KV Store); GAM and Grappa lose 10–98 %.  SocialNet is omitted, as in
    the paper (its original version is not comparable). *)

type row = {
  app : Bench_setup.app;
  system : Bench_setup.system;
  overhead : float;  (** 1 - T(8 nodes) / T(1 node), fixed resources *)
}

val run : unit -> row list
