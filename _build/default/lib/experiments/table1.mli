(** Table 1: evaluated applications and their characteristics.

    The paper lists each application's dataset, memory footprint, and
    compute intensity.  Our workloads are scaled-down synthetic
    equivalents; this table reports the simulated footprint/intensity side
    by side with the paper's values. *)

type row = {
  app : string;
  dataset : string;
  sim_memory_bytes : int;
  sim_intensity : float;
  paper_memory_gb : int;
  paper_intensity : float;
}

val run : unit -> row list
