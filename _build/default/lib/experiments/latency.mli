(** Supplementary: per-operation latency distributions.

    Throughput tells who wins; latency tells why.  For the two
    request-oriented applications (KV Store ops, SocialNet requests) this
    experiment reports median and P99 virtual latency on the 8-node
    testbed for each DSM, next to the 1-node original.  DRust's reads ride
    single one-sided verbs, so its P99 should sit far below GAM's
    (directory round trips) and Grappa's (aggregation timeouts). *)

type row = {
  app : Bench_setup.app;
  system : Bench_setup.system;
  p50_us : float;
  p99_us : float;
}

val run : unit -> row list
