module Df = Drust_dataframe.Dataframe
module Sn = Drust_socialnet.Socialnet
module Gm = Drust_gemm.Gemm
module Kv = Drust_kvstore.Kvstore

type row = {
  app : string;
  dataset : string;
  sim_memory_bytes : int;
  sim_intensity : float;
  paper_memory_gb : int;
  paper_intensity : float;
}

let rows () =
  let df = Df.default_config in
  let sn = Sn.default_config in
  let gm = Gm.default_config in
  let kv = Kv.default_config in
  [
    {
      app = "DataFrame";
      dataset = "synthetic h2oai-shaped chunked columns";
      sim_memory_bytes = df.Df.partitions * df.Df.chunk_bytes;
      sim_intensity = df.Df.intensity;
      paper_memory_gb = 64;
      paper_intensity = 110.13;
    };
    {
      app = "SocialNet";
      dataset = "synthetic power-law graph (Socfb-Penn94-shaped)";
      sim_memory_bytes =
        2 * sn.Sn.users * sn.Sn.timeline_bytes
        + (sn.Sn.requests / 10 * sn.Sn.text_bytes);
      sim_intensity = 86.09;
      paper_memory_gb = 64;
      paper_intensity = 86.09;
    };
    {
      app = "GEMM";
      dataset = "dense random blocked matrices (LAPACK-shaped)";
      sim_memory_bytes = 2 * gm.Gm.grid * gm.Gm.grid * gm.Gm.block_bytes;
      sim_intensity = gm.Gm.intensity;
      paper_memory_gb = 96;
      paper_intensity = 300.63;
    };
    {
      app = "KV Store";
      dataset = "YCSB zipf(0.99), 90% GET / 10% SET";
      sim_memory_bytes = kv.Kv.buckets * kv.Kv.bucket_bytes;
      sim_intensity = kv.Kv.intensity;
      paper_memory_gb = 48;
      paper_intensity = 48.15;
    };
  ]

let run () =
  Report.section "Table 1: applications and workload characteristics";
  let rs = rows () in
  Report.table
    ~header:
      [
        "application"; "dataset (simulated stand-in)"; "sim memory";
        "intensity (cyc/B)"; "paper memory"; "paper intensity";
      ]
    ~rows:
      (List.map
         (fun r ->
           [
             r.app;
             r.dataset;
             Format.asprintf "%a" Drust_util.Units.pp_bytes r.sim_memory_bytes;
             Printf.sprintf "%.0f" r.sim_intensity;
             Printf.sprintf "%d GB" r.paper_memory_gb;
             Printf.sprintf "%.2f" r.paper_intensity;
           ])
         rs);
  Report.note
    "datasets are scaled to simulator size; intensities follow Table 1";
  rs
