(** Figure 5: application throughput scaling (1–8 nodes) for DRust, GAM,
    Grappa, normalized to each application's single-node original run. *)

type row = {
  app : Bench_setup.app;
  system : Bench_setup.system;
  nodes : int;
  speedup : float;  (** normalized throughput vs 1-node original *)
  throughput : float;
}

val run : ?node_counts:int list -> unit -> row list
(** Runs the full sweep (including SocialNet's original-distributed
    baseline) and prints the four sub-figures with the paper's quoted
    reference points. *)

val paper_8node : (Bench_setup.app * Bench_setup.system * float) list
(** Speedups the paper quotes at 8 nodes. *)
