(** Supplementary: coherence traffic per application operation.

    Quantifies the paper's qualitative claims ("extensive coherence
    traffic", "no coherence overhead for reads") by counting fabric verbs
    and bytes per application operation for each DSM on the 8-node
    testbed.  DRust should show strictly fewer control messages than GAM
    (no invalidations) and far fewer than Grappa (no delegation). *)

type row = {
  app : Bench_setup.app;
  system : Bench_setup.system;
  remote_ops_per_op : float;
  bytes_per_op : float;
}

val run : unit -> row list
