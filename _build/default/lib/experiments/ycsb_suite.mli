(** Extension: the full YCSB core-workload suite on the KV store.

    The paper evaluates one mix (zipf 90/10); this extension runs all six
    standard YCSB workloads (A–F) on the 8-node testbed for the three
    DSMs, normalized per workload to the 1-node original.  Expected
    shape: DRust's lead grows with read share (C best — pure caching)
    and shrinks as writes/RMWs serialize on mutex+move (A, F). *)

type row = {
  workload : Drust_workloads.Ycsb.workload;
  system : Bench_setup.system;
  speedup : float;
}

val run : unit -> row list
