module B = Bench_setup
module Appkit = Drust_appkit.Appkit

type row = { app : B.app; system : B.system; overhead : float }

let paper =
  [
    (B.Dataframe_app, B.Drust, 0.26);
    (B.Gemm_app, B.Drust, 0.04);
    (B.Kvstore_app, B.Drust, 0.32);
  ]

let paper_at app system =
  List.fold_left
    (fun acc (a, s, v) -> if a = app && s = system then Some v else acc)
    None paper

let apps = [ B.Dataframe_app; B.Gemm_app; B.Kvstore_app ]

let run () =
  Report.section
    "Figure 7: cache-coherence cost (fixed 16 cores / 64GB, 1 vs 8 nodes)";
  let rows = ref [] in
  let body =
    List.map
      (fun app ->
        let cells =
          List.map
            (fun system ->
              let one =
                B.run_app app system ~params:(B.fixed_testbed ~nodes:1)
              in
              let eight =
                B.run_app app system ~params:(B.fixed_testbed ~nodes:8)
              in
              let overhead =
                1.0 -. (eight.Appkit.throughput /. one.Appkit.throughput)
              in
              rows := { app; system; overhead } :: !rows;
              let paper_s =
                match paper_at app system with
                | Some v -> Printf.sprintf " (paper %.0f%%)" (100.0 *. v)
                | None -> ""
              in
              Report.cell_pct overhead ^ paper_s)
            B.all_systems
        in
        B.app_name app :: cells)
      apps
  in
  Report.table
    ~header:("app" :: List.map B.system_name B.all_systems)
    ~rows:body;
  Report.note
    "overhead = 1 - throughput(8 nodes) / throughput(1 node), same total resources";
  List.rev !rows
