(** §7.3 drill-down: thread migration latency.

    The paper runs GEMM on 8 nodes and observes the runtime migrate 15
    threads at an average of 218 µs each.  We measure the same migration
    protocol (controller round trip, padded-stack transfer, resume
    message) for a batch of threads moved between random node pairs, plus
    a controller-driven run where migrations are triggered by load
    imbalance. *)

type result = {
  migrations : int;
  average_latency : float;
  p90_latency : float;
  controller_migrations : int;  (** migrations ordered by the controller *)
}

val run : unit -> result
