(** Design-choice ablations called out in DESIGN.md.

    1. {b Pointer coloring vs always-move}: local-write epochs with the
       color optimization on vs the naive move-every-write variant.
    2. {b U-bit elision}: repeated writes inside one epoch with and
       without the color-update bit.
    3. {b TBox batched fetch vs pointer chasing}: summing a remote linked
       list with and without affinity ties (the paper's Listing 3).
    4. {b One-sided vs two-sided mutexes}: DRust's CAS locks vs GAM-style
       RPC locks under contention. *)

type row = { experiment : string; variant : string; value : float; unit_ : string }

val run : unit -> row list
