module B = Bench_setup
module Cluster = Drust_machine.Cluster
module Ctx = Drust_machine.Ctx
module Engine = Drust_sim.Engine
module Model = Drust_net.Model
module P = Drust_core.Protocol
module Appkit = Drust_appkit.Appkit

type result = {
  gam_total : float;
  wire_time : float;
  coherence_fraction : float;
  drust_total : float;
}

(* Average the latency of [n] uncached remote 512 B reads under [f]. *)
let measure_reads cluster reads =
  let engine = Cluster.engine cluster in
  let acc = ref 0.0 in
  ignore
    (Engine.spawn engine (fun () ->
         let ctx = Ctx.make cluster ~node:0 in
         let samples = reads ctx in
         acc := samples));
  Cluster.run cluster;
  !acc

let run () =
  Report.section "Motivation (S3): anatomy of one uncached remote read (512 B)";
  let n = 200 in
  (* GAM: allocate fresh objects on node 1, read each once from node 0. *)
  let gam_cluster = Cluster.create (B.testbed ~nodes:8 ()) in
  let gam = Drust_gam.Gam.create gam_cluster in
  let gam_total =
    measure_reads gam_cluster (fun ctx ->
        let engine = Cluster.engine gam_cluster in
        let total = ref 0.0 in
        for _ = 1 to n do
          let h = Drust_gam.Gam.alloc_on gam ctx ~node:1 ~size:512 Appkit.blob in
          Ctx.flush ctx;
          let t0 = Engine.now engine in
          ignore (Drust_gam.Gam.read gam ctx h);
          Ctx.flush ctx;
          total := !total +. (Engine.now engine -. t0)
        done;
        !total /. Float.of_int n)
  in
  (* DRust: same pattern through an immutable borrow. *)
  let dr_cluster = Cluster.create (B.testbed ~nodes:8 ()) in
  let drust_total =
    measure_reads dr_cluster (fun ctx ->
        let engine = Cluster.engine dr_cluster in
        let total = ref 0.0 in
        for _ = 1 to n do
          let o = P.create_on ctx ~node:1 ~size:512 Appkit.blob in
          Ctx.flush ctx;
          let t0 = Engine.now engine in
          let r = P.borrow_imm ctx o in
          ignore (P.imm_deref ctx r);
          P.drop_imm ctx r;
          Ctx.flush ctx;
          total := !total +. (Engine.now engine -. t0)
        done;
        !total /. Float.of_int n)
  in
  let wire = Model.oneside_time Model.infiniband_40g ~bytes:512 in
  let coherence_fraction = 1.0 -. (wire /. gam_total) in
  Report.table
    ~header:[ "metric"; "measured"; "paper" ]
    ~rows:
      [
        [ "GAM uncached 512B read"; Report.cell_time gam_total; "16 us" ];
        [ "wire-level read time"; Report.cell_time wire; "3.6 us" ];
        [ "coherence overhead"; Report.cell_pct coherence_fraction; "77%" ];
        [ "DRust equivalent read"; Report.cell_time drust_total; "~wire time" ];
      ];
  { gam_total; wire_time = wire; coherence_fraction; drust_total }
