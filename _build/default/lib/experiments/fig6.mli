(** Figure 6: effectiveness of DRust's affinity annotations — DataFrame on
    8 nodes with annotations enabled incrementally (none, +TBox,
    +spawn_to).  The paper reports +12 % from TBox and a further +9 % from
    spawn_to. *)

type row = { label : string; speedup : float; vs_plain : float }

val run : unit -> row list
