(** Table 2: dereference latency of DRust's checked Box pointer vs an
    ordinary Rust Box (8-byte local uncached object).  Paper values in
    cycles: DRust 395 / 356 / 536 and Rust 364 / 332 / 496
    (average / median / P90). *)

type row = {
  label : string;
  average : float;
  median : float;
  p90 : float;
}

val run : ?samples:int -> ?seed:int -> unit -> row list
