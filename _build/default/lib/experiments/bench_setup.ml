module Params = Drust_machine.Params
module Cluster = Drust_machine.Cluster
module Dsm = Drust_dsm.Dsm
module Appkit = Drust_appkit.Appkit

type system = Drust | Gam | Grappa | Original

let system_name = function
  | Drust -> "DRust"
  | Gam -> "GAM"
  | Grappa -> "Grappa"
  | Original -> "Original"

let all_systems = [ Drust; Gam; Grappa ]

let testbed ?(nodes = 8) ?(seed = 42) () =
  { Params.default with Params.nodes; mem_per_node = Drust_util.Units.gib 8; seed }

let fixed_testbed ~nodes =
  Params.fixed_resource (testbed ~nodes ()) ~total_cores:16
    ~total_mem:(Drust_util.Units.gib 8 * 8) ~nodes

let make_backend system cluster =
  match system with
  | Drust -> Drust_dsm.Drust_backend.create cluster
  | Gam -> Drust_gam.Gam.backend (Drust_gam.Gam.create cluster)
  | Grappa -> Drust_grappa.Grappa.backend (Drust_grappa.Grappa.create cluster)
  | Original -> Drust_dsm.Local_backend.create cluster

type app = Dataframe_app | Socialnet_app | Gemm_app | Kvstore_app

let app_name = function
  | Dataframe_app -> "DataFrame"
  | Socialnet_app -> "SocialNet"
  | Gemm_app -> "GEMM"
  | Kvstore_app -> "KV Store"

let all_apps = [ Dataframe_app; Socialnet_app; Gemm_app; Kvstore_app ]

let run_app ?(affinity = false) ?(pass_by_value = false) app system ~params =
  let cluster = Cluster.create params in
  let backend = make_backend system cluster in
  match app with
  | Dataframe_app ->
      Drust_dataframe.Dataframe.run ~cluster ~backend
        {
          Drust_dataframe.Dataframe.default_config with
          Drust_dataframe.Dataframe.use_tbox = affinity;
          use_spawn_to = affinity;
        }
  | Socialnet_app ->
      Drust_socialnet.Socialnet.run ~cluster ~backend
        {
          Drust_socialnet.Socialnet.default_config with
          Drust_socialnet.Socialnet.pass_by_value;
        }
  | Gemm_app ->
      Drust_gemm.Gemm.run ~cluster ~backend Drust_gemm.Gemm.default_config
  | Kvstore_app ->
      Drust_kvstore.Kvstore.run ~cluster ~backend
        Drust_kvstore.Kvstore.default_config

(* Memoized: every figure normalizes against the same baseline. *)
let baseline_cache : (app, Appkit.result) Hashtbl.t = Hashtbl.create 4

let single_node_baseline app =
  match Hashtbl.find_opt baseline_cache app with
  | Some r -> r
  | None ->
      let pass_by_value = app = Socialnet_app in
      let r =
        run_app ~pass_by_value app Original ~params:(testbed ~nodes:1 ())
      in
      Hashtbl.replace baseline_cache app r;
      r
