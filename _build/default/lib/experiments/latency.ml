module B = Bench_setup
module Appkit = Drust_appkit.Appkit

type row = {
  app : B.app;
  system : B.system;
  p50_us : float;
  p99_us : float;
}

let measure app system ~nodes =
  let r =
    B.run_app app system ~params:(B.testbed ~nodes ())
      ~pass_by_value:(system = B.Original)
  in
  {
    app;
    system;
    p50_us = List.assoc "lat_p50_us" r.Appkit.extra;
    p99_us = List.assoc "lat_p99_us" r.Appkit.extra;
  }

let run () =
  Report.section
    "Supplementary: per-operation latency (median / P99, virtual us)";
  let apps = [ B.Kvstore_app; B.Socialnet_app ] in
  let rows = ref [] in
  let body =
    List.concat_map
      (fun app ->
        List.map
          (fun (system, nodes, label) ->
            let r = measure app system ~nodes in
            rows := r :: !rows;
            [
              B.app_name app;
              label;
              Printf.sprintf "%.1f" r.p50_us;
              Printf.sprintf "%.1f" r.p99_us;
            ])
          [
            (B.Original, 1, "Original (1 node)");
            (B.Drust, 8, "DRust (8 nodes)");
            (B.Gam, 8, "GAM (8 nodes)");
            (B.Grappa, 8, "Grappa (8 nodes)");
          ])
      apps
  in
  Report.table ~header:[ "app"; "system"; "p50 (us)"; "p99 (us)" ] ~rows:body;
  List.rev !rows
