type t = {
  oneside_base : float;
  twoside_base : float;
  atomic_base : float;
  bandwidth : float;
  local_base : float;
  jitter : float;
}

(* 40 Gbps of payload bandwidth is ~5 GB/s; the 3.5 us one-sided base plus
   512 B / 5 GB/s ~ 0.1 us reproduces the paper's 3.6 us remote object
   read (S3). *)
let infiniband_40g =
  {
    oneside_base = 3.5e-6;
    twoside_base = 4.5e-6;
    atomic_base = 2.2e-6;
    bandwidth = 5.0e9;
    local_base = 0.15e-6;
    jitter = 0.03;
  }

let transfer_time t ~bytes = Float.of_int bytes /. t.bandwidth
let oneside_time t ~bytes = t.oneside_base +. transfer_time t ~bytes
let twoside_time t ~bytes = t.twoside_base +. transfer_time t ~bytes
let atomic_time t = t.atomic_base

let pp fmt t =
  Format.fprintf fmt
    "net{1side=%.2fus 2side=%.2fus atomic=%.2fus bw=%.1fGB/s local=%.2fus}"
    (t.oneside_base *. 1e6) (t.twoside_base *. 1e6) (t.atomic_base *. 1e6)
    (t.bandwidth /. 1e9) (t.local_base *. 1e6)
