module Engine = Drust_sim.Engine

type node_id = int

type counters = {
  mutable reads : int;
  mutable writes : int;
  mutable atomics : int;
  mutable rpcs : int;
  mutable bytes_out : int;
  mutable remote_ops : int;
}

type t = {
  engine : Engine.t;
  rng : Drust_util.Rng.t;
  model : Model.t;
  nodes : int;
  counters : counters array;
  (* Egress line-rate serialization: the NIC that sources a payload can
     push one stream at line rate; concurrent bulk transfers from the
     same node queue behind each other.  Small control messages are
     exempt (they ride the latency, not the bandwidth). *)
  nics : Drust_sim.Resource.t array;
  mutable trace : Drust_sim.Trace.t option;
}

(* Transfers below this size do not contend for the DMA engine. *)
let bulk_threshold = 4096

let fresh_counters () =
  { reads = 0; writes = 0; atomics = 0; rpcs = 0; bytes_out = 0; remote_ops = 0 }

let create ~engine ~rng ~model ~nodes =
  if nodes <= 0 then invalid_arg "Fabric.create: need at least one node";
  {
    engine;
    rng;
    model;
    nodes;
    counters = Array.init nodes (fun _ -> fresh_counters ());
    nics =
      Array.init nodes (fun _ -> Drust_sim.Resource.create engine ~capacity:1);
    trace = None;
  }

let set_trace t trace = t.trace <- trace

let traced t verb ~from ~target ~bytes =
  match t.trace with
  | None -> ()
  | Some tr ->
      Drust_sim.Trace.recordf tr ~category:"fabric" "%s %d->%d %dB" verb from
        target bytes

let engine t = t.engine
let node_count t = t.nodes
let model t = t.model

let check_node t n label =
  if n < 0 || n >= t.nodes then
    invalid_arg (Printf.sprintf "Fabric.%s: node %d out of range" label n)

(* Apply multiplicative gaussian jitter to a base latency, clamped so that
   a pathological sample can never be negative or more than double. *)
let jittered t base =
  if t.model.Model.jitter <= 0.0 then base
  else
    let factor =
      Drust_util.Rng.gaussian t.rng ~mu:1.0 ~sigma:t.model.Model.jitter
    in
    base *. Float.max 0.5 (Float.min 2.0 factor)

let latency t ~from ~target ~base ~bytes =
  let raw =
    if from = target then t.model.Model.local_base +. Model.transfer_time t.model ~bytes
    else base +. Model.transfer_time t.model ~bytes
  in
  jittered t raw

(* Block for the verb's latency; a bulk payload additionally holds the
   data source's NIC for its wire time, so concurrent bulk egress from
   one node serializes at line rate. *)
let delay_with_nic t ~data_source ~from ~target ~base ~bytes =
  if bytes >= bulk_threshold && from <> target then begin
    let wire = Model.transfer_time t.model ~bytes in
    Engine.delay t.engine (latency t ~from ~target ~base ~bytes:0);
    Drust_sim.Resource.use t.nics.(data_source) (fun () ->
        Engine.delay t.engine (jittered t wire))
  end
  else Engine.delay t.engine (latency t ~from ~target ~base ~bytes)

let note t ~from ~target ~bytes =
  let c = t.counters.(from) in
  c.bytes_out <- c.bytes_out + bytes;
  if from <> target then c.remote_ops <- c.remote_ops + 1

let rdma_read t ~from ~target ~bytes =
  check_node t from "rdma_read";
  check_node t target "rdma_read";
  t.counters.(from).reads <- t.counters.(from).reads + 1;
  note t ~from ~target ~bytes;
  traced t "READ" ~from ~target ~bytes;
  (* READ pulls data out of the target: the target's NIC is the egress. *)
  delay_with_nic t ~data_source:target ~from ~target
    ~base:t.model.Model.oneside_base ~bytes

let rdma_write t ~from ~target ~bytes =
  check_node t from "rdma_write";
  check_node t target "rdma_write";
  t.counters.(from).writes <- t.counters.(from).writes + 1;
  note t ~from ~target ~bytes;
  traced t "WRITE" ~from ~target ~bytes;
  (* WRITE pushes data from the sender: its NIC is the egress. *)
  delay_with_nic t ~data_source:from ~from ~target
    ~base:t.model.Model.oneside_base ~bytes

let rdma_write_async t ~from ~target ~bytes k =
  check_node t from "rdma_write_async";
  check_node t target "rdma_write_async";
  t.counters.(from).writes <- t.counters.(from).writes + 1;
  note t ~from ~target ~bytes;
  let dt = latency t ~from ~target ~base:t.model.Model.oneside_base ~bytes in
  Engine.schedule_after t.engine dt k

let rdma_atomic t ~from ~target f =
  check_node t from "rdma_atomic";
  check_node t target "rdma_atomic";
  t.counters.(from).atomics <- t.counters.(from).atomics + 1;
  note t ~from ~target ~bytes:8;
  traced t "ATOMIC" ~from ~target ~bytes:8;
  Engine.delay t.engine (latency t ~from ~target ~base:t.model.Model.atomic_base ~bytes:0);
  f ()

let rpc t ~from ~target ~req_bytes ~resp_bytes handler =
  check_node t from "rpc";
  check_node t target "rpc";
  t.counters.(from).rpcs <- t.counters.(from).rpcs + 1;
  note t ~from ~target ~bytes:(req_bytes + resp_bytes);
  traced t "RPC" ~from ~target ~bytes:(req_bytes + resp_bytes);
  delay_with_nic t ~data_source:from ~from ~target
    ~base:t.model.Model.twoside_base ~bytes:req_bytes;
  let result = handler () in
  delay_with_nic t ~data_source:target ~from ~target
    ~base:t.model.Model.twoside_base ~bytes:resp_bytes;
  result

let send_async t ~from ~target ~bytes handler =
  check_node t from "send_async";
  check_node t target "send_async";
  t.counters.(from).rpcs <- t.counters.(from).rpcs + 1;
  note t ~from ~target ~bytes;
  traced t "SEND(async)" ~from ~target ~bytes;
  let dt =
    latency t ~from ~target ~base:t.model.Model.twoside_base ~bytes
  in
  ignore
    (Engine.spawn ~at:(Engine.now t.engine +. dt) t.engine (fun () -> handler ()))

let counters_of t node =
  check_node t node "counters_of";
  t.counters.(node)

let total_remote_ops t =
  Array.fold_left (fun acc c -> acc + c.remote_ops) 0 t.counters

let total_bytes t = Array.fold_left (fun acc c -> acc + c.bytes_out) 0 t.counters

let reset_counters t =
  Array.iteri (fun i _ -> t.counters.(i) <- fresh_counters ()) t.counters
