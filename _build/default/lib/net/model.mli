(** Network latency/bandwidth model.

    Calibrated against the measurements the paper itself reports for its
    testbed (40 Gbps Mellanox ConnectX-3 InfiniBand, §3 and §7): reading a
    512-byte object over the wire with a one-sided READ verb costs 3.6 µs,
    while a full GAM uncached read costs 16 µs (77 % coherence overhead).
    All verbs are point-to-point (the DRust protocol needs no broadcasts);
    the switch is modelled as full bisection bandwidth, which matches the
    100 Gbps switch feeding 40 Gbps NICs in the paper's cluster. *)

type t = {
  oneside_base : float;
      (** Base latency of a one-sided READ/WRITE verb (s), excluding
          payload serialization on the wire. *)
  twoside_base : float;
      (** Base latency of a two-sided SEND+RECV pair: includes the
          receiver-side CPU wakeup that one-sided verbs avoid. *)
  atomic_base : float;
      (** Latency of a remote ATOMIC_FETCH_AND_ADD / ATOMIC_CMP_AND_SWP. *)
  bandwidth : float;  (** NIC payload bandwidth in bytes/second. *)
  local_base : float;
      (** Cost of a verb whose source and target are the same node
          (loopback through the software stack, no wire). *)
  jitter : float;
      (** Relative standard deviation applied multiplicatively to each
          latency sample; 0 disables jitter. *)
}

val infiniband_40g : t
(** The paper's testbed NIC. *)

val transfer_time : t -> bytes:int -> float
(** Pure serialization time of a payload at NIC bandwidth. *)

val oneside_time : t -> bytes:int -> float
(** Latency of a one-sided verb carrying [bytes] of payload. *)

val twoside_time : t -> bytes:int -> float
val atomic_time : t -> float

val pp : Format.formatter -> t -> unit
