lib/net/fabric.ml: Array Drust_sim Drust_util Float Model Printf
