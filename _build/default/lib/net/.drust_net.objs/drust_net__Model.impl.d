lib/net/model.ml: Float Format
