lib/net/model.mli: Format
