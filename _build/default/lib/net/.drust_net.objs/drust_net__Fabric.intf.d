lib/net/fabric.mli: Drust_sim Drust_util Model
