lib/gam/gam.mli: Drust_dsm Drust_machine Drust_util
