(** GAM baseline (Cai et al., VLDB'18) re-implemented on the simulated
    fabric.

    GAM keeps data coherent with a {e directory-based} protocol at
    cache-block granularity (512 B default): every block has a home node
    whose directory tracks which nodes hold it Shared or Exclusive.  A
    read miss asks the home (two-sided), which may downgrade a remote
    exclusive holder; a write asks the home for ownership, which
    invalidates every sharer.  All of that is software on the home node's
    directory engine — this is the 77 % coherence overhead of the paper's
    §3 motivation measurement, which the default cost constants reproduce
    (a 512 B uncached read costs ~16 µs of which only 3.6 µs is wire
    time).

    Objects are packed into blocks by a bump allocator, so small objects
    share blocks and suffer {e false sharing} — a fine-granularity penalty
    DRust's object-level protocol avoids. *)

module Ctx = Drust_machine.Ctx

type t

type costs = {
  dir_proc : float;  (** home directory software time per request *)
  dir_per_block : float;  (** pipelined extra per additional block *)
  requester_proc : float;  (** requester-side protocol bookkeeping *)
  hit_check_cycles : float;  (** local state check on a cache hit *)
  inv_extra : float;  (** extra per additional sharer invalidated *)
}

val default_costs : costs

val create :
  ?block_size:int ->
  ?costs:costs ->
  ?cache_budget:int ->
  Drust_machine.Cluster.t ->
  t
(** [cache_budget] bounds each node's cache of remote data (default
    6 MiB at simulator scale, mirroring GAM's small default cache
    relative to its working sets); LRU objects beyond it are dropped and
    re-fetched on the next access. *)

val block_size : t -> int

type handle

val alloc : t -> Ctx.t -> size:int -> Drust_util.Univ.t -> handle
val alloc_on : t -> Ctx.t -> node:int -> size:int -> Drust_util.Univ.t -> handle

val read : t -> Ctx.t -> handle -> Drust_util.Univ.t
(** Acquire Shared on every block of the object, then read. *)

val write : t -> Ctx.t -> handle -> Drust_util.Univ.t -> unit
(** Acquire Exclusive (invalidating sharers), then write. *)

val update : t -> Ctx.t -> handle -> (Drust_util.Univ.t -> Drust_util.Univ.t) -> unit

val free : t -> Ctx.t -> handle -> unit
val home : handle -> int

(** {1 Statistics} *)

val read_misses : t -> int
val write_misses : t -> int
val invalidations_sent : t -> int
val reset_stats : t -> unit

(** {1 As a DSM backend} *)

val backend : t -> Drust_dsm.Dsm.t
