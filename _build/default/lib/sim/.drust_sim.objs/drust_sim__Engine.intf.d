lib/sim/engine.mli:
