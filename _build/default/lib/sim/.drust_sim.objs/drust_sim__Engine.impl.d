lib/sim/engine.ml: Drust_util Effect List Printexc Printf
