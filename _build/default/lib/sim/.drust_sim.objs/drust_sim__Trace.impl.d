lib/sim/trace.ml: Array Engine Format List Printf
