lib/sim/sync.mli: Engine
