lib/sim/resource.ml: Engine Float Queue
