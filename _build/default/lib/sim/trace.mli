(** Lightweight event tracing for the simulator.

    A bounded ring of timestamped events, recorded by any layer (fabric
    verbs, protocol moves, controller decisions) when tracing is enabled.
    Costs nothing when disabled.  Used for debugging simulations and by
    the examples to show what the runtime did. *)

type t

type event = {
  time : float;
  category : string;  (** e.g. "fabric", "protocol", "controller" *)
  detail : string;
}

val create : ?capacity:int -> Engine.t -> t
(** Default capacity: 4096 events; older events are overwritten. *)

val enable : t -> unit
val disable : t -> unit
val is_enabled : t -> bool

val record : t -> category:string -> string -> unit
(** No-op when disabled; [detail] should be cheap to build — prefer
    [recordf] for formatted messages so the cost is skipped entirely when
    tracing is off. *)

val recordf :
  t -> category:string -> ('a, unit, string, unit) format4 -> 'a
(** Formatted record; the format arguments are not evaluated when
    disabled. *)

val events : t -> event list
(** Oldest first; at most [capacity] entries. *)

val count : t -> int
(** Total events recorded since creation (including overwritten ones). *)

val clear : t -> unit

val dump : ?limit:int -> Format.formatter -> t -> unit
(** Human-readable tail of the trace. *)
