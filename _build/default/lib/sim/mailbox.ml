type 'a t = {
  engine : Engine.t;
  queue : 'a Queue.t;
  receivers : ('a -> unit) Queue.t;
}

let create engine = { engine; queue = Queue.create (); receivers = Queue.create () }

let send mb v =
  ignore mb.engine;
  if Queue.is_empty mb.receivers then Queue.push v mb.queue
  else
    let resume = Queue.pop mb.receivers in
    resume v

let recv mb =
  if not (Queue.is_empty mb.queue) then Queue.pop mb.queue
  else Engine.suspend (fun resume -> Queue.push resume mb.receivers)

let try_recv mb =
  if Queue.is_empty mb.queue then None else Some (Queue.pop mb.queue)

let length mb = Queue.length mb.queue
let waiters mb = Queue.length mb.receivers
