type t = {
  engine : Engine.t;
  capacity : int;
  mutable held : int;
  waiters : (unit -> unit) Queue.t;
  (* Utilization integral: sum over time of (held / capacity). *)
  mutable util_area : float;
  mutable util_since : float;
  mutable last_change : float;
}

let create engine ~capacity =
  if capacity <= 0 then invalid_arg "Resource.create: capacity must be positive";
  {
    engine;
    capacity;
    held = 0;
    waiters = Queue.create ();
    util_area = 0.0;
    util_since = Engine.now engine;
    last_change = Engine.now engine;
  }

let capacity t = t.capacity
let in_use t = t.held
let queued t = Queue.length t.waiters

let account t =
  let now = Engine.now t.engine in
  let dt = now -. t.last_change in
  if dt > 0.0 then
    t.util_area <-
      t.util_area +. (dt *. (Float.of_int t.held /. Float.of_int t.capacity));
  t.last_change <- now

let acquire t =
  if t.held < t.capacity && Queue.is_empty t.waiters then begin
    account t;
    t.held <- t.held + 1
  end
  else begin
    Engine.suspend (fun resume -> Queue.push resume t.waiters);
    (* The releaser transferred its unit to us: [held] stays constant. *)
    ()
  end

let release t =
  if t.held <= 0 then invalid_arg "Resource.release: nothing held";
  if Queue.is_empty t.waiters then begin
    account t;
    t.held <- t.held - 1
  end
  else
    (* Hand the unit over without dropping [held]: the waiter resumes
       holding it, so utilization accounting sees no gap. *)
    let next = Queue.pop t.waiters in
    next ()

let use t f =
  acquire t;
  match f () with
  | v ->
      release t;
      v
  | exception e ->
      release t;
      raise e

let busy_fraction t = Float.of_int t.held /. Float.of_int t.capacity

let utilization t ~now =
  let span = now -. t.util_since in
  if span <= 0.0 then 0.0
  else begin
    let live = (now -. t.last_change) *. busy_fraction t in
    (t.util_area +. live) /. span
  end

let reset_utilization t ~now =
  t.util_area <- 0.0;
  t.util_since <- now;
  t.last_change <- now
