module Condvar = struct
  type t = { engine : Engine.t; waiters : (unit -> unit) Queue.t }

  let create engine = { engine; waiters = Queue.create () }

  let wait t =
    ignore t.engine;
    Engine.suspend (fun resume -> Queue.push resume t.waiters)

  let signal t =
    if not (Queue.is_empty t.waiters) then (Queue.pop t.waiters) ()

  let broadcast t =
    (* Drain first so waiters that re-wait are not woken again. *)
    let batch = Queue.create () in
    Queue.transfer t.waiters batch;
    Queue.iter (fun resume -> resume ()) batch

  let waiters t = Queue.length t.waiters
end

module Barrier = struct
  type t = {
    engine : Engine.t;
    parties : int;
    mutable arrived : int;
    mutable generation : int;
    cv : Condvar.t;
  }

  let create engine ~parties =
    if parties <= 0 then invalid_arg "Barrier.create: parties must be positive";
    { engine; parties; arrived = 0; generation = 0; cv = Condvar.create engine }

  let await t =
    let index = t.arrived in
    t.arrived <- t.arrived + 1;
    if t.arrived = t.parties then begin
      (* Last arrival trips the barrier and starts the next round. *)
      t.arrived <- 0;
      t.generation <- t.generation + 1;
      Condvar.broadcast t.cv
    end
    else begin
      let gen = t.generation in
      (* Guard against spurious ordering: wait until our generation has
         been released. *)
      while t.generation = gen do
        Condvar.wait t.cv
      done
    end;
    index

  let waiting t = t.arrived
end

module Waitgroup = struct
  type t = { engine : Engine.t; mutable n : int; cv : Condvar.t }

  let create engine = { engine; n = 0; cv = Condvar.create engine }

  let add t k =
    if t.n + k < 0 then invalid_arg "Waitgroup.add: negative count";
    t.n <- t.n + k

  let done_ t =
    if t.n <= 0 then invalid_arg "Waitgroup.done_: count underflow";
    t.n <- t.n - 1;
    if t.n = 0 then Condvar.broadcast t.cv

  let wait t =
    while t.n > 0 do
      Condvar.wait t.cv
    done

  let count t = t.n
end
