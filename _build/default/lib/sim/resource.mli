(** Counted resources with FIFO queuing.

    Models contended hardware: a node's CPU cores, a NIC's DMA engines, a
    directory-processing thread.  A process that cannot acquire a unit
    blocks until one is released; waiters are served in arrival order so
    queuing delay is observable (this is what creates the home-node
    bottlenecks of the Grappa and GAM baselines under skewed load). *)

type t

val create : Engine.t -> capacity:int -> t
(** [capacity] must be positive. *)

val capacity : t -> int
val in_use : t -> int
val queued : t -> int
(** Number of processes currently blocked waiting for a unit. *)

val acquire : t -> unit
(** Blocks until a unit is available, then holds it. *)

val release : t -> unit
(** Releases a held unit; hands it directly to the longest-waiting
    process if any.  Raises [Invalid_argument] when nothing is held. *)

val use : t -> (unit -> 'a) -> 'a
(** [use r f] brackets [f] with acquire/release, releasing on exception. *)

val busy_fraction : t -> float
(** [in_use / capacity], a load signal consumed by the global controller. *)

(** {1 Utilization accounting} *)

val utilization : t -> now:float -> float
(** Average busy fraction from creation (or last reset) to [now]. *)

val reset_utilization : t -> now:float -> unit
