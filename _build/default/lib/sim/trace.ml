type event = { time : float; category : string; detail : string }

type t = {
  engine : Engine.t;
  ring : event option array;
  mutable next : int;
  mutable total : int;
  mutable enabled : bool;
}

let create ?(capacity = 4096) engine =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { engine; ring = Array.make capacity None; next = 0; total = 0; enabled = false }

let enable t = t.enabled <- true
let disable t = t.enabled <- false
let is_enabled t = t.enabled

let record t ~category detail =
  if t.enabled then begin
    t.ring.(t.next) <-
      Some { time = Engine.now t.engine; category; detail };
    t.next <- (t.next + 1) mod Array.length t.ring;
    t.total <- t.total + 1
  end

let recordf t ~category fmt =
  if t.enabled then
    Printf.ksprintf (fun s -> record t ~category s) fmt
  else Printf.ikfprintf (fun _ -> ()) () fmt

let events t =
  let cap = Array.length t.ring in
  let out = ref [] in
  for i = 0 to cap - 1 do
    (* Oldest entry sits at [next] once the ring has wrapped. *)
    match t.ring.((t.next + i) mod cap) with
    | Some e -> out := e :: !out
    | None -> ()
  done;
  List.rev !out

let count t = t.total

let clear t =
  Array.fill t.ring 0 (Array.length t.ring) None;
  t.next <- 0;
  t.total <- 0

let dump ?(limit = 40) fmt t =
  let all = events t in
  let n = List.length all in
  let tail =
    if n <= limit then all
    else List.filteri (fun i _ -> i >= n - limit) all
  in
  Format.fprintf fmt "trace: %d event(s) recorded, showing last %d@\n" t.total
    (List.length tail);
  List.iter
    (fun e ->
      Format.fprintf fmt "  [%10.6f] %-10s %s@\n" e.time e.category e.detail)
    tail
