(** Unbounded typed mailboxes for inter-process messages.

    A mailbox decouples senders and receivers inside the simulation: sends
    never block; a receive blocks until a message is available.  Multiple
    receivers are served FIFO.  The network fabric delivers every message
    through a mailbox on the destination node. *)

type 'a t

val create : Engine.t -> 'a t

val send : 'a t -> 'a -> unit
(** [send mb v] enqueues [v]; wakes one waiting receiver if any. *)

val recv : 'a t -> 'a
(** [recv mb] blocks the calling process until a message arrives. *)

val try_recv : 'a t -> 'a option
(** Non-blocking receive. *)

val length : 'a t -> int
(** Number of queued (undelivered) messages. *)

val waiters : 'a t -> int
(** Number of processes blocked in {!recv}. *)
