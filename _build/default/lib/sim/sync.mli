(** Synchronization primitives for simulated processes.

    Built on the engine's suspend/resume machinery: condition variables
    (wait/signal/broadcast), reusable barriers, and wait-groups.  These are
    conveniences for application code and tests; the runtime's distributed
    primitives ([Dmutex], [Datomic]) model network costs, these do not. *)

(** Condition variables. *)
module Condvar : sig
  type t

  val create : Engine.t -> t

  val wait : t -> unit
  (** Park the calling process until a signal arrives.  There is no
      associated mutex: the simulator is single-threaded, so the usual
      lost-wakeup race cannot happen between a check and a [wait] unless
      the process blocks in between. *)

  val signal : t -> unit
  (** Wake one waiter (FIFO); no-op when nobody waits. *)

  val broadcast : t -> unit
  (** Wake every current waiter. *)

  val waiters : t -> int
end

(** Reusable barriers. *)
module Barrier : sig
  type t

  val create : Engine.t -> parties:int -> t
  (** [parties] must be positive. *)

  val await : t -> int
  (** Block until [parties] processes have arrived; returns the arrival
      index (0 = first).  The barrier then resets for the next round. *)

  val waiting : t -> int
end

(** Wait-groups (Go-style). *)
module Waitgroup : sig
  type t

  val create : Engine.t -> t
  val add : t -> int -> unit
  val done_ : t -> unit
  (** Raises [Invalid_argument] below zero. *)

  val wait : t -> unit
  (** Block until the count reaches zero (returns immediately at zero). *)

  val count : t -> int
end
