(** Shared scaffolding for the evaluation applications.

    Each application exposes [run ~cluster ~backend config -> result];
    this module provides the common pieces: launching the main process on
    node 0, measuring elapsed virtual time, spreading workers round-robin
    over nodes, and a generic opaque payload for objects whose content the
    simulation never inspects. *)

module Ctx = Drust_machine.Ctx

type result = {
  ops : float;  (** application-defined operation count *)
  elapsed : float;  (** virtual seconds from workload start to finish *)
  throughput : float;  (** ops / elapsed *)
  extra : (string * float) list;  (** app-specific diagnostics *)
}

val run_main :
  Drust_machine.Cluster.t -> (Ctx.t -> float * (string * float) list) -> result
(** [run_main cluster body] spawns [body] as the program's main thread on
    node 0, drives the engine until all events drain, and reports [body]'s
    returned op count with elapsed = the body's virtual execution span.
    The setup the body performs before calling {!start_measurement} is
    excluded from [elapsed]. *)

val start_measurement : Ctx.t -> unit
(** Mark the end of setup: elapsed time is measured from here. *)

val spread : Drust_machine.Cluster.t -> workers:int -> int array
(** [spread cluster ~workers] assigns [workers] round-robin over alive
    nodes — the even distribution the paper uses for GAM/Grappa, which
    cannot balance load themselves. *)

val blob : Drust_util.Univ.t
(** An opaque payload for objects whose bytes are never interpreted. *)

val payload_of_int : int -> Drust_util.Univ.t
val int_of_payload : Drust_util.Univ.t -> int
(** Small integer payloads for correctness-checking app state.
    @raise Drust_util.Univ.Type_mismatch on a non-integer payload. *)
