lib/apps/appkit/appkit.ml: Array Drust_machine Drust_sim Drust_util Float Hashtbl
