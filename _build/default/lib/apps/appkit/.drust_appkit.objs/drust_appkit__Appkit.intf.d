lib/apps/appkit/appkit.mli: Drust_machine Drust_util
