(** SocialNet: a twitter-like microservice application (DeathStarBench,
    §7.1).

    Twelve microservices with call dependencies, spread round-robin over
    the cluster; every request walks a chain of services.  The crucial
    design point from the paper: the {e original} deployment passes values
    between services — texts and media are serialized, shipped, and
    deserialized at every hop — while the DSM ports pass {e references}
    and let the DSM fetch the object once at the consumer.

    Request mix: compose_post (writes a post object, updates the author's
    user-timeline, fans out to follower home-timelines), read_home_timeline
    and read_user_timeline (fetch a timeline object and its recent posts).

    Setting [pass_by_value = true] models the original RPC deployment
    (usable for both Fig. 5b's "original distributed" baseline and the
    single-node original). *)

type config = {
  users : int;
  requests : int;
  clients_per_node : int;
  compose_ratio : float;
  read_home_ratio : float;  (** remainder is read_user_timeline *)
  text_bytes : int;
  media_bytes : int;
  media_prob : float;
  timeline_bytes : int;
  recent_posts : int;  (** posts fetched per timeline read *)
  fanout_cap : int;  (** home-timeline fanout limit per compose *)
  service_cycles : float;  (** per-hop application compute *)
  serialize_cycles_per_byte : float;
  pass_by_value : bool;  (** original RPC deployment (no DSM) *)
}

val default_config : config

val services : int
(** Number of microservices in the deployment (12, as in DeathStarBench). *)

val run :
  cluster:Drust_machine.Cluster.t -> backend:Drust_dsm.Dsm.t -> config ->
  Drust_appkit.Appkit.result
(** Throughput unit: requests per second. *)
