lib/apps/socialnet/socialnet.mli: Drust_appkit Drust_dsm Drust_machine
