module Ctx = Drust_machine.Ctx
module Cluster = Drust_machine.Cluster
module Fabric = Drust_net.Fabric
module Dsm = Drust_dsm.Dsm
module Dthread = Drust_runtime.Dthread
module Appkit = Drust_appkit.Appkit
module Social_graph = Drust_workloads.Social_graph

type config = {
  users : int;
  requests : int;
  clients_per_node : int;
  compose_ratio : float;
  read_home_ratio : float;
  text_bytes : int;
  media_bytes : int;
  media_prob : float;
  timeline_bytes : int;
  recent_posts : int;
  fanout_cap : int;
  service_cycles : float;
  serialize_cycles_per_byte : float;
  pass_by_value : bool;
}

let default_config =
  {
    users = 2_000;
    requests = 4_000;
    clients_per_node = 8;
    compose_ratio = 0.10;
    read_home_ratio = 0.60;
    text_bytes = 1024;
    media_bytes = Drust_util.Units.kib 64;
    media_prob = 0.10;
    timeline_bytes = 2048;
    recent_posts = 5;
    fanout_cap = 16;
    service_cycles = 3_000.0;
    serialize_cycles_per_byte = 4.0;
    pass_by_value = false;
  }

(* The 12 DeathStarBench services.  Under DSM every service is replicated
   on every node and a request's hops stay local — only references cross
   the wire, through the shared heap.  The original deployment shards the
   four stateful services by key; calls to them carry serialized values
   over the network. *)
let service_names =
  [|
    "nginx"; "compose-post"; "text"; "unique-id"; "media"; "user";
    "url-shorten"; "user-mention"; "post-storage"; "user-timeline";
    "home-timeline"; "social-graph";
  |]

let services = Array.length service_names

type deployment = {
  cfg : config;
  backend : Dsm.t;
  cluster : Cluster.t;
  nodes : int;
  graph : Social_graph.t;
  timelines : Dsm.handle array; (* per user: home timeline object *)
  user_timelines : Dsm.handle array;
  recent : Dsm.handle array; (* ring of recently composed posts *)
  recent_author : int array;
  mutable ring_cursor : int;
  mutable hop_seq : int; (* spreads DSM-mode hops over service replicas *)
}

(* One service hop.  [shard] keys the stateful services of the original
   deployment; [payload_bytes] is what the original must serialize and
   ship (the DSM deployments pass an 80-byte reference instead). *)
let hop d ctx ~shard ~payload_bytes =
  let cfg = d.cfg in
  (* Application work in the service itself. *)
  Ctx.charge_cycles ctx cfg.service_cycles;
  if cfg.pass_by_value then begin
    let target = shard mod d.nodes in
    Ctx.charge_cycles ctx
      (cfg.serialize_cycles_per_byte *. Float.of_int payload_bytes);
    if target <> ctx.Ctx.node then begin
      Ctx.flush ctx;
      Fabric.rpc (Ctx.fabric ctx) ~from:ctx.Ctx.node ~target
        ~req_bytes:(payload_bytes + 64) ~resp_bytes:64 (fun () -> ());
      ctx.Ctx.node <- target
    end
    else Ctx.charge_cycles ctx 2_000.0;
    Ctx.charge_cycles ctx
      (cfg.serialize_cycles_per_byte *. Float.of_int payload_bytes)
  end
  else begin
    (* DSM deployment: services follow the original orchestration and are
       spread over the cluster, but RPCs carry only references.  Replica
       choice is load-balanced, not data-aware — data affinity is the
       DSM's job. *)
    d.hop_seq <- d.hop_seq + 1;
    let target = (shard + (d.hop_seq * 3)) mod d.nodes in
    if target <> ctx.Ctx.node then begin
      Ctx.flush ctx;
      Fabric.rpc (Ctx.fabric ctx) ~from:ctx.Ctx.node ~target ~req_bytes:80
        ~resp_bytes:64 (fun () -> ());
      ctx.Ctx.node <- target
    end
    else Ctx.charge_cycles ctx 2_000.0
  end

(* Every deployment serializes the final HTTP response to the end
   client — DSM saves the inter-service copies, not this one. *)
let respond d ctx ~bytes =
  Ctx.charge_cycles ctx
    (d.cfg.serialize_cycles_per_byte *. Float.of_int bytes)

let compose_post d ctx ~author ~with_media =
  let cfg = d.cfg in
  let post_bytes = cfg.text_bytes + if with_media then cfg.media_bytes else 0 in
  (* nginx -> compose -> text -> unique-id [-> media] -> post-storage *)
  hop d ctx ~shard:author ~payload_bytes:cfg.text_bytes;
  hop d ctx ~shard:author ~payload_bytes:cfg.text_bytes;
  hop d ctx ~shard:author ~payload_bytes:cfg.text_bytes;
  hop d ctx ~shard:author ~payload_bytes:16;
  if with_media then hop d ctx ~shard:author ~payload_bytes:cfg.media_bytes;
  hop d ctx ~shard:author ~payload_bytes:post_bytes;
  let post = d.backend.Dsm.alloc ctx ~size:post_bytes (Appkit.payload_of_int author) in
  let slot = d.ring_cursor mod Array.length d.recent in
  d.recent.(slot) <- post;
  d.recent_author.(slot) <- author;
  d.ring_cursor <- d.ring_cursor + 1;
  (* Append to the author's user timeline. *)
  hop d ctx ~shard:author ~payload_bytes:256;
  d.backend.Dsm.update ctx d.user_timelines.(author) (fun v -> v);
  (* Fan out to follower home timelines. *)
  hop d ctx ~shard:author ~payload_bytes:64;
  let followers = Social_graph.followers d.graph author in
  let fanout = min cfg.fanout_cap (List.length followers) in
  List.iteri
    (fun i f ->
      if i < fanout then begin
        hop d ctx ~shard:f ~payload_bytes:256;
        d.backend.Dsm.update ctx d.timelines.(f) (fun v -> v)
      end)
    followers;
  respond d ctx ~bytes:256

let read_timeline d ctx ~user ~home =
  let cfg = d.cfg in
  hop d ctx ~shard:user ~payload_bytes:64;
  (* timeline service *)
  hop d ctx ~shard:user ~payload_bytes:cfg.timeline_bytes;
  let tl = if home then d.timelines.(user) else d.user_timelines.(user) in
  ignore (d.backend.Dsm.read ctx tl);
  (* Fetch the recent posts the timeline references. *)
  if d.ring_cursor > 0 then begin
    let ring = Array.length d.recent in
    for p = 1 to cfg.recent_posts do
      let idx = (d.ring_cursor - p + (ring * 2)) mod ring in
      hop d ctx ~shard:d.recent_author.(idx)
        ~payload_bytes:(cfg.text_bytes + 256);
      ignore (d.backend.Dsm.read ctx d.recent.(idx))
    done
  end;
  respond d ctx
    ~bytes:
      (cfg.timeline_bytes
      + (cfg.recent_posts * (cfg.text_bytes + 256))
      + Float.to_int (Float.of_int cfg.media_bytes *. cfg.media_prob))

let run ~cluster ~backend cfg =
  if cfg.requests <= 0 then invalid_arg "Socialnet.run: empty workload";
  Appkit.run_main cluster (fun ctx ->
      let nodes = Cluster.node_count cluster in
      let graph =
        Social_graph.create ~users:cfg.users ~seed:7 ~max_fanout:cfg.fanout_cap ()
      in
      let timelines =
        Array.init cfg.users (fun u ->
            backend.Dsm.alloc_on ctx ~node:(u mod nodes) ~size:cfg.timeline_bytes
              (Appkit.payload_of_int u))
      in
      let user_timelines =
        Array.init cfg.users (fun u ->
            backend.Dsm.alloc_on ctx ~node:(u mod nodes) ~size:cfg.timeline_bytes
              (Appkit.payload_of_int u))
      in
      (* Seed the post ring so early reads have something to fetch. *)
      let ring = 256 in
      let d =
        {
          cfg;
          backend;
          cluster;
          nodes;
          graph;
          timelines;
          user_timelines;
          recent =
            Array.init ring (fun i ->
                backend.Dsm.alloc_on ctx ~node:(i mod nodes)
                  ~size:cfg.text_bytes (Appkit.payload_of_int i));
          recent_author = Array.init ring (fun i -> i mod cfg.users);
          ring_cursor = ring;
          hop_seq = 0;
        }
      in
      Appkit.start_measurement ctx;
      let latencies = Drust_util.Stats.create () in
      let n_clients = nodes * cfg.clients_per_node in
      let per_client = max 1 (cfg.requests / n_clients) in
      let composed = ref 0 in
      let client c =
        Dthread.spawn_on ctx ~node:(c mod nodes) (fun cctx ->
            let rng = Drust_util.Rng.create ~seed:(500 + c) in
            let engine = Ctx.engine cctx in
            for _ = 1 to per_client do
              let entry_node = cctx.Ctx.node in
              let req_start = Drust_sim.Engine.now engine in
              let r = Drust_util.Rng.float rng 1.0 in
              (if r < cfg.compose_ratio then begin
                 incr composed;
                 let author = Social_graph.sample_author d.graph rng in
                 let with_media = Drust_util.Rng.bernoulli rng ~p:cfg.media_prob in
                 compose_post d cctx ~author ~with_media
               end
               else
                 let user = Social_graph.sample_reader d.graph rng in
                 read_timeline d cctx ~user
                   ~home:(r < cfg.compose_ratio +. cfg.read_home_ratio));
              (* The response returns to the client's entry point. *)
              cctx.Ctx.node <- entry_node;
              Ctx.flush cctx;
              Drust_util.Stats.add latencies
                (Drust_sim.Engine.now engine -. req_start)
            done)
      in
      let clients = List.init n_clients client in
      Dthread.join_all ctx clients;
      let total = Float.of_int (per_client * n_clients) in
      ( total,
        [
          ("composed", Float.of_int !composed);
          ("lat_p50_us", Drust_util.Stats.median latencies *. 1e6);
          ("lat_p99_us", Drust_util.Stats.percentile latencies 99.0 *. 1e6);
        ] ))
