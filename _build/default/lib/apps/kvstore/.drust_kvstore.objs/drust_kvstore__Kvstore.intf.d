lib/apps/kvstore/kvstore.mli: Drust_appkit Drust_dsm Drust_machine Drust_workloads
