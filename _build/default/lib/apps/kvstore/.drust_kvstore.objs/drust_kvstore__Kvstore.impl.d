lib/apps/kvstore/kvstore.ml: Array Drust_appkit Drust_dsm Drust_machine Drust_runtime Drust_sim Drust_util Drust_workloads Float List
