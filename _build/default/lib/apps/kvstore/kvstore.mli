(** KV Store: in-memory key-value cache (the paper's Memcached-like
    workload, §7.1).

    A chained hash table in shared memory: each bucket object holds its
    chain of KV pairs and is guarded by a mutex.  Client threads on every
    node run a YCSB zipf(0.99) load with 90 % GET / 10 % SET.  This is the
    paper's most DSM-unfriendly application: poor locality (random
    buckets), low compute intensity, and mutex synchronization that
    ownership cannot help with — DRust degenerates gracefully thanks to
    its one-sided-CAS mutexes, while Grappa's hot home cores collapse
    under the skew. *)

type config = {
  keys : int;
  buckets : int;
  bucket_bytes : int;  (** whole chain: ~4 KV pairs *)
  ops : int;  (** total operations across all clients *)
  clients_per_node : int;
  get_ratio : float;
  theta : float;
  intensity : float;  (** cycles per byte to scan/process a chain *)
  workload : Drust_workloads.Ycsb.workload option;
      (** [None] = the paper's zipf 90/10 GET/SET mix; [Some w] runs the
          YCSB core workload [w] (A–F) instead *)
}

val default_config : config

val run :
  cluster:Drust_machine.Cluster.t -> backend:Drust_dsm.Dsm.t -> config ->
  Drust_appkit.Appkit.result
(** Throughput unit: operations per second.  [extra] reports the GET
    fraction observed and the hottest-bucket share. *)
