module Ctx = Drust_machine.Ctx
module Cluster = Drust_machine.Cluster
module Dsm = Drust_dsm.Dsm
module Dthread = Drust_runtime.Dthread
module Appkit = Drust_appkit.Appkit
module Ycsb = Drust_workloads.Ycsb

type config = {
  keys : int;
  buckets : int;
  bucket_bytes : int;
  ops : int;
  clients_per_node : int;
  get_ratio : float;
  theta : float;
  intensity : float;
  workload : Ycsb.workload option;
      (* None = the paper's 90/10 mix; Some w = a YCSB core workload *)
}

(* One client thread per core (Memcached-style worker threads): remote
   latency directly cuts per-core throughput, which produces the 2-node
   dip of Fig. 5d.  Value processing costs intensity x value_bytes cycles
   and runs OUTSIDE the bucket lock; the chain walk under the lock is a
   few hundred cycles. *)
let default_config =
  {
    keys = 4_000_000;
    buckets = 65_536;
    bucket_bytes = 2048;
    ops = 40_000;
    clients_per_node = 16;
    get_ratio = 0.9;
    theta = 0.99;
    intensity = 48.0;
    workload = None;
  }

let value_bytes cfg = cfg.bucket_bytes / 4
let chain_walk_cycles = 600.0

type bucket = { data : Dsm.handle; lock : Dsm.mutex }

let run ~cluster ~(backend : Dsm.t) cfg =
  if cfg.buckets <= 0 || cfg.ops <= 0 then invalid_arg "Kvstore.run: empty workload";
  Appkit.run_main cluster (fun ctx ->
      let nodes = Cluster.node_count cluster in
      let zipf = Drust_util.Zipf.create ~n:cfg.keys ~theta:cfg.theta in
      (* Build the table: bucket objects and their mutexes co-located,
         spread round-robin. *)
      let table =
        Array.init cfg.buckets (fun b ->
            let node = b mod nodes in
            let data =
              backend.Dsm.alloc_on ctx ~node ~size:cfg.bucket_bytes
                (Appkit.payload_of_int 0)
            in
            (* The mutex must live with its bucket: create it from a
               context pinned to that node. *)
            let mctx = Ctx.make cluster ~node in
            let lock = backend.Dsm.mutex_create mctx in
            { data; lock })
      in
      Appkit.start_measurement ctx;
      let gets = ref 0 and sets = ref 0 in
      let latencies = Drust_util.Stats.create () in
      (* Thread-per-core clients: never oversubscribe small nodes, so
         remote latency stays visible (Fig. 7's fixed-resource split). *)
      let cores = (Cluster.params cluster).Drust_machine.Params.cores_per_node in
      let n_clients = nodes * min cfg.clients_per_node cores in
      let ops_per_client = max 1 (cfg.ops / n_clients) in
      let value_cycles = cfg.intensity *. Float.of_int (value_bytes cfg) in
      let client c =
        Dthread.spawn_on ctx ~node:(c mod nodes) (fun cctx ->
            let gen =
              match cfg.workload with
              | None ->
                  Ycsb.with_zipf ~zipf ~get_ratio:cfg.get_ratio ~seed:(1000 + c)
              | Some w ->
                  Ycsb.create_workload w ~zipf ~keys:cfg.keys ~seed:(1000 + c) ()
            in
            let bucket_of key =
              table.(key * 2654435761 land max_int mod cfg.buckets)
            in
            let do_get key =
              incr gets;
              (* GETs take a consistent snapshot without the bucket lock
                 (readers never block readers); the chain scan plus value
                 processing runs wherever the system executes reads — at
                 the client for DRust/GAM, at the bucket's home core for
                 Grappa. *)
              ignore
                (backend.Dsm.process cctx (bucket_of key).data
                   ~cycles:(chain_walk_cycles +. value_cycles))
            in
            let do_set key =
              incr sets;
              let b = bucket_of key in
              (* Prepare the new value outside the lock... *)
              Ctx.compute cctx ~cycles:(value_cycles /. 2.0);
              (* ...install it under the bucket mutex. *)
              Dsm.with_mutex backend cctx b.lock (fun () ->
                  backend.Dsm.process_update cctx b.data
                    ~cycles:chain_walk_cycles (fun v -> v))
            in
            let engine = Ctx.engine cctx in
            for _ = 1 to ops_per_client do
              let op_start = Drust_sim.Engine.now engine in
              (match Ycsb.next gen with
              | Ycsb.Get key -> do_get key
              | Ycsb.Set key | Ycsb.Insert key -> do_set key
              | Ycsb.Scan (start, len) ->
                  (* Range reads walk consecutive buckets; each item costs
                     a fraction of a full value read. *)
                  incr gets;
                  let len = min len 100 in
                  for i = 0 to (len / 8) - 1 do
                    let b = table.((start + i) mod cfg.buckets) in
                    ignore
                      (backend.Dsm.process cctx b.data
                         ~cycles:(chain_walk_cycles +. (value_cycles /. 4.0)))
                  done
              | Ycsb.Rmw key ->
                  incr sets;
                  let b = bucket_of key in
                  Dsm.with_mutex backend cctx b.lock (fun () ->
                      ignore
                        (backend.Dsm.process cctx b.data
                           ~cycles:(chain_walk_cycles +. value_cycles));
                      backend.Dsm.process_update cctx b.data
                        ~cycles:chain_walk_cycles (fun v -> v)));
              Ctx.flush cctx;
              Drust_util.Stats.add latencies
                (Drust_sim.Engine.now engine -. op_start)
            done)
      in
      let clients = List.init n_clients client in
      Dthread.join_all ctx clients;
      let total = Float.of_int (!gets + !sets) in
      ( total,
        [
          ("get_fraction", Float.of_int !gets /. Float.max 1.0 total);
          ("clients", Float.of_int n_clients);
          ("lat_p50_us", Drust_util.Stats.median latencies *. 1e6);
          ("lat_p99_us", Drust_util.Stats.percentile latencies 99.0 *. 1e6);
        ] ))
