(** DataFrame: in-memory columnar analytics (the paper's Polars-based
    workload, §7.1).

    The dataset is a table of chunked columns spread round-robin over the
    cluster.  Each query runs in two overlapping phases, exactly as the
    paper describes:

    - {b index build}: builder threads (one per node) concurrently insert
      entries into a {e shared index table} mapping each destination
      chunk to its source chunks — many small writes to objects packed
      tightly together (GAM's false-sharing nightmare, Grappa's
      home-node hotspot);
    - {b chunk processing}: one worker per destination chunk looks up its
      index entry, fetches the source chunks (its own partition plus a
      shuffled partner — joins and groupbys read across partitions),
      computes at the app's ~110 cycles/byte intensity, and writes the
      output chunk, which the {e next} dependent query consumes.

    Affinity annotations (Fig. 6): [use_tbox] ties each partition's
    chunks together for co-location and check-free local dereferences;
    [use_spawn_to] places each worker on its input partition's server. *)

module Ctx = Drust_machine.Ctx

type query_kind =
  | Filter  (** single-partition scan *)
  | Groupby  (** all-to-all: each output gathers [groupby_fanin] partitions *)
  | Join  (** partition + its shuffle partner *)

type config = {
  partitions : int;  (** destination chunks per query *)
  chunk_bytes : int;
  index_entries : int;  (** shared index-table entries per query *)
  entry_bytes : int;
  intensity : float;  (** compute cycles per byte processed *)
  queries : int;
  query_mix : query_kind list;  (** cycled across the dependent queries *)
  groupby_fanin : int;
  shuffle_stride : int;  (** legacy knob, kept for compatibility *)
  use_tbox : bool;
  use_spawn_to : bool;
}

val default_config : config
(** Sized so a full Fig. 5a sweep completes in seconds of wall-clock. *)

val run :
  cluster:Drust_machine.Cluster.t -> backend:Drust_dsm.Dsm.t -> config ->
  Drust_appkit.Appkit.result
(** Throughput unit: queries per second. *)
