lib/apps/dataframe/dataframe.ml: Array Drust_appkit Drust_dsm Drust_machine Drust_runtime Drust_sim Drust_util Float Fun List
