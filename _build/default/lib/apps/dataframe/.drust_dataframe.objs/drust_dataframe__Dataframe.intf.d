lib/apps/dataframe/dataframe.mli: Drust_appkit Drust_dsm Drust_machine
