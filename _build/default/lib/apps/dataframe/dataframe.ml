module Ctx = Drust_machine.Ctx
module Cluster = Drust_machine.Cluster
module Dsm = Drust_dsm.Dsm
module Dthread = Drust_runtime.Dthread
module Appkit = Drust_appkit.Appkit

type query_kind = Filter | Groupby | Join

type config = {
  partitions : int;
  chunk_bytes : int;
  index_entries : int;
  entry_bytes : int;
  intensity : float;
  queries : int;
  query_mix : query_kind list;
      (* cycled; each dependent query runs the next kind in the list *)
  groupby_fanin : int; (* source partitions shuffled into one output *)
  shuffle_stride : int;
  use_tbox : bool;
  use_spawn_to : bool;
}

let default_config =
  {
    partitions = 128;
    chunk_bytes = Drust_util.Units.kib 256;
    index_entries = 512;
    entry_bytes = 64;
    intensity = 40.0;
    queries = 4;
    query_mix = [ Filter; Join; Groupby; Join ];
    groupby_fanin = 4;
    shuffle_stride = 7;
    use_tbox = false;
    use_spawn_to = false;
  }

(* One query: build the shared index concurrently with chunk processing,
   then hand the output chunks to the next query. *)
let run_query ~cluster ~(backend : Dsm.t) cfg ctx ~query ~inputs_tied ~input_chunks =
  let nodes = Cluster.node_count cluster in
  (* The shared index table lives on the coordinator: a tightly packed
     array of small entries. *)
  let index =
    Array.init cfg.index_entries (fun i ->
        backend.Dsm.alloc_on ctx ~node:0 ~size:cfg.entry_bytes
          (Appkit.payload_of_int (-1 - i)))
  in
  (* Builders: one thread per node, writing interleaved entries. *)
  let builders =
    List.init nodes (fun b ->
        Dthread.spawn_on ctx ~node:b (fun bctx ->
            let i = ref b in
            while !i < cfg.index_entries do
              (* Compose the entry (source-chunk id array) and publish it. *)
              Ctx.charge_cycles bctx 900.0;
              backend.Dsm.write bctx index.(!i) (Appkit.payload_of_int !i);
              i := !i + nodes
            done))
  in
  (* Chunk tasks, executed by one worker thread per core on each node
     (the paper's even thread distribution).  A task that stalls on the
     network leaves its core idle. *)
  let output = Array.make cfg.partitions None in
  let check_cycles =
    (Cluster.params cluster).Drust_machine.Params.runtime_check_cycles
  in
  let do_task wctx i =
      (* Look up this destination's index entry... *)
      let lookup = i mod cfg.index_entries in
      let rec wait_entry tries =
        let v = backend.Dsm.read wctx index.(lookup) in
        if Appkit.int_of_payload v < 0 && tries < 10_000 then begin
          (* Builder has not published it yet: poll (bounded). *)
          Drust_sim.Engine.delay (Ctx.engine wctx) 2e-6;
          wait_entry (tries + 1)
        end
      in
      wait_entry 0;
      (* ...then stream the query's source chunks record by record,
         interleaving the columnar compute.  The source set depends on the
         operator: a filter scans only its own partition; a join reads the
         partition and its shuffle partner; a groupby gathers [fanin]
         partitions from across the table (the all-to-all exchange). *)
      let kind =
        match cfg.query_mix with
        | [] -> Join
        | mix -> List.nth mix ((query - 1) mod List.length mix)
      in
      let sources =
        match kind with
        | Filter -> [ input_chunks.(i) ]
        | Join -> [ input_chunks.(i); input_chunks.(i lxor 1) ]
        | Groupby ->
            List.init (max 1 cfg.groupby_fanin) (fun k ->
                input_chunks.((i + (k * cfg.partitions / max 1 cfg.groupby_fanin))
                              mod cfg.partitions))
      in
      let record_bytes = 512 in
      let records = cfg.chunk_bytes / record_bytes in
      let n_sources = List.length sources in
      let cycles_per_record =
        cfg.intensity *. Float.of_int (n_sources * cfg.chunk_bytes)
        /. Float.of_int records
      in
      (* Column scans dereference every element.  When the affinity
         annotations guarantee the sources are local (spawn_to placed us
         at the tied pair's home), DRust skips the per-dereference
         runtime check (S4.1.3); otherwise each element pays it. *)
      let guaranteed_local =
        cfg.use_tbox && cfg.use_spawn_to && backend.Dsm.supports_affinity
        && List.for_all (fun h -> backend.Dsm.home h = wctx.Ctx.node) sources
      in
      let element_checks =
        if guaranteed_local then 0.0
        else check_cycles *. Float.of_int (n_sources * record_bytes / 8)
      in
      for _ = 1 to records do
        List.iter
          (fun src -> backend.Dsm.read_part wctx src ~bytes:record_bytes)
          sources;
        Ctx.compute wctx ~cycles:(cycles_per_record +. element_checks)
      done;
      (* ...and materialize the output chunk locally. *)
      let out =
        backend.Dsm.alloc wctx ~size:cfg.chunk_bytes (Appkit.payload_of_int i)
      in
      output.(i) <- Some out
  in
  (* Assign tasks to nodes: spawn_to sends each task to its input
     partition's server; the unannotated runtime balances load without
     knowing where the data lives (a scattered assignment). *)
  let queues = Array.make nodes [] in
  for i = cfg.partitions - 1 downto 0 do
    let node =
      if cfg.use_spawn_to && backend.Dsm.supports_affinity then
        backend.Dsm.home input_chunks.(i)
      else ((i * 7) + (3 * query)) mod nodes
    in
    queues.(node) <- i :: queues.(node)
  done;
  let queue_refs = Array.map ref queues in
  let cores = (Cluster.params cluster).Drust_machine.Params.cores_per_node in
  let worker node =
    Dthread.spawn_on ctx ~node (fun wctx ->
        let q = queue_refs.(node) in
        let rec drain () =
          match !q with
          | [] -> ()
          | i :: rest ->
              q := rest;
              do_task wctx i;
              drain ()
        in
        drain ())
  in
  let workers =
    List.concat_map
      (fun node -> List.init cores (fun _ -> worker node))
      (List.init nodes Fun.id)
  in
  Dthread.join_all ctx builders;
  Dthread.join_all ctx workers;
  (* Free the consumed inputs and the per-query index.  Tied children are
     owned by their parents, whose drop frees them recursively. *)
  let tied_child i = inputs_tied && i mod 2 = 1 in
  Array.iteri
    (fun i h -> if not (tied_child i) then backend.Dsm.free ctx h)
    input_chunks;
  Array.iter (fun h -> backend.Dsm.free ctx h) index;
  let out =
    Array.map
      (function Some h -> h | None -> failwith "Dataframe: missing output chunk")
      output
  in
  (* Keep the annotations alive across dependent queries: tie each fresh
     output pair so the next query inherits the co-location.  Without
     spawn_to the producers of a pair sit on different servers and the tie
     would have to ship a chunk — the annotation is only applied where the
     paper applies it, together with computation placement. *)
  let tie_outputs =
    cfg.use_tbox && cfg.use_spawn_to && backend.Dsm.supports_affinity
  in
  if tie_outputs then
    Array.iteri
      (fun i h -> if i mod 2 = 1 then backend.Dsm.tie ctx ~parent:out.(i - 1) ~child:h)
      out;
  (out, tie_outputs)

let allocate_table ~(backend : Dsm.t) cfg ctx ~nodes =
  (* Chunk i's shuffle partner is (i lxor 1); place the two halves of a
     pair on different servers so cross-partition reads really cross the
     wire — unless TBox ties them back together. *)
  let home i =
    if i mod 2 = 0 then i / 2 mod nodes
    else ((i / 2) + max 1 (nodes / 2)) mod nodes
  in
  let chunks =
    Array.init cfg.partitions (fun i ->
        backend.Dsm.alloc_on ctx ~node:(home i) ~size:cfg.chunk_bytes
          (Appkit.payload_of_int i))
  in
  (* TBox annotation: tie each chunk to its shuffle partner so the pair
     co-locates (joins/groupbys touch both) and local dereferences skip
     the runtime check. *)
  if cfg.use_tbox && backend.Dsm.supports_affinity then
    Array.iteri
      (fun i h ->
        if i mod 2 = 1 then backend.Dsm.tie ctx ~parent:chunks.(i - 1) ~child:h)
      chunks;
  chunks

let run ~cluster ~backend cfg =
  if cfg.partitions <= 0 || cfg.queries <= 0 then
    invalid_arg "Dataframe.run: empty workload";
  Appkit.run_main cluster (fun ctx ->
      let nodes = Cluster.node_count cluster in
      let table = allocate_table ~backend cfg ctx ~nodes in
      Appkit.start_measurement ctx;
      let chunks = ref table in
      let tied = ref (cfg.use_tbox && backend.Dsm.supports_affinity) in
      for q = 1 to cfg.queries do
        let out, out_tied =
          run_query ~cluster ~backend cfg ctx ~query:q ~inputs_tied:!tied
            ~input_chunks:!chunks
        in
        chunks := out;
        tied := out_tied
      done;
      Array.iteri
        (fun i h -> if not (!tied && i mod 2 = 1) then backend.Dsm.free ctx h)
        !chunks;
      (Float.of_int cfg.queries, []))
