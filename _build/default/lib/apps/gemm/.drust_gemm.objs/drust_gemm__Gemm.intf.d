lib/apps/gemm/gemm.mli: Drust_appkit Drust_dsm Drust_machine
