lib/apps/gemm/gemm.ml: Array Drust_appkit Drust_dsm Drust_machine Drust_runtime Drust_util Float Fun List
