(** GEMM: blocked general matrix multiply (the paper's BLAS workload).

    The divide-and-conquer port of §7.1: inputs A and B are stored in
    shared memory as g × g grids of square sub-matrix blocks, distributed
    round-robin; each worker thread computes a set of output blocks,
    reading row blocks of A and column blocks of B repeatedly (2g block
    reads per output block) and writing the result.  High compute
    intensity (~300 cycles/byte) with strong reuse: systems that can cache
    fetched blocks locally (DRust, GAM) scale well; Grappa cannot cache
    and re-delegates every access (§7.2). *)

type config = {
  grid : int;  (** g: the matrices are g x g blocks *)
  block_bytes : int;
  intensity : float;  (** cycles per byte of one block-pair multiply *)
  multiplies : int;  (** how many full C = A*B products to run *)
  strips : int;
      (** inner-loop granularity: each block-pair multiply streams its
          operands in this many slices, re-touching the shared blocks —
          cache-friendly for DRust/GAM, repeated delegations for Grappa *)
}

val default_config : config

val run :
  cluster:Drust_machine.Cluster.t -> backend:Drust_dsm.Dsm.t -> config ->
  Drust_appkit.Appkit.result
(** Throughput unit: block-pair multiplications per second. *)
