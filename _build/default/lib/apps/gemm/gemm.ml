module Ctx = Drust_machine.Ctx
module Cluster = Drust_machine.Cluster
module Dsm = Drust_dsm.Dsm
module Dthread = Drust_runtime.Dthread
module Appkit = Drust_appkit.Appkit

type config = {
  grid : int;
  block_bytes : int;
  intensity : float;
  multiplies : int;
  strips : int;
      (* inner-loop granularity: each block-pair multiply streams its
         operands in [strips] slices, re-reading the shared blocks.
         Caching systems hit their node cache after the first slice;
         Grappa re-delegates every slice (no remote caching). *)
}

let default_config =
  {
    grid = 16;
    block_bytes = Drust_util.Units.kib 64;
    intensity = 300.0;
    multiplies = 1;
    strips = 96;
  }

let allocate_grid ~(backend : Dsm.t) cfg ctx ~nodes ~salt =
  Array.init (cfg.grid * cfg.grid) (fun i ->
      backend.Dsm.alloc_on ctx ~node:((i + salt) mod nodes) ~size:cfg.block_bytes
        (Appkit.payload_of_int i))

let run ~cluster ~backend cfg =
  if cfg.grid <= 0 then invalid_arg "Gemm.run: empty grid";
  Appkit.run_main cluster (fun ctx ->
      let nodes = Cluster.node_count cluster in
      let cores = (Cluster.params cluster).Drust_machine.Params.cores_per_node in
      let g = cfg.grid in
      let a = allocate_grid ~backend cfg ctx ~nodes ~salt:0 in
      let b = allocate_grid ~backend cfg ctx ~nodes ~salt:g in
      Appkit.start_measurement ctx;
      let pair_ops = ref 0 in
      for _ = 1 to cfg.multiplies do
        (* Output blocks are sharded by row: row i belongs to node
           (i mod nodes), so workers on one node share cached A-row and
           B-column blocks.  Each node runs one worker thread per core
           (the paper's fixed-thread deployment): a worker that stalls on
           the network leaves its core idle, exposing coherence cost. *)
        let queues = Array.make nodes [] in
        for idx = (g * g) - 1 downto 0 do
          let node = idx / g mod nodes in
          queues.(node) <- idx :: queues.(node)
        done;
        let queue_refs = Array.map ref queues in
        let compute_block wctx idx =
          let i = idx / g and j = idx mod g in
          let slice_cycles =
            cfg.intensity *. Float.of_int cfg.block_bytes
            /. Float.of_int cfg.strips
          in
          let strip_bytes = max 64 (cfg.block_bytes / cfg.strips) in
          for k = 0 to g - 1 do
            (* Stream A(i,k) and B(k,j) slice by slice: the first touch
               fetches/faults; later touches are local for systems that
               cache. *)
            for _slice = 1 to cfg.strips do
              backend.Dsm.read_part wctx a.((i * g) + k) ~bytes:strip_bytes;
              backend.Dsm.read_part wctx b.((k * g) + j) ~bytes:strip_bytes;
              Ctx.compute wctx ~cycles:slice_cycles
            done
          done;
          (* materialize C(i,j) locally *)
          let c =
            backend.Dsm.alloc wctx ~size:cfg.block_bytes
              (Appkit.payload_of_int idx)
          in
          backend.Dsm.free wctx c
        in
        let worker node =
          Dthread.spawn_on ctx ~node (fun wctx ->
              let q = queue_refs.(node) in
              let rec drain () =
                match !q with
                | [] -> ()
                | idx :: rest ->
                    q := rest;
                    compute_block wctx idx;
                    drain ()
              in
              drain ())
        in
        let workers =
          List.concat_map
            (fun node -> List.init cores (fun _ -> worker node))
            (List.init nodes Fun.id)
        in
        Dthread.join_all ctx workers;
        pair_ops := !pair_ops + (g * g * g)
      done;
      Array.iter (fun h -> backend.Dsm.free ctx h) a;
      Array.iter (fun h -> backend.Dsm.free ctx h) b;
      (Float.of_int !pair_ops, []))
