module Rng = Drust_util.Rng
module Zipf = Drust_util.Zipf

type op =
  | Get of int
  | Set of int
  | Insert of int
  | Scan of int * int
  | Rmw of int

type workload = A | B | C | D | E | F

let workload_name = function
  | A -> "A (50/50 update)"
  | B -> "B (95/5 read-mostly)"
  | C -> "C (read-only)"
  | D -> "D (read-latest)"
  | E -> "E (short scans)"
  | F -> "F (read-modify-write)"

let all_workloads = [ A; B; C; D; E; F ]

type mix = Paper of float (* get ratio *) | Core of workload

type t = {
  zipf : Zipf.t;
  mix : mix;
  rng : Rng.t;
  mutable inserted : int; (* grows under D/E inserts *)
}

let create ?(theta = 0.99) ?(get_ratio = 0.9) ~keys ~seed () =
  if get_ratio < 0.0 || get_ratio > 1.0 then
    invalid_arg "Ycsb.create: get_ratio out of range";
  {
    zipf = Zipf.create ~n:keys ~theta;
    mix = Paper get_ratio;
    rng = Rng.create ~seed;
    inserted = 0;
  }

let with_zipf ~zipf ~get_ratio ~seed =
  if get_ratio < 0.0 || get_ratio > 1.0 then
    invalid_arg "Ycsb.with_zipf: get_ratio out of range";
  { zipf; mix = Paper get_ratio; rng = Rng.create ~seed; inserted = 0 }

let create_workload w ?zipf ~keys ~seed () =
  let zipf =
    match zipf with Some z -> z | None -> Zipf.create ~n:keys ~theta:0.99
  in
  { zipf; mix = Core w; rng = Rng.create ~seed; inserted = 0 }

let keys t = Zipf.n t.zipf

let sample_key t = Zipf.sample t.zipf t.rng

(* Workload D reads skew toward the most recently inserted keys: map a
   zipf rank onto the key space from the insertion frontier backwards. *)
let latest_key t =
  let n = keys t in
  let frontier = (t.inserted + n) mod (2 * n) in
  let back = Zipf.sample t.zipf t.rng in
  ((frontier - back) mod n + n) mod n

let insert_key t =
  let k = t.inserted mod keys t in
  t.inserted <- t.inserted + 1;
  k

let next t =
  let p = Rng.float t.rng 1.0 in
  match t.mix with
  | Paper get_ratio ->
      let key = sample_key t in
      if p < get_ratio then Get key else Set key
  | Core A -> if p < 0.5 then Get (sample_key t) else Set (sample_key t)
  | Core B -> if p < 0.95 then Get (sample_key t) else Set (sample_key t)
  | Core C -> Get (sample_key t)
  | Core D -> if p < 0.95 then Get (latest_key t) else Insert (insert_key t)
  | Core E ->
      if p < 0.95 then Scan (sample_key t, 1 + Rng.int t.rng 100)
      else Insert (insert_key t)
  | Core F -> if p < 0.5 then Get (sample_key t) else Rmw (sample_key t)

let hot_share t ~k = Zipf.expected_top_share t.zipf ~k
