(** YCSB key-value workload generator.

    The paper's KV-store evaluation uses the zipf(0.99) 90 % GET / 10 %
    SET mix (§7.1); this module also provides the six standard YCSB core
    workloads (A–F) for the extended KV benchmark:

    - A: update-heavy (50 % read / 50 % update, zipfian)
    - B: read-mostly (95 % read / 5 % update, zipfian)
    - C: read-only (100 % read, zipfian)
    - D: read-latest (95 % read / 5 % insert; reads skew to recent keys)
    - E: short ranges (95 % scan / 5 % insert)
    - F: read-modify-write (50 % read / 50 % RMW, zipfian) *)

type op =
  | Get of int
  | Set of int
  | Insert of int  (** append a fresh key *)
  | Scan of int * int  (** [Scan (start, len)]: a short range read *)
  | Rmw of int  (** read-modify-write of one key *)

type workload = A | B | C | D | E | F

val workload_name : workload -> string
val all_workloads : workload list

type t

val create :
  ?theta:float -> ?get_ratio:float -> keys:int -> seed:int -> unit -> t
(** The paper's mix: zipf [theta] (default 0.99) with [get_ratio]
    (default 0.9) GETs, the rest SETs. *)

val with_zipf : zipf:Drust_util.Zipf.t -> get_ratio:float -> seed:int -> t
(** Share one (expensive-to-build) zipf table across many client
    generators; each generator keeps its own RNG stream. *)

val create_workload :
  workload -> ?zipf:Drust_util.Zipf.t -> keys:int -> seed:int -> unit -> t
(** One of the standard core workloads.  Pass [zipf] to share the table
    across clients. *)

val next : t -> op
val keys : t -> int

val hot_share : t -> k:int -> float
(** Probability mass of the [k] hottest keys (skew diagnostics). *)
