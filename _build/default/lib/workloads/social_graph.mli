(** Synthetic social graph with a power-law follower distribution.

    Stands in for the Socfb-Penn94 dataset (§7.1): a fixed user
    population where a few celebrities have large follower counts and the
    tail has a handful each.  Request generators draw authors and readers
    zipf-skewed, as real feeds are. *)

type t

val create : ?theta:float -> ?max_fanout:int -> users:int -> seed:int -> unit -> t
(** Defaults: [theta = 0.9], [max_fanout = 256]. *)

val users : t -> int

val fanout : t -> int -> int
(** Number of followers of a user (deterministic per user). *)

val followers : t -> int -> int list
(** The follower ids themselves (bounded by [max_fanout]). *)

val sample_author : t -> Drust_util.Rng.t -> int
(** Post authors, skewed toward popular users. *)

val sample_reader : t -> Drust_util.Rng.t -> int

val total_edges : t -> int
