lib/workloads/social_graph.ml: Array Drust_util Float Hashtbl List
