lib/workloads/ycsb.mli: Drust_util
