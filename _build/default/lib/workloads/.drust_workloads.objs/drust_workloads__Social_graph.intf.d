lib/workloads/social_graph.mli: Drust_util
