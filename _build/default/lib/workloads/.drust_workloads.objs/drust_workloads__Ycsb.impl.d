lib/workloads/ycsb.ml: Drust_util
