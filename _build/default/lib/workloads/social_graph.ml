module Rng = Drust_util.Rng
module Zipf = Drust_util.Zipf

type t = {
  users : int;
  fanouts : int array;
  max_fanout : int;
  zipf : Zipf.t;
  (* Follower lists are generated lazily and memoized: most users are
     never posted to in a given run. *)
  follower_cache : (int, int list) Hashtbl.t;
  base_seed : int;
}

let create ?(theta = 0.9) ?(max_fanout = 256) ~users ~seed () =
  if users <= 1 then invalid_arg "Social_graph.create: need at least two users";
  let rng = Rng.create ~seed in
  let zipf = Zipf.create ~n:users ~theta in
  (* Power-law fanout: user u's follower count shrinks with rank. *)
  let fanouts =
    Array.init users (fun u ->
        let rank = u + 1 in
        let base = Float.to_int (Float.of_int max_fanout /. Float.pow (Float.of_int rank) 0.45) in
        max 1 (base + Rng.int rng 3))
  in
  { users; fanouts; max_fanout; zipf; follower_cache = Hashtbl.create 256; base_seed = seed }

let users t = t.users
let fanout t u = t.fanouts.(u mod t.users)

let followers t u =
  let u = u mod t.users in
  match Hashtbl.find_opt t.follower_cache u with
  | Some l -> l
  | None ->
      let n = min t.max_fanout t.fanouts.(u) in
      let rng = Rng.create ~seed:(t.base_seed + (u * 7919) + 13) in
      let l = List.init n (fun _ -> Rng.int rng t.users) in
      Hashtbl.replace t.follower_cache u l;
      l

let sample_author t rng = Zipf.sample t.zipf rng
let sample_reader t rng = Zipf.sample t.zipf rng

let total_edges t = Array.fold_left ( + ) 0 t.fanouts
