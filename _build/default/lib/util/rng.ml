type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

(* splitmix64 output function: mix the incremented state through two
   xor-shift-multiply rounds (Steele, Lea & Flood, OOPSLA'14). *)
let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = { state = bits64 t }

let copy t = { state = t.state }

(* Take the low 62 bits so the result is a non-negative OCaml int. *)
let nonneg t = Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  nonneg t mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 random bits give a uniform float in [0, 1). *)
  let mantissa = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (Float.of_int mantissa /. 9007199254740992.0)

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t ~p = float t 1.0 < p

let exponential t ~mean =
  let u = float t 1.0 in
  (* Guard against log 0. *)
  let u = if u <= 0.0 then 1e-300 else u in
  -.mean *. log u

let gaussian t ~mu ~sigma =
  let u1 = float t 1.0 and u2 = float t 1.0 in
  let u1 = if u1 <= 0.0 then 1e-300 else u1 in
  let r = sqrt (-2.0 *. log u1) in
  mu +. (sigma *. r *. cos (2.0 *. Float.pi *. u2))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))
