type 'a entry = { time : float; seq : int; value : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  mutable len : int;
  mutable next_seq : int;
  mutable dummy : 'a entry option;
}

let create () = { heap = [||]; len = 0; next_seq = 0; dummy = None }

let is_empty t = t.len = 0
let length t = t.len

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < t.len && before t.heap.(left) t.heap.(!smallest) then
    smallest := left;
  if right < t.len && before t.heap.(right) t.heap.(!smallest) then
    smallest := right;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t ~time value =
  let entry = { time; seq = t.next_seq; value } in
  t.next_seq <- t.next_seq + 1;
  if t.dummy = None then t.dummy <- Some entry;
  if t.len = Array.length t.heap then begin
    let cap = max 16 (2 * t.len) in
    let bigger = Array.make cap entry in
    Array.blit t.heap 0 bigger 0 t.len;
    t.heap <- bigger
  end;
  t.heap.(t.len) <- entry;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let pop t =
  if t.len = 0 then None
  else begin
    let top = t.heap.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.heap.(0) <- t.heap.(t.len);
      sift_down t 0
    end;
    Some (top.time, top.value)
  end

let peek_time t = if t.len = 0 then None else Some t.heap.(0).time

let clear t =
  t.len <- 0;
  t.heap <- [||];
  t.dummy <- None
