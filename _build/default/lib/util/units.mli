(** Unit helpers shared across the simulator.

    Simulated time is a [float] in seconds; data sizes are [int] bytes;
    compute work is expressed in CPU cycles and converted to seconds by the
    per-node clock frequency. *)

val kib : int -> int
val mib : int -> int
val gib : int -> int

val usec : float -> float
(** [usec x] is [x] microseconds in seconds. *)

val nsec : float -> float
(** [nsec x] is [x] nanoseconds in seconds. *)

val msec : float -> float

val cycles_to_seconds : cycles:float -> ghz:float -> float
(** [cycles_to_seconds ~cycles ~ghz] converts a cycle count at a clock
    frequency in GHz. *)

val seconds_to_cycles : seconds:float -> ghz:float -> float

val pp_bytes : Format.formatter -> int -> unit
(** Human-readable byte count ("1.5 MiB"). *)

val pp_seconds : Format.formatter -> float -> unit
(** Human-readable duration ("3.6 us"). *)

val pp_rate : Format.formatter -> float -> unit
(** Human-readable operation rate ("1.2 Mops/s"). *)
