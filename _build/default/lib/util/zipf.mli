(** Zipfian key sampling.

    The KV-store evaluation in the paper drives its YCSB load with the
    default skewness parameter 0.99; this module provides the corresponding
    generator.  We use the classic YCSB/Gray et al. closed-form sampler,
    which needs only the generalized harmonic number of the key-space size
    and draws each sample in O(1). *)

type t
(** An immutable sampler description over keys [0 .. n-1]. *)

val create : n:int -> theta:float -> t
(** [create ~n ~theta] prepares a zipf sampler over [n] items with skew
    [theta] (YCSB default 0.99).  [n] must be positive and [theta] must lie
    in (0, 1). *)

val n : t -> int
(** Key-space size. *)

val theta : t -> float
(** Skewness parameter. *)

val sample : t -> Rng.t -> int
(** [sample t rng] draws a key in [\[0, n)], key 0 being the most popular. *)

val expected_top_share : t -> k:int -> float
(** [expected_top_share t ~k] is the probability mass carried by the [k]
    most popular keys — handy for sanity checks and skew-sensitivity
    experiments. *)
