(** Sample statistics for latency/throughput reporting.

    Every table in the paper's evaluation reports either a throughput
    (normalized to a baseline) or a latency distribution (average, median,
    P90).  This module collects raw samples and computes those summaries. *)

type t
(** A mutable collection of float samples. *)

val create : unit -> t

val add : t -> float -> unit
(** [add t x] records one sample. *)

val count : t -> int
val total : t -> float
val mean : t -> float
(** [mean t] is 0 when no sample was recorded. *)

val min_value : t -> float
val max_value : t -> float

val percentile : t -> float -> float
(** [percentile t p] with [p] in [\[0, 100\]], nearest-rank on the sorted
    samples.  Raises [Invalid_argument] on an empty collection. *)

val median : t -> float
val stddev : t -> float

val merge : t -> t -> t
(** [merge a b] is a fresh collection holding both sample sets. *)

val clear : t -> unit

val pp_summary : Format.formatter -> t -> unit
(** One-line [count/mean/p50/p90/p99/max] rendering. *)

(** {1 Histograms} *)

module Histogram : sig
  type h

  val create : buckets:float array -> h
  (** [create ~buckets] with strictly increasing upper bounds; an implicit
      overflow bucket collects everything above the last bound. *)

  val add : h -> float -> unit
  val counts : h -> int array
  (** Length is [Array.length buckets + 1] (overflow last). *)

  val bounds : h -> float array
  val total : h -> int
end
