type t = {
  mutable samples : float array;
  mutable len : int;
  mutable sorted : bool;
}

let create () = { samples = Array.make 64 0.0; len = 0; sorted = true }

let add t x =
  if t.len = Array.length t.samples then begin
    let bigger = Array.make (2 * t.len) 0.0 in
    Array.blit t.samples 0 bigger 0 t.len;
    t.samples <- bigger
  end;
  t.samples.(t.len) <- x;
  t.len <- t.len + 1;
  t.sorted <- false

let count t = t.len

let total t =
  let acc = ref 0.0 in
  for i = 0 to t.len - 1 do
    acc := !acc +. t.samples.(i)
  done;
  !acc

let mean t = if t.len = 0 then 0.0 else total t /. Float.of_int t.len

let fold f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc t.samples.(i)
  done;
  !acc

let min_value t = fold Float.min Float.infinity t
let max_value t = fold Float.max Float.neg_infinity t

let ensure_sorted t =
  if not t.sorted then begin
    let live = Array.sub t.samples 0 t.len in
    Array.sort Float.compare live;
    Array.blit live 0 t.samples 0 t.len;
    t.sorted <- true
  end

let percentile t p =
  if t.len = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  ensure_sorted t;
  let rank = Float.to_int (ceil (p /. 100.0 *. Float.of_int t.len)) in
  let idx = if rank <= 0 then 0 else rank - 1 in
  t.samples.(min idx (t.len - 1))

let median t = percentile t 50.0

let stddev t =
  if t.len < 2 then 0.0
  else begin
    let m = mean t in
    let sq = fold (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 t in
    sqrt (sq /. Float.of_int (t.len - 1))
  end

let merge a b =
  let m = create () in
  for i = 0 to a.len - 1 do
    add m a.samples.(i)
  done;
  for i = 0 to b.len - 1 do
    add m b.samples.(i)
  done;
  m

let clear t =
  t.len <- 0;
  t.sorted <- true

let pp_summary fmt t =
  if t.len = 0 then Format.fprintf fmt "n=0"
  else
    Format.fprintf fmt "n=%d mean=%.3f p50=%.3f p90=%.3f p99=%.3f max=%.3f"
      t.len (mean t) (percentile t 50.0) (percentile t 90.0)
      (percentile t 99.0) (max_value t)

module Histogram = struct
  type h = { bounds : float array; counts : int array; mutable total : int }

  let create ~buckets =
    let ok = ref true in
    for i = 1 to Array.length buckets - 1 do
      if buckets.(i) <= buckets.(i - 1) then ok := false
    done;
    if not !ok then invalid_arg "Histogram.create: bounds not increasing";
    { bounds = Array.copy buckets;
      counts = Array.make (Array.length buckets + 1) 0;
      total = 0 }

  let add h x =
    let n = Array.length h.bounds in
    let rec find lo hi =
      (* First bucket whose bound is >= x, by binary search. *)
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if x <= h.bounds.(mid) then find lo mid else find (mid + 1) hi
    in
    let idx = find 0 n in
    h.counts.(idx) <- h.counts.(idx) + 1;
    h.total <- h.total + 1

  let counts h = Array.copy h.counts
  let bounds h = Array.copy h.bounds
  let total h = h.total
end
