(** Type-safe universal values.

    The simulated global heap stores objects of many different application
    types at untyped global addresses.  Rather than resorting to [Obj], each
    storable type registers a [tag]; packing couples the value with its tag
    and unpacking checks the tag at runtime.  A failed [unpack] returns
    [None], mirroring a (simulated) type-confusion bug rather than crashing
    the whole simulation. *)

type t
(** A packed value of some registered type. *)

type 'a tag
(** A runtime witness for type ['a]. *)

val create_tag : name:string -> 'a tag
(** [create_tag ~name] mints a fresh tag.  [name] is used in error
    messages only; tags with equal names are still distinct. *)

val tag_name : 'a tag -> string

val pack : 'a tag -> 'a -> t
val unpack : 'a tag -> t -> 'a option

val unpack_exn : 'a tag -> t -> 'a
(** [unpack_exn tag v] raises [Type_mismatch] when the tags disagree. *)

exception Type_mismatch of { expected : string; actual : string }

val packed_name : t -> string
(** Name of the tag a value was packed with. *)
