(** Deterministic pseudo-random number generation.

    All randomness in the simulator flows through this module so that every
    experiment is reproducible from a single integer seed.  The generator is
    splitmix64, which is fast, has a full 2^64 period, and allows cheap
    [split]ting into independent streams (one per simulated node or thread). *)

type t
(** A mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] builds a fresh generator from [seed]. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Streams produced by repeated [split] are statistically independent. *)

val copy : t -> t
(** [copy t] duplicates the current state without advancing [t]. *)

val bits64 : t -> int64
(** [bits64 t] returns the next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** [bool t] is a fair coin flip. *)

val bernoulli : t -> p:float -> bool
(** [bernoulli t ~p] is [true] with probability [p]. *)

val exponential : t -> mean:float -> float
(** [exponential t ~mean] samples an exponential distribution, used for
    request inter-arrival jitter. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** [gaussian t ~mu ~sigma] samples a normal distribution (Box-Muller),
    used for latency jitter around calibrated means. *)

val shuffle : t -> 'a array -> unit
(** [shuffle t a] permutes [a] in place (Fisher-Yates). *)

val choose : t -> 'a array -> 'a
(** [choose t a] picks a uniform element.  [a] must be non-empty. *)
