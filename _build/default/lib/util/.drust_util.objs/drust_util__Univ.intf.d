lib/util/univ.mli:
