lib/util/univ.ml:
