lib/util/rng.mli:
