lib/util/pqueue.mli:
