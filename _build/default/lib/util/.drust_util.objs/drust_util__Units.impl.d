lib/util/units.ml: Float Format
