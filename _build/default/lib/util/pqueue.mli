(** Priority queue keyed by (time, sequence).

    The simulation engine pops the earliest pending event on every step; the
    sequence number breaks ties so that events scheduled at the same instant
    fire in insertion order, which keeps simulations deterministic. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool
val length : 'a t -> int

val push : 'a t -> time:float -> 'a -> unit
(** [push t ~time v] inserts [v] at priority [time]. *)

val pop : 'a t -> (float * 'a) option
(** [pop t] removes and returns the minimum-time element, FIFO among
    equal times. *)

val peek_time : 'a t -> float option
(** [peek_time t] is the time of the next element without removing it. *)

val clear : 'a t -> unit
