type t = {
  n : int;
  theta : float;
  alpha : float;
  zetan : float;
  eta : float;
  zeta2 : float;
}

let zeta n theta =
  let acc = ref 0.0 in
  for i = 1 to n do
    acc := !acc +. (1.0 /. Float.pow (Float.of_int i) theta)
  done;
  !acc

let create ~n ~theta =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if theta <= 0.0 || theta >= 1.0 then
    invalid_arg "Zipf.create: theta must be in (0, 1)";
  let zetan = zeta n theta in
  let zeta2 = zeta 2 theta in
  let alpha = 1.0 /. (1.0 -. theta) in
  let eta =
    (1.0 -. Float.pow (2.0 /. Float.of_int n) (1.0 -. theta))
    /. (1.0 -. (zeta2 /. zetan))
  in
  { n; theta; alpha; zetan; eta; zeta2 }

let n t = t.n
let theta t = t.theta

let sample t rng =
  let u = Rng.float rng 1.0 in
  let uz = u *. t.zetan in
  if uz < 1.0 then 0
  else if uz < 1.0 +. Float.pow 0.5 t.theta then 1
  else
    let k =
      Float.to_int
        (Float.of_int t.n
        *. Float.pow ((t.eta *. u) -. t.eta +. 1.0) t.alpha)
    in
    (* Floating-point slack can land exactly on n. *)
    if k >= t.n then t.n - 1 else if k < 0 then 0 else k

let expected_top_share t ~k =
  let k = min k t.n in
  zeta k t.theta /. t.zetan
