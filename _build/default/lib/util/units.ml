let kib n = n * 1024
let mib n = n * 1024 * 1024
let gib n = n * 1024 * 1024 * 1024

let usec x = x *. 1e-6
let nsec x = x *. 1e-9
let msec x = x *. 1e-3

let cycles_to_seconds ~cycles ~ghz = cycles /. (ghz *. 1e9)
let seconds_to_cycles ~seconds ~ghz = seconds *. ghz *. 1e9

let pp_bytes fmt n =
  let f = Float.of_int n in
  if n < 1024 then Format.fprintf fmt "%d B" n
  else if n < 1024 * 1024 then Format.fprintf fmt "%.1f KiB" (f /. 1024.0)
  else if n < 1024 * 1024 * 1024 then
    Format.fprintf fmt "%.1f MiB" (f /. 1048576.0)
  else Format.fprintf fmt "%.1f GiB" (f /. 1073741824.0)

let pp_seconds fmt s =
  if s < 1e-6 then Format.fprintf fmt "%.0f ns" (s *. 1e9)
  else if s < 1e-3 then Format.fprintf fmt "%.2f us" (s *. 1e6)
  else if s < 1.0 then Format.fprintf fmt "%.2f ms" (s *. 1e3)
  else Format.fprintf fmt "%.2f s" s

let pp_rate fmt r =
  if r >= 1e6 then Format.fprintf fmt "%.2f Mops/s" (r /. 1e6)
  else if r >= 1e3 then Format.fprintf fmt "%.2f Kops/s" (r /. 1e3)
  else Format.fprintf fmt "%.2f ops/s" r
