type t = { name : string; store : exn }

(* Each tag owns a private exception constructor: packing wraps the value in
   the constructor, unpacking pattern-matches on it.  The closure pair hides
   the constructor so only this tag can build or open such values. *)
type 'a tag = {
  tag_name : string;
  inject : 'a -> exn;
  project : exn -> 'a option;
}

exception Type_mismatch of { expected : string; actual : string }

let create_tag (type a) ~name : a tag =
  let module M = struct
    exception E of a
  end in
  {
    tag_name = name;
    inject = (fun v -> M.E v);
    project = (function M.E v -> Some v | _ -> None);
  }

let tag_name tag = tag.tag_name

let pack tag v = { name = tag.tag_name; store = tag.inject v }

let unpack tag t = tag.project t.store

let unpack_exn tag t =
  match tag.project t.store with
  | Some v -> v
  | None -> raise (Type_mismatch { expected = tag.tag_name; actual = t.name })

let packed_name t = t.name
