(** DRust as a {!Dsm.t} backend.

    Reads are immutable borrows (per-node caching keyed by colored
    address); writes are mutable borrows (move-or-recolor, owner
    write-back); mutexes are the one-sided-CAS {!Drust_runtime.Dmutex}.
    This is the adapter the shared application code runs on for the
    "DRust" rows of every figure. *)

val create : Drust_machine.Cluster.t -> Dsm.t

val owner_of : Dsm.handle -> Drust_core.Protocol.owner
(** Unwrap for affinity-aware code paths ([spawn_to]). *)
