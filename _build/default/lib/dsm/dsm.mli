(** Backend-neutral DSM interface.

    The four evaluation applications are written once against this record
    of operations and run unchanged on DRust, GAM, Grappa, or the
    single-machine Local backend — mirroring how the paper ports each
    application to each system.  Handles and mutexes are extensible
    variants so every backend can carry its own representation; using a
    handle with the wrong backend raises {!Foreign_handle}.

    Semantics expected of implementations:
    - [read] is a shared (SWMR-reader) access and may cache;
    - [write]/[update] are exclusive accesses — the caller guarantees no
      concurrent reader, as rustc would for DRust;
    - [mutex_*] provide cluster-wide mutual exclusion for the cases where
      the application's structure is not ownership-friendly (KV store). *)

module Ctx = Drust_machine.Ctx

type handle = ..
type mutex = ..

exception Foreign_handle of string

type t = {
  name : string;
  alloc : Ctx.t -> size:int -> Drust_util.Univ.t -> handle;
  alloc_on : Ctx.t -> node:int -> size:int -> Drust_util.Univ.t -> handle;
  read : Ctx.t -> handle -> Drust_util.Univ.t;
  write : Ctx.t -> handle -> Drust_util.Univ.t -> unit;
  update : Ctx.t -> handle -> (Drust_util.Univ.t -> Drust_util.Univ.t) -> unit;
  free : Ctx.t -> handle -> unit;
  read_part : Ctx.t -> handle -> bytes:int -> unit;
      (** Touch a [bytes]-sized fragment of the object (streaming access).
          Object-granularity systems fetch the whole object on first touch
          and serve later fragments from their cache; Grappa delegates
          every fragment to the home. *)
  process : Ctx.t -> handle -> cycles:float -> Drust_util.Univ.t;
      (** Read the object and run [cycles] of work over it, wherever the
          system executes such work: data-shipping systems (DRust, GAM,
          Local) fetch the object and compute at the caller; Grappa ships
          the computation to the object's home core.  Calls on the same
          handle are mutually atomic on Grappa (home-core serialization)
          but NOT on the others — guard them with a mutex. *)
  process_update : Ctx.t -> handle -> cycles:float
    -> (Drust_util.Univ.t -> Drust_util.Univ.t) -> unit;
      (** Read-modify-write variant of [process]. *)
  home : handle -> int;
      (** Node currently hosting the object (for affinity placement). *)
  tie : Ctx.t -> parent:handle -> child:handle -> unit;
      (** Affinity annotation; a no-op on backends without TBox. *)
  supports_affinity : bool;
  mutex_create : Ctx.t -> mutex;
  mutex_lock : Ctx.t -> mutex -> unit;
  mutex_unlock : Ctx.t -> mutex -> unit;
}

val with_mutex : t -> Ctx.t -> mutex -> (unit -> 'a) -> 'a
(** Lock/unlock bracket, releasing on exception. *)

val foreign : string -> 'a
(** [foreign name] raises {!Foreign_handle} — helper for backends. *)
