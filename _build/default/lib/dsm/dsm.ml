module Ctx = Drust_machine.Ctx

type handle = ..
type mutex = ..

exception Foreign_handle of string

type t = {
  name : string;
  alloc : Ctx.t -> size:int -> Drust_util.Univ.t -> handle;
  alloc_on : Ctx.t -> node:int -> size:int -> Drust_util.Univ.t -> handle;
  read : Ctx.t -> handle -> Drust_util.Univ.t;
  write : Ctx.t -> handle -> Drust_util.Univ.t -> unit;
  update : Ctx.t -> handle -> (Drust_util.Univ.t -> Drust_util.Univ.t) -> unit;
  free : Ctx.t -> handle -> unit;
  read_part : Ctx.t -> handle -> bytes:int -> unit;
  process : Ctx.t -> handle -> cycles:float -> Drust_util.Univ.t;
  process_update : Ctx.t -> handle -> cycles:float
    -> (Drust_util.Univ.t -> Drust_util.Univ.t) -> unit;
  home : handle -> int;
  tie : Ctx.t -> parent:handle -> child:handle -> unit;
  supports_affinity : bool;
  mutex_create : Ctx.t -> mutex;
  mutex_lock : Ctx.t -> mutex -> unit;
  mutex_unlock : Ctx.t -> mutex -> unit;
}

let with_mutex t ctx m f =
  t.mutex_lock ctx m;
  match f () with
  | v ->
      t.mutex_unlock ctx m;
      v
  | exception e ->
      t.mutex_unlock ctx m;
      raise e

let foreign name = raise (Foreign_handle name)
