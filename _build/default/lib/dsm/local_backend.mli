(** The "original" single-machine backend.

    Plain in-process heap accesses with no DSM machinery — the baseline
    every figure normalizes against (each application's throughput when
    run as-is on one server).  Use it on a 1-node cluster; mutexes are
    local CAS loops. *)

val create : Drust_machine.Cluster.t -> Dsm.t
