lib/dsm/drust_backend.ml: Drust_core Drust_machine Drust_memory Drust_ownership Drust_runtime Drust_sim Drust_util Dsm
