lib/dsm/dsm.mli: Drust_machine Drust_util
