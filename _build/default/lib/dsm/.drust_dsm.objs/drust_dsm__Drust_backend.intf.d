lib/dsm/drust_backend.mli: Drust_core Drust_machine Dsm
