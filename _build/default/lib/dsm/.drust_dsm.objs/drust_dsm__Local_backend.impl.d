lib/dsm/local_backend.ml: Drust_machine Drust_memory Drust_runtime Drust_util Dsm
