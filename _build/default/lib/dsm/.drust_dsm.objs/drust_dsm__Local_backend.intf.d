lib/dsm/local_backend.mli: Drust_machine Dsm
