lib/dsm/dsm.ml: Drust_machine Drust_util
