lib/runtime/registry.mli: Drust_machine
