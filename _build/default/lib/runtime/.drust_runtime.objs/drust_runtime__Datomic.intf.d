lib/runtime/datomic.mli: Drust_machine
