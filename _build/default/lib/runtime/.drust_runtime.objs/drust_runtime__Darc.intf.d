lib/runtime/darc.mli: Drust_machine Drust_util
