lib/runtime/drc.mli: Drust_machine Drust_util
