lib/runtime/drc.ml: Drust_machine Drust_memory Printf
