lib/runtime/darc.ml: Array Drust_machine Drust_memory Drust_net Printf
