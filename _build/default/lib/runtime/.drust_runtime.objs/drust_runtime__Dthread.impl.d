lib/runtime/dthread.ml: Array Drust_core Drust_machine Drust_memory Drust_net Drust_sim Drust_util Hashtbl List Registry
