lib/runtime/controller.mli: Drust_machine
