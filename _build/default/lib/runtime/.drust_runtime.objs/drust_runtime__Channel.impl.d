lib/runtime/channel.ml: Drust_core Drust_machine Drust_net Drust_sim
