lib/runtime/channel.mli: Drust_core Drust_machine
