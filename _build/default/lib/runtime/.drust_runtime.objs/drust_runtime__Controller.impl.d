lib/runtime/controller.ml: Array Drust_machine Drust_memory Drust_net Drust_sim Float List Registry
