lib/runtime/dmutex.mli: Drust_machine Drust_util
