lib/runtime/datomic.ml: Drust_machine Drust_memory Drust_net Drust_util
