lib/runtime/replication.ml: Array Drust_core Drust_machine Drust_memory Drust_net Drust_util Hashtbl List
