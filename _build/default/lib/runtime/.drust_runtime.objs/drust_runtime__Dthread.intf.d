lib/runtime/dthread.mli: Drust_core Drust_machine Drust_util
