lib/runtime/registry.ml: Drust_machine Hashtbl List
