lib/runtime/replication.mli: Drust_machine
