lib/runtime/dmutex.ml: Drust_machine Drust_memory Drust_net Drust_sim Drust_util Float Printf
