module Ctx = Drust_machine.Ctx
module Cluster = Drust_machine.Cluster

type record = {
  ctx : Ctx.t;
  mutable running : bool;
  mutable migrate_to : int option;
  mutable migrations : int;
}

(* One bucket of records per cluster uid. *)
let table : (int, record list ref) Hashtbl.t = Hashtbl.create 8

let bucket cluster =
  let uid = Cluster.uid cluster in
  match Hashtbl.find_opt table uid with
  | Some b -> b
  | None ->
      let b = ref [] in
      Hashtbl.replace table uid b;
      b

let register ctx =
  let r = { ctx; running = true; migrate_to = None; migrations = 0 } in
  let b = bucket (Ctx.cluster ctx) in
  b := r :: !b;
  r

let unregister r =
  r.running <- false;
  let b = bucket (Ctx.cluster r.ctx) in
  b := List.filter (fun r' -> r' != r) !b

let live_threads cluster = List.filter (fun r -> r.running) !(bucket cluster)

let threads_on cluster ~node =
  List.filter (fun r -> r.ctx.Ctx.node = node) (live_threads cluster)

let thread_count_on cluster ~node = List.length (threads_on cluster ~node)

let order_migration r ~target = r.migrate_to <- Some target

let clear cluster = Hashtbl.remove table (Cluster.uid cluster)
