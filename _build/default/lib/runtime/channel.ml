module Ctx = Drust_machine.Ctx
module Mailbox = Drust_sim.Mailbox
module Fabric = Drust_net.Fabric
module Protocol = Drust_core.Protocol

type 'a queue = { mb : 'a Mailbox.t; mutable home : int }
type 'a sender = 'a queue
type 'a receiver = 'a queue

let create ctx =
  let q = { mb = Mailbox.create (Ctx.engine ctx); home = ctx.Ctx.node } in
  (q, q)

let send ctx q ?(bytes = 16) v =
  if q.home <> ctx.Ctx.node then begin
    Ctx.flush ctx;
    (* One-way control-plane message carrying the shallow bytes. *)
    Fabric.send_async (Ctx.fabric ctx) ~from:ctx.Ctx.node ~target:q.home ~bytes
      (fun () -> Mailbox.send q.mb v)
  end
  else begin
    Ctx.charge_cycles ctx 150.0;
    Mailbox.send q.mb v
  end

let send_owner ctx q owner v =
  Protocol.transfer ctx owner ~to_node:q.home;
  send ctx q ~bytes:16 v

let recv ctx q =
  q.home <- ctx.Ctx.node;
  Ctx.flush ctx;
  let v = Mailbox.recv q.mb in
  Ctx.charge_cycles ctx 150.0;
  v

let try_recv ctx q =
  q.home <- ctx.Ctx.node;
  Mailbox.try_recv q.mb

let pending q = Mailbox.length q.mb
