(** Inter-thread channels (the paper's adapted [std::sync::mpsc], §4.1.2).

    Cross-server sends go through a network-backed message queue.  Because
    the global heap gives pointers cluster-wide validity, a message that
    contains [Box] pointers ships as its raw binary bytes — no
    serialization on either side; the receiver recovers the value by type
    conversion.  [send] therefore charges only the {e shallow} byte size
    of the message (16 bytes per pointer by default), not the size of the
    heap objects it references. *)

module Ctx = Drust_machine.Ctx

type 'a sender
type 'a receiver

val create : Ctx.t -> 'a sender * 'a receiver
(** The queue is homed where the receiver last performed a [recv]
    (initially the creating node). *)

val send : Ctx.t -> 'a sender -> ?bytes:int -> 'a -> unit
(** Non-blocking: charges a one-way message of [bytes] (default 16) to
    the receiver's node and enqueues. *)

val send_owner :
  Ctx.t -> 'a sender -> Drust_core.Protocol.owner -> 'a -> unit
(** Send a message that transfers ownership of [owner] to the receiving
    side: runs the protocol's transfer (evicting the sender-side cached
    copy) homed at the receiver's node, then sends. *)

val recv : Ctx.t -> 'a receiver -> 'a
(** Blocks until a message is available; re-homes the queue to the
    caller's node. *)

val try_recv : Ctx.t -> 'a receiver -> 'a option
val pending : 'a receiver -> int
