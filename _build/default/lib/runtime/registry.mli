(** Cluster-wide thread registry.

    The global controller's table of every live application thread
    (§4.2.2): where it runs, how much local heap it has allocated, how
    often it touches each remote node, and any pending migration order.
    The registry is also how [spawn] finds lightly-loaded nodes. *)

type record = {
  ctx : Drust_machine.Ctx.t;
  mutable running : bool;
  mutable migrate_to : int option;
  mutable migrations : int;
}

val register : Drust_machine.Ctx.t -> record
val unregister : record -> unit

val live_threads : Drust_machine.Cluster.t -> record list
val threads_on : Drust_machine.Cluster.t -> node:int -> record list

val thread_count_on : Drust_machine.Cluster.t -> node:int -> int

val order_migration : record -> target:int -> unit
(** Ask the thread to move at its next safe point. *)

val clear : Drust_machine.Cluster.t -> unit
(** Forget all records for a cluster (end of an experiment). *)
