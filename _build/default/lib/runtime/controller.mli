(** The global controller (§4.2.2).

    A daemon on node 0 (where the program was launched) that periodically
    pings every server for CPU and memory usage and rebalances load by
    ordering thread migrations:

    - memory pressure (> 90 % heap usage): migrate the thread consuming
      the most local heap until the pressure resolves;
    - compute congestion (> 90 % CPU utilization): migrate the thread with
      the most remote accesses to the server it accesses most — or, if
      that server is itself overloaded, to a vacant one. *)

module Ctx = Drust_machine.Ctx

type t

val start :
  ?probe_interval:float ->
  ?mem_threshold:float ->
  ?cpu_threshold:float ->
  Drust_machine.Cluster.t ->
  t
(** Spawns the probing daemon (default interval 1 ms of virtual time). *)

val stop : t -> unit
(** The daemon exits at its next wakeup; required for the event queue to
    drain. *)

val migrations_ordered : t -> int
val probes_performed : t -> int

val pick_spawn_node : t -> int
(** Least-CPU-loaded alive node — the placement answer the runtime asks
    the controller for when local compute is saturated. *)

val rebalance_once : t -> unit
(** Run one probing/rebalancing round synchronously (must be called from
    inside a simulated process); exposed for tests and experiments. *)
