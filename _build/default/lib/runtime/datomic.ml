module Ctx = Drust_machine.Ctx
module Cluster = Drust_machine.Cluster
module Fabric = Drust_net.Fabric
module Gaddr = Drust_memory.Gaddr
module Univ = Drust_util.Univ

let int_tag : int Univ.tag = Univ.create_tag ~name:"datomic.int"

type t = { g : Gaddr.t }

let create ctx v =
  Ctx.charge_cycles ctx 90.0;
  let g =
    Cluster.heap_alloc (Ctx.cluster ctx) ~node:ctx.Ctx.node ~size:8
      (Univ.pack int_tag v)
  in
  { g }

let home t = Gaddr.node_of t.g

let current ctx t =
  Univ.unpack_exn int_tag
    (Cluster.heap_read (Ctx.cluster ctx) t.g).Drust_memory.Partition.value

let set ctx t v = Cluster.heap_write (Ctx.cluster ctx) t.g (Univ.pack int_tag v)

(* Run [op] atomically at the value's home: locally for same-node access,
   otherwise as a one-sided RDMA atomic verb. *)
let at_home ctx t op =
  let target = Cluster.serving_node (Ctx.cluster ctx) (home t) in
  if target = ctx.Ctx.node then begin
    Ctx.charge_cycles ctx 25.0;
    op ()
  end
  else begin
    Ctx.note_remote_access ctx ~target;
    Ctx.flush ctx;
    Fabric.rdma_atomic (Ctx.fabric ctx) ~from:ctx.Ctx.node ~target op
  end

let load ctx t = at_home ctx t (fun () -> current ctx t)

let store ctx t v = at_home ctx t (fun () -> set ctx t v)

let fetch_add ctx t delta =
  at_home ctx t (fun () ->
      let old = current ctx t in
      set ctx t (old + delta);
      old)

let compare_and_swap ctx t ~expected ~desired =
  at_home ctx t (fun () ->
      let old = current ctx t in
      if old = expected then begin
        set ctx t desired;
        true
      end
      else false)

let free ctx t =
  Ctx.charge_cycles ctx 40.0;
  Cluster.heap_free (Ctx.cluster ctx) t.g
