(** Distributed threading (§4.1.2).

    Mirrors Rust's [std::thread] interface: [spawn] captures the body as a
    closure and lets the runtime choose where it runs — the current server
    unless its compute is saturated, otherwise the least-loaded alive
    node.  [spawn_to] (§4.1.3) places the thread next to the data it will
    touch.  Cross-server spawning ships only the closure and any captured
    pointers (not the heap objects) over a control message.

    Threads are cooperative: migration orders from the global controller
    take effect at safe points (compute-flush boundaries), mirroring the
    paper's non-preemptive scheduler. *)

module Ctx = Drust_machine.Ctx

type handle

val stack_bytes : int
(** Bytes shipped per thread migration (768 KiB): function pointer, saved
    register state, and the padded stack (§4.2.1 / §5). *)

val spawn : Ctx.t -> (Ctx.t -> unit) -> handle
(** Runtime placement: local node if it has spare cores, else the node
    with the fewest registered threads. *)

val spawn_on : Ctx.t -> node:int -> (Ctx.t -> unit) -> handle
(** Explicit placement. *)

val spawn_to : Ctx.t -> Drust_core.Protocol.owner -> (Ctx.t -> unit) -> handle
(** The paper's [spawn_to]: run the thread on the server hosting the given
    object. *)

val await : Ctx.t -> unit
(** Cooperative yield (§4.2.1): flush pending compute, let other ready
    threads run, and take a migration safe point. *)

val join : Ctx.t -> handle -> unit
(** Blocks the caller until the thread finishes; re-raises its failure. *)

val join_all : Ctx.t -> handle list -> unit

(** {1 Scoped threads}

    The [thread::scope] utility the paper keeps compatible (§4.1.2):
    every thread spawned inside the scope is joined before [scope]
    returns, so scoped threads may safely borrow data whose lifetime
    outlives the scope. *)

type scope

val scope : Ctx.t -> (scope -> unit) -> unit
(** [scope ctx f] runs [f] and joins every thread spawned through the
    scope before returning — also on exception, in which case the
    original exception is re-raised after the joins. *)

val spawn_in : scope -> ?node:int -> (Ctx.t -> unit) -> handle
(** Spawn inside the scope; placement as {!spawn} unless [node] is
    given. *)

val node_of : handle -> int
(** Node the thread currently runs on. *)

val migrations_of : handle -> int

val migrate_now : Ctx.t -> target:int -> float
(** Perform the migration protocol for the calling thread immediately:
    coordinate with the controller, ship the stack, update the thread
    table.  Returns the latency incurred (also advanced in virtual time).
    Used by the safe-point hook and by drill-down experiments. *)

val migration_latency_stats : Drust_machine.Cluster.t -> Drust_util.Stats.t
(** Latency samples of every migration performed on this cluster (the
    §7.3 drill-down reports their average). *)
