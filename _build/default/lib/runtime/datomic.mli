(** Distributed atomics (the paper's adapted [std::sync::atomic], §4.1.2).

    The actual value lives at a fixed spot on the global heap; atomic
    handles hold only the pointer and may be freely replicated across
    servers.  Operations are forwarded to the value's home server —
    implemented with one-sided RDMA atomic verbs (ATOMIC_FETCH_AND_ADD /
    ATOMIC_CMP_AND_SWP, §5) — so exactly one version of the value exists. *)

module Ctx = Drust_machine.Ctx

type t

val create : Ctx.t -> int -> t
(** Allocates the backing value in the caller's heap partition. *)

val home : t -> int

val load : Ctx.t -> t -> int
val store : Ctx.t -> t -> int -> unit
val fetch_add : Ctx.t -> t -> int -> int
(** Returns the previous value. *)

val compare_and_swap : Ctx.t -> t -> expected:int -> desired:int -> bool
(** True iff the swap happened. *)

val free : Ctx.t -> t -> unit
