(** Dynamic enforcement of Rust's ownership invariants.

    OCaml has no affine types, so the guarantees the paper gets from rustc
    at compile time are checked here at run time.  Every DRust object
    carries one [Borrow_state.t]; each API call drives the automaton below
    and raises {!Violation} on any transition a Rust compiler would have
    rejected.  The four invariants of §2:

    + {b Singular owner} — a value has exactly one live owner; transfer
      invalidates the source.
    + {b Safe borrowing} — borrows are created from the owner and must be
      returned before the owner dies or moves.
    + {b Single writer} — at most one mutable borrow, never alongside any
      other borrow.
    + {b Multiple reader} — any number of immutable borrows, but only when
      no mutable borrow exists.

    States (Fig. 1 of the paper): [Owned] (no outstanding borrow),
    [Shared n] (n immutable borrows live), [Mut_borrowed] (exclusive
    mutable borrow live), [Dead] (owner dropped or moved away). *)

type t

type state = Owned | Shared of int | Mut_borrowed | Dead

type violation_kind =
  | Mut_while_borrowed  (** mutable borrow requested while borrows live *)
  | Imm_while_mut_borrowed
  | Transfer_while_borrowed
  | Drop_while_borrowed
  | Use_after_death  (** owner used after a move or drop *)
  | Return_without_borrow  (** internal bug: unbalanced return *)

exception
  Violation of {
    kind : violation_kind;
    state : state;
    context : string;
  }

val pp_violation_kind : Format.formatter -> violation_kind -> unit
val pp_state : Format.formatter -> state -> unit

val create : unit -> t
val state : t -> state

val borrow_imm : t -> context:string -> unit
(** Owner hands out an immutable reference ([Owned] or [Shared n] →
    [Shared (n+1)]). *)

val return_imm : t -> context:string -> unit
(** An immutable reference is dropped. *)

val borrow_mut : t -> context:string -> unit
(** Owner hands out the unique mutable reference ([Owned] →
    [Mut_borrowed]). *)

val return_mut : t -> context:string -> unit
(** The mutable reference is dropped ([Mut_borrowed] → [Owned]). *)

val assert_owner_usable : t -> context:string -> unit
(** Direct owner access requires the [Owned] state (a write) — reads via
    the owner use {!assert_owner_readable}. *)

val assert_owner_readable : t -> context:string -> unit
(** Owner reads are legal in [Owned] and [Shared _]. *)

val transfer : t -> context:string -> unit
(** Ownership moves away (spawn capture, channel send...).  Legal only in
    [Owned]; the state machine stays [Owned] — the {e source handle} must
    be separately invalidated by the caller. *)

val kill : t -> context:string -> unit
(** Owner goes out of scope; legal only in [Owned], transitions to
    [Dead]. *)

val imm_count : t -> int
val is_mut_borrowed : t -> bool
val is_dead : t -> bool
