type state = Owned | Shared of int | Mut_borrowed | Dead

type violation_kind =
  | Mut_while_borrowed
  | Imm_while_mut_borrowed
  | Transfer_while_borrowed
  | Drop_while_borrowed
  | Use_after_death
  | Return_without_borrow

exception
  Violation of {
    kind : violation_kind;
    state : state;
    context : string;
  }

type t = { mutable st : state }

let pp_violation_kind fmt = function
  | Mut_while_borrowed -> Format.pp_print_string fmt "mutable borrow while borrowed"
  | Imm_while_mut_borrowed ->
      Format.pp_print_string fmt "immutable borrow while mutably borrowed"
  | Transfer_while_borrowed ->
      Format.pp_print_string fmt "ownership transfer while borrowed"
  | Drop_while_borrowed -> Format.pp_print_string fmt "owner dropped while borrowed"
  | Use_after_death -> Format.pp_print_string fmt "use after move/drop"
  | Return_without_borrow -> Format.pp_print_string fmt "unbalanced borrow return"

let pp_state fmt = function
  | Owned -> Format.pp_print_string fmt "Owned"
  | Shared n -> Format.fprintf fmt "Shared(%d)" n
  | Mut_borrowed -> Format.pp_print_string fmt "Mut_borrowed"
  | Dead -> Format.pp_print_string fmt "Dead"

let create () = { st = Owned }
let state t = t.st

let fail t kind context = raise (Violation { kind; state = t.st; context })

let borrow_imm t ~context =
  match t.st with
  | Owned -> t.st <- Shared 1
  | Shared n -> t.st <- Shared (n + 1)
  | Mut_borrowed -> fail t Imm_while_mut_borrowed context
  | Dead -> fail t Use_after_death context

let return_imm t ~context =
  match t.st with
  | Shared 1 -> t.st <- Owned
  | Shared n when n > 1 -> t.st <- Shared (n - 1)
  | Owned | Shared _ | Mut_borrowed | Dead ->
      fail t Return_without_borrow context

let borrow_mut t ~context =
  match t.st with
  | Owned -> t.st <- Mut_borrowed
  | Shared _ | Mut_borrowed -> fail t Mut_while_borrowed context
  | Dead -> fail t Use_after_death context

let return_mut t ~context =
  match t.st with
  | Mut_borrowed -> t.st <- Owned
  | Owned | Shared _ | Dead -> fail t Return_without_borrow context

let assert_owner_usable t ~context =
  match t.st with
  | Owned -> ()
  | Shared _ | Mut_borrowed -> fail t Mut_while_borrowed context
  | Dead -> fail t Use_after_death context

let assert_owner_readable t ~context =
  match t.st with
  | Owned | Shared _ -> ()
  | Mut_borrowed -> fail t Imm_while_mut_borrowed context
  | Dead -> fail t Use_after_death context

let transfer t ~context =
  match t.st with
  | Owned -> ()
  | Shared _ | Mut_borrowed -> fail t Transfer_while_borrowed context
  | Dead -> fail t Use_after_death context

let kill t ~context =
  match t.st with
  | Owned -> t.st <- Dead
  | Shared _ | Mut_borrowed -> fail t Drop_while_borrowed context
  | Dead -> fail t Use_after_death context

let imm_count t = match t.st with Shared n -> n | Owned | Mut_borrowed | Dead -> 0
let is_mut_borrowed t = t.st = Mut_borrowed
let is_dead t = t.st = Dead
