(** Single-machine typed ownership cells.

    A faithful, local-only rendering of the Rust discipline the paper
    builds on (its Listing 1): a value with one owner, scoped immutable and
    mutable borrows, and ownership transfer.  The DSM layer does not use
    this module directly — it uses {!Borrow_state} plus its own storage —
    but it shares the exact automaton, so property tests can check the two
    against each other, and examples can show the programming model without
    a cluster. *)

type 'a owner
type 'a imm_ref
type 'a mut_ref

val own : 'a -> 'a owner
(** [own v] heap-allocates [v] with a fresh owner (Rust's [Box::new]). *)

val borrow : 'a owner -> 'a imm_ref
val read : 'a imm_ref -> 'a
val drop_ref : 'a imm_ref -> unit

val borrow_mut : 'a owner -> 'a mut_ref
val read_mut : 'a mut_ref -> 'a
val write : 'a mut_ref -> 'a -> unit
val drop_mut : 'a mut_ref -> unit

val owner_read : 'a owner -> 'a
(** Read through the owner; legal while immutably borrowed. *)

val owner_write : 'a owner -> 'a -> unit
(** Write through the owner; requires no outstanding borrows. *)

val transfer : 'a owner -> 'a owner
(** Move ownership to a fresh owner, invalidating the argument. *)

val drop_owner : 'a owner -> unit
(** End of the owner's lifetime; requires no outstanding borrows. *)

val with_borrow : 'a owner -> ('a -> 'b) -> 'b
(** Scoped immutable borrow, released on return or exception. *)

val with_borrow_mut : 'a owner -> ('a -> 'a * 'b) -> 'b
(** Scoped mutable borrow: the callback receives the current value and
    returns the new value. *)

val state : 'a owner -> Borrow_state.state
