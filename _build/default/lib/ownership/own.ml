type 'a cell = { mutable value : 'a; borrow : Borrow_state.t }

type 'a owner = { cell : 'a cell; mutable valid : bool }
type 'a imm_ref = { icell : 'a cell; mutable ilive : bool }
type 'a mut_ref = { mcell : 'a cell; mutable mlive : bool }

let own v = { cell = { value = v; borrow = Borrow_state.create () }; valid = true }

let check_owner o context =
  if not o.valid then
    raise
      (Borrow_state.Violation
         { kind = Borrow_state.Use_after_death; state = Borrow_state.Dead; context })

let borrow o =
  check_owner o "Own.borrow";
  Borrow_state.borrow_imm o.cell.borrow ~context:"Own.borrow";
  { icell = o.cell; ilive = true }

let check_ref live context =
  if not live then
    raise
      (Borrow_state.Violation
         { kind = Borrow_state.Use_after_death; state = Borrow_state.Dead; context })

let read r =
  check_ref r.ilive "Own.read";
  r.icell.value

let drop_ref r =
  check_ref r.ilive "Own.drop_ref";
  r.ilive <- false;
  Borrow_state.return_imm r.icell.borrow ~context:"Own.drop_ref"

let borrow_mut o =
  check_owner o "Own.borrow_mut";
  Borrow_state.borrow_mut o.cell.borrow ~context:"Own.borrow_mut";
  { mcell = o.cell; mlive = true }

let read_mut m =
  check_ref m.mlive "Own.read_mut";
  m.mcell.value

let write m v =
  check_ref m.mlive "Own.write";
  m.mcell.value <- v

let drop_mut m =
  check_ref m.mlive "Own.drop_mut";
  m.mlive <- false;
  Borrow_state.return_mut m.mcell.borrow ~context:"Own.drop_mut"

let owner_read o =
  check_owner o "Own.owner_read";
  Borrow_state.assert_owner_readable o.cell.borrow ~context:"Own.owner_read";
  o.cell.value

let owner_write o v =
  check_owner o "Own.owner_write";
  Borrow_state.assert_owner_usable o.cell.borrow ~context:"Own.owner_write";
  o.cell.value <- v

let transfer o =
  check_owner o "Own.transfer";
  Borrow_state.transfer o.cell.borrow ~context:"Own.transfer";
  o.valid <- false;
  { cell = o.cell; valid = true }

let drop_owner o =
  check_owner o "Own.drop_owner";
  Borrow_state.kill o.cell.borrow ~context:"Own.drop_owner";
  o.valid <- false

let with_borrow o f =
  let r = borrow o in
  match f (read r) with
  | v ->
      drop_ref r;
      v
  | exception e ->
      drop_ref r;
      raise e

let with_borrow_mut o f =
  let m = borrow_mut o in
  match f (read_mut m) with
  | new_value, result ->
      write m new_value;
      drop_mut m;
      result
  | exception e ->
      drop_mut m;
      raise e

let state o = Borrow_state.state o.cell.borrow
