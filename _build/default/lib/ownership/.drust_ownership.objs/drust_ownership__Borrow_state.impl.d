lib/ownership/borrow_state.ml: Format
