lib/ownership/own.mli: Borrow_state
