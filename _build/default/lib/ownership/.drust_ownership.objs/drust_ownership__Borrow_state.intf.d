lib/ownership/borrow_state.mli: Format
