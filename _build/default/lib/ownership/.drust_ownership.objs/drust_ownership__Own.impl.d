lib/ownership/own.ml: Borrow_state
