(* No-process-globals lint, run by the @lint alias (a dep of @runtest).

   Per-cluster state must live in the cluster's [Drust_machine.Env]
   record (see docs/ARCHITECTURE.md), not in module-level mutable
   tables: uid-keyed Hashtbls leak (cluster uids are never pruned) and
   alias state across clusters that run concurrently on separate
   domains.  This tool scans every .ml under lib/ for top-level
   bindings whose right-hand side allocates a mutable container
   ([Hashtbl.create], [ref], [Queue.create], [Buffer.create],
   [Stack.create]) and fails unless the binding is allowlisted below.

   The allowlist is the closed set of deliberate process-wide state;
   each entry says why it is exempt.  Stale entries fail the lint too,
   so the list cannot rot. *)

let allowlist =
  [
    (* Report's CSV/summary collectors are per-process by design: one
       harness run produces one summary, and the cells are
       mutex-protected for parallel sweeps. *)
    ("lib/experiments/report.ml", "csv_dir");
    ("lib/experiments/report.ml", "current_slug");
    ("lib/experiments/report.ml", "slug_counter");
    ("lib/experiments/report.ml", "rates");
    (* host_ms recording is per-process CLI configuration (--host-time),
       set once before any experiment runs, like the collectors above. *)
    ("lib/experiments/report.ml", "host_time");
    (* Baseline memo spans clusters on purpose (that is the memo); the
       key carries the full run configuration and inserts are
       mutex-protected. *)
    ("lib/experiments/bench_setup.ml", "baseline_cache");
    (* DSan's auto-attach list spans clusters by design: install_global
       attaches one sanitizer per future cluster, mutex-protected. *)
    ("lib/check/dsan.ml", "auto");
  ]

(* A top-level [let <ident> [: type] = <mutable-container> ...] binding.
   [ \t\n]* / [^=]* let the annotation or the [=] span lines; parameters
   after the name (function definitions) break the match, so functions
   that merely allocate a table internally are not flagged. *)
let binding_re =
  Str.regexp
    "^let \\([a-z_][A-Za-z0-9_']*\\)[ \t\n]*\\(:[^=]*\\)?=[ \t\n]*\\(Hashtbl\\.create\\|Queue\\.create\\|Buffer\\.create\\|Stack\\.create\\|ref \\|ref$\\)"

let read_file path = In_channel.with_open_text path In_channel.input_all

let rec ml_files dir =
  Sys.readdir dir |> Array.to_list |> List.sort compare
  |> List.concat_map (fun entry ->
         let path = Filename.concat dir entry in
         if Sys.is_directory path then ml_files path
         else if Filename.check_suffix entry ".ml" then [ path ]
         else [])

let line_of text pos =
  let n = ref 1 in
  String.iteri (fun i c -> if i < pos && c = '\n' then incr n) text;
  !n

let () =
  let violations = ref [] in
  let seen = ref [] in
  List.iter
    (fun path ->
      let text = read_file path in
      let pos = ref 0 in
      try
        while true do
          let at = Str.search_forward binding_re text !pos in
          pos := at + 1;
          let name = Str.matched_group 1 text in
          if List.mem (path, name) allowlist then
            seen := (path, name) :: !seen
          else
            violations :=
              Printf.sprintf
                "%s:%d: top-level mutable binding %S — move it into the \
                 per-cluster Drust_machine.Env record (docs/ARCHITECTURE.md) \
                 or allowlist it in tools/lint_globals.ml with a reason"
                path (line_of text at) name
              :: !violations
        done
      with Not_found -> ())
    (ml_files "lib");
  List.iter
    (fun (path, name) ->
      if not (List.mem (path, name) !seen) then
        violations :=
          Printf.sprintf
            "tools/lint_globals.ml: stale allowlist entry (%s, %S) — the \
             binding no longer exists; remove it"
            path name
          :: !violations)
    allowlist;
  match List.rev !violations with
  | [] ->
      Printf.printf "lint_globals: OK (%d allowlisted process-global(s))\n"
        (List.length allowlist)
  | vs ->
      List.iter prerr_endline vs;
      Printf.eprintf "lint_globals: %d violation(s)\n" (List.length vs);
      exit 1
