(* DLint CLI, run by the @lint alias (a dep of @runtest).

     dlint [--list-passes] [--only PASS] [PATH ...]

   Parses every .ml under the given files or directory roots (default:
   lib bench bin examples) and runs the registered static-analysis
   passes — see docs/LINTS.md for the catalogue and the
   [@dlint.allow "pass-id: reason"] exemption mechanism.  Exits 1 when
   any diagnostic survives. *)

let usage () =
  prerr_endline "usage: dlint [--list-passes] [--only PASS] [PATH ...]";
  exit 2

let default_paths = Drust_lint.Lint.scan_roots

let () =
  let rec parse_args only paths = function
    | [] -> (only, List.rev paths)
    | "--list-passes" :: _ ->
        List.iter
          (fun p ->
            Printf.printf "%-12s %s\n" p.Drust_lint.Lint.p_name
              p.Drust_lint.Lint.p_doc)
          Drust_lint.Dlint.passes;
        exit 0
    | "--only" :: pass :: rest -> parse_args (Some pass) paths rest
    | "--only" :: [] -> usage ()
    | ("--help" | "-h") :: _ -> usage ()
    | arg :: _ when String.length arg > 0 && arg.[0] = '-' -> usage ()
    | path :: rest -> parse_args only (path :: paths) rest
  in
  let only, paths =
    parse_args None [] (List.tl (Array.to_list Sys.argv))
  in
  let paths = if paths = [] then default_paths else paths in
  let result =
    try Drust_lint.Dlint.run ?only ~paths ()
    with Invalid_argument msg ->
      prerr_endline msg;
      exit 2
  in
  match result.Drust_lint.Dlint.diagnostics with
  | [] ->
      Printf.printf "dlint: OK (%d files, %d passes%s, %d/%d exemption(s) in \
                     use)\n"
        result.Drust_lint.Dlint.files_scanned
        (match only with
        | None -> List.length Drust_lint.Dlint.passes
        | Some _ -> 1)
        (match only with Some p -> Printf.sprintf " [--only %s]" p | None -> "")
        result.Drust_lint.Dlint.allows_used
        result.Drust_lint.Dlint.allows_total
  | diags ->
      List.iter
        (fun d -> prerr_endline (Drust_lint.Lint.pp_diag d))
        diags;
      Printf.eprintf "dlint: %d finding(s)\n" (List.length diags);
      exit 1
