(* Documentation consistency checker, run by the @docs alias (a dep of
   @runtest, so stale docs fail the build).  Five checks:

   1. every relative .md link in docs/README.md (the index) resolves,
      and every docs/*.md file is reachable from the index;
   2. every repo path a doc names (lib/..., bench/..., examples/...,
      with a .ml/.mli/.md/.exe extension) exists — .exe is resolved to
      the executable's .ml source;
   3. every metric name registered at runtime appears in
      docs/OBSERVABILITY.md, and vice versa every `layer.metric` name
      the catalogue tables list is actually registered;
   4. the DSan invariant catalogue in docs/SANITIZER.md and
      [Dsan.invariant_names] agree in both directions;
   5. docs/BENCHMARKS.md names the summary schema version this build
      writes ([Report.schema_version]), so a schema bump cannot ship
      without its documentation;
   6. docs/PERFORMANCE.md (the host-side engine guide) exists, is
      linked from the index, and also names the current schema version
      — its host-time-gate section describes the `host_ms` column, so
      it must track schema bumps too;
   7. the DLint pass catalogue in docs/LINTS.md and the registry
      ([Dlint.pass_names]) agree in both directions: every registered
      pass is catalogued, and every pass id the catalogue's table names
      is registered;
   8. the SimPlan schema table in docs/SIMPLAN.md and the codec
      ([Simplan.field_names]) agree in both directions: every JSON
      field the codec reads or writes is documented, and every field
      the table's rows open with exists in the codec;
   9. the flight-dump schema tables in docs/FORENSICS.md and the codec
      ([Flight.field_names]) agree in both directions, and the doc
      names the dump schema tag ([Flight.schema]). *)

let errors = ref []
let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt
let read_file path = In_channel.with_open_text path In_channel.input_all

let docs_files () =
  Sys.readdir "docs" |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".md")
  |> List.sort compare

(* --- 1: the index ------------------------------------------------- *)

let md_link_re = Str.regexp {|](\([A-Za-z0-9_./-]+\.md\))|}

let check_index () =
  let index = read_file "docs/README.md" in
  let referenced = ref [] in
  let pos = ref 0 in
  (try
     while true do
       pos := Str.search_forward md_link_re index !pos + 1;
       let target = Str.matched_group 1 index in
       let path =
         if String.length target > 3 && String.sub target 0 3 = "../" then
           String.sub target 3 (String.length target - 3)
         else Filename.concat "docs" target
       in
       referenced := path :: !referenced;
       if not (Sys.file_exists path) then
         err "docs/README.md links to %s, which does not exist" target
     done
   with Not_found -> ());
  List.iter
    (fun f ->
      if f <> "README.md" then
        let path = Filename.concat "docs" f in
        if not (List.mem path !referenced) then
          err "docs/%s is not referenced from the docs/README.md index" f)
    (docs_files ())

(* --- 2: repo paths named in docs ---------------------------------- *)

let path_re =
  Str.regexp
    {|\(lib\|bench\|bin\|examples\|test\|tools\|docs\)/[A-Za-z0-9_./-]+\.\(mli\|ml\|md\|exe\)|}

let check_paths_in doc =
  let text = read_file doc in
  let pos = ref 0 in
  try
    while true do
      pos := Str.search_forward path_re text !pos + 1;
      let p = Str.matched_string text in
      let target =
        if Filename.check_suffix p ".exe" then Filename.remove_extension p ^ ".ml"
        else p
      in
      if not (Sys.file_exists target) then
        err "%s names %s, but %s does not exist" doc p target
    done
  with Not_found -> ()

(* --- 3: the metrics catalogue ------------------------------------- *)

(* Materialize every registration site: cluster creation registers the
   fabric and cache instruments, a protocol-stats read registers the
   protocol counters, Controller.start registers its own, and attaching
   the DSan sanitizer registers dsan.violations.  Nothing here runs the
   engine. *)
let registered_names () =
  let cluster =
    Drust_machine.Cluster.create
      { Drust_machine.Params.default with Drust_machine.Params.nodes = 2 }
  in
  let ctx = Drust_machine.Ctx.make cluster ~node:0 in
  ignore (Drust_core.Protocol.moves ctx);
  let ctl = Drust_runtime.Controller.start cluster in
  Drust_runtime.Controller.stop ctl;
  let dsan = Drust_check.Dsan.attach cluster in
  Drust_check.Dsan.detach dsan;
  Drust_obs.Metrics.names (Drust_machine.Cluster.metrics cluster)

let catalogue_name_re = Str.regexp {|`\([a-z_]+\.[a-z_]+\)`|}

let check_catalogue () =
  let doc = "docs/OBSERVABILITY.md" in
  let text = read_file doc in
  let registered = registered_names () in
  List.iter
    (fun name ->
      let quoted = "`" ^ name ^ "`" in
      let found =
        try
          ignore (Str.search_forward (Str.regexp_string quoted) text 0);
          true
        with Not_found -> false
      in
      if not found then
        err "metric %s is registered but missing from %s" name doc)
    registered;
  (* Reverse direction: every backtick-quoted layer.metric token in the
     doc must be a registered name (catch typos / renames).  Tokens with
     an uppercase letter or a path-ish shape never match the regex. *)
  let pos = ref 0 in
  (try
     while true do
       pos := Str.search_forward catalogue_name_re text !pos + 1;
       let name = Str.matched_group 1 text in
       (* `layer.*` wildcards and non-metric dotted tokens (module or
          file references) are skipped via an allowlist of prefixes. *)
       let is_metric_prefix =
         List.exists
           (fun p -> String.length name > String.length p
                     && String.sub name 0 (String.length p) = p)
           [ "fabric."; "cache."; "protocol."; "controller."; "dsan.";
             "flight." ]
       in
       if is_metric_prefix && not (List.mem name registered) then
         err "%s documents metric %s, which is not registered" doc name
     done
   with Not_found -> ())

(* --- 4: the DSan invariant catalogue ------------------------------ *)

let check_sanitizer_catalogue () =
  let doc = "docs/SANITIZER.md" in
  let text = read_file doc in
  let invariants = Drust_check.Dsan.invariant_names in
  let metric_names =
    List.filter
      (fun n -> String.length n > 5 && String.sub n 0 5 = "dsan.")
      (registered_names ())
  in
  (* Every invariant the sanitizer can report must be catalogued. *)
  List.iter
    (fun name ->
      let quoted = "`" ^ name ^ "`" in
      let found =
        try
          ignore (Str.search_forward (Str.regexp_string quoted) text 0);
          true
        with Not_found -> false
      in
      if not found then
        err "invariant %s is checked by lib/check/dsan.ml but missing from %s"
          name doc)
    invariants;
  (* Reverse direction: every backtick-quoted dsan.* token in the doc is
     either a checkable invariant or a registered dsan metric. *)
  let pos = ref 0 in
  try
    while true do
      pos := Str.search_forward catalogue_name_re text !pos + 1;
      let name = Str.matched_group 1 text in
      if
        String.length name > 5
        && String.sub name 0 5 = "dsan."
        && (not (List.mem name invariants))
        && not (List.mem name metric_names)
      then
        err "%s documents %s, which is neither a DSan invariant nor a metric"
          doc name
    done
  with Not_found -> ()

(* --- 5: the benchmark summary schema ------------------------------ *)

let names_schema_version doc =
  let text = read_file doc in
  let version = Drust_experiments.Report.schema_version in
  let found =
    try
      ignore (Str.search_forward (Str.regexp_string version) text 0);
      true
    with Not_found -> false
  in
  if not found then
    err "%s does not document the current summary schema %S (bumped in \
         lib/experiments/report.ml?)"
      doc version

let check_bench_schema () = names_schema_version "docs/BENCHMARKS.md"

(* --- 6: the performance guide ------------------------------------- *)

let check_performance_guide () =
  let doc = "docs/PERFORMANCE.md" in
  if not (Sys.file_exists doc) then
    err "%s is missing (the engine internals / host-time guide)" doc
  else begin
    let index = read_file "docs/README.md" in
    let linked =
      try
        ignore (Str.search_forward (Str.regexp_string "PERFORMANCE.md") index 0);
        true
      with Not_found -> false
    in
    if not linked then
      err "docs/README.md does not link to %s" doc;
    (* The guide documents the host_ms column of the summary, so it must
       name the schema version that carries it. *)
    names_schema_version doc
  end

(* --- 7: the DLint pass catalogue ----------------------------------- *)

(* A catalogue row opens with the backtick-quoted pass id:
   "| `determinism` | ...".  Only those leading cells are treated as
   pass ids; backticked tokens elsewhere in the doc (module names,
   metric names) are prose. *)
let lint_row_re = Str.regexp {re|^| `\([a-z_]+\)` ||re}

let check_lint_catalogue () =
  let doc = "docs/LINTS.md" in
  if not (Sys.file_exists doc) then
    err "%s is missing (the DLint pass catalogue)" doc
  else begin
    let index = read_file "docs/README.md" in
    (try ignore (Str.search_forward (Str.regexp_string "LINTS.md") index 0)
     with Not_found -> err "docs/README.md does not link to %s" doc);
    let text = read_file doc in
    let registered = Drust_lint.Dlint.pass_names in
    (* Forward: every registered pass appears in the catalogue. *)
    List.iter
      (fun name ->
        let quoted = "`" ^ name ^ "`" in
        let found =
          try
            ignore (Str.search_forward (Str.regexp_string quoted) text 0);
            true
          with Not_found -> false
        in
        if not found then
          err "lint pass %s is registered in lib/lint/dlint.ml but missing \
               from %s"
            name doc)
      registered;
    (* Reverse: every pass id the catalogue's table opens a row with is
       actually registered. *)
    let pos = ref 0 in
    try
      while true do
        pos := Str.search_forward lint_row_re text !pos + 1;
        let name = Str.matched_group 1 text in
        if name <> "pass" && not (List.mem name registered) then
          err "%s catalogues lint pass %s, which is not registered" doc name
      done
    with Not_found -> ()
  end

(* --- 8: the SimPlan schema table ----------------------------------- *)

(* A schema-table row opens with the backtick-quoted field name:
   "| `nodes` | ...".  Only those leading cells are field names;
   backticked tokens elsewhere in the doc are prose. *)
let plan_row_re = Str.regexp {re|^| `\([a-z0-9_]+\)` ||re}

let check_simplan_schema () =
  let doc = "docs/SIMPLAN.md" in
  if not (Sys.file_exists doc) then
    err "%s is missing (the SimPlan schema and replay guide)" doc
  else begin
    let index = read_file "docs/README.md" in
    (try ignore (Str.search_forward (Str.regexp_string "SIMPLAN.md") index 0)
     with Not_found -> err "docs/README.md does not link to %s" doc);
    let text = read_file doc in
    let fields = Drust_plan.Simplan.field_names in
    (* Forward: every codec field has a schema-table row. *)
    List.iter
      (fun name ->
        let quoted = "| `" ^ name ^ "`" in
        let found =
          try
            ignore (Str.search_forward (Str.regexp_string quoted) text 0);
            true
          with Not_found -> false
        in
        if not found then
          err "plan field %s is read/written by lib/plan/simplan.ml but has \
               no schema-table row in %s"
            name doc)
      fields;
    (* Reverse: every field a schema-table row opens with is a codec
       field. *)
    let pos = ref 0 in
    (try
       while true do
         pos := Str.search_forward plan_row_re text !pos + 1;
         let name = Str.matched_group 1 text in
         if name <> "field" && not (List.mem name fields) then
           err "%s documents plan field %s, which the codec does not read or \
                write"
             doc name
       done
     with Not_found -> ());
    (* The doc also states the plan envelope's own schema tag. *)
    let tag = Drust_plan.Simplan.plan_schema in
    (try ignore (Str.search_forward (Str.regexp_string tag) text 0)
     with Not_found ->
       err "%s does not name the plan envelope schema %S" doc tag)
  end

(* --- 9: the flight-dump schema tables ------------------------------ *)

(* Same row shape as check 8: a schema-table row opens with the
   backtick-quoted field name ("| `reason` | ...").  The single-letter
   payload fields (t/a/b/c/d) match the same regex. *)
let check_flight_schema () =
  let doc = "docs/FORENSICS.md" in
  if not (Sys.file_exists doc) then
    err "%s is missing (the flight-recorder / post-mortem guide)" doc
  else begin
    let index = read_file "docs/README.md" in
    (try ignore (Str.search_forward (Str.regexp_string "FORENSICS.md") index 0)
     with Not_found -> err "docs/README.md does not link to %s" doc);
    let text = read_file doc in
    let fields = Drust_obs.Flight.field_names in
    (* Forward: every codec field has a schema-table row. *)
    List.iter
      (fun name ->
        let quoted = "| `" ^ name ^ "`" in
        let found =
          try
            ignore (Str.search_forward (Str.regexp_string quoted) text 0);
            true
          with Not_found -> false
        in
        if not found then
          err "dump field %s is read/written by lib/obs/flight.ml but has \
               no schema-table row in %s"
            name doc)
      fields;
    (* Reverse: every field a schema-table row opens with is a codec
       field. *)
    let pos = ref 0 in
    (try
       while true do
         pos := Str.search_forward plan_row_re text !pos + 1;
         let name = Str.matched_group 1 text in
         if name <> "field" && not (List.mem name fields) then
           err "%s documents dump field %s, which the flight codec does not \
                read or write"
             doc name
       done
     with Not_found -> ());
    (* The doc also states the dump's own schema tag. *)
    let tag = Drust_obs.Flight.schema in
    try ignore (Str.search_forward (Str.regexp_string tag) text 0)
    with Not_found -> err "%s does not name the dump schema %S" doc tag
  end

let () =
  check_index ();
  List.iter
    (fun f -> check_paths_in (Filename.concat "docs" f))
    (docs_files ());
  check_paths_in "README.md";
  check_catalogue ();
  check_sanitizer_catalogue ();
  check_bench_schema ();
  check_performance_guide ();
  check_lint_catalogue ();
  check_simplan_schema ();
  check_flight_schema ();
  match List.rev !errors with
  | [] -> print_endline "docs check: OK"
  | msgs ->
      List.iter (Printf.eprintf "docs check: %s\n") msgs;
      exit 1
