(* Benchmark regression gate, run by the @bench-diff alias (a dep of
   @runtest).  Compares two BENCH_summary.json files — any schema,
   drust-bench-summary/v1 (rates only), /v2 (rates + latency_us
   percentiles) or /v3 (v2 + optional host_ms wall-clock) — entry by
   entry with a relative tolerance:

     bench_diff.exe BASELINE CURRENT [--tolerance F] [--tolerance-host F]
                    [--write-baseline]

   A regression is a baseline entry missing from CURRENT, a throughput
   drop below baseline*(1 - tolerance), a latency percentile above
   baseline*(1 + tolerance), or — when both sides carry host_ms — a
   host time above baseline*(1 + tolerance-host); any regression exits
   1.  Host time is wall-clock and therefore noisy, so its tolerance
   defaults to 2.0 (only a 3x blowup fails) while the simulated-rate
   tolerance defaults to 0.10.  Entries present only in CURRENT are
   reported as informational and never fail the gate, so adding an
   experiment does not require touching the baseline first.
   --write-baseline validates CURRENT and copies it over BASELINE
   instead of comparing (the blessing workflow after an intentional
   perf change). *)

module Report = Drust_experiments.Report

let usage () =
  prerr_endline
    "usage: bench_diff.exe BASELINE CURRENT [--tolerance F] \
     [--tolerance-host F] [--write-baseline]";
  exit 2

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let tolerance = ref 0.10 in
  let tolerance_host = ref 2.0 in
  let write_baseline = ref false in
  let parse_tol name r f rest k =
    match float_of_string_opt f with
    | Some t when t >= 0.0 ->
        r := t;
        k rest
    | _ ->
        Printf.eprintf "bench_diff: %s expects a non-negative float\n" name;
        exit 2
  in
  let rec split acc = function
    | "--tolerance" :: f :: rest ->
        parse_tol "--tolerance" tolerance f rest (split acc)
    | "--tolerance-host" :: f :: rest ->
        parse_tol "--tolerance-host" tolerance_host f rest (split acc)
    | "--write-baseline" :: rest ->
        write_baseline := true;
        split acc rest
    | x :: rest -> split (x :: acc) rest
    | [] -> List.rev acc
  in
  let baseline_path, current_path =
    match split [] args with [ b; c ] -> (b, c) | _ -> usage ()
  in
  let read path =
    try Report.read_bench_summary ~path
    with Failure m | Sys_error m ->
      Printf.eprintf "bench_diff: %s\n" m;
      exit 2
  in
  let current = read current_path in
  if !write_baseline then begin
    (* CURRENT already parsed, so the blessed file is known-readable. *)
    let text = In_channel.with_open_text current_path In_channel.input_all in
    Out_channel.with_open_text baseline_path (fun oc ->
        Out_channel.output_string oc text);
    Printf.printf "bench diff: baseline %s <- %s (%d entr(y/ies), schema %s)\n"
      baseline_path current_path
      (List.length current.Report.sm_entries)
      current.Report.sm_schema
  end
  else begin
    let baseline = read baseline_path in
    let regressions =
      Report.compare_summaries ~tolerance:!tolerance
        ~tolerance_host:!tolerance_host ~baseline current
    in
    (* Informational host-time column: baseline -> current ms per entry
       that carries host_ms on both sides.  The pass/fail decision lives
       in [compare_summaries]; this line just surfaces the drift. *)
    List.iter
      (fun (name, (c : Report.summary_entry)) ->
        match
          (List.assoc_opt name baseline.Report.sm_entries, c.Report.se_host_ms)
        with
        | Some b, Some cv -> (
            match b.Report.se_host_ms with
            | Some bv when bv > 0.0 ->
                Printf.printf "bench diff: host %s: %.6g -> %.6g ms (%+.1f%%)\n"
                  name bv cv
                  (100.0 *. ((cv /. bv) -. 1.0))
            | _ -> ())
        | _ -> ())
      current.Report.sm_entries;
    List.iter
      (fun (name, _) ->
        if not (List.mem_assoc name baseline.Report.sm_entries) then
          Printf.printf "bench diff: note: new entry %s (not in baseline)\n"
            name)
      current.Report.sm_entries;
    match regressions with
    | [] ->
        Printf.printf
          "bench diff: OK (%d entr(y/ies) within %.0f%%, host within %.0f%%)\n"
          (List.length baseline.Report.sm_entries)
          (100.0 *. !tolerance)
          (100.0 *. !tolerance_host)
    | msgs ->
        List.iter (Printf.eprintf "bench diff: REGRESSION: %s\n") msgs;
        Printf.eprintf
          "bench diff: %d regression(s) vs %s (tolerance %.0f%%, host \
           %.0f%%); if intentional, re-bless with --write-baseline\n"
          (List.length msgs) baseline_path
          (100.0 *. !tolerance)
          (100.0 *. !tolerance_host);
        exit 1
  end
