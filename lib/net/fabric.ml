module Engine = Drust_sim.Engine
module Fault = Drust_sim.Fault
module Metrics = Drust_obs.Metrics
module Span = Drust_obs.Span
module Flight = Drust_obs.Flight

type node_id = int

(* A verb targeting (or issued from) a crashed node: the transport's
   retry period expires and the work request completes in error. *)
exception Node_down of int

(* A wrapped operation that did not complete within its simulated-time
   budget (e.g. the message or its reply was dropped or blackholed). *)
exception Rpc_timeout of { from : int; target : int; timeout : float }

(* A verb carried a membership-view epoch older than the one current at
   serve time: the target refuses to act on routing state that a
   committed handoff has invalidated.  Retryable — the caller re-reads
   its view (updated by the controller's announcement) and reissues. *)
exception Stale_epoch of { from : int; target : int; seen : int; current : int }

let () =
  Printexc.register_printer (function
    | Node_down n -> Some (Printf.sprintf "Fabric.Node_down(node %d)" n)
    | Rpc_timeout { from; target; timeout } ->
        Some
          (Printf.sprintf "Fabric.Rpc_timeout(%d->%d after %gus)" from target
             (timeout *. 1e6))
    | Stale_epoch { from; target; seen; current } ->
        Some
          (Printf.sprintf "Fabric.Stale_epoch(%d->%d carried e%d, current e%d)"
             from target seen current)
    | _ -> None)

type counters = {
  reads : int;
  writes : int;
  atomics : int;
  rpcs : int;
  bytes_out : int;
  remote_ops : int;
  timeouts : int; (* wrapped ops that expired their budget *)
  retries : int; (* backoff re-attempts issued from this node *)
  drops : int; (* messages lost to partitions or lossy links *)
  stale_epochs : int; (* verbs rejected for carrying an old view epoch *)
}

(* Per-node registry handles; the public [counters] record is a snapshot
   of these. *)
type verbs = {
  c_reads : Metrics.counter;
  c_writes : Metrics.counter;
  c_atomics : Metrics.counter;
  c_rpcs : Metrics.counter;
  c_bytes_out : Metrics.counter;
  c_remote_ops : Metrics.counter;
  c_timeouts : Metrics.counter;
  c_retries : Metrics.counter;
  c_drops : Metrics.counter;
  c_stale_epochs : Metrics.counter;
}

(* One batch of coalesced async deliveries on a directed edge: callbacks
   landing at the exact same instant with no other event pushed since the
   batch's own queue entry.  Running them back-to-back inside that one
   entry is indistinguishable from dispatching them individually — they
   would have occupied adjacent (time, seq) slots anyway.  [bt_mark] is
   the engine's push count right after the batch event was pushed; any
   later push invalidates the batch for further appends.  [bt_done]
   marks a fired batch whose record may be recycled for the next batch
   on the edge, so steady-state batching allocates no records. *)
type batch = {
  mutable bt_time : float;
  mutable bt_mark : int;
  mutable bt_fns : (unit -> unit) array;
  mutable bt_len : int;
  mutable bt_done : bool;
}

type t = {
  engine : Engine.t;
  rng : Drust_util.Rng.t;
  model : Model.t;
  nodes : int;
  metrics : Metrics.t;
  counters : verbs array;
  (* Most recent batch per directed edge, indexed from * nodes + target.
     [batching] gates coalescing; turning it off never loses pending
     batches (their scheduled events own their records). *)
  mutable batching : bool;
  batch_slots : batch option array;
  (* Egress line-rate serialization: the NIC that sources a payload can
     push one stream at line rate; concurrent bulk transfers from the
     same node queue behind each other.  Small control messages are
     exempt (they ride the latency, not the bandwidth). *)
  nics : Drust_sim.Resource.t array;
  mutable spans : Span.t option;
  mutable fault : Fault.t option;
  (* Current membership-view epoch, installed by the membership layer.
     Verbs carrying an [?epoch] are validated against it at serve time;
     absent (the default) every carried epoch passes. *)
  mutable epoch_of : (unit -> int) option;
  (* Observational hook fired at verb-issue time; DSan uses it to keep a
     recent-traffic ring for violation provenance.  Must never touch the
     engine or any RNG. *)
  mutable observer : (string -> from:int -> target:int -> bytes:int -> unit) option;
  (* The cluster's always-on flight recorder: every verb issue, timeout,
     retry, drop, and stale-epoch NAK lands in the issuing node's ring.
     Separate from [observer] — that single slot belongs to DSan, and
     the black box must keep recording while a sanitizer is attached. *)
  mutable flight : Flight.t option;
}

(* Transfers below this size do not contend for the DMA engine. *)
let bulk_threshold = 4096

let register_verbs metrics node =
  let labels = [ ("node", string_of_int node) ] in
  let c ?(unit_ = "ops") name = Metrics.counter metrics ~labels ~unit_ name in
  {
    c_reads = c "fabric.reads";
    c_writes = c "fabric.writes";
    c_atomics = c "fabric.atomics";
    c_rpcs = c "fabric.rpcs";
    c_bytes_out = c ~unit_:"bytes" "fabric.bytes_out";
    c_remote_ops = c "fabric.remote_ops";
    c_timeouts = c "fabric.timeouts";
    c_retries = c "fabric.retries";
    c_drops = c "fabric.drops";
    c_stale_epochs = c "fabric.stale_epochs";
  }

let create ?metrics ?spans ?flight ~engine ~rng ~model ~nodes () =
  if nodes <= 0 then invalid_arg "Fabric.create: need at least one node";
  let metrics =
    match metrics with Some m -> m | None -> Metrics.create ()
  in
  {
    engine;
    rng;
    model;
    nodes;
    metrics;
    counters = Array.init nodes (register_verbs metrics);
    batching = true;
    batch_slots = Array.make (nodes * nodes) None;
    nics =
      Array.init nodes (fun _ -> Drust_sim.Resource.create engine ~capacity:1);
    spans;
    fault = None;
    epoch_of = None;
    observer = None;
    flight;
  }

(* Flight-recorder append for one fabric event on the issuing node's
   ring (array stores only — see Flight.record). *)
let[@inline] fr t ~from ~kind ~a ~b ~c =
  match t.flight with
  | None -> ()
  | Some fl ->
      Flight.record fl ~node:from ~time:(Engine.now t.engine) ~kind ~a ~b ~c
        ~d:0

let ep = function Some e -> e | None -> -1

let set_spans t spans = t.spans <- spans
let set_flight t fl = t.flight <- fl
let set_delivery_batching t on = t.batching <- on
let set_observer t o = t.observer <- o
let set_epoch_source t f = t.epoch_of <- f
let metrics t = t.metrics
let set_fault_plan t plan = t.fault <- Some plan
let fault_plan t = t.fault

(* Instant mark on the issuing node's timeline (drops, timeouts, async
   sends); argument lists are only built when tracing is live. *)
let mark ?parent t verb ~from ~target ~bytes =
  match t.spans with
  | Some sp when Span.is_enabled sp ->
      Span.instant sp ~track:from ?parent ~category:"fabric"
        ~args:
          [ ("target", string_of_int target); ("bytes", string_of_int bytes) ]
        verb
  | _ -> ()

(* Live tracing context threaded through one blocking verb: the tracer,
   the verb's open span, and the flow-edge id minted for cross-node
   verbs (0 when from = target). *)
type verb_trace = { vt_sp : Span.t; vt_span : Span.span; vt_flow : int }

(* Target-side consumption mark: closes the flow arrow on the serving
   node's timeline (the RECV of an RPC, the NIC serving a READ). *)
let serve_mark vt ~target name =
  match vt with
  | None -> ()
  | Some { vt_sp; vt_span; vt_flow } ->
      let flow_in = if vt_flow = 0 then [] else [ vt_flow ] in
      Span.instant vt_sp ~track:target ~parent:vt_span ~flow_in
        ~category:"fabric" name

(* Complete span covering a blocking verb's latency.  [f] receives the
   live trace context (None when tracing is off) so it can hang
   wire/queue sub-spans and target-side marks off the verb span. *)
let with_verb_span t verb ~from ~target ~bytes ?parent f =
  match t.spans with
  | Some sp when Span.is_enabled sp ->
      let vs =
        Span.start sp ~track:from ~category:"fabric" ?parent
          ~args:
            [ ("target", string_of_int target); ("bytes", string_of_int bytes) ]
          verb
      in
      let fid =
        if from = target then 0
        else begin
          let fid = Span.fresh_flow_id sp in
          Span.add_flow_out vs fid;
          fid
        end
      in
      let vt = Some { vt_sp = sp; vt_span = vs; vt_flow = fid } in
      (match f vt with
      | v ->
          Span.finish sp vs;
          v
      | exception e ->
          Span.finish sp vs;
          raise e)
  | _ -> f None

let engine t = t.engine
let node_count t = t.nodes
let model t = t.model

let check_node t n label =
  if n < 0 || n >= t.nodes then
    invalid_arg (Printf.sprintf "Fabric.%s: node %d out of range" label n)

(* ------------------------------------------------------------------ *)
(* Fault-plan consultation.  With no plan installed every check is a
   no-op, so fault-free runs keep their exact event and RNG sequences. *)

(* Park the calling process forever: the registration function discards
   the resumer, so the continuation is never scheduled. *)
let blackhole () : unit = Engine.suspend (fun _resume -> ())

(* Synchronous verbs: a dead source kills the issuing thread's op
   outright; a dead target costs the transport's retry period and then
   completes in error; a severed or lossy link swallows the message, so
   the op never completes (callers bound this with [rpc_with_timeout]). *)
let sync_guard t ~from ~target =
  match t.fault with
  | None -> ()
  | Some p ->
      if Fault.is_down p from then raise (Node_down from);
      if from <> target then begin
        if Fault.is_down p target then begin
          Engine.delay t.engine (Fault.nak_delay p);
          raise (Node_down target)
        end;
        if Fault.severed p ~from ~target || Fault.drops p ~from ~target then begin
          Metrics.incr t.counters.(from).c_drops;
          mark t "DROP" ~from ~target ~bytes:0;
          fr t ~from ~kind:Flight.k_fab_drop ~a:target ~b:0 ~c:0;
          blackhole ()
        end
      end

(* Fire-and-forget verbs never raise: a message to a dead or unreachable
   node is silently lost, exactly like a one-sided WRITE whose completion
   nobody polls. *)
let async_delivers t ~from ~target =
  match t.fault with
  | None -> true
  | Some p ->
      if
        Fault.is_down p from || Fault.is_down p target
        || (from <> target
           && (Fault.severed p ~from ~target || Fault.drops p ~from ~target))
      then begin
        Metrics.incr t.counters.(from).c_drops;
        mark t "DROP(async)" ~from ~target ~bytes:0;
        fr t ~from ~kind:Flight.k_fab_drop ~a:target ~b:0 ~c:0;
        false
      end
      else true

let fault_extra_latency t ~from ~target =
  match t.fault with
  | Some p when from <> target -> Fault.extra_latency p ~from ~target
  | Some _ | None -> 0.0

(* Serve-time view validation: a verb that carried an epoch is rejected
   if the membership view advanced while it was in flight (or the issuer
   was already behind when it posted).  Runs after the request leg's
   latency — the request reached the target and completed in error, like
   a work request NAKed by a server that re-checked its delegation map. *)
let check_epoch t ~from ~target epoch =
  match (epoch, t.epoch_of) with
  | Some seen, Some current_of ->
      let current = current_of () in
      if seen < current then begin
        Metrics.incr t.counters.(from).c_stale_epochs;
        mark t "STALE_EPOCH" ~from ~target ~bytes:0;
        fr t ~from ~kind:Flight.k_fab_stale_epoch ~a:target ~b:seen ~c:current;
        raise (Stale_epoch { from; target; seen; current })
      end
  | _ -> ()

(* Apply multiplicative gaussian jitter to a base latency, clamped so that
   a pathological sample can never be negative or more than double. *)
let jittered t base =
  if t.model.Model.jitter <= 0.0 then base
  else
    let factor =
      Drust_util.Rng.gaussian t.rng ~mu:1.0 ~sigma:t.model.Model.jitter
    in
    base *. Float.max 0.5 (Float.min 2.0 factor)

let latency t ~from ~target ~base ~bytes =
  let raw =
    if from = target then t.model.Model.local_base +. Model.transfer_time t.model ~bytes
    else base +. Model.transfer_time t.model ~bytes
  in
  jittered t raw +. fault_extra_latency t ~from ~target

(* Block for the verb's latency; a bulk payload additionally holds the
   data source's NIC for its wire time, so concurrent bulk egress from
   one node serializes at line rate.  With a live [vt], each phase lands
   as a sub-span of the verb (propagation/wire -> [net.wire], waiting
   for the NIC -> [net.queue], holding it -> [net.serialize]) — the
   exact same delays and resource acquisitions happen either way. *)
let delay_with_nic ~vt t ~data_source ~from ~target ~base ~bytes =
  if bytes >= bulk_threshold && from <> target then begin
    let wire = Model.transfer_time t.model ~bytes in
    match vt with
    | Some { vt_sp = sp; vt_span = parent; _ } ->
        Span.with_span sp ~track:from ~parent ~category:"net.wire" "propagate"
          (fun () ->
            Engine.delay t.engine (latency t ~from ~target ~base ~bytes:0));
        let wait =
          Span.start sp ~track:from ~parent ~category:"net.queue" "nic_wait"
        in
        Drust_sim.Resource.use t.nics.(data_source) (fun () ->
            Span.finish sp wait;
            Span.with_span sp ~track:from ~parent ~category:"net.serialize"
              "serialize" (fun () -> Engine.delay t.engine (jittered t wire)))
    | None ->
        Engine.delay t.engine (latency t ~from ~target ~base ~bytes:0);
        Drust_sim.Resource.use t.nics.(data_source) (fun () ->
            Engine.delay t.engine (jittered t wire))
  end
  else
    match vt with
    | Some { vt_sp = sp; vt_span = parent; _ } ->
        Span.with_span sp ~track:from ~parent ~category:"net.wire" "wire"
          (fun () ->
            Engine.delay t.engine (latency t ~from ~target ~base ~bytes))
    | None -> Engine.delay t.engine (latency t ~from ~target ~base ~bytes)

let note ?(verb = "") t ~from ~target ~bytes =
  let c = t.counters.(from) in
  Metrics.add c.c_bytes_out bytes;
  if from <> target then Metrics.incr c.c_remote_ops;
  match t.observer with
  | None -> ()
  | Some f -> f verb ~from ~target ~bytes

let rdma_read ?parent ?epoch t ~from ~target ~bytes =
  check_node t from "rdma_read";
  check_node t target "rdma_read";
  Metrics.incr t.counters.(from).c_reads;
  note ~verb:"READ" t ~from ~target ~bytes;
  fr t ~from ~kind:Flight.k_fab_read ~a:target ~b:bytes ~c:(ep epoch);
  sync_guard t ~from ~target;
  (* READ pulls data out of the target: the target's NIC is the egress. *)
  with_verb_span t "READ" ~from ~target ~bytes ?parent (fun vt ->
      delay_with_nic ~vt t ~data_source:target ~from ~target
        ~base:t.model.Model.oneside_base ~bytes;
      check_epoch t ~from ~target epoch;
      if from <> target then serve_mark vt ~target "SERVE(READ)")

let rdma_write ?parent ?epoch t ~from ~target ~bytes =
  check_node t from "rdma_write";
  check_node t target "rdma_write";
  Metrics.incr t.counters.(from).c_writes;
  note ~verb:"WRITE" t ~from ~target ~bytes;
  fr t ~from ~kind:Flight.k_fab_write ~a:target ~b:bytes ~c:(ep epoch);
  sync_guard t ~from ~target;
  (* WRITE pushes data from the sender: its NIC is the egress. *)
  with_verb_span t "WRITE" ~from ~target ~bytes ?parent (fun vt ->
      delay_with_nic ~vt t ~data_source:from ~from ~target
        ~base:t.model.Model.oneside_base ~bytes;
      check_epoch t ~from ~target epoch;
      if from <> target then serve_mark vt ~target "SERVE(WRITE)")

(* ------------------------------------------------------------------ *)
(* Async delivery batching.                                            *)

let nop () = ()

(* Run every callback of a fired batch inside the one queue entry.  The
   loop re-reads [bt_len] live: a callback that issues a same-edge
   delivery landing at this very instant (before any other push) appends
   to this batch, and running it at the tail is exactly the slot it
   would have dispatched in unbatched.  The piggybacked callbacks are
   accounted as logical events so events/sec stays comparable. *)
let run_batch engine b =
  if b.bt_len > 1 then Engine.count_extra_events engine (b.bt_len - 1);
  let i = ref 0 in
  while !i < b.bt_len do
    let fn = b.bt_fns.(!i) in
    b.bt_fns.(!i) <- nop;
    incr i;
    fn ()
  done;
  b.bt_done <- true

(* Schedule async delivery callback [fn] to run [dt] from now on edge
   [from -> target].  When the edge's pending batch lands at the exact
   same instant and nothing has been pushed since it was created, [fn]
   piggybacks on that batch's queue entry instead of getting its own.
   Order is provably unchanged: the no-pushes-since-the-batch check
   means [fn]'s own event would have taken the very next sequence slot
   after the batch's members, i.e. it dispatches immediately after them
   either way.  See docs/PERFORMANCE.md. *)
let deliver t ~from ~target dt fn =
  if not t.batching then Engine.schedule_after t.engine dt fn
  else begin
    let at = Engine.now t.engine +. dt in
    let slot = (from * t.nodes) + target in
    let fresh () =
      let b =
        { bt_time = at; bt_mark = 0; bt_fns = [| fn; nop |]; bt_len = 1;
          bt_done = false }
      in
      Engine.schedule t.engine ~at (fun () -> run_batch t.engine b);
      b.bt_mark <- Engine.pushes t.engine;
      t.batch_slots.(slot) <- Some b
    in
    match t.batch_slots.(slot) with
    | Some b when b.bt_time = at && Engine.pushes t.engine = b.bt_mark ->
        let cap = Array.length b.bt_fns in
        if b.bt_len = cap then begin
          let fns = Array.make (2 * cap) nop in
          Array.blit b.bt_fns 0 fns 0 cap;
          b.bt_fns <- fns
        end;
        b.bt_fns.(b.bt_len) <- fn;
        b.bt_len <- b.bt_len + 1
    | Some b when b.bt_done ->
        (* Recycle the fired record: its event has run, nothing else can
           reference it. *)
        b.bt_time <- at;
        b.bt_fns.(0) <- fn;
        b.bt_len <- 1;
        b.bt_done <- false;
        Engine.schedule t.engine ~at (fun () -> run_batch t.engine b);
        b.bt_mark <- Engine.pushes t.engine
    | Some _ | None -> fresh ()
  end

let rdma_write_async ?parent t ~from ~target ~bytes k =
  check_node t from "rdma_write_async";
  check_node t target "rdma_write_async";
  Metrics.incr t.counters.(from).c_writes;
  note ~verb:"WRITE(async)" t ~from ~target ~bytes;
  fr t ~from ~kind:Flight.k_fab_write ~a:target ~b:bytes ~c:(-1);
  if async_delivers t ~from ~target then begin
    let dt = latency t ~from ~target ~base:t.model.Model.oneside_base ~bytes in
    match t.spans with
    | Some sp when Span.is_enabled sp ->
        (* Flow edge from the posting instant to a RECV instant emitted
           by a wrapped callback at delivery time — same schedule_after,
           so the event order is unchanged. *)
        let fid = if from = target then 0 else Span.fresh_flow_id sp in
        let flow_out = if fid = 0 then [] else [ fid ] in
        Span.instant sp ~track:from ?parent ~flow_out ~category:"fabric"
          ~args:
            [ ("target", string_of_int target); ("bytes", string_of_int bytes) ]
          "WRITE(async)";
        deliver t ~from ~target dt (fun () ->
            Span.instant sp ~track:target
              ~flow_in:(if fid = 0 then [] else [ fid ])
              ~category:"fabric" "RECV(WRITE)";
            k ())
    | _ -> deliver t ~from ~target dt k
  end

let rdma_atomic ?parent t ~from ~target f =
  check_node t from "rdma_atomic";
  check_node t target "rdma_atomic";
  Metrics.incr t.counters.(from).c_atomics;
  note ~verb:"ATOMIC" t ~from ~target ~bytes:8;
  fr t ~from ~kind:Flight.k_fab_atomic ~a:target ~b:8 ~c:(-1);
  sync_guard t ~from ~target;
  with_verb_span t "ATOMIC" ~from ~target ~bytes:8 ?parent (fun vt ->
      (match vt with
      | Some { vt_sp = sp; vt_span = parent; _ } ->
          Span.with_span sp ~track:from ~parent ~category:"net.wire" "wire"
            (fun () ->
              Engine.delay t.engine
                (latency t ~from ~target ~base:t.model.Model.atomic_base
                   ~bytes:0))
      | None ->
          Engine.delay t.engine
            (latency t ~from ~target ~base:t.model.Model.atomic_base ~bytes:0));
      if from <> target then serve_mark vt ~target "SERVE(ATOMIC)";
      f ())

let rpc ?parent ?epoch t ~from ~target ~req_bytes ~resp_bytes handler =
  check_node t from "rpc";
  check_node t target "rpc";
  Metrics.incr t.counters.(from).c_rpcs;
  note ~verb:"RPC" t ~from ~target ~bytes:(req_bytes + resp_bytes);
  fr t ~from ~kind:Flight.k_fab_rpc ~a:target ~b:(req_bytes + resp_bytes)
    ~c:(ep epoch);
  sync_guard t ~from ~target;
  with_verb_span t "RPC" ~from ~target ~bytes:(req_bytes + resp_bytes) ?parent
    (fun vt ->
      delay_with_nic ~vt t ~data_source:from ~from ~target
        ~base:t.model.Model.twoside_base ~bytes:req_bytes;
      check_epoch t ~from ~target epoch;
      if from <> target then serve_mark vt ~target "RECV(RPC)";
      let result = handler () in
      delay_with_nic ~vt t ~data_source:target ~from ~target
        ~base:t.model.Model.twoside_base ~bytes:resp_bytes;
      result)

(* ------------------------------------------------------------------ *)
(* Bounded failure semantics: race an operation against a virtual-time
   timer, and retry with exponential backoff.  Without these, a dropped
   or blackholed message parks its caller forever.                     *)

type 'a raced = Settled of 'a | Crashed of exn | Expired

(* Run [f] in a helper process and suspend the caller until the first of
   {f completes, f raises, the timer fires} — later outcomes are
   discarded.  An abandoned [f] keeps running in virtual time (its heap
   side effects still land, like a request the server processed after
   the client gave up), or parks forever if its message was dropped. *)
let race_against_timer t ~timeout f =
  Engine.suspend (fun resume ->
      let settled = ref false in
      let settle outcome =
        if not !settled then begin
          settled := true;
          resume outcome
        end
      in
      ignore
        (Engine.spawn t.engine (fun () ->
             match f () with
             | v -> settle (Settled v)
             | exception e -> settle (Crashed e)));
      Engine.schedule_after t.engine timeout (fun () -> settle Expired))

let rpc_with_timeout ?parent ?epoch t ~from ~target ~req_bytes ~resp_bytes
    ~timeout handler =
  check_node t from "rpc_with_timeout";
  check_node t target "rpc_with_timeout";
  if timeout <= 0.0 then invalid_arg "Fabric.rpc_with_timeout: timeout <= 0";
  match
    race_against_timer t ~timeout (fun () ->
        rpc ?parent ?epoch t ~from ~target ~req_bytes ~resp_bytes handler)
  with
  | Settled v -> v
  | Crashed e -> raise e
  | Expired ->
      Metrics.incr t.counters.(from).c_timeouts;
      mark ?parent t "TIMEOUT" ~from ~target ~bytes:0;
      fr t ~from ~kind:Flight.k_fab_timeout ~a:target ~b:0 ~c:0;
      raise (Rpc_timeout { from; target; timeout })

(* Retry [op] on Node_down / Rpc_timeout / Stale_epoch with exponential
   backoff, giving up (re-raising the last error) when the attempt count
   or the simulated-time budget runs out.  [op] re-resolves its own
   target (and re-reads its membership view) each attempt, which is what
   lets a retry land on a freshly promoted backup or carry the epoch a
   handoff announcement just installed. *)
let retry_with_backoff ?parent t ~from ?(attempts = 8) ?(base_delay = 50e-6)
    ?(max_delay = 5e-3) ?(budget = Float.infinity) ?(jitter = 0.25) op =
  check_node t from "retry_with_backoff";
  if attempts < 1 then invalid_arg "Fabric.retry_with_backoff: attempts < 1";
  if jitter < 0.0 || jitter > 1.0 then
    invalid_arg "Fabric.retry_with_backoff: jitter outside [0, 1]";
  let deadline = Engine.now t.engine +. budget in
  let rec go n delay =
    match op () with
    | v -> v
    | exception ((Node_down _ | Rpc_timeout _ | Stale_epoch _) as e) ->
        if n + 1 >= attempts || Engine.now t.engine +. delay > deadline then
          raise e
        else begin
          Metrics.incr t.counters.(from).c_retries;
          mark ?parent t "RETRY" ~from ~target:from ~bytes:0;
          fr t ~from ~kind:Flight.k_fab_retry ~a:(n + 1) ~b:0 ~c:0;
          (* +-jitter seeded multiplicative noise decorrelates retry
             storms; the draw happens even at jitter = 0 so turning
             jitter off does not shift the RNG stream. *)
          let d =
            delay *. (1.0 -. jitter +. Drust_util.Rng.float t.rng (2.0 *. jitter))
          in
          Engine.delay t.engine d;
          go (n + 1) (Float.min max_delay (delay *. 2.0))
        end
  in
  go 0 base_delay

let send_async ?parent t ~from ~target ~bytes handler =
  check_node t from "send_async";
  check_node t target "send_async";
  Metrics.incr t.counters.(from).c_rpcs;
  note ~verb:"SEND(async)" t ~from ~target ~bytes;
  fr t ~from ~kind:Flight.k_fab_send ~a:target ~b:bytes ~c:(-1);
  if async_delivers t ~from ~target then begin
    let dt =
      latency t ~from ~target ~base:t.model.Model.twoside_base ~bytes
    in
    let handler =
      match t.spans with
      | Some sp when Span.is_enabled sp ->
          let fid = if from = target then 0 else Span.fresh_flow_id sp in
          let flow_out = if fid = 0 then [] else [ fid ] in
          Span.instant sp ~track:from ?parent ~flow_out ~category:"fabric"
            ~args:
              [ ("target", string_of_int target);
                ("bytes", string_of_int bytes) ]
            "SEND(async)";
          fun () ->
            Span.instant sp ~track:target
              ~flow_in:(if fid = 0 then [] else [ fid ])
              ~category:"fabric" "RECV(SEND)";
            handler ()
      | _ -> handler
    in
    deliver t ~from ~target dt (fun () ->
        Engine.start_process t.engine handler)
  end

let counters_of t node =
  check_node t node "counters_of";
  let c = t.counters.(node) in
  {
    reads = Metrics.value c.c_reads;
    writes = Metrics.value c.c_writes;
    atomics = Metrics.value c.c_atomics;
    rpcs = Metrics.value c.c_rpcs;
    bytes_out = Metrics.value c.c_bytes_out;
    remote_ops = Metrics.value c.c_remote_ops;
    timeouts = Metrics.value c.c_timeouts;
    retries = Metrics.value c.c_retries;
    drops = Metrics.value c.c_drops;
    stale_epochs = Metrics.value c.c_stale_epochs;
  }

let total_remote_ops t =
  Array.fold_left (fun acc c -> acc + Metrics.value c.c_remote_ops) 0 t.counters

let total_bytes t =
  Array.fold_left (fun acc c -> acc + Metrics.value c.c_bytes_out) 0 t.counters

let reset_counters t =
  Array.iter
    (fun c ->
      Metrics.reset_counter c.c_reads;
      Metrics.reset_counter c.c_writes;
      Metrics.reset_counter c.c_atomics;
      Metrics.reset_counter c.c_rpcs;
      Metrics.reset_counter c.c_bytes_out;
      Metrics.reset_counter c.c_remote_ops;
      Metrics.reset_counter c.c_timeouts;
      Metrics.reset_counter c.c_retries;
      Metrics.reset_counter c.c_drops;
      Metrics.reset_counter c.c_stale_epochs)
    t.counters
