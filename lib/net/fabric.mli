(** The simulated RDMA fabric.

    Exposes the verbs DRust's communication layer uses (§5 of the paper):
    one-sided READ/WRITE for the data plane, two-sided SEND/RECV-style RPC
    for the control plane, and remote atomics for shared state.  All verbs
    block the calling simulated process for the modelled latency; one-sided
    verbs never involve the target's CPU, whereas an {!rpc} executes its
    handler "at" the target (the handler may acquire target-side resources,
    which is how home-node bottlenecks emerge in the baselines).

    Per-node traffic counters live in a {!Drust_obs.Metrics} registry
    (names [fabric.*], labelled by source node) and feed the
    evaluation's coherence-cost breakdowns; when a {!Drust_obs.Span}
    tracer is attached and enabled, every verb also lands on the issuing
    node's timeline (category ["fabric"]). *)

type node_id = int

type t

exception Node_down of int
(** A synchronous verb was issued from, or targeted, a crashed node: the
    transport's retry period expired and the work request completed in
    error.  Carries the dead node's id. *)

exception Rpc_timeout of { from : node_id; target : node_id; timeout : float }
(** An operation wrapped in {!rpc_with_timeout} did not complete within
    its simulated-time budget. *)

exception
  Stale_epoch of { from : node_id; target : node_id; seen : int; current : int }
(** A verb carried a membership-view epoch ([seen]) older than the view
    current at serve time ([current]): the target refuses to act on
    routing state a committed handoff has invalidated.  Retryable —
    {!retry_with_backoff} treats it like {!Node_down}, and the caller's
    next attempt re-reads its (by then updated) view. *)

val create :
  ?metrics:Drust_obs.Metrics.t ->
  ?spans:Drust_obs.Span.t ->
  ?flight:Drust_obs.Flight.t ->
  engine:Drust_sim.Engine.t ->
  rng:Drust_util.Rng.t ->
  model:Model.t ->
  nodes:int ->
  unit ->
  t
(** [metrics] defaults to a fresh private registry; pass the cluster's
    registry so fabric counters land next to everyone else's.  [spans]
    defaults to none (no tracing).  [flight] is the cluster's always-on
    black box: every verb issue, timeout, retry, drop, and stale-epoch
    NAK is recorded into the issuing node's ring (docs/FORENSICS.md). *)

val engine : t -> Drust_sim.Engine.t

val metrics : t -> Drust_obs.Metrics.t
(** The registry the verb counters report into. *)

val set_spans : t -> Drust_obs.Span.t option -> unit
(** Attach a span tracer: every blocking verb records a complete span
    covering its latency (with [net.wire] / [net.queue] /
    [net.serialize] sub-spans for its propagation, NIC-wait, and
    serialization phases), and drops/timeouts/retries/async sends record
    instant events — on the issuing node's track, category ["fabric"].
    Cross-node verbs additionally mint a flow-edge id and emit a
    target-side SERVE/RECV instant consuming it, so exported traces draw
    message arrows between node timelines.  Free when unset or when the
    tracer is disabled. *)

val set_delivery_batching : t -> bool -> unit
(** Enable or disable async-delivery coalescing (default: enabled).
    When enabled, {!rdma_write_async} / {!send_async} deliveries on the
    same directed edge that land at the exact same instant — with no
    other event scheduled in between — share one event-queue entry and
    run back-to-back inside it.  The dispatch order is provably
    identical either way (the coalesced callbacks would have occupied
    adjacent sequence slots), so simulation results do not depend on
    this switch; it exists for A/B testing and diagnostics.  Coalesced
    callbacks still count as logical events in
    [Drust_sim.Engine.dispatched].  See docs/PERFORMANCE.md. *)

val set_flight : t -> Drust_obs.Flight.t option -> unit
(** Attach or detach the flight recorder after construction. *)

val set_observer :
  t -> (string -> from:int -> target:int -> bytes:int -> unit) option -> unit
(** Observational hook fired once per verb at issue time with the verb
    name (["READ"], ["WRITE"], ["ATOMIC"], ["RPC"], ...).  The DSan
    sanitizer uses it to keep a recent-traffic ring for violation
    provenance.  The observer must never touch the engine or any RNG. *)

val set_fault_plan : t -> Drust_sim.Fault.t -> unit
(** Install a fault plan: from now on every verb consults it.  Verbs
    from or to a crashed node raise {!Node_down}; messages crossing an
    active partition, or lost to a lossy link, {e never complete} (the
    calling process parks forever — bound such calls with
    {!rpc_with_timeout}).  Fire-and-forget verbs never raise; their
    messages are silently dropped.  Without a plan (the default) every
    check is a no-op and event/RNG sequences are unchanged. *)

val fault_plan : t -> Drust_sim.Fault.t option

val set_epoch_source : t -> (unit -> int) option -> unit
(** Install the membership layer's current-epoch reader.  From then on,
    any verb passed an [?epoch] is validated against it at serve time
    (after the request leg's latency): a carried epoch older than the
    current one raises {!Stale_epoch} and counts against the issuer's
    [fabric.stale_epochs].  Without a source (the default), or on verbs
    that carry no epoch, validation is skipped.  The reader must be pure
    observation — no engine or RNG access. *)

val node_count : t -> int
val model : t -> Model.t

(** {1 Verbs — call only from inside a simulated process} *)

val rdma_read :
  ?parent:Drust_obs.Span.span ->
  ?epoch:int ->
  t -> from:node_id -> target:node_id -> bytes:int -> unit
(** One-sided READ: blocks the caller for the verb latency; the target CPU
    is not involved.  [parent] (here and on every verb below) links the
    verb's span under an enclosing operation span when tracing is
    enabled; it has no effect otherwise.  [epoch] (here and on
    {!rdma_write} / {!rpc} / {!rpc_with_timeout}) stamps the verb with
    the issuer's membership-view epoch for serve-time validation — see
    {!set_epoch_source}. *)

val rdma_write :
  ?parent:Drust_obs.Span.span ->
  ?epoch:int ->
  t -> from:node_id -> target:node_id -> bytes:int -> unit
(** One-sided WRITE, same cost model as {!rdma_read}. *)

val rdma_write_async :
  ?parent:Drust_obs.Span.span ->
  t -> from:node_id -> target:node_id -> bytes:int
  -> (unit -> unit) -> unit
(** Posts a WRITE and returns immediately; the completion callback runs
    when the payload lands at the target.  Used for asynchronous
    deallocation requests and replication write-backs. *)

val rdma_atomic :
  ?parent:Drust_obs.Span.span ->
  t -> from:node_id -> target:node_id -> (unit -> 'a) -> 'a
(** Remote atomic (FAA / CAS): blocks the caller for the atomic verb
    latency and then runs [f] — the NIC-serialized atomic update — at the
    target.  [f] must be instantaneous (no blocking primitives). *)

val rpc :
  ?parent:Drust_obs.Span.span ->
  ?epoch:int ->
  t ->
  from:node_id ->
  target:node_id ->
  req_bytes:int ->
  resp_bytes:int ->
  (unit -> 'a) ->
  'a
(** Two-sided round trip: the request travels to [target], the handler
    runs there (it may block on target-side resources), and the response
    travels back.  Returns the handler's result to the caller. *)

val send_async :
  ?parent:Drust_obs.Span.span ->
  t -> from:node_id -> target:node_id -> bytes:int -> (unit -> unit) -> unit
(** One-way two-sided message; the handler runs at the target when the
    message arrives.  The caller is not blocked. *)

(** {1 Bounded failure semantics} *)

val rpc_with_timeout :
  ?parent:Drust_obs.Span.span ->
  ?epoch:int ->
  t ->
  from:node_id ->
  target:node_id ->
  req_bytes:int ->
  resp_bytes:int ->
  timeout:float ->
  (unit -> 'a) ->
  'a
(** Like {!rpc}, but raises {!Rpc_timeout} (and counts a timeout against
    [from]) if the round trip has not completed after [timeout] simulated
    seconds — e.g. because the request was dropped or the target is
    partitioned away.  An abandoned request keeps travelling: the handler
    may still execute at the target even though the caller gave up. *)

val retry_with_backoff :
  ?parent:Drust_obs.Span.span ->
  t ->
  from:node_id ->
  ?attempts:int ->
  ?base_delay:float ->
  ?max_delay:float ->
  ?budget:float ->
  ?jitter:float ->
  (unit -> 'a) ->
  'a
(** [retry_with_backoff t ~from op] runs [op], retrying on {!Node_down},
    {!Rpc_timeout} and {!Stale_epoch} with exponential backoff (starting
    at [base_delay] = 50 µs, doubling up to [max_delay] = 5 ms) until it
    succeeds, [attempts] (default 8) run out, or the next backoff would
    exceed the simulated-time [budget] — then re-raises the last error.
    Each backoff is multiplied by seeded noise in
    [1 ± jitter] (default 0.25, clamped to [0, 1]) drawn from the
    cluster's RNG, so retries from different nodes desynchronize after a
    partition heals instead of stampeding in lockstep.  [op] should
    re-resolve its target (and re-read its membership view) each attempt
    so a retry can land on a freshly promoted backup or carry a freshly
    announced epoch. *)

(** {1 Traffic statistics}

    Counters are held in the metrics registry under [fabric.*] names
    with a [node] label; the record below is a convenience snapshot. *)

type counters = {
  reads : int;
  writes : int;
  atomics : int;
  rpcs : int;
  bytes_out : int;
  remote_ops : int;  (** verbs whose target differs from source *)
  timeouts : int;  (** wrapped ops that expired their budget *)
  retries : int;  (** backoff re-attempts issued from this node *)
  drops : int;  (** messages lost to partitions or lossy links *)
  stale_epochs : int;  (** verbs rejected for carrying an old view epoch *)
}

val counters_of : t -> node_id -> counters
(** Snapshot of one node's counters (indexed by the {e source} node). *)

val total_remote_ops : t -> int
val total_bytes : t -> int
val reset_counters : t -> unit
