module Ctx = Drust_machine.Ctx
module Cluster = Drust_machine.Cluster
module Fabric = Drust_net.Fabric
module Gaddr = Drust_memory.Gaddr
module Cache = Drust_memory.Cache

(* Shared control block: one per allocation, shared by all handles. *)
type control = {
  g : Gaddr.t;
  size : int;
  mutable count : int;
  mutable freed : bool;
}

type t = { control : control; mutable live : bool }

(* Refcount events for the DSan shadow-state checker (lib/check), shared
   with [Drc].  Each event carries the post-transition count as the
   implementation sees it, so a shadow counter can be cross-checked
   against it.  Listeners are keyed per cluster and must never touch the
   engine or any RNG. *)
type rc_event =
  | Rc_created of { g : Gaddr.t; size : int; count : int }
  | Rc_retained of { g : Gaddr.t; count : int }
  | Rc_released of { g : Gaddr.t; count : int }
  | Rc_freed of { g : Gaddr.t }

let listener_key : (Ctx.t -> rc_event -> unit) option ref Drust_machine.Env.key
    =
  Drust_machine.Env.key ~name:"runtime.darc_listener"

let listener_cell cluster =
  Drust_machine.Env.get (Cluster.env cluster) listener_key ~init:(fun () ->
      ref None)

let set_listener cluster f = listener_cell cluster := f

let[@inline] with_listener ctx k =
  match !(listener_cell (Ctx.cluster ctx)) with None -> () | Some f -> k f

let create ctx ~size v =
  Ctx.charge_cycles ctx 150.0;
  let g = Cluster.heap_alloc (Ctx.cluster ctx) ~node:ctx.Ctx.node ~size v in
  with_listener ctx (fun f -> f ctx (Rc_created { g; size; count = 1 }));
  { control = { g; size; count = 1; freed = false }; live = true }

let home t = Gaddr.node_of t.control.g

let check_live t op =
  if not t.live || t.control.freed then
    invalid_arg (Printf.sprintf "Darc.%s: handle dropped" op)

let at_home ctx t op =
  let target = Cluster.serving_node (Ctx.cluster ctx) (home t) in
  if target = ctx.Ctx.node then begin
    Ctx.charge_cycles ctx 25.0;
    op ()
  end
  else begin
    Ctx.flush ctx;
    Fabric.rdma_atomic (Ctx.fabric ctx) ~from:ctx.Ctx.node ~target op
  end

let clone ctx t =
  check_live t "clone";
  let count =
    at_home ctx t (fun () ->
        t.control.count <- t.control.count + 1;
        t.control.count)
  in
  with_listener ctx (fun f -> f ctx (Rc_retained { g = t.control.g; count }));
  { control = t.control; live = true }

let strong_count ctx t =
  check_live t "strong_count";
  at_home ctx t (fun () -> t.control.count)

let get ctx t =
  check_live t "get";
  let cluster = Ctx.cluster ctx in
  let target = Cluster.serving_node cluster (home t) in
  if target = ctx.Ctx.node then begin
    Ctx.charge_cycles ctx 370.0;
    (Cluster.heap_read cluster t.control.g).Drust_memory.Partition.value
  end
  else begin
    let cache = (Ctx.current_node ctx).Cluster.cache in
    Ctx.charge_cycles ctx 150.0;
    match Cache.lookup cache t.control.g with
    | Some copy -> copy.Cache.value
    | None ->
        Ctx.note_remote_access ctx ~target;
        Ctx.flush ctx;
        Fabric.rdma_read (Ctx.fabric ctx) ~from:ctx.Ctx.node ~target
          ~bytes:t.control.size;
        let v =
          (Cluster.heap_read cluster t.control.g).Drust_memory.Partition.value
        in
        let copy = Cache.insert cache t.control.g ~size:t.control.size v in
        (* Arc payloads are immutable: leave the copy unpinned so the
           runtime may evict it lazily under pressure. *)
        Cache.release cache copy;
        v
  end

let drop ctx t =
  check_live t "drop";
  t.live <- false;
  let count = at_home ctx t (fun () ->
      t.control.count <- t.control.count - 1;
      t.control.count)
  in
  with_listener ctx (fun f -> f ctx (Rc_released { g = t.control.g; count }));
  if count = 0 then begin
    t.control.freed <- true;
    let cluster = Ctx.cluster ctx in
    Array.iter
      (fun n -> Cache.invalidate_physical n.Cluster.cache t.control.g)
      (Cluster.nodes cluster);
    Cluster.heap_free cluster t.control.g;
    with_listener ctx (fun f -> f ctx (Rc_freed { g = t.control.g }))
  end
