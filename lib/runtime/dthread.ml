module Engine = Drust_sim.Engine
module Resource = Drust_sim.Resource
module Cluster = Drust_machine.Cluster
module Ctx = Drust_machine.Ctx
module Fabric = Drust_net.Fabric
module Protocol = Drust_core.Protocol
module Gaddr = Drust_memory.Gaddr

type handle = {
  record : Registry.record;
  proc : Engine.process_handle;
}

(* 768 KiB padded stack: at 5 GB/s line rate this plus the control round
   trips and NIC queuing lands a migration near the ~218 us the paper
   measures (S7.3). *)
let stack_bytes = 768 * 1024

(* Per-cluster migration latency samples for the drill-down experiment. *)
let migration_stats_key : Drust_util.Stats.t Drust_machine.Env.key =
  Drust_machine.Env.key ~name:"runtime.migration_stats"

let migration_latency_stats cluster =
  Drust_machine.Env.get (Cluster.env cluster) migration_stats_key
    ~init:Drust_util.Stats.create

let migrate_now ctx ~target =
  let cluster = Ctx.cluster ctx in
  let fabric = Ctx.fabric ctx in
  let start = Engine.now (Ctx.engine ctx) in
  Ctx.flush ctx;
  (* Coordinate with the global controller (thread-location table). *)
  Fabric.rpc fabric ~from:ctx.Ctx.node ~target:0 ~req_bytes:64 ~resp_bytes:16
    (fun () -> ());
  (* Ship function pointer, saved registers and the padded stack.  The
     stack keeps its address on the target thanks to the aligned layout
     (Fig. 3), so no pointer fixup is needed. *)
  Fabric.rdma_write fabric ~from:ctx.Ctx.node ~target ~bytes:stack_bytes;
  (* Tell the target scheduler to resume the closure. *)
  Fabric.rpc fabric ~from:ctx.Ctx.node ~target ~req_bytes:64 ~resp_bytes:8
    (fun () -> ());
  ctx.Ctx.node <- target;
  let latency = Engine.now (Ctx.engine ctx) -. start in
  Drust_util.Stats.add (migration_latency_stats cluster) latency;
  latency

(* Installed on every runtime thread: executes pending migration orders at
   compute-flush boundaries (cooperative, non-preemptive). *)
let make_safe_point record ctx =
  match record.Registry.migrate_to with
  | Some target when target <> ctx.Ctx.node ->
      record.Registry.migrate_to <- None;
      record.Registry.migrations <- record.Registry.migrations + 1;
      ignore (migrate_now ctx ~target)
  | Some _ -> record.Registry.migrate_to <- None
  | None -> ()

let least_loaded_node cluster =
  let best = ref 0 and best_load = ref max_int in
  Array.iter
    (fun n ->
      if n.Cluster.alive then begin
        let load = Registry.thread_count_on cluster ~node:n.Cluster.id in
        if load < !best_load then begin
          best := n.Cluster.id;
          best_load := load
        end
      end)
    (Cluster.nodes cluster);
  !best

let spawn_on ctx ~node body =
  let cluster = Ctx.cluster ctx in
  if node < 0 || node >= Cluster.node_count cluster then
    invalid_arg "Dthread.spawn_on: node out of range";
  (* Cross-server thread creation ships the closure (captured pointers
     only — shallow copy, §4.1) in a control message. *)
  if node <> ctx.Ctx.node then begin
    Ctx.flush ctx;
    Fabric.rpc (Ctx.fabric ctx) ~from:ctx.Ctx.node ~target:node ~req_bytes:256
      ~resp_bytes:16 (fun () -> ())
  end
  else Ctx.charge_cycles ctx 800.0;
  let child = Ctx.make cluster ~node in
  let record = Registry.register child in
  child.Ctx.safe_point_hook <- Some (make_safe_point record);
  let proc =
    Engine.spawn (Ctx.engine ctx) (fun () ->
        match body child with
        | () ->
            Ctx.flush child;
            Registry.unregister record
        | exception e ->
            Registry.unregister record;
            raise e)
  in
  { record; proc }

let spawn ctx body =
  let cluster = Ctx.cluster ctx in
  let here = Cluster.node cluster ctx.Ctx.node in
  let cores = here.Cluster.cores in
  let node =
    if
      here.Cluster.alive
      && Resource.in_use cores + Registry.thread_count_on cluster ~node:ctx.Ctx.node
         < Resource.capacity cores
    then ctx.Ctx.node
    else least_loaded_node cluster
  in
  spawn_on ctx ~node body

let spawn_to ctx owner body =
  let cluster = Ctx.cluster ctx in
  let node =
    Cluster.serving_node cluster (Gaddr.node_of (Protocol.gaddr owner))
  in
  spawn_on ctx ~node body

(* Cooperative yield (the paper's [await], S4.2.1): give other ready
   threads the core and take a migration safe point. *)
let await ctx =
  Ctx.flush ctx;
  Engine.yield (Ctx.engine ctx);
  Ctx.safe_point ctx

let join ctx h = Engine.join (Ctx.engine ctx) h.proc
let join_all ctx hs = List.iter (join ctx) hs

type scope = { owner : Ctx.t; mutable spawned : handle list }

let spawn_in scope ?node body =
  let h =
    match node with
    | Some node -> spawn_on scope.owner ~node body
    | None -> spawn scope.owner body
  in
  scope.spawned <- h :: scope.spawned;
  h

let scope ctx f =
  let s = { owner = ctx; spawned = [] } in
  let drain () = join_all ctx (List.rev s.spawned) in
  match f s with
  | () -> drain ()
  | exception e ->
      (* Scoped threads must still be joined before the scope unwinds —
         their borrows reference the enclosing frame. *)
      (try drain () with _ -> ());
      raise e

let node_of h = h.record.Registry.ctx.Ctx.node
let migrations_of h = h.record.Registry.migrations
