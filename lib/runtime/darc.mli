(** Distributed atomically-reference-counted sharing (the paper's adapted
    [std::sync::Arc], §4.1.2).

    The payload is immutable and lives at a fixed global address; clones
    only bump a reference count at the home server (a one-sided atomic).
    Reads are handled like immutable borrows: copied on demand into the
    reading node's cache and evicted lazily. *)

module Ctx = Drust_machine.Ctx

type t

val create : Ctx.t -> size:int -> Drust_util.Univ.t -> t
val clone : Ctx.t -> t -> t
(** New handle; increments the shared strong count. *)

val get : Ctx.t -> t -> Drust_util.Univ.t
(** Read the payload — local, cached, or fetched. *)

val strong_count : Ctx.t -> t -> int

val drop : Ctx.t -> t -> unit
(** Decrements the count; the last drop frees the payload and invalidates
    cached copies cluster-wide.  Raises [Invalid_argument] on reuse. *)

val home : t -> int

(** {1 Shadow-state events (the DSan sanitizer, lib/check)}

    One event per refcount transition, carrying the post-transition count
    as the implementation computed it, so a shadow counter can be
    cross-checked against it.  [Drc] reuses this vocabulary.  A listener
    must never touch the engine or any RNG. *)

type rc_event =
  | Rc_created of { g : Drust_memory.Gaddr.t; size : int; count : int }
  | Rc_retained of { g : Drust_memory.Gaddr.t; count : int }
  | Rc_released of { g : Drust_memory.Gaddr.t; count : int }
  | Rc_freed of { g : Drust_memory.Gaddr.t }

val set_listener :
  Drust_machine.Cluster.t -> (Ctx.t -> rc_event -> unit) option -> unit
