module Ctx = Drust_machine.Ctx
module Cluster = Drust_machine.Cluster
module Gaddr = Drust_memory.Gaddr

type control = {
  g : Gaddr.t;
  size : int;
  owner_thread : int;
  mutable count : int;
  mutable freed : bool;
}

type t = { control : control; mutable live : bool }

exception Cross_thread of { created_by : int; used_by : int }

let check_thread ctx c =
  if ctx.Ctx.thread_id <> c.owner_thread then
    raise
      (Cross_thread { created_by = c.owner_thread; used_by = ctx.Ctx.thread_id })

let check_live t op =
  if not t.live || t.control.freed then
    invalid_arg (Printf.sprintf "Drc.%s: handle dropped" op)

(* Same shadow-state event vocabulary as [Darc]; the DSan checker
   installs one handler for both. *)
let listener_key :
    (Ctx.t -> Darc.rc_event -> unit) option ref Drust_machine.Env.key =
  Drust_machine.Env.key ~name:"runtime.drc_listener"

let listener_cell cluster =
  Drust_machine.Env.get (Cluster.env cluster) listener_key ~init:(fun () ->
      ref None)

let set_listener cluster f = listener_cell cluster := f

let[@inline] with_listener ctx k =
  match !(listener_cell (Ctx.cluster ctx)) with None -> () | Some f -> k f

let create ctx ~size v =
  Ctx.charge_cycles ctx 60.0;
  let g = Cluster.heap_alloc (Ctx.cluster ctx) ~node:ctx.Ctx.node ~size v in
  with_listener ctx (fun f -> f ctx (Darc.Rc_created { g; size; count = 1 }));
  {
    control =
      { g; size; owner_thread = ctx.Ctx.thread_id; count = 1; freed = false };
    live = true;
  }

let clone ctx t =
  check_live t "clone";
  check_thread ctx t.control;
  (* Plain (non-atomic) increment: single-thread by construction. *)
  Ctx.charge_cycles ctx 6.0;
  t.control.count <- t.control.count + 1;
  with_listener ctx (fun f ->
      f ctx (Darc.Rc_retained { g = t.control.g; count = t.control.count }));
  { control = t.control; live = true }

let get ctx t =
  check_live t "get";
  check_thread ctx t.control;
  Ctx.charge_cycles ctx 364.0;
  (Cluster.heap_read (Ctx.cluster ctx) t.control.g).Drust_memory.Partition.value

let strong_count t = t.control.count

let drop ctx t =
  check_live t "drop";
  check_thread ctx t.control;
  t.live <- false;
  t.control.count <- t.control.count - 1;
  Ctx.charge_cycles ctx 8.0;
  with_listener ctx (fun f ->
      f ctx (Darc.Rc_released { g = t.control.g; count = t.control.count }));
  if t.control.count = 0 then begin
    t.control.freed <- true;
    Cluster.heap_free (Ctx.cluster ctx) t.control.g;
    with_listener ctx (fun f -> f ctx (Darc.Rc_freed { g = t.control.g }))
  end
