(** Fault tolerance by heap replication (§4.2.3).

    Each heap partition gets a backup copy at the same virtual addresses
    on the next server in the ring.  Threads are not replicated.  A thread
    batches its modifications and writes them back to the backup when the
    object's ownership is transferred to another server — the moment the
    object becomes visible to other threads — rather than after every
    mutable borrow.  When a primary fails, the controller promotes its
    backup to primary.

    The manager hooks the protocol's commit/transfer notifications, so
    applications need no code changes. *)

module Ctx = Drust_machine.Ctx

type t

val enable : ?replicas:int -> Drust_machine.Cluster.t -> t
(** Snapshot every partition into [replicas] backup copies (default 1,
    hosted on the next servers in the ring) and start intercepting
    writes.  With [replicas = k] the heap survives any [k] failures whose
    replica hosts remain alive.  Call before the workload mutates the
    heap. *)

val disable : t -> unit
(** Unhook from the protocol (end of experiment). *)

val backup_node : t -> int -> int
(** [backup_node t i] is the server holding node [i]'s first replica
    ([(i+1) mod n]); replica [r] lives on [(i+1+r) mod n]. *)

val pending_writes : t -> int
(** Objects modified since their last write-back (across all threads). *)

val sync_now : Ctx.t -> t -> unit
(** Flush every batched modification to the backups (asynchronous
    one-sided WRITEs), e.g. at a checkpoint. *)

val writebacks_performed : t -> int

val fail_and_promote : Ctx.t -> t -> node:int -> unit
(** Kill a primary: mark the node failed and promote its backup so the
    dead range is served by the backup server.  Objects modified but not
    yet written back are lost, exactly as in the paper's design (their
    ownership had not yet escaped the failed server).  Every surviving
    node's cache is purged of copies from the promoted ranges: those
    copies may hold exactly the lost writes under still-current colored
    addresses, and must not keep serving them.  A range whose replica
    hosts are {e all} dead is not promoted; it is recorded in
    {!unrecoverable_ranges} and its reads keep failing with
    [Fabric.Node_down] — cascading failures degrade to an explicit
    report, never an exception from inside promotion. *)

val unrecoverable_ranges : t -> int list
(** Home ranges lost to cascading failures (server and every replica
    host dead), ascending.  Empty while the cluster is recoverable. *)

val reseed_chain : Ctx.t -> t -> home:int -> int list
(** Rebuild [home]'s replica chain from the store currently serving the
    range (after a planned handoff installed a new server): every alive
    replica host receives a fresh snapshot via a bulk asynchronous
    WRITE.  Returns the alive hosts now holding a current copy, in ring
    order; dead hosts — and a ring slot landing on the server itself,
    where a backup would survive exactly the failures the primary
    survives — are skipped and never promoted. *)

(** {1 Shadow-state events (the DSan sanitizer, lib/check)}

    [Promoted] fires once per re-served range, after the serving map is
    swapped and surviving caches purged; [Node_failed] fires once per
    failure before any promotion.  A listener must never touch the
    engine or any RNG. *)

type event =
  | Node_failed of { node : int }
  | Promoted of { home : int; by : int; replica : int }

val set_listener :
  Drust_machine.Cluster.t -> (Ctx.t -> event -> unit) option -> unit
