(* Elastic membership: an epoch-stamped view of which nodes are active
   and a two-phase handoff protocol for moving a home range between live
   servers (ROADMAP item 1 — the paper's deployment is a fixed ring
   whose only membership change is crash-then-promotion, §4.2.3).

   The view is a state per node (Active / Standby / Failed) plus a
   monotonically increasing epoch, owned by the controller's coordinator
   process.  Every committed handoff and every failover bumps the epoch
   and asynchronously announces the new value to all alive nodes; until
   an announcement lands, a node's clients keep stamping verbs with the
   old epoch and the fabric rejects them ([Fabric.Stale_epoch]), which
   [Fabric.retry_with_backoff] turns into a re-read of the view and a
   reissue — stale routing state degrades to a retry, never a silent
   wrong-node serve.

   A handoff is two-phase:

     prepare  record the in-flight transfer, emit [Handoff_prepared];
     drain    flush pending replication write-backs ([sync_now]) so the
              backups are current before the range moves;
     copy     charge the bulk transfer wire time as chunked one-sided
              WRITEs from the old server to the new one — each chunk is
              a fault-injection point, so a crash mid-handoff surfaces
              as [Node_down] here;
     commit   atomically (no yield points): snapshot the served store,
              swap the serving map ([Cluster.promote]), purge every
              alive cache of the moved range, bump the epoch, emit
              [Handoff_committed], announce;
     reseed   rebuild the range's replica chain from the new server
              ([Replication.reseed_chain]), emit [Chain_reseeded].

   A crash during drain/copy aborts the handoff ([Handoff_aborted]): the
   serving map is untouched, so the heartbeat detector's ordinary
   promotion path recovers the range — exactly the fallback DSan's
   handoff-atomicity invariant expects.  The snapshot is taken inside
   the commit (not at prepare), so writes that land while the bulk copy
   is in flight are part of the moved image: a committed-and-acked write
   cannot be lost to a planned handoff. *)

module Ctx = Drust_machine.Ctx
module Cluster = Drust_machine.Cluster
module Engine = Drust_sim.Engine
module Fabric = Drust_net.Fabric
module Partition = Drust_memory.Partition
module Cache = Drust_memory.Cache
module Metrics = Drust_obs.Metrics
module Span = Drust_obs.Span
module Flight = Drust_obs.Flight

type node_state = Active | Standby | Failed

type handoff = {
  ho_home : int;
  ho_from : int;
  ho_to : int;
  ho_started : float;
}

type event =
  | View_change of { epoch : int; reason : string }
  | Handoff_prepared of { home : int; from_node : int; to_node : int }
  | Handoff_committed of {
      home : int;
      from_node : int;
      to_node : int;
      epoch : int;
    }
  | Handoff_aborted of {
      home : int;
      from_node : int;
      to_node : int;
      reason : string;
    }
  | Chain_reseeded of { home : int; server : int; hosts : int list }

type handoff_error = [ `Refused of string | `Aborted of string ]

type t = {
  cluster : Cluster.t;
  replication : Replication.t;
  states : node_state array;
  mutable epoch : int;
  (* known.(i): the view epoch node [i] has been told about; clients on
     [i] stamp their verbs with it. *)
  known : int array;
  mutable in_flight : handoff option;
  c_joins : Metrics.counter;
  c_leaves : Metrics.counter;
  c_commits : Metrics.counter;
  c_aborts : Metrics.counter;
  c_view_changes : Metrics.counter;
}

(* Listeners are keyed per cluster (same pattern as Replication's): the
   DSan sanitizer mirrors these events into its shadow view.  A listener
   must never touch the engine or any RNG. *)
let listener_key : (Ctx.t -> event -> unit) option ref Drust_machine.Env.key =
  Drust_machine.Env.key ~name:"runtime.membership_listener"

let listener_cell cluster =
  Drust_machine.Env.get (Cluster.env cluster) listener_key ~init:(fun () ->
      ref None)

let set_listener cluster f = listener_cell cluster := f

let[@inline] with_listener ctx cluster k =
  match !(listener_cell cluster) with None -> () | Some f -> k (f ctx)

(* Membership transitions land in the flight recorder too, on the acting
   node's ring — array stores only, recorded next to the listener emit. *)
let[@inline] fr ctx t ~kind ~a ~b ~c ~d =
  Flight.record
    (Cluster.flight t.cluster)
    ~node:ctx.Ctx.node
    ~time:(Engine.now (Cluster.engine t.cluster))
    ~kind ~a ~b ~c ~d

let mark t name ~node =
  let sp = Cluster.spans t.cluster in
  if Span.is_enabled sp then
    Span.instant sp ~track:0 ~category:"membership"
      ~args:[ ("node", string_of_int node) ]
      name

let create ?active cluster ~replication =
  let n = Cluster.node_count cluster in
  let active = match active with Some a -> a | None -> n in
  if active < 1 || active > n then
    invalid_arg "Membership.create: need 1 <= active <= nodes";
  let m = Cluster.metrics cluster in
  let c name = Metrics.counter m ~unit_:"ops" name in
  let t =
    {
      cluster;
      replication;
      states = Array.init n (fun i -> if i < active then Active else Standby);
      epoch = 0;
      known = Array.make n 0;
      in_flight = None;
      c_joins = c "membership.joins";
      c_leaves = c "membership.leaves";
      c_commits = c "membership.handoff_commits";
      c_aborts = c "membership.handoff_aborts";
      c_view_changes = c "membership.view_changes";
    }
  in
  (* From now on, verbs stamped with an [?epoch] are validated against
     the live view at serve time. *)
  Fabric.set_epoch_source (Cluster.fabric cluster) (Some (fun () -> t.epoch));
  t

let detach t = Fabric.set_epoch_source (Cluster.fabric t.cluster) None

let epoch t = t.epoch

let known_epoch t ~node =
  if node < 0 || node >= Array.length t.known then
    invalid_arg "Membership.known_epoch: node out of range";
  t.known.(node)

let state t ~node =
  if node < 0 || node >= Array.length t.states then
    invalid_arg "Membership.state: node out of range";
  t.states.(node)

let is_active t ~node = state t ~node = Active

let active_nodes t =
  let out = ref [] in
  for i = Array.length t.states - 1 downto 0 do
    if t.states.(i) = Active then out := i :: !out
  done;
  !out

let in_flight_handoff t =
  match t.in_flight with
  | None -> None
  | Some h -> Some (h.ho_home, h.ho_from, h.ho_to)

(* Asynchronously push the current epoch to every alive node.  Delivery
   latency is the window in which that node's clients still carry the
   old epoch and eat Stale_epoch retries. *)
let announce ctx t =
  let e = t.epoch in
  let me = ctx.Ctx.node in
  if e > t.known.(me) then t.known.(me) <- e;
  let fabric = Cluster.fabric t.cluster in
  List.iter
    (fun id ->
      if id <> me then
        Fabric.send_async fabric ~from:me ~target:id ~bytes:48 (fun () ->
            if e > t.known.(id) then t.known.(id) <- e))
    (Cluster.alive_nodes t.cluster)

let bump_view ctx t reason =
  t.epoch <- t.epoch + 1;
  Metrics.incr t.c_view_changes;
  fr ctx t ~kind:Flight.k_view_change ~a:t.epoch ~b:0 ~c:0 ~d:0;
  with_listener ctx t.cluster (fun emit ->
      emit (View_change { epoch = t.epoch; reason }));
  announce ctx t

(* The controller's failure verdict, called before promotion: the view
   loses the node and every survivor learns the new epoch, so in-flight
   verbs routed under the old view are NAKed rather than answered by
   whoever picks up the dead ranges. *)
let node_failed ctx t ~node =
  if node >= 0 && node < Array.length t.states && t.states.(node) <> Failed
  then begin
    t.states.(node) <- Failed;
    mark t "MEMBER_FAILED" ~node;
    bump_view ctx t (Printf.sprintf "failover: node %d" node)
  end

let alive t id = (Cluster.node t.cluster id).Cluster.alive

let homes_served_by t id =
  let out = ref [] in
  for home = Cluster.node_count t.cluster - 1 downto 0 do
    if Cluster.serving_node t.cluster home = id then out := home :: !out
  done;
  !out

let range_bytes t home = Partition.used_bytes (Cluster.serving_store t.cluster home)

(* Bytes served is the load signal (ties broken toward the lower id so
   selection is deterministic). *)
let load t id =
  List.fold_left (fun acc h -> acc + range_bytes t h) 0 (homes_served_by t id)

let most_loaded_active t ~except =
  let best = ref (-1) and best_load = ref (-1) in
  Array.iteri
    (fun id st ->
      if st = Active && id <> except && alive t id then begin
        let l = load t id in
        if l > !best_load then begin
          best := id;
          best_load := l
        end
      end)
    t.states;
  if !best < 0 then None else Some !best

let least_loaded_active t ~except =
  let best = ref (-1) and best_load = ref max_int in
  Array.iteri
    (fun id st ->
      if st = Active && id <> except && alive t id then begin
        let l = load t id in
        if l < !best_load then begin
          best := id;
          best_load := l
        end
      end)
    t.states;
  if !best < 0 then None else Some !best

(* Copy chunk size: each chunk is a separate synchronous WRITE, so a
   crash injected mid-handoff interrupts the copy at the next chunk. *)
let copy_chunk = 64 * 1024

let handoff ctx t ~home ~to_node =
  let n = Cluster.node_count t.cluster in
  if home < 0 || home >= n then
    invalid_arg "Membership.handoff: home out of range";
  if to_node < 0 || to_node >= n then
    invalid_arg "Membership.handoff: target out of range";
  let from_node = Cluster.serving_node t.cluster home in
  if t.in_flight <> None then Error (`Refused "another handoff is in flight")
  else if from_node = to_node then
    Error (`Refused "target already serves the range")
  else if not (alive t from_node) then Error (`Refused "server is dead")
  else if not (alive t to_node) then Error (`Refused "target is dead")
  else begin
    let now = Engine.now (Cluster.engine t.cluster) in
    t.in_flight <- Some { ho_home = home; ho_from = from_node; ho_to = to_node; ho_started = now };
    mark t "HANDOFF_PREPARE" ~node:home;
    fr ctx t ~kind:Flight.k_handoff_prepare ~a:home ~b:from_node ~c:to_node
      ~d:0;
    with_listener ctx t.cluster (fun emit ->
        emit (Handoff_prepared { home; from_node; to_node }));
    let fabric = Cluster.fabric t.cluster in
    match
      (* Drain: backups must be current before the range moves, so an
         abort leaves nothing newer than the replicas. *)
      Replication.sync_now ctx t.replication;
      (* Charge the bulk copy's wire time, chunked.  The store snapshot
         happens at commit (below), after time has passed: writes landing
         during the copy are included in the moved image. *)
      let total = max 64 (range_bytes t home) in
      let remaining = ref total in
      while !remaining > 0 do
        let b = min copy_chunk !remaining in
        Fabric.rdma_write fabric ~from:from_node ~target:to_node ~bytes:b;
        remaining := !remaining - b
      done
    with
    | exception ((Fabric.Node_down _ | Fabric.Rpc_timeout _) as e) ->
        (* Clean abort: the serving map never changed, so the ordinary
           failover path (detector -> fail_and_promote) recovers the
           range if its server is the casualty. *)
        t.in_flight <- None;
        Metrics.incr t.c_aborts;
        mark t "HANDOFF_ABORT" ~node:home;
        fr ctx t ~kind:Flight.k_handoff_abort ~a:home ~b:from_node ~c:to_node
          ~d:0;
        let reason = Printexc.to_string e in
        with_listener ctx t.cluster (fun emit ->
            emit (Handoff_aborted { home; from_node; to_node; reason }));
        Error (`Aborted reason)
    | () ->
        (* Commit: everything from here to the committed event runs
           without a yield point, so no verb can observe a half-moved
           range (the atomicity DSan checks). *)
        let capacity =
          (Cluster.params t.cluster).Drust_machine.Params.mem_per_node
        in
        let fresh = Partition.create ~node:home ~capacity_bytes:capacity in
        Partition.iter (Cluster.serving_store t.cluster home) (fun g e ->
            Partition.put fresh g ~size:e.Partition.size e.Partition.value);
        Cluster.promote t.cluster ~home ~by:to_node ~store:fresh;
        (* Same purge as failover promotion: cached copies of the moved
           range must not outlive the transfer (the new server's copy is
           the authority now). *)
        Array.iter
          (fun nd ->
            if nd.Cluster.alive then
              ignore (Cache.invalidate_home nd.Cluster.cache ~home))
          (Cluster.nodes t.cluster);
        t.epoch <- t.epoch + 1;
        t.in_flight <- None;
        Metrics.incr t.c_commits;
        Metrics.incr t.c_view_changes;
        mark t "HANDOFF_COMMIT" ~node:home;
        fr ctx t ~kind:Flight.k_handoff_commit ~a:home ~b:from_node ~c:to_node
          ~d:t.epoch;
        with_listener ctx t.cluster (fun emit ->
            emit
              (Handoff_committed { home; from_node; to_node; epoch = t.epoch }));
        announce ctx t;
        let hosts = Replication.reseed_chain ctx t.replication ~home in
        fr ctx t ~kind:Flight.k_chain_reseed ~a:home ~b:to_node
          ~c:(List.length hosts) ~d:0;
        with_listener ctx t.cluster (fun emit ->
            emit (Chain_reseeded { home; server = to_node; hosts }));
        Ok ()
  end

let join ctx t ~node =
  if node < 0 || node >= Array.length t.states then
    invalid_arg "Membership.join: node out of range";
  if t.states.(node) <> Standby then
    Error (`Refused "join: node is not standby")
  else if not (alive t node) then Error (`Refused "join: node is dead")
  else begin
    t.states.(node) <- Active;
    mark t "JOIN" ~node;
    bump_view ctx t (Printf.sprintf "join: node %d" node);
    (* Rebalance: take one home range off the most-loaded member.  With
       no donor (first member, or every other member empty and serving
       nothing) the joiner starts cold. *)
    let donor =
      match most_loaded_active t ~except:node with
      | Some d when homes_served_by t d <> [] -> Some d
      | _ -> None
    in
    match donor with
    | None ->
        Metrics.incr t.c_joins;
        Ok None
    | Some d ->
        let home =
          List.fold_left
            (fun best h ->
              match best with
              | None -> Some h
              | Some b -> if range_bytes t h > range_bytes t b then Some h else best)
            None (homes_served_by t d)
        in
        let home = Option.get home in
        (match handoff ctx t ~home ~to_node:node with
        | Ok () ->
            Metrics.incr t.c_joins;
            Ok (Some home)
        | Error e ->
            (* The activation is rolled back: a join whose seed handoff
               failed never happened as far as placement is concerned. *)
            t.states.(node) <- Standby;
            bump_view ctx t (Printf.sprintf "join rollback: node %d" node);
            Error e)
  end

let leave ctx t ~node =
  if node < 0 || node >= Array.length t.states then
    invalid_arg "Membership.leave: node out of range";
  if t.states.(node) <> Active then Error (`Refused "leave: node is not active")
  else if not (alive t node) then Error (`Refused "leave: node is dead")
  else begin
    mark t "LEAVE" ~node;
    (* Drain first (graceful leave): pending write-backs reach the
       backups before any range moves. *)
    Replication.sync_now ctx t.replication;
    let rec move acc =
      match homes_served_by t node with
      | [] -> Ok (List.rev acc)
      | home :: _ -> (
          match least_loaded_active t ~except:node with
          | None -> Error (`Refused "leave: no other active node to inherit")
          | Some target -> (
              match handoff ctx t ~home ~to_node:target with
              | Ok () -> move (home :: acc)
              | Error e -> Error e))
    in
    match move [] with
    | Ok moved ->
        t.states.(node) <- Standby;
        Metrics.incr t.c_leaves;
        bump_view ctx t (Printf.sprintf "leave: node %d" node);
        Ok moved
    | Error e -> Error e
  end
