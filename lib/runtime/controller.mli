(** The global controller (§4.2.2) and heartbeat failure detector.

    A daemon on node 0 (where the program was launched) that periodically
    pings every server for CPU and memory usage and rebalances load by
    ordering thread migrations:

    - memory pressure (> 90 % heap usage): migrate the thread consuming
      the most local heap until the pressure resolves;
    - compute congestion (> 90 % CPU utilization): migrate the thread with
      the most remote accesses to the server it accesses most — or, if
      that server is itself overloaded, to a vacant one.

    The probe loop doubles as the failure detector: each probe is bounded
    by [probe_timeout], and [miss_threshold] consecutive misses declare
    the node dead.  With a {!Drust_runtime.Replication} manager attached,
    the verdict automatically triggers backup promotion — the application
    never calls [fail_and_promote] itself. *)

module Ctx = Drust_machine.Ctx

type t

val start :
  ?probe_interval:float ->
  ?mem_threshold:float ->
  ?cpu_threshold:float ->
  ?probe_timeout:float ->
  ?miss_threshold:int ->
  ?grace:float ->
  ?replication:Replication.t ->
  ?membership:Membership.t ->
  Drust_machine.Cluster.t ->
  t
(** Spawns the probing daemon (default interval 1 ms of virtual time).
    Each remote probe is bounded by [probe_timeout] (default 200 µs —
    comfortably above a healthy probe's ~10 µs round trip);
    [miss_threshold] consecutive misses (default 3) {e and} at least
    [grace] seconds of silence since the node's last good probe declare
    the node dead.  [grace] defaults to
    [(miss_threshold + 1) × (probe_interval + probe_timeout)]: a
    transient partition shorter than [miss_threshold × probe_interval]
    can stack enough timeouts to reach the miss count while the total
    silence is still at most [miss_threshold × (interval + timeout)],
    so the one-round-larger grace floor keeps such blips from
    triggering a false-positive promotion at the cost of under one
    probe round of added real-crash detection latency.  Pass [replication]
    to have the verdict drive backup promotion, and [membership] to have
    it bump + announce the membership epoch before promotion (stale-view
    verbs are then rejected instead of answered by the inheritor). *)

val stop : t -> unit
(** The daemon exits at its next wakeup; required for the event queue to
    drain. *)

val migrations_ordered : t -> int
(** Thread migrations ordered so far ([controller.migrations] in the
    cluster's metrics registry, alongside [controller.probes],
    [controller.failovers] and [controller.heartbeat_misses]). *)

val probes_performed : t -> int

val deaths : t -> (int * float) list
(** Nodes the detector has declared dead, with the virtual time of each
    verdict, in declaration order.  Detection latency is this time minus
    the injected crash time.  The log is bounded (the newest
    [max 16 (2 × nodes)] verdicts are kept), so long churn runs cannot
    grow it without bound. *)

val set_on_death : t -> (int -> unit) -> unit
(** Callback invoked (from the controller's process, after promotion)
    each time a node is declared dead. *)

val pick_spawn_node : t -> int
(** Least-CPU-loaded alive node — the placement answer the runtime asks
    the controller for when local compute is saturated. *)

val rebalance_once : t -> unit
(** Run one probing/rebalancing round synchronously (must be called from
    inside a simulated process); exposed for tests and experiments. *)
