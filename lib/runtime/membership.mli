(** Elastic membership: epoch-stamped views and live join/leave with
    safe heap-range handoff (ROADMAP item 1).

    The paper's deployment is a fixed ring whose only membership change
    is a crash followed by backup promotion (§4.2.3).  This subsystem
    adds {e planned} membership changes on top of the same machinery:

    - an epoch-stamped view (per-node [Active] / [Standby] / [Failed]
      state) owned by the controller; every committed handoff and every
      failover bumps the epoch and asynchronously announces it;
    - a two-phase handoff (prepare → drain → copy → commit → reseed)
      that moves one home range between live servers, reusing
      [Replication.fail_and_promote]'s range-swap + cache-purge
      machinery via [Cluster.promote];
    - fabric-level stale-view rejection: clients stamp verbs with
      {!known_epoch}; a verb carrying an epoch older than the live view
      raises [Fabric.Stale_epoch], which [Fabric.retry_with_backoff]
      retries after the announcement has landed.

    A crash during drain or copy aborts the handoff without touching the
    serving map, so the heartbeat detector's ordinary promotion path
    recovers the range — the fallback DSan's [dsan.handoff_atomicity]
    invariant checks.  The moved image is snapshotted atomically at
    commit time, so writes landing during the bulk copy are never lost.

    Counters land in the cluster registry under [membership.*]
    ([membership.joins], [membership.leaves],
    [membership.handoff_commits], [membership.handoff_aborts],
    [membership.view_changes]). *)

module Ctx = Drust_machine.Ctx

type node_state = Active | Standby | Failed

type t

val create : ?active:int -> Drust_machine.Cluster.t -> replication:Replication.t -> t
(** Build a view over the cluster: nodes [0 .. active-1] start
    [Active], the rest [Standby] (default: all active).  Installs the
    fabric's epoch source, so epoch-stamped verbs are validated from now
    on.  The cluster's node count is the membership {e capacity}; joins
    activate standbys rather than growing the array. *)

val detach : t -> unit
(** Uninstall the fabric epoch source (end of experiment). *)

val epoch : t -> int
(** The live view epoch (starts at 0, bumped by every join, leave,
    committed handoff, and failover). *)

val known_epoch : t -> node:int -> int
(** The epoch [node] has been told about — what its clients should stamp
    verbs with.  Lags {!epoch} by the announcement latency; the gap is
    exactly the window in which that node's verbs are NAKed and
    retried. *)

val state : t -> node:int -> node_state
val is_active : t -> node:int -> bool
val active_nodes : t -> int list

val in_flight_handoff : t -> (int * int * int) option
(** [(home, from_node, to_node)] of the handoff currently between
    prepare and commit/abort, if any — what a churn driver polls to time
    a mid-handoff crash injection. *)

type handoff_error =
  [ `Refused of string  (** preconditions failed; nothing changed *)
  | `Aborted of string  (** a crash interrupted drain/copy; the serving
                            map is untouched and failover recovers *) ]

val handoff :
  Ctx.t -> t -> home:int -> to_node:int -> (unit, handoff_error) result
(** Move [home]'s range from its current server to [to_node]:
    drain pending write-backs, charge the bulk copy as chunked WRITEs
    (each chunk a fault-injection point), then atomically snapshot the
    store, swap the serving map, purge every alive cache of the range,
    bump the epoch, announce, and re-seed the replica chain. *)

val join : Ctx.t -> t -> node:int -> (int option, handoff_error) result
(** Activate a standby node and rebalance one home range onto it from
    the most-loaded member ([Ok (Some home)]), or [Ok None] when no
    member serves anything worth moving.  A failed seed handoff rolls
    the activation back. *)

val leave : Ctx.t -> t -> node:int -> (int list, handoff_error) result
(** Graceful departure: drain pending write-backs, hand every range the
    node serves to the least-loaded remaining member (re-chosen per
    range), then return the node to [Standby].  Returns the moved homes.
    Refused when no other active member could inherit. *)

val node_failed : Ctx.t -> t -> node:int -> unit
(** The controller's failure verdict: mark the node [Failed] and bump +
    announce the epoch.  Called by [Controller] before promotion so
    in-flight verbs routed under the old view are rejected rather than
    answered by whoever inherits the dead ranges. *)

(** {1 Shadow-state events (the DSan sanitizer, lib/check)}

    Emitted in protocol order: [Handoff_prepared] before the drain,
    [Handoff_committed] (with the new epoch) after the atomic serving
    swap and cache purge, [Handoff_aborted] if a crash interrupted the
    transfer, [Chain_reseeded] after the replica chain is rebuilt, and
    [View_change] on every epoch bump that is not a commit (join, leave,
    rollback, failover).  A listener must never touch the engine or any
    RNG. *)

type event =
  | View_change of { epoch : int; reason : string }
  | Handoff_prepared of { home : int; from_node : int; to_node : int }
  | Handoff_committed of {
      home : int;
      from_node : int;
      to_node : int;
      epoch : int;
    }
  | Handoff_aborted of {
      home : int;
      from_node : int;
      to_node : int;
      reason : string;
    }
  | Chain_reseeded of { home : int; server : int; hosts : int list }

val set_listener :
  Drust_machine.Cluster.t -> (Ctx.t -> event -> unit) option -> unit
