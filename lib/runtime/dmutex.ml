module Ctx = Drust_machine.Ctx
module Cluster = Drust_machine.Cluster
module Engine = Drust_sim.Engine
module Fabric = Drust_net.Fabric
module Gaddr = Drust_memory.Gaddr
module Univ = Drust_util.Univ

type t = {
  data_g : Gaddr.t;
  size : int;
  home : int;
  mutable locked : bool;
  mutable holder : int option; (* thread id, for misuse detection *)
  mutable retries : int;
}

(* Lock-discipline events for the DSan shadow-state checker (lib/check).
   [Lock_released] fires {e before} the holder check, so a checker
   observes a foreign unlock the operation itself then rejects.
   Listeners are keyed per cluster and must never touch the engine or
   any RNG. *)
type event =
  | Lock_created of { g : Gaddr.t }
  | Lock_acquired of { g : Gaddr.t; thread : int }
  | Lock_released of { g : Gaddr.t; thread : int }

let listener_key : (Ctx.t -> event -> unit) option ref Drust_machine.Env.key =
  Drust_machine.Env.key ~name:"runtime.dmutex_listener"

let listener_cell cluster =
  Drust_machine.Env.get (Cluster.env cluster) listener_key ~init:(fun () ->
      ref None)

let set_listener cluster f = listener_cell cluster := f

let[@inline] with_listener ctx k =
  match !(listener_cell (Ctx.cluster ctx)) with None -> () | Some f -> k f

let create ctx ~size v =
  Ctx.charge_cycles ctx 200.0;
  let data_g = Cluster.heap_alloc (Ctx.cluster ctx) ~node:ctx.Ctx.node ~size v in
  with_listener ctx (fun f -> f ctx (Lock_created { g = data_g }));
  {
    data_g;
    size;
    home = ctx.Ctx.node;
    locked = false;
    holder = None;
    retries = 0;
  }

let home t = t.home

let serving_home ctx t = Cluster.serving_node (Ctx.cluster ctx) t.home

let cas_attempt ctx t =
  let target = serving_home ctx t in
  let attempt () =
    if t.locked then false
    else begin
      t.locked <- true;
      t.holder <- Some ctx.Ctx.thread_id;
      true
    end
  in
  let won =
    if target = ctx.Ctx.node then begin
      Ctx.charge_cycles ctx 40.0;
      attempt ()
    end
    else begin
      Ctx.note_remote_access ctx ~target;
      Ctx.flush ctx;
      Fabric.rdma_atomic (Ctx.fabric ctx) ~from:ctx.Ctx.node ~target attempt
    end
  in
  if won then
    with_listener ctx (fun f ->
        f ctx (Lock_acquired { g = t.data_g; thread = ctx.Ctx.thread_id }));
  won

let try_lock ctx t = cas_attempt ctx t

let lock ctx t =
  let engine = Ctx.engine ctx in
  let rec retry backoff =
    if not (cas_attempt ctx t) then begin
      t.retries <- t.retries + 1;
      (* Bounded exponential backoff with jitter to break convoys. *)
      let jitter = Drust_util.Rng.float ctx.Ctx.rng backoff in
      Engine.delay engine (backoff +. jitter);
      retry (Float.min (2.0 *. backoff) 32e-6)
    end
  in
  if not (cas_attempt ctx t) then begin
    t.retries <- t.retries + 1;
    retry 2e-6
  end

let check_held ctx t op =
  match t.holder with
  | Some id when id = ctx.Ctx.thread_id -> ()
  | Some _ | None -> invalid_arg (Printf.sprintf "Dmutex.%s: lock not held" op)

let unlock ctx t =
  with_listener ctx (fun f ->
      f ctx (Lock_released { g = t.data_g; thread = ctx.Ctx.thread_id }));
  check_held ctx t "unlock";
  t.holder <- None;
  let target = serving_home ctx t in
  if target = ctx.Ctx.node then begin
    Ctx.charge_cycles ctx 30.0;
    t.locked <- false
  end
  else begin
    Ctx.flush ctx;
    (* Release with a one-sided 8-byte WRITE of the lock word. *)
    Fabric.rdma_write (Ctx.fabric ctx) ~from:ctx.Ctx.node ~target ~bytes:8;
    t.locked <- false
  end

let read_guarded ctx t =
  check_held ctx t "read_guarded";
  let cluster = Ctx.cluster ctx in
  let target = serving_home ctx t in
  if target = ctx.Ctx.node then Ctx.charge_cycles ctx 300.0
  else begin
    Ctx.note_remote_access ctx ~target;
    Ctx.flush ctx;
    Fabric.rdma_read (Ctx.fabric ctx) ~from:ctx.Ctx.node ~target ~bytes:t.size
  end;
  (Cluster.heap_read cluster t.data_g).Drust_memory.Partition.value

let write_guarded ctx t v =
  check_held ctx t "write_guarded";
  let cluster = Ctx.cluster ctx in
  let target = serving_home ctx t in
  if target = ctx.Ctx.node then Ctx.charge_cycles ctx 300.0
  else begin
    Ctx.flush ctx;
    Fabric.rdma_write (Ctx.fabric ctx) ~from:ctx.Ctx.node ~target ~bytes:t.size
  end;
  Cluster.heap_write cluster t.data_g v

let with_lock ctx t f =
  lock ctx t;
  match f (read_guarded ctx t) with
  | v, result ->
      write_guarded ctx t v;
      unlock ctx t;
      result
  | exception e ->
      unlock ctx t;
      raise e

let contention_retries t = t.retries
