(** Distributed mutexes (the paper's adapted [std::sync::Mutex], §4.1.2).

    The mutex metadata and the object it guards live on the global heap of
    the creating server; handles replicate freely.  Locking uses one-sided
    ATOMIC_CMP_AND_SWP with bounded exponential backoff — the efficiency
    edge the paper credits for DRust's KV-store advantage over GAM's
    two-sided lock messages (§7.2).  All concurrent operations serialize
    at the home server, which is exactly the degeneration to classic DSM
    the paper describes for shared-state-heavy programs (§6). *)

module Ctx = Drust_machine.Ctx

type t

val create : Ctx.t -> size:int -> Drust_util.Univ.t -> t
(** [create ctx ~size v] allocates the lock word and the guarded object
    (of [size] bytes) in the caller's partition. *)

val home : t -> int

val lock : Ctx.t -> t -> unit
(** CAS loop; blocks (in virtual time) until acquired. *)

val try_lock : Ctx.t -> t -> bool
val unlock : Ctx.t -> t -> unit
(** One-sided WRITE of the lock word.  Raises [Invalid_argument] when the
    mutex is not held. *)

val read_guarded : Ctx.t -> t -> Drust_util.Univ.t
(** Read the guarded object (caller must hold the lock; enforced). *)

val write_guarded : Ctx.t -> t -> Drust_util.Univ.t -> unit

val with_lock : Ctx.t -> t -> (Drust_util.Univ.t -> Drust_util.Univ.t * 'a) -> 'a
(** Lock, read, apply, write back, unlock — releasing on exception. *)

val contention_retries : t -> int
(** Total failed CAS attempts observed (a contention signal used by the
    KV-store experiment's analysis). *)

(** {1 Shadow-state events (the DSan sanitizer, lib/check)}

    [Lock_released] fires {e before} the holder check, so a checker
    observes a foreign unlock the operation itself then rejects.  A
    listener must never touch the engine or any RNG. *)

type event =
  | Lock_created of { g : Drust_memory.Gaddr.t }
  | Lock_acquired of { g : Drust_memory.Gaddr.t; thread : int }
  | Lock_released of { g : Drust_memory.Gaddr.t; thread : int }

val set_listener :
  Drust_machine.Cluster.t -> (Ctx.t -> event -> unit) option -> unit
