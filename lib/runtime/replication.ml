module Ctx = Drust_machine.Ctx
module Cluster = Drust_machine.Cluster
module Fabric = Drust_net.Fabric
module Gaddr = Drust_memory.Gaddr
module Partition = Drust_memory.Partition
module Cache = Drust_memory.Cache
module Protocol = Drust_core.Protocol
module Flight = Drust_obs.Flight

type dirty = { size : int; value : Drust_util.Univ.t }

(* Failover milestones also land in the flight recorder (array stores
   only), recorded next to the listener emits below. *)
let[@inline] fr ctx cluster ~kind ~a ~b ~c =
  Flight.record (Cluster.flight cluster) ~node:ctx.Ctx.node
    ~time:(Drust_sim.Engine.now (Cluster.engine cluster))
    ~kind ~a ~b ~c ~d:0

type t = {
  cluster : Cluster.t;
  replicas : int;
  (* backups.(r).(home): the r-th replica of node [home]'s range, hosted
     on node (home + 1 + r) mod n.  Every replica receives the initial
     snapshot and every write-back, so any of them can be promoted. *)
  backups : Partition.t array array;
  pending : (Gaddr.t, dirty) Hashtbl.t;
  mutable writebacks : int;
  mutable enabled : bool;
  (* Home ranges whose server died with every replica host already dead:
     nothing can re-serve them.  Recorded instead of raised, so cascading
     failures surface as an explicit report rather than an exception from
     deep inside promotion. *)
  mutable unrecoverable : int list;
}

let replica_host t ~home ~r = (home + 1 + r) mod Cluster.node_count t.cluster

let backup_node t home = replica_host t ~home ~r:0

(* Failover events for the DSan shadow-state checker (lib/check).
   [Promoted] fires once per re-served range, after the serving map is
   swapped and the surviving caches are purged.  Listeners are keyed per
   cluster and must never touch the engine or any RNG. *)
type event =
  | Node_failed of { node : int }
  | Promoted of { home : int; by : int; replica : int }

let listener_key : (Ctx.t -> event -> unit) option ref Drust_machine.Env.key =
  Drust_machine.Env.key ~name:"runtime.replication_listener"

let listener_cell cluster =
  Drust_machine.Env.get (Cluster.env cluster) listener_key ~init:(fun () ->
      ref None)

let set_listener cluster f = listener_cell cluster := f

let[@inline] with_listener ctx cluster k =
  match !(listener_cell cluster) with None -> () | Some f -> k (f ctx)

let record_commit t _ctx g size value =
  if t.enabled then Hashtbl.replace t.pending g { size; value }

(* Flush the batched modifications belonging to one physical range or all
   of them.  One-sided asynchronous WRITEs to the backup server keep this
   off the mutator's critical path. *)
let flush_pending t ctx ~only =
  let fabric = Cluster.fabric t.cluster in
  (* Address order, not bucket order: the flush issues fabric events, so
     its iteration order is part of the deterministic schedule. *)
  let selected =
    match only with
    | Some phys -> if Hashtbl.mem t.pending phys then [ phys ] else []
    | None -> Drust_util.Tables.sorted_keys t.pending ~cmp:Gaddr.compare
  in
  List.iter
    (fun g ->
      let d = Hashtbl.find t.pending g in
      let home = Gaddr.node_of g in
      for r = 0 to t.replicas - 1 do
        let target = replica_host t ~home ~r in
        (* A dead replica host receives nothing: its copy is frozen at
           the failure point and must not masquerade as current. *)
        if (Cluster.node t.cluster target).Cluster.alive then begin
          if target <> ctx.Ctx.node then
            Fabric.rdma_write_async fabric ~from:ctx.Ctx.node ~target
              ~bytes:d.size (fun () -> ());
          Partition.put t.backups.(r).(home) g ~size:d.size d.value
        end
      done;
      t.writebacks <- t.writebacks + 1;
      Hashtbl.remove t.pending g)
    selected

let on_transfer t ctx g = if t.enabled then flush_pending t ctx ~only:(Some g)

let enable ?(replicas = 1) cluster =
  let n = Cluster.node_count cluster in
  if replicas < 1 || replicas >= n then
    invalid_arg "Replication.enable: need 1 <= replicas < nodes";
  let backups =
    Array.init replicas (fun _ ->
        Array.init n (fun i ->
            Partition.create ~node:i
              ~capacity_bytes:
                (Cluster.params cluster).Drust_machine.Params.mem_per_node))
  in
  let t =
    {
      cluster;
      replicas;
      backups;
      pending = Hashtbl.create 256;
      writebacks = 0;
      enabled = true;
      unrecoverable = [];
    }
  in
  (* Initial snapshot: mirror every live object into every replica. *)
  Array.iteri
    (fun i node ->
      Partition.iter node.Cluster.partition (fun g e ->
          for r = 0 to replicas - 1 do
            Partition.put backups.(r).(i) g ~size:e.Partition.size
              e.Partition.value
          done))
    (Cluster.nodes cluster);
  Protocol.set_commit_listener cluster (Some (record_commit t));
  Protocol.set_transfer_listener cluster (Some (on_transfer t));
  t

let disable t =
  t.enabled <- false;
  Protocol.set_commit_listener t.cluster None;
  Protocol.set_transfer_listener t.cluster None

let pending_writes t = Hashtbl.length t.pending

let sync_now ctx t = flush_pending t ctx ~only:None

let writebacks_performed t = t.writebacks

let fail_and_promote ctx t ~node =
  if node < 0 || node >= Cluster.node_count t.cluster then
    invalid_arg "Replication.fail_and_promote: node out of range";
  (* Everything the failed node had committed-and-escaped is in the
     backups; un-flushed pending entries for its range are lost. *)
  let lost =
    Drust_util.Tables.sorted_keys t.pending ~cmp:Gaddr.compare
    |> List.filter (fun g -> Gaddr.node_of g = node)
  in
  List.iter (Hashtbl.remove t.pending) lost;
  Cluster.mark_failed t.cluster node;
  fr ctx t.cluster ~kind:Flight.k_node_failed ~a:node ~b:0 ~c:0;
  with_listener ctx t.cluster (fun emit -> emit (Node_failed { node }));
  (* Re-serve every range whose current server just died (including the
     failed node's own range) from its first replica on an alive host. *)
  let n = Cluster.node_count t.cluster in
  for home = 0 to n - 1 do
    if Cluster.serving_node t.cluster home = node then begin
      let rec pick r =
        if r >= t.replicas then None
        else
          let host = replica_host t ~home ~r in
          if (Cluster.node t.cluster host).Cluster.alive then Some (host, r)
          else pick (r + 1)
      in
      match pick 0 with
      | None ->
          (* Every replica host died too (a cascade longer than the
             replica count).  The range stays mapped to the dead server —
             readers get Node_down — and the loss is reported through
             [unrecoverable_ranges] instead of an exception unwinding the
             controller mid-promotion. *)
          if not (List.mem home t.unrecoverable) then
            t.unrecoverable <- home :: t.unrecoverable
      | Some (by, r) ->
          Cluster.promote t.cluster ~home ~by ~store:t.backups.(r).(home);
          (* The promoted replica may lag the lost primary (write-backs are
             batched), so copies the survivors fetched from the primary can
             hold exactly the lost writes — under colored addresses that are
             still current.  Purge the whole promoted range from every alive
             cache before serving resumes, or those copies keep serving
             values the failover rolled back. *)
          Array.iter
            (fun nd ->
              if nd.Cluster.alive then
                ignore (Cache.invalidate_home nd.Cluster.cache ~home))
            (Cluster.nodes t.cluster);
          fr ctx t.cluster ~kind:Flight.k_promoted ~a:home ~b:by ~c:r;
          with_listener ctx t.cluster (fun emit ->
              emit (Promoted { home; by; replica = r }))
    end
  done;
  (* The controller announces the promotion to every alive server. *)
  let fabric = Cluster.fabric t.cluster in
  List.iter
    (fun id ->
      if id <> ctx.Ctx.node then
        (* An announcement target can be crashed or partitioned without
           having been detected yet — the fabric's view leads the
           controller's.  Skip it rather than unwind the controller
           mid-promotion: an unreachable node is either declared dead on
           a later probe round or learns the new serving map when its
           own verbs are retried. *)
        try
          Fabric.rpc fabric ~from:ctx.Ctx.node ~target:id ~req_bytes:32
            ~resp_bytes:8 (fun () -> ())
        with Fabric.Node_down _ | Fabric.Rpc_timeout _ -> ())
    (Cluster.alive_nodes t.cluster)

let unrecoverable_ranges t = List.sort Int.compare t.unrecoverable

(* Rebuild [home]'s replica chain from whatever store currently serves
   the range.  Called after a planned handoff commits: the old replicas
   mirror a snapshot the old server took, and the chain's hosts may have
   changed liveness since, so each alive host gets a fresh copy pushed
   from the new server (a bulk one-sided WRITE off the critical path).
   Dead hosts are skipped — their slots stay frozen and are never
   promoted (fail_and_promote only picks alive hosts).  Returns the
   alive hosts now holding a current copy, in ring order. *)
let reseed_chain _ctx t ~home =
  if home < 0 || home >= Cluster.node_count t.cluster then
    invalid_arg "Replication.reseed_chain: home out of range";
  let store = Cluster.serving_store t.cluster home in
  let server = Cluster.serving_node t.cluster home in
  let fabric = Cluster.fabric t.cluster in
  let capacity =
    (Cluster.params t.cluster).Drust_machine.Params.mem_per_node
  in
  let hosts = ref [] in
  for r = t.replicas - 1 downto 0 do
    let host = replica_host t ~home ~r in
    (* A ring slot landing on the server itself is skipped: a backup
       co-located with its primary survives exactly the failures the
       primary survives, so it adds nothing (and the old snapshot there
       is never promoted while the server is that node — a dead server
       means a dead co-located backup, which [pick] already skips). *)
    if host <> server && (Cluster.node t.cluster host).Cluster.alive then begin
      hosts := host :: !hosts;
      let fresh = Partition.create ~node:home ~capacity_bytes:capacity in
      let bytes = ref 0 in
      Partition.iter store (fun g e ->
          bytes := !bytes + e.Partition.size;
          Partition.put fresh g ~size:e.Partition.size e.Partition.value);
      t.backups.(r).(home) <- fresh;
      Fabric.rdma_write_async fabric ~from:server ~target:host
        ~bytes:(max 64 !bytes)
        (fun () -> ())
    end
  done;
  !hosts
