(** Single-thread reference-counted ownership sharing (Rust's [Rc]).

    The paper notes that [Rc] "does not require special treatment" because
    it only shares ownership inside one thread (§4.1.2): the count needs
    no atomics and the handles can never be replicated across servers.
    This module enforces that property dynamically — cloning or dropping
    from a different thread raises {!Cross_thread}. *)

module Ctx = Drust_machine.Ctx

type t

exception Cross_thread of { created_by : int; used_by : int }

val create : Ctx.t -> size:int -> Drust_util.Univ.t -> t
val clone : Ctx.t -> t -> t
val get : Ctx.t -> t -> Drust_util.Univ.t
val strong_count : t -> int

val drop : Ctx.t -> t -> unit
(** Last drop frees the payload. *)

val set_listener :
  Drust_machine.Cluster.t -> (Ctx.t -> Darc.rc_event -> unit) option -> unit
(** Shadow-state refcount events, sharing [Darc.rc_event]; the DSan
    checker installs one handler for both. *)
