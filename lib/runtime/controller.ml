module Ctx = Drust_machine.Ctx
module Cluster = Drust_machine.Cluster
module Engine = Drust_sim.Engine
module Resource = Drust_sim.Resource
module Fabric = Drust_net.Fabric
module Partition = Drust_memory.Partition
module Metrics = Drust_obs.Metrics
module Span = Drust_obs.Span

type probe = { node : int; cpu : float; mem : float }

type t = {
  cluster : Cluster.t;
  probe_interval : float;
  mem_threshold : float;
  cpu_threshold : float;
  probe_timeout : float;
  miss_threshold : int;
  grace : float; (* minimum silence (since last good probe) before declaring *)
  replication : Replication.t option;
  membership : Membership.t option;
  misses : int array; (* consecutive missed heartbeats, per node *)
  last_ok : float array; (* time of each node's last successful probe *)
  deaths_cap : int; (* bound on the death log, oldest entries dropped *)
  mutable deaths : (int * float) list; (* (node, declared-dead time), newest first *)
  mutable on_death : (int -> unit) option;
  mutable running : bool;
  c_migrations : Metrics.counter;
  c_probes : Metrics.counter;
  c_failovers : Metrics.counter;
  c_heartbeat_misses : Metrics.counter;
  mutable last_probe : probe array;
}

(* Instant mark on node 0's timeline (where the controller daemon runs). *)
let ctl_mark t name ~node =
  let sp = Cluster.spans t.cluster in
  if Span.is_enabled sp then
    Span.instant sp ~track:0 ~category:"controller"
      ~args:[ ("node", string_of_int node) ]
      name

(* K consecutive missed probes: the failure detector's verdict.  Promotion
   runs through Replication when one is attached (the §4.2.3 path: backups
   take over the dead ranges and every server learns the new routing);
   otherwise the node is merely marked failed so placement avoids it. *)
let declare_dead t ctx node =
  if (Cluster.node t.cluster node).Cluster.alive then begin
    let at = Engine.now (Cluster.engine t.cluster) in
    (* Bounded log: the churn experiments run long enough that an
       unbounded list is a leak; only the newest verdicts matter. *)
    t.deaths <- (node, at) :: t.deaths;
    (if List.length t.deaths > t.deaths_cap then
       let rec take n = function
         | x :: tl when n > 0 -> x :: take (n - 1) tl
         | _ -> []
       in
       t.deaths <- take t.deaths_cap t.deaths);
    Metrics.incr t.c_failovers;
    ctl_mark t "FAILOVER" ~node;
    (* The membership view learns of the death (and announces the new
       epoch) before promotion, so verbs routed under the old view are
       NAKed rather than answered by the range's inheritor. *)
    (match t.membership with
    | Some m -> Membership.node_failed ctx m ~node
    | None -> ());
    (match t.replication with
    | Some repl -> Replication.fail_and_promote ctx repl ~node
    | None -> Cluster.mark_failed t.cluster node);
    match t.on_death with Some f -> f node | None -> ()
  end

let probe_all t ctx =
  let cluster = t.cluster in
  let fabric = Cluster.fabric cluster in
  let now = Engine.now (Cluster.engine cluster) in
  let probe_node n =
    let id = n.Cluster.id in
    let silent = { node = id; cpu = 0.0; mem = 0.0 } in
    if not n.Cluster.alive then silent
    else begin
      Metrics.incr t.c_probes;
      let collect () =
        let cpu = Resource.utilization n.Cluster.cores ~now in
        Resource.reset_utilization n.Cluster.cores ~now;
        let mem = Partition.usage_fraction n.Cluster.partition in
        { node = id; cpu; mem }
      in
      if id = ctx.Ctx.node then collect ()
      else
        match
          Fabric.rpc_with_timeout fabric ~from:ctx.Ctx.node ~target:id
            ~req_bytes:32 ~resp_bytes:64 ~timeout:t.probe_timeout collect
        with
        | p ->
            t.misses.(id) <- 0;
            t.last_ok.(id) <- Engine.now (Cluster.engine cluster);
            p
        | exception (Fabric.Node_down _ | Fabric.Rpc_timeout _) ->
            t.misses.(id) <- t.misses.(id) + 1;
            Metrics.incr t.c_heartbeat_misses;
            ctl_mark t "HEARTBEAT_MISS" ~node:id;
            (* Two conditions gate the verdict: K consecutive misses AND
               at least [grace] of silence since the last good probe.
               Miss counting alone can span less wall-clock than
               K × interval when timeouts stack, so a transient
               partition shorter than the nominal detection window could
               otherwise trigger a false-positive promotion. *)
            let silent_for =
              Engine.now (Cluster.engine cluster) -. t.last_ok.(id)
            in
            if t.misses.(id) >= t.miss_threshold && silent_for >= t.grace then
              declare_dead t ctx id;
            silent
    end
  in
  t.last_probe <- Array.map probe_node (Cluster.nodes cluster)

let most_vacant_by_cpu t =
  let best = ref 0 and best_cpu = ref Float.infinity in
  Array.iter
    (fun p ->
      if (Cluster.node t.cluster p.node).Cluster.alive && p.cpu < !best_cpu
      then begin
        best := p.node;
        best_cpu := p.cpu
      end)
    t.last_probe;
  !best

let heaviest_local_allocator threads =
  List.fold_left
    (fun acc r ->
      match acc with
      | None -> Some r
      | Some best ->
          if r.Registry.ctx.Ctx.local_alloc_bytes
             > best.Registry.ctx.Ctx.local_alloc_bytes
          then Some r
          else acc)
    None threads

let most_remote_accessor threads =
  List.fold_left
    (fun acc r ->
      match acc with
      | None -> Some r
      | Some best ->
          if Ctx.remote_access_total r.Registry.ctx
             > Ctx.remote_access_total best.Registry.ctx
          then Some r
          else acc)
    None threads

let rebalance t ctx =
  probe_all t ctx;
  let handle_pressure p =
    if not (Cluster.node t.cluster p.node).Cluster.alive then ()
    else
    let candidates =
      List.filter
        (fun r -> r.Registry.migrate_to = None)
        (Registry.threads_on t.cluster ~node:p.node)
    in
    if p.mem > t.mem_threshold then begin
      (* Move the thread consuming the most local heap off the node. *)
      match heaviest_local_allocator candidates with
      | Some r ->
          let target = Cluster.most_vacant_node t.cluster in
          if target <> p.node then begin
            Registry.order_migration r ~target;
            Metrics.incr t.c_migrations;
            ctl_mark t "MIGRATE(mem)" ~node:p.node
          end
      | None -> ()
    end
    else if p.cpu > t.cpu_threshold then begin
      (* Move the most remote-chatty thread toward its data — or to a
         vacant node when its preferred target is also hot. *)
      match most_remote_accessor candidates with
      | Some r when Ctx.remote_access_total r.Registry.ctx > 0 ->
          let preferred =
            match Ctx.hottest_remote_node r.Registry.ctx with
            | Some n -> n
            | None -> most_vacant_by_cpu t
          in
          let preferred_cpu = t.last_probe.(preferred).cpu in
          let target =
            if preferred_cpu > t.cpu_threshold then most_vacant_by_cpu t
            else preferred
          in
          if target <> p.node then begin
            Registry.order_migration r ~target;
            Metrics.incr t.c_migrations;
            ctl_mark t "MIGRATE(cpu)" ~node:p.node
          end
      | Some _ | None -> ()
    end
  in
  Array.iter handle_pressure t.last_probe

let start ?(probe_interval = 1e-3) ?(mem_threshold = 0.9) ?(cpu_threshold = 0.9)
    ?(probe_timeout = 2e-4) ?(miss_threshold = 3) ?grace ?replication
    ?membership cluster =
  let m = Cluster.metrics cluster in
  (* Default grace: the worst silence a partition shorter than
     miss_threshold × probe_interval can produce is one probe round of
     pre-partition quiet, plus the partition itself, plus one trailing
     timeout — which reaches exactly K × (interval + timeout) when the
     cut is aligned with the probe schedule.  One extra round of slack
     keeps such partitions strictly inside the grace window (immune to
     round-duration drift) at the cost of under one round of added
     detection latency for a real crash. *)
  let grace =
    match grace with
    | Some g -> g
    | None ->
        float_of_int (miss_threshold + 1) *. (probe_interval +. probe_timeout)
  in
  let n = Cluster.node_count cluster in
  let start_now = Engine.now (Cluster.engine cluster) in
  let t =
    {
      cluster;
      probe_interval;
      mem_threshold;
      cpu_threshold;
      probe_timeout;
      miss_threshold;
      grace;
      replication;
      membership;
      misses = Array.make n 0;
      last_ok = Array.make n start_now;
      deaths_cap = max 16 (2 * n);
      deaths = [];
      on_death = None;
      running = true;
      c_migrations = Metrics.counter m ~unit_:"ops" "controller.migrations";
      c_probes = Metrics.counter m ~unit_:"ops" "controller.probes";
      c_failovers = Metrics.counter m ~unit_:"ops" "controller.failovers";
      c_heartbeat_misses =
        Metrics.counter m ~unit_:"ops" "controller.heartbeat_misses";
      last_probe = [||];
    }
  in
  let engine = Cluster.engine cluster in
  ignore
    (Engine.spawn engine (fun () ->
         (* The controller daemon lives on the launch node (node 0). *)
         let ctx = Ctx.make cluster ~node:0 in
         let rec loop () =
           if t.running then begin
             Engine.delay engine t.probe_interval;
             if t.running then begin
               rebalance t ctx;
               loop ()
             end
           end
         in
         loop ()));
  t

let stop t = t.running <- false

let migrations_ordered t = Metrics.value t.c_migrations
let probes_performed t = Metrics.value t.c_probes
let set_on_death t f = t.on_death <- Some f
let deaths t = List.rev t.deaths

let pick_spawn_node t =
  if Array.length t.last_probe = 0 then Cluster.most_vacant_node t.cluster
  else most_vacant_by_cpu t

let rebalance_once t =
  let ctx = Ctx.make t.cluster ~node:0 in
  rebalance t ctx
