module Ctx = Drust_machine.Ctx
module Cluster = Drust_machine.Cluster

type record = {
  ctx : Ctx.t;
  mutable running : bool;
  mutable migrate_to : int option;
  mutable migrations : int;
}

(* One bucket of records per cluster, stored in the cluster's Env so the
   registry dies with the cluster. *)
let bucket_key : record list ref Drust_machine.Env.key =
  Drust_machine.Env.key ~name:"runtime.thread_registry"

let bucket cluster =
  Drust_machine.Env.get (Cluster.env cluster) bucket_key ~init:(fun () -> ref [])

let register ctx =
  let r = { ctx; running = true; migrate_to = None; migrations = 0 } in
  let b = bucket (Ctx.cluster ctx) in
  b := r :: !b;
  r

let unregister r =
  r.running <- false;
  let b = bucket (Ctx.cluster r.ctx) in
  b :=
    List.filter
      (fun r' ->
        ((r' != r)
        [@dlint.allow
          "determinism: identity test on unique mutable records — removing \
           exactly this registration, not a structural twin"]))
      !b

let live_threads cluster = List.filter (fun r -> r.running) !(bucket cluster)

let threads_on cluster ~node =
  List.filter (fun r -> r.ctx.Ctx.node = node) (live_threads cluster)

let thread_count_on cluster ~node = List.length (threads_on cluster ~node)

let order_migration r ~target = r.migrate_to <- Some target

let clear cluster = bucket cluster := []
