(* Flat open-addressing hash map with non-negative int keys.

   Replaces the stdlib [Hashtbl] in the simulator's per-object side
   tables (heap partitions, node caches, the cluster Env).  Linear
   probing over two parallel flat arrays keeps a lookup inside one or
   two cache lines and allocates nothing per binding — a stdlib Hashtbl
   allocates a bucket cons cell per binding and hashes through a generic
   function.  See docs/PERFORMANCE.md.

   Keys must be >= 0: negative values are reserved as the empty (-1) and
   tombstone (-2) slot markers.  Deletions leave tombstones; the table
   rehashes (dropping them) when live + dead slots pass half the
   capacity, so probe chains stay short. *)

(* The value arrays are created with an immediate dummy, which commits
   them to the generic (non-flat-float) representation; storing any
   boxed ['a] afterwards is then representation-safe. *)
let dummy : 'a. unit -> 'a =
 fun () ->
  (Obj.magic ()
  [@dlint.allow
    "determinism: unread slot sentinel for pre-sized uniform arrays; \
     the keys array guards every access so the dummy is never observed"])

type 'a t = {
  mutable keys : int array;
  mutable vals : 'a array;
  mutable mask : int; (* capacity - 1; capacity is a power of two *)
  mutable live : int; (* stored bindings *)
  mutable used : int; (* live + tombstones *)
}

let empty_slot = -1
let tombstone = -2

let rec pow2_above n c = if c >= n then c else pow2_above n (c * 2)

let create ?(capacity = 16) () =
  let cap = pow2_above (max 8 capacity) 8 in
  {
    keys = Array.make cap empty_slot;
    vals = Array.make cap (dummy ());
    mask = cap - 1;
    live = 0;
    used = 0;
  }

let length t = t.live
let is_empty t = t.live = 0

(* Fibonacci-style multiplicative hash: spreads the low-entropy keys the
   simulator uses (16-byte-aligned heap offsets, dense Env ids) across
   the table.  The fixed 30-bit shift picks well-mixed middle bits of
   the product for any table size in practical range. *)
let[@inline] index k mask = (k * 0x2545F4914F6CDD1D) lsr 30 land mask

let find t k =
  let keys = t.keys in
  let mask = t.mask in
  let rec go i =
    let kk = Array.unsafe_get keys i in
    if kk = k then Array.unsafe_get t.vals i
    else if kk = empty_slot then raise Not_found
    else go ((i + 1) land mask)
  in
  go (index k mask)

let find_opt t k =
  let keys = t.keys in
  let mask = t.mask in
  let rec go i =
    let kk = Array.unsafe_get keys i in
    if kk = k then Some (Array.unsafe_get t.vals i)
    else if kk = empty_slot then None
    else go ((i + 1) land mask)
  in
  go (index k mask)

let mem t k =
  let keys = t.keys in
  let mask = t.mask in
  let rec go i =
    let kk = Array.unsafe_get keys i in
    if kk = k then true
    else if kk = empty_slot then false
    else go ((i + 1) land mask)
  in
  go (index k mask)

(* Insert into a table known to contain neither [k] nor any tombstone
   (used during rehash). *)
let insert_fresh keys vals mask k v =
  let rec go i =
    if Array.unsafe_get keys i = empty_slot then begin
      Array.unsafe_set keys i k;
      Array.unsafe_set vals i v
    end
    else go ((i + 1) land mask)
  in
  go (index k mask)

let rehash t cap =
  let keys = Array.make cap empty_slot in
  let vals = Array.make cap (dummy ()) in
  let mask = cap - 1 in
  let old_keys = t.keys and old_vals = t.vals in
  for i = 0 to Array.length old_keys - 1 do
    let k = Array.unsafe_get old_keys i in
    if k >= 0 then insert_fresh keys vals mask k (Array.unsafe_get old_vals i)
  done;
  t.keys <- keys;
  t.vals <- vals;
  t.mask <- mask;
  t.used <- t.live

let set t k v =
  if k < 0 then invalid_arg "Intmap.set: negative key";
  (* Keep load (including tombstones) under 1/2 so probe chains stay
     short; the new capacity leaves the live set under 1/2 as well. *)
  if 2 * t.used >= t.mask + 1 then
    rehash t (pow2_above (max 8 ((2 * t.live) + 1)) 8);
  let keys = t.keys in
  let mask = t.mask in
  (* [ins] is the first tombstone crossed, reusable if [k] is absent. *)
  let rec go i ins =
    let kk = Array.unsafe_get keys i in
    if kk = k then Array.unsafe_set t.vals i v
    else if kk = empty_slot then begin
      if ins >= 0 then begin
        Array.unsafe_set keys ins k;
        Array.unsafe_set t.vals ins v
      end
      else begin
        Array.unsafe_set keys i k;
        Array.unsafe_set t.vals i v;
        t.used <- t.used + 1
      end;
      t.live <- t.live + 1
    end
    else if kk = tombstone && ins < 0 then go ((i + 1) land mask) i
    else go ((i + 1) land mask) ins
  in
  go (index k mask) (-1)

let remove t k =
  let keys = t.keys in
  let mask = t.mask in
  let rec go i =
    let kk = Array.unsafe_get keys i in
    if kk = k then begin
      Array.unsafe_set keys i tombstone;
      Array.unsafe_set t.vals i (dummy ());
      t.live <- t.live - 1
    end
    else if kk <> empty_slot then go ((i + 1) land mask)
  in
  go (index k mask)

let iter f t =
  let keys = t.keys and vals = t.vals in
  for i = 0 to Array.length keys - 1 do
    let k = Array.unsafe_get keys i in
    if k >= 0 then f k (Array.unsafe_get vals i)
  done

let fold f t init =
  let keys = t.keys and vals = t.vals in
  let acc = ref init in
  for i = 0 to Array.length keys - 1 do
    let k = Array.unsafe_get keys i in
    if k >= 0 then acc := f k (Array.unsafe_get vals i) !acc
  done;
  !acc

let clear t =
  Array.fill t.keys 0 (Array.length t.keys) empty_slot;
  Array.fill t.vals 0 (Array.length t.vals) (dummy ());
  t.live <- 0;
  t.used <- 0
