(** Deterministic views over [Hashtbl].

    Bucket order is an implementation detail; these are the blessed way
    to iterate a table when the result can reach any output.  See
    docs/LINTS.md (the [determinism] pass). *)

val bindings : ('k, 'v) Hashtbl.t -> ('k * 'v) list
(** All bindings, in unspecified order — for order-independent
    consumers that sort or reduce commutatively themselves. *)

val sorted_bindings :
  ('k, 'v) Hashtbl.t -> cmp:('k -> 'k -> int) -> ('k * 'v) list
(** All bindings, sorted (stably) by key under [cmp]. *)

val sorted_keys : ('k, 'v) Hashtbl.t -> cmp:('k -> 'k -> int) -> 'k list
(** All keys, sorted under [cmp]. *)
