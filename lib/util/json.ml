type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg =
    raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos))
  in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let expect c =
    skip_ws ();
    if peek () = Some c then incr pos
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let pstring () =
    expect '"';
    let b = Buffer.create 16 in
    let finished = ref false in
    while not !finished do
      if !pos >= n then fail "unterminated string";
      (match s.[!pos] with
      | '"' -> finished := true
      | '\\' ->
          incr pos;
          if !pos >= n then fail "bad escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
              if !pos + 4 >= n then fail "bad unicode escape";
              (match int_of_string_opt ("0x" ^ String.sub s (!pos + 1) 4) with
              | Some code when code < 0x80 -> Buffer.add_char b (Char.chr code)
              | Some _ -> Buffer.add_char b '?'
              | None -> fail "bad unicode escape");
              pos := !pos + 4
          | _ -> fail "bad escape")
      | c -> Buffer.add_char b c);
      incr pos
    done;
    Buffer.contents b
  in
  let pnumber () =
    let start = !pos in
    while
      !pos < n
      &&
      match s.[!pos] with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    do
      incr pos
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> pobj ()
    | Some '[' -> parr ()
    | Some '"' -> Str (pstring ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> pnumber ()
    | _ -> fail "unexpected character"
  and pobj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then begin
      incr pos;
      Obj []
    end
    else begin
      let fields = ref [] in
      let continue_ = ref true in
      while !continue_ do
        skip_ws ();
        let k = pstring () in
        expect ':';
        let v = value () in
        fields := (k, v) :: !fields;
        skip_ws ();
        match peek () with
        | Some ',' -> incr pos
        | Some '}' ->
            incr pos;
            continue_ := false
        | _ -> fail "expected ',' or '}'"
      done;
      Obj (List.rev !fields)
    end
  and parr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then begin
      incr pos;
      Arr []
    end
    else begin
      let items = ref [] in
      let continue_ = ref true in
      while !continue_ do
        items := value () :: !items;
        skip_ws ();
        match peek () with
        | Some ',' -> incr pos
        | Some ']' ->
            incr pos;
            continue_ := false
        | _ -> fail "expected ',' or ']'"
      done;
      Arr (List.rev !items)
    end
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing content";
  v

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Shortest representation that parses back to the same float: whole
   numbers without a fraction, then 6 / 12 significant digits, falling
   back to the 17 digits that always round-trip. *)
let float_str f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else
    let try_fmt fmt =
      let s = Printf.sprintf fmt f in
      if float_of_string s = f then Some s else None
    in
    match try_fmt "%.6g" with
    | Some s -> s
    | None -> (
        match try_fmt "%.12g" with
        | Some s -> s
        | None -> Printf.sprintf "%.17g" f)

let num_str f =
  if Float.is_nan f || Float.abs f = Float.infinity then
    invalid_arg "Json.print: non-finite number"
  else float_str f

let rec to_inline = function
  | Null -> "null"
  | Bool true -> "true"
  | Bool false -> "false"
  | Num f -> num_str f
  | Str s -> "\"" ^ escape s ^ "\""
  | Arr [] -> "[]"
  | Arr xs -> "[" ^ String.concat ", " (List.map to_inline xs) ^ "]"
  | Obj [] -> "{}"
  | Obj kvs ->
      "{ "
      ^ String.concat ", "
          (List.map
             (fun (k, v) -> "\"" ^ escape k ^ "\": " ^ to_inline v)
             kvs)
      ^ " }"

let inline_width = 76

let print j =
  let buf = Buffer.create 256 in
  let pad indent = Buffer.add_string buf (String.make indent ' ') in
  let rec go indent j =
    let inl = to_inline j in
    if String.length inl + indent <= inline_width then
      Buffer.add_string buf inl
    else
      match j with
      | Arr xs ->
          Buffer.add_string buf "[\n";
          List.iteri
            (fun i x ->
              pad (indent + 2);
              go (indent + 2) x;
              if i < List.length xs - 1 then Buffer.add_char buf ',';
              Buffer.add_char buf '\n')
            xs;
          pad indent;
          Buffer.add_char buf ']'
      | Obj kvs ->
          Buffer.add_string buf "{\n";
          List.iteri
            (fun i (k, v) ->
              pad (indent + 2);
              Buffer.add_string buf ("\"" ^ escape k ^ "\": ");
              go (indent + 2) v;
              if i < List.length kvs - 1 then Buffer.add_char buf ',';
              Buffer.add_char buf '\n')
            kvs;
          pad indent;
          Buffer.add_char buf '}'
      | _ -> Buffer.add_string buf inl
  in
  go 0 j;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None

let load ~path = parse (In_channel.with_open_text path In_channel.input_all)

let save ~path j =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (print j))
