(* splitmix64 (Steele, Lea & Flood, OOPSLA'14) over unboxed state.

   The generator sits on the hot path of every simulated event (latency
   jitter, fault injection, workload key choice), and a [mutable int64]
   record field is a boxing trap: each write allocates a fresh 8-byte
   Int64 block and goes through [caml_modify].  The state is therefore
   kept as two immediate 32-bit halves ([s_hi], [s_lo]) in native ints;
   all arithmetic below is 32-bit-pair arithmetic and never allocates.

   The 64-bit multiplications are schoolbook products over 16-bit limbs:
   every partial product is at most [4 * (2^16 - 1)^2 < 2^34], so the
   running sums fit comfortably in OCaml's 63-bit native int with no
   overflow.  The sequence is bit-identical to the Int64 reference
   implementation (test/test_rng.ml keeps both honest). *)

let mask32 = 0xFFFFFFFF

type t = {
  mutable s_hi : int; (* state, bits 32..63 *)
  mutable s_lo : int; (* state, bits 0..31 *)
  mutable z_hi : int; (* last mixed output, bits 32..63 *)
  mutable z_lo : int; (* last mixed output, bits 0..31 *)
}

(* golden gamma 0x9E3779B97F4A7C15 *)
let gamma_hi = 0x9E3779B9
let gamma_lo = 0x7F4A7C15

(* multiplier 0xBF58476D1CE4E5B9, 16-bit limbs, least significant first *)
let m1_0 = 0xE5B9
let m1_1 = 0x1CE4
let m1_2 = 0x476D
let m1_3 = 0xBF58

(* multiplier 0x94D049BB133111EB, 16-bit limbs, least significant first *)
let m2_0 = 0x11EB
let m2_1 = 0x1331
let m2_2 = 0x49BB
let m2_3 = 0x94D0

let create ~seed =
  {
    s_hi = (seed asr 32) land mask32;
    s_lo = seed land mask32;
    z_hi = 0;
    z_lo = 0;
  }

(* Advance the counter and mix it into [z_hi]/[z_lo].  Straight-line on
   purpose: a helper returning a (hi, lo) pair would box a tuple per
   draw, which is exactly the allocation this representation removes. *)
let step t =
  (* state += gamma, with carry out of the low half *)
  let lo = t.s_lo + gamma_lo in
  let s_lo = lo land mask32 in
  let s_hi = (t.s_hi + gamma_hi + (lo lsr 32)) land mask32 in
  t.s_lo <- s_lo;
  t.s_hi <- s_hi;
  (* z ^= z >> 30 *)
  let x_hi = s_hi lxor (s_hi lsr 30) in
  let x_lo = s_lo lxor (((s_hi lsl 2) lor (s_lo lsr 30)) land mask32) in
  (* z *= 0xBF58476D1CE4E5B9 *)
  let a0 = x_lo land 0xFFFF and a1 = x_lo lsr 16 in
  let a2 = x_hi land 0xFFFF and a3 = x_hi lsr 16 in
  let p0 = a0 * m1_0 in
  let p1 = (a0 * m1_1) + (a1 * m1_0) + (p0 lsr 16) in
  let p2 = (a0 * m1_2) + (a1 * m1_1) + (a2 * m1_0) + (p1 lsr 16) in
  let p3 = (a0 * m1_3) + (a1 * m1_2) + (a2 * m1_1) + (a3 * m1_0) + (p2 lsr 16) in
  let y_lo = ((p1 land 0xFFFF) lsl 16) lor (p0 land 0xFFFF) in
  let y_hi = ((p3 land 0xFFFF) lsl 16) lor (p2 land 0xFFFF) in
  (* z ^= z >> 27 *)
  let w_hi = y_hi lxor (y_hi lsr 27) in
  let w_lo = y_lo lxor (((y_hi lsl 5) lor (y_lo lsr 27)) land mask32) in
  (* z *= 0x94D049BB133111EB *)
  let a0 = w_lo land 0xFFFF and a1 = w_lo lsr 16 in
  let a2 = w_hi land 0xFFFF and a3 = w_hi lsr 16 in
  let p0 = a0 * m2_0 in
  let p1 = (a0 * m2_1) + (a1 * m2_0) + (p0 lsr 16) in
  let p2 = (a0 * m2_2) + (a1 * m2_1) + (a2 * m2_0) + (p1 lsr 16) in
  let p3 = (a0 * m2_3) + (a1 * m2_2) + (a2 * m2_1) + (a3 * m2_0) + (p2 lsr 16) in
  let v_lo = ((p1 land 0xFFFF) lsl 16) lor (p0 land 0xFFFF) in
  let v_hi = ((p3 land 0xFFFF) lsl 16) lor (p2 land 0xFFFF) in
  (* z ^= z >> 31 *)
  t.z_hi <- v_hi lxor (v_hi lsr 31);
  t.z_lo <- v_lo lxor (((v_hi lsl 1) lor (v_lo lsr 31)) land mask32)

let bits64 t =
  step t;
  Int64.logor
    (Int64.shift_left (Int64.of_int t.z_hi) 32)
    (Int64.of_int t.z_lo)

let split t =
  step t;
  { s_hi = t.z_hi; s_lo = t.z_lo; z_hi = 0; z_lo = 0 }

let copy t = { s_hi = t.s_hi; s_lo = t.s_lo; z_hi = t.z_hi; z_lo = t.z_lo }

(* The top 62 bits of the output, a non-negative OCaml int. *)
let nonneg t =
  step t;
  (t.z_hi lsl 30) lor (t.z_lo lsr 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  nonneg t mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  (* The top 53 bits give a uniform float in [0, 1). *)
  step t;
  let mantissa = (t.z_hi lsl 21) lor (t.z_lo lsr 11) in
  bound *. (Float.of_int mantissa /. 9007199254740992.0)

let bool t =
  step t;
  t.z_lo land 1 = 1

let bernoulli t ~p = float t 1.0 < p

let exponential t ~mean =
  let u = float t 1.0 in
  (* Guard against log 0. *)
  let u = if u <= 0.0 then 1e-300 else u in
  -.mean *. log u

let gaussian t ~mu ~sigma =
  let u1 = float t 1.0 and u2 = float t 1.0 in
  let u1 = if u1 <= 0.0 then 1e-300 else u1 in
  let r = sqrt (-2.0 *. log u1) in
  mu +. (sigma *. r *. cos (2.0 *. Float.pi *. u2))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))
