(** Flat open-addressing hash map with non-negative int keys.

    A cache-friendly replacement for [(int, 'a) Hashtbl.t] in the
    simulator's per-object side tables: linear probing over two parallel
    flat arrays, multiplicative hashing, no per-binding allocation.
    Keys must be [>= 0] (negative values are reserved slot markers);
    {!set} raises [Invalid_argument] otherwise.

    Not thread-safe.  Iteration order is unspecified (as with
    [Hashtbl]) — callers that need determinism must sort, as
    [Env.names] does.  See docs/PERFORMANCE.md for the design. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** [capacity] is a size hint (default 16), rounded up to a power of
    two; the table grows as needed regardless. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val find : 'a t -> int -> 'a
(** Allocation-free lookup; raises [Not_found] when absent. *)

val find_opt : 'a t -> int -> 'a option
val mem : 'a t -> int -> bool

val set : 'a t -> int -> 'a -> unit
(** Insert or replace. *)

val remove : 'a t -> int -> unit
(** No-op when the key is absent. *)

val iter : (int -> 'a -> unit) -> 'a t -> unit
val fold : (int -> 'a -> 'b -> 'b) -> 'a t -> 'b -> 'b
val clear : 'a t -> unit
