(* Deterministic views over Hashtbl.

   OCaml's [Hashtbl.iter]/[Hashtbl.fold] visit buckets in an order that
   is an implementation detail, so any output built from a bare fold is
   one compiler upgrade away from changing — the determinism lint
   (docs/LINTS.md) flags every such use.  These helpers are the blessed
   alternative: one allowed fold, behind a total order the caller
   names.  Keys are assumed unique ([Hashtbl.replace]-style tables); a
   table built with shadowing [Hashtbl.add] gets every binding, sorted
   stably by key. *)

let bindings tbl =
  (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  [@dlint.allow
    "determinism: the one blessed fold — every caller orders the result \
     with the total order it passes to sorted_keys/sorted_bindings"])

let sorted_bindings tbl ~cmp =
  List.stable_sort (fun (ka, _) (kb, _) -> cmp ka kb) (bindings tbl)

let sorted_keys tbl ~cmp = List.map fst (sorted_bindings tbl ~cmp)
