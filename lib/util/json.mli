(** A minimal JSON reader and writer.

    One implementation serves every JSON artifact the repo produces or
    consumes — the benchmark summary ([Report]), the [bench_diff]
    regression gate, and the SimPlan codec — so the tools need no
    external JSON dependency and all files share one canonical layout.

    The reader is a strict recursive-descent parser (no trailing
    garbage, no comments).  The writer is deterministic: the same value
    always renders to the same bytes, which is what lets plan replay
    and summary diffing compare files byte-for-byte. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string
(** Raised by {!parse} / {!load} with a byte-offset diagnostic. *)

val parse : string -> t
(** Parse a complete JSON document.  Raises {!Parse_error}. *)

val print : t -> string
(** Render canonically, ending with a newline.  Values whose inline
    form is short render on one line; longer arrays and objects break
    across lines with two-space indentation.  Numbers print so that
    [parse (print (Num f)) = Num f] exactly (integers without a
    fractional part, other floats with just enough digits).  Raises
    [Invalid_argument] on non-finite numbers, which JSON cannot
    represent. *)

val escape : string -> string
(** The body of a JSON string literal for [s] (no surrounding quotes). *)

val member : string -> t -> t option
(** [member k (Obj ...)] is the field [k]; [None] on missing keys or
    non-objects. *)

val load : path:string -> t
(** {!parse} the contents of a file.  Raises {!Parse_error} or
    [Sys_error]. *)

val save : path:string -> t -> unit
(** Write [print t] to [path]. *)
