(** Priority queue keyed by (time, sequence).

    The simulation engine pops the earliest pending event on every step; the
    sequence number breaks ties so that events scheduled at the same instant
    fire in insertion order, which keeps simulations deterministic.

    Internally this is a hybrid calendar/flat-array structure: a FIFO ring
    for events at the current instant, fixed-width calendar buckets for the
    near-horizon window, and a flat binary heap as overflow for far-future
    timers.  Dispatch order is identical to a plain (time, seq) binary
    heap; see docs/PERFORMANCE.md for the design. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool
val length : 'a t -> int

val pushed : 'a t -> int
(** [pushed t] is the total number of pushes ever performed — the next
    sequence number.  Monotone; never reset by {!pop} or {!clear}'s
    draining.  The fabric uses it to prove no event was interleaved
    between two pushes when coalescing deliveries. *)

val push : 'a t -> time:float -> 'a -> unit
(** [push t ~time v] inserts [v] at priority [time]. *)

val pop : 'a t -> (float * 'a) option
(** [pop t] removes and returns the minimum-time element, FIFO among
    equal times. *)

val pop_exn : 'a t -> 'a
(** Allocation-free variant of {!pop}: returns the value alone and
    leaves its timestamp readable via {!last_time}.  Raises
    [Invalid_argument] on an empty queue. *)

val last_time : 'a t -> float
(** Time of the most recently popped element ([neg_infinity] before the
    first pop). *)

val peek_time : 'a t -> float option
(** [peek_time t] is the time of the next element without removing it. *)

val clear : 'a t -> unit
