(* Hybrid calendar/flat-array priority queue keyed by (time, sequence).

   The binary heap this module used to be spends most of its host time
   chasing pointers: every entry was a boxed {time; seq; value} record,
   and every sift compared through two indirections.  The discrete-event
   engine's push distribution is extremely skewed — almost every event is
   scheduled either at the current instant (suspend/resume trampolines)
   or a few microseconds ahead (fabric verbs, compute flushes) — so the
   rewrite splits pending events across four flat-array structures, all
   storing time/seq/value in parallel unboxed arrays:

   - a "now ring": FIFO of events at exactly one timestamp (the current
     instant).  Push and pop are O(1) array writes; this absorbs the
     resume-at-now storm that dominates engine traffic.
   - a calendar of [nb] fixed-width buckets covering a sliding
     near-horizon window.  Each bucket keeps its live region sorted by
     (time, seq) via binary-search insertion; buckets are consumed in
     index order.
   - an overflow binary heap for far-future timers (heartbeats, retry
     backoffs beyond the window) — flat parallel arrays, no boxing.
   - a tiny "early" heap for pushes behind the last popped time.  The
     engine never produces these (it rejects past schedules), but the
     queue stays a correct general-purpose structure.

   Dispatch order is identical to the old heap: pop always takes the
   global (time, seq) minimum across the four structures, and each
   structure yields its own entries in (time, seq) order.  Bucket
   routing is a monotone function of time (floats: subtraction and
   multiplication by a positive constant preserve <=), entries that
   would land in an already-drained bucket are clamped into the current
   one (where in-bucket sorting re-orders them correctly), and fresh
   pushes always carry the largest sequence number yet, so a
   time-only binary search finds their unique sorted slot. *)

(* Number of calendar buckets and the virtual-time width of each.  The
   window spans nb * width = 256 us — wide enough that fabric latencies
   (microseconds) and compute flush grains land in buckets, while
   heartbeat-scale timers overflow to the heap. *)
let nb = 1024

let width = 0.25e-6
let inv_width = 1.0 /. width

(* Dummy slot value for the uniform value arrays.  The arrays are
   created with an immediate value, so they are never flat float arrays
   and the polymorphic array primitives handle any ['a] stored later. *)
let dummy : 'a. unit -> 'a =
 fun () ->
  (Obj.magic ()
  [@dlint.allow
    "determinism: unread slot sentinel for pre-sized uniform arrays; \
     b_len guards every access so the dummy is never observed"])

type 'a bucket = {
  mutable b_time : float array;
  mutable b_seq : int array;
  mutable b_val : 'a array;
  mutable b_len : int;
  mutable b_off : int; (* consumed prefix (current bucket only) *)
}

type 'a heap = {
  mutable h_time : float array;
  mutable h_seq : int array;
  mutable h_val : 'a array;
  mutable h_len : int;
}

type 'a t = {
  mutable next_seq : int;
  mutable count : int;
  mutable cur_time : float; (* time of the last popped entry *)
  (* Now ring: all entries share [now_time]; seqs are FIFO. *)
  mutable now_time : float;
  mutable now_seq : int array;
  mutable now_val : 'a array;
  mutable now_head : int;
  mutable now_len : int;
  (* Calendar window [win_lo, win_hi) over buckets [0, nb). *)
  buckets : 'a bucket array;
  mutable win_lo : float;
  mutable win_hi : float; (* neg_infinity = no window *)
  mutable cb : int; (* current (lowest live) bucket index *)
  mutable cal_count : int; (* unconsumed entries across all buckets *)
  heap : 'a heap; (* overflow: far-future timers *)
  early : 'a heap; (* pushes behind cur_time (engine never) *)
}

let make_heap () =
  { h_time = [||]; h_seq = [||]; h_val = [||]; h_len = 0 }

let create () =
  {
    next_seq = 0;
    count = 0;
    cur_time = neg_infinity;
    now_time = neg_infinity;
    now_seq = [||];
    now_val = [||];
    now_head = 0;
    now_len = 0;
    buckets =
      Array.init nb (fun _ ->
          { b_time = [||]; b_seq = [||]; b_val = [||]; b_len = 0; b_off = 0 });
    win_lo = infinity;
    win_hi = neg_infinity;
    cb = 0;
    cal_count = 0;
    heap = make_heap ();
    early = make_heap ();
  }

let is_empty t = t.count = 0
let length t = t.count
let pushed t = t.next_seq

(* ---------------- flat binary heap (overflow / early) ---------------- *)

let heap_grow h =
  let cap = max 16 (2 * Array.length h.h_time) in
  let nt = Array.make cap 0.0
  and ns = Array.make cap 0
  and nv = Array.make cap (dummy ()) in
  Array.blit h.h_time 0 nt 0 h.h_len;
  Array.blit h.h_seq 0 ns 0 h.h_len;
  Array.blit h.h_val 0 nv 0 h.h_len;
  h.h_time <- nt;
  h.h_seq <- ns;
  h.h_val <- nv

let heap_push h ~time ~seq v =
  if h.h_len = Array.length h.h_time then heap_grow h;
  let tm = h.h_time and sq = h.h_seq and vl = h.h_val in
  (* Sift up with a hole instead of repeated swaps. *)
  let i = ref h.h_len in
  h.h_len <- h.h_len + 1;
  let continue_ = ref true in
  while !continue_ && !i > 0 do
    let p = (!i - 1) / 2 in
    if time < tm.(p) || (time = tm.(p) && seq < sq.(p)) then begin
      tm.(!i) <- tm.(p);
      sq.(!i) <- sq.(p);
      vl.(!i) <- vl.(p);
      i := p
    end
    else continue_ := false
  done;
  tm.(!i) <- time;
  sq.(!i) <- seq;
  vl.(!i) <- v

(* Remove the root; the caller has already read it. *)
let heap_drop h =
  let n = h.h_len - 1 in
  h.h_len <- n;
  let tm = h.h_time and sq = h.h_seq and vl = h.h_val in
  if n > 0 then begin
    let time = tm.(n) and seq = sq.(n) and v = vl.(n) in
    let i = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      let l = (2 * !i) + 1 in
      if l >= n then continue_ := false
      else begin
        let r = l + 1 in
        let c =
          if
            r < n
            && (tm.(r) < tm.(l) || (tm.(r) = tm.(l) && sq.(r) < sq.(l)))
          then r
          else l
        in
        if tm.(c) < time || (tm.(c) = time && sq.(c) < seq) then begin
          tm.(!i) <- tm.(c);
          sq.(!i) <- sq.(c);
          vl.(!i) <- vl.(c);
          i := c
        end
        else continue_ := false
      end
    done;
    tm.(!i) <- time;
    sq.(!i) <- seq;
    vl.(!i) <- v
  end;
  vl.(n) <- dummy ()

(* ------------------------------ buckets ------------------------------ *)

let bucket_grow b =
  let live = b.b_len - b.b_off in
  let cap = max 8 (2 * live) in
  let nt = Array.make cap 0.0
  and ns = Array.make cap 0
  and nv = Array.make cap (dummy ()) in
  Array.blit b.b_time b.b_off nt 0 live;
  Array.blit b.b_seq b.b_off ns 0 live;
  Array.blit b.b_val b.b_off nv 0 live;
  b.b_time <- nt;
  b.b_seq <- ns;
  b.b_val <- nv;
  b.b_len <- live;
  b.b_off <- 0

(* Append at the end without searching: used by heap migration, which
   feeds entries in ascending (time, seq) order. *)
let bucket_append b ~time ~seq v =
  if b.b_len = Array.length b.b_time then bucket_grow b;
  b.b_time.(b.b_len) <- time;
  b.b_seq.(b.b_len) <- seq;
  b.b_val.(b.b_len) <- v;
  b.b_len <- b.b_len + 1

(* Sorted insert.  The entry carries the largest sequence number ever
   issued, so its slot is after every entry with time <= [time]: a
   binary search on time alone finds it. *)
let bucket_insert b ~time ~seq v =
  if b.b_len = Array.length b.b_time then bucket_grow b;
  let lo = ref b.b_off and hi = ref b.b_len in
  let tm = b.b_time in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if tm.(mid) <= time then lo := mid + 1 else hi := mid
  done;
  let pos = !lo in
  let tail = b.b_len - pos in
  if tail > 0 then begin
    Array.blit b.b_time pos b.b_time (pos + 1) tail;
    Array.blit b.b_seq pos b.b_seq (pos + 1) tail;
    Array.blit b.b_val pos b.b_val (pos + 1) tail
  end;
  b.b_time.(pos) <- time;
  b.b_seq.(pos) <- seq;
  b.b_val.(pos) <- v;
  b.b_len <- b.b_len + 1

(* ------------------------------ now ring ----------------------------- *)

let ring_grow t =
  let cap = max 16 (2 * Array.length t.now_seq) in
  let ns = Array.make cap 0 and nv = Array.make cap (dummy ()) in
  let old_cap = Array.length t.now_seq in
  for i = 0 to t.now_len - 1 do
    let j = (t.now_head + i) land (old_cap - 1) in
    ns.(i) <- t.now_seq.(j);
    nv.(i) <- t.now_val.(j)
  done;
  t.now_seq <- ns;
  t.now_val <- nv;
  t.now_head <- 0

let ring_push t ~seq v =
  if t.now_len = Array.length t.now_seq then ring_grow t;
  let slot = (t.now_head + t.now_len) land (Array.length t.now_seq - 1) in
  t.now_seq.(slot) <- seq;
  t.now_val.(slot) <- v;
  t.now_len <- t.now_len + 1

(* ------------------------------- push ------------------------------- *)

let bucket_index t time = int_of_float ((time -. t.win_lo) *. inv_width)

let push t ~time value =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  t.count <- t.count + 1;
  if t.now_len > 0 then begin
    if time = t.now_time then ring_push t ~seq value
    else if time < t.cur_time then heap_push t.early ~time ~seq value
    else if time < t.win_hi then begin
      let i = bucket_index t time in
      let i = if i < t.cb then t.cb else i in
      bucket_insert t.buckets.(i) ~time ~seq value;
      t.cal_count <- t.cal_count + 1
    end
    else if t.cal_count = 0 && time > t.cur_time then begin
      (* Re-anchor an exhausted (or absent) window at the current time. *)
      t.win_lo <- (if t.cur_time > neg_infinity then t.cur_time else time);
      t.win_hi <- t.win_lo +. (float_of_int nb *. width);
      t.cb <- 0;
      if time < t.win_hi then begin
        bucket_insert t.buckets.(bucket_index t time) ~time ~seq value;
        t.cal_count <- 1
      end
      else heap_push t.heap ~time ~seq value
    end
    else heap_push t.heap ~time ~seq value
  end
  else if time = t.cur_time then begin
    t.now_time <- time;
    ring_push t ~seq value
  end
  else if time < t.cur_time then heap_push t.early ~time ~seq value
  else if time < t.win_hi then begin
    let i = bucket_index t time in
    let i = if i < t.cb then t.cb else i in
    bucket_insert t.buckets.(i) ~time ~seq value;
    t.cal_count <- t.cal_count + 1
  end
  else if t.cal_count = 0 then begin
    t.win_lo <- (if t.cur_time > neg_infinity then t.cur_time else time);
    t.win_hi <- t.win_lo +. (float_of_int nb *. width);
    t.cb <- 0;
    if time < t.win_hi then begin
      bucket_insert t.buckets.(bucket_index t time) ~time ~seq value;
      t.cal_count <- 1
    end
    else heap_push t.heap ~time ~seq value
  end
  else heap_push t.heap ~time ~seq value

(* ------------------------------- pop -------------------------------- *)

(* All remaining entries sit in the overflow heap: re-anchor the window
   at the heap minimum and migrate everything inside it into buckets.
   Heap pops come out in ascending (time, seq) order, so plain appends
   keep every bucket sorted. *)
let migrate t =
  t.win_lo <- t.heap.h_time.(0);
  t.win_hi <- t.win_lo +. (float_of_int nb *. width);
  t.cb <- 0;
  let continue_ = ref true in
  while !continue_ && t.heap.h_len > 0 do
    let time = t.heap.h_time.(0) in
    if time >= t.win_hi then continue_ := false
    else begin
      let i = bucket_index t time in
      if i >= nb then continue_ := false
      else begin
        bucket_append t.buckets.(i) ~time ~seq:t.heap.h_seq.(0)
          t.heap.h_val.(0);
        t.cal_count <- t.cal_count + 1;
        heap_drop t.heap
      end
    end
  done

(* Advance [cb] to the lowest bucket with live entries; caller ensures
   [cal_count > 0]. *)
let advance_cb t =
  let b = ref t.buckets.(t.cb) in
  while (!b).b_off >= (!b).b_len do
    (!b).b_len <- 0;
    (!b).b_off <- 0;
    t.cb <- t.cb + 1;
    b := t.buckets.(t.cb)
  done;
  !b

(* Candidate sources for the global minimum. *)
let src_none = 0

let src_early = 1
let src_now = 2
let src_bucket = 3
let src_heap = 4

(* Remove and return the global (time, seq) minimum; caller ensures
   [count > 0].  Allocation-free: the popped time is left in
   [cur_time] for the engine to read. *)
let pop_exn t =
  if t.count = 0 then invalid_arg "Pqueue.pop_exn: empty queue";
  if
    t.now_len = 0 && t.early.h_len = 0 && t.cal_count = 0
    && t.heap.h_len >= 4
  then migrate t;
  let best_time = ref infinity
  and best_seq = ref max_int
  and src = ref src_none in
  if t.early.h_len > 0 then begin
    best_time := t.early.h_time.(0);
    best_seq := t.early.h_seq.(0);
    src := src_early
  end;
  if
    t.now_len > 0
    && (t.now_time < !best_time
       || (t.now_time = !best_time && t.now_seq.(t.now_head) < !best_seq))
  then begin
    best_time := t.now_time;
    best_seq := t.now_seq.(t.now_head);
    src := src_now
  end;
  let b = if t.cal_count > 0 then advance_cb t else t.buckets.(0) in
  if t.cal_count > 0 then begin
    let bt = b.b_time.(b.b_off) and bs = b.b_seq.(b.b_off) in
    if bt < !best_time || (bt = !best_time && bs < !best_seq) then begin
      best_time := bt;
      best_seq := bs;
      src := src_bucket
    end
  end;
  if
    t.heap.h_len > 0
    && (t.heap.h_time.(0) < !best_time
       || (t.heap.h_time.(0) = !best_time && t.heap.h_seq.(0) < !best_seq))
  then begin
    best_time := t.heap.h_time.(0);
    best_seq := t.heap.h_seq.(0);
    src := src_heap
  end;
  let v =
    if !src = src_now then begin
      let v = t.now_val.(t.now_head) in
      t.now_val.(t.now_head) <- dummy ();
      t.now_head <- (t.now_head + 1) land (Array.length t.now_seq - 1);
      t.now_len <- t.now_len - 1;
      v
    end
    else if !src = src_bucket then begin
      let v = b.b_val.(b.b_off) in
      b.b_val.(b.b_off) <- dummy ();
      b.b_off <- b.b_off + 1;
      t.cal_count <- t.cal_count - 1;
      v
    end
    else if !src = src_heap then begin
      let v = t.heap.h_val.(0) in
      heap_drop t.heap;
      v
    end
    else begin
      let v = t.early.h_val.(0) in
      heap_drop t.early;
      v
    end
  in
  t.cur_time <- !best_time;
  t.count <- t.count - 1;
  v

let last_time t = t.cur_time

let pop t =
  if t.count = 0 then None
  else begin
    let v = pop_exn t in
    Some (t.cur_time, v)
  end

let peek_time t =
  if t.count = 0 then None
  else begin
    if
      t.now_len = 0 && t.early.h_len = 0 && t.cal_count = 0
      && t.heap.h_len >= 4
    then migrate t;
    let best = ref infinity in
    if t.early.h_len > 0 then best := t.early.h_time.(0);
    if t.now_len > 0 && t.now_time < !best then best := t.now_time;
    if t.cal_count > 0 then begin
      let b = advance_cb t in
      if b.b_time.(b.b_off) < !best then best := b.b_time.(b.b_off)
    end;
    if t.heap.h_len > 0 && t.heap.h_time.(0) < !best then
      best := t.heap.h_time.(0);
    Some !best
  end

let clear t =
  t.count <- 0;
  t.cur_time <- neg_infinity;
  t.now_time <- neg_infinity;
  t.now_seq <- [||];
  t.now_val <- [||];
  t.now_head <- 0;
  t.now_len <- 0;
  Array.iter
    (fun b ->
      b.b_time <- [||];
      b.b_seq <- [||];
      b.b_val <- [||];
      b.b_len <- 0;
      b.b_off <- 0)
    t.buckets;
  t.win_lo <- infinity;
  t.win_hi <- neg_infinity;
  t.cb <- 0;
  t.cal_count <- 0;
  t.heap.h_time <- [||];
  t.heap.h_seq <- [||];
  t.heap.h_val <- [||];
  t.heap.h_len <- 0;
  t.early.h_time <- [||];
  t.early.h_seq <- [||];
  t.early.h_val <- [||];
  t.early.h_len <- 0
