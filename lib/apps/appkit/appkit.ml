module Ctx = Drust_machine.Ctx
module Cluster = Drust_machine.Cluster
module Engine = Drust_sim.Engine
module Univ = Drust_util.Univ

type result = {
  ops : float;
  elapsed : float;
  throughput : float;
  extra : (string * float) list;
}

(* Measurement start markers, kept in the cluster environment and keyed
   by thread id of the main process. *)
let marks_key : (int, float) Hashtbl.t Drust_machine.Env.key =
  Drust_machine.Env.key ~name:"appkit.marks"

let marks cluster =
  Drust_machine.Env.get (Cluster.env cluster) marks_key ~init:(fun () ->
      Hashtbl.create 8)

let start_measurement ctx =
  Hashtbl.replace
    (marks (Ctx.cluster ctx))
    ctx.Ctx.thread_id
    (Engine.now (Ctx.engine ctx))

let run_main cluster body =
  let engine = Cluster.engine cluster in
  let outcome = ref None in
  ignore
    (Engine.spawn engine (fun () ->
         let ctx = Ctx.make cluster ~node:0 in
         let t0 = Engine.now engine in
         Hashtbl.replace (marks cluster) ctx.Ctx.thread_id t0;
         let ops, extra = body ctx in
         Ctx.flush ctx;
         let started = Hashtbl.find (marks cluster) ctx.Ctx.thread_id in
         Hashtbl.remove (marks cluster) ctx.Ctx.thread_id;
         let elapsed = Engine.now engine -. started in
         outcome := Some (ops, elapsed, extra)));
  Cluster.run cluster;
  match !outcome with
  | None -> failwith "Appkit.run_main: main thread did not finish"
  | Some (ops, elapsed, extra) ->
      let elapsed = Float.max elapsed 1e-12 in
      { ops; elapsed; throughput = ops /. elapsed; extra }

let spread cluster ~workers =
  let alive = Array.of_list (Cluster.alive_nodes cluster) in
  if Array.length alive = 0 then invalid_arg "Appkit.spread: no node alive";
  Array.init workers (fun i -> alive.(i mod Array.length alive))

let blob_tag : unit Univ.tag = Univ.create_tag ~name:"appkit.blob"
let blob = Univ.pack blob_tag ()

let int_tag : int Univ.tag = Univ.create_tag ~name:"appkit.int"
let payload_of_int v = Univ.pack int_tag v
let int_of_payload u = Univ.unpack_exn int_tag u
