(** Flight recorder: an always-on, bounded, per-node black box.

    Every cluster owns one {!t} (see [Cluster.flight]).  The protocol,
    the fabric, the membership/replication layers, the fault plan, and
    the DSan sanitizer record compact structured events into per-node
    ring buffers through {!record} — preallocated unboxed arrays, no
    per-event allocation, so the always-on cost on the untraced hot
    path stays negligible and recording never perturbs the simulation
    (no engine, RNG, or heap access: instrumented runs stay
    bit-identical).

    On a failure — a DSan violation, an uncaught workload exception, or
    a fuzz finding — the ring contents are written as a versioned
    [*.flight.json] dump ([drust-flight/v1], shared [lib/util/json]
    codec): the last N events per node, merged in true record order,
    plus a causal slice for the offending object.  [bench/main.exe
    forensics] and [bin/drust_sim.exe --explain] reconstruct per-object
    ownership/cache/epoch timelines from a dump alone (no re-run); the
    rendering lives here ({!explain_object}, {!render_last}) so both
    CLIs and the live-ring path share it.

    Schema and field table: docs/FORENSICS.md (cross-checked against
    {!field_names} by [tools/check_docs.ml], check 9). *)

(** {1 Event kinds}

    Dense int codes.  Codes [0..8] are exactly the protocol's dense
    op-kind codes (in [Protocol.op_latency_kinds] order) so the
    protocol records its op outcome code untranslated. *)

val k_read_local : int
val k_read_cached : int
val k_read_fetch : int
val k_read_remote : int
val k_write_inplace : int
val k_write_bump : int
val k_write_move : int
val k_transfer : int
val k_drop : int
val k_create : int
val k_fab_read : int
val k_fab_write : int
val k_fab_atomic : int
val k_fab_rpc : int
val k_fab_send : int
val k_fab_timeout : int
val k_fab_retry : int
val k_fab_drop : int
val k_fab_stale_epoch : int
val k_view_change : int
val k_handoff_prepare : int
val k_handoff_commit : int
val k_handoff_abort : int
val k_chain_reseed : int
val k_node_failed : int
val k_promoted : int
val k_fault_crash : int
val k_fault_partition : int
val k_fault_degrade : int
val k_dsan_violation : int

val kind_names : string array
(** Stable display names, indexed by kind code. *)

(** {1 Recording} *)

type t

val create : ?cap:int -> ?metrics:Metrics.t -> nodes:int -> unit -> t
(** A recorder with [nodes] rings of [cap] (default 256) slots each,
    allocated once up front.  When [metrics] is given, registers the
    [flight.events] / [flight.dumps] counters there. *)

val record :
  t -> node:int -> time:float -> kind:int -> a:int -> b:int -> c:int -> d:int
  -> unit
(** Append one event to [node]'s ring (overwriting the oldest once
    full).  Array stores only — no allocation beyond the caller's
    float argument.  Out-of-range nodes and disabled recorders drop
    the event.  [a..d] are kind-specific payload fields; for object
    events [a] is the physical (color-cleared) address as an int.
    Field semantics per kind: docs/FORENSICS.md. *)

val set_enabled : t -> bool -> unit
val enabled : t -> bool

val set_label : t -> string -> unit
(** The dump label (and auto-dump file stem) — the SimPlan name of the
    run, set by [Simplan.execute]. *)

val label : t -> string
val node_count : t -> int
val capacity : t -> int
val recorded : t -> node:int -> int
(** Events ever recorded on [node]'s ring (may exceed {!capacity}). *)

(** {1 Events and dumps} *)

type event = {
  ev_time : float;  (** virtual time *)
  ev_node : int;
  ev_kind : int;
  ev_a : int;
  ev_b : int;
  ev_c : int;
  ev_d : int;
}

type dump = {
  dm_label : string;
  dm_reason : string;
  dm_nodes : int;
  dm_ring : int;
  dm_time : float;  (** virtual time the dump was taken *)
  dm_object : int option;  (** offending physical address, if any *)
  dm_events : event list;  (** retained events, true record order *)
  dm_slice : event list;  (** causal slice for [dm_object] *)
}

val events : t -> event list
(** Retained ring contents, all nodes merged in true record order. *)

val dump : t -> reason:string -> ?object_:int -> now:float -> unit -> dump

val object_slice : ?object_:int -> event list -> event list
(** The causal slice: events about the given physical address (object
    events whose address fields match, plus DSan violations attributed
    to it).  [None] → empty. *)

val schema : string
(** ["drust-flight/v1"]. *)

val field_names : string list
(** Every field name of the dump JSON encoding, top-level and
    per-event — the docs/FORENSICS.md table is checked against this. *)

val to_json : dump -> Drust_util.Json.t
val of_json : Drust_util.Json.t -> (dump, string) result
val save : path:string -> dump -> unit
val load : path:string -> (dump, string) result

(** {1 Automatic dumps} *)

val set_auto_dump : bool -> unit
(** Process-wide switch (default on): whether failures write a
    [<label>.flight.json] automatically. *)

val set_dump_dir : string option -> unit
(** Directory auto-dumps are written into (default: cwd). *)

val auto_dump_path : t -> string
(** Where {!auto_dump} writes: [<dump_dir>/<label>.flight.json]. *)

val auto_dump : t -> reason:string -> ?object_:int -> now:float -> unit -> bool
(** Write the dump file if auto-dumping is on and this recorder has
    not dumped yet (first failure wins: later violations would
    overwrite the ring tail that explains the first).  Returns whether
    a file was written. *)

val guard : t -> now:(unit -> float) -> (unit -> 'a) -> 'a
(** Run a workload; on any exception, {!auto_dump} with the exception
    as reason, then re-raise.  [Simplan.execute] wraps every workload
    in this, which is what turns uncaught experiment exceptions and
    expectation failures into dumps. *)

(** {1 Timelines (the forensics renderers)} *)

val pp_event : Format.formatter -> event -> unit

val explain_object : ?object_:int -> event list -> string list
(** The per-object timeline: one line per causal-slice event —
    creation, every move/fetch/invalidation, ownership transfers,
    promotions of its home range, the drop, and any DSan violation —
    plus derived cache-staleness notes ("copies cached under color c
    on nodes [...] went stale here").  Works on dump events or live
    ring events alike. *)

val render_last : ?limit:int -> event list -> node:int -> string list
(** The per-node black-box view: the last [limit] (default 50) events
    of [node] before the dump, oldest first. *)
