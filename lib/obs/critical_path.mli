(** Critical-path profiler over the causal span graph.

    Given the finished events of a traced run ({!Span.events}), this
    module reassembles each operation's span tree via the [parent] ids
    and attributes the root's end-to-end latency to named {e segments}:

    - [Queue] — waiting for a core ([cpu.queue]) or a NIC ([net.queue]);
    - [Wire] — propagation + transmission time ([net.wire]);
    - [Serialize] — NIC serialization of bulk payloads ([net.serialize]);
    - [Compute] — charged application/compute cycles ([cpu.compute],
      [app]);
    - [Protocol] — everything else: verb bookkeeping, protocol state
      machine, controller work.

    Attribution assigns each span its {e self time} (duration minus the
    sum of its direct children's durations) so the per-segment totals
    telescope — their sum equals the root span's duration by
    construction, an invariant the test suite enforces.  Output is
    deterministic: it depends only on the recorded events, never on
    wall-clock or domain scheduling, so [--jobs 1] and [--jobs 4] runs
    render identical reports. *)

type segment = Queue | Wire | Serialize | Protocol | Compute

val all_segments : segment list
(** Fixed rendering order. *)

val segment_name : segment -> string

val segment_of_category : string -> segment
(** The category -> segment mapping documented above; unknown
    categories attribute to [Protocol]. *)

type path = {
  root : Span.event;
  total : float;  (** end-to-end duration of the root span, seconds *)
  segments : (segment * float) list;
      (** one entry per {!all_segments} member, in order; entries can be
          0 (segment absent from this operation) *)
  node_count : int;  (** events in the subtree, root included *)
}

val segments_sum : path -> float
(** Sum of all segment durations; equals [total] up to float rounding. *)

val analyze : ?is_root:(Span.event -> bool) -> Span.event list -> path list
(** One {!path} per [Complete] event satisfying [is_root] (default:
    [parent = 0]), in event-recording order.  Children are located by
    [parent] id within the same event list. *)

val top_k : int -> path list -> path list
(** Longest first; ties broken by (start time, id) so the order is
    deterministic. *)

val pp : Format.formatter -> path -> unit
(** Root line plus one indented line per non-zero segment with
    microseconds and percentage of total. *)

val to_string : path -> string

val report : ?k:int -> ?is_root:(Span.event -> bool) -> Span.event list -> string
(** [analyze] + [top_k] + render: the top-[k] (default 10) critical
    paths as numbered text blocks. *)
