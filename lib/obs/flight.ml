module Json = Drust_util.Json

(* ------------------------------------------------------------------ *)
(* Event kinds.  Codes 0..8 mirror the protocol's dense op-kind codes
   (Protocol.op_latency_kinds order) verbatim, so the protocol layer
   records its already-computed outcome code with no translation —
   test/test_flight.ml pins the two tables against each other. *)

let k_read_local = 0
let k_read_cached = 1
let k_read_fetch = 2
let k_read_remote = 3
let k_write_inplace = 4
let k_write_bump = 5
let k_write_move = 6
let k_transfer = 7
let k_drop = 8
let k_create = 9
let k_fab_read = 10
let k_fab_write = 11
let k_fab_atomic = 12
let k_fab_rpc = 13
let k_fab_send = 14
let k_fab_timeout = 15
let k_fab_retry = 16
let k_fab_drop = 17
let k_fab_stale_epoch = 18
let k_view_change = 19
let k_handoff_prepare = 20
let k_handoff_commit = 21
let k_handoff_abort = 22
let k_chain_reseed = 23
let k_node_failed = 24
let k_promoted = 25
let k_fault_crash = 26
let k_fault_partition = 27
let k_fault_degrade = 28
let k_dsan_violation = 29

let kind_names =
  [|
    "read_local";
    "read_cached";
    "read_fetch";
    "read_remote";
    "write_inplace";
    "write_bump";
    "write_move";
    "transfer";
    "drop";
    "create";
    "fab_read";
    "fab_write";
    "fab_atomic";
    "fab_rpc";
    "fab_send";
    "fab_timeout";
    "fab_retry";
    "fab_drop";
    "fab_stale_epoch";
    "view_change";
    "handoff_prepare";
    "handoff_commit";
    "handoff_abort";
    "chain_reseed";
    "node_failed";
    "promoted";
    "fault_crash";
    "fault_partition";
    "fault_degrade";
    "dsan_violation";
  |]

let kind_name k =
  if k >= 0 && k < Array.length kind_names then kind_names.(k)
  else Printf.sprintf "kind_%d" k

(* ------------------------------------------------------------------ *)
(* The recorder: per-node rings laid out as flat parallel arrays, one
   allocation each at create time.  [times] is a float array (unboxed
   storage), everything else untagged ints; a record is seven array
   stores plus two counter bumps. *)

type t = {
  nodes : int;
  cap : int;
  times : float array;  (* nodes * cap, ring-indexed *)
  kinds : int array;
  fa : int array;
  fb : int array;
  fc : int array;
  fd : int array;
  seqs : int array;  (* global record order, for the cross-node merge *)
  counts : int array;  (* per-node events ever recorded *)
  mutable seq : int;
  mutable enabled : bool;
  mutable label : string;
  mutable dumped : bool;
  c_events : Metrics.counter option;
  c_dumps : Metrics.counter option;
}

let create ?(cap = 256) ?metrics ~nodes () =
  if nodes < 1 || cap < 1 then invalid_arg "Flight.create";
  let counter name help =
    Option.map (fun m -> Metrics.counter m ~unit_:"ops" ~help name) metrics
  in
  {
    nodes;
    cap;
    times = Array.make (nodes * cap) 0.0;
    kinds = Array.make (nodes * cap) (-1);
    fa = Array.make (nodes * cap) 0;
    fb = Array.make (nodes * cap) 0;
    fc = Array.make (nodes * cap) 0;
    fd = Array.make (nodes * cap) 0;
    seqs = Array.make (nodes * cap) 0;
    counts = Array.make nodes 0;
    seq = 0;
    enabled = true;
    label = "unlabeled";
    dumped = false;
    c_events = counter "flight.events" "events recorded into the black-box rings";
    c_dumps = counter "flight.dumps" "flight dumps written on failure";
  }

let[@inline] record t ~node ~time ~kind ~a ~b ~c ~d =
  if t.enabled && node >= 0 && node < t.nodes then begin
    let n = Array.unsafe_get t.counts node in
    let i = (node * t.cap) + (n mod t.cap) in
    Array.unsafe_set t.times i time;
    Array.unsafe_set t.kinds i kind;
    Array.unsafe_set t.fa i a;
    Array.unsafe_set t.fb i b;
    Array.unsafe_set t.fc i c;
    Array.unsafe_set t.fd i d;
    Array.unsafe_set t.seqs i t.seq;
    t.seq <- t.seq + 1;
    Array.unsafe_set t.counts node (n + 1);
    match t.c_events with None -> () | Some c -> Metrics.incr c
  end

let set_enabled t b = t.enabled <- b
let enabled t = t.enabled
let set_label t l = t.label <- l
let label t = t.label
let node_count t = t.nodes
let capacity t = t.cap
let recorded t ~node = t.counts.(node)

(* ------------------------------------------------------------------ *)
(* Events and dumps *)

type event = {
  ev_time : float;
  ev_node : int;
  ev_kind : int;
  ev_a : int;
  ev_b : int;
  ev_c : int;
  ev_d : int;
}

type dump = {
  dm_label : string;
  dm_reason : string;
  dm_nodes : int;
  dm_ring : int;
  dm_time : float;
  dm_object : int option;
  dm_events : event list;
  dm_slice : event list;
}

let events t =
  let out = ref [] in
  for node = 0 to t.nodes - 1 do
    let n = t.counts.(node) in
    let kept = min n t.cap in
    for j = n - kept to n - 1 do
      let i = (node * t.cap) + (j mod t.cap) in
      out :=
        ( t.seqs.(i),
          {
            ev_time = t.times.(i);
            ev_node = node;
            ev_kind = t.kinds.(i);
            ev_a = t.fa.(i);
            ev_b = t.fb.(i);
            ev_c = t.fc.(i);
            ev_d = t.fd.(i);
          } )
        :: !out
    done
  done;
  (* The per-event global sequence number restores true record order
     across nodes — times alone tie constantly (many events share one
     engine timestamp). *)
  List.sort (fun (a, _) (b, _) -> Int.compare a b) !out |> List.map snd

(* Is this an event *about* a specific object (physical address)? *)
let about ~phys e =
  let k = e.ev_kind in
  if (k >= k_read_local && k <= k_drop) || k = k_create then
    e.ev_a = phys || ((k = k_write_bump || k = k_write_move) && e.ev_b = phys)
  else k = k_dsan_violation && e.ev_a = phys

let object_slice ?object_ evs =
  match object_ with
  | None -> []
  | Some phys -> List.filter (about ~phys) evs

let dump t ~reason ?object_ ~now () =
  let evs = events t in
  {
    dm_label = t.label;
    dm_reason = reason;
    dm_nodes = t.nodes;
    dm_ring = t.cap;
    dm_time = now;
    dm_object = object_;
    dm_events = evs;
    dm_slice = object_slice ?object_ evs;
  }

(* ------------------------------------------------------------------ *)
(* JSON codec (drust-flight/v1) *)

let schema = "drust-flight/v1"

let field_names =
  [
    "schema";
    "label";
    "reason";
    "nodes";
    "ring";
    "time";
    "object";
    "events";
    "slice";
    "t";
    "node";
    "kind";
    "a";
    "b";
    "c";
    "d";
  ]

let event_to_json e =
  Json.Obj
    [
      ("t", Json.Num e.ev_time);
      ("node", Json.Num (float_of_int e.ev_node));
      ("kind", Json.Str (kind_name e.ev_kind));
      ("a", Json.Num (float_of_int e.ev_a));
      ("b", Json.Num (float_of_int e.ev_b));
      ("c", Json.Num (float_of_int e.ev_c));
      ("d", Json.Num (float_of_int e.ev_d));
    ]

let to_json d =
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("label", Json.Str d.dm_label);
      ("reason", Json.Str d.dm_reason);
      ("nodes", Json.Num (float_of_int d.dm_nodes));
      ("ring", Json.Num (float_of_int d.dm_ring));
      ("time", Json.Num d.dm_time);
      ( "object",
        match d.dm_object with
        | None -> Json.Null
        | Some p -> Json.Num (float_of_int p) );
      ("events", Json.Arr (List.map event_to_json d.dm_events));
      ("slice", Json.Arr (List.map event_to_json d.dm_slice));
    ]

let kind_of_name s =
  let rec go i =
    if i >= Array.length kind_names then None
    else if String.equal kind_names.(i) s then Some i
    else go (i + 1)
  in
  go 0

let of_json j =
  let ( let* ) = Result.bind in
  let str k =
    match Json.member k j with
    | Some (Json.Str s) -> Ok s
    | _ -> Error (Printf.sprintf "flight dump: missing string field %S" k)
  in
  let num k o =
    match Json.member k o with
    | Some (Json.Num v) -> Ok v
    | _ -> Error (Printf.sprintf "flight dump: missing number field %S" k)
  in
  let event e =
    let* t = num "t" e in
    let* node = num "node" e in
    let* kind =
      match Json.member "kind" e with
      | Some (Json.Str s) -> (
          match kind_of_name s with
          | Some k -> Ok k
          | None -> Error (Printf.sprintf "flight dump: unknown kind %S" s))
      | _ -> Error "flight dump: event without a \"kind\""
    in
    let* a = num "a" e in
    let* b = num "b" e in
    let* c = num "c" e in
    let* d = num "d" e in
    Ok
      {
        ev_time = t;
        ev_node = int_of_float node;
        ev_kind = kind;
        ev_a = int_of_float a;
        ev_b = int_of_float b;
        ev_c = int_of_float c;
        ev_d = int_of_float d;
      }
  in
  let event_list k =
    match Json.member k j with
    | Some (Json.Arr es) ->
        List.fold_right
          (fun e acc ->
            let* acc = acc in
            let* e = event e in
            Ok (e :: acc))
          es (Ok [])
    | _ -> Error (Printf.sprintf "flight dump: missing array field %S" k)
  in
  let* s = str "schema" in
  if not (String.equal s schema) then
    Error (Printf.sprintf "flight dump: schema %S (expected %S)" s schema)
  else
    let* label = str "label" in
    let* reason = str "reason" in
    let* nodes = num "nodes" j in
    let* ring = num "ring" j in
    let* time = num "time" j in
    let* object_ =
      match Json.member "object" j with
      | Some Json.Null | None -> Ok None
      | Some (Json.Num p) -> Ok (Some (int_of_float p))
      | Some _ -> Error "flight dump: \"object\" must be a number or null"
    in
    let* evs = event_list "events" in
    let* slice = event_list "slice" in
    Ok
      {
        dm_label = label;
        dm_reason = reason;
        dm_nodes = int_of_float nodes;
        dm_ring = int_of_float ring;
        dm_time = time;
        dm_object = object_;
        dm_events = evs;
        dm_slice = slice;
      }

let save ~path d = Json.save ~path (to_json d)

let load ~path =
  match Json.load ~path with
  | j -> of_json j
  | exception Json.Parse_error m -> Error m
  | exception Sys_error m -> Error m

(* ------------------------------------------------------------------ *)
(* Automatic dumps on failure *)

let auto_enabled =
  ref true
[@@dlint.allow
  "globals: per-process forensics configuration, set once by the CLI \
   before anything runs"]

let dump_dir =
  ref None
[@@dlint.allow
  "globals: per-process forensics configuration, set once by the CLI \
   before anything runs"]

let set_auto_dump b = auto_enabled := b
let set_dump_dir d = dump_dir := d

let auto_dump_path t =
  let dir =
    match !dump_dir with Some d -> d | None -> Filename.current_dir_name
  in
  Filename.concat dir (t.label ^ ".flight.json")

let auto_dump t ~reason ?object_ ~now () =
  if (not !auto_enabled) || t.dumped then false
  else begin
    t.dumped <- true;
    save ~path:(auto_dump_path t) (dump t ~reason ?object_ ~now ());
    (match t.c_dumps with None -> () | Some c -> Metrics.incr c);
    true
  end

let guard t ~now f =
  try f ()
  with e ->
    let bt = Printexc.get_raw_backtrace () in
    ignore
      (auto_dump t ~reason:("uncaught: " ^ Printexc.to_string e) ~now:(now ())
         ());
    Printexc.raise_with_backtrace e bt

(* ------------------------------------------------------------------ *)
(* Timeline rendering (shared by bench forensics and drust_sim
   --explain).  Everything below is pure over event lists, so it works
   identically on a loaded dump and on a live ring. *)

let pp_addr ppf p = Format.fprintf ppf "0x%x" p

let pp_event ppf e =
  let f fmt = Format.fprintf ppf fmt in
  f "t=%.9f node %d %-15s" e.ev_time e.ev_node (kind_name e.ev_kind);
  let k = e.ev_kind in
  if k = k_read_local || k = k_read_cached || k = k_read_fetch
     || k = k_read_remote then
    f " %a color %d (served by node %d)" pp_addr e.ev_a e.ev_c e.ev_b
  else if k = k_write_inplace then
    f " %a color %d (owner node %d)" pp_addr e.ev_a e.ev_c e.ev_d
  else if k = k_write_bump || k = k_write_move then
    f " %a -> %a color %d (owner node %d)" pp_addr e.ev_b pp_addr e.ev_a
      e.ev_c e.ev_d
  else if k = k_transfer then f " %a -> node %d" pp_addr e.ev_a e.ev_b
  else if k = k_drop then f " %a (served by node %d)" pp_addr e.ev_a e.ev_b
  else if k = k_create then
    f " %a on node %d (%d bytes)" pp_addr e.ev_a e.ev_b e.ev_d
  else if k >= k_fab_read && k <= k_fab_send then
    f " -> node %d (%d bytes)" e.ev_a e.ev_b
  else if k = k_fab_timeout || k = k_fab_drop then f " -> node %d" e.ev_a
  else if k = k_fab_retry then f " attempt %d" e.ev_a
  else if k = k_fab_stale_epoch then
    f " -> node %d (carried epoch %d, live %d)" e.ev_a e.ev_b e.ev_c
  else if k = k_view_change then f " epoch %d" e.ev_a
  else if k = k_handoff_prepare || k = k_handoff_abort then
    f " home %d: node %d -> node %d" e.ev_a e.ev_b e.ev_c
  else if k = k_handoff_commit then
    f " home %d: node %d -> node %d (epoch %d)" e.ev_a e.ev_b e.ev_c e.ev_d
  else if k = k_chain_reseed then
    f " home %d from node %d (%d hosts)" e.ev_a e.ev_b e.ev_c
  else if k = k_node_failed then f " node %d" e.ev_a
  else if k = k_promoted then
    f " home %d now served by node %d (replica %d)" e.ev_a e.ev_b e.ev_c
  else if k = k_fault_crash then f " node %d" e.ev_a
  else if k = k_fault_partition then f " %d node(s), first %d" e.ev_b e.ev_a
  else if k = k_fault_degrade then
    f " link %d -> %d (drop %d/1000)" e.ev_a e.ev_b e.ev_c
  else if k = k_dsan_violation then
    f " %a invariant #%d thread %d" pp_addr e.ev_a e.ev_b e.ev_c

let event_line e = Format.asprintf "%a" pp_event e

(* The derived staleness analysis: cached copies are keyed by the
   colored address they were fetched under, so a color change (bump or
   move) strands every copy fetched under the previous color. *)
let explain_object ?object_ evs =
  let slice = object_slice ?object_ evs in
  let lines = ref [] in
  let say fmt = Printf.ksprintf (fun s -> lines := s :: !lines) fmt in
  let cached : (int * int) list ref = ref [] in
  (* (node, color) *)
  let owner = ref None in
  List.iter
    (fun e ->
      say "%s" (event_line e);
      let k = e.ev_kind in
      if k = k_create then owner := Some e.ev_node
      else if k = k_transfer then owner := Some e.ev_b
      else if k = k_write_move then owner := Some e.ev_node;
      if k = k_read_fetch then begin
        if not (List.mem (e.ev_node, e.ev_c) !cached) then
          cached := (e.ev_node, e.ev_c) :: !cached
      end
      else if k = k_write_bump || k = k_write_move then begin
        let stale =
          List.filter (fun (_, c) -> c <> e.ev_c) !cached
          |> List.map fst |> List.sort_uniq Int.compare
        in
        if stale <> [] then
          say
            "    ^ copies cached under the previous color on node(s) [%s] \
             went stale here"
            (String.concat "; " (List.map string_of_int stale));
        cached := List.filter (fun (_, c) -> c = e.ev_c) !cached
      end
      else if k = k_drop then begin
        cached := [];
        owner := None
      end
      else if k = k_dsan_violation then
        say "    ^ DSan flagged this object here")
    slice;
  (match (!owner, slice) with
  | Some n, _ :: _ -> say "last known owner: node %d" n
  | _ -> ());
  List.rev !lines

let render_last ?(limit = 50) evs ~node =
  let mine = List.filter (fun e -> e.ev_node = node) evs in
  let n = List.length mine in
  let tail = if n <= limit then mine else List.filteri (fun i _ -> i >= n - limit) mine in
  List.map event_line tail
