(** Span tracing layered on virtual time.

    A bounded ring of trace events recorded against an injected clock
    (the simulation engine's virtual clock in practice — this library
    stays below [Drust_sim] in the dependency order, so the clock is a
    plain [unit -> float]).  Two event shapes:

    - {e complete spans}: [start] .. [finish] pairs with a category, a
      track (one per node by convention), free-form attributes, nesting
      depth, and a duration; per-category duration statistics accumulate
      as spans finish;
    - {e instants}: zero-duration marks ("DROP", "FAILOVER", ...).

    Events are {e causally linked}: every recorded event carries a
    tracer-unique [id], an optional [parent] id (0 = root), and two
    lists of {e flow edge} ids.  A flow edge ties a producer event on
    one track to a consumer event on another (a fabric message crossing
    nodes); {!fresh_flow_id} mints edge ids, {!add_flow_out} /
    {!add_flow_in} attach them to in-flight spans, and
    {!Critical_path} / {!Export.chrome_trace} consume them to rebuild
    the causal graph of an operation.

    This subsumes the old flat [Trace] ring: events carry structure
    (category / track / args / duration) instead of one pre-formatted
    string, which is what lets {!Export.chrome_trace} lay a run out on a
    per-node timeline.

    Recording against a disabled tracer is a no-op: nothing is
    allocated, [count] stays 0, and [start] hands back a shared null
    span that [finish] ignores.  Tracers default to disabled — tracing
    is opt-in (DRUST_TRACE / --trace / --profile). *)

type t

type kind = Complete | Instant

type event = {
  id : int;  (** tracer-unique, > 0; deterministic per cluster *)
  parent : int;  (** id of the enclosing span, 0 when root *)
  name : string;
  category : string;  (** "fabric", "protocol", "controller", "app", ... *)
  track : int;  (** timeline lane; by convention the node id *)
  ts : float;  (** virtual start time, seconds *)
  dur : float;  (** 0 for instants *)
  depth : int;  (** nesting depth on this track at [start] time, >= 1 *)
  args : (string * string) list;
  kind : kind;
  flow_out : int list;  (** flow-edge ids this event produces *)
  flow_in : int list;  (** flow-edge ids this event consumes *)
}

type span
(** In-flight span handle returned by {!start}. *)

val create : ?capacity:int -> clock:(unit -> float) -> unit -> t
(** Default capacity: 65536 events; older events are overwritten.
    The tracer starts {e disabled}. *)

val enable : t -> unit
val disable : t -> unit
val is_enabled : t -> bool

val start :
  t -> ?track:int -> ?args:(string * string) list -> ?parent:span ->
  category:string -> string -> span
(** Open a span at [clock ()].  The event is recorded when the span
    {!finish}es.  [parent] links the new span under an enclosing one
    (the null span and spans from a disabled tracer parent as roots).
    When disabled, returns a null span without recording or
    allocating. *)

val finish : t -> span -> unit
(** Close the span: records a [Complete] event with
    [dur = clock () - ts] and folds the duration into the per-category
    stats.  Finishing a span twice, or a null span, is a no-op. *)

val with_span :
  t -> ?track:int -> ?args:(string * string) list -> ?parent:span ->
  category:string -> string -> (unit -> 'a) -> 'a
(** [start]/[finish] around a thunk, exception-safe. *)

val instant :
  t -> ?track:int -> ?args:(string * string) list -> ?parent:span ->
  ?flow_out:int list -> ?flow_in:int list -> category:string -> string ->
  unit

val span_id : span -> int
(** The id the span's [Complete] event will carry; 0 for the null
    span. *)

val is_null : span -> bool
(** True for the shared null span handed out while disabled. *)

val fresh_flow_id : t -> int
(** Mint a new flow-edge id (> 0).  Deterministic: ids are handed out
    from a per-tracer counter in call order. *)

val add_flow_out : span -> int -> unit
(** Attach a produced flow edge to an in-flight span (no-op after
    {!finish} or on the null span). *)

val add_flow_in : span -> int -> unit
(** Attach a consumed flow edge to an in-flight span. *)

val events : t -> event list
(** In recording order (completes are recorded at finish time); at most
    [capacity] entries, oldest first. *)

val count : t -> int
(** Total events recorded since creation (including overwritten ones). *)

val depth : t -> track:int -> int
(** Currently open spans on a track (0 when none). *)

type dur_stats = {
  d_count : int;
  d_total : float;
  d_min : float;
  d_max : float;
}

val duration_stats : t -> (string * dur_stats) list
(** Per-category accumulated span durations (completes only), sorted by
    category.  Survives ring overwrites. *)

val clear : t -> unit
(** Also resets the id and flow-id counters. *)

val dump : ?limit:int -> Format.formatter -> t -> unit
(** Human-readable tail of the event ring. *)
