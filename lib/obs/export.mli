(** Exporters: Chrome [trace_event] JSON and a JSONL metrics dump.

    [chrome_trace] renders a {!Span.t}'s events in the Chrome trace-event
    format (JSON object form), loadable in [chrome://tracing] and
    Perfetto ({:https://ui.perfetto.dev}): one process, one timeline row
    (tid) per track — i.e. per node — complete spans as ["X"] events and
    instants as ["i"] events, timestamps in microseconds of virtual
    time, sorted ascending.  Every flow-edge id with both a producer
    ([Span.flow_out]) and a consumer ([Span.flow_in]) additionally emits
    a Chrome flow pair — ["s"] on the producer's track, ["f"] with
    [bp:"e"] on the consumer's — so cross-node messages render as
    arrows between node timelines.

    [metrics_jsonl] renders a {!Metrics.snapshot} as one JSON object per
    line, friendly to [jq] and dataframe loaders. *)

val chrome_trace : ?process_name:string -> Span.t -> string
(** The whole trace as one JSON document. *)

val write_chrome_trace : ?process_name:string -> path:string -> Span.t -> unit

val metrics_jsonl : ?time:float -> Metrics.snapshot -> string
(** One line per sample:
    [{"name":...,"labels":{...},"unit":...,"type":...,"value":...}];
    histograms carry count/sum/min/max/buckets.  [time] (virtual
    seconds) is stamped on every line when given. *)

val write_metrics_jsonl : ?time:float -> path:string -> Metrics.snapshot -> unit

val parse_metrics_jsonl : string -> Metrics.snapshot
(** Read a {!metrics_jsonl} dump back: one sample per non-blank line.
    Non-finite numbers (["inf"] bucket bounds, ["nan"] min/max of empty
    histograms) are accepted in their string encoding.  Raises
    [Failure] on malformed lines ([Drust_util.Json.Parse_error] on
    lines that are not JSON at all). *)

val json_escape : string -> string
(** JSON string-body escaping (exposed for the tests). *)
