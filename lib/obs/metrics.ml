type labels = (string * string) list

type owner = { mutable enabled : bool }

type counter = { c_owner : owner; mutable count : int }
type gauge = { g_owner : owner; mutable g_level : float }

type histogram = {
  h_owner : owner;
  bounds : float array; (* ascending upper bounds *)
  counts : int array; (* one slot per bound + a final overflow slot *)
  mutable sum : float;
  mutable n : int;
  mutable lo : float;
  mutable hi : float;
}

type instrument = C of counter | G of gauge | H of histogram

type metric = {
  m_name : string;
  m_labels : labels;
  m_unit : string;
  m_inst : instrument;
}

type t = {
  o : owner;
  tbl : (string * labels, metric) Hashtbl.t;
}

let create ?(enabled = true) () = { o = { enabled }; tbl = Hashtbl.create 64 }
let enable t = t.o.enabled <- true
let disable t = t.o.enabled <- false
let is_enabled t = t.o.enabled

let norm_labels labels =
  List.sort_uniq (fun (a, _) (b, _) -> String.compare a b) labels

let kind_name = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

let register t ~labels ~unit_ name make check =
  let labels = norm_labels labels in
  match Hashtbl.find_opt t.tbl (name, labels) with
  | Some m -> (
      match check m.m_inst with
      | Some v -> v
      | None ->
          invalid_arg
            (Printf.sprintf "Metrics: %S already registered as a %s" name
               (kind_name m.m_inst)))
  | None ->
      let inst, v = make () in
      Hashtbl.replace t.tbl (name, labels)
        { m_name = name; m_labels = labels; m_unit = unit_; m_inst = inst };
      v

let counter t ?(labels = []) ?(unit_ = "") ?(help = "") name =
  ignore help;
  register t ~labels ~unit_ name
    (fun () ->
      let c = { c_owner = t.o; count = 0 } in
      (C c, c))
    (function C c -> Some c | _ -> None)

let gauge t ?(labels = []) ?(unit_ = "") ?(help = "") name =
  ignore help;
  register t ~labels ~unit_ name
    (fun () ->
      let g = { g_owner = t.o; g_level = 0.0 } in
      (G g, g))
    (function G g -> Some g | _ -> None)

(* 1us .. 100ms, log-spaced: the span of one simulated network verb up to
   a whole experiment phase. *)
let default_buckets =
  [| 1e-6; 2e-6; 5e-6; 1e-5; 2e-5; 5e-5; 1e-4; 2e-4; 5e-4; 1e-3; 2e-3; 5e-3;
     1e-2; 2e-2; 5e-2; 1e-1 |]

let histogram t ?(buckets = default_buckets) ?(labels = []) ?(unit_ = "")
    ?(help = "") name =
  ignore help;
  let k = Array.length buckets in
  if k = 0 then invalid_arg "Metrics.histogram: need at least one bucket";
  for i = 1 to k - 1 do
    if buckets.(i - 1) >= buckets.(i) then
      invalid_arg "Metrics.histogram: buckets must be strictly ascending"
  done;
  register t ~labels ~unit_ name
    (fun () ->
      let h =
        { h_owner = t.o; bounds = Array.copy buckets;
          counts = Array.make (k + 1) 0; sum = 0.0; n = 0; lo = infinity;
          hi = neg_infinity }
      in
      (H h, h))
    (function H h -> Some h | _ -> None)

let incr c = if c.c_owner.enabled then c.count <- c.count + 1
let add c n = if c.c_owner.enabled then c.count <- c.count + n
let set g v = if g.g_owner.enabled then g.g_level <- v

let observe h v =
  if h.h_owner.enabled then begin
    let k = Array.length h.bounds in
    let i = ref 0 in
    while !i < k && v > h.bounds.(!i) do Stdlib.incr i done;
    h.counts.(!i) <- h.counts.(!i) + 1;
    h.sum <- h.sum +. v;
    h.n <- h.n + 1;
    if v < h.lo then h.lo <- v;
    if v > h.hi then h.hi <- v
  end

let value c = c.count
let level g = g.g_level
let reset_counter c = c.count <- 0

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)

type histo = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  h_buckets : (float * int) list;
}

type value = Count of int | Level of float | Histo of histo

type sample = {
  s_name : string;
  s_labels : labels;
  s_unit : string;
  s_value : value;
}

type snapshot = sample list

let sample_of m =
  let v =
    match m.m_inst with
    | C c -> Count c.count
    | G g -> Level g.g_level
    | H h ->
        let k = Array.length h.bounds in
        let buckets =
          List.init (k + 1) (fun i ->
              ((if i < k then h.bounds.(i) else infinity), h.counts.(i)))
        in
        Histo
          {
            h_count = h.n;
            h_sum = h.sum;
            h_min = (if h.n = 0 then nan else h.lo);
            h_max = (if h.n = 0 then nan else h.hi);
            h_buckets = buckets;
          }
  in
  { s_name = m.m_name; s_labels = m.m_labels; s_unit = m.m_unit; s_value = v }

let compare_labels la lb =
  List.compare
    (fun (ka, va) (kb, vb) ->
      match String.compare ka kb with 0 -> String.compare va vb | c -> c)
    la lb

let compare_key (na, la) (nb, lb) =
  match String.compare na nb with 0 -> compare_labels la lb | c -> c

let snapshot t =
  Drust_util.Tables.sorted_bindings t.tbl ~cmp:compare_key
  |> List.map (fun (_, m) -> sample_of m)

let diff ~before ~after =
  let key s = (s.s_name, s.s_labels) in
  let prior = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace prior (key s) s.s_value) before;
  List.map
    (fun s ->
      let v =
        match (s.s_value, Hashtbl.find_opt prior (key s)) with
        | Count a, Some (Count b) -> Count (a - b)
        | Histo a, Some (Histo b) ->
            let sub =
              List.map2
                (fun (bound, ca) (_, cb) -> (bound, ca - cb))
                a.h_buckets b.h_buckets
            in
            Histo
              {
                a with
                h_count = a.h_count - b.h_count;
                h_sum = a.h_sum -. b.h_sum;
                h_buckets = sub;
              }
        | v, _ -> v
      in
      { s with s_value = v })
    after

(* ------------------------------------------------------------------ *)
(* Quantiles & merging over snapshot histograms                        *)

let quantile h q =
  if q < 0.0 || q > 1.0 then invalid_arg "Metrics.quantile: q outside [0,1]";
  if h.h_count = 0 then None
  else begin
    (* Rank of the target sample (1-based, nearest-rank with linear
       interpolation inside the containing bucket). *)
    let rank = q *. Float.of_int h.h_count in
    let rank = Float.max rank 1.0 in
    let clamp v = Float.max h.h_min (Float.min h.h_max v) in
    let rec walk seen prev_bound = function
      | [] -> h.h_max
      | (bound, n) :: rest ->
          let seen' = seen + n in
          if Float.of_int seen' >= rank && n > 0 then begin
            (* The target sample lives in this bucket: interpolate
               between its edges by rank position.  The overflow bucket
               has no finite upper bound; use the observed max. *)
            let lo = Float.max prev_bound h.h_min in
            let hi =
              if bound = infinity then h.h_max else Float.min bound h.h_max
            in
            let frac = (rank -. Float.of_int seen) /. Float.of_int n in
            let frac = Float.max 0.0 (Float.min 1.0 frac) in
            clamp (lo +. ((hi -. lo) *. frac))
          end
          else walk seen' bound rest
    in
    Some (walk 0 neg_infinity h.h_buckets)
  end

let merge_histos a b =
  let bounds_of h = List.map fst h.h_buckets in
  if bounds_of a <> bounds_of b then
    invalid_arg "Metrics.merge_histos: bucket bounds differ";
  let merged_min =
    if a.h_count = 0 then b.h_min
    else if b.h_count = 0 then a.h_min
    else Float.min a.h_min b.h_min
  and merged_max =
    if a.h_count = 0 then b.h_max
    else if b.h_count = 0 then a.h_max
    else Float.max a.h_max b.h_max
  in
  {
    h_count = a.h_count + b.h_count;
    h_sum = a.h_sum +. b.h_sum;
    h_min = merged_min;
    h_max = merged_max;
    h_buckets =
      List.map2
        (fun (bound, ca) (_, cb) -> (bound, ca + cb))
        a.h_buckets b.h_buckets;
  }

let merged_histo snap name =
  List.fold_left
    (fun acc s ->
      match s.s_value with
      | Histo h when String.equal s.s_name name && h.h_count > 0 -> (
          match acc with
          | None -> Some h
          | Some m -> Some (merge_histos m h))
      | _ -> acc)
    None snap

let names t =
  Drust_util.Tables.sorted_keys t.tbl ~cmp:compare_key
  |> List.map fst
  |> List.sort_uniq String.compare

let total snap name =
  List.fold_left
    (fun acc s ->
      match s.s_value with
      | Count n when s.s_name = name -> acc + n
      | _ -> acc)
    0 snap

let find snap ?(labels = []) name =
  let labels = norm_labels labels in
  List.find_map
    (fun s ->
      if s.s_name = name && s.s_labels = labels then Some s.s_value else None)
    snap

let pp_labels fmt = function
  | [] -> ()
  | labels ->
      Format.fprintf fmt "{%s}"
        (String.concat ","
           (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) labels))

let pp fmt snap =
  List.iter
    (fun s ->
      (match s.s_value with
      | Count n ->
          Format.fprintf fmt "%s%a = %d" s.s_name pp_labels s.s_labels n
      | Level v ->
          Format.fprintf fmt "%s%a = %g" s.s_name pp_labels s.s_labels v
      | Histo h ->
          Format.fprintf fmt "%s%a = histogram(n=%d, sum=%g, min=%g, max=%g)"
            s.s_name pp_labels s.s_labels h.h_count h.h_sum h.h_min h.h_max);
      (if s.s_unit <> "" then Format.fprintf fmt " %s" s.s_unit);
      Format.fprintf fmt "@\n")
    snap
