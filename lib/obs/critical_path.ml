type segment = Queue | Wire | Serialize | Protocol | Compute

let all_segments = [ Queue; Wire; Serialize; Protocol; Compute ]

let segment_name = function
  | Queue -> "queue"
  | Wire -> "wire"
  | Serialize -> "serialize"
  | Protocol -> "protocol"
  | Compute -> "compute"

(* Category -> segment.  Queueing covers both core and NIC waits; app
   and charged-compute time count as compute; everything else (verb
   bookkeeping, protocol state machine, controller work) is attributed
   to protocol overhead.  docs/OBSERVABILITY.md documents the mapping. *)
let segment_of_category = function
  | "cpu.queue" | "net.queue" -> Queue
  | "net.wire" -> Wire
  | "net.serialize" -> Serialize
  | "cpu.compute" | "app" -> Compute
  | _ -> Protocol

type path = {
  root : Span.event;
  total : float;  (** end-to-end duration of the root span, seconds *)
  segments : (segment * float) list;  (** every segment, fixed order *)
  node_count : int;  (** events in the subtree, root included *)
}

let segments_sum p = List.fold_left (fun acc (_, d) -> acc +. d) 0.0 p.segments

(* ------------------------------------------------------------------ *)
(* Assembly                                                            *)

let analyze ?(is_root = fun (e : Span.event) -> e.Span.parent = 0) events =
  (* Children index: parent id -> child events.  Only completes carry
     duration; instants participate as zero-duration leaves. *)
  let children = Hashtbl.create 256 in
  List.iter
    (fun (e : Span.event) ->
      if e.Span.parent <> 0 then
        Hashtbl.replace children e.Span.parent
          (e :: (try Hashtbl.find children e.Span.parent with Not_found -> [])))
    events;
  let kids (e : Span.event) =
    try List.rev (Hashtbl.find children e.Span.id) with Not_found -> []
  in
  (* Attribute each node's self time (duration minus the sum of its
     children's durations) to its category's segment.  The per-segment
     totals then telescope: their sum equals the root's duration by
     construction, which is the invariant the tests enforce. *)
  let analyze_root (root : Span.event) =
    let totals = Hashtbl.create 8 in
    let count = ref 0 in
    let rec walk (e : Span.event) =
      incr count;
      let cs = kids e in
      let child_dur =
        List.fold_left (fun acc (c : Span.event) -> acc +. c.Span.dur) 0.0 cs
      in
      let self = e.Span.dur -. child_dur in
      let seg = segment_of_category e.Span.category in
      Hashtbl.replace totals seg
        (self +. (try Hashtbl.find totals seg with Not_found -> 0.0));
      List.iter walk cs
    in
    walk root;
    {
      root;
      total = root.Span.dur;
      segments =
        List.map
          (fun seg ->
            (seg, try Hashtbl.find totals seg with Not_found -> 0.0))
          all_segments;
      node_count = !count;
    }
  in
  List.filter_map
    (fun (e : Span.event) ->
      if e.Span.kind = Span.Complete && is_root e then Some (analyze_root e)
      else None)
    events

let top_k k paths =
  let sorted =
    List.stable_sort
      (fun a b ->
        match Float.compare b.total a.total with
        | 0 -> (
            match Float.compare a.root.Span.ts b.root.Span.ts with
            | 0 -> Int.compare a.root.Span.id b.root.Span.id
            | c -> c)
        | c -> c)
      paths
  in
  List.filteri (fun i _ -> i < k) sorted

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)

let pp fmt p =
  let us v = v *. 1e6 in
  let pct v = if p.total > 0.0 then 100.0 *. v /. p.total else 0.0 in
  Format.fprintf fmt "%s [%s] %.3f us (%d event(s))@\n" p.root.Span.name
    p.root.Span.category (us p.total) p.node_count;
  List.iter
    (fun (seg, d) ->
      if d <> 0.0 then
        Format.fprintf fmt "    %-9s %10.3f us  %5.1f%%@\n" (segment_name seg)
          (us d) (pct d))
    p.segments

let to_string p = Format.asprintf "%a" pp p

let report ?(k = 10) ?is_root events =
  let paths = top_k k (analyze ?is_root events) in
  let b = Buffer.create 512 in
  List.iteri
    (fun i p -> Buffer.add_string b (Printf.sprintf "#%d %s" (i + 1) (to_string p)))
    paths;
  Buffer.contents b
