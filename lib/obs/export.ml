let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let str s = "\"" ^ json_escape s ^ "\""

(* JSON numbers: finite floats only; trace timestamps use plain decimal
   notation (Perfetto rejects exponents in some paths), metrics use %g. *)
let num v = if Float.is_finite v then Printf.sprintf "%g" v else str (Float.to_string v)

let obj fields =
  "{" ^ String.concat "," (List.map (fun (k, v) -> str k ^ ":" ^ v) fields) ^ "}"

let args_obj args =
  obj (List.map (fun (k, v) -> (k, str v)) args)

let us t = Printf.sprintf "%.3f" (t *. 1e6)

let chrome_trace ?(process_name = "drust-sim") spans =
  let events = Span.events spans in
  let tracks =
    List.sort_uniq Int.compare (List.map (fun e -> e.Span.track) events)
  in
  let meta =
    obj
      [ ("ph", str "M"); ("pid", "0"); ("tid", "0");
        ("name", str "process_name"); ("args", obj [ ("name", str process_name) ]) ]
    :: List.concat_map
         (fun track ->
           [ obj
               [ ("ph", str "M"); ("pid", "0");
                 ("tid", string_of_int track); ("name", str "thread_name");
                 ("args", obj [ ("name", str (Printf.sprintf "node %d" track)) ]) ];
             (* Perfetto sorts rows by thread_sort_index when present;
                without it node 10 sorts before node 2. *)
             obj
               [ ("ph", str "M"); ("pid", "0");
                 ("tid", string_of_int track);
                 ("name", str "thread_sort_index");
                 ("args", obj [ ("sort_index", string_of_int track) ]) ] ])
         tracks
  in
  let sorted =
    List.stable_sort (fun a b -> Float.compare a.Span.ts b.Span.ts) events
  in
  let body =
    List.map
      (fun e ->
        let common =
          [ ("pid", "0"); ("tid", string_of_int e.Span.track);
            ("ts", us e.Span.ts); ("name", str e.Span.name);
            ("cat", str e.Span.category); ("args", args_obj e.Span.args) ]
        in
        match e.Span.kind with
        | Span.Complete ->
            obj (("ph", str "X") :: ("dur", us e.Span.dur) :: common)
        | Span.Instant ->
            obj (("ph", str "i") :: ("s", str "t") :: common))
      sorted
  in
  (* Flow arrows: one ["s"]/["f"] pair per flow-edge id that has both a
     producer (the id appears in some event's [flow_out]) and a consumer
     ([flow_in]).  The ["f"] end binds to its enclosing slice
     ([bp:"e"]), which is how Perfetto draws an arrow from the verb span
     on the source node into the serving span on the target node. *)
  let producers = Hashtbl.create 64 and consumers = Hashtbl.create 64 in
  List.iter
    (fun e ->
      List.iter
        (fun fid ->
          if not (Hashtbl.mem producers fid) then Hashtbl.add producers fid e)
        e.Span.flow_out;
      List.iter
        (fun fid ->
          if not (Hashtbl.mem consumers fid) then Hashtbl.add consumers fid e)
        e.Span.flow_in)
    sorted;
  let flow_ids =
    Drust_util.Tables.sorted_keys producers ~cmp:Int.compare
    |> List.filter (Hashtbl.mem consumers)
  in
  let flows =
    List.concat_map
      (fun fid ->
        let p = Hashtbl.find producers fid
        and c = Hashtbl.find consumers fid in
        let mk ph extra e =
          obj
            ([ ("ph", str ph); ("id", string_of_int fid);
               ("pid", "0"); ("tid", string_of_int e.Span.track);
               ("ts", us e.Span.ts); ("name", str "msg");
               ("cat", str "flow") ]
            @ extra)
        in
        [ mk "s" [] p; mk "f" [ ("bp", str "e") ] c ])
      flow_ids
  in
  "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
  ^ String.concat ",\n" (meta @ body @ flows)
  ^ "\n]}\n"

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let write_chrome_trace ?process_name ~path spans =
  write_file path (chrome_trace ?process_name spans)

let sample_line ?time (s : Metrics.sample) =
  let labels =
    obj (List.map (fun (k, v) -> (k, str v)) s.Metrics.s_labels)
  in
  let base =
    (match time with Some t -> [ ("time", num t) ] | None -> [])
    @ [ ("name", str s.Metrics.s_name); ("labels", labels) ]
    @ (if s.Metrics.s_unit = "" then [] else [ ("unit", str s.Metrics.s_unit) ])
  in
  match s.Metrics.s_value with
  | Metrics.Count n ->
      obj (base @ [ ("type", str "counter"); ("value", string_of_int n) ])
  | Metrics.Level v -> obj (base @ [ ("type", str "gauge"); ("value", num v) ])
  | Metrics.Histo h ->
      let buckets =
        "["
        ^ String.concat ","
            (List.map
               (fun (le, c) ->
                 obj [ ("le", num le); ("count", string_of_int c) ])
               h.Metrics.h_buckets)
        ^ "]"
      in
      obj
        (base
        @ [ ("type", str "histogram");
            ("count", string_of_int h.Metrics.h_count);
            ("sum", num h.Metrics.h_sum); ("min", num h.Metrics.h_min);
            ("max", num h.Metrics.h_max); ("buckets", buckets) ])

let metrics_jsonl ?time snap =
  String.concat "" (List.map (fun s -> sample_line ?time s ^ "\n") snap)

let write_metrics_jsonl ?time ~path snap =
  write_file path (metrics_jsonl ?time snap)

(* Reader for the JSONL dump above, via the shared strict parser.
   Non-finite numbers round-trip as strings ("inf" bucket bounds, "nan"
   min/max of empty histograms) because JSON has no literal for them. *)
let parse_metrics_jsonl text : Metrics.snapshot =
  let module Json = Drust_util.Json in
  let bad fmt = Printf.ksprintf failwith ("metrics jsonl: " ^^ fmt) in
  let num_field j k =
    match Json.member k j with
    | Some (Json.Num v) -> v
    | Some (Json.Str s) -> (
        match float_of_string_opt s with
        | Some v -> v
        | None -> bad "field %S is not a number: %S" k s)
    | _ -> bad "missing numeric field %S" k
  in
  let int_field j k = int_of_float (num_field j k) in
  let str_field j k =
    match Json.member k j with
    | Some (Json.Str s) -> s
    | _ -> bad "missing string field %S" k
  in
  let parse_line line =
    let j = Json.parse line in
    let labels =
      match Json.member "labels" j with
      | Some (Json.Obj kvs) ->
          List.map
            (fun (k, v) ->
              match v with
              | Json.Str s -> (k, s)
              | _ -> bad "label %S is not a string" k)
            kvs
      | _ -> bad "missing labels object"
    in
    let unit_ =
      match Json.member "unit" j with Some (Json.Str s) -> s | _ -> ""
    in
    let value =
      match str_field j "type" with
      | "counter" -> Metrics.Count (int_field j "value")
      | "gauge" -> Metrics.Level (num_field j "value")
      | "histogram" ->
          let buckets =
            match Json.member "buckets" j with
            | Some (Json.Arr bs) ->
                List.map (fun b -> (num_field b "le", int_field b "count")) bs
            | _ -> bad "missing buckets array"
          in
          Metrics.Histo
            {
              Metrics.h_count = int_field j "count";
              h_sum = num_field j "sum";
              h_min = num_field j "min";
              h_max = num_field j "max";
              h_buckets = buckets;
            }
      | t -> bad "unknown sample type %S" t
    in
    {
      Metrics.s_name = str_field j "name";
      s_labels = labels;
      s_unit = unit_;
      s_value = value;
    }
  in
  String.split_on_char '\n' text
  |> List.filter (fun l -> String.trim l <> "")
  |> List.map parse_line
