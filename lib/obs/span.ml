type kind = Complete | Instant

type event = {
  id : int;
  parent : int;
  name : string;
  category : string;
  track : int;
  ts : float;
  dur : float;
  depth : int;
  args : (string * string) list;
  kind : kind;
  flow_out : int list;
  flow_in : int list;
}

type span = {
  sp_id : int;
  sp_parent : int;
  sp_name : string;
  sp_cat : string;
  sp_track : int;
  sp_ts : float;
  sp_depth : int;
  sp_args : (string * string) list;
  mutable sp_live : bool;
  mutable sp_flow_out : int list;
  mutable sp_flow_in : int list;
}

type dur_stats = {
  d_count : int;
  d_total : float;
  d_min : float;
  d_max : float;
}

type t = {
  clock : unit -> float;
  ring : event option array;
  mutable next : int;
  mutable total : int;
  mutable enabled : bool;
  mutable next_id : int; (* event/span ids; 0 is reserved for "none" *)
  mutable next_flow : int; (* flow-edge ids, per-tracer, deterministic *)
  depths : (int, int) Hashtbl.t; (* track -> open span count *)
  stats : (string, dur_stats) Hashtbl.t; (* category -> durations *)
}

let create ?(capacity = 65536) ~clock () =
  if capacity <= 0 then invalid_arg "Span.create: capacity must be positive";
  {
    clock;
    ring = Array.make capacity None;
    next = 0;
    total = 0;
    enabled = false;
    next_id = 1;
    next_flow = 1;
    depths = Hashtbl.create 16;
    stats = Hashtbl.create 16;
  }

let enable t = t.enabled <- true
let disable t = t.enabled <- false
let is_enabled t = t.enabled

let null_span =
  { sp_id = 0; sp_parent = 0; sp_name = ""; sp_cat = ""; sp_track = 0;
    sp_ts = 0.0; sp_depth = 0; sp_args = []; sp_live = false;
    sp_flow_out = []; sp_flow_in = [] }

let span_id sp = sp.sp_id
let is_null sp = sp.sp_id = 0 && not sp.sp_live

let fresh_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let fresh_flow_id t =
  let id = t.next_flow in
  t.next_flow <- id + 1;
  id

let record t ev =
  t.ring.(t.next) <- Some ev;
  t.next <- (t.next + 1) mod Array.length t.ring;
  t.total <- t.total + 1

let depth t ~track =
  match Hashtbl.find_opt t.depths track with Some d -> d | None -> 0

let start t ?(track = 0) ?(args = []) ?parent ~category name =
  if not t.enabled then null_span
  else begin
    let d = depth t ~track + 1 in
    Hashtbl.replace t.depths track d;
    let parent_id = match parent with Some p -> p.sp_id | None -> 0 in
    { sp_id = fresh_id t; sp_parent = parent_id; sp_name = name;
      sp_cat = category; sp_track = track; sp_ts = t.clock (); sp_depth = d;
      sp_args = args; sp_live = true; sp_flow_out = []; sp_flow_in = [] }
  end

let add_flow_out sp fid =
  if sp.sp_live then sp.sp_flow_out <- fid :: sp.sp_flow_out

let add_flow_in sp fid =
  if sp.sp_live then sp.sp_flow_in <- fid :: sp.sp_flow_in

let note_duration t category dur =
  let s =
    match Hashtbl.find_opt t.stats category with
    | Some s ->
        { d_count = s.d_count + 1; d_total = s.d_total +. dur;
          d_min = Float.min s.d_min dur; d_max = Float.max s.d_max dur }
    | None -> { d_count = 1; d_total = dur; d_min = dur; d_max = dur }
  in
  Hashtbl.replace t.stats category s

let finish t sp =
  if sp.sp_live then begin
    sp.sp_live <- false;
    let d = depth t ~track:sp.sp_track in
    if d > 0 then Hashtbl.replace t.depths sp.sp_track (d - 1);
    if t.enabled then begin
      let dur = t.clock () -. sp.sp_ts in
      note_duration t sp.sp_cat dur;
      record t
        { id = sp.sp_id; parent = sp.sp_parent; name = sp.sp_name;
          category = sp.sp_cat; track = sp.sp_track; ts = sp.sp_ts; dur;
          depth = sp.sp_depth; args = sp.sp_args; kind = Complete;
          flow_out = List.rev sp.sp_flow_out;
          flow_in = List.rev sp.sp_flow_in }
    end
  end

let with_span t ?track ?args ?parent ~category name f =
  let sp = start t ?track ?args ?parent ~category name in
  match f () with
  | v ->
      finish t sp;
      v
  | exception e ->
      finish t sp;
      raise e

let instant t ?(track = 0) ?(args = []) ?parent ?(flow_out = [])
    ?(flow_in = []) ~category name =
  if t.enabled then
    let parent_id = match parent with Some p -> p.sp_id | None -> 0 in
    record t
      { id = fresh_id t; parent = parent_id; name; category; track;
        ts = t.clock (); dur = 0.0; depth = depth t ~track; args;
        kind = Instant; flow_out; flow_in }

let events t =
  let cap = Array.length t.ring in
  let out = ref [] in
  for i = cap - 1 downto 0 do
    (* Oldest entry sits at [next] once the ring has wrapped. *)
    match t.ring.((t.next + i) mod cap) with
    | Some e -> out := e :: !out
    | None -> ()
  done;
  !out

let count t = t.total

let duration_stats t =
  Drust_util.Tables.sorted_bindings t.stats ~cmp:String.compare

let clear t =
  Array.fill t.ring 0 (Array.length t.ring) None;
  t.next <- 0;
  t.total <- 0;
  t.next_id <- 1;
  t.next_flow <- 1;
  Hashtbl.reset t.depths;
  Hashtbl.reset t.stats

let pp_args fmt = function
  | [] -> ()
  | args ->
      Format.fprintf fmt " (%s)"
        (String.concat ", "
           (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) args))

let dump ?(limit = 40) fmt t =
  let all = events t in
  let n = List.length all in
  let tail = if n <= limit then all else List.filteri (fun i _ -> i >= n - limit) all in
  Format.fprintf fmt "spans: %d event(s) recorded, showing last %d@\n" t.total
    (List.length tail);
  List.iter
    (fun e ->
      match e.kind with
      | Instant ->
          Format.fprintf fmt "  [%10.6f] #%d %-10s %s%a@\n" e.ts e.track
            e.category e.name pp_args e.args
      | Complete ->
          Format.fprintf fmt "  [%10.6f] #%d %-10s %s (%.1f us)%a@\n" e.ts
            e.track e.category e.name (e.dur *. 1e6) pp_args e.args)
    tail
