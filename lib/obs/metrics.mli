(** Unified metrics registry.

    Every layer of the system (fabric verbs, protocol moves, cache
    hits/misses, controller decisions) reports into one [Metrics.t] of
    named, labelled instruments — counters, gauges, and histograms — so
    experiments and the CLI read a single snapshot instead of poking at
    per-module counter structs.

    Conventions (see docs/OBSERVABILITY.md for the full catalogue):
    - names are dotted, [layer.metric] ("fabric.reads", "cache.hits");
    - labels identify the sub-series ([("node", "3")]); a registry is
      per-cluster, so no cluster label is needed;
    - recording is {e observational only}: nothing here touches the
      simulation engine or any RNG, so instrumented and uninstrumented
      runs are bit-identical.

    Recording against a disabled registry is a no-op that allocates
    nothing and leaves every value untouched. *)

type t
(** A registry. *)

type labels = (string * string) list
(** Label set; normalized (sorted by key) on registration. *)

type counter
type gauge
type histogram

val create : ?enabled:bool -> unit -> t
(** Fresh registry; [enabled] defaults to [true]. *)

val enable : t -> unit
val disable : t -> unit
val is_enabled : t -> bool

(** {1 Registration}

    Registering the same (name, labels) pair twice returns the existing
    instrument (handles are shared); registering it with a different
    instrument kind raises [Invalid_argument]. *)

val counter : t -> ?labels:labels -> ?unit_:string -> ?help:string -> string -> counter
(** Monotonic event count ([unit_] e.g. "ops", "bytes"). *)

val gauge : t -> ?labels:labels -> ?unit_:string -> ?help:string -> string -> gauge
(** Instantaneous level (e.g. cache bytes in use). *)

val histogram :
  t -> ?buckets:float array -> ?labels:labels -> ?unit_:string -> ?help:string -> string -> histogram
(** Distribution with cumulative-style buckets: [buckets] are upper
    bounds, ascending; samples above the last bound land in an implicit
    overflow bucket.  Default buckets suit latencies in seconds
    (1us .. 100ms, log-spaced). *)

(** {1 Recording} — no-ops (and allocation-free) when the registry is
    disabled. *)

val incr : counter -> unit
val add : counter -> int -> unit
val set : gauge -> float -> unit
val observe : histogram -> float -> unit

(** {1 Reading} *)

val value : counter -> int
val level : gauge -> float

val reset_counter : counter -> unit
(** Maintenance, not recording: works even when the registry is
    disabled (experiment harnesses zero counters between phases). *)

(** {1 Snapshots} *)

type histo = {
  h_count : int;
  h_sum : float;
  h_min : float;  (** [nan] when empty *)
  h_max : float;  (** [nan] when empty *)
  h_buckets : (float * int) list;  (** (upper bound, count per bucket), plus ([infinity], overflow) *)
}

type value = Count of int | Level of float | Histo of histo

type sample = {
  s_name : string;
  s_labels : labels;
  s_unit : string;
  s_value : value;
}

type snapshot = sample list
(** Sorted by (name, labels): deterministic, diffable. *)

val snapshot : t -> snapshot

val diff : before:snapshot -> after:snapshot -> snapshot
(** Per-sample difference: counters and histogram counts/sums subtract
    (a sample absent from [before] counts from zero); gauges keep the
    [after] level.  Samples absent from [after] are dropped. *)

val quantile : histo -> float -> float option
(** [quantile h q] estimates the [q]-quantile ([q] in [0,1]) of the
    samples folded into a snapshot histogram: find the bucket holding
    the nearest-rank sample, then interpolate linearly between the
    bucket's edges by rank position.  The overflow bucket's upper edge
    is the observed max; results are clamped to [[h_min, h_max]].
    Returns [None] on an empty histogram (there is no sample to rank —
    callers must render the absence explicitly rather than propagate a
    [nan]); raises [Invalid_argument] when [q] is outside [0,1].
    Deterministic: depends only on the bucket counts and observed
    min/max, so estimates merge consistently across clusters (see
    {!merge_histos}). *)

val merge_histos : histo -> histo -> histo
(** Combine two snapshot histograms with identical bucket bounds:
    counts and sums add, min/max widen (an empty side is the identity).
    Associative and commutative on counts, which is what makes
    per-cluster latency histograms safe to aggregate before taking
    {!quantile}s.  Raises [Invalid_argument] on differing bounds. *)

val merged_histo : snapshot -> string -> histo option
(** Merge every non-empty histogram sample named [name] (one per label
    set) in a snapshot into a single distribution via {!merge_histos};
    [None] when the snapshot holds no such samples. *)

val names : t -> string list
(** Distinct registered metric names, sorted — the registry side of the
    docs-catalogue check. *)

val total : snapshot -> string -> int
(** Sum of all [Count] samples with this name across label sets. *)

val find : snapshot -> ?labels:labels -> string -> value option
(** Exact (name, labels) lookup. *)

val pp : Format.formatter -> snapshot -> unit
(** Text rendering, one sample per line. *)
