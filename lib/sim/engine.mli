(** Discrete-event simulation engine.

    The engine owns a virtual clock and an event queue.  Simulated
    activities run as {e processes}: ordinary OCaml functions that may call
    the blocking primitives of this library ({!delay}, {!suspend},
    [Mailbox.recv], [Resource.acquire]...).  Blocking is implemented with
    OCaml 5 effect handlers, so a process suspends mid-function without
    threads and resumes when the event it waits for fires.

    Determinism: events scheduled for the same instant fire in insertion
    order, and all randomness flows through seeded {!Drust_util.Rng}
    generators, so a simulation is a pure function of its configuration. *)

type t
(** An engine instance. *)

type process_handle
(** Handle to a spawned process, used to {!join} it. *)

val create : unit -> t

val now : t -> float
(** Current virtual time in seconds. *)

val schedule : t -> at:float -> (unit -> unit) -> unit
(** [schedule t ~at f] runs callback [f] at virtual time [at].  [at] must
    not be in the past. *)

val schedule_after : t -> float -> (unit -> unit) -> unit
(** [schedule_after t dt f] is [schedule t ~at:(now t +. dt) f]. *)

val spawn : ?at:float -> t -> (unit -> unit) -> process_handle
(** [spawn t body] starts a new process at time [at] (default: now).
    The body runs inside the engine's effect handler and may block. *)

val start_process : t -> (unit -> unit) -> unit
(** [start_process t body] runs [body] as a process immediately, inside
    the current event, without a queue round-trip.  [spawn ~at t body]
    is equivalent to [schedule t ~at (fun () -> start_process t body)].
    Used by callers (the fabric's delivery batching) that manage their
    own scheduling and don't need the join handle. *)

(** {1 Blocking primitives — only valid inside a process} *)

val delay : t -> float -> unit
(** [delay t dt] suspends the calling process for [dt] simulated seconds. *)

val suspend : (('a -> unit) -> unit) -> 'a
(** [suspend register] parks the calling process.  [register] receives a
    one-shot [resume] function; calling [resume v] (from any other process
    or callback) schedules the parked process to continue with value [v] at
    the current virtual time.  Raises [Failure] if resumed twice. *)

val join : t -> process_handle -> unit
(** [join t h] blocks until the process behind [h] has finished.  Returns
    immediately when it is already done.  If the process died with an
    exception, [join] re-raises it in the caller. *)

val yield : t -> unit
(** [yield t] reschedules the caller at the current time, letting other
    ready processes run first (cooperative multitasking). *)

(** {1 Driving the simulation} *)

val run : ?until:float -> t -> unit
(** [run t] executes events until the queue drains (or virtual time exceeds
    [until]).  If any process died with an uncaught exception, the first
    such exception is re-raised after the loop stops. *)

val step : t -> bool
(** [step t] executes a single event; [false] when the queue is empty. *)

val pending_events : t -> int
val live_processes : t -> int

(** {1 Host-side accounting} *)

val dispatched : t -> int
(** Total logical events executed so far: one per event-queue pop, plus
    every callback that ran piggybacked on a coalesced delivery (see
    {!count_extra_events}).  Purely observational — never feeds back
    into the simulation. *)

val pushes : t -> int
(** Total events ever pushed to the queue.  Two pushes with no push in
    between occupy adjacent sequence slots at their timestamp; the
    fabric's delivery batching uses this as its interleaving check. *)

val count_extra_events : t -> int -> unit
(** [count_extra_events t n] accounts [n] logical events that ran inside
    one queue entry (coalesced fabric deliveries), so {!dispatched}
    counts the same event total whether or not batching merged them. *)

exception Process_failure of exn
(** Wrapper re-raised by {!run} for a process that died; carries the
    original exception. *)
