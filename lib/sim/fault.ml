(* Deterministic fault injection: a seeded plan of node crashes, transient
   network partitions, and per-link impairments (message-drop probability,
   extra fixed latency, latency jitter).

   The plan is *declarative and lazy*: injecting a fault records it, and
   the fabric consults the plan against the engine's virtual clock on
   every verb.  Nothing here schedules events or races the event queue,
   so a chaos run is a pure function of the plan plus the RNG seed —
   two runs with the same configuration are bit-identical, which is what
   lets failover experiments assert reproducibility. *)

module Rng = Drust_util.Rng

type link = { drop : float; extra_latency : float; jitter : float }

type crash = { node : int; at : float }

(* A transient partition: while [from_t <= now < until], messages whose
   endpoints fall on different sides of [members] are blackholed. *)
type cut = { members : bool array; from_t : float; until : float }

(* What an injection call declared, reported to the recorder hook below.
   This layer cannot depend on the observability library, so the flight
   recorder subscribes through a plain callback instead. *)
type injection =
  | Inj_crash of { node : int; at : float }
  | Inj_partition of { group : int list; at : float; heal_at : float }
  | Inj_degrade of { from_node : int; target : int; drop : float }

type t = {
  engine : Engine.t;
  rng : Rng.t;
  nodes : int;
  nak_delay : float;
  mutable crashes : crash list;
  mutable cuts : cut list;
  links : link option array array; (* links.(from).(target) *)
  mutable recorder : (injection -> unit) option;
}

let create ?(nak_delay = 15e-6) ~engine ~rng ~nodes () =
  if nodes <= 0 then invalid_arg "Fault.create: need at least one node";
  if nak_delay < 0.0 then invalid_arg "Fault.create: negative nak_delay";
  {
    engine;
    rng;
    nodes;
    nak_delay;
    crashes = [];
    cuts = [];
    links = Array.make_matrix nodes nodes None;
    recorder = None;
  }

let set_recorder t r = t.recorder <- r

let[@inline] notify t inj =
  match t.recorder with None -> () | Some f -> f inj

let check_node t n label =
  if n < 0 || n >= t.nodes then
    invalid_arg (Printf.sprintf "Fault.%s: node %d out of range" label n)

let crash_at t ~node ~at =
  check_node t node "crash_at";
  if at < 0.0 then invalid_arg "Fault.crash_at: negative time";
  t.crashes <- { node; at } :: t.crashes;
  notify t (Inj_crash { node; at })

let partition_at t ~group ~at ~heal_at =
  if heal_at <= at then invalid_arg "Fault.partition_at: empty window";
  let members = Array.make t.nodes false in
  List.iter
    (fun n ->
      check_node t n "partition_at";
      members.(n) <- true)
    group;
  t.cuts <- { members; from_t = at; until = heal_at } :: t.cuts;
  notify t (Inj_partition { group; at; heal_at })

(* A short-lived cut expressed by duration: the common shape for testing
   detector grace periods ("does a partition shorter than the declare
   threshold stay invisible?"). *)
let transient_partition t ~group ~at ~duration =
  if duration <= 0.0 then
    invalid_arg "Fault.transient_partition: non-positive duration";
  partition_at t ~group ~at ~heal_at:(at +. duration)

let degrade_link t ~from ~target ?(drop = 0.0) ?(extra_latency = 0.0)
    ?(jitter = 0.0) () =
  check_node t from "degrade_link";
  check_node t target "degrade_link";
  if drop < 0.0 || drop > 1.0 then invalid_arg "Fault.degrade_link: drop not a probability";
  if extra_latency < 0.0 || jitter < 0.0 then
    invalid_arg "Fault.degrade_link: negative latency";
  t.links.(from).(target) <- Some { drop; extra_latency; jitter };
  notify t (Inj_degrade { from_node = from; target; drop })

let now t = Engine.now t.engine

let is_down t node =
  check_node t node "is_down";
  let n = now t in
  List.exists (fun c -> c.node = node && c.at <= n) t.crashes

let crash_time t node =
  check_node t node "crash_time";
  List.fold_left
    (fun acc c ->
      if c.node <> node then acc
      else match acc with Some a when a <= c.at -> acc | _ -> Some c.at)
    None t.crashes

let severed t ~from ~target =
  let n = now t in
  List.exists
    (fun c ->
      c.from_t <= n && n < c.until && c.members.(from) <> c.members.(target))
    t.cuts

(* Sample the drop coin for one message.  Draws from the plan's own RNG
   stream, so drops are reproducible given the same verb sequence. *)
let drops t ~from ~target =
  match t.links.(from).(target) with
  | Some l when l.drop > 0.0 -> Rng.bernoulli t.rng ~p:l.drop
  | Some _ | None -> false

let extra_latency t ~from ~target =
  match t.links.(from).(target) with
  | None -> 0.0
  | Some l ->
      l.extra_latency
      +. (if l.jitter > 0.0 then Rng.float t.rng l.jitter else 0.0)

let nak_delay t = t.nak_delay

let crashed_nodes t =
  let n = now t in
  List.sort_uniq Int.compare
    (List.filter_map
       (fun c -> if c.at <= n then Some c.node else None)
       t.crashes)
