(** Deterministic fault injection.

    A fault plan is a declarative schedule of node crashes, transient
    network partitions, and per-link impairments (drop probability, extra
    latency, jitter).  The plan is evaluated {e lazily}: the fabric asks
    "is this message deliverable {e now}?" on every verb, against the
    engine's virtual clock.  All randomness (drop coins, jitter samples)
    flows through the plan's own seeded {!Drust_util.Rng} stream, so a
    chaos run is a pure function of its configuration — two runs with the
    same seed are bit-identical. *)

type t

type injection =
  | Inj_crash of { node : int; at : float }
  | Inj_partition of { group : int list; at : float; heal_at : float }
  | Inj_degrade of { from_node : int; target : int; drop : float }
      (** What an injection call declared — the shape handed to the
          {!set_recorder} hook.  [Inj_degrade.drop] is the message-loss
          probability (latency impairments are not echoed). *)

val create :
  ?nak_delay:float ->
  engine:Engine.t ->
  rng:Drust_util.Rng.t ->
  nodes:int ->
  unit ->
  t
(** An empty plan (no faults).  [nak_delay] (default 15 µs) is the
    simulated transport retry period a verb burns before completing in
    error against a crashed node. *)

val set_recorder : t -> (injection -> unit) option -> unit
(** Observational hook fired once per injection call, synchronously, with
    the declared fault.  The simulation layer cannot see the
    observability library, so the flight recorder (lib/obs) subscribes
    here through a plain callback.  The hook must never touch the engine
    or any RNG. *)

(** {1 Injecting faults} *)

val crash_at : t -> node:int -> at:float -> unit
(** The node fail-stops at virtual time [at]: verbs from it or to it
    raise, and it never comes back. *)

val partition_at : t -> group:int list -> at:float -> heal_at:float -> unit
(** During [[at, heal_at)], messages between [group] and the rest of the
    cluster are blackholed (they never complete — bound them with
    [Fabric.rpc_with_timeout]).  Traffic within either side is
    unaffected. *)

val transient_partition : t -> group:int list -> at:float -> duration:float -> unit
(** [transient_partition t ~group ~at ~duration] is
    [partition_at t ~group ~at ~heal_at:(at +. duration)] — a cut that
    heals on its own, the shape used to exercise detector grace
    periods. *)

val degrade_link :
  t ->
  from:int ->
  target:int ->
  ?drop:float ->
  ?extra_latency:float ->
  ?jitter:float ->
  unit ->
  unit
(** Impair the directed link [from → target]: each message is lost with
    probability [drop]; delivered messages gain [extra_latency] plus a
    uniform sample from [[0, jitter]] seconds. *)

(** {1 Queries (used by the fabric)} *)

val is_down : t -> int -> bool
val crash_time : t -> int -> float option
(** Earliest scheduled crash of the node, even if still in the future. *)

val severed : t -> from:int -> target:int -> bool
(** An active partition separates the two nodes right now. *)

val drops : t -> from:int -> target:int -> bool
(** Flip the seeded drop coin for one message on this link.  Stateful:
    advances the plan's RNG stream. *)

val extra_latency : t -> from:int -> target:int -> float
(** Extra one-way latency for one message (samples jitter; stateful). *)

val nak_delay : t -> float

val crashed_nodes : t -> int list
(** Nodes already down at the current virtual time, ascending. *)
