open Effect.Deep

type t = {
  events : (unit -> unit) Drust_util.Pqueue.t;
  mutable clock : float;
  mutable live : int;
  mutable failures : exn list;
  mutable dispatched : int;
      (* logical events run: one per queue pop, plus every callback a
         batched delivery ran without its own queue entry *)
}

type process_state = Running | Finished | Failed of exn

type process_handle = {
  mutable state : process_state;
  mutable join_waiters : (unit -> unit) list;
}

type _ Effect.t += Suspend : (('a -> unit) -> unit) -> 'a Effect.t

exception Process_failure of exn

let () =
  Printexc.register_printer (function
    | Process_failure inner ->
        Some ("Engine.Process_failure(" ^ Printexc.to_string inner ^ ")")
    | _ -> None)

let create () =
  {
    events = Drust_util.Pqueue.create ();
    clock = 0.0;
    live = 0;
    failures = [];
    dispatched = 0;
  }

let now t = t.clock
let dispatched t = t.dispatched

(* Total pushes ever made to the event queue.  Two pushes with no other
   push in between are adjacent in the dispatch order at their
   timestamp; the fabric's delivery batching relies on this mark. *)
let pushes t = Drust_util.Pqueue.pushed t.events

(* Account [n] logical events that ran piggybacked on one queue entry
   (coalesced fabric deliveries): keeps events/sec comparable whether or
   not batching merged them. *)
let count_extra_events t n = t.dispatched <- t.dispatched + n

let schedule t ~at f =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule: at=%g is in the past (now=%g)" at
         t.clock);
  Drust_util.Pqueue.push t.events ~time:at f

let schedule_after t dt f = schedule t ~at:(t.clock +. dt) f

let suspend register = Effect.perform (Suspend register)

let finish_handle t handle state =
  handle.state <- state;
  let waiters = handle.join_waiters in
  handle.join_waiters <- [];
  List.iter (fun resume -> schedule t ~at:t.clock resume) (List.rev waiters)

(* Run a process body under the engine's deep effect handler.  A [Suspend]
   effect hands the one-shot resumer to the registration function; resuming
   trampolines through the event queue so process steps never nest. *)
let run_fiber t handle body =
  t.live <- t.live + 1;
  let handler : (unit, unit) handler =
    {
      retc =
        (fun () ->
          t.live <- t.live - 1;
          finish_handle t handle Finished);
      exnc =
        (fun e ->
          t.live <- t.live - 1;
          t.failures <- e :: t.failures;
          finish_handle t handle (Failed e));
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Suspend register ->
              Some
                (fun (k : (a, unit) continuation) ->
                  let resumed = ref false in
                  let resume v =
                    if !resumed then
                      failwith "Engine: process resumed twice";
                    resumed := true;
                    schedule t ~at:t.clock (fun () -> continue k v)
                  in
                  register resume)
          | _ -> None);
    }
  in
  match_with body () handler

let spawn ?at t body =
  let at = match at with None -> t.clock | Some a -> a in
  let handle = { state = Running; join_waiters = [] } in
  schedule t ~at (fun () -> run_fiber t handle body);
  handle

(* Run a process body right now, inside the current event, without a
   queue round-trip.  [spawn ~at t body] is exactly
   [schedule t ~at (fun () -> start_process t body)] minus the handle;
   the fabric's delivery batching uses this to start coalesced handlers
   in their original dispatch positions. *)
let start_process t body =
  let handle = { state = Running; join_waiters = [] } in
  run_fiber t handle body

let delay t dt =
  if dt < 0.0 then invalid_arg "Engine.delay: negative delay";
  suspend (fun resume -> schedule t ~at:(t.clock +. dt) (fun () -> resume ()))

let yield t = suspend (fun resume -> schedule t ~at:t.clock (fun () -> resume ()))

let join _t handle =
  (match handle.state with
  | Finished | Failed _ -> ()
  | Running ->
      suspend (fun resume ->
          handle.join_waiters <- (fun () -> resume ()) :: handle.join_waiters));
  match handle.state with
  | Failed e -> raise (Process_failure e)
  | Finished -> ()
  | Running -> assert false

let step t =
  if Drust_util.Pqueue.is_empty t.events then false
  else begin
    let f = Drust_util.Pqueue.pop_exn t.events in
    t.clock <- Drust_util.Pqueue.last_time t.events;
    t.dispatched <- t.dispatched + 1;
    f ();
    true
  end

let run ?until t =
  (match until with
  | None ->
      (* Hot loop: no per-event limit check, no option allocation. *)
      while not (Drust_util.Pqueue.is_empty t.events) do
        let f = Drust_util.Pqueue.pop_exn t.events in
        t.clock <- Drust_util.Pqueue.last_time t.events;
        t.dispatched <- t.dispatched + 1;
        f ()
      done
  | Some limit ->
      let keep_going () =
        match Drust_util.Pqueue.peek_time t.events with
        | None -> false
        | Some next -> next <= limit
      in
      while (not (Drust_util.Pqueue.is_empty t.events)) && keep_going () do
        ignore (step t)
      done);
  match List.rev t.failures with
  | [] -> ()
  | e :: _ ->
      t.failures <- [];
      raise (Process_failure e)

let pending_events t = Drust_util.Pqueue.length t.events
let live_processes t = t.live
