module Ctx = Drust_machine.Ctx
module Cluster = Drust_machine.Cluster
module Engine = Drust_sim.Engine
module Resource = Drust_sim.Resource
module Fabric = Drust_net.Fabric
module Univ = Drust_util.Univ
module Dsm = Drust_dsm.Dsm

type costs = {
  dir_proc : float;
  dir_per_block : float;
  requester_proc : float;
  hit_check_cycles : float;
  inv_extra : float;
}

(* Calibrated so an uncached 512 B read costs ~16 us end to end with the
   wire accounting for ~3.6 us (the paper's S3 breakdown). *)
let default_costs =
  {
    dir_proc = 3.0e-6;
    dir_per_block = 1.0e-6;
    requester_proc = 3.3e-6;
    hit_check_cycles = 220.0;
    inv_extra = 0.7e-6;
  }

(* Directory state of one small-object cache block. *)
type block_state = Uncached | Shared of int list | Exclusive of int

(* Large (block-aligned) objects skip the per-block hashtable: block
   coherence state is summarized by a per-node streaming cursor (blocks
   [0, cursor) are Shared at that node) plus the current exclusive
   holder.  Small objects share blocks with their neighbours (the bump
   allocator packs them), so they keep exact per-block state — that is
   where false sharing lives. *)
type big_state = {
  cursors : int array; (* per node: faulted-prefix length in blocks *)
  mutable excl : int option; (* current exclusive writer *)
  resident : bool array; (* per node: counted against the cache budget *)
}

type layout = Small of int list (* block ids *) | Big of big_state

type handle = {
  oid : int;
  obj_home : int;
  nblocks : int;
  size : int;
  layout : layout;
}


type t = {
  cluster : Cluster.t;
  block_size : int;
  costs : costs;
  directory : (int, block_state ref) Hashtbl.t; (* block id -> state *)
  dir_units : Resource.t array; (* per-node directory engines *)
  store : (int, Univ.t) Hashtbl.t; (* object id -> current value *)
  bump : int array; (* per-node allocation cursor in bytes *)
  mutable next_oid : int;
  mutable rmisses : int;
  mutable wmisses : int;
  mutable invs : int;
  (* GAM caches remote data in a bounded per-node cache; once the budget
     is exceeded the LRU object is dropped and must be re-faulted.  This
     is what limits GAM on large cacheable working sets (GEMM). *)
  cache_budget : int;
  cache_bytes : int array;
  lru : (big_state * int) Queue.t array; (* (state, size); may hold stale *)
}

let create ?(block_size = 512) ?(costs = default_costs)
    ?(cache_budget = Drust_util.Units.mib 6) cluster =
  {
    cluster;
    block_size;
    costs;
    directory = Hashtbl.create 4096;
    dir_units =
      Array.init (Cluster.node_count cluster) (fun _ ->
          Resource.create (Cluster.engine cluster) ~capacity:4);
    store = Hashtbl.create 4096;
    bump = Array.make (Cluster.node_count cluster) 0;
    next_oid = 0;
    rmisses = 0;
    wmisses = 0;
    invs = 0;
    cache_budget;
    cache_bytes = Array.make (Cluster.node_count cluster) 0;
    lru = Array.init (Cluster.node_count cluster) (fun _ -> Queue.create ());
  }

let block_size t = t.block_size

(* Register a faulted object in the node's bounded cache, evicting LRU
   residents (their cursors reset, forcing a re-fault) beyond budget. *)
let note_resident t ~node (bs : big_state) ~size =
  if not bs.resident.(node) then begin
    bs.resident.(node) <- true;
    t.cache_bytes.(node) <- t.cache_bytes.(node) + size;
    Queue.push (bs, size) t.lru.(node)
  end;
  while
    t.cache_bytes.(node) > t.cache_budget && not (Queue.is_empty t.lru.(node))
  do
    let victim, vsize = Queue.pop t.lru.(node) in
    if
      victim.resident.(node)
      && ((victim != bs)
         [@dlint.allow
           "determinism: identity test on unique mutable cache records — \
            the object being inserted must not evict itself"])
    then begin
      victim.resident.(node) <- false;
      victim.cursors.(node) <- 0;
      t.cache_bytes.(node) <- t.cache_bytes.(node) - vsize
    end
    else if
      ((victim == bs)
      [@dlint.allow
        "determinism: identity test on unique mutable cache records — \
         the object being inserted must not evict itself"])
    then Queue.push (victim, vsize) t.lru.(node)
  done

(* Globally unique block ids: 2^34 bytes of virtual space per node. *)
let block_id t ~node ~byte = (node lsl 34) lor (byte / t.block_size)

let alloc_on t ctx ~node ~size v =
  Ctx.charge_cycles ctx 150.0;
  let oid = t.next_oid in
  t.next_oid <- oid + 1;
  Hashtbl.replace t.store oid v;
  let nodes = Cluster.node_count t.cluster in
  if size >= t.block_size then begin
    (* Align large objects so their blocks are private to them. *)
    let aligned =
      (t.bump.(node) + t.block_size - 1) / t.block_size * t.block_size
    in
    t.bump.(node) <- aligned + size;
    let nblocks = (size + t.block_size - 1) / t.block_size in
    {
      oid;
      obj_home = node;
      nblocks;
      size;
      layout =
        Big
          {
            cursors = Array.make nodes 0;
            excl = None;
            resident = Array.make nodes false;
          };
    }
  end
  else begin
    let start = t.bump.(node) in
    t.bump.(node) <- start + max 1 size;
    let first = block_id t ~node ~byte:start in
    let last = block_id t ~node ~byte:(start + max 1 size - 1) in
    {
      oid;
      obj_home = node;
      nblocks = last - first + 1;
      size;
      layout = Small (List.init (last - first + 1) (fun i -> first + i));
    }
  end

let alloc t ctx ~size v = alloc_on t ctx ~node:ctx.Ctx.node ~size v

let home h = h.obj_home

let state_ref t b =
  match Hashtbl.find_opt t.directory b with
  | Some r -> r
  | None ->
      let r = ref Uncached in
      Hashtbl.replace t.directory b r;
      r

let distinct (l : int list) = List.sort_uniq Int.compare l

(* One home-directory round trip serving [nblocks] block requests and
   contacting [third_parties] (exclusive holders to downgrade, or sharers
   to invalidate). *)
let directory_round t ctx ~home ~resp_bytes ~nblocks ~third_parties ~third_bytes =
  let fabric = Cluster.fabric t.cluster in
  Ctx.flush ctx;
  Fabric.rpc fabric ~from:ctx.Ctx.node ~target:home ~req_bytes:64 ~resp_bytes
    (fun () ->
      Resource.use t.dir_units.(home) (fun () ->
          let c = t.costs in
          Engine.delay (Cluster.engine t.cluster)
            (c.dir_proc +. (c.dir_per_block *. Float.of_int (max 0 (nblocks - 1))));
          match third_parties with
          | [] -> ()
          | first :: rest ->
              t.invs <- t.invs + 1 + List.length rest;
              Fabric.rpc fabric ~from:home ~target:first ~req_bytes:64
                ~resp_bytes:third_bytes (fun () -> ());
              List.iter
                (fun _ -> Engine.delay (Cluster.engine t.cluster) t.costs.inv_extra)
                rest));
  (* Requester-side protocol bookkeeping (state tracking of the copies). *)
  Engine.delay (Cluster.engine t.cluster) t.costs.requester_proc

(* ------------------------------------------------------------------ *)
(* Small objects: exact per-block directory protocol                    *)

let has_shared node = function
  | Shared nodes -> List.mem node nodes
  | Exclusive o -> o = node
  | Uncached -> false

let has_exclusive node = function
  | Exclusive o -> o = node
  | Shared _ | Uncached -> false

let small_read t ctx h blocks_ =
  let node = ctx.Ctx.node in
  let missed =
    List.filter (fun b -> not (has_shared node !(state_ref t b))) blocks_
  in
  if missed = [] then Ctx.charge_cycles ctx t.costs.hit_check_cycles
  else begin
    (if
       h.obj_home = node
       && List.for_all
            (fun b ->
              match !(state_ref t b) with
              | Exclusive o -> o = node
              | Shared _ | Uncached -> true)
            missed
     then
       (* Local fast path: the requester is the home, nothing conflicts. *)
       Ctx.charge_cycles ctx (t.costs.hit_check_cycles +. 900.0)
     else begin
       t.rmisses <- t.rmisses + 1;
       Ctx.note_remote_access ctx ~target:h.obj_home;
       let owners =
         distinct
           (List.filter_map
              (fun b ->
                match !(state_ref t b) with
                | Exclusive o when o <> node -> Some o
                | Exclusive _ | Shared _ | Uncached -> None)
              missed)
       in
       directory_round t ctx ~home:h.obj_home
         ~resp_bytes:(min h.size (List.length missed * t.block_size))
         ~nblocks:(List.length missed) ~third_parties:owners
         ~third_bytes:t.block_size
     end);
    List.iter
      (fun b ->
        let r = state_ref t b in
        let sharers =
          match !r with
          | Uncached -> [ node ]
          | Shared nodes -> distinct (node :: nodes)
          | Exclusive o -> distinct [ node; o ]
        in
        r := Shared sharers)
      missed
  end

let small_acquire t ctx h blocks_ =
  let node = ctx.Ctx.node in
  let need =
    List.filter (fun b -> not (has_exclusive node !(state_ref t b))) blocks_
  in
  if need = [] then Ctx.charge_cycles ctx t.costs.hit_check_cycles
  else begin
    let third_parties =
      distinct
        (List.concat_map
           (fun b ->
             match !(state_ref t b) with
             | Uncached -> []
             | Shared nodes -> List.filter (fun n -> n <> node) nodes
             | Exclusive o -> if o <> node then [ o ] else [])
           need)
    in
    (if h.obj_home = node && third_parties = [] then
       Ctx.charge_cycles ctx (t.costs.hit_check_cycles +. 900.0)
     else begin
       t.wmisses <- t.wmisses + 1;
       Ctx.note_remote_access ctx ~target:h.obj_home;
       let dirty_fetch =
         List.exists
           (fun b ->
             match !(state_ref t b) with Exclusive o -> o <> node | _ -> false)
           need
       in
       directory_round t ctx ~home:h.obj_home
         ~resp_bytes:
           (if dirty_fetch then min h.size (List.length need * t.block_size)
            else 32)
         ~nblocks:(List.length need) ~third_parties ~third_bytes:32
     end);
    List.iter (fun b -> state_ref t b := Exclusive node) need
  end

(* ------------------------------------------------------------------ *)
(* Large objects: streaming-cursor summary                              *)

(* Fault [want] blocks starting at the node's cursor. *)
let big_fault t ctx h (bs : big_state) ~want =
  let node = ctx.Ctx.node in
  let cursor = bs.cursors.(node) in
  let served = min want (h.nblocks - cursor) in
  if served <= 0 then Ctx.charge_cycles ctx t.costs.hit_check_cycles
  else begin
    let third =
      match bs.excl with
      | Some o when o <> node ->
          (* Downgrade the writer once; its dirty blocks flow back through
             the home. *)
          bs.excl <- None;
          [ o ]
      | Some _ | None -> []
    in
    (if h.obj_home = node && third = [] then
       Ctx.charge_cycles ctx (t.costs.hit_check_cycles +. 900.0)
     else begin
       t.rmisses <- t.rmisses + 1;
       Ctx.note_remote_access ctx ~target:h.obj_home;
       directory_round t ctx ~home:h.obj_home
         ~resp_bytes:(served * t.block_size)
         ~nblocks:served ~third_parties:third
         ~third_bytes:(served * t.block_size)
     end);
    bs.cursors.(node) <- cursor + served;
    if h.obj_home <> node then note_resident t ~node bs ~size:h.size
  end

let big_read_all t ctx h bs =
  let node = ctx.Ctx.node in
  (* A stale exclusive holder forces a round even with a full cursor. *)
  if bs.excl <> None && bs.excl <> Some node then bs.cursors.(node) <- 0;
  big_fault t ctx h bs ~want:(h.nblocks - bs.cursors.(node))

let big_acquire t ctx h bs =
  let node = ctx.Ctx.node in
  if bs.excl = Some node then Ctx.charge_cycles ctx t.costs.hit_check_cycles
  else begin
    let sharers = ref [] in
    Array.iteri
      (fun m c -> if m <> node && c > 0 then sharers := m :: !sharers)
      bs.cursors;
    let third =
      distinct
        (!sharers
        @ match bs.excl with Some o when o <> node -> [ o ] | Some _ | None -> [])
    in
    (if h.obj_home = node && third = [] then
       Ctx.charge_cycles ctx (t.costs.hit_check_cycles +. 900.0)
     else begin
       t.wmisses <- t.wmisses + 1;
       Ctx.note_remote_access ctx ~target:h.obj_home;
       directory_round t ctx ~home:h.obj_home ~resp_bytes:32 ~nblocks:h.nblocks
         ~third_parties:third ~third_bytes:32
     end);
    Array.iteri (fun m _ -> bs.cursors.(m) <- 0) bs.cursors;
    bs.cursors.(node) <- h.nblocks;
    bs.excl <- Some node
  end

(* ------------------------------------------------------------------ *)
(* Public object interface                                              *)

let ensure_shared t ctx h =
  match h.layout with
  | Small blocks_ -> small_read t ctx h blocks_
  | Big bs -> big_read_all t ctx h bs

let read_part t ctx h ~bytes =
  match h.layout with
  | Small blocks_ -> small_read t ctx h blocks_
  | Big bs ->
      let node = ctx.Ctx.node in
      let stale_writer = bs.excl <> None && bs.excl <> Some node in
      if stale_writer then bs.cursors.(node) <- 0;
      if bs.cursors.(node) >= h.nblocks then
        Ctx.charge_cycles ctx t.costs.hit_check_cycles
      else begin
        (* Strict on-demand faulting: one block per directory round (GAM
           has no read-ahead), so a streaming touch of [bytes] issues one
           round per block it crosses. *)
        let rounds = max 1 ((bytes + t.block_size - 1) / t.block_size) in
        for _ = 1 to rounds do
          if bs.cursors.(node) < h.nblocks then big_fault t ctx h bs ~want:1
        done
      end

let read t ctx h =
  ensure_shared t ctx h;
  match Hashtbl.find_opt t.store h.oid with
  | Some v -> v
  | None -> invalid_arg "Gam.read: freed object"

let acquire_exclusive t ctx h =
  match h.layout with
  | Small blocks_ -> small_acquire t ctx h blocks_
  | Big bs -> big_acquire t ctx h bs

let write t ctx h v =
  acquire_exclusive t ctx h;
  Hashtbl.replace t.store h.oid v

let update t ctx h f =
  acquire_exclusive t ctx h;
  match Hashtbl.find_opt t.store h.oid with
  | Some v -> Hashtbl.replace t.store h.oid (f v)
  | None -> invalid_arg "Gam.update: freed object"

let free t ctx h =
  Ctx.charge_cycles ctx 120.0;
  Hashtbl.remove t.store h.oid;
  match h.layout with
  | Small blocks_ -> List.iter (fun b -> Hashtbl.remove t.directory b) blocks_
  | Big _ -> ()

let read_misses t = t.rmisses
let write_misses t = t.wmisses
let invalidations_sent t = t.invs

let reset_stats t =
  t.rmisses <- 0;
  t.wmisses <- 0;
  t.invs <- 0

(* -------------------------------------------------------------------- *)
(* GAM locks: two-sided messages to the lock's home, queueing there.     *)

type gmutex = { lock_home : int; unit_ : Resource.t }

type Dsm.handle += H of handle
type Dsm.mutex += M of gmutex

let handle_of = function H h -> h | _ -> Dsm.foreign "gam"
let mutex_of = function M m -> m | _ -> Dsm.foreign "gam"

let mutex_lock t ctx m =
  let fabric = Cluster.fabric t.cluster in
  if m.lock_home = ctx.Ctx.node then begin
    Ctx.charge_cycles ctx 600.0;
    Resource.acquire m.unit_
  end
  else begin
    Ctx.flush ctx;
    Fabric.rpc fabric ~from:ctx.Ctx.node ~target:m.lock_home ~req_bytes:64
      ~resp_bytes:32 (fun () ->
        Resource.acquire m.unit_;
        Engine.delay (Cluster.engine t.cluster) 1.0e-6)
  end

let mutex_unlock t ctx m =
  let fabric = Cluster.fabric t.cluster in
  if m.lock_home = ctx.Ctx.node then begin
    Ctx.charge_cycles ctx 400.0;
    Resource.release m.unit_
  end
  else begin
    Ctx.flush ctx;
    Fabric.rpc fabric ~from:ctx.Ctx.node ~target:m.lock_home ~req_bytes:64
      ~resp_bytes:8 (fun () -> Resource.release m.unit_)
  end

let backend t =
  {
    Dsm.name = "GAM";
    alloc = (fun ctx ~size v -> H (alloc t ctx ~size v));
    alloc_on = (fun ctx ~node ~size v -> H (alloc_on t ctx ~node ~size v));
    read = (fun ctx h -> read t ctx (handle_of h));
    write = (fun ctx h v -> write t ctx (handle_of h) v);
    update = (fun ctx h f -> update t ctx (handle_of h) f);
    free = (fun ctx h -> free t ctx (handle_of h));
    read_part = (fun ctx h ~bytes -> read_part t ctx (handle_of h) ~bytes);
    process =
      (fun ctx h ~cycles ->
        let v = read t ctx (handle_of h) in
        Ctx.compute ctx ~cycles;
        v);
    process_update =
      (fun ctx h ~cycles f ->
        update t ctx (handle_of h) f;
        Ctx.compute ctx ~cycles);
    home = (fun h -> home (handle_of h));
    tie = (fun _ctx ~parent:_ ~child:_ -> ());
    supports_affinity = false;
    mutex_create =
      (fun ctx ->
        M
          {
            lock_home = ctx.Ctx.node;
            unit_ = Resource.create (Cluster.engine t.cluster) ~capacity:1;
          });
    mutex_lock = (fun ctx m -> mutex_lock t ctx (mutex_of m));
    mutex_unlock = (fun ctx m -> mutex_unlock t ctx (mutex_of m));
  }
