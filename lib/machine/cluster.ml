module Engine = Drust_sim.Engine
module Resource = Drust_sim.Resource
module Fabric = Drust_net.Fabric
module Gaddr = Drust_memory.Gaddr
module Partition = Drust_memory.Partition
module Cache = Drust_memory.Cache
module Metrics = Drust_obs.Metrics
module Span = Drust_obs.Span
module Flight = Drust_obs.Flight

type node = {
  id : int;
  cores : Resource.t;
  partition : Partition.t;
  cache : Cache.t;
  mutable alive : bool;
}

type t = {
  uid : int;
  engine : Engine.t;
  fabric : Fabric.t;
  params : Params.t;
  nodes : node array;
  serving : int array; (* serving.(home) = node currently serving home's range *)
  range_store : Partition.t array;
      (* partition object backing each home range; swapped on promotion *)
  rng : Drust_util.Rng.t;
  metrics : Metrics.t;
  spans : Span.t;
  flight : Flight.t;
  env : Env.t;
      (* per-cluster state of every higher layer (protocol stats,
         listeners, thread registry, ...): dies with the cluster *)
  next_thread_id : int Atomic.t;
}

(* Atomic so clusters may be created concurrently from several domains
   (the parallel sweep runner).  The uid is purely informational — no
   layer keys state on it any more; per-cluster state lives in [env]. *)
let next_uid =
  Atomic.make 0
[@@dlint.allow
  "globals: the process-wide cluster uid source — informational only, no \
   layer keys state on it; atomic for parallel sweep domains"]

(* Called on every freshly created cluster.  This is how process-wide
   tooling (the DSan sanitizer's --sanitize flag) reaches clusters that
   experiments create internally, without threading a parameter through
   every call site.  The hook must not touch the engine or any RNG, and
   it may run in whichever domain creates the cluster. *)
let create_hook : (t -> unit) option Atomic.t =
  Atomic.make None
[@@dlint.allow
  "globals: the process-wide creation hook is how --sanitize reaches \
   internally created clusters; set once at startup, atomic"]
let set_create_hook h = Atomic.set create_hook h

let create ?engine params =
  let engine = match engine with Some e -> e | None -> Engine.create () in
  let rng = Drust_util.Rng.create ~seed:params.Params.seed in
  (* One registry and one (disabled-by-default) span tracer per cluster:
     every layer reports into these.  Recording never touches the engine
     or any RNG, so instrumented runs stay bit-identical. *)
  let metrics = Metrics.create () in
  let spans = Span.create ~clock:(fun () -> Engine.now engine) () in
  (* The flight recorder is always on: a bounded black box behind every
     layer, dumped on failure for post-mortems (docs/FORENSICS.md).
     Like the tracer it is purely observational — array stores only. *)
  let flight = Flight.create ~metrics ~nodes:params.Params.nodes () in
  let fabric =
    Fabric.create ~metrics ~spans ~flight ~engine
      ~rng:(Drust_util.Rng.split rng)
      ~model:params.Params.net ~nodes:params.Params.nodes ()
  in
  let make_node id =
    {
      id;
      cores = Resource.create engine ~capacity:params.Params.cores_per_node;
      partition =
        Partition.create ~node:id ~capacity_bytes:params.Params.mem_per_node;
      cache = Cache.create ~metrics ~node:id ();
      alive = true;
    }
  in
  let uid = Atomic.fetch_and_add next_uid 1 in
  let nodes = Array.init params.Params.nodes make_node in
  let t =
    {
      uid;
      engine;
      fabric;
      params;
      nodes;
      serving = Array.init params.Params.nodes (fun i -> i);
      range_store = Array.map (fun n -> n.partition) nodes;
      rng;
      metrics;
      spans;
      flight;
      env = Env.create ();
      next_thread_id = Atomic.make 0;
    }
  in
  (match Atomic.get create_hook with None -> () | Some h -> h t);
  t

let uid t = t.uid
let env t = t.env
let fresh_thread_id t = Atomic.fetch_and_add t.next_thread_id 1

let engine t = t.engine
let fabric t = t.fabric
let params t = t.params
let rng t = t.rng
let metrics t = t.metrics
let spans t = t.spans
let flight t = t.flight

let node_count t = Array.length t.nodes

let node t i =
  if i < 0 || i >= Array.length t.nodes then
    invalid_arg (Printf.sprintf "Cluster.node: %d out of range" i);
  t.nodes.(i)

let nodes t = t.nodes

let alive_nodes t =
  Array.to_list t.nodes
  |> List.filter_map (fun n -> if n.alive then Some n.id else None)

let serving_node t home =
  if home < 0 || home >= Array.length t.serving then
    invalid_arg "Cluster.serving_node: out of range";
  t.serving.(home)

let serving_store t home =
  if home < 0 || home >= Array.length t.range_store then
    invalid_arg "Cluster.serving_store: out of range";
  t.range_store.(home)

let promote t ~home ~by ~store =
  if Partition.node store <> home then
    invalid_arg "Cluster.promote: store must mint addresses in the home range";
  t.serving.(home) <- by;
  t.range_store.(home) <- store

let mark_failed t i =
  let n = node t i in
  n.alive <- false

let partition_of t a = t.range_store.(Gaddr.node_of a)

(* Allocation "on" node [i] goes to whatever store currently backs [i]'s
   address range — the node's own partition, or its promoted backup after
   a failure (addresses keep carrying the home range id either way). *)
let heap_alloc t ~node:i ~size v = Partition.alloc t.range_store.(i) ~size v

let heap_read t a = Partition.get (partition_of t a) a
let heap_write t a v = Partition.set (partition_of t a) a v
let heap_free t a = Partition.free (partition_of t a) a
let heap_mem t a = Partition.mem (partition_of t a) a

let most_vacant_node t =
  let best = ref (-1) in
  let best_usage = ref Float.infinity in
  Array.iter
    (fun n ->
      if n.alive then begin
        let usage = Partition.usage_fraction n.partition in
        if usage < !best_usage then begin
          best := n.id;
          best_usage := usage
        end
      end)
    t.nodes;
  if !best < 0 then failwith "Cluster.most_vacant_node: no node alive";
  !best

let run t = Engine.run t.engine
let now t = Engine.now t.engine
