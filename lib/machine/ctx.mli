(** Per-thread execution context.

    Every simulated application thread carries a [Ctx.t]: which node it is
    currently running on (mutable — threads migrate), its RNG stream, and
    the accounting the global controller's adaptive policies read (local
    heap consumption, per-node remote-access counts, §4.2.2).

    Compute is charged in {e cycles} and batched: small charges accumulate
    and are flushed as one core-occupying burst once they exceed the
    cluster's [flush_grain], or whenever the thread is about to block on
    the network.  This keeps simulations fast without losing CPU
    contention. *)

type t = {
  cluster : Cluster.t;
  thread_id : int;
  mutable node : int;
  rng : Drust_util.Rng.t;
  mutable pending_cycles : float;
  mutable local_alloc_bytes : int;
  remote_accesses : int array;  (** per-target-node counts *)
  mutable computed_seconds : float;
  mutable safe_point_hook : (t -> unit) option;
      (** invoked at flush points; the runtime installs migration here *)
  mutable current_span : Drust_obs.Span.span option;
      (** the protocol operation's root span while one is open on this
          thread — sub-spans (core waits, fabric verbs) parent under it;
          [None] outside an operation or when tracing is disabled *)
  mutable op_kind : int;
      (** scratch outcome kind for the operation in flight (an index into
          the protocol's op-kind table, e.g. [write_move]); set at the
          branch that decides the outcome, read back by the protocol's
          latency classifier; [-1] idle *)
  mutable layer_cache : exn;
      (** per-context memo slot for a higher layer: the protocol stashes
          its resolved per-cluster state here (encoded as an extensible-
          variant constructor, like [Env] keys) so hot operations skip
          the Env lookup; [Not_found] until first use *)
}

val make : Cluster.t -> node:int -> t
(** Fresh context with a unique thread id and a split RNG stream. *)

val cluster : t -> Cluster.t
val current_node : t -> Cluster.node
val engine : t -> Drust_sim.Engine.t
val fabric : t -> Drust_net.Fabric.t
val params : t -> Params.t

val charge_cycles : t -> float -> unit
(** Accumulate compute; flushes automatically past the grain. *)

val compute : t -> cycles:float -> unit
(** [charge_cycles] then flush — a synchronous compute burst. *)

val flush : t -> unit
(** Occupy a core on the current node for all pending cycles.  Runs the
    safe-point hook first (migration happens at flush boundaries, like the
    paper's cooperative scheduler).  When the cluster's tracer is
    enabled, the core wait and the compute burst are recorded as
    [cpu.queue] / [cpu.compute] sub-spans of [current_span]. *)

val safe_point : t -> unit
(** Run the safe-point hook without forcing a flush. *)

val note_remote_access : t -> target:int -> unit
val note_local_alloc : t -> bytes:int -> unit

val remote_access_total : t -> int
val hottest_remote_node : t -> int option
(** The node this thread reads/writes most — the migration target of the
    controller's CPU-congestion policy. *)

val reset_counters : t -> unit
