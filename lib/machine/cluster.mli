(** The simulated cluster: nodes, fabric, and the partitioned global heap.

    One [Cluster.t] is the unit of an experiment.  Each node bundles its
    CPU cores (a FIFO resource), its heap partition, and its read-only
    object cache.  The cluster also carries the primary-serving map used by
    the fault-tolerance layer: after a failure, another node is promoted to
    serve a dead node's partition range (§4.2.3). *)

type node = {
  id : int;
  cores : Drust_sim.Resource.t;
  partition : Drust_memory.Partition.t;
  cache : Drust_memory.Cache.t;
  mutable alive : bool;
}

type t

val create : ?engine:Drust_sim.Engine.t -> Params.t -> t

val uid : t -> int
(** Unique id per cluster instance (diagnostics only).  Per-cluster state
    belongs in {!env}, never in a process-global table keyed by this. *)

val env : t -> Env.t
(** The cluster's environment: typed per-cluster storage for every higher
    layer (protocol statistics, listener hooks, thread registry, ...).
    Bindings die with the cluster.  See {!Env}. *)

val fresh_thread_id : t -> int
(** Next thread id, scoped to this cluster (ids start at 0 per cluster so
    runs are deterministic regardless of what other clusters exist in the
    process). *)

val set_create_hook : (t -> unit) option -> unit
(** Install a process-wide hook run on every cluster [create].  Used by
    the DSan sanitizer's [--sanitize] mode to attach to clusters that
    experiments build internally.  The hook must be purely observational:
    it must not touch the engine, any RNG, or heap state. *)

val engine : t -> Drust_sim.Engine.t
val fabric : t -> Drust_net.Fabric.t
val params : t -> Params.t
val rng : t -> Drust_util.Rng.t

(** {1 Observability}

    One metrics registry and one span tracer per cluster; the fabric,
    the caches, the protocol, and the controller all report into them
    (docs/OBSERVABILITY.md has the catalogue).  The tracer starts
    disabled — [Drust_obs.Span.enable (Cluster.spans c)] turns it on. *)

val metrics : t -> Drust_obs.Metrics.t
val spans : t -> Drust_obs.Span.t

val flight : t -> Drust_obs.Flight.t
(** The always-on flight recorder: every layer records compact events
    into its per-node rings, and failures dump them as
    [<label>.flight.json] for post-mortem forensics
    (docs/FORENSICS.md). *)

val node_count : t -> int
val node : t -> int -> node
val nodes : t -> node array
val alive_nodes : t -> int list

(** {1 Partition serving (fault tolerance)} *)

val serving_node : t -> int -> int
(** [serving_node t home] is the node currently serving [home]'s partition
    range — [home] itself unless it failed and a backup was promoted. *)

val serving_store : t -> int -> Drust_memory.Partition.t
(** [serving_store t home] is the partition object currently backing
    [home]'s address range — [home]'s own partition, or whatever store a
    promotion / planned handoff installed.  The replication layer
    snapshots it when re-seeding a replica chain. *)

val promote : t -> home:int -> by:int -> store:Drust_memory.Partition.t -> unit
(** After [home] fails, serve its address range from node [by] using the
    replica [store] (which must mint addresses in [home]'s range). *)

val mark_failed : t -> int -> unit

(** {1 Global-heap state operations}

    These mutate simulator state only; {e timing} is charged separately by
    the coherence protocols through the fabric. *)

val heap_alloc : t -> node:int -> size:int -> Drust_util.Univ.t -> Drust_memory.Gaddr.t
(** Allocate in a specific node's partition. *)

val heap_read : t -> Drust_memory.Gaddr.t -> Drust_memory.Partition.entry
(** Follows the serving map.  Raises [Not_found] on a dead address. *)

val heap_write : t -> Drust_memory.Gaddr.t -> Drust_util.Univ.t -> unit
val heap_free : t -> Drust_memory.Gaddr.t -> unit
val heap_mem : t -> Drust_memory.Gaddr.t -> bool

val partition_of : t -> Drust_memory.Gaddr.t -> Drust_memory.Partition.t
(** The partition currently serving an address. *)

val most_vacant_node : t -> int
(** Allocation fallback under memory pressure (§4.2.1): the alive node
    with the lowest partition usage. *)

val run : t -> unit
(** Drive the engine until all events drain (delegates to [Engine.run]). *)

val now : t -> float
