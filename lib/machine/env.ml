(* Per-cluster environment: a typed heterogeneous store that replaces the
   process-global uid-keyed side tables higher layers used to keep.

   Each layer declares its keys once at module-initialization time; the
   bindings themselves live inside the owning [Cluster.t], so they are
   garbage-collected with the cluster instead of accumulating in global
   Hashtbls, and two clusters running in different domains share no
   mutable state through this module (key allocation is atomic).

   The value encoding reuses the private-exception trick of
   [Drust_util.Univ]: every key owns an exception constructor only it can
   build or open, so [find] is type-safe without magic. *)

type binding = { b_name : string; b_value : exn }

type 'a key = {
  id : int;
  name : string;
  inject : 'a -> exn;
  project : exn -> 'a option;
}

let next_key_id =
  Atomic.make 0
[@@dlint.allow
  "globals: Env key ids are process-wide by construction (a key works \
   across every cluster's Env); atomic for parallel sweep domains"]

let key (type a) ~name : a key =
  let module M = struct
    exception E of a
  end in
  {
    id = Atomic.fetch_and_add next_key_id 1;
    name;
    inject = (fun v -> M.E v);
    project = (function M.E v -> Some v | _ -> None);
  }

let key_name k = k.name

type t = { slots : binding Drust_util.Intmap.t }

let create () = { slots = Drust_util.Intmap.create () }

let find t k =
  match Drust_util.Intmap.find_opt t.slots k.id with
  | None -> None
  | Some b -> k.project b.b_value

let set t k v =
  Drust_util.Intmap.set t.slots k.id { b_name = k.name; b_value = k.inject v }

let get t k ~init =
  match find t k with
  | Some v -> v
  | None ->
      let v = init () in
      set t k v;
      v

let mem t k = Drust_util.Intmap.mem t.slots k.id
let remove t k = Drust_util.Intmap.remove t.slots k.id
let length t = Drust_util.Intmap.length t.slots

let names t =
  Drust_util.Intmap.fold (fun _ b acc -> b.b_name :: acc) t.slots []
  |> List.sort String.compare
