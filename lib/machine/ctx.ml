module Engine = Drust_sim.Engine
module Resource = Drust_sim.Resource

type t = {
  cluster : Cluster.t;
  thread_id : int;
  mutable node : int;
  rng : Drust_util.Rng.t;
  mutable pending_cycles : float;
  mutable local_alloc_bytes : int;
  remote_accesses : int array;
  mutable computed_seconds : float;
  mutable safe_point_hook : (t -> unit) option;
  mutable current_span : Drust_obs.Span.span option;
  mutable op_kind : int;
  mutable layer_cache : exn;
}

let make cluster ~node =
  if node < 0 || node >= Cluster.node_count cluster then
    invalid_arg "Ctx.make: node out of range";
  let id = Cluster.fresh_thread_id cluster in
  {
    cluster;
    thread_id = id;
    node;
    rng = Drust_util.Rng.split (Cluster.rng cluster);
    pending_cycles = 0.0;
    local_alloc_bytes = 0;
    remote_accesses = Array.make (Cluster.node_count cluster) 0;
    computed_seconds = 0.0;
    safe_point_hook = None;
    current_span = None;
    op_kind = -1;
    layer_cache = Not_found;
  }

let cluster t = t.cluster
let current_node t = Cluster.node t.cluster t.node
let engine t = Cluster.engine t.cluster
let fabric t = Cluster.fabric t.cluster
let params t = Cluster.params t.cluster

let safe_point t =
  match t.safe_point_hook with None -> () | Some hook -> hook t

let flush t =
  safe_point t;
  if t.pending_cycles > 0.0 then begin
    let cycles = t.pending_cycles in
    t.pending_cycles <- 0.0;
    let seconds = Params.cycles_to_seconds (params t) cycles in
    t.computed_seconds <- t.computed_seconds +. seconds;
    let cores = (current_node t).Cluster.cores in
    let spans = Cluster.spans t.cluster in
    if Drust_obs.Span.is_enabled spans then begin
      (* Observational only: the same Resource.use / Engine.delay calls
         happen in the same order, so traced runs stay bit-identical. *)
      let module Span = Drust_obs.Span in
      let wait =
        Span.start spans ~track:t.node ?parent:t.current_span
          ~category:"cpu.queue" "core_wait"
      in
      Resource.use cores (fun () ->
          Span.finish spans wait;
          Span.with_span spans ~track:t.node ?parent:t.current_span
            ~category:"cpu.compute" "compute" (fun () ->
              Engine.delay (engine t) seconds))
    end
    else Resource.use cores (fun () -> Engine.delay (engine t) seconds)
  end

let charge_cycles t cycles =
  if cycles < 0.0 then invalid_arg "Ctx.charge_cycles: negative";
  t.pending_cycles <- t.pending_cycles +. cycles;
  let grain = (params t).Params.flush_grain in
  if Params.cycles_to_seconds (params t) t.pending_cycles >= grain then flush t

let compute t ~cycles =
  t.pending_cycles <- t.pending_cycles +. cycles;
  flush t

let note_remote_access t ~target =
  if target <> t.node then
    t.remote_accesses.(target) <- t.remote_accesses.(target) + 1

let note_local_alloc t ~bytes = t.local_alloc_bytes <- t.local_alloc_bytes + bytes

let remote_access_total t = Array.fold_left ( + ) 0 t.remote_accesses

let hottest_remote_node t =
  let best = ref (-1) and best_count = ref 0 in
  Array.iteri
    (fun i c ->
      if i <> t.node && c > !best_count then begin
        best := i;
        best_count := c
      end)
    t.remote_accesses;
  if !best < 0 then None else Some !best

let reset_counters t =
  t.local_alloc_bytes <- 0;
  Array.fill t.remote_accesses 0 (Array.length t.remote_accesses) 0
