(** Per-cluster environment: typed heterogeneous storage for runtime
    state that is scoped to one cluster.

    Historically every layer above [Cluster] kept its per-cluster state
    (protocol statistics, listener hooks, thread registries, measurement
    marks, ...) in process-global [Hashtbl]s keyed by {!Cluster.uid}.
    Those tables were never pruned — state outlived its cluster — and
    they made two clusters in different domains secretly share mutable
    process state, so independent simulations could not run in parallel.

    [Env] replaces that pattern.  A layer declares a typed {!key} once at
    module-initialization time and stores its state {e inside} the
    cluster via {!get}: the binding is created on first use, memoized for
    the cluster's lifetime, and collected with the cluster.  One cluster
    (and hence one [Env.t]) must only ever be touched from a single
    domain; distinct clusters are fully independent.

    The no-process-globals rule this module enforces is linted by
    DLint's [globals] pass (the [@lint] alias, docs/LINTS.md). *)

type 'a key
(** A typed slot identifier.  Keys are cheap; allocate them at module
    initialization, not per call. *)

val key : name:string -> 'a key
(** [key ~name] mints a fresh key.  [name] (conventionally
    ["layer.purpose"], e.g. ["protocol.stats"]) is used only for
    diagnostics; uniqueness comes from the key's identity.  Key
    allocation is atomic and may happen in any domain. *)

val key_name : 'a key -> string

type t
(** One environment, owned by exactly one cluster. *)

val create : unit -> t

val get : t -> 'a key -> init:(unit -> 'a) -> 'a
(** [get t k ~init] returns the binding for [k], creating and memoizing
    it with [init ()] on first access.  This is the normal accessor:
    layers use it to materialize their per-cluster state lazily. *)

val find : t -> 'a key -> 'a option
val set : t -> 'a key -> 'a -> unit
val mem : t -> 'a key -> bool
val remove : t -> 'a key -> unit

val length : t -> int
(** Number of live bindings (used by isolation and leak tests). *)

val names : t -> string list
(** Names of live bindings, sorted (diagnostics). *)
