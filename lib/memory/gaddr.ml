type t = int

let color_bits = 16
let node_bits = 7
let offset_bits = 40

let max_color = (1 lsl color_bits) - 1
let max_nodes = 1 lsl node_bits
let max_offset = (1 lsl offset_bits) - 1

let node_shift = offset_bits
let color_shift = offset_bits + node_bits

let offset_mask = (1 lsl offset_bits) - 1
let node_mask = (1 lsl node_bits) - 1
let color_mask = (1 lsl color_bits) - 1

exception Color_overflow of t

let make ~node ~offset =
  if node < 0 || node >= max_nodes then
    invalid_arg (Printf.sprintf "Gaddr.make: node %d out of range" node);
  if offset < 0 || offset > max_offset then
    invalid_arg (Printf.sprintf "Gaddr.make: offset %d out of range" offset);
  (node lsl node_shift) lor offset

let node_of a = (a lsr node_shift) land node_mask
let offset_of a = a land offset_mask
let color_of a = (a lsr color_shift) land color_mask

let with_color a c =
  if c < 0 || c > max_color then
    invalid_arg (Printf.sprintf "Gaddr.with_color: color %d out of range" c);
  a land lnot (color_mask lsl color_shift) lor (c lsl color_shift)

let clear_color a = a land lnot (color_mask lsl color_shift)

let bump_color a =
  let c = color_of a in
  if c >= max_color then raise (Color_overflow a);
  with_color a (c + 1)

let is_local a ~node = node_of a = node

let to_int a = a

let of_int_exn i =
  if i < 0 || i lsr (color_shift + color_bits) <> 0 then
    invalid_arg "Gaddr.of_int_exn: out of range";
  i

let equal = Int.equal
let compare = Int.compare

(* An address is already a well-mixed non-negative int (node | offset |
   color packed by [make]); hashing it through the polymorphic
   [Hashtbl.hash] would tie the value to the runtime's representation
   choices for no benefit.  The identity is deterministic by
   construction. *)
let hash = to_int

let pp fmt a =
  Format.fprintf fmt "g[n%d+0x%x c%d]" (node_of a) (offset_of a) (color_of a)
