type copy = {
  key : Gaddr.t;
  mutable value : Drust_util.Univ.t;
  size : int;
  mutable refcount : int;
  mutable dead : bool;
  mutable detached : bool;
}

module Metrics = Drust_obs.Metrics

type t = {
  node : int;
  (* Keyed by the physical (color-cleared) address; the copy remembers the
     full colored key so lookups can compare colors in O(1). *)
  map : (Gaddr.t, copy) Hashtbl.t;
  mutable used : int;
  (* Registry-backed statistics (names cache.*, labelled by node). *)
  c_hits : Metrics.counter;
  c_misses : Metrics.counter;
  c_inserts : Metrics.counter;
  c_evictions : Metrics.counter;
  g_used : Metrics.gauge;
}

let create ?metrics ~node () =
  let metrics =
    match metrics with Some m -> m | None -> Metrics.create ()
  in
  let labels = [ ("node", string_of_int node) ] in
  {
    node;
    map = Hashtbl.create 256;
    used = 0;
    c_hits = Metrics.counter metrics ~labels ~unit_:"ops" "cache.hits";
    c_misses = Metrics.counter metrics ~labels ~unit_:"ops" "cache.misses";
    c_inserts = Metrics.counter metrics ~labels ~unit_:"ops" "cache.inserts";
    c_evictions =
      Metrics.counter metrics ~labels ~unit_:"ops" "cache.evictions";
    g_used = Metrics.gauge metrics ~labels ~unit_:"bytes" "cache.used_bytes";
  }

let node t = t.node
let entries t = Hashtbl.length t.map
let used_bytes t = t.used
let set_used t used =
  t.used <- used;
  Metrics.set t.g_used (float_of_int used)

let lookup t g =
  match Hashtbl.find_opt t.map (Gaddr.clear_color g) with
  | Some copy when Gaddr.equal copy.key g && not copy.dead ->
      Metrics.incr t.c_hits;
      Some copy
  | Some _ | None ->
      Metrics.incr t.c_misses;
      None

let reclaim t copy =
  if not copy.dead then begin
    copy.dead <- true;
    set_used t (t.used - copy.size)
  end

(* Remove a copy from the map.  If references still pin it they keep
   reading through their direct record; the bytes are reclaimed when the
   last reference drains ([release]). *)
let detach t phys copy =
  Hashtbl.remove t.map phys;
  copy.detached <- true;
  if copy.refcount = 0 then reclaim t copy

let insert t g ~size v =
  let phys = Gaddr.clear_color g in
  (match Hashtbl.find_opt t.map phys with
  | Some old -> detach t phys old
  | None -> ());
  let copy =
    { key = g; value = v; size; refcount = 1; dead = false; detached = false }
  in
  Hashtbl.replace t.map phys copy;
  Metrics.incr t.c_inserts;
  set_used t (t.used + size);
  copy

let retain copy =
  if copy.dead then invalid_arg "Cache.retain: dead copy";
  copy.refcount <- copy.refcount + 1

let release t copy =
  if copy.refcount <= 0 then invalid_arg "Cache.release: refcount underflow";
  copy.refcount <- copy.refcount - 1;
  if copy.refcount = 0 && copy.detached then reclaim t copy

let invalidate_physical t g =
  let phys = Gaddr.clear_color g in
  match Hashtbl.find_opt t.map phys with
  | None -> ()
  | Some copy -> detach t phys copy

let evict_unreferenced t =
  let reclaimed = ref 0 in
  let victims =
    Hashtbl.fold
      (fun phys copy acc -> if copy.refcount = 0 then (phys, copy) :: acc else acc)
      t.map []
  in
  let kill (phys, copy) =
    reclaimed := !reclaimed + copy.size;
    Metrics.incr t.c_evictions;
    detach t phys copy
  in
  List.iter kill victims;
  !reclaimed

let iter t f = Hashtbl.iter (fun _ copy -> f copy) t.map

let clear t =
  Hashtbl.iter (fun _ copy -> reclaim t copy) t.map;
  Hashtbl.reset t.map;
  set_used t 0

let hits t = Metrics.value t.c_hits
let misses t = Metrics.value t.c_misses

let reset_stats t =
  Metrics.reset_counter t.c_hits;
  Metrics.reset_counter t.c_misses
