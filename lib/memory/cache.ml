type copy = {
  key : Gaddr.t;
  mutable value : Drust_util.Univ.t;
  size : int;
  mutable refcount : int;
  mutable dead : bool;
  mutable detached : bool;
}

module Metrics = Drust_obs.Metrics

(* Observational events for the DSan shadow-state checker (lib/check).
   Emitted synchronously from the state transition that caused them; a
   listener must never touch the engine or any RNG. *)
type event =
  | Hit of { key : Gaddr.t }
  | Stale_miss of { sought : Gaddr.t; cached : Gaddr.t }
  | Insert of { key : Gaddr.t; size : int }
  | Release of { key : Gaddr.t; refcount : int }
  | Invalidate of { key : Gaddr.t }

type t = {
  node : int;
  (* Keyed by the physical (color-cleared) address; the copy remembers the
     full colored key so lookups can compare colors in O(1). *)
  map : copy Drust_util.Intmap.t;
  mutable used : int;
  mutable listener : (event -> unit) option;
  (* Registry-backed statistics (names cache.*, labelled by node). *)
  c_hits : Metrics.counter;
  c_misses : Metrics.counter;
  c_inserts : Metrics.counter;
  c_evictions : Metrics.counter;
  g_used : Metrics.gauge;
}

let create ?metrics ~node () =
  let metrics =
    match metrics with Some m -> m | None -> Metrics.create ()
  in
  let labels = [ ("node", string_of_int node) ] in
  {
    node;
    map = Drust_util.Intmap.create ~capacity:256 ();
    used = 0;
    listener = None;
    c_hits = Metrics.counter metrics ~labels ~unit_:"ops" "cache.hits";
    c_misses = Metrics.counter metrics ~labels ~unit_:"ops" "cache.misses";
    c_inserts = Metrics.counter metrics ~labels ~unit_:"ops" "cache.inserts";
    c_evictions =
      Metrics.counter metrics ~labels ~unit_:"ops" "cache.evictions";
    g_used = Metrics.gauge metrics ~labels ~unit_:"bytes" "cache.used_bytes";
  }

let node t = t.node
let set_listener t l = t.listener <- l
let entries t = Drust_util.Intmap.length t.map
let used_bytes t = t.used
let set_used t used =
  t.used <- used;
  Metrics.set t.g_used (float_of_int used)

let lookup t g =
  match Drust_util.Intmap.find_opt t.map (Gaddr.to_int (Gaddr.clear_color g)) with
  | Some copy when Gaddr.equal copy.key g && not copy.dead ->
      Metrics.incr t.c_hits;
      (match t.listener with None -> () | Some f -> f (Hit { key = copy.key }));
      Some copy
  | Some copy ->
      Metrics.incr t.c_misses;
      (match t.listener with
      | None -> ()
      | Some f -> f (Stale_miss { sought = g; cached = copy.key }));
      None
  | None ->
      Metrics.incr t.c_misses;
      None

let reclaim t copy =
  if not copy.dead then begin
    copy.dead <- true;
    set_used t (t.used - copy.size)
  end

(* Remove a copy from the map.  If references still pin it they keep
   reading through their direct record; the bytes are reclaimed when the
   last reference drains ([release]). *)
let detach t phys copy =
  Drust_util.Intmap.remove t.map phys;
  copy.detached <- true;
  (match t.listener with
  | None -> ()
  | Some f -> f (Invalidate { key = copy.key }));
  if copy.refcount = 0 then reclaim t copy

let insert t g ~size v =
  let phys = Gaddr.to_int (Gaddr.clear_color g) in
  (match Drust_util.Intmap.find_opt t.map phys with
  | Some old -> detach t phys old
  | None -> ());
  let copy =
    { key = g; value = v; size; refcount = 1; dead = false; detached = false }
  in
  Drust_util.Intmap.set t.map phys copy;
  Metrics.incr t.c_inserts;
  set_used t (t.used + size);
  (match t.listener with
  | None -> ()
  | Some f -> f (Insert { key = g; size }));
  copy

let retain copy =
  if copy.dead then invalid_arg "Cache.retain: dead copy";
  copy.refcount <- copy.refcount + 1

let release t copy =
  (* The event carries the post-decrement count and fires before the
     underflow guard, so a shadow checker observes the violation even
     though the operation itself is then rejected. *)
  (match t.listener with
  | None -> ()
  | Some f -> f (Release { key = copy.key; refcount = copy.refcount - 1 }));
  if copy.refcount <= 0 then invalid_arg "Cache.release: refcount underflow";
  copy.refcount <- copy.refcount - 1;
  if copy.refcount = 0 && copy.detached then reclaim t copy

let invalidate_physical t g =
  let phys = Gaddr.to_int (Gaddr.clear_color g) in
  match Drust_util.Intmap.find_opt t.map phys with
  | None -> ()
  | Some copy -> detach t phys copy

(* Drop every copy of an object homed in [home]'s address range, whatever
   its color.  Used by failover promotion: the promoted replica may lag the
   lost primary (asynchronous batching), so copies fetched from the primary
   can hold values the promoted store never received — they must not keep
   serving reads under a still-current colored address. *)
let invalidate_home t ~home =
  let victims =
    Drust_util.Intmap.fold
      (fun phys copy acc ->
        if Gaddr.node_of copy.key = home then (phys, copy) :: acc else acc)
      t.map []
  in
  List.iter (fun (phys, copy) -> detach t phys copy) victims;
  List.length victims

let evict_unreferenced t =
  let reclaimed = ref 0 in
  let victims =
    Drust_util.Intmap.fold
      (fun phys copy acc -> if copy.refcount = 0 then (phys, copy) :: acc else acc)
      t.map []
  in
  let kill (phys, copy) =
    reclaimed := !reclaimed + copy.size;
    Metrics.incr t.c_evictions;
    detach t phys copy
  in
  List.iter kill victims;
  !reclaimed

let iter t f = Drust_util.Intmap.iter (fun _ copy -> f copy) t.map

let clear t =
  Drust_util.Intmap.iter (fun _ copy -> reclaim t copy) t.map;
  Drust_util.Intmap.clear t.map;
  set_used t 0

let hits t = Metrics.value t.c_hits
let misses t = Metrics.value t.c_misses

let reset_stats t =
  Metrics.reset_counter t.c_hits;
  Metrics.reset_counter t.c_misses
