module Intmap = Drust_util.Intmap

type entry = { mutable value : Drust_util.Univ.t; size : int }

(* Size-class free lists: freed offsets are recycled for any request that
   fits the same class, which keeps the bump pointer from running away in
   long simulations with allocation churn.  Classes are powers of two
   from 16 bytes; [free_lists.(i)] holds the LIFO of freed offsets for
   class [16 lsl i] (the max offset is 2^40, so 40 slots cover every
   representable class). *)
type t = {
  node : int;
  capacity : int;
  objects : entry Intmap.t; (* keyed by color-less offset *)
  free_lists : int list array; (* class index -> freed offsets, LIFO *)
  mutable bump : int;
  mutable used : int;
}

exception Out_of_memory of { node : int; requested : int }

let create ~node ~capacity_bytes =
  if capacity_bytes <= 0 then invalid_arg "Partition.create: empty capacity";
  {
    node;
    capacity = capacity_bytes;
    objects = Intmap.create ~capacity:1024 ();
    free_lists = Array.make 48 [];
    bump = 8; (* offset 0 is reserved as a null-like sentinel *)
    used = 0;
  }

let node t = t.node
let capacity_bytes t = t.capacity
let used_bytes t = t.used
let live_objects t = Intmap.length t.objects
let usage_fraction t = Float.of_int t.used /. Float.of_int t.capacity

(* Round a request up to its size class (powers of two from 16 bytes),
   also yielding the free-list index for that class. *)
let size_class size =
  let rec up c = if c >= size then c else up (c * 2) in
  up 16

let class_index cls =
  let rec go c i = if c >= cls then i else go (c * 2) (i + 1) in
  go 16 0

let take_free t idx =
  match t.free_lists.(idx) with
  | off :: rest ->
      t.free_lists.(idx) <- rest;
      Some off
  | [] -> None

let alloc t ~size v =
  if size < 0 then invalid_arg "Partition.alloc: negative size";
  let cls = size_class (max 1 size) in
  if t.used + cls > t.capacity then
    raise (Out_of_memory { node = t.node; requested = size });
  let offset =
    match take_free t (class_index cls) with
    | Some off -> off
    | None ->
        let off = t.bump in
        t.bump <- t.bump + cls;
        if t.bump > Gaddr.max_offset then
          raise (Out_of_memory { node = t.node; requested = size });
        off
  in
  Intmap.set t.objects offset { value = v; size };
  t.used <- t.used + cls;
  Gaddr.make ~node:t.node ~offset

let check_home t a label =
  if Gaddr.node_of a <> t.node then
    invalid_arg
      (Printf.sprintf "Partition.%s: address on node %d, partition is node %d"
         label (Gaddr.node_of a) t.node)

let free t a =
  check_home t a "free";
  let off = Gaddr.offset_of a in
  match Intmap.find_opt t.objects off with
  | None -> invalid_arg "Partition.free: dead address"
  | Some e ->
      Intmap.remove t.objects off;
      let cls = size_class (max 1 e.size) in
      t.used <- t.used - cls;
      let idx = class_index cls in
      t.free_lists.(idx) <- off :: t.free_lists.(idx)

let get t a =
  check_home t a "get";
  Intmap.find t.objects (Gaddr.offset_of a)

let mem t a = Gaddr.node_of a = t.node && Intmap.mem t.objects (Gaddr.offset_of a)

let set t a v =
  check_home t a "set";
  match Intmap.find_opt t.objects (Gaddr.offset_of a) with
  | None -> invalid_arg "Partition.set: dead address"
  | Some e -> e.value <- v

let put t a ~size v =
  check_home t a "put";
  let off = Gaddr.offset_of a in
  let cls = size_class (max 1 size) in
  (match Intmap.find_opt t.objects off with
  | Some old -> t.used <- t.used - size_class (max 1 old.size)
  | None -> ());
  Intmap.set t.objects off { value = v; size };
  t.used <- t.used + cls;
  (* Keep the bump pointer ahead of mirrored offsets so that a promoted
     backup never mints an address that collides with a mirrored object. *)
  if off + cls > t.bump then t.bump <- off + cls

let remove t a =
  check_home t a "remove";
  let off = Gaddr.offset_of a in
  match Intmap.find_opt t.objects off with
  | None -> ()
  | Some e ->
      Intmap.remove t.objects off;
      t.used <- t.used - size_class (max 1 e.size)

let iter t f =
  Intmap.iter (fun off e -> f (Gaddr.make ~node:t.node ~offset:off) e) t.objects

let clear t =
  Intmap.clear t.objects;
  Array.fill t.free_lists 0 (Array.length t.free_lists) [];
  t.bump <- 8;
  t.used <- 0
