(** Per-node read-only object cache (the paper's hashmap [H], §4.1.1).

    The "cache" is a virtual aggregation of local copies living in the
    regular heap: a hashmap from an object's {e colored} global address to
    the local copy and the count of live immutable references using it.
    Because the key includes the color, any write to the object (which
    either moves it or bumps its color) makes every stale entry
    unreachable — that is the protocol's implicit invalidation.

    Copies are owned by the references that pinned them: an entry may only
    be evicted once its reference count drops to zero, which the runtime
    does lazily under memory pressure. *)

type t

type copy = {
  key : Gaddr.t;  (** colored global address the copy was fetched under *)
  mutable value : Drust_util.Univ.t;
  size : int;
  mutable refcount : int;
  mutable dead : bool;  (** set on eviction/invalidation *)
  mutable detached : bool;
      (** no longer reachable from the map (displaced by a newer version
          or invalidated) but still pinned by live references *)
}

val create : ?metrics:Drust_obs.Metrics.t -> node:int -> unit -> t
(** [metrics] is the registry the [cache.*] statistics (hits, misses,
    inserts, evictions, used bytes — labelled by node) report into;
    defaults to a fresh private registry. *)

(** {1 Shadow-state events}

    Observational hook for the DSan sanitizer ([lib/check]): one event per
    cache transition, emitted synchronously.  [Release] fires {e before}
    the underflow guard and carries the post-decrement count, so a checker
    observes an underflow the operation itself then rejects.  [retain] has
    no cache handle and is therefore not hooked; the checker audits
    refcounts at [Release] time instead. *)
type event =
  | Hit of { key : Gaddr.t }
  | Stale_miss of { sought : Gaddr.t; cached : Gaddr.t }
      (** a lookup found a copy under the physical address whose colored
          key did not match — the implicit-invalidation path *)
  | Insert of { key : Gaddr.t; size : int }
  | Release of { key : Gaddr.t; refcount : int }
  | Invalidate of { key : Gaddr.t }
      (** the copy left the map: displaced, invalidated, or evicted *)

val set_listener : t -> (event -> unit) option -> unit
(** The listener must never touch the engine or any RNG. *)

val node : t -> int
val entries : t -> int
val used_bytes : t -> int

val lookup : t -> Gaddr.t -> copy option
(** [lookup t g] finds a live copy cached under exactly the colored
    address [g]; a copy fetched under a stale color never matches. *)

val insert : t -> Gaddr.t -> size:int -> Drust_util.Univ.t -> copy
(** [insert t g ~size v] records a fresh copy with refcount 1.  Any older
    copy cached under the same physical address (different color) is
    displaced from the map — live references keep reading it through their
    direct [copy] record, exactly like the paper's dangling-but-refcounted
    local copies. *)

val retain : copy -> unit
(** Increment the reference count ([Deref] cache hit, Alg. 4 line 10). *)

val release : t -> copy -> unit
(** Decrement the reference count ([DropRef], Alg. 4 line 20).  A displaced
    copy whose count drains to zero is reclaimed immediately.  Raises
    [Invalid_argument] below zero. *)

val invalidate_physical : t -> Gaddr.t -> unit
(** Remove whatever copy is cached under this physical address, regardless
    of color — the asynchronous invalidation performed when an object is
    deallocated or moved away (App. B.4), preventing a reallocation at the
    same address from hitting a stale entry. *)

val invalidate_home : t -> home:int -> int
(** Remove every copy whose object is homed in [home]'s address range,
    regardless of color; returns the number of copies dropped.  Failover
    promotion calls this on every surviving node: the promoted replica may
    lag the lost primary, so copies fetched from the primary must not keep
    serving reads (§4.2.3). *)

val evict_unreferenced : t -> int
(** Drop all refcount-0 entries; returns bytes reclaimed.  This is the
    lazy reclamation the runtime triggers under memory pressure. *)

val iter : t -> (copy -> unit) -> unit
val clear : t -> unit

(** {1 Statistics}

    Backed by the metrics registry ([cache.hits] / [cache.misses]);
    these accessors read the node's counters. *)

val hits : t -> int
val misses : t -> int

val reset_stats : t -> unit
(** Zero hits and misses (inserts/evictions are left to accumulate). *)
