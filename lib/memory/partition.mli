(** One node's heap partition.

    Stores the objects whose global addresses fall in this node's range and
    implements the allocator the DRust runtime exposes (§4.2.1): size-class
    free lists over a bump region, biased toward local allocation.  The
    partition also tracks live bytes so the runtime can detect memory
    pressure (> 90 % usage triggers the controller's migration policy). *)

type t

type entry = {
  mutable value : Drust_util.Univ.t;
      (** updated in place on {!set} — callers that need a snapshot must
          read it out immediately *)
  size : int;  (** payload bytes, used for transfer-cost accounting *)
}

val create : node:int -> capacity_bytes:int -> t

val node : t -> int
val capacity_bytes : t -> int
val used_bytes : t -> int
val live_objects : t -> int

val usage_fraction : t -> float
(** [used/capacity] — the controller's memory-pressure signal. *)

exception Out_of_memory of { node : int; requested : int }

val alloc : t -> size:int -> Drust_util.Univ.t -> Gaddr.t
(** [alloc t ~size v] stores [v], returning a fresh color-0 global address
    in this partition.  Raises {!Out_of_memory} when the partition cannot
    hold [size] more bytes. *)

val free : t -> Gaddr.t -> unit
(** Releases the object.  Raises [Invalid_argument] on a foreign or dead
    address (the color field is ignored). *)

val get : t -> Gaddr.t -> entry
(** Raises [Not_found] for a dead or never-allocated address. *)

val mem : t -> Gaddr.t -> bool

val set : t -> Gaddr.t -> Drust_util.Univ.t -> unit
(** In-place update (the object keeps its address and size class). *)

val put : t -> Gaddr.t -> size:int -> Drust_util.Univ.t -> unit
(** Upsert at an exact offset, used by the replication manager to mirror a
    primary partition into its backup: the backup must hold objects at the
    same addresses the primary minted. *)

val remove : t -> Gaddr.t -> unit
(** Like {!free} but silently ignores dead addresses (replication uses it
    to mirror deallocations). *)

val iter : t -> (Gaddr.t -> entry -> unit) -> unit
(** Iterate live objects — used by the replication manager to snapshot a
    partition for a new backup. *)

val clear : t -> unit
