module B = Bench_setup
module Appkit = Drust_appkit.Appkit
module Cluster = Drust_machine.Cluster
module Df = Drust_dataframe.Dataframe

type row = { label : string; speedup : float; vs_plain : float }

let run_variant ~use_tbox ~use_spawn_to =
  let params = B.testbed ~nodes:8 () in
  let cluster = Cluster.create params in
  let backend = B.make_backend B.Drust cluster in
  let r =
    Df.run ~cluster ~backend
      { Df.default_config with Df.use_tbox; use_spawn_to }
  in
  let snap = Drust_obs.Metrics.snapshot (Cluster.metrics cluster) in
  (r, Report.latency_of_snapshot snap)

let run () =
  (* The three variants are independent clusters: fan them out, then
     record and render sequentially in the fixed order. *)
  B.precompute_baselines [ B.Dataframe_app ];
  let variants =
    Parallel.run
      [
        (fun () -> run_variant ~use_tbox:false ~use_spawn_to:false);
        (fun () -> run_variant ~use_tbox:true ~use_spawn_to:false);
        (fun () -> run_variant ~use_tbox:true ~use_spawn_to:true);
      ]
  in
  let (plain, plain_lat), (tbox, tbox_lat), (both, both_lat) =
    match variants with
    | [ a; b; c ] -> (a, b, c)
    | _ -> assert false
  in
  Report.section "Figure 6: DataFrame affinity annotations (DRust, 8 nodes)";
  let base = B.single_node_baseline B.Dataframe_app in
  let mk label (r, latency) paper =
    Report.record_rate ?latency
      ~experiment:("fig6/" ^ label)
      ~ops:r.Appkit.ops ~elapsed:r.Appkit.elapsed ();
    let speedup = r.Appkit.throughput /. base.Appkit.throughput in
    let vs_plain = r.Appkit.throughput /. plain.Appkit.throughput in
    ( { label; speedup; vs_plain },
      [
        label;
        Report.cell_f speedup;
        Printf.sprintf "%+.1f%%" (100.0 *. (vs_plain -. 1.0));
        paper;
      ] )
  in
  let r1, c1 = mk "no annotations" (plain, plain_lat) "-" in
  let r2, c2 = mk "+ TBox" (tbox, tbox_lat) "+12%" in
  let r3, c3 = mk "+ TBox + spawn_to" (both, both_lat) "+21% (12%+9%)" in
  Report.table
    ~header:[ "variant"; "speedup vs orig"; "vs plain"; "paper" ]
    ~rows:[ c1; c2; c3 ];
  [ r1; r2; r3 ]
