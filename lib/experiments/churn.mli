(** Elastic-membership churn experiment.

    Drives a seeded plan of standby joins, graceful leaves, and
    fail-stop crashes — one injected {e mid-handoff} — against a
    zipf-skewed KV workload, with epoch-stamped client verbs, and
    asserts zero lost committed writes, zero unrecoverable ranges, full
    crash detection, and seed-determinism.  Runs at 64 nodes by default
    (the paper-scale configuration) and at 16 nodes for the CI
    [@churn] alias. *)

type result = Drust_plan.Scenario.churn_result = {
  seed : int;
  nodes : int;
  total_ops : int;
  failed_ops : int;
  lost_writes : int;
      (** keys whose final value fell below their committed floor *)
  unreadable_keys : int;
  joins : int;  (** committed joins *)
  leaves : int;  (** completed graceful leaves *)
  handoff_commits : int;
  handoff_aborts : int;
  final_epoch : int;
  stale_epochs : int;  (** verbs NAKed for carrying an old view epoch *)
  retries : int;
  crashes : (int * float) list;  (** (victim, crash time) *)
  detection : (int * float) list;  (** (victim, crash -> verdict latency) *)
  recovery : (int * float) list;
      (** (victim, crash -> first successful write to a range it served) *)
  handoff_latency : float list;
      (** driver-observed duration of each committed join/leave *)
  unrecoverable : int list;
  op_latency : Drust_obs.Metrics.histo option;
}

val run_once : seed:int -> nodes:int -> unit -> result
(** One seeded churn run (pure function of [seed] and [nodes]):
    builds the canonical plan ({!Drust_plan.Simplan.churn_plan}) and
    [Simplan.execute]s it. *)

val churn_percentiles : result list -> (string * int * float * float) list
(** [(phase, samples, p50, p99)] in seconds for the ["handoff"],
    ["detection"], and ["recovery"] phases. *)

val run : ?seed:int -> ?nodes:int -> unit -> result
(** Run the base seed twice (bit-identity check) plus two more seeds,
    print the membership/latency report, record the [churn/*] summary
    entries, and fail on any lost write, unrecoverable range, missed
    detection, missing join/leave, never-aborted sabotage, or
    determinism divergence.  Returns the base-seed result. *)
