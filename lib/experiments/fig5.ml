module B = Bench_setup
module Appkit = Drust_appkit.Appkit

type row = {
  app : B.app;
  system : B.system;
  nodes : int;
  speedup : float;
  throughput : float;
}

let paper_8node =
  [
    (B.Dataframe_app, B.Drust, 5.57);
    (B.Dataframe_app, B.Gam, 2.18);
    (B.Dataframe_app, B.Grappa, 1.69);
    (B.Socialnet_app, B.Drust, 3.51);
    (B.Socialnet_app, B.Gam, 1.33);
    (B.Socialnet_app, B.Grappa, 1.39);
    (B.Gemm_app, B.Drust, 5.93);
    (B.Gemm_app, B.Gam, 3.82);
    (B.Gemm_app, B.Grappa, 2.02);
    (B.Kvstore_app, B.Drust, 3.34);
    (B.Kvstore_app, B.Gam, 2.50);
  ]

let paper_at app system =
  List.fold_left
    (fun acc (a, s, v) -> if a = app && s = system then Some v else acc)
    None paper_8node

let systems_of app =
  B.all_systems @ if app = B.Socialnet_app then [ B.Original ] else []

let run ?(node_counts = [ 1; 2; 4; 8 ]) () =
  (* Parallel phase: each (app, system, nodes) cell is an independent
     cluster, so the grid fans out over the domain pool.  Nothing in a
     job touches stdout or the rate registry — all rendering and
     recording happens below, in submission order, so the output is
     byte-identical for every --jobs value. *)
  B.precompute_baselines B.all_apps;
  let grid =
    List.concat_map
      (fun app ->
        List.concat_map
          (fun system ->
            List.map (fun nodes -> (app, system, nodes)) node_counts)
          (systems_of app))
      B.all_apps
  in
  let results =
    Parallel.map
      (fun (app, system, nodes) ->
        B.run_app_with_latency app system
          ~pass_by_value:(system = B.Original)
          ~params:(B.testbed ~nodes ()))
      grid
  in
  let cells = List.combine grid results in
  let result_at app system nodes =
    List.assoc (app, system, nodes) cells
  in
  (* Sequential phase: record and render in the fixed grid order. *)
  let rows = ref [] in
  let record app system nodes (result, latency) =
    let base = B.single_node_baseline app in
    Report.record_rate ?latency
      ~experiment:
        (Printf.sprintf "fig5/%s/%s/%dn" (B.app_name app)
           (B.system_name system) nodes)
      ~ops:result.Appkit.ops ~elapsed:result.Appkit.elapsed ();
    let speedup = result.Appkit.throughput /. base.Appkit.throughput in
    rows :=
      { app; system; nodes; speedup; throughput = result.Appkit.throughput }
      :: !rows;
    speedup
  in
  List.iter
    (fun app ->
      Report.section
        (Printf.sprintf "Figure 5: %s scaling (normalized to 1-node original, %s)"
           (B.app_name app)
           (Report.cell_rate (B.single_node_baseline app).Appkit.throughput));
      let body =
        List.map
          (fun system ->
            let cells =
              List.map
                (fun nodes ->
                  Report.cell_f
                    (record app system nodes (result_at app system nodes)))
                node_counts
            in
            let paper =
              match paper_at app system with
              | Some v -> Printf.sprintf "%.2f" v
              | None -> "-"
            in
            (B.system_name system :: cells) @ [ paper ])
          (systems_of app)
      in
      Report.table
        ~header:
          (("system"
           :: List.map (fun n -> Printf.sprintf "%dn" n) node_counts)
          @ [ "paper@8n" ])
        ~rows:body)
    B.all_apps;
  List.rev !rows
