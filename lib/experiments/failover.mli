(** Availability-under-crash experiment.

    Runs a pinned-key KV workload on 4 nodes while the fault plan crashes
    a primary mid-flight; the controller's heartbeat detector declares it
    dead and promotes the backups with {e zero} application involvement.
    Reports detection latency, recovery time, and a throughput
    dip-and-recover curve. *)

type result = {
  seed : int;
  victim : int;
  crash_time : float;
  detection_time : float option;
      (** absolute virtual time of the detector's verdict *)
  recovery_time : float option;
      (** first successful write to the victim's range after the crash *)
  curve : int array;  (** completed ops per [bucket]-second window *)
  bucket : float;
  total_ops : int;
  failed_ops : int;
  retries : int;
  timeouts : int;
  drops : int;
}

val run_once : seed:int -> unit -> result
(** One seeded chaos run (pure function of [seed]). *)

val run : ?seed:int -> unit -> result
(** Run twice with the same seed, print the curve and latencies, and fail
    if the detector never fired, recovery never happened, or the two runs
    were not bit-identical. *)
