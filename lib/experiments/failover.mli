(** Availability-under-crash experiment.

    Runs a pinned-key KV workload on 4 nodes while the fault plan crashes
    a primary mid-flight; the controller's heartbeat detector declares it
    dead and promotes the backups with {e zero} application involvement.
    Reports detection latency, recovery time, and a throughput
    dip-and-recover curve. *)

type result = Drust_plan.Scenario.failover_result = {
  seed : int;
  victim : int;
  crash_time : float;
  detection_time : float option;
      (** absolute virtual time of the detector's verdict *)
  recovery_time : float option;
      (** first successful write to the victim's range after the crash *)
  curve : int array;  (** completed ops per [bucket]-second window *)
  bucket : float;
  total_ops : int;
  failed_ops : int;
  retries : int;
  timeouts : int;
  drops : int;
  op_latency : Drust_obs.Metrics.histo option;
      (** the run's merged [protocol.op_latency] distribution *)
}

val run_once : seed:int -> unit -> result
(** One seeded chaos run (pure function of [seed]): builds the
    canonical plan ({!Drust_plan.Simplan.failover_plan}) and
    [Simplan.execute]s it. *)

val failover_percentiles : result list -> (string * int * float * float) list
(** [(phase, samples, p50, p99)] in seconds for the ["detection"] and
    ["recovery"] phases, computed by folding per-seed latencies into
    bucket histograms and reading {!Drust_obs.Metrics.quantile}s. *)

val run : ?seed:int -> unit -> result
(** Run the base seed twice (bit-identity check) plus four more seeds,
    print the curve, per-phase p50/p99 failover latencies, and fail if
    the detector never fired, recovery never happened, the same-seed
    runs diverged, or p99 < p50.  Emits the base-seed plan artifact
    ({!Report.emit_plan}) next to the results.  Returns the base-seed
    result. *)
