module B = Bench_setup
module Simplan = Drust_plan.Simplan
module Appkit = Drust_appkit.Appkit
module Ycsb = Drust_workloads.Ycsb

type row = {
  workload : Ycsb.workload;
  system : B.system;
  speedup : float;
}

let suite_ops = 24_000

let run_one w system ~nodes =
  let plan =
    Simplan.ycsb_plan ~params:(B.testbed ~nodes ()) ~mix:w ~ops:suite_ops
      system
  in
  match (Simplan.execute plan).Simplan.result with
  | Simplan.App_done { result; latency; _ } -> (result, latency)
  | Simplan.Failover_done _ | Simplan.Churn_done _ -> assert false

let run () =
  (* Parallel phase: one job per (workload, deployment) cell — the
     1-node baseline and each 8-node system run are all independent
     clusters.  Recording and rendering happen afterwards in grid
     order, so output is byte-identical for every --jobs value. *)
  let grid =
    List.concat_map
      (fun w ->
        (w, `Base) :: List.map (fun system -> (w, `Sys system)) B.all_systems)
      Ycsb.all_workloads
  in
  let results =
    Parallel.map
      (fun (w, cell) ->
        match cell with
        | `Base -> run_one w B.Original ~nodes:1
        | `Sys system -> run_one w system ~nodes:8)
      grid
  in
  let cells = List.combine grid results in
  Report.section "Extension: YCSB core workloads A-F (KV store, 8 nodes)";
  let rows = ref [] in
  let body =
    List.map
      (fun w ->
        let base, _ = List.assoc (w, `Base) cells in
        let cells_ =
          List.map
            (fun system ->
              let r, latency = List.assoc (w, `Sys system) cells in
              Report.record_rate ?latency
                ~experiment:
                  (Printf.sprintf "ycsb/%s/%s" (Ycsb.workload_name w)
                     (B.system_name system))
                ~ops:r.Appkit.ops ~elapsed:r.Appkit.elapsed ();
              let speedup = r.Appkit.throughput /. base.Appkit.throughput in
              rows := { workload = w; system; speedup } :: !rows;
              Report.cell_f speedup)
            B.all_systems
        in
        Ycsb.workload_name w :: cells_)
      Ycsb.all_workloads
  in
  Report.table
    ~header:("workload" :: List.map B.system_name B.all_systems)
    ~rows:body;
  Report.note "speedup vs the same workload on the 1-node original";
  List.rev !rows
