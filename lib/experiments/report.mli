(** Table rendering for the benchmark harness.

    Every experiment prints a fixed-width table of measured values next to
    the numbers the paper reports, so paper-vs-measured comparison (and
    EXPERIMENTS.md) can be regenerated mechanically. *)

val set_csv_dir : string option -> unit
(** When set, every {!table} is also written as
    [<dir>/<section-slug>.csv] (created if missing) so results can be
    plotted downstream. *)

val section : string -> unit
(** Print a banner for one experiment. *)

val table : header:string list -> rows:string list list -> unit
(** Fixed-width table; column widths derived from contents. *)

val cell_f : float -> string
(** Format a ratio/speedup with 2 decimals. *)

val cell_pct : float -> string
(** Format a fraction as a percentage. *)

val cell_rate : float -> string
(** Human-readable ops/s. *)

val cell_time : float -> string
(** Human-readable duration. *)

val note : string -> unit

(** {1 Benchmark summary}

    Experiments report one headline rate each; [bench/main.exe] writes
    the collected registry as [BENCH_summary.json] at exit (schema
    [drust-bench-summary/v1], documented in docs/BENCHMARKS.md). *)

val record_rate : experiment:string -> ops:float -> elapsed:float -> unit
(** Register [ops /. elapsed] (operations per {e simulated} second)
    under [experiment].  Re-recording an experiment overwrites it in
    place; non-positive [elapsed] is ignored.  Safe to call from
    {!Parallel} sweep domains (mutex-protected). *)

val recorded_rates : unit -> (string * float) list
(** The registry so far, sorted by experiment name — the summary is
    byte-identical regardless of recording order or [--jobs]. *)

val write_bench_summary : path:string -> unit
(** Write the registry as JSON to [path]. *)

(** {1 Metrics snapshots} *)

val metric_total : Drust_obs.Metrics.snapshot -> string -> int
(** Sum of a counter across all label sets (see
    {!Drust_obs.Metrics.total}). *)

val metrics_table : ?prefix:string -> Drust_obs.Metrics.snapshot -> unit
(** Render a snapshot as a table, one row per (name, labels) sample;
    [prefix] filters by metric-name prefix.  Empty selections print
    nothing. *)
