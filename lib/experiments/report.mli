(** Table rendering for the benchmark harness.

    Every experiment prints a fixed-width table of measured values next to
    the numbers the paper reports, so paper-vs-measured comparison (and
    EXPERIMENTS.md) can be regenerated mechanically. *)

val set_csv_dir : string option -> unit
(** When set, every {!table} is also written as
    [<dir>/<section-slug>.csv] (created if missing) so results can be
    plotted downstream. *)

val section : string -> unit
(** Print a banner for one experiment. *)

val table : header:string list -> rows:string list list -> unit
(** Fixed-width table; column widths derived from contents. *)

val cell_f : float -> string
(** Format a ratio/speedup with 2 decimals. *)

val cell_pct : float -> string
(** Format a fraction as a percentage. *)

val cell_rate : float -> string
(** Human-readable ops/s. *)

val cell_time : float -> string
(** Human-readable duration. *)

val note : string -> unit

(** {1 Benchmark summary}

    Experiments report one headline rate each, optionally with an
    operation-latency histogram; [bench/main.exe] writes the collected
    registry as [BENCH_summary.json] at exit (schema
    {!schema_version}, documented in docs/BENCHMARKS.md). *)

val schema_version : string
(** The summary schema this build writes: ["drust-bench-summary/v3"]
    (v2 plus an optional per-entry [host_ms] wall-clock field).
    {!read_bench_summary} also accepts the earlier v1 (rates only) and
    v2 (rates + percentiles) schemas. *)

val set_host_time_recording : bool -> unit
(** Enable capturing [?host_ms] values passed to {!record_rate}
    (default off).  Host time is machine-dependent, so it is kept out
    of summaries unless a host-gating run — the [@bench-diff] alias
    via [bench/main.exe --host-time] — asks for it; plain runs stay
    byte-identical across machines and [--jobs] values. *)

val host_time_recording : unit -> bool

val percentile_points : (string * float) list
(** The percentile points every latency histogram is reduced to:
    [("p50", 0.5); ("p95", 0.95); ("p99", 0.99); ("p99.9", 0.999)]. *)

val latency_percentiles :
  Drust_obs.Metrics.histo -> (string * float) list
(** {!percentile_points} evaluated on a histogram via
    {!Drust_obs.Metrics.quantile}, in {e microseconds}. *)

val latency_of_snapshot :
  Drust_obs.Metrics.snapshot -> Drust_obs.Metrics.histo option
(** Merge every [protocol.op_latency] histogram (one per op kind) in a
    snapshot into a single all-ops distribution; [None] when the
    snapshot holds no samples. *)

val record_rate :
  ?latency:Drust_obs.Metrics.histo ->
  ?host_ms:float ->
  ?host_rate:float ->
  experiment:string ->
  ops:float ->
  elapsed:float ->
  unit ->
  unit
(** Register [ops /. elapsed] (operations per {e simulated} second)
    under [experiment], optionally with the run's operation-latency
    histogram (surfaced as [latency_us] percentiles in the summary),
    its host wall-clock cost in milliseconds, and the profiler's engine
    throughput in dispatched events per host second ([host_ms] and
    [host_rate] are dropped unless {!set_host_time_recording} is on).
    Re-recording an experiment overwrites it in place; non-positive
    [elapsed] is ignored.  Safe to call from {!Parallel} sweep domains
    (mutex-protected). *)

type bench_entry = {
  be_rate : float;
  be_latency : Drust_obs.Metrics.histo option;
  be_host_ms : float option;
  be_host_rate : float option;
}

val recorded_entries : unit -> (string * bench_entry) list
(** The registry so far, sorted by experiment name — the summary is
    byte-identical regardless of recording order or [--jobs]. *)

val recorded_rates : unit -> (string * float) list
(** {!recorded_entries} reduced to the headline rates. *)

val write_bench_summary : path:string -> unit
(** Write the registry as JSON to [path] (via {!Drust_util.Json}). *)

val emit_plan : Drust_plan.Simplan.t -> unit
(** Write the plan that describes a run as [<name>.plan.json] next to
    the results (the CSV directory when {!set_csv_dir} is active, the
    working directory otherwise), so the exact scenario behind any
    result can be replayed with [--plan]. *)

(** {2 Reading and regression comparison}

    The [tools/bench_diff.exe] gate parses two summaries (either
    schema) and fails on per-entry relative regressions. *)

type summary_entry = {
  se_rate : float;  (** [ops_per_sim_sec] *)
  se_latency_us : (string * float) list;
      (** percentile label -> µs; empty for v1 entries *)
  se_host_ms : float option;
      (** host wall-clock ms; [None] for v1/v2 entries and for v3 runs
          without [--host-time] *)
  se_host_rate : float option;
      (** engine throughput in dispatched events per host second;
          [None] unless the entry came from a [--host-time] profile
          run *)
}

type summary = {
  sm_schema : string;
  sm_entries : (string * summary_entry) list;
}

val read_bench_summary : path:string -> summary
(** Parse a summary file (v1, v2 or v3).  Raises [Failure] with a
    path-prefixed message on unreadable input or an unknown schema. *)

val compare_summaries :
  ?tolerance:float ->
  ?tolerance_host:float ->
  baseline:summary ->
  summary ->
  string list
(** [compare_summaries ~baseline current]: one description per
    regression — a baseline entry missing from [current], a throughput
    drop below [baseline * (1 - tolerance)], a latency percentile
    above [baseline * (1 + tolerance)], a host time above
    [baseline * (1 + tolerance_host)] (checked only when both sides
    carry [host_ms]), or a host engine throughput below
    [baseline / (1 + tolerance_host)] (both sides carrying
    [host_events_per_sec]).  [tolerance] defaults to 0.10; [tolerance_host]
    defaults to 2.0 — host time is wall-clock, so only a 3x blowup
    counts as a regression, not scheduler noise.  An empty list means
    no regression. *)

(** {1 Metrics snapshots} *)

val metric_total : Drust_obs.Metrics.snapshot -> string -> int
(** Sum of a counter across all label sets (see
    {!Drust_obs.Metrics.total}). *)

val metrics_table : ?prefix:string -> Drust_obs.Metrics.snapshot -> unit
(** Render a snapshot as a table, one row per (name, labels) sample;
    histogram rows additionally fill the p50/p95/p99 columns (via
    {!Drust_obs.Metrics.quantile}, in the metric's own unit).
    [prefix] filters by metric-name prefix.  Empty selections print
    nothing. *)
