(* Elastic membership under fire: the churn experiment.

   A zipf-skewed KV workload runs on a large cluster while a seeded
   driver churns the membership — standby nodes join (each join pulls a
   heap range off the most-loaded member), active members leave
   gracefully (draining write-backs, then handing every served range to
   the least-loaded survivor), and two nodes fail-stop: one on a fixed
   schedule, one injected *mid-handoff* by a watcher that polls the
   in-flight transfer and crashes the departing server between copy
   chunks.  The aborted handoff must fall back to the heartbeat
   detector's ordinary promotion path.

   Clients stamp a routing probe on every operation with the view epoch
   their node last heard ([Membership.known_epoch]); a verb carrying a
   stale epoch is NAKed at serve time ([Fabric.Stale_epoch]) and
   retried by [Fabric.retry_with_backoff] once the announcement lands.

   The run asserts the three headline robustness properties:

   - zero lost committed writes: every key's final value is >= the
     number of acknowledged increments (for crash-affected ranges, >=
     the count as of the last replication sync before the crash —
     asynchronous replication makes no promise about unsynced tails);
   - zero unrecoverable ranges (no cascading chain exhaustion);
   - determinism: two runs with the same seed are bit-identical, under
     any --jobs value.

   Reported latencies: handoff (driver-observed join/leave duration),
   detection (crash -> detector verdict), recovery (crash -> first
   successful write to a range the victim was serving). *)

module Engine = Drust_sim.Engine
module Fault = Drust_sim.Fault
module Cluster = Drust_machine.Cluster
module Params = Drust_machine.Params
module Ctx = Drust_machine.Ctx
module Fabric = Drust_net.Fabric
module Controller = Drust_runtime.Controller
module Replication = Drust_runtime.Replication
module Membership = Drust_runtime.Membership
module P = Drust_core.Protocol
module Rng = Drust_util.Rng
module Univ = Drust_util.Univ
module Metrics = Drust_obs.Metrics

let int_tag : int Univ.tag = Univ.create_tag ~name:"churn.int"
let pack = Univ.pack int_tag
let unpack v = Univ.unpack_exn int_tag v

let duration = 100e-3
let churn_start = 10e-3
let churn_gap = 4e-3
let planned_crash_t = 30e-3
let think = 5e-5
let key_bytes = 256
let ballast_bytes = 256 * 1024 (* multi-chunk handoffs: copy_chunk is 64 KiB *)
let zipf_theta = 0.99
let replicas = 2

(* Membership plan, derived from the node count so the same experiment
   runs at 64 nodes (the paper-scale run) and 16 nodes (the CI alias).
   One extra leaver beyond the graceful quota is sabotaged: its leave is
   crashed mid-handoff and must abort, so [n_leaves] leaves complete
   gracefully regardless. *)
type plan = {
  active0 : int;  (* nodes 0 .. active0-1 start Active, the rest Standby *)
  joiners : int list;
  leavers : int list;  (* graceful *)
  sabotaged : int;  (* leaver crashed mid-handoff *)
  victim : int;  (* planned fail-stop at [planned_crash_t] *)
}

let plan_of ~nodes =
  if nodes < 16 then invalid_arg "Churn: need at least 16 nodes";
  let standby = max 2 (nodes / 4) in
  let active0 = nodes - standby in
  let n_joins = min standby (max 2 (nodes / 8)) in
  let n_leaves = max 2 (nodes / 8) in
  (* Leavers at 2, 5, 8, ... : spaced so no leaver is the ring successor
     of another leaver or of the victim (replica hosts of a crashed
     range must stay alive; replicas = 2 covers one dead successor). *)
  let leaver i = 2 + (3 * i) in
  if leaver n_leaves >= active0 - 2 then
    invalid_arg "Churn: too few active nodes for the leave schedule";
  {
    active0;
    joiners = List.init n_joins (fun i -> active0 + i);
    leavers = List.init n_leaves leaver;
    sabotaged = leaver n_leaves;
    victim = active0 - 2;
  }

type result = {
  seed : int;
  nodes : int;
  total_ops : int;
  failed_ops : int;
  lost_writes : int;
  unreadable_keys : int;
  joins : int;  (* committed joins (membership.joins) *)
  leaves : int;  (* completed graceful leaves (membership.leaves) *)
  handoff_commits : int;
  handoff_aborts : int;
  final_epoch : int;
  stale_epochs : int;
  retries : int;
  crashes : (int * float) list;
  detection : (int * float) list;
  recovery : (int * float) list;
  handoff_latency : float list;
  unrecoverable : int list;
  op_latency : Metrics.histo option;
}

(* Zipf(theta) over [0, n): precomputed CDF + binary search. *)
let zipf_cdf n theta =
  let w = Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** theta)) in
  let total = Array.fold_left ( +. ) 0.0 w in
  let acc = ref 0.0 in
  Array.map
    (fun x ->
      acc := !acc +. (x /. total);
      !acc)
    w

let zipf_pick cdf rng =
  let u = Rng.float rng 1.0 in
  let lo = ref 0 and hi = ref (Array.length cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cdf.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo

type op = Join of int | Leave of int

let rec interleave a b =
  match (a, b) with
  | [], r | r, [] -> r
  | x :: xs, y :: ys -> x :: y :: interleave xs ys

let run_once ~seed ~nodes () =
  let plan = plan_of ~nodes in
  let active0 = plan.active0 in
  let n_keys = 4 * active0 in
  let params =
    {
      Params.default with
      Params.nodes;
      cores_per_node = 4;
      mem_per_node = Drust_util.Units.mib 64;
      seed;
    }
  in
  let cluster = Cluster.create params in
  let engine = Cluster.engine cluster in
  let fabric = Cluster.fabric cluster in
  let fplan =
    Fault.create ~engine ~rng:(Rng.create ~seed:(seed + 17)) ~nodes ()
  in
  Fault.crash_at fplan ~node:plan.victim ~at:planned_crash_t;
  Fabric.set_fault_plan fabric fplan;
  let cdf = zipf_cdf n_keys zipf_theta in
  let total_ops = ref 0 and failed_ops = ref 0 in
  let acked = Array.make n_keys 0 in
  (* acked counts as of the last completed replication sync: the floor a
     crash-affected range must still satisfy at the end of the run. *)
  let synced = Array.make n_keys 0 in
  let lost = ref 0 and unreadable = ref 0 in
  (* (victim, crash time, homes the victim was serving), newest first. *)
  let crash_log = ref [] in
  let recovered : (int, float) Hashtbl.t = Hashtbl.create 4 in
  let handoffs = ref [] in
  let sabotage = ref None in
  let ctrl = ref None and member = ref None and repl_ref = ref None in
  let homes_served_by v =
    List.filter
      (fun h -> Cluster.serving_node cluster h = v)
      (List.init nodes Fun.id)
  in
  let log_crash v at =
    crash_log := (v, at, homes_served_by v) :: !crash_log
  in
  ignore
    (Engine.spawn engine (fun () ->
         let ctx = Ctx.make cluster ~node:0 in
         (* Pinned keys round-robin over the initially active nodes, plus
            per-node ballast so every handoff moves a multi-chunk image
            (the chunk boundaries are the mid-handoff crash points). *)
         let keys =
           Array.init n_keys (fun i ->
               let o =
                 P.create_on ctx ~node:(i mod active0) ~size:key_bytes (pack 0)
               in
               P.pin ctx o;
               o)
         in
         for n = 0 to active0 - 1 do
           let b = P.create_on ctx ~node:n ~size:ballast_bytes (pack 0) in
           P.pin ctx b
         done;
         let repl = Replication.enable ~replicas cluster in
         repl_ref := Some repl;
         let m = Membership.create ~active:active0 cluster ~replication:repl in
         member := Some m;
         let c =
           Controller.start ~probe_interval:0.5e-3 ~probe_timeout:2e-4
             ~miss_threshold:3 ~replication:repl ~membership:m cluster
         in
         ctrl := Some c;
         Engine.schedule engine ~at:duration (fun () -> Controller.stop c);
         Engine.schedule engine ~at:planned_crash_t (fun () ->
             log_crash plan.victim planned_crash_t);
         (* Replication checkpoint daemon; [synced] snapshots the acked
            counts from *before* each flush (writes acked mid-flush make
            no durability promise until the next one). *)
         ignore
           (Engine.spawn engine (fun () ->
                let fctx = Ctx.make cluster ~node:0 in
                while Engine.now engine < duration do
                  Engine.delay engine 1e-3;
                  if Engine.now engine < duration then begin
                    let before = Array.copy acked in
                    Replication.sync_now fctx repl;
                    Array.blit before 0 synced 0 n_keys
                  end
                done));
         (* Mid-handoff saboteur: once armed with a leaver, poll the
            in-flight transfer and fail-stop the departing server while
            its range is mid-copy.  The handoff must abort cleanly and
            the heartbeat detector must recover the node's ranges. *)
         ignore
           (Engine.spawn engine (fun () ->
                let armed = ref true in
                while !armed && Engine.now engine < duration do
                  Engine.delay engine 2e-5;
                  match (!sabotage, Membership.in_flight_handoff m) with
                  | Some l, Some (_, from_node, _) when from_node = l ->
                      let now = Engine.now engine in
                      Fault.crash_at fplan ~node:l ~at:now;
                      log_crash l now;
                      sabotage := None;
                      armed := false
                  | _ -> ()
                done));
         (* One client per initially-active node, zipf key choice (each
            client's rank->key permutation differs, spreading the hot
            set across ranges).  Writes go to a per-client disjoint key
            set: pinned keys are write-through without ownership
            transfer, so two concurrent read-modify-writes of one key
            would race (both read v, both ack v+1) and break the
            acked-increment ledger the lost-write audit relies on. *)
         for cl = 0 to active0 - 1 do
           ignore
             (Engine.spawn engine (fun () ->
                  let w = Ctx.make cluster ~node:cl in
                  let rng =
                    Rng.create ~seed:((seed * 9176) + (cl * 131) + 7)
                  in
                  let own_keys =
                    Array.of_list
                      (List.filter
                         (fun k -> ((k * 7) + 3) mod active0 = cl)
                         (List.init n_keys Fun.id))
                  in
                  Engine.delay engine
                    (think *. float_of_int cl /. float_of_int active0);
                  let i = ref 0 in
                  while
                    Engine.now engine < duration
                    && not (Fault.is_down fplan cl)
                  do
                    let is_write =
                      !i mod 4 = 0 && Array.length own_keys > 0
                    in
                    let k =
                      let r = zipf_pick cdf rng in
                      if is_write then own_keys.(r mod Array.length own_keys)
                      else (r + (cl * 13)) mod n_keys
                    in
                    let key = keys.(k) in
                    let home = k mod active0 in
                    (match
                       Fabric.retry_with_backoff fabric ~from:cl ~attempts:16
                         ~base_delay:2e-4 ~budget:0.05 (fun () ->
                           (* Epoch-stamped routing probe: a client whose
                              node has not yet heard the latest view is
                              NAKed here and retries after the
                              announcement lands. *)
                           let server = Cluster.serving_node cluster home in
                           if server <> cl then
                             Fabric.rdma_read fabric ~from:cl ~target:server
                               ~bytes:16
                               ~epoch:(Membership.known_epoch m ~node:cl);
                           if is_write then
                             P.owner_modify w key (fun v -> pack (unpack v + 1))
                           else ignore (P.owner_read w key))
                     with
                    | () ->
                        incr total_ops;
                        if is_write then begin
                          acked.(k) <- acked.(k) + 1;
                          let now = Engine.now engine in
                          List.iter
                            (fun (v, ct, homes) ->
                              if
                                (not (Hashtbl.mem recovered v))
                                && now > ct && List.mem home homes
                              then Hashtbl.replace recovered v (now -. ct))
                            !crash_log
                        end
                    | exception
                        ( Fabric.Node_down _ | Fabric.Rpc_timeout _
                        | Fabric.Stale_epoch _ ) ->
                        incr failed_ops);
                    incr i;
                    Engine.delay engine think
                  done))
         done;
         (* The churn driver: joins and leaves interleaved, one every
            [churn_gap]; the sabotaged leave arms the watcher first. *)
         let ops =
           interleave
             (List.map (fun n -> Join n) plan.joiners)
             (List.map (fun n -> Leave n) (plan.leavers @ [ plan.sabotaged ]))
         in
         Engine.delay engine (churn_start -. Engine.now engine);
         List.iter
           (fun op ->
             if Engine.now engine < duration then begin
               let t0 = Engine.now engine in
               (match op with
               | Join n -> (
                   match Membership.join ctx m ~node:n with
                   | Ok _ -> handoffs := (Engine.now engine -. t0) :: !handoffs
                   | Error _ -> ())
               | Leave n -> (
                   if n = plan.sabotaged then sabotage := Some n;
                   match Membership.leave ctx m ~node:n with
                   | Ok _ -> handoffs := (Engine.now engine -. t0) :: !handoffs
                   | Error _ -> ()));
               Engine.delay engine churn_gap
             end)
           ops;
         (* Post-run audit (after the dust settles): every key must read
            back at least its committed floor. *)
         Engine.schedule engine ~at:(duration +. 1e-3) (fun () ->
             ignore
               (Engine.spawn engine (fun () ->
                    let v = Ctx.make cluster ~node:0 in
                    let crashed_homes =
                      List.concat_map (fun (_, _, hs) -> hs) !crash_log
                    in
                    Array.iteri
                      (fun k key ->
                        let floor =
                          if List.mem (k mod active0) crashed_homes then
                            synced.(k)
                          else acked.(k)
                        in
                        match
                          Fabric.retry_with_backoff fabric ~from:0 ~attempts:8
                            ~base_delay:2e-4 (fun () ->
                              unpack (P.owner_read v key))
                        with
                        | value -> if value < floor then incr lost
                        | exception
                            (Fabric.Node_down _ | Fabric.Rpc_timeout _) ->
                            incr unreadable)
                      keys)))));
  Cluster.run cluster;
  let snap = Metrics.snapshot (Cluster.metrics cluster) in
  let total name = Report.metric_total snap name in
  let crash_list = List.rev_map (fun (v, t, _) -> (v, t)) !crash_log in
  let detection =
    match !ctrl with
    | None -> []
    | Some c ->
        List.filter_map
          (fun (v, ct) ->
            match List.assoc_opt v (Controller.deaths c) with
            | Some t -> Some (v, t -. ct)
            | None -> None)
          crash_list
  in
  let recovery =
    List.filter_map
      (fun (v, _) ->
        match Hashtbl.find_opt recovered v with
        | Some dt -> Some (v, dt)
        | None -> None)
      crash_list
  in
  {
    seed;
    nodes;
    total_ops = !total_ops;
    failed_ops = !failed_ops;
    lost_writes = !lost;
    unreadable_keys = !unreadable;
    joins = total "membership.joins";
    leaves = total "membership.leaves";
    handoff_commits = total "membership.handoff_commits";
    handoff_aborts = total "membership.handoff_aborts";
    final_epoch = (match !member with Some m -> Membership.epoch m | None -> 0);
    stale_epochs = total "fabric.stale_epochs";
    retries = total "fabric.retries";
    crashes = crash_list;
    detection;
    recovery;
    handoff_latency = List.rev !handoffs;
    unrecoverable =
      (match !repl_ref with
      | Some r -> Replication.unrecoverable_ranges r
      | None -> []);
    op_latency = Report.latency_of_snapshot snap;
  }

let same_result a b =
  a.total_ops = b.total_ops
  && a.failed_ops = b.failed_ops
  && a.lost_writes = b.lost_writes
  && a.unreadable_keys = b.unreadable_keys
  && a.joins = b.joins && a.leaves = b.leaves
  && a.handoff_commits = b.handoff_commits
  && a.handoff_aborts = b.handoff_aborts
  && a.final_epoch = b.final_epoch
  && a.stale_epochs = b.stale_epochs
  && a.retries = b.retries && a.crashes = b.crashes
  && a.detection = b.detection && a.recovery = b.recovery
  && a.handoff_latency = b.handoff_latency
  && a.unrecoverable = b.unrecoverable

let latency_buckets =
  [| 1e-4; 2e-4; 5e-4; 1e-3; 2e-3; 5e-3; 1e-2; 2e-2; 5e-2 |]

(* Fold the sweep's per-phase latencies into bucket histograms; returns
   the histo per phase (for the summary) alongside p50/p99. *)
let phase_histos results =
  let reg = Metrics.create () in
  let histo kind =
    Metrics.histogram reg ~buckets:latency_buckets ~labels:[ ("phase", kind) ]
      ~unit_:"s" "churn.latency"
  in
  let handoff = histo "handoff"
  and det = histo "detection"
  and rec_ = histo "recovery" in
  List.iter
    (fun r ->
      List.iter (fun dt -> Metrics.observe handoff dt) r.handoff_latency;
      List.iter (fun (_, dt) -> Metrics.observe det dt) r.detection;
      List.iter (fun (_, dt) -> Metrics.observe rec_ dt) r.recovery)
    results;
  let snap = Metrics.snapshot reg in
  List.map
    (fun kind ->
      match Metrics.find snap ~labels:[ ("phase", kind) ] "churn.latency" with
      | Some (Metrics.Histo h) -> (kind, Some h)
      | _ -> (kind, None))
    [ "handoff"; "detection"; "recovery" ]

let churn_percentiles results =
  List.map
    (fun (kind, h) ->
      match h with
      | Some h ->
          let qv q = Option.value (Metrics.quantile h q) ~default:nan in
          (kind, h.Metrics.h_count, qv 0.5, qv 0.99)
      | None -> (kind, 0, nan, nan))
    (phase_histos results)

let print plan r =
  Report.section
    (Printf.sprintf
       "Churn: %d nodes (%d active), %d joins + %d graceful leaves + %d \
        crashes (one mid-handoff), seed %d"
       r.nodes plan.active0 (List.length plan.joiners)
       (List.length plan.leavers) (List.length r.crashes) r.seed);
  Report.table
    ~header:[ "event"; "count" ]
    ~rows:
      [
        [ "joins committed"; string_of_int r.joins ];
        [ "graceful leaves completed"; string_of_int r.leaves ];
        [ "handoffs committed"; string_of_int r.handoff_commits ];
        [ "handoffs aborted (crash fallback)"; string_of_int r.handoff_aborts ];
        [ "final view epoch"; string_of_int r.final_epoch ];
        [ "stale-epoch rejections"; string_of_int r.stale_epochs ];
      ];
  List.iter
    (fun (v, t) ->
      let d =
        match List.assoc_opt v r.detection with
        | Some dt -> Printf.sprintf "detected %.3f ms later" (dt *. 1e3)
        | None -> "NEVER detected"
      in
      let rc =
        match List.assoc_opt v r.recovery with
        | Some dt -> Printf.sprintf "first write recovered %.3f ms later" (dt *. 1e3)
        | None -> "no post-crash write observed"
      in
      Report.note
        (Printf.sprintf "crash: node %d at t=%.1f ms — %s, %s" v (t *. 1e3) d
           rc))
    r.crashes;
  Report.note
    (Printf.sprintf
       "%d ops completed, %d abandoned; %d retries, %d stale-epoch NAKs; %d \
        lost writes, %d unreadable keys, unrecoverable ranges: [%s]"
       r.total_ops r.failed_ops r.retries r.stale_epochs r.lost_writes
       r.unreadable_keys
       (String.concat "; " (List.map string_of_int r.unrecoverable)))

let run ?(seed = 42) ?(nodes = 64) () =
  let plan = plan_of ~nodes in
  let extra_seeds = [ seed + 1; seed + 2 ] in
  let host0 =
    (Unix.gettimeofday ()
    [@dlint.allow
      "determinism: feeds only the opt-in host_ms column (--host-time), \
       never the gated byte-identical output"])
  in
  let results =
    Parallel.run
      (run_once ~seed ~nodes :: run_once ~seed ~nodes
      :: List.map (fun s () -> run_once ~seed:s ~nodes ()) extra_seeds)
  in
  let host_ms =
    ((Unix.gettimeofday () -. host0) *. 1e3
    [@dlint.allow
      "determinism: feeds only the opt-in host_ms column (--host-time), \
       never the gated byte-identical output"])
  in
  let r1, r2, rest =
    match results with a :: b :: rest -> (a, b, rest) | _ -> assert false
  in
  print plan r1;
  if not (same_result r1 r2) then
    failwith "Churn: two runs with the same seed diverged — determinism bug";
  Report.note "determinism: second run with the same seed is bit-identical";
  if r1.lost_writes > 0 || r1.unreadable_keys > 0 then
    Printf.ksprintf failwith
      "Churn: %d lost committed write(s), %d unreadable key(s) — a handoff \
       or promotion dropped acknowledged state"
      r1.lost_writes r1.unreadable_keys;
  if r1.unrecoverable <> [] then
    failwith "Churn: replication chain exhausted — unrecoverable ranges";
  if r1.joins < List.length plan.joiners then
    Printf.ksprintf failwith "Churn: only %d/%d joins committed" r1.joins
      (List.length plan.joiners);
  if r1.leaves < List.length plan.leavers then
    Printf.ksprintf failwith "Churn: only %d/%d graceful leaves completed"
      r1.leaves (List.length plan.leavers);
  if r1.handoff_aborts < 1 then
    failwith "Churn: the mid-handoff crash never aborted a handoff";
  if List.length r1.detection < List.length r1.crashes then
    failwith "Churn: the detector missed a crash";
  if r1.stale_epochs < 1 then
    failwith "Churn: no verb was ever rejected for a stale epoch";
  let sweep = r1 :: rest in
  let pct = churn_percentiles sweep in
  Report.table
    ~header:[ "phase"; "samples"; "p50 (ms)"; "p99 (ms)" ]
    ~rows:
      (List.map
         (fun (kind, n, p50, p99) ->
           [
             kind;
             string_of_int n;
             Printf.sprintf "%.3f" (p50 *. 1e3);
             Printf.sprintf "%.3f" (p99 *. 1e3);
           ])
         pct);
  List.iter
    (fun (kind, n, p50, p99) ->
      if n = 0 then Printf.ksprintf failwith "Churn: no %s latency samples" kind;
      if not (p99 >= p50) then
        Printf.ksprintf failwith
          "Churn: %s p99 (%.6f s) < p50 (%.6f s) — quantile estimator is \
           not monotone"
          kind p99 p50)
    pct;
  Report.record_rate ?latency:r1.op_latency ~host_ms ~experiment:"churn/ops"
    ~ops:(float_of_int r1.total_ops) ~elapsed:duration ();
  List.iter
    (fun (kind, h) ->
      match h with
      | Some h ->
          Report.record_rate ~latency:h
            ~experiment:("churn/" ^ kind)
            ~ops:(float_of_int h.Metrics.h_count)
            ~elapsed:duration ()
      | None -> ())
    (phase_histos sweep);
  r1
