(* Elastic membership under fire: the churn experiment.
   The scenario body lives in Drust_plan.Scenario (a [Simplan] drives
   it); this module keeps the experiment harness — the seed sweep, the
   determinism check, the printed report, and the robustness
   assertions.

   A zipf-skewed KV workload runs on a large cluster while a seeded
   driver churns the membership — standby nodes join (each join pulls a
   heap range off the most-loaded member), active members leave
   gracefully (draining write-backs, then handing every served range to
   the least-loaded survivor), and two nodes fail-stop: one on a fixed
   schedule, one injected *mid-handoff* by a watcher that polls the
   in-flight transfer and crashes the departing server between copy
   chunks.  The aborted handoff must fall back to the heartbeat
   detector's ordinary promotion path.

   Clients stamp a routing probe on every operation with the view epoch
   their node last heard ([Membership.known_epoch]); a verb carrying a
   stale epoch is NAKed at serve time ([Fabric.Stale_epoch]) and
   retried by [Fabric.retry_with_backoff] once the announcement lands.

   The run asserts the three headline robustness properties:

   - zero lost committed writes: every key's final value is >= the
     number of acknowledged increments (for crash-affected ranges, >=
     the count as of the last replication sync before the crash —
     asynchronous replication makes no promise about unsynced tails);
   - zero unrecoverable ranges (no cascading chain exhaustion);
   - determinism: two runs with the same seed are bit-identical, under
     any --jobs value.

   Reported latencies: handoff (driver-observed join/leave duration),
   detection (crash -> detector verdict), recovery (crash -> first
   successful write to a range the victim was serving). *)

module Simplan = Drust_plan.Simplan
module Scenario = Drust_plan.Scenario
module Metrics = Drust_obs.Metrics

type result = Scenario.churn_result = {
  seed : int;
  nodes : int;
  total_ops : int;
  failed_ops : int;
  lost_writes : int;
  unreadable_keys : int;
  joins : int;  (* committed joins (membership.joins) *)
  leaves : int;  (* completed graceful leaves (membership.leaves) *)
  handoff_commits : int;
  handoff_aborts : int;
  final_epoch : int;
  stale_epochs : int;
  retries : int;
  crashes : (int * float) list;
  detection : (int * float) list;
  recovery : (int * float) list;
  handoff_latency : float list;
  unrecoverable : int list;
  op_latency : Metrics.histo option;
}

let plan_of ~seed ~nodes = Simplan.churn_plan ~seed ~nodes ()

let run_once ~seed ~nodes () =
  match (Simplan.execute (plan_of ~seed ~nodes)).Simplan.result with
  | Simplan.Churn_done r -> r
  | Simplan.App_done _ | Simplan.Failover_done _ -> assert false

let same_result a b =
  a.total_ops = b.total_ops
  && a.failed_ops = b.failed_ops
  && a.lost_writes = b.lost_writes
  && a.unreadable_keys = b.unreadable_keys
  && a.joins = b.joins && a.leaves = b.leaves
  && a.handoff_commits = b.handoff_commits
  && a.handoff_aborts = b.handoff_aborts
  && a.final_epoch = b.final_epoch
  && a.stale_epochs = b.stale_epochs
  && a.retries = b.retries && a.crashes = b.crashes
  && a.detection = b.detection && a.recovery = b.recovery
  && a.handoff_latency = b.handoff_latency
  && a.unrecoverable = b.unrecoverable

let latency_buckets =
  [| 1e-4; 2e-4; 5e-4; 1e-3; 2e-3; 5e-3; 1e-2; 2e-2; 5e-2 |]

(* Fold the sweep's per-phase latencies into bucket histograms; returns
   the histo per phase (for the summary) alongside p50/p99. *)
let phase_histos results =
  let reg = Metrics.create () in
  let histo kind =
    Metrics.histogram reg ~buckets:latency_buckets ~labels:[ ("phase", kind) ]
      ~unit_:"s" "churn.latency"
  in
  let handoff = histo "handoff"
  and det = histo "detection"
  and rec_ = histo "recovery" in
  List.iter
    (fun r ->
      List.iter (fun dt -> Metrics.observe handoff dt) r.handoff_latency;
      List.iter (fun (_, dt) -> Metrics.observe det dt) r.detection;
      List.iter (fun (_, dt) -> Metrics.observe rec_ dt) r.recovery)
    results;
  let snap = Metrics.snapshot reg in
  List.map
    (fun kind ->
      match Metrics.find snap ~labels:[ ("phase", kind) ] "churn.latency" with
      | Some (Metrics.Histo h) -> (kind, Some h)
      | _ -> (kind, None))
    [ "handoff"; "detection"; "recovery" ]

let churn_percentiles results =
  List.map
    (fun (kind, h) ->
      match h with
      | Some h ->
          let qv q = Option.value (Metrics.quantile h q) ~default:nan in
          (kind, h.Metrics.h_count, qv 0.5, qv 0.99)
      | None -> (kind, 0, nan, nan))
    (phase_histos results)

let print (spec : Scenario.churn_spec) r =
  Report.section
    (Printf.sprintf
       "Churn: %d nodes (%d active), %d joins + %d graceful leaves + %d \
        crashes (one mid-handoff), seed %d"
       r.nodes spec.Scenario.ch_active0
       (List.length spec.Scenario.ch_joiners)
       (List.length spec.Scenario.ch_leavers)
       (List.length r.crashes) r.seed);
  Report.table
    ~header:[ "event"; "count" ]
    ~rows:
      [
        [ "joins committed"; string_of_int r.joins ];
        [ "graceful leaves completed"; string_of_int r.leaves ];
        [ "handoffs committed"; string_of_int r.handoff_commits ];
        [ "handoffs aborted (crash fallback)"; string_of_int r.handoff_aborts ];
        [ "final view epoch"; string_of_int r.final_epoch ];
        [ "stale-epoch rejections"; string_of_int r.stale_epochs ];
      ];
  List.iter
    (fun (v, t) ->
      let d =
        match List.assoc_opt v r.detection with
        | Some dt -> Printf.sprintf "detected %.3f ms later" (dt *. 1e3)
        | None -> "NEVER detected"
      in
      let rc =
        match List.assoc_opt v r.recovery with
        | Some dt -> Printf.sprintf "first write recovered %.3f ms later" (dt *. 1e3)
        | None -> "no post-crash write observed"
      in
      Report.note
        (Printf.sprintf "crash: node %d at t=%.1f ms — %s, %s" v (t *. 1e3) d
           rc))
    r.crashes;
  Report.note
    (Printf.sprintf
       "%d ops completed, %d abandoned; %d retries, %d stale-epoch NAKs; %d \
        lost writes, %d unreadable keys, unrecoverable ranges: [%s]"
       r.total_ops r.failed_ops r.retries r.stale_epochs r.lost_writes
       r.unreadable_keys
       (String.concat "; " (List.map string_of_int r.unrecoverable)))

let run ?(seed = 42) ?(nodes = 64) () =
  let spec = Scenario.churn_spec_of ~nodes in
  let duration = spec.Scenario.ch_duration in
  let extra_seeds = [ seed + 1; seed + 2 ] in
  let host0 =
    (Unix.gettimeofday ()
    [@dlint.allow
      "determinism: feeds only the opt-in host_ms column (--host-time), \
       never the gated byte-identical output"])
  in
  let results =
    Parallel.run
      (run_once ~seed ~nodes :: run_once ~seed ~nodes
      :: List.map (fun s () -> run_once ~seed:s ~nodes ()) extra_seeds)
  in
  let host_ms =
    ((Unix.gettimeofday () -. host0) *. 1e3
    [@dlint.allow
      "determinism: feeds only the opt-in host_ms column (--host-time), \
       never the gated byte-identical output"])
  in
  let r1, r2, rest =
    match results with a :: b :: rest -> (a, b, rest) | _ -> assert false
  in
  Report.emit_plan (plan_of ~seed ~nodes);
  print spec r1;
  if not (same_result r1 r2) then
    failwith "Churn: two runs with the same seed diverged — determinism bug";
  Report.note "determinism: second run with the same seed is bit-identical";
  if r1.lost_writes > 0 || r1.unreadable_keys > 0 then
    Printf.ksprintf failwith
      "Churn: %d lost committed write(s), %d unreadable key(s) — a handoff \
       or promotion dropped acknowledged state"
      r1.lost_writes r1.unreadable_keys;
  if r1.unrecoverable <> [] then
    failwith "Churn: replication chain exhausted — unrecoverable ranges";
  if r1.joins < List.length spec.Scenario.ch_joiners then
    Printf.ksprintf failwith "Churn: only %d/%d joins committed" r1.joins
      (List.length spec.Scenario.ch_joiners);
  if r1.leaves < List.length spec.Scenario.ch_leavers then
    Printf.ksprintf failwith "Churn: only %d/%d graceful leaves completed"
      r1.leaves
      (List.length spec.Scenario.ch_leavers);
  if r1.handoff_aborts < 1 then
    failwith "Churn: the mid-handoff crash never aborted a handoff";
  if List.length r1.detection < List.length r1.crashes then
    failwith "Churn: the detector missed a crash";
  if r1.stale_epochs < 1 then
    failwith "Churn: no verb was ever rejected for a stale epoch";
  let sweep = r1 :: rest in
  let pct = churn_percentiles sweep in
  Report.table
    ~header:[ "phase"; "samples"; "p50 (ms)"; "p99 (ms)" ]
    ~rows:
      (List.map
         (fun (kind, n, p50, p99) ->
           [
             kind;
             string_of_int n;
             Printf.sprintf "%.3f" (p50 *. 1e3);
             Printf.sprintf "%.3f" (p99 *. 1e3);
           ])
         pct);
  List.iter
    (fun (kind, n, p50, p99) ->
      if n = 0 then Printf.ksprintf failwith "Churn: no %s latency samples" kind;
      if not (p99 >= p50) then
        Printf.ksprintf failwith
          "Churn: %s p99 (%.6f s) < p50 (%.6f s) — quantile estimator is \
           not monotone"
          kind p99 p50)
    pct;
  Report.record_rate ?latency:r1.op_latency ~host_ms ~experiment:"churn/ops"
    ~ops:(float_of_int r1.total_ops) ~elapsed:duration ();
  List.iter
    (fun (kind, h) ->
      match h with
      | Some h ->
          Report.record_rate ~latency:h
            ~experiment:("churn/" ^ kind)
            ~ops:(float_of_int h.Metrics.h_count)
            ~elapsed:duration ()
      | None -> ())
    (phase_histos sweep);
  r1
