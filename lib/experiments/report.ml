let csv_dir = ref None
let current_slug = ref "table"
let slug_counter = ref 0

let set_csv_dir d =
  (match d with
  | Some dir when not (Sys.file_exists dir) -> Unix.mkdir dir 0o755
  | _ -> ());
  csv_dir := d

let slugify title =
  let b = Buffer.create (String.length title) in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> Buffer.add_char b (Char.lowercase_ascii c)
      | ' ' | '-' | '_' | ':' | '.' ->
          if Buffer.length b > 0 && Buffer.nth b (Buffer.length b - 1) <> '-' then
            Buffer.add_char b '-'
      | _ -> ())
    title;
  let s = Buffer.contents b in
  if String.length s > 48 then String.sub s 0 48 else s

let section title =
  current_slug := slugify title;
  slug_counter := 0;
  let bar = String.make (String.length title + 4) '=' in
  Printf.printf "\n%s\n| %s |\n%s\n" bar title bar

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let write_csv ~header ~rows =
  match !csv_dir with
  | None -> ()
  | Some dir ->
      incr slug_counter;
      let suffix = if !slug_counter = 1 then "" else Printf.sprintf "-%d" !slug_counter in
      let path = Filename.concat dir (!current_slug ^ suffix ^ ".csv") in
      let oc = open_out path in
      let line cells = output_string oc (String.concat "," (List.map csv_escape cells) ^ "\n") in
      line header;
      List.iter line rows;
      close_out oc

let table ~header ~rows =
  write_csv ~header ~rows;
  let all = header :: rows in
  let cols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
  let width c =
    List.fold_left
      (fun m row ->
        match List.nth_opt row c with
        | Some s -> max m (String.length s)
        | None -> m)
      0 all
  in
  let widths = List.init cols width in
  let print_row row =
    let cells =
      List.mapi
        (fun c w ->
          let s = match List.nth_opt row c with Some s -> s | None -> "" in
          s ^ String.make (w - String.length s) ' ')
        widths
    in
    Printf.printf "| %s |\n" (String.concat " | " cells)
  in
  let rule =
    "+"
    ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths)
    ^ "+"
  in
  print_endline rule;
  print_row header;
  print_endline rule;
  List.iter print_row rows;
  print_endline rule

let cell_f v = Printf.sprintf "%.2f" v
let cell_pct v = Printf.sprintf "%.1f%%" (100.0 *. v)

let cell_rate v = Format.asprintf "%a" Drust_util.Units.pp_rate v
let cell_time v = Format.asprintf "%a" Drust_util.Units.pp_seconds v

let note s = Printf.printf "  %s\n" s

(* ------------------------------------------------------------------ *)
(* Benchmark summary (BENCH_summary.json)                              *)

(* Ordered per-run collection (insertion order preserved, re-recording
   overwrites in place).  The mutex admits [record_rate] calls from
   parallel sweep domains; [recorded_rates] sorts by name, so the
   summary is byte-identical regardless of arrival order or [--jobs]. *)
let rates : (string * float) list ref = ref []
let rates_mutex = Mutex.create ()

let record_rate ~experiment ~ops ~elapsed =
  if elapsed > 0.0 then
    let rate = ops /. elapsed in
    Mutex.protect rates_mutex (fun () ->
        if List.mem_assoc experiment !rates then
          rates :=
            List.map
              (fun (k, v) -> if String.equal k experiment then (k, rate) else (k, v))
              !rates
        else rates := !rates @ [ (experiment, rate) ])

let recorded_rates () =
  Mutex.protect rates_mutex (fun () -> !rates)
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Schema documented in docs/BENCHMARKS.md: one entry per experiment
   that called [record_rate], keyed by experiment name. *)
let write_bench_summary ~path =
  let entries = recorded_rates () in
  let oc = open_out path in
  output_string oc "{\n";
  output_string oc "  \"schema\": \"drust-bench-summary/v1\",\n";
  output_string oc "  \"entries\": {\n";
  let last = List.length entries - 1 in
  List.iteri
    (fun i (k, v) ->
      Printf.fprintf oc "    \"%s\": { \"ops_per_sim_sec\": %.6g }%s\n"
        (json_escape k) v
        (if i = last then "" else ","))
    entries;
  output_string oc "  }\n}\n";
  close_out oc

(* ------------------------------------------------------------------ *)
(* Metrics-snapshot rendering                                          *)

module Metrics = Drust_obs.Metrics

let metric_total snap name = Metrics.total snap name

let metrics_table ?(prefix = "") snap =
  let fmt_labels = function
    | [] -> ""
    | kvs ->
        "{"
        ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) kvs)
        ^ "}"
  in
  let rows =
    List.filter_map
      (fun (e : Metrics.sample) ->
        if not (String.starts_with ~prefix e.Metrics.s_name) then None
        else
          let value =
            match e.Metrics.s_value with
            | Metrics.Count n -> string_of_int n
            | Metrics.Level v -> Printf.sprintf "%g" v
            | Metrics.Histo h ->
                Printf.sprintf "n=%d sum=%g" h.Metrics.h_count h.Metrics.h_sum
          in
          Some
            [ e.Metrics.s_name ^ fmt_labels e.Metrics.s_labels; value; e.Metrics.s_unit ])
      snap
  in
  if rows <> [] then table ~header:[ "metric"; "value"; "unit" ] ~rows
