let csv_dir =
  ref None
[@@dlint.allow
  "globals: one harness run produces one CSV set — per-process by design"]

let current_slug =
  ref "table"
[@@dlint.allow
  "globals: per-process CSV naming state, paired with csv_dir above"]

let slug_counter =
  ref 0
[@@dlint.allow
  "globals: per-process CSV naming state, paired with csv_dir above"]

let set_csv_dir d =
  (match d with
  | Some dir when not (Sys.file_exists dir) -> Unix.mkdir dir 0o755
  | _ -> ());
  csv_dir := d

let slugify title =
  let b = Buffer.create (String.length title) in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> Buffer.add_char b (Char.lowercase_ascii c)
      | ' ' | '-' | '_' | ':' | '.' ->
          if Buffer.length b > 0 && Buffer.nth b (Buffer.length b - 1) <> '-' then
            Buffer.add_char b '-'
      | _ -> ())
    title;
  let s = Buffer.contents b in
  if String.length s > 48 then String.sub s 0 48 else s

let section title =
  current_slug := slugify title;
  slug_counter := 0;
  let bar = String.make (String.length title + 4) '=' in
  Printf.printf "\n%s\n| %s |\n%s\n" bar title bar

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let write_csv ~header ~rows =
  match !csv_dir with
  | None -> ()
  | Some dir ->
      incr slug_counter;
      let suffix = if !slug_counter = 1 then "" else Printf.sprintf "-%d" !slug_counter in
      let path = Filename.concat dir (!current_slug ^ suffix ^ ".csv") in
      let oc = open_out path in
      let line cells = output_string oc (String.concat "," (List.map csv_escape cells) ^ "\n") in
      line header;
      List.iter line rows;
      close_out oc

let table ~header ~rows =
  write_csv ~header ~rows;
  let all = header :: rows in
  let cols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
  let width c =
    List.fold_left
      (fun m row ->
        match List.nth_opt row c with
        | Some s -> max m (String.length s)
        | None -> m)
      0 all
  in
  let widths = List.init cols width in
  let print_row row =
    let cells =
      List.mapi
        (fun c w ->
          let s = match List.nth_opt row c with Some s -> s | None -> "" in
          s ^ String.make (w - String.length s) ' ')
        widths
    in
    Printf.printf "| %s |\n" (String.concat " | " cells)
  in
  let rule =
    "+"
    ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths)
    ^ "+"
  in
  print_endline rule;
  print_row header;
  print_endline rule;
  List.iter print_row rows;
  print_endline rule

let cell_f v = Printf.sprintf "%.2f" v
let cell_pct v = Printf.sprintf "%.1f%%" (100.0 *. v)

let cell_rate v = Format.asprintf "%a" Drust_util.Units.pp_rate v
let cell_time v = Format.asprintf "%a" Drust_util.Units.pp_seconds v

let note s = Printf.printf "  %s\n" s

(* ------------------------------------------------------------------ *)
(* Benchmark summary (BENCH_summary.json)                              *)

module Metrics = Drust_obs.Metrics
module Json = Drust_util.Json

(* The single schema definition lives with the plan layer: a plan's
   [expect] field names the summary schema its run produces, so the two
   can never drift apart. *)
let schema_version = Drust_plan.Simplan.bench_schema
let v1_schema = "drust-bench-summary/v1"
let v2_schema = "drust-bench-summary/v2"

(* Host-time capture is opt-in (the @bench-diff alias turns it on):
   host_ms is wall-clock and thus machine- and load-dependent, so it
   must stay out of the summaries that are diffed byte-for-byte across
   --jobs values. *)
let host_time =
  ref false
[@@dlint.allow
  "globals: per-process CLI configuration (--host-time), set once before \
   any experiment runs"]
let set_host_time_recording b = host_time := b
let host_time_recording () = !host_time

(* Percentile points every latency histogram is reduced to in tables and
   in the summary JSON.  Exported values are microseconds. *)
let percentile_points =
  [ ("p50", 0.5); ("p95", 0.95); ("p99", 0.99); ("p99.9", 0.999) ]

let latency_percentiles h =
  (* Every caller reaches this through [latency_of_snapshot], which
     drops empty histograms, so the [None] arm is defensive: report 0
     rather than leak a nan into the summary JSON. *)
  List.map
    (fun (label, q) ->
      (label, match Metrics.quantile h q with Some v -> v *. 1e6 | None -> 0.0))
    percentile_points

let latency_of_snapshot snap = Metrics.merged_histo snap "protocol.op_latency"

type bench_entry = {
  be_rate : float;
  be_latency : Metrics.histo option;
  be_host_ms : float option;
  be_host_rate : float option;
}

(* Ordered per-run collection (insertion order preserved, re-recording
   overwrites in place).  The mutex admits [record_rate] calls from
   parallel sweep domains; [recorded_entries] sorts by name, so the
   summary is byte-identical regardless of arrival order or [--jobs]. *)
let rates : (string * bench_entry) list ref =
  ref []
[@@dlint.allow
  "globals: the per-process summary collector — one harness run, one \
   summary; mutex-protected for parallel sweeps"]
let rates_mutex = Mutex.create ()

let record_rate ?latency ?host_ms ?host_rate ~experiment ~ops ~elapsed () =
  if elapsed > 0.0 then
    let host_ms = if !host_time then host_ms else None in
    let host_rate = if !host_time then host_rate else None in
    let entry =
      {
        be_rate = ops /. elapsed;
        be_latency = latency;
        be_host_ms = host_ms;
        be_host_rate = host_rate;
      }
    in
    Mutex.protect rates_mutex (fun () ->
        if List.mem_assoc experiment !rates then
          rates :=
            List.map
              (fun (k, v) ->
                if String.equal k experiment then (k, entry) else (k, v))
              !rates
        else rates := !rates @ [ (experiment, entry) ])

let recorded_entries () =
  Mutex.protect rates_mutex (fun () -> !rates)
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let recorded_rates () =
  List.map (fun (k, e) -> (k, e.be_rate)) (recorded_entries ())

(* Summary values round to 6 significant digits before encoding: the
   historical precision, plenty for a 10%-tolerance gate, and it keeps
   the emitted file stable under refactors of internal float paths. *)
let num6 v = Json.Num (float_of_string (Printf.sprintf "%.6g" v))

(* Schema documented in docs/BENCHMARKS.md: one entry per experiment
   that called [record_rate], keyed by experiment name; entries with a
   latency histogram additionally carry [latency_us] percentiles. *)
let write_bench_summary ~path =
  let entry (_, e) =
    Json.Obj
      ([ ("ops_per_sim_sec", num6 e.be_rate) ]
      @ (match e.be_latency with
        | Some h when h.Metrics.h_count > 0 ->
            [
              ( "latency_us",
                Json.Obj
                  (List.map
                     (fun (label, v) -> (label, num6 v))
                     (latency_percentiles h)) );
            ]
        | _ -> [])
      @ (match e.be_host_ms with
        | Some ms -> [ ("host_ms", num6 ms) ]
        | None -> [])
      @
      match e.be_host_rate with
      | Some r -> [ ("host_events_per_sec", num6 r) ]
      | None -> [])
  in
  let entries = recorded_entries () in
  Json.save ~path
    (Json.Obj
       [
         ("schema", Json.Str schema_version);
         ("entries", Json.Obj (List.map (fun (k, e) -> (k, entry (k, e))) entries));
       ])

(* ------------------------------------------------------------------ *)
(* Plan artifacts                                                      *)

let emit_plan plan =
  let name = plan.Drust_plan.Simplan.name in
  let dir = match !csv_dir with Some d -> d | None -> Filename.current_dir_name in
  let path = Filename.concat dir (name ^ ".plan.json") in
  Drust_plan.Simplan.save ~path plan;
  Printf.eprintf "[bench] plan written to %s\n%!" path

(* ------------------------------------------------------------------ *)
(* Summary reading and comparison (the bench_diff regression gate)     *)

type summary_entry = {
  se_rate : float;
  se_latency_us : (string * float) list;
  se_host_ms : float option;
  se_host_rate : float option;
}
type summary = { sm_schema : string; sm_entries : (string * summary_entry) list }

let read_bench_summary ~path =
  let fail fmt = Printf.ksprintf (fun m -> failwith (path ^ ": " ^ m)) fmt in
  let j =
    try Json.load ~path with
    | Json.Parse_error m -> fail "%s" m
    | Sys_error m -> failwith m
  in
  match j with
  | Json.Obj fields ->
      let schema =
        match List.assoc_opt "schema" fields with
        | Some (Json.Str s) -> s
        | _ -> fail "missing \"schema\" field"
      in
      if schema <> v1_schema && schema <> v2_schema && schema <> schema_version
      then
        fail "unknown schema %S (expected %s, %s or %s)" schema v1_schema
          v2_schema schema_version;
      let entries =
        match List.assoc_opt "entries" fields with
        | Some (Json.Obj es) -> es
        | _ -> fail "missing \"entries\" object"
      in
      let entry (k, v) =
        match v with
        | Json.Obj f ->
            let rate =
              match List.assoc_opt "ops_per_sim_sec" f with
              | Some (Json.Num r) -> r
              | _ -> fail "entry %S has no \"ops_per_sim_sec\" number" k
            in
            let lat =
              match List.assoc_opt "latency_us" f with
              | Some (Json.Obj ps) ->
                  List.filter_map
                    (fun (p, v) ->
                      match v with Json.Num x -> Some (p, x) | _ -> None)
                    ps
              | _ -> []
            in
            let host_ms =
              match List.assoc_opt "host_ms" f with
              | Some (Json.Num x) -> Some x
              | _ -> None
            in
            let host_rate =
              match List.assoc_opt "host_events_per_sec" f with
              | Some (Json.Num x) -> Some x
              | _ -> None
            in
            ( k,
              {
                se_rate = rate;
                se_latency_us = lat;
                se_host_ms = host_ms;
                se_host_rate = host_rate;
              } )
        | _ -> fail "entry %S is not an object" k
      in
      { sm_schema = schema; sm_entries = List.map entry entries }
  | _ -> fail "not a JSON object"

let compare_summaries ?(tolerance = 0.10) ?(tolerance_host = 2.0) ~baseline
    current =
  let out = ref [] in
  let reg fmt = Printf.ksprintf (fun m -> out := m :: !out) fmt in
  List.iter
    (fun (name, b) ->
      match List.assoc_opt name current.sm_entries with
      | None -> reg "%s: present in baseline but missing from current" name
      | Some c ->
          if c.se_rate < b.se_rate *. (1.0 -. tolerance) then
            reg "%s: throughput regressed %.6g -> %.6g ops/s (-%.1f%%, tolerance %.0f%%)"
              name b.se_rate c.se_rate
              (100.0 *. (1.0 -. (c.se_rate /. b.se_rate)))
              (100.0 *. tolerance);
          List.iter
            (fun (p, bv) ->
              match List.assoc_opt p c.se_latency_us with
              | Some cv when bv > 0.0 && cv > bv *. (1.0 +. tolerance) ->
                  reg "%s: latency %s regressed %.6g -> %.6g us (+%.1f%%, tolerance %.0f%%)"
                    name p bv cv
                    (100.0 *. ((cv /. bv) -. 1.0))
                    (100.0 *. tolerance)
              | _ -> ())
            b.se_latency_us;
          (* Host time is wall-clock, so the gate is deliberately loose:
             only a multiple-of-baseline blowup (an accidental O(n^2) or
             per-event allocation storm) trips it, not scheduler noise. *)
          (match (b.se_host_ms, c.se_host_ms) with
          | Some bv, Some cv when bv > 0.0 && cv > bv *. (1.0 +. tolerance_host)
            ->
              reg "%s: host time regressed %.6g -> %.6g ms (+%.1f%%, tolerance %.0f%%)"
                name bv cv
                (100.0 *. ((cv /. bv) -. 1.0))
                (100.0 *. tolerance_host)
          | _ -> ());
          (* Same loose gate for engine throughput (events per host
             second), in the lower-is-worse direction: only a collapse
             below baseline / (1 + tolerance_host) trips it. *)
          (match (b.se_host_rate, c.se_host_rate) with
          | Some bv, Some cv when bv > 0.0 && cv < bv /. (1.0 +. tolerance_host)
            ->
              reg
                "%s: host engine throughput regressed %.6g -> %.6g events/s \
                 (-%.1f%%, tolerance %.0f%%)"
                name bv cv
                (100.0 *. (1.0 -. (cv /. bv)))
                (100.0 *. tolerance_host)
          | _ -> ()))
    baseline.sm_entries;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Metrics-snapshot rendering                                          *)

let metric_total snap name = Metrics.total snap name

let metrics_table ?(prefix = "") snap =
  let fmt_labels = function
    | [] -> ""
    | kvs ->
        "{"
        ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) kvs)
        ^ "}"
  in
  let rows =
    List.filter_map
      (fun (e : Metrics.sample) ->
        if not (String.starts_with ~prefix e.Metrics.s_name) then None
        else
          let value, pcts =
            match e.Metrics.s_value with
            | Metrics.Count n -> (string_of_int n, [ ""; ""; "" ])
            | Metrics.Level v -> (Printf.sprintf "%g" v, [ ""; ""; "" ])
            | Metrics.Histo h ->
                ( Printf.sprintf "n=%d sum=%g" h.Metrics.h_count h.Metrics.h_sum,
                  List.map
                    (fun q ->
                      match Metrics.quantile h q with
                      | Some v -> Printf.sprintf "%.3g" v
                      | None -> "-")
                    [ 0.5; 0.95; 0.99 ] )
          in
          Some
            ((e.Metrics.s_name ^ fmt_labels e.Metrics.s_labels) :: value :: pcts
            @ [ e.Metrics.s_unit ]))
      snap
  in
  if rows <> [] then
    table ~header:[ "metric"; "value"; "p50"; "p95"; "p99"; "unit" ] ~rows
