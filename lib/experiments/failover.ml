(* Availability under a crash: the repo's first end-to-end chaos run.
   The scenario body lives in Drust_plan.Scenario (a [Simplan] drives
   it); this module keeps the experiment harness — the seed sweep, the
   determinism check, the printed curve, and the robustness assertions.

   A small KV workload (pinned keys spread round-robin, one client per
   node) runs while the fault plan crashes a primary mid-flight.  Nothing
   calls [Replication.fail_and_promote]: the controller's heartbeat
   detector notices the missed probes, promotes the backups, and the
   clients' retried operations land on the promoted server.  The output
   is a throughput-over-time curve with the dip-and-recover shape, plus
   the two latencies that characterize the failover path:

   - detection latency: injected crash -> detector verdict;
   - recovery time: injected crash -> first successful write to a key
     homed on the dead node.

   The whole run is a pure function of the seed; [run] executes it twice
   and insists the results are bit-identical. *)

module Simplan = Drust_plan.Simplan
module Scenario = Drust_plan.Scenario

type result = Scenario.failover_result = {
  seed : int;
  victim : int;
  crash_time : float;
  detection_time : float option;  (* detector verdict (absolute) *)
  recovery_time : float option;  (* first post-crash write to victim range *)
  curve : int array;  (* completed ops per bucket *)
  bucket : float;
  total_ops : int;
  failed_ops : int;
  retries : int;
  timeouts : int;
  drops : int;
  op_latency : Drust_obs.Metrics.histo option;
      (* merged protocol.op_latency distribution of the run *)
}

let spec = Scenario.default_failover
let duration = spec.Scenario.fo_duration

let plan_of ~seed = Simplan.failover_plan ~seed ()

let run_once ~seed () =
  match (Simplan.execute (plan_of ~seed)).Simplan.result with
  | Simplan.Failover_done r -> r
  | Simplan.App_done _ | Simplan.Churn_done _ -> assert false

let same_result a b =
  a.detection_time = b.detection_time
  && a.recovery_time = b.recovery_time
  && a.curve = b.curve
  && a.total_ops = b.total_ops
  && a.failed_ops = b.failed_ops
  && a.retries = b.retries
  && a.timeouts = b.timeouts
  && a.drops = b.drops

let bar n scale =
  String.make (min 60 (int_of_float (float_of_int n /. scale))) '#'

let print r =
  Report.section
    (Printf.sprintf
       "Failover: crash node %d at t=%.0f ms, heartbeat detection, automatic \
        promotion (seed %d)"
       r.victim (r.crash_time *. 1e3) r.seed);
  let peak = Array.fold_left max 1 r.curve in
  let scale = float_of_int peak /. 50.0 in
  Report.table
    ~header:[ "t (ms)"; "ops"; "throughput" ]
    ~rows:
      (List.mapi
         (fun i n ->
           [
             Printf.sprintf "%5.1f" (float_of_int i *. r.bucket *. 1e3);
             string_of_int n;
             bar n scale;
           ])
         (Array.to_list r.curve));
  let ms label = function
    | Some t ->
        Report.note
          (Printf.sprintf "%s: %.3f ms after the crash" label
             ((t -. r.crash_time) *. 1e3))
    | None -> Report.note (Printf.sprintf "%s: NEVER" label)
  in
  ms "detection latency" r.detection_time;
  ms "recovery time (first write served by promoted backup)" r.recovery_time;
  Report.note
    (Printf.sprintf
       "%d ops completed, %d abandoned; %d retries, %d timeouts, %d drops"
       r.total_ops r.failed_ops r.retries r.timeouts r.drops)

(* Detection/recovery latencies are milliseconds-scale. *)
let failover_buckets =
  [| 1e-4; 2e-4; 5e-4; 1e-3; 2e-3; 5e-3; 1e-2; 2e-2; 5e-2 |]

(* Fold the per-seed failover latencies into bucket histograms and
   reduce to (n, p50, p99) per phase via the shared quantile estimator —
   the same machinery the summary percentiles use, exercised here on a
   second distribution family. *)
let failover_percentiles results =
  let module Metrics = Drust_obs.Metrics in
  let reg = Metrics.create () in
  let histo kind =
    Metrics.histogram reg ~buckets:failover_buckets
      ~labels:[ ("phase", kind) ] ~unit_:"s" "failover.latency"
  in
  let det = histo "detection" and rec_ = histo "recovery" in
  List.iter
    (fun r ->
      let obs h = function
        | Some t -> Metrics.observe h (t -. r.crash_time)
        | None -> ()
      in
      obs det r.detection_time;
      obs rec_ r.recovery_time)
    results;
  let snap = Metrics.snapshot reg in
  List.map
    (fun kind ->
      match
        Metrics.find snap ~labels:[ ("phase", kind) ] "failover.latency"
      with
      | Some (Metrics.Histo h) ->
          let qv q = Option.value (Metrics.quantile h q) ~default:nan in
          (kind, h.Metrics.h_count, qv 0.5, qv 0.99)
      | _ -> (kind, 0, nan, nan))
    [ "detection"; "recovery" ]

let run ?(seed = 42) () =
  (* Five seeds characterize the failover-latency distribution; the base
     seed runs twice as the determinism check.  All runs are independent
     clusters, so under --jobs >= 2 this is also the parallel chaos
     run: fanned over domains, results must not change. *)
  let extra_seeds = [ seed + 1; seed + 2; seed + 3; seed + 4 ] in
  let host0 =
    (Unix.gettimeofday ()
    [@dlint.allow
      "determinism: feeds only the opt-in host_ms column (--host-time), \
       never the gated byte-identical output"])
  in
  let results =
    Parallel.run
      (run_once ~seed :: run_once ~seed
      :: List.map (fun s () -> run_once ~seed:s ()) extra_seeds)
  in
  let host_ms =
    ((Unix.gettimeofday () -. host0) *. 1e3
    [@dlint.allow
      "determinism: feeds only the opt-in host_ms column (--host-time), \
       never the gated byte-identical output"])
  in
  let r1, r2, rest =
    match results with a :: b :: rest -> (a, b, rest) | _ -> assert false
  in
  Report.record_rate ?latency:r1.op_latency ~host_ms
    ~experiment:"failover/chaos" ~ops:(float_of_int r1.total_ops)
    ~elapsed:duration ();
  Report.emit_plan (plan_of ~seed);
  print r1;
  (match (r1.detection_time, r1.recovery_time) with
  | Some _, Some _ -> ()
  | _ ->
      failwith
        "Failover: the detector or the recovery path did not fire — the \
         automatic failover chain is broken");
  if not (same_result r1 r2) then
    failwith "Failover: two runs with the same seed diverged — determinism bug";
  Report.note "determinism: second run with the same seed is bit-identical";
  (* Percentiles over the seed sweep (duplicate base-seed run excluded). *)
  let sweep = r1 :: rest in
  let pct = failover_percentiles sweep in
  Report.table
    ~header:[ "phase"; "seeds"; "p50 (ms)"; "p99 (ms)" ]
    ~rows:
      (List.map
         (fun (kind, n, p50, p99) ->
           [
             kind;
             string_of_int n;
             Printf.sprintf "%.3f" (p50 *. 1e3);
             Printf.sprintf "%.3f" (p99 *. 1e3);
           ])
         pct);
  List.iter
    (fun (kind, n, p50, p99) ->
      if n = 0 then
        Printf.ksprintf failwith "Failover: no %s latency samples" kind;
      if not (p99 >= p50) then
        Printf.ksprintf failwith
          "Failover: %s p99 (%.6f s) < p50 (%.6f s) — quantile estimator \
           is not monotone"
          kind p99 p50)
    pct;
  Report.note
    (Printf.sprintf "latency percentiles over %d seeds (seed %d..%d)"
       (List.length sweep) seed (seed + List.length extra_seeds));
  r1
