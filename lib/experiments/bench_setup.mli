(** Shared experiment plumbing: cluster construction, backend selection,
    and normalized application runs.

    The run types re-export {!Drust_plan.Simplan}'s — the plan layer is
    the single definition of what a run is — and {!run_app} is a thin
    wrapper over [Simplan.execute], so every figure cell is described by
    a replayable plan. *)

module Params = Drust_machine.Params
module Cluster = Drust_machine.Cluster

type system = Drust_plan.Simplan.system = Drust | Gam | Grappa | Original

val system_name : system -> string
val all_systems : system list
(** [Drust; Gam; Grappa] — the three DSMs of Fig. 5. *)

val testbed : ?nodes:int -> ?seed:int -> unit -> Params.t
(** The paper's testbed: 16 cores / node at 2.6 GHz on 40 Gbps IB. *)

val fixed_testbed : nodes:int -> Params.t
(** Fig. 7: 16 cores and 64 GB total, split evenly over [nodes]. *)

val make_backend : system -> Cluster.t -> Drust_dsm.Dsm.t

type app = Drust_plan.Simplan.app =
  | Dataframe_app
  | Socialnet_app
  | Gemm_app
  | Kvstore_app

val app_name : app -> string
val all_apps : app list

val run_app :
  ?affinity:bool ->
  ?pass_by_value:bool ->
  app ->
  system ->
  params:Params.t ->
  Drust_appkit.Appkit.result
(** Build a fresh cluster from [params], instantiate the system's backend,
    run the app's default configuration, and return the result.
    [affinity] turns on the DataFrame TBox/spawn_to annotations (DRust
    only).  [pass_by_value] selects SocialNet's original RPC deployment. *)

val run_app_with_latency :
  ?affinity:bool ->
  ?pass_by_value:bool ->
  app ->
  system ->
  params:Params.t ->
  Drust_appkit.Appkit.result * Drust_obs.Metrics.histo option
(** {!run_app}, additionally returning the run's merged
    [protocol.op_latency] histogram ({!Report.latency_of_snapshot}) so
    experiments can report percentile columns.  [None] when the backend
    never touched the DRust protocol (e.g. GAM/Grappa/Original). *)

val single_node_baseline : ?params:Params.t -> app -> Drust_appkit.Appkit.result
(** The app run as-is ([Original] backend) on one full node — the
    normalization denominator of every figure.  Memoized on the full
    configuration (app, deployment, params); [params] defaults to
    [testbed ~nodes:1 ()]. *)

val precompute_baselines : ?jobs:int -> app list -> unit
(** Warm the baseline cache for [apps] (default parameters), fanning the
    runs out over {!Parallel.map}.  Sweeps call this first so the
    memoized baselines are ready before the measured grid starts. *)
