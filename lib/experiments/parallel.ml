(* Deterministic parallel sweep runner.

   One simulated cluster is strictly single-domain (the effect-handler
   engine is not thread-safe), but distinct clusters share no mutable
   state now that everything lives in the per-cluster [Drust_machine.Env]
   record — so independent experiment configurations can run on separate
   domains.  The runner keeps a fixed pool: [jobs - 1] spawned domains
   plus the calling domain, a shared work index bumped with
   [Atomic.fetch_and_add], and a results array filled in submission
   order.  [Domain.join] provides the happens-before edge that publishes
   the workers' writes back to the caller, so results (and the first
   raised exception, re-raised in submission order) are independent of
   which domain ran which job. *)

let default =
  Atomic.make 1
[@@dlint.allow
  "globals: per-process --jobs default, set once by the CLI before any \
   sweep runs; atomic"]

let set_default_jobs n =
  if n < 1 then invalid_arg "Parallel.set_default_jobs: jobs must be >= 1";
  Atomic.set default n

let default_jobs () = Atomic.get default

let run_list jobs thunks =
  let n = List.length thunks in
  if jobs <= 1 || n <= 1 then List.map (fun f -> f ()) thunks
  else begin
    let work = Array.of_list thunks in
    let results : ('a, exn) result option array = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (results.(i) <-
             (match work.(i) () with
             | v -> Some (Ok v)
             | exception e -> Some (Error e)));
          loop ()
        end
      in
      loop ()
    in
    let spawned =
      Array.init (min jobs n - 1) (fun _ -> Domain.spawn worker)
    in
    worker ();
    Array.iter Domain.join spawned;
    Array.to_list results
    |> List.map (function
         | Some (Ok v) -> v
         | Some (Error e) -> raise e
         | None -> assert false)
  end

let run ?jobs thunks =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then invalid_arg "Parallel.run: jobs must be >= 1";
  run_list jobs thunks

let map ?jobs f items = run ?jobs (List.map (fun x () -> f x) items)
