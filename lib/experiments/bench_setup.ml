module Params = Drust_machine.Params
module Cluster = Drust_machine.Cluster
module Dsm = Drust_dsm.Dsm
module Appkit = Drust_appkit.Appkit

type system = Drust | Gam | Grappa | Original

let system_name = function
  | Drust -> "DRust"
  | Gam -> "GAM"
  | Grappa -> "Grappa"
  | Original -> "Original"

let all_systems = [ Drust; Gam; Grappa ]

let testbed ?(nodes = 8) ?(seed = 42) () =
  { Params.default with Params.nodes; mem_per_node = Drust_util.Units.gib 8; seed }

let fixed_testbed ~nodes =
  Params.fixed_resource (testbed ~nodes ()) ~total_cores:16
    ~total_mem:(Drust_util.Units.gib 8 * 8) ~nodes

let make_backend system cluster =
  match system with
  | Drust -> Drust_dsm.Drust_backend.create cluster
  | Gam -> Drust_gam.Gam.backend (Drust_gam.Gam.create cluster)
  | Grappa -> Drust_grappa.Grappa.backend (Drust_grappa.Grappa.create cluster)
  | Original -> Drust_dsm.Local_backend.create cluster

type app = Dataframe_app | Socialnet_app | Gemm_app | Kvstore_app

let app_name = function
  | Dataframe_app -> "DataFrame"
  | Socialnet_app -> "SocialNet"
  | Gemm_app -> "GEMM"
  | Kvstore_app -> "KV Store"

let all_apps = [ Dataframe_app; Socialnet_app; Gemm_app; Kvstore_app ]

let run_app_with_latency ?(affinity = false) ?(pass_by_value = false) app
    system ~params =
  let cluster = Cluster.create params in
  let backend = make_backend system cluster in
  let result =
    match app with
    | Dataframe_app ->
        Drust_dataframe.Dataframe.run ~cluster ~backend
          {
            Drust_dataframe.Dataframe.default_config with
            Drust_dataframe.Dataframe.use_tbox = affinity;
            use_spawn_to = affinity;
          }
    | Socialnet_app ->
        Drust_socialnet.Socialnet.run ~cluster ~backend
          {
            Drust_socialnet.Socialnet.default_config with
            Drust_socialnet.Socialnet.pass_by_value;
          }
    | Gemm_app ->
        Drust_gemm.Gemm.run ~cluster ~backend Drust_gemm.Gemm.default_config
    | Kvstore_app ->
        Drust_kvstore.Kvstore.run ~cluster ~backend
          Drust_kvstore.Kvstore.default_config
  in
  let snap = Drust_obs.Metrics.snapshot (Cluster.metrics cluster) in
  (result, Report.latency_of_snapshot snap)

let run_app ?affinity ?pass_by_value app system ~params =
  fst (run_app_with_latency ?affinity ?pass_by_value app system ~params)

(* Memoized: every figure normalizes against the same baseline.  The key
   carries the full run configuration — a baseline computed for one
   parameter set must never be served for another (keying on the app
   alone silently mixed configurations).  The mutex covers lookups and
   inserts from parallel sweep domains; the run itself happens outside
   the lock, so two domains may race to compute the same key, in which
   case both compute identical (deterministic) results and the second
   insert is a no-op overwrite. *)
type baseline_key = { bk_app : app; bk_pass_by_value : bool; bk_params : Params.t }

let baseline_cache : (baseline_key, Appkit.result) Hashtbl.t =
  Hashtbl.create 8
[@@dlint.allow
  "globals: the baseline memo spans clusters on purpose (that is the \
   memo); the key carries the full run configuration and inserts are \
   mutex-protected"]
let baseline_mutex = Mutex.create ()

let default_baseline_params () = testbed ~nodes:1 ()

let single_node_baseline ?params app =
  let params =
    match params with Some p -> p | None -> default_baseline_params ()
  in
  let pass_by_value = app = Socialnet_app in
  let key = { bk_app = app; bk_pass_by_value = pass_by_value; bk_params = params } in
  match
    Mutex.protect baseline_mutex (fun () -> Hashtbl.find_opt baseline_cache key)
  with
  | Some r -> r
  | None ->
      let r = run_app ~pass_by_value app Original ~params in
      Mutex.protect baseline_mutex (fun () ->
          Hashtbl.replace baseline_cache key r);
      r

let precompute_baselines ?jobs apps =
  ignore (Parallel.map ?jobs (fun app -> single_node_baseline app) apps)
