module Params = Drust_machine.Params
module Cluster = Drust_machine.Cluster
module Simplan = Drust_plan.Simplan
module Appkit = Drust_appkit.Appkit

type system = Simplan.system = Drust | Gam | Grappa | Original

let system_name = Simplan.system_name
let all_systems = Simplan.all_systems

let testbed ?(nodes = 8) ?(seed = 42) () =
  { Params.default with Params.nodes; mem_per_node = Drust_util.Units.gib 8; seed }

let fixed_testbed ~nodes =
  Params.fixed_resource (testbed ~nodes ()) ~total_cores:16
    ~total_mem:(Drust_util.Units.gib 8 * 8) ~nodes

let make_backend = Simplan.make_backend

type app = Simplan.app =
  | Dataframe_app
  | Socialnet_app
  | Gemm_app
  | Kvstore_app

let app_name = Simplan.app_name
let all_apps = Simplan.all_apps

(* Every harness run goes through a plan: the figure grids construct one
   per cell and [Simplan.execute] it, so a cell's exact scenario can be
   re-emitted ([--emit-plan]) and replayed ([--plan]) from the same
   artifact the CLIs speak. *)
let run_app_with_latency ?affinity ?pass_by_value app system ~params =
  let plan = Simplan.app_plan ?affinity ?pass_by_value ~params app system in
  match (Simplan.execute plan).Simplan.result with
  | Simplan.App_done { result; latency; _ } -> (result, latency)
  | Simplan.Failover_done _ | Simplan.Churn_done _ -> assert false

let run_app ?affinity ?pass_by_value app system ~params =
  fst (run_app_with_latency ?affinity ?pass_by_value app system ~params)

(* Memoized: every figure normalizes against the same baseline.  The key
   carries the full run configuration — a baseline computed for one
   parameter set must never be served for another (keying on the app
   alone silently mixed configurations).  The mutex covers lookups and
   inserts from parallel sweep domains; the run itself happens outside
   the lock, so two domains may race to compute the same key, in which
   case both compute identical (deterministic) results and the second
   insert is a no-op overwrite. *)
type baseline_key = { bk_app : app; bk_pass_by_value : bool; bk_params : Params.t }

let baseline_cache : (baseline_key, Appkit.result) Hashtbl.t =
  Hashtbl.create 8
[@@dlint.allow
  "globals: the baseline memo spans clusters on purpose (that is the \
   memo); the key carries the full run configuration and inserts are \
   mutex-protected"]
let baseline_mutex = Mutex.create ()

let default_baseline_params () = testbed ~nodes:1 ()

let single_node_baseline ?params app =
  let params =
    match params with Some p -> p | None -> default_baseline_params ()
  in
  let pass_by_value = app = Socialnet_app in
  let key = { bk_app = app; bk_pass_by_value = pass_by_value; bk_params = params } in
  match
    Mutex.protect baseline_mutex (fun () -> Hashtbl.find_opt baseline_cache key)
  with
  | Some r -> r
  | None ->
      let r = run_app ~pass_by_value app Original ~params in
      Mutex.protect baseline_mutex (fun () ->
          Hashtbl.replace baseline_cache key r);
      r

let precompute_baselines ?jobs apps =
  ignore (Parallel.map ?jobs (fun app -> single_node_baseline app) apps)
