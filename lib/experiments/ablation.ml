module B = Bench_setup
module Cluster = Drust_machine.Cluster
module Ctx = Drust_machine.Ctx
module Engine = Drust_sim.Engine
module P = Drust_core.Protocol
module Dmutex = Drust_runtime.Dmutex
module Dthread = Drust_runtime.Dthread
module Appkit = Drust_appkit.Appkit

type row = { experiment : string; variant : string; value : float; unit_ : string }

(* Run [body] as the main process of a fresh cluster, returning the
   virtual time it took. *)
let timed ?(nodes = 4) setup body =
  let cluster = Cluster.create (B.testbed ~nodes ()) in
  setup cluster;
  let elapsed = ref 0.0 in
  let engine = Cluster.engine cluster in
  ignore
    (Engine.spawn engine (fun () ->
         let ctx = Ctx.make cluster ~node:0 in
         let t0 = Engine.now engine in
         body cluster ctx;
         Ctx.flush ctx;
         elapsed := Engine.now engine -. t0));
  Cluster.run cluster;
  !elapsed

(* --- 1/2: local-write epochs under the three coloring variants -------- *)

let write_epochs ~epochs ~writes_per_epoch cluster ctx =
  ignore cluster;
  let o = P.create ctx ~size:4096 Appkit.blob in
  for _ = 1 to epochs do
    (* A read epoch (resets the U bit)... *)
    let r = P.borrow_imm ctx o in
    ignore (P.imm_deref ctx r);
    P.drop_imm ctx r;
    (* ...then a write epoch with several writes. *)
    let m = P.borrow_mut ctx o in
    for _ = 1 to writes_per_epoch do
      P.mut_write ctx m Appkit.blob
    done;
    P.drop_mut ctx m
  done

(* Like [timed] but also reports the protocol's bump/move counters, which
   show the mechanism even where the cost difference is modest. *)
let timed_with_counters setup body =
  let cluster = Cluster.create (B.testbed ~nodes:4 ()) in
  setup cluster;
  let elapsed = ref 0.0 and bumps = ref 0 and moves = ref 0 in
  let engine = Cluster.engine cluster in
  ignore
    (Engine.spawn engine (fun () ->
         let ctx = Ctx.make cluster ~node:0 in
         P.reset_protocol_stats ctx;
         let t0 = Engine.now engine in
         body cluster ctx;
         Ctx.flush ctx;
         elapsed := Engine.now engine -. t0;
         bumps := P.color_bumps ctx;
         moves := P.moves ctx));
  Cluster.run cluster;
  (!elapsed, !bumps, !moves)

(* Each job below is a full independent cluster run returning its rows;
   [run] fans them all out over the domain pool and concatenates the
   chunks in submission order, reproducing the sequential row order. *)
let coloring_jobs () =
  let epochs = 2_000 and writes_per_epoch = 8 in
  let run setup =
    timed_with_counters setup (write_epochs ~epochs ~writes_per_epoch)
  in
  let mk variant (t, bumps, moves) =
    [
      { experiment = "local writes"; variant; value = t *. 1e3; unit_ = "ms" };
      {
        experiment = "local writes";
        variant = variant ^ " [color bumps]";
        value = Float.of_int bumps;
        unit_ = "bumps";
      };
      {
        experiment = "local writes";
        variant = variant ^ " [moves]";
        value = Float.of_int moves;
        unit_ = "moves";
      };
    ]
  in
  [
    (fun () -> mk "pointer coloring (default)" (run (fun _ -> ())));
    (fun () ->
      mk "always-move (ablated)"
        (run (fun cluster -> P.set_always_move cluster true)));
    (fun () ->
      mk "no U-bit elision (ablated)"
        (run (fun cluster -> P.set_no_ubit cluster true)));
  ]

(* --- 3: linked-list sum, TBox vs plain Box --------------------------- *)

let list_sum ~tie cluster ctx =
  ignore cluster;
  let len = 64 in
  (* Build the list on node 1 (remote from the reader on node 0). *)
  let nodes_ = List.init len (fun i -> P.create_on ctx ~node:1 ~size:256 (Appkit.payload_of_int i)) in
  (match nodes_ with
  | head :: rest when tie ->
      ignore
        (List.fold_left
           (fun parent child ->
             P.tie ctx ~parent ~child;
             child)
           head rest)
  | _ -> ());
  Ctx.flush ctx;
  let t0 = Engine.now (Ctx.engine ctx) in
  (* Iterate the list: dereference every node. *)
  List.iter
    (fun o ->
      let r = P.borrow_imm ctx o in
      ignore (P.imm_deref ctx r);
      P.drop_imm ctx r)
    nodes_;
  Ctx.flush ctx;
  Engine.now (Ctx.engine ctx) -. t0

let tbox_jobs () =
  let one ~tie variant () =
    let t = ref 0.0 in
    ignore
      (timed (fun _ -> ()) (fun cluster ctx -> t := list_sum ~tie cluster ctx));
    [
      { experiment = "linked-list sum (64 nodes)"; variant;
        value = !t *. 1e6; unit_ = "us" };
    ]
  in
  [ one ~tie:false "plain Box (chase)"; one ~tie:true "TBox (batched)" ]

(* --- 4: one-sided vs two-sided mutex under contention ----------------- *)

let mutex_jobs () =
  let contenders = 16 and rounds = 50 in
  let per_op t = t /. Float.of_int (contenders * rounds) *. 1e6 in
  let drust () =
    let t =
      timed ~nodes:8
        (fun _ -> ())
        (fun cluster ctx ->
          let m = Dmutex.create ctx ~size:8 Appkit.blob in
          let workers =
            List.init contenders (fun i ->
                Dthread.spawn_on ctx ~node:(i mod Cluster.node_count cluster)
                  (fun wctx ->
                    for _ = 1 to rounds do
                      Dmutex.lock wctx m;
                      Ctx.compute wctx ~cycles:2_000.0;
                      Dmutex.unlock wctx m
                    done))
          in
          Dthread.join_all ctx workers)
    in
    [
      { experiment = "contended lock (16 threads)";
        variant = "DRust 1-sided CAS"; value = per_op t;
        unit_ = "us/critical-section" };
    ]
  in
  let gam () =
    let t =
      timed ~nodes:8
        (fun _ -> ())
        (fun cluster ctx ->
          let backend = B.make_backend B.Gam cluster in
          let m = backend.Drust_dsm.Dsm.mutex_create ctx in
          let workers =
            List.init contenders (fun i ->
                Dthread.spawn_on ctx ~node:(i mod Cluster.node_count cluster)
                  (fun wctx ->
                    for _ = 1 to rounds do
                      backend.Drust_dsm.Dsm.mutex_lock wctx m;
                      Ctx.compute wctx ~cycles:2_000.0;
                      backend.Drust_dsm.Dsm.mutex_unlock wctx m
                    done))
          in
          Dthread.join_all ctx workers)
    in
    [
      { experiment = "contended lock (16 threads)";
        variant = "GAM-style 2-sided RPC"; value = per_op t;
        unit_ = "us/critical-section" };
    ]
  in
  [ drust; gam ]

let run () =
  let chunks =
    Parallel.run (coloring_jobs () @ tbox_jobs () @ mutex_jobs ())
  in
  Report.section "Ablations: protocol design choices";
  let rows = List.concat chunks in
  Report.table
    ~header:[ "experiment"; "variant"; "result"; "unit" ]
    ~rows:
      (List.map
         (fun r -> [ r.experiment; r.variant; Printf.sprintf "%.2f" r.value; r.unit_ ])
         rows);
  rows
