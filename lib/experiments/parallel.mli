(** Deterministic parallel sweep runner for independent experiment
    configurations.

    A simulated cluster is single-domain by construction (see
    docs/SIMULATOR.md), but {e distinct} clusters share no mutable state
    — all per-cluster tables live in [Drust_machine.Env] — so a sweep
    over configurations can fan out across a fixed pool of domains.

    Determinism contract: results are returned in submission order, and
    each job must confine its side effects to its own cluster (no
    printing, no shared mutable state beyond the mutex-protected
    collectors in {!Report} and {!Bench_setup}).  Under that contract
    the output of a sweep is byte-identical for every [jobs] value. *)

val set_default_jobs : int -> unit
(** Set the pool size used when [?jobs] is omitted (the [--jobs N]
    flag).  Raises [Invalid_argument] if [n < 1].  Default 1. *)

val default_jobs : unit -> int

val run : ?jobs:int -> (unit -> 'a) list -> 'a list
(** Run the thunks on [min jobs (length thunks)] domains (the calling
    domain participates; [jobs <= 1] runs everything inline, in order)
    and return their results in submission order.  If any thunk raises,
    the exception of the {e earliest-submitted} failing thunk is
    re-raised after all thunks finish. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] = [run ~jobs (List.map (fun x () -> f x) xs)]. *)
