module Simplan = Drust_plan.Simplan

type opts = {
  node_counts : int list option;
  churn_nodes : int option;
  seed : int;
}

let default_opts = { node_counts = None; churn_nodes = None; seed = 42 }

(* One entry per plan-replayable experiment.  Every entry takes the
   suite knobs; most ignore them (their sweeps are part of the paper's
   fixed grids).  The seeded ones thread [opts.seed] so a suite plan
   with a different seed replays faithfully. *)
let table : (string * (opts -> unit)) list =
  [
    ("motivation", fun _ -> ignore (Motivation.run ()));
    ("table1", fun _ -> ignore (Table1.run ()));
    ("table2", fun o -> ignore (Table2.run ~seed:o.seed ()));
    ("fig5", fun o -> ignore (Fig5.run ?node_counts:o.node_counts ()));
    ("fig6", fun _ -> ignore (Fig6.run ()));
    ("fig7", fun _ -> ignore (Fig7.run ()));
    ("migration", fun _ -> ignore (Migration.run ()));
    ("ablation", fun _ -> ignore (Ablation.run ()));
    ("traffic", fun _ -> ignore (Traffic.run ()));
    ("ycsb", fun _ -> ignore (Ycsb_suite.run ()));
    ("latency", fun _ -> ignore (Latency.run ()));
    ("failover", fun o -> ignore (Failover.run ~seed:o.seed ()));
    ( "churn",
      fun o -> ignore (Churn.run ~seed:o.seed ?nodes:o.churn_nodes ()) );
  ]

let names = List.map fst table

let suite_plan_of opts ~name requested =
  Simplan.suite_plan ?node_counts:opts.node_counts
    ?churn_nodes:opts.churn_nodes ~seed:opts.seed ~name requested

(* Every dispatch emits the single-experiment suite plan it is about to
   run as [<name>.plan.json] next to the results — the artifact a
   later [--plan] replays.  Emission is stderr-only, so stdout stays
   byte-identical, and it happens on both the direct and the replay
   path (they share this lookup), so replays re-emit the same file. *)
let find name =
  match List.assoc_opt name table with
  | None -> None
  | Some f ->
      Some
        (fun opts ->
          Report.emit_plan (suite_plan_of opts ~name [ name ]);
          f opts)

let run_suite opts requested =
  List.iter
    (fun name ->
      match find name with
      | Some f -> f opts
      | None -> invalid_arg (Printf.sprintf "Runner.run_suite: %S" name))
    requested

let opts_of_suite (s : Simplan.suite) =
  {
    node_counts = s.Simplan.su_node_counts;
    churn_nodes = s.Simplan.su_churn_nodes;
    seed = s.Simplan.su_seed;
  }
