module B = Bench_setup
module Cluster = Drust_machine.Cluster
module Fabric = Drust_net.Fabric
module Appkit = Drust_appkit.Appkit

type row = {
  app : B.app;
  system : B.system;
  remote_ops_per_op : float;
  bytes_per_op : float;
}

(* Like Bench_setup.run_app but keeps the cluster so the fabric counters
   survive the run. *)
let run_one app system =
  let params = B.testbed ~nodes:8 () in
  let cluster = Cluster.create params in
  let backend = B.make_backend system cluster in
  let result =
    match app with
    | B.Dataframe_app ->
        Drust_dataframe.Dataframe.run ~cluster ~backend
          Drust_dataframe.Dataframe.default_config
    | B.Socialnet_app ->
        Drust_socialnet.Socialnet.run ~cluster ~backend
          Drust_socialnet.Socialnet.default_config
    | B.Gemm_app ->
        Drust_gemm.Gemm.run ~cluster ~backend Drust_gemm.Gemm.default_config
    | B.Kvstore_app ->
        Drust_kvstore.Kvstore.run ~cluster ~backend
          Drust_kvstore.Kvstore.default_config
  in
  (* Read totals from the cluster's metrics snapshot rather than the
     fabric's convenience accessors — same numbers, one source of truth. *)
  let snap = Drust_obs.Metrics.snapshot (Cluster.metrics cluster) in
  ( {
      app;
      system;
      remote_ops_per_op =
        Float.of_int (Report.metric_total snap "fabric.remote_ops")
        /. result.Appkit.ops;
      bytes_per_op =
        Float.of_int (Report.metric_total snap "fabric.bytes_out")
        /. result.Appkit.ops;
    },
    result,
    Report.latency_of_snapshot snap )

let run () =
  (* Parallel phase (pure compute per cell), then record + render in
     grid order. *)
  let grid =
    List.concat_map
      (fun app -> List.map (fun system -> (app, system)) B.all_systems)
      B.all_apps
  in
  let results = Parallel.map (fun (app, system) -> run_one app system) grid in
  Report.section "Supplementary: coherence traffic per application operation (8 nodes)";
  let rows =
    List.map
      (fun (row, result, latency) ->
        Report.record_rate ?latency
          ~experiment:
            (Printf.sprintf "traffic/%s/%s" (B.app_name row.app)
               (B.system_name row.system))
          ~ops:result.Appkit.ops ~elapsed:result.Appkit.elapsed ();
        row)
      results
  in
  Report.table
    ~header:[ "app"; "system"; "remote verbs / op"; "bytes / op" ]
    ~rows:
      (List.map
         (fun r ->
           [
             B.app_name r.app;
             B.system_name r.system;
             Printf.sprintf "%.1f" r.remote_ops_per_op;
             Format.asprintf "%a" Drust_util.Units.pp_bytes
               (Float.to_int r.bytes_per_op);
           ])
         rows);
  Report.note
    "verbs = one-sided READ/WRITE + RPC + atomics crossing node boundaries";
  rows
