module B = Bench_setup
module Simplan = Drust_plan.Simplan
module Appkit = Drust_appkit.Appkit

type row = {
  app : B.app;
  system : B.system;
  remote_ops_per_op : float;
  bytes_per_op : float;
}

(* Like Bench_setup.run_app but reads the plan outcome's metrics
   snapshot so the fabric counters survive the run. *)
let run_one app system =
  let params = B.testbed ~nodes:8 () in
  let plan = Simplan.app_plan ~params app system in
  let result, latency, snap =
    match (Simplan.execute plan).Simplan.result with
    | Simplan.App_done { result; latency; snapshot } ->
        (result, latency, snapshot)
    | Simplan.Failover_done _ | Simplan.Churn_done _ -> assert false
  in
  (* Read totals from the run's metrics snapshot rather than the
     fabric's convenience accessors — same numbers, one source of truth. *)
  ( {
      app;
      system;
      remote_ops_per_op =
        Float.of_int (Report.metric_total snap "fabric.remote_ops")
        /. result.Appkit.ops;
      bytes_per_op =
        Float.of_int (Report.metric_total snap "fabric.bytes_out")
        /. result.Appkit.ops;
    },
    result,
    latency )

let run () =
  (* Parallel phase (pure compute per cell), then record + render in
     grid order. *)
  let grid =
    List.concat_map
      (fun app -> List.map (fun system -> (app, system)) B.all_systems)
      B.all_apps
  in
  let results = Parallel.map (fun (app, system) -> run_one app system) grid in
  Report.section "Supplementary: coherence traffic per application operation (8 nodes)";
  let rows =
    List.map
      (fun (row, result, latency) ->
        Report.record_rate ?latency
          ~experiment:
            (Printf.sprintf "traffic/%s/%s" (B.app_name row.app)
               (B.system_name row.system))
          ~ops:result.Appkit.ops ~elapsed:result.Appkit.elapsed ();
        row)
      results
  in
  Report.table
    ~header:[ "app"; "system"; "remote verbs / op"; "bytes / op" ]
    ~rows:
      (List.map
         (fun r ->
           [
             B.app_name r.app;
             B.system_name r.system;
             Printf.sprintf "%.1f" r.remote_ops_per_op;
             Format.asprintf "%a" Drust_util.Units.pp_bytes
               (Float.to_int r.bytes_per_op);
           ])
         rows);
  Report.note
    "verbs = one-sided READ/WRITE + RPC + atomics crossing node boundaries";
  rows
