(** The experiment dispatch table shared by the bench CLI's direct
    path and [--plan] replay.

    Both entry points funnel through {!run_suite}, so a replayed suite
    plan runs exactly the code a direct invocation runs — which is what
    makes [--plan] output trivially byte-identical.  The CLI-only
    entries (trace, profile, micro) stay in bench/main.ml; they are
    diagnostics, not plan-replayable experiments. *)

type opts = {
  node_counts : int list option;  (** fig5's sweep sizes, when pinned *)
  churn_nodes : int option;  (** churn's cluster size (default 64) *)
  seed : int;  (** base seed for the seeded experiments *)
}
(** The knobs a suite plan (or the CLI) can turn.  {!default_opts}
    reproduces the historical defaults exactly. *)

val default_opts : opts
(** [{ node_counts = None; churn_nodes = None; seed = 42 }]. *)

val names : string list
(** The plan-replayable experiment names, in canonical run order. *)

val find : string -> (opts -> unit) option
(** Look up one experiment by name.  The returned thunk first emits the
    single-experiment suite plan it is about to run as
    [<name>.plan.json] next to the results ({!Report.emit_plan}) —
    both the direct CLI path and [--plan] replay dispatch through here,
    so both emit the same artifact. *)

val run_suite : opts -> string list -> unit
(** Run the named experiments in the order given.  Raises
    [Invalid_argument] on an unknown name — callers validate first. *)

val suite_plan_of : opts -> name:string -> string list -> Drust_plan.Simplan.t
(** The suite plan describing this invocation, for [--emit-plan]. *)

val opts_of_suite : Drust_plan.Simplan.suite -> opts
(** The inverse: knobs carried by a loaded suite plan. *)
