(* determinism — flag sources of nondeterminism in simulator code.

   Every experiment must be reproducible from a single integer seed
   (docs/BENCHMARKS.md gates byte-identical output across --jobs), so
   library and harness code may not consult ambient entropy or rely on
   unspecified orders.  Checked syntactically over lib/, bench/ and
   bin/:

   - the [Random] module (use the seeded [Drust_util.Rng] instead);
   - wall-clock reads ([Sys.time], [Unix.gettimeofday], [Unix.time],
     [Unix.localtime], [Unix.gmtime]) — host time may only feed the
     opt-in host_ms column, behind an allow;
   - [Hashtbl.iter]/[Hashtbl.fold]/[Hashtbl.to_seq*], whose bucket
     order is an implementation detail that leaks into any output
     built from it — sort, or allow with an order-independence
     argument;
   - the polymorphic hash family ([Hashtbl.hash] & friends), whose
     value depends on the runtime's representation choices;
   - bare polymorphic [compare] / [Stdlib.compare], which on abstract
     or uid-carrying types orders by representation, not meaning —
     use the typed [Int.compare]/[String.compare]/per-module compare;
   - physical equality [==]/[!=], unspecified on immutable values;
   - [Obj.magic], which defeats every typed argument the lint makes.

   The pass flags identifier *uses*, so both direct calls and
   higher-order escapes ([List.sort compare]) are caught. *)

let name = "determinism"

let doc =
  "nondeterminism sources: Random, wall-clock reads, unordered Hashtbl \
   iteration, polymorphic hash/compare, physical equality, Obj.magic"

let wall_clock =
  [ "Sys.time"; "Unix.gettimeofday"; "Unix.time"; "Unix.localtime";
    "Unix.gmtime" ]

let unordered =
  [ "Hashtbl.iter"; "Hashtbl.fold"; "Hashtbl.to_seq"; "Hashtbl.to_seq_keys";
    "Hashtbl.to_seq_values" ]

let poly_hash = [ "Hashtbl.hash"; "Hashtbl.hash_param"; "Hashtbl.seeded_hash" ]
let poly_compare = [ "compare"; "Stdlib.compare" ]
let phys_eq = [ "=="; "!=" ]

let message_for ident =
  if String.starts_with ~prefix:"Random." ident || ident = "Random" then
    Some
      (Printf.sprintf
         "%s draws from ambient entropy — use the seeded Drust_util.Rng"
         ident)
  else if List.mem ident wall_clock then
    Some
      (Printf.sprintf
         "%s reads the host clock — simulator output must be a function of \
          the seed (host time is only legal behind the opt-in host_ms \
          column)"
         ident)
  else if List.mem ident unordered then
    Some
      (Printf.sprintf
         "%s iterates in unspecified bucket order — sort the result, or \
          allow with an order-independence argument"
         ident)
  else if List.mem ident poly_hash then
    Some
      (Printf.sprintf
         "%s is the polymorphic hash — define a typed hash from the \
          value's uid instead"
         ident)
  else if List.mem ident poly_compare then
    Some
      (Printf.sprintf
         "polymorphic %s orders by representation — use Int.compare, \
          String.compare, or the module's own compare"
         ident)
  else if List.mem ident phys_eq then
    Some
      (Printf.sprintf
         "physical equality (%s) is unspecified on immutable values — use \
          structural or uid equality, or allow with an identity argument"
         ident)
  else if ident = "Obj.magic" then
    Some "Obj.magic defeats the type system the lint relies on"
  else None

let check ctx (f : Lint.file_unit) =
  let open Ast_iterator in
  let expr it (e : Parsetree.expression) =
    (match e.pexp_desc with
    | Pexp_ident { txt; loc } -> (
        match message_for (Lint.ident_name txt) with
        | Some msg -> Lint.emit ctx ~pass:name ~loc msg
        | None -> ())
    | _ -> ());
    default_iterator.expr it e
  in
  let it = { default_iterator with expr } in
  it.structure it f.Lint.f_structure

let pass =
  {
    Lint.p_name = name;
    p_doc = doc;
    p_applies =
      (fun scope ->
        Lint.under "lib" scope || Lint.under "bench" scope
        || Lint.under "bin" scope);
    p_check = check;
  }
