(* DLint registry and runner: the entry point behind tools/dlint.ml and
   test/test_lint.ml.  The framework itself lives in [Lint]; the passes
   in [Pass_determinism], [Pass_globals], [Pass_ownership].  docs/LINTS.md
   catalogues the registry and tools/check_docs.ml keeps the two in
   sync both ways. *)

(* The hygiene pass has no checker of its own: the framework emits its
   findings (malformed allow payloads, unknown pass ids, empty reasons,
   stale allows, stale table entries) while collecting and settling
   exemptions.  It is registered so it can be listed, selected with
   --only, named in allow payload validation, and catalogued. *)
let hygiene_pass =
  {
    Lint.p_name = Lint.hygiene;
    p_doc =
      "exemption hygiene: every [@dlint.allow] carries \"pass-id: reason\" \
       and still suppresses a finding; stale allows and stale table \
       entries fail the lint";
    p_applies = (fun _ -> true);
    p_check = (fun _ _ -> ());
  }

let passes =
  [ Pass_determinism.pass; Pass_globals.pass; Pass_ownership.pass;
    hygiene_pass ]

let pass_names = List.map (fun p -> p.Lint.p_name) passes

(* The closed exemption table, for generated files that cannot carry
   [@dlint.allow] attributes.  Keep it empty unless a generator shows
   up: attributes at the use site are the mechanism of record.  Entries
   are (scope path, pass, reason) and are subject to the same staleness
   rule as attributes. *)
let exemptions : (string * string * string) list = []

type result = {
  diagnostics : Lint.diagnostic list;
  files_scanned : int;
  allows_used : int;
  allows_total : int;
}

let run ?only ?(table = exemptions) ~paths () =
  let selected =
    match only with
    | None -> passes
    | Some name -> List.filter (fun p -> p.Lint.p_name = name) passes
  in
  if selected = [] then
    invalid_arg
      (Printf.sprintf "dlint: unknown pass %S (known: %s)"
         (Option.value only ~default:"")
         (String.concat ", " pass_names));
  let hygiene_on = List.exists (fun p -> p.Lint.p_name = Lint.hygiene) selected in
  let table =
    List.map
      (fun (scope, pass, reason) ->
        { Lint.e_scope = scope; e_pass = pass; e_reason = reason;
          e_used = false })
      table
  in
  let ctx =
    { Lint.known_passes = pass_names; table; current = None; diags = [] }
  in
  let files =
    List.concat_map
      (fun p ->
        if Sys.is_directory p then Lint.ml_files p
        else if Filename.check_suffix p ".ml" then [ p ]
        else [])
      paths
  in
  let allows_total = ref 0 in
  let allows_used = ref 0 in
  List.iter
    (fun path ->
      match Lint.parse_file path with
      | Error d -> ctx.Lint.diags <- d :: ctx.Lint.diags
      | Ok structure ->
          let f =
            {
              Lint.f_path = path;
              f_scope = Lint.scope_of_path path;
              f_structure = structure;
              f_allows = [];
            }
          in
          ctx.Lint.current <- Some f;
          f.Lint.f_allows <-
            Lint.collect_allows ctx ~emit_hygiene:hygiene_on structure;
          allows_total := !allows_total + List.length f.Lint.f_allows;
          let ran =
            List.filter
              (fun p ->
                p.Lint.p_name <> Lint.hygiene
                && p.Lint.p_applies f.Lint.f_scope)
              selected
          in
          List.iter (fun p -> p.Lint.p_check ctx f) ran;
          (* A stale allow is only reportable if its pass actually ran
             over this file (under --only, allows for unselected passes
             are left alone). *)
          if hygiene_on then
            List.iter
              (fun (a : Lint.allow) ->
                if
                  (not a.Lint.a_used)
                  && List.exists
                       (fun p -> p.Lint.p_name = a.Lint.a_pass)
                       ran
                then
                  ctx.Lint.diags <-
                    {
                      Lint.d_pass = Lint.hygiene;
                      d_file = path;
                      d_line = a.Lint.a_line;
                      d_col = a.Lint.a_col;
                      d_message =
                        Printf.sprintf
                          "stale [@dlint.allow \"%s: %s\"] — no %s finding \
                           left at this site; remove the exemption"
                          a.Lint.a_pass a.Lint.a_reason a.Lint.a_pass;
                    }
                    :: ctx.Lint.diags)
              f.Lint.f_allows;
          allows_used :=
            !allows_used
            + List.length
                (List.filter (fun a -> a.Lint.a_used) f.Lint.f_allows);
          ctx.Lint.current <- None)
    files;
  if hygiene_on then
    List.iter
      (fun (e : Lint.exemption) ->
        let pass_selected =
          List.exists (fun p -> p.Lint.p_name = e.Lint.e_pass) selected
        in
        if pass_selected && not e.Lint.e_used then
          ctx.Lint.diags <-
            {
              Lint.d_pass = Lint.hygiene;
              d_file = "lib/lint/dlint.ml";
              d_line = 1;
              d_col = 0;
              d_message =
                Printf.sprintf
                  "stale exemption table entry (%s, %s) — nothing left to \
                   suppress; remove it"
                  e.Lint.e_scope e.Lint.e_pass;
            }
            :: ctx.Lint.diags)
      table;
  let used =
    List.length (List.filter (fun (e : Lint.exemption) -> e.Lint.e_used) table)
  in
  {
    diagnostics = List.sort Lint.compare_diag ctx.Lint.diags;
    files_scanned = List.length files;
    allows_used = !allows_used + used;
    allows_total = !allows_total + List.length table;
  }
