(** DLint framework: Parsetree parsing, diagnostics, use-site allow
    attributes, and the AST helpers shared by passes.

    See docs/LINTS.md for the pass catalogue and the exemption
    mechanism; {!Dlint} for the registry and runner. *)

type diagnostic = {
  d_pass : string;
  d_file : string;
  d_line : int;
  d_col : int;
  d_message : string;
}

val hygiene : string
(** Name of the synthetic exemption-hygiene pass ("hygiene"). *)

val compare_diag : diagnostic -> diagnostic -> int
(** Order by file, line, column, then pass name. *)

val pp_diag : diagnostic -> string
(** ["file:line:col: [pass] message"]. *)

type allow = {
  a_pass : string;
  a_reason : string;
  a_line : int;
  a_col : int;
  a_start : int;
  a_stop : int;
  mutable a_used : bool;
}
(** A [\[@dlint.allow "pass-id: reason"\]] exemption, bound to the
    char-offset range of the node its attribute annotates. *)

type exemption = {
  e_scope : string;
  e_pass : string;
  e_reason : string;
  mutable e_used : bool;
}

type file_unit = {
  f_path : string;
  f_scope : string;
  f_structure : Parsetree.structure;
  mutable f_allows : allow list;
}

type ctx = {
  known_passes : string list;
  table : exemption list;
  mutable current : file_unit option;
  mutable diags : diagnostic list;
}

type pass = {
  p_name : string;
  p_doc : string;
  p_applies : string -> bool;
  p_check : ctx -> file_unit -> unit;
}

val scan_roots : string list
(** The tree roots dlint scans: lib, bench, bin, examples. *)

val scope_of_path : string -> string
(** Normalize a path to its repo-relative scope (the suffix starting at
    the last segment named like a scanned tree), so pass scoping works
    from any working directory and over fixture corpora. *)

val under : string -> string -> bool
(** [under "lib" scope] is true when [scope] is inside the lib/ tree. *)

val ml_files : string -> string list
(** Every [.ml] under a directory, depth-first, name-sorted. *)

val parse_file : string -> (Parsetree.structure, diagnostic) result
(** Parse one file; syntax errors come back as a ["parse"] diagnostic. *)

val emit : ctx -> pass:string -> loc:Location.t -> string -> unit
(** Record a diagnostic unless a covering allow (or a table entry for
    the file) suppresses it — in which case the exemption is marked
    used, feeding the staleness check. *)

val collect_allows :
  ctx -> emit_hygiene:bool -> Parsetree.structure -> allow list
(** Gather the file's [\[@dlint.allow\]] attributes (on expressions,
    value bindings, module bindings, or floating at file scope).
    Malformed payloads, unknown pass ids and empty reasons are hygiene
    findings when [emit_hygiene] is set. *)

val ident_name : Longident.t -> string
(** Flatten a long identifier to its dotted source form. *)

val rhs_head : Parsetree.expression -> Parsetree.expression
(** Unwrap constraints, local opens, sequences and trailing lets around
    a binding's right-hand side. *)

val apply_head : Parsetree.expression -> string option
(** The dotted name of the applied identifier, for application nodes. *)
