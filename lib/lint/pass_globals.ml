(* globals — no process-global mutable state in lib/.

   Per-cluster state must live in the cluster's [Drust_machine.Env]
   record (docs/ARCHITECTURE.md): module-level mutable containers leak
   (cluster uids are never pruned) and alias state across clusters
   running concurrently on separate domains — the bug class PR 4
   eliminated.  This pass supersedes the old tools/lint_globals.ml
   regex: it walks the Parsetree, so multi-line bindings, annotated
   bindings and bindings nested in submodules are all caught, and
   function definitions that merely allocate a table internally are
   structurally (not heuristically) exempt.

   Flagged: a structure-level [let] whose right-hand side — under any
   constraint, local open, sequence or trailing [let] — allocates a
   mutable container: [Hashtbl.create], [Queue.create], [Buffer.create],
   [Stack.create], [Weak.create], [Atomic.make], [Array.make],
   [Bytes.create] or [ref].

   Deliberate process-wide state carries a use-site
   [@@dlint.allow "globals: <why>"] on the binding. *)

let name = "globals"

let doc =
  "structure-level mutable containers (Hashtbl/Queue/Buffer/Stack/Weak/\
   Atomic/Array/Bytes/ref) outside the per-cluster Env"

let banned_alloc = function
  | "Hashtbl.create" | "Queue.create" | "Buffer.create" | "Stack.create"
  | "Weak.create" | "Atomic.make" | "Array.make" | "Array.create_float"
  | "Bytes.create" | "Bytes.make" | "ref" | "Stdlib.ref" ->
      true
  | _ -> false

let binding_name (vb : Parsetree.value_binding) =
  match vb.pvb_pat.ppat_desc with
  | Ppat_var { txt; _ } -> txt
  | Ppat_constraint ({ ppat_desc = Ppat_var { txt; _ }; _ }, _) -> txt
  | _ -> "_"

let check_binding ctx (vb : Parsetree.value_binding) =
  let rhs = Lint.rhs_head vb.pvb_expr in
  match Lint.apply_head rhs with
  | Some head when banned_alloc head ->
      Lint.emit ctx ~pass:name ~loc:vb.pvb_loc
        (Printf.sprintf
           "top-level mutable binding %S (%s) — move it into the \
            per-cluster Drust_machine.Env record (docs/ARCHITECTURE.md) or \
            annotate the binding with [@@dlint.allow \"globals: reason\"]"
           (binding_name vb) head)
  | _ -> ()

(* Structure-level bindings only: descend through submodules (state in a
   toplevel [module M = struct ... end] is just as process-global) but
   not into expressions — a table allocated inside a function body is
   scoped to its call. *)
let rec scan_structure ctx (str : Parsetree.structure) =
  List.iter (scan_item ctx) str

and scan_item ctx (it : Parsetree.structure_item) =
  match it.pstr_desc with
  | Pstr_value (_, vbs) -> List.iter (check_binding ctx) vbs
  | Pstr_module mb -> scan_module ctx mb.pmb_expr
  | Pstr_recmodule mbs ->
      List.iter
        (fun (mb : Parsetree.module_binding) -> scan_module ctx mb.pmb_expr)
        mbs
  | Pstr_include i -> scan_module ctx i.pincl_mod
  | _ -> ()

and scan_module ctx (me : Parsetree.module_expr) =
  match me.pmod_desc with
  | Pmod_structure s -> scan_structure ctx s
  | Pmod_constraint (me, _) -> scan_module ctx me
  (* Functor bodies are instantiation-scoped, not process-global. *)
  | _ -> ()

let check ctx (f : Lint.file_unit) = scan_structure ctx f.Lint.f_structure

let pass =
  {
    Lint.p_name = name;
    p_doc = doc;
    p_applies = (fun scope -> Lint.under "lib" scope);
    p_check = check;
  }
