(** DLint: registry and runner for the AST-based static-analysis passes.

    The framework (diagnostics, allow attributes, parsing, AST helpers)
    is in {!Lint}; individual passes are [Pass_determinism],
    [Pass_globals] and [Pass_ownership].  This module owns the registry
    — the single source of truth that [tools/dlint.ml] (the @lint
    alias), [tools/check_docs.ml] (docs/LINTS.md agreement, both ways)
    and [test/test_lint.ml] all consult. *)

val passes : Lint.pass list
(** The registered passes, in catalogue order.  Includes the synthetic
    [hygiene] pass (exemption staleness), whose findings the framework
    emits itself. *)

val pass_names : string list
(** Names of {!passes}, for [--list-passes] and the docs check. *)

val exemptions : (string * string * string) list
(** The closed table of [(scope path, pass, reason)] file-level
    exemptions for generated code that cannot carry attributes.  Stale
    entries are [hygiene] findings, exactly like stale attributes. *)

type result = {
  diagnostics : Lint.diagnostic list;  (** sorted by file/line/col/pass *)
  files_scanned : int;
  allows_used : int;  (** allow attributes + table entries that fired *)
  allows_total : int;
}

val run :
  ?only:string ->
  ?table:(string * string * string) list ->
  paths:string list ->
  unit ->
  result
(** [run ~paths ()] parses every [.ml] under the given files or
    directory roots and runs every registered pass that applies to each
    file's repo-relative scope.  [?only] restricts to a single pass by
    name (raising [Invalid_argument] on an unknown name); allows for
    unselected passes are then exempt from staleness.  [?table]
    overrides {!exemptions} (used by tests). *)
