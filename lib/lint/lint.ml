(* DLint framework: parse .ml sources into a compiler-libs Parsetree and
   run named diagnostic passes over them.

   This is the static half of the repo's language-guided story: the
   invariants DSan checks dynamically (docs/SANITIZER.md) have a
   decidable subset — determinism hygiene, no process-global mutable
   state, ownership-API discipline — that can be enforced at the source
   level, before a simulation ever runs.  Passes live in
   [Pass_determinism], [Pass_globals] and [Pass_ownership]; the registry
   and runner live in [Dlint]; the CLI is tools/dlint.ml behind the
   @lint alias.

   Exemptions are use-site attributes, never a side table of paths:

     let cache = Hashtbl.create 64 [@@dlint.allow "globals: <why>"]

   An attribute suppresses matching diagnostics anywhere inside the
   node it annotates.  Every allow must carry a "pass-id: reason"
   payload and must actually suppress something — a stale allow (the
   code no longer trips the pass) is itself a [hygiene] finding, so the
   exemption set cannot rot.  A small closed table ([Dlint.exemptions])
   exists for generated files that cannot carry attributes; it is
   subject to the same staleness rule. *)

type diagnostic = {
  d_pass : string;
  d_file : string;
  d_line : int;
  d_col : int;
  d_message : string;
}

let hygiene = "hygiene"

let compare_diag a b =
  match String.compare a.d_file b.d_file with
  | 0 -> (
      match Int.compare a.d_line b.d_line with
      | 0 -> (
          match Int.compare a.d_col b.d_col with
          | 0 -> String.compare a.d_pass b.d_pass
          | c -> c)
      | c -> c)
  | c -> c

let pp_diag d =
  Printf.sprintf "%s:%d:%d: [%s] %s" d.d_file d.d_line d.d_col d.d_pass
    d.d_message

(* A use-site exemption, bound to the source range of the node its
   attribute annotates. *)
type allow = {
  a_pass : string;
  a_reason : string;
  a_line : int; (* position of the attribute itself, for stale reports *)
  a_col : int;
  a_start : int; (* char-offset range of the governed node *)
  a_stop : int;
  mutable a_used : bool;
}

(* A closed-table exemption for files that cannot carry attributes
   (generated code).  Same staleness rule as attributes. *)
type exemption = {
  e_scope : string; (* repo-relative path, e.g. "lib/foo/gen.ml" *)
  e_pass : string;
  e_reason : string;
  mutable e_used : bool;
}

type file_unit = {
  f_path : string; (* as given on the command line *)
  f_scope : string; (* normalized repo-relative path, for pass scoping *)
  f_structure : Parsetree.structure;
  mutable f_allows : allow list;
}

type ctx = {
  known_passes : string list;
  table : exemption list;
  mutable current : file_unit option;
  mutable diags : diagnostic list;
}

type pass = {
  p_name : string;
  p_doc : string; (* one-line rationale, mirrored in docs/LINTS.md *)
  p_applies : string -> bool; (* over the normalized scope path *)
  p_check : ctx -> file_unit -> unit;
}

(* ------------------------------------------------------------------ *)
(* Paths                                                              *)
(* ------------------------------------------------------------------ *)

let scan_roots = [ "lib"; "bench"; "bin"; "examples" ]

(* Normalize a path to its repo-relative scope: the suffix starting at
   the last path segment named like a scanned tree.  This makes pass
   scoping work whether dlint is invoked from the repo root, from the
   test runner's build directory ("../lib/..."), or on fixture corpora
   laid out as "lint_fixtures/lib/...". *)
let scope_of_path path =
  let segs = String.split_on_char '/' path in
  let root_at =
    List.fold_left
      (fun (i, best) seg ->
        (i + 1, if List.mem seg scan_roots then Some i else best))
      (0, None) segs
    |> snd
  in
  match root_at with
  | Some i -> String.concat "/" (List.filteri (fun j _ -> j >= i) segs)
  | None ->
      (* Strip any leading ./ so bare relative paths compare cleanly. *)
      if String.length path > 2 && String.sub path 0 2 = "./" then
        String.sub path 2 (String.length path - 2)
      else path

let under dir scope = String.starts_with ~prefix:(dir ^ "/") scope

let rec ml_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.sort String.compare
  |> List.concat_map (fun entry ->
         let path = Filename.concat dir entry in
         if Sys.is_directory path then ml_files path
         else if Filename.check_suffix entry ".ml" then [ path ]
         else [])

(* ------------------------------------------------------------------ *)
(* Parsing                                                            *)
(* ------------------------------------------------------------------ *)

let parse_file path : (Parsetree.structure, diagnostic) result =
  let text = In_channel.with_open_text path In_channel.input_all in
  let lexbuf = Lexing.from_string text in
  Location.init lexbuf path;
  match Parse.implementation lexbuf with
  | structure -> Ok structure
  | exception exn ->
      let line, col =
        match Location.error_of_exn exn with
        | Some (`Ok err) ->
            let p = err.Location.main.Location.loc.Location.loc_start in
            (p.Lexing.pos_lnum, p.Lexing.pos_cnum - p.Lexing.pos_bol)
        | _ -> (1, 0)
      in
      Error
        {
          d_pass = "parse";
          d_file = path;
          d_line = line;
          d_col = col;
          d_message = "file does not parse as OCaml";
        }

(* ------------------------------------------------------------------ *)
(* Emitting and suppression                                           *)
(* ------------------------------------------------------------------ *)

let emit ctx ~pass ~(loc : Location.t) msg =
  let start = loc.Location.loc_start in
  let off = start.Lexing.pos_cnum in
  let suppressed =
    match ctx.current with
    | None -> false
    | Some f ->
        let covering =
          List.filter
            (fun a -> a.a_pass = pass && a.a_start <= off && off <= a.a_stop)
            f.f_allows
        in
        List.iter (fun a -> a.a_used <- true) covering;
        let table_hit =
          List.filter
            (fun e -> e.e_scope = f.f_scope && e.e_pass = pass)
            ctx.table
        in
        List.iter (fun e -> e.e_used <- true) table_hit;
        covering <> [] || table_hit <> []
  in
  if not suppressed then
    ctx.diags <-
      {
        d_pass = pass;
        d_file = start.Lexing.pos_fname;
        d_line = start.Lexing.pos_lnum;
        d_col = start.Lexing.pos_cnum - start.Lexing.pos_bol;
        d_message = msg;
      }
      :: ctx.diags

(* ------------------------------------------------------------------ *)
(* Allow attributes                                                   *)
(* ------------------------------------------------------------------ *)

let allow_attr_name = "dlint.allow"

let payload_string (a : Parsetree.attribute) =
  match a.Parsetree.attr_payload with
  | Parsetree.PStr
      [
        {
          pstr_desc =
            Pstr_eval
              ( { pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ },
                _ );
          _;
        };
      ] ->
      Some s
  | _ -> None

let trim = String.trim

(* Collect the [@dlint.allow "pass: reason"] attributes of [structure],
   binding each to the range of the node it annotates.  Malformed
   payloads and unknown pass ids are hygiene findings (emitted only when
   the hygiene pass is selected, via [emit_hygiene]). *)
let collect_allows ctx ~emit_hygiene structure =
  let allows = ref [] in
  let record (attr : Parsetree.attribute) ~start ~stop =
    if attr.Parsetree.attr_name.Location.txt = allow_attr_name then begin
      let aloc = attr.Parsetree.attr_loc.Location.loc_start in
      let line = aloc.Lexing.pos_lnum
      and col = aloc.Lexing.pos_cnum - aloc.Lexing.pos_bol in
      let bad msg =
        if emit_hygiene then
          emit ctx ~pass:hygiene ~loc:attr.Parsetree.attr_loc msg
      in
      match payload_string attr with
      | None ->
          bad
            "malformed [@dlint.allow] payload — expected a string literal \
             \"pass-id: reason\""
      | Some s -> (
          match String.index_opt s ':' with
          | None ->
              bad
                (Printf.sprintf
                   "[@dlint.allow %S] has no \"pass-id: reason\" separator" s)
          | Some i ->
              let pass = trim (String.sub s 0 i) in
              let reason =
                trim (String.sub s (i + 1) (String.length s - i - 1))
              in
              if not (List.mem pass ctx.known_passes) then
                bad
                  (Printf.sprintf
                     "[@dlint.allow] names unknown pass %S (known: %s)" pass
                     (String.concat ", " ctx.known_passes))
              else if reason = "" then
                bad
                  (Printf.sprintf
                     "[@dlint.allow %S] must give a reason after the colon" s)
              else
                allows :=
                  {
                    a_pass = pass;
                    a_reason = reason;
                    a_line = line;
                    a_col = col;
                    a_start = start;
                    a_stop = stop;
                    a_used = false;
                  }
                  :: !allows)
    end
  in
  let range_of (loc : Location.t) =
    (loc.Location.loc_start.Lexing.pos_cnum, loc.Location.loc_end.Lexing.pos_cnum)
  in
  let open Ast_iterator in
  let expr it (e : Parsetree.expression) =
    let start, stop = range_of e.pexp_loc in
    List.iter (record ~start ~stop) e.pexp_attributes;
    default_iterator.expr it e
  in
  let value_binding it (vb : Parsetree.value_binding) =
    let start, stop = range_of vb.pvb_loc in
    List.iter (record ~start ~stop) vb.pvb_attributes;
    default_iterator.value_binding it vb
  in
  let module_binding it (mb : Parsetree.module_binding) =
    let start, stop = range_of mb.pmb_loc in
    List.iter (record ~start ~stop) mb.pmb_attributes;
    default_iterator.module_binding it mb
  in
  let structure_item it (si : Parsetree.structure_item) =
    (match si.pstr_desc with
    (* A floating [@@@dlint.allow "..."] scopes the whole file. *)
    | Pstr_attribute a -> record a ~start:0 ~stop:max_int
    | _ -> ());
    default_iterator.structure_item it si
  in
  let it =
    { default_iterator with expr; value_binding; module_binding; structure_item }
  in
  it.structure it structure;
  List.rev !allows

(* ------------------------------------------------------------------ *)
(* AST helpers shared by passes                                       *)
(* ------------------------------------------------------------------ *)

let ident_name (lid : Longident.t) = String.concat "." (Longident.flatten lid)

(* Unwrap the syntactic noise around a binding's right-hand side so the
   allocation underneath is visible: type constraints, local opens,
   sequencing, and trailing lets ("let t = ... in t"). *)
let rec rhs_head (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_constraint (e, _)
  | Pexp_open (_, e)
  | Pexp_sequence (_, e)
  | Pexp_let (_, _, e)
  | Pexp_letmodule (_, _, e) ->
      rhs_head e
  | _ -> e

let apply_head (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
      Some (ident_name txt)
  | _ -> None
