(* ownership — discipline for the ownership-model APIs.

   DRust's coherence protocol is safe because the source language
   guarantees unique ownership and scoped borrows (the paper's §3).
   [Own] reproduces that automaton locally and [Dmutex] guards global
   objects; both have runtime checks (and DSan's borrow/lock-discipline
   invariants), but the common misuses are visible in the syntax tree
   and can be rejected before anything runs.  Checked over lib/ and
   examples/:

   - a borrow escaping its scope: the result of [Own.borrow] /
     [Own.borrow_mut] stored into a [ref], a mutable container
     ([Hashtbl.add]/[Hashtbl.replace]/[Queue.add]/[Queue.push]/
     [Stack.push]/[Array.set]), a record field ([<-]), or bound at
     module level — the store outlives the borrow, so the eventual
     [drop]/owner operation raises at run time (or worse, never runs);

   - [Dmutex.lock] in a function with no [Dmutex.unlock] (and no
     [Dmutex.with_lock]) in the same function — every caller leaks the
     lock unless some other function unlocks on its behalf, a pairing
     the code cannot show; functions that deliberately split the pair
     (backend vtables) carry an allow naming the pairing site. *)

let name = "ownership"

let doc =
  "Own.borrow results escaping their scope (refs/containers/module \
   bindings) and Dmutex.lock without a reachable unlock in the same \
   function"

let borrow_idents = [ "Own.borrow"; "Own.borrow_mut" ]

let escape_sinks =
  [ "ref"; "Stdlib.ref"; ":="; "Hashtbl.add"; "Hashtbl.replace"; "Queue.add";
    "Queue.push"; "Stack.push"; "Array.set" ]

let is_borrow_app (e : Parsetree.expression) =
  match Lint.apply_head e with
  | Some h -> List.mem h borrow_idents
  | None -> false

(* Deep-search [e] for borrow applications; closures count (a stored
   thunk that borrows produces a borrow whose scope nobody closes). *)
let borrows_within (e : Parsetree.expression) =
  let found = ref [] in
  let open Ast_iterator in
  let expr it e =
    (match Lint.apply_head e with
    | Some h when List.mem h borrow_idents ->
        found := e.Parsetree.pexp_loc :: !found
    | _ -> ());
    default_iterator.expr it e
  in
  let it = { default_iterator with expr } in
  it.expr it e;
  List.rev !found

let escape_msg sink =
  Printf.sprintf
    "borrowed reference escapes into %s — the store outlives the borrow \
     scope; keep borrows lexical (Own.with_borrow) or store the owner and \
     borrow at use sites"
    sink

(* --- lock discipline ---------------------------------------------- *)

let lock_idents = [ "Dmutex.lock" ]
let unlock_idents = [ "Dmutex.unlock"; "Dmutex.with_lock" ]

(* Collapse a curried [fun a b -> ...] chain to its body. *)
let rec uncurry (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_fun (_, _, _, body) | Pexp_newtype (_, body) -> uncurry body
  | _ -> e

(* Collect lock/unlock identifier uses in [e] without crossing into
   nested functions (each closure is its own scope). *)
let lock_profile (e : Parsetree.expression) =
  let locks = ref [] and unlocks = ref 0 in
  let open Ast_iterator in
  let expr it (e : Parsetree.expression) =
    match e.pexp_desc with
    | Pexp_fun _ | Pexp_function _ -> ()
    | Pexp_ident { txt; loc } ->
        let n = Lint.ident_name txt in
        if List.mem n lock_idents then locks := loc :: !locks
        else if List.mem n unlock_idents then incr unlocks;
        default_iterator.expr it e
    | _ -> default_iterator.expr it e
  in
  let it = { default_iterator with expr } in
  it.expr it e;
  (List.rev !locks, !unlocks)

let check ctx (f : Lint.file_unit) =
  (* Function scopes already analyzed as part of an outer curry chain,
     keyed by source range. *)
  let seen_chain = Hashtbl.create 16 in
  let range (e : Parsetree.expression) =
    ( e.pexp_loc.Location.loc_start.Lexing.pos_cnum,
      e.pexp_loc.Location.loc_end.Lexing.pos_cnum )
  in
  let open Ast_iterator in
  let expr it (e : Parsetree.expression) =
    (match e.pexp_desc with
    | Pexp_fun _ when not (Hashtbl.mem seen_chain (range e)) ->
        (* Mark every link of the curry chain so inner [fun]s are not
           re-analyzed as separate scopes. *)
        let rec mark e =
          match e.Parsetree.pexp_desc with
          | Pexp_fun (_, _, _, body) | Pexp_newtype (_, body) ->
              Hashtbl.replace seen_chain (range e) ();
              mark body
          | _ -> ()
        in
        mark e;
        let body = uncurry e in
        let locks, unlocks = lock_profile body in
        if locks <> [] && unlocks = 0 then
          List.iter
            (fun loc ->
              Lint.emit ctx ~pass:name ~loc
                "Dmutex.lock with no reachable Dmutex.unlock (or \
                 Dmutex.with_lock) in the same function — the lock leaks \
                 on every path; pair it here or allow with the pairing \
                 site named")
            locks
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) ->
        let head = Lint.ident_name txt in
        if List.mem head escape_sinks then
          List.iter
            (fun (_, arg) ->
              List.iter
                (fun loc -> Lint.emit ctx ~pass:name ~loc (escape_msg head))
                (borrows_within arg))
            args
    | Pexp_setfield (_, _, rhs) ->
        List.iter
          (fun loc ->
            Lint.emit ctx ~pass:name ~loc (escape_msg "a mutable field"))
          (borrows_within rhs)
    | _ -> ());
    default_iterator.expr it e
  in
  let it = { default_iterator with expr } in
  it.structure it f.Lint.f_structure;
  (* Module-level borrows never end. *)
  let rec scan_structure str = List.iter scan_item str
  and scan_item (si : Parsetree.structure_item) =
    match si.pstr_desc with
    | Pstr_value (_, vbs) ->
        List.iter
          (fun (vb : Parsetree.value_binding) ->
            let rhs = Lint.rhs_head vb.pvb_expr in
            if is_borrow_app rhs then
              Lint.emit ctx ~pass:name ~loc:vb.pvb_loc
                "module-level borrow — it can never be dropped before the \
                 owner; borrow inside the scope that uses it")
          vbs
    | Pstr_module mb -> scan_module mb.pmb_expr
    | Pstr_recmodule mbs ->
        List.iter
          (fun (mb : Parsetree.module_binding) -> scan_module mb.pmb_expr)
          mbs
    | Pstr_include i -> scan_module i.pincl_mod
    | _ -> ()
  and scan_module (me : Parsetree.module_expr) =
    match me.pmod_desc with
    | Pmod_structure s -> scan_structure s
    | Pmod_constraint (me, _) -> scan_module me
    | _ -> ()
  in
  scan_structure f.Lint.f_structure

let pass =
  {
    Lint.p_name = name;
    p_doc = doc;
    p_applies =
      (fun scope -> Lint.under "lib" scope || Lint.under "examples" scope);
    p_check = check;
  }
