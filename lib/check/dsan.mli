(** DSan: a shadow-state sanitizer for the DSM coherence protocol.

    In the spirit of ThreadSanitizer, [Dsan] keeps its own model of the
    whole distributed heap — one shadow record per global address
    tracking the owner node, the current color, the borrow automaton
    state, the set of nodes holding cached copies (keyed by the colored
    address each copy was fetched under), darc/drc reference counts, and
    dmutex hold state — and replays every protocol transition against it
    through the observational hooks exposed by [Protocol.set_probe],
    [Cache.set_listener], [Darc.set_listener], [Drc.set_listener],
    [Dmutex.set_listener], [Replication.set_listener],
    [Membership.set_listener], and [Fabric.set_observer].

    Any divergence between what the implementation did and what the
    paper's invariants permit produces a structured {!report} carrying
    the virtual time, node, thread, address, and a provenance trail of
    the recent events that led up to the violation.

    The checker is purely observational: it never touches the engine,
    any RNG, or heap state, so a sanitized run is bit-identical to an
    unsanitized one (asserted by [test/test_check.ml]).

    The invariant catalogue lives in docs/SANITIZER.md;
    [tools/check_docs.ml] cross-checks it against {!invariant_names}. *)

module Cluster = Drust_machine.Cluster

(** {1 Invariants} *)

(** The eleven checked invariant classes.  Their string names (below)
    are the stable identifiers used in reports, docs, and tests. *)
type invariant =
  | Single_owner  (** exactly one live owner per physical address *)
  | Stale_cache_read
      (** no read is ever served from a cached copy whose colored
          address is not the object's current colored address *)
  | Move_invalidation
      (** a write that changes a value in place must not leave cached
          copies reachable under the current color — moves and color
          bumps are what make prior copies unreachable *)
  | Refcount_sanity
      (** darc/drc counts match the shadow count, never go negative,
          and are exactly zero at free time; cache-copy pin counts never
          underflow *)
  | Borrow_discipline
      (** no write or mutable borrow while immutably borrowed, no
          second mutable borrow, no unbalanced returns, no drop or
          transfer while borrowed *)
  | Lock_discipline
      (** a dmutex is granted to at most one thread at a time and only
          its holder may release it *)
  | Promotion_uniqueness
      (** failover promotes a range at most once, to an alive node,
          only when the previous server is dead — and leaves no stale
          copies of the promoted range in surviving caches *)
  | Use_after_free
      (** no operation on a dropped owner or freed refcounted cell *)
  | Epoch_monotonic
      (** the membership view epoch strictly increases across every
          view change and handoff commit *)
  | Handoff_atomicity
      (** a range handoff is prepare → commit/abort with matching
          endpoints, the serving swap is a single step (no window with
          zero or two servers), at most one handoff per range is in
          flight, and no alive cache keeps a copy of the moved range *)
  | Replica_chain_intact
      (** after rebalancing, a range's replica chain is non-empty,
          duplicate-free, entirely on alive hosts, and never co-located
          with the range's server *)

val invariant_name : invariant -> string
(** ["dsan.single_owner"], ["dsan.stale_cache_read"], ... *)

val invariant_names : string list
(** All eleven names, in declaration order. *)

(** {1 Reports} *)

type report = {
  invariant : invariant;
  time : float;  (** virtual time of the violating event *)
  node : int;
  thread : int;  (** [-1] when the event carries no thread identity *)
  addr : int option;  (** physical (color-cleared) address *)
  detail : string;
  provenance : string list;
      (** recent shadow history for the address plus the tail of the
          fabric traffic ring, oldest first *)
}

val pp_report : Format.formatter -> report -> unit
val report_to_string : report -> string

type mode =
  | Record  (** collect reports; query with {!violations} *)
  | Raise  (** raise {!Violation} at the first divergence *)

exception Violation of report

(** {1 Lifecycle} *)

type t

val attach : ?mode:mode -> Cluster.t -> t
(** Install the sanitizer on a cluster: hooks every protocol, cache,
    refcount, lock, replication, and fabric event source, seeds the
    serving/alive shadow from the cluster's current state, and registers
    the [dsan.violations] counter in the cluster's metrics registry.
    Attach before the workload runs; objects created earlier are simply
    not tracked.  Default mode is [Record]. *)

val detach : t -> unit
(** Uninstall every hook.  Reports remain queryable. *)

val mode : t -> mode
val cluster : t -> Cluster.t

val violations : t -> report list
(** In detection order.  At most 1000 reports are retained;
    {!violation_count} keeps the true total. *)

val violation_count : t -> int
val clear : t -> unit

val with_sanitizer : ?mode:mode -> Cluster.t -> (t -> 'a) -> 'a
(** [attach], run, [detach] (exception-safe). *)

(** {2 Process-wide installation (the [--sanitize] flag)} *)

val install_global : ?mode:mode -> unit -> unit
(** Arrange (via [Cluster.set_create_hook]) for every cluster created
    from now on to get a sanitizer attached automatically — this is how
    [bin/drust_sim.exe --sanitize] and [bench/main.exe --sanitize]
    sanitize experiments that build their clusters internally. *)

val uninstall_global : unit -> unit
(** Stop auto-attaching.  Already-attached sanitizers stay attached. *)

val attached : unit -> t list
(** Sanitizers auto-attached by {!install_global}, oldest first. *)

val global_reports : unit -> report list
(** All violations across {!attached} sanitizers. *)

(** {1 Observation entry points}

    [attach] wires these to the live hooks; tests call them directly to
    inject corrupted event streams and assert that each invariant class
    is caught.  All are pure state-machine steps on the shadow. *)

val observe_protocol :
  t -> time:float -> node:int -> thread:int -> Drust_core.Protocol.probe_event
  -> unit

val observe_cache :
  t -> time:float -> node:int -> Drust_memory.Cache.event -> unit

val observe_rc :
  t -> time:float -> node:int -> thread:int -> Drust_runtime.Darc.rc_event
  -> unit

val observe_lock :
  t -> time:float -> node:int -> thread:int -> Drust_runtime.Dmutex.event
  -> unit

val observe_failover :
  t -> time:float -> node:int -> Drust_runtime.Replication.event -> unit

val observe_membership :
  t -> time:float -> node:int -> Drust_runtime.Membership.event -> unit
