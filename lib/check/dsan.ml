module Cluster = Drust_machine.Cluster
module Ctx = Drust_machine.Ctx
module Engine = Drust_sim.Engine
module Fabric = Drust_net.Fabric
module Gaddr = Drust_memory.Gaddr
module Cache = Drust_memory.Cache
module Metrics = Drust_obs.Metrics
module Protocol = Drust_core.Protocol
module Darc = Drust_runtime.Darc
module Drc = Drust_runtime.Drc
module Dmutex = Drust_runtime.Dmutex
module Replication = Drust_runtime.Replication
module Membership = Drust_runtime.Membership
module Flight = Drust_obs.Flight

(* ------------------------------------------------------------------ *)
(* Invariants                                                          *)
(* ------------------------------------------------------------------ *)

type invariant =
  | Single_owner
  | Stale_cache_read
  | Move_invalidation
  | Refcount_sanity
  | Borrow_discipline
  | Lock_discipline
  | Promotion_uniqueness
  | Use_after_free
  | Epoch_monotonic
  | Handoff_atomicity
  | Replica_chain_intact

let invariant_name = function
  | Single_owner -> "dsan.single_owner"
  | Stale_cache_read -> "dsan.stale_cache_read"
  | Move_invalidation -> "dsan.move_invalidation"
  | Refcount_sanity -> "dsan.refcount_sanity"
  | Borrow_discipline -> "dsan.borrow_discipline"
  | Lock_discipline -> "dsan.lock_discipline"
  | Promotion_uniqueness -> "dsan.promotion_uniqueness"
  | Use_after_free -> "dsan.use_after_free"
  | Epoch_monotonic -> "dsan.epoch_monotonic"
  | Handoff_atomicity -> "dsan.handoff_atomicity"
  | Replica_chain_intact -> "dsan.replica_chain_intact"

let all_invariants =
  [
    Single_owner;
    Stale_cache_read;
    Move_invalidation;
    Refcount_sanity;
    Borrow_discipline;
    Lock_discipline;
    Promotion_uniqueness;
    Use_after_free;
    Epoch_monotonic;
    Handoff_atomicity;
    Replica_chain_intact;
  ]

let invariant_names = List.map invariant_name all_invariants

(* Dense index of an invariant — the [b] payload of a flight-recorder
   [dsan_violation] event. *)
let invariant_index inv =
  let rec go i = function
    | [] -> -1
    | x :: rest -> if x = inv then i else go (i + 1) rest
  in
  go 0 all_invariants

(* ------------------------------------------------------------------ *)
(* Reports                                                             *)
(* ------------------------------------------------------------------ *)

type report = {
  invariant : invariant;
  time : float;
  node : int;
  thread : int;
  addr : int option;
  detail : string;
  provenance : string list;
}

let pp_report ppf r =
  Format.fprintf ppf "@[<v>DSan violation: %s@,  t=%.9fs  node %d%s%s@,  %s"
    (invariant_name r.invariant)
    r.time r.node
    (if r.thread >= 0 then Printf.sprintf "  thread %d" r.thread else "")
    (match r.addr with
    | None -> ""
    | Some a -> Format.asprintf "  addr %a" Gaddr.pp (Gaddr.of_int_exn a))
    r.detail;
  List.iter (fun l -> Format.fprintf ppf "@,    | %s" l) r.provenance;
  Format.fprintf ppf "@]"

let report_to_string r = Format.asprintf "%a" pp_report r

type mode = Record | Raise

exception Violation of report

let () =
  Printexc.register_printer (function
    | Violation r -> Some (report_to_string r)
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* Shadow state                                                        *)
(* ------------------------------------------------------------------ *)

(* Per-entity event history: a bounded, newest-first list of raw events,
   formatted lazily only when a report is built. *)
type traced =
  | Tr_proto of int * Protocol.probe_event (* thread *)
  | Tr_cache of Cache.event
  | Tr_rc of int * Darc.rc_event (* thread *)
  | Tr_lock of Dmutex.event
  | Tr_failover of Replication.event
  | Tr_member of Membership.event

type trace = { tr_time : float; tr_node : int; tr_ev : traced }

type histo = { mutable h_items : trace list; mutable h_len : int }

let histo () = { h_items = []; h_len = 0 }

let hist_push h tr =
  h.h_items <- tr :: h.h_items;
  h.h_len <- h.h_len + 1;
  if h.h_len > 16 then begin
    let rec take n = function
      | [] -> []
      | x :: tl -> if n = 0 then [] else x :: take (n - 1) tl
    in
    h.h_items <- take 8 h.h_items;
    h.h_len <- 8
  end

(* The borrow automaton mirrored per physical address. *)
type status = Owned | Shared of int | Mut | Dead

type shadow = {
  mutable sh_color : int;
  mutable sh_size : int;
  mutable sh_status : status;
  mutable sh_box : int;  (* node holding the owner box *)
  mutable sh_home : int;  (* partition range the address lives in *)
  sh_copies : (int, int) Hashtbl.t;  (* node -> color the copy was fetched under *)
  sh_hist : histo;
}

type rc_shadow = {
  mutable rc_expected : int;
  mutable rc_freed : bool;
  rc_hist : histo;
}

type lock_shadow = { mutable lk_holder : int option; lk_hist : histo }

type t = {
  cluster : Cluster.t;
  mode : mode;
  shadows : (int, shadow) Hashtbl.t;
  rcs : (int, rc_shadow) Hashtbl.t;
  locks : (int, lock_shadow) Hashtbl.t;
  serving : int array;
  alive : bool array;
  (* Membership shadow: the highest view epoch observed, and the set of
     handoffs prepared but not yet committed/aborted, keyed by home. *)
  mutable last_epoch : int;
  pending_handoffs : (int, int * int) Hashtbl.t; (* home -> (from, to) *)
  ring : (float * string * int * int * int) option array;
  mutable ring_idx : int;
  mutable reports : report list;  (* newest first *)
  mutable report_count : int;
  counter : Metrics.counter;
  mutable active : bool;
}

let phys g = Gaddr.to_int (Gaddr.clear_color g)
let gstr g = Format.asprintf "%a" Gaddr.pp g

(* ------------------------------------------------------------------ *)
(* Trace formatting (lazy: only on violation)                          *)
(* ------------------------------------------------------------------ *)

let format_proto = function
  | Protocol.Ev_create { g; size } ->
      Printf.sprintf "create %s (%dB)" (gstr g) size
  | Ev_read { g; path } -> (
      match path with
      | Protocol.Path_local -> Printf.sprintf "read %s [local]" (gstr g)
      | Path_cache key ->
          Printf.sprintf "read %s [cache copy %s]" (gstr g) (gstr key)
      | Path_fetch -> Printf.sprintf "read %s [fetch]" (gstr g))
  | Ev_write { before; after; size = _; kind } ->
      let k =
        match kind with
        | Protocol.W_bump -> "bump"
        | W_move -> "move"
        | W_in_place -> "in-place"
      in
      Printf.sprintf "write(%s) %s -> %s" k (gstr before) (gstr after)
  | Ev_borrow_imm { g } -> "borrow-imm " ^ gstr g
  | Ev_return_imm { g } -> "return-imm " ^ gstr g
  | Ev_borrow_mut { g } -> "borrow-mut " ^ gstr g
  | Ev_return_mut { g } -> "return-mut " ^ gstr g
  | Ev_transfer { g; to_node } ->
      Printf.sprintf "transfer %s -> node %d" (gstr g) to_node
  | Ev_drop { g } -> "drop " ^ gstr g
  | Ev_app { g; verb; tag } -> Printf.sprintf "%s %s :%s" verb (gstr g) tag

let format_cache = function
  | Cache.Hit { key } -> "cache hit " ^ gstr key
  | Stale_miss { sought; cached } ->
      Printf.sprintf "cache stale-miss sought %s, held %s" (gstr sought)
        (gstr cached)
  | Insert { key; size } -> Printf.sprintf "cache insert %s (%dB)" (gstr key) size
  | Release { key; refcount } ->
      Printf.sprintf "cache release %s rc=%d" (gstr key) refcount
  | Invalidate { key } -> "cache invalidate " ^ gstr key

let format_rc = function
  | Darc.Rc_created { g; size; count } ->
      Printf.sprintf "rc create %s (%dB) count=%d" (gstr g) size count
  | Rc_retained { g; count } ->
      Printf.sprintf "rc retain %s count=%d" (gstr g) count
  | Rc_released { g; count } ->
      Printf.sprintf "rc release %s count=%d" (gstr g) count
  | Rc_freed { g } -> "rc free " ^ gstr g

let format_lock = function
  | Dmutex.Lock_created { g } -> "lock create " ^ gstr g
  | Lock_acquired { g; thread } ->
      Printf.sprintf "lock acquire %s by thread %d" (gstr g) thread
  | Lock_released { g; thread } ->
      Printf.sprintf "lock release %s by thread %d" (gstr g) thread

let format_failover = function
  | Replication.Node_failed { node } -> Printf.sprintf "node %d failed" node
  | Promoted { home; by; replica } ->
      Printf.sprintf "range %d promoted to node %d (replica %d)" home by replica

let format_member = function
  | Membership.View_change { epoch; reason } ->
      Printf.sprintf "view -> e%d (%s)" epoch reason
  | Handoff_prepared { home; from_node; to_node } ->
      Printf.sprintf "handoff prepare: range %d, %d -> %d" home from_node
        to_node
  | Handoff_committed { home; from_node; to_node; epoch } ->
      Printf.sprintf "handoff commit: range %d, %d -> %d (e%d)" home from_node
        to_node epoch
  | Handoff_aborted { home; from_node; to_node; reason } ->
      Printf.sprintf "handoff abort: range %d, %d -> %d (%s)" home from_node
        to_node reason
  | Chain_reseeded { home; server; hosts } ->
      Printf.sprintf "chain reseed: range %d on node %d, replicas [%s]" home
        server
        (String.concat "; " (List.map string_of_int hosts))

let format_trace tr =
  let body =
    match tr.tr_ev with
    | Tr_proto (thread, ev) ->
        Printf.sprintf "thr %d: %s" thread (format_proto ev)
    | Tr_cache ev -> format_cache ev
    | Tr_rc (thread, ev) -> Printf.sprintf "thr %d: %s" thread (format_rc ev)
    | Tr_lock ev -> format_lock ev
    | Tr_failover ev -> format_failover ev
    | Tr_member ev -> format_member ev
  in
  Printf.sprintf "t=%.9f node %d: %s" tr.tr_time tr.tr_node body

(* ------------------------------------------------------------------ *)
(* Violation machinery                                                 *)
(* ------------------------------------------------------------------ *)

let ring_push t entry =
  let n = Array.length t.ring in
  t.ring.(t.ring_idx mod n) <- Some entry;
  t.ring_idx <- t.ring_idx + 1

let ring_lines t =
  let n = Array.length t.ring in
  let out = ref [] in
  for i = 0 to min 5 (n - 1) do
    let idx = t.ring_idx - 1 - i in
    if idx >= 0 then
      match t.ring.(idx mod n) with
      | Some (time, verb, from, target, bytes) ->
          out :=
            Printf.sprintf "fabric %s %d -> %d (%dB) t=%.9f" verb from target
              bytes time
            :: !out
      | None -> ()
  done;
  !out (* oldest first *)

let violate t inv ~time ~node ~thread ~addr ~detail hist =
  t.report_count <- t.report_count + 1;
  Metrics.incr t.counter;
  let prov =
    (match hist with
    | None -> []
    | Some h -> List.rev_map format_trace h.h_items)
    @ ring_lines t
  in
  let r =
    { invariant = inv; time; node; thread; addr; detail; provenance = prov }
  in
  if t.report_count <= 1000 then t.reports <- r :: t.reports;
  (* A violation is the canonical dump trigger: land the event on the
     offending node's ring, then write the black box out while the ring
     tail still explains the failure (docs/FORENSICS.md). *)
  let fl = Cluster.flight t.cluster in
  Flight.record fl ~node ~time ~kind:Flight.k_dsan_violation
    ~a:(match addr with Some a -> a | None -> -1)
    ~b:(invariant_index inv) ~c:thread ~d:0;
  ignore
    (Flight.auto_dump fl
       ~reason:(invariant_name inv ^ ": " ^ detail)
       ?object_:addr ~now:time ());
  match t.mode with Record -> () | Raise -> raise (Violation r)

(* ------------------------------------------------------------------ *)
(* Protocol events                                                     *)
(* ------------------------------------------------------------------ *)

let fresh_shadow ~color ~size ~box ~home =
  {
    sh_color = color;
    sh_size = size;
    sh_status = Owned;
    sh_box = box;
    sh_home = home;
    sh_copies = Hashtbl.create 4;
    sh_hist = histo ();
  }

let observe_protocol t ~time ~node ~thread ev =
  let viol inv ~addr detail hist =
    violate t inv ~time ~node ~thread ~addr ~detail hist
  in
  let record sh = hist_push sh.sh_hist { tr_time = time; tr_node = node; tr_ev = Tr_proto (thread, ev) } in
  match ev with
  | Protocol.Ev_create { g; size } ->
      let p = phys g in
      (match Hashtbl.find_opt t.shadows p with
      | Some sh when sh.sh_status <> Dead ->
          viol Single_owner ~addr:(Some p)
            (Printf.sprintf
               "second owner registered at %s while the address is live"
               (gstr g))
            (Some sh.sh_hist)
      | _ -> ());
      let sh =
        fresh_shadow ~color:(Gaddr.color_of g) ~size ~box:node
          ~home:(Gaddr.node_of g)
      in
      Hashtbl.replace t.shadows p sh;
      record sh
  | Ev_read { g; path } -> (
      let p = phys g in
      match Hashtbl.find_opt t.shadows p with
      | None -> ()
      | Some sh ->
          (if sh.sh_status = Dead then
             viol Use_after_free ~addr:(Some p)
               (Printf.sprintf "read of dropped object %s" (gstr g))
               (Some sh.sh_hist)
           else begin
             (match sh.sh_status with
             | Mut ->
                 viol Borrow_discipline ~addr:(Some p)
                   (Printf.sprintf "read of %s while mutably borrowed" (gstr g))
                   (Some sh.sh_hist)
             | _ -> ());
             match path with
             | Protocol.Path_cache key ->
                 if Gaddr.color_of key <> sh.sh_color then
                   viol Stale_cache_read ~addr:(Some p)
                     (Printf.sprintf
                        "read served from cached copy %s but the current \
                         colored address is c%d"
                        (gstr key) sh.sh_color)
                     (Some sh.sh_hist)
             | Path_local ->
                 if Gaddr.color_of g <> sh.sh_color then
                   viol Stale_cache_read ~addr:(Some p)
                     (Printf.sprintf
                        "local read through stale address %s (current color \
                         c%d)"
                        (gstr g) sh.sh_color)
                     (Some sh.sh_hist)
             | Path_fetch ->
                 (* fetch completion is emitted after a fabric round-trip,
                    so the color may legally have advanced meanwhile *)
                 ()
           end);
          record sh)
  | Ev_write { before; after; size; kind } -> (
      let pb = phys before and pa = phys after in
      match Hashtbl.find_opt t.shadows pb with
      | None ->
          (* lineage unknown (created before attach): start tracking *)
          let sh =
            fresh_shadow ~color:(Gaddr.color_of after) ~size ~box:node
              ~home:(Gaddr.node_of after)
          in
          Hashtbl.replace t.shadows pa sh;
          record sh
      | Some sh ->
          (match sh.sh_status with
          | Dead ->
              viol Use_after_free ~addr:(Some pb)
                (Printf.sprintf "write to dropped object %s" (gstr before))
                (Some sh.sh_hist)
          | Shared n ->
              viol Borrow_discipline ~addr:(Some pb)
                (Printf.sprintf
                   "write to %s while %d immutable borrow(s) outstanding"
                   (gstr before) n)
                (Some sh.sh_hist)
          | Owned | Mut -> ());
          (match kind with
          | Protocol.W_in_place ->
              let reachable =
                Drust_util.Tables.sorted_bindings sh.sh_copies ~cmp:Int.compare
                |> List.filter_map (fun (n, c) ->
                       if c = sh.sh_color then Some n else None)
              in
              if reachable <> [] then
                viol Move_invalidation ~addr:(Some pb)
                  (Printf.sprintf
                     "in-place write at %s with cached copies still reachable \
                      under the current color on node(s) %s — a move or \
                      color bump must make prior copies unreachable before \
                      the value changes"
                     (gstr after)
                     (String.concat ", "
                        (List.map string_of_int reachable)))
                  (Some sh.sh_hist)
          | W_bump ->
              sh.sh_color <- Gaddr.color_of after;
              sh.sh_size <- size
          | W_move ->
              Hashtbl.remove t.shadows pb;
              (match Hashtbl.find_opt t.shadows pa with
              | Some other when other.sh_status <> Dead ->
                  viol Single_owner ~addr:(Some pa)
                    (Printf.sprintf "move of %s onto live address %s"
                       (gstr before) (gstr after))
                    (Some other.sh_hist)
              | _ -> ());
              (* the old address's copies belong to a dead lineage now;
                 their invalidations will no-op against this shadow *)
              Hashtbl.reset sh.sh_copies;
              sh.sh_color <- Gaddr.color_of after;
              sh.sh_size <- size;
              sh.sh_home <- Gaddr.node_of after;
              Hashtbl.replace t.shadows pa sh);
          record sh)
  | Ev_borrow_imm { g } -> (
      let p = phys g in
      match Hashtbl.find_opt t.shadows p with
      | None -> ()
      | Some sh ->
          (match sh.sh_status with
          | Dead ->
              viol Use_after_free ~addr:(Some p)
                (Printf.sprintf "immutable borrow of dropped object %s"
                   (gstr g))
                (Some sh.sh_hist)
          | Mut ->
              viol Borrow_discipline ~addr:(Some p)
                (Printf.sprintf
                   "immutable borrow of %s while mutably borrowed" (gstr g))
                (Some sh.sh_hist)
          | Owned -> sh.sh_status <- Shared 1
          | Shared n -> sh.sh_status <- Shared (n + 1));
          record sh)
  | Ev_return_imm { g } -> (
      let p = phys g in
      match Hashtbl.find_opt t.shadows p with
      | None -> ()
      | Some sh ->
          (match sh.sh_status with
          | Shared 1 -> sh.sh_status <- Owned
          | Shared n -> sh.sh_status <- Shared (n - 1)
          | Dead ->
              viol Use_after_free ~addr:(Some p)
                (Printf.sprintf "immutable return on dropped object %s"
                   (gstr g))
                (Some sh.sh_hist)
          | Owned | Mut ->
              viol Borrow_discipline ~addr:(Some p)
                (Printf.sprintf "unbalanced immutable return on %s" (gstr g))
                (Some sh.sh_hist));
          record sh)
  | Ev_borrow_mut { g } -> (
      let p = phys g in
      match Hashtbl.find_opt t.shadows p with
      | None -> ()
      | Some sh ->
          (match sh.sh_status with
          | Dead ->
              viol Use_after_free ~addr:(Some p)
                (Printf.sprintf "mutable borrow of dropped object %s" (gstr g))
                (Some sh.sh_hist)
          | Shared n ->
              viol Borrow_discipline ~addr:(Some p)
                (Printf.sprintf
                   "mutable borrow of %s while %d immutable borrow(s) \
                    outstanding"
                   (gstr g) n)
                (Some sh.sh_hist)
          | Mut ->
              viol Borrow_discipline ~addr:(Some p)
                (Printf.sprintf "second mutable borrow of %s" (gstr g))
                (Some sh.sh_hist)
          | Owned -> sh.sh_status <- Mut);
          record sh)
  | Ev_return_mut { g } -> (
      let p = phys g in
      match Hashtbl.find_opt t.shadows p with
      | None -> ()
      | Some sh ->
          (match sh.sh_status with
          | Mut -> sh.sh_status <- Owned
          | Dead ->
              viol Use_after_free ~addr:(Some p)
                (Printf.sprintf "mutable return on dropped object %s" (gstr g))
                (Some sh.sh_hist)
          | Owned | Shared _ ->
              viol Borrow_discipline ~addr:(Some p)
                (Printf.sprintf "unbalanced mutable return on %s" (gstr g))
                (Some sh.sh_hist));
          record sh)
  | Ev_transfer { g; to_node } -> (
      let p = phys g in
      match Hashtbl.find_opt t.shadows p with
      | None -> ()
      | Some sh ->
          (match sh.sh_status with
          | Dead ->
              viol Use_after_free ~addr:(Some p)
                (Printf.sprintf "ownership transfer of dropped object %s"
                   (gstr g))
                (Some sh.sh_hist)
          | Shared _ | Mut ->
              viol Borrow_discipline ~addr:(Some p)
                (Printf.sprintf "ownership transfer of %s while borrowed"
                   (gstr g))
                (Some sh.sh_hist)
          | Owned -> ());
          sh.sh_box <- to_node;
          record sh)
  | Ev_drop { g } -> (
      let p = phys g in
      match Hashtbl.find_opt t.shadows p with
      | None -> ()
      | Some sh ->
          (match sh.sh_status with
          | Dead ->
              viol Use_after_free ~addr:(Some p)
                (Printf.sprintf "double drop of %s" (gstr g))
                (Some sh.sh_hist)
          | Shared _ | Mut ->
              viol Borrow_discipline ~addr:(Some p)
                (Printf.sprintf "drop of %s while borrowed" (gstr g))
                (Some sh.sh_hist)
          | Owned -> ());
          sh.sh_status <- Dead;
          record sh)
  | Ev_app { g; _ } -> (
      match Hashtbl.find_opt t.shadows (phys g) with
      | Some sh -> record sh
      | None -> ())

(* ------------------------------------------------------------------ *)
(* Cache events                                                        *)
(* ------------------------------------------------------------------ *)

let observe_cache t ~time ~node ev =
  let key =
    match ev with
    | Cache.Hit { key }
    | Insert { key; _ }
    | Release { key; _ }
    | Invalidate { key } ->
        key
    | Stale_miss { sought; _ } -> sought
  in
  let p = phys key in
  let sh = Hashtbl.find_opt t.shadows p in
  let hist = Option.map (fun s -> s.sh_hist) sh in
  let viol inv detail =
    violate t inv ~time ~node ~thread:(-1) ~addr:(Some p) ~detail hist
  in
  (match (ev, sh) with
  | Cache.Hit { key }, Some s when s.sh_status <> Dead ->
      if Gaddr.color_of key <> s.sh_color then
        viol Stale_cache_read
          (Printf.sprintf
             "cache on node %d served a hit for %s whose color is stale \
              (current c%d)"
             node (gstr key) s.sh_color)
  | Insert { key; _ }, Some s when s.sh_status <> Dead ->
      Hashtbl.replace s.sh_copies node (Gaddr.color_of key)
  | Release { refcount; _ }, _ ->
      if refcount < 0 then
        viol Refcount_sanity
          (Printf.sprintf
             "cache copy pin count underflow on node %d (rc=%d)" node refcount)
  | Invalidate _, Some s -> Hashtbl.remove s.sh_copies node
  | _ -> ());
  match sh with
  | Some s ->
      hist_push s.sh_hist { tr_time = time; tr_node = node; tr_ev = Tr_cache ev }
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Refcount events (darc + drc)                                        *)
(* ------------------------------------------------------------------ *)

let observe_rc t ~time ~node ~thread ev =
  let g =
    match ev with
    | Darc.Rc_created { g; _ }
    | Rc_retained { g; _ }
    | Rc_released { g; _ }
    | Rc_freed { g } ->
        g
  in
  let p = phys g in
  let rc = Hashtbl.find_opt t.rcs p in
  let viol inv detail hist =
    violate t inv ~time ~node ~thread ~addr:(Some p) ~detail hist
  in
  let tr = { tr_time = time; tr_node = node; tr_ev = Tr_rc (thread, ev) } in
  match ev with
  | Darc.Rc_created { count; _ } ->
      if count <> 1 then
        viol Refcount_sanity
          (Printf.sprintf "refcounted cell %s created with count %d, not 1"
             (gstr g) count)
          (Option.map (fun r -> r.rc_hist) rc);
      let r = { rc_expected = count; rc_freed = false; rc_hist = histo () } in
      Hashtbl.replace t.rcs p r;
      hist_push r.rc_hist tr
  | Rc_retained { count; _ } -> (
      match rc with
      | None ->
          let r =
            { rc_expected = count; rc_freed = false; rc_hist = histo () }
          in
          Hashtbl.replace t.rcs p r;
          hist_push r.rc_hist tr
      | Some r ->
          if r.rc_freed then
            viol Use_after_free
              (Printf.sprintf "retain of freed cell %s" (gstr g))
              (Some r.rc_hist)
          else begin
            r.rc_expected <- r.rc_expected + 1;
            if count <> r.rc_expected then begin
              viol Refcount_sanity
                (Printf.sprintf
                   "refcount diverged on retain of %s: implementation says \
                    %d, shadow says %d"
                   (gstr g) count r.rc_expected)
                (Some r.rc_hist);
              r.rc_expected <- count
            end
          end;
          hist_push r.rc_hist tr)
  | Rc_released { count; _ } -> (
      match rc with
      | None -> ()
      | Some r ->
          if r.rc_freed then
            viol Use_after_free
              (Printf.sprintf "release of freed cell %s" (gstr g))
              (Some r.rc_hist)
          else begin
            r.rc_expected <- r.rc_expected - 1;
            if count <> r.rc_expected then begin
              viol Refcount_sanity
                (Printf.sprintf
                   "refcount diverged on release of %s: implementation says \
                    %d, shadow says %d"
                   (gstr g) count r.rc_expected)
                (Some r.rc_hist);
              r.rc_expected <- count
            end;
            if r.rc_expected < 0 then
              viol Refcount_sanity
                (Printf.sprintf "refcount of %s went negative (%d)" (gstr g)
                   r.rc_expected)
                (Some r.rc_hist)
          end;
          hist_push r.rc_hist tr)
  | Rc_freed _ -> (
      match rc with
      | None -> ()
      | Some r ->
          if r.rc_freed then
            viol Use_after_free
              (Printf.sprintf "double free of cell %s" (gstr g))
              (Some r.rc_hist)
          else begin
            if r.rc_expected <> 0 then
              viol Refcount_sanity
                (Printf.sprintf "cell %s freed with nonzero refcount (%d)"
                   (gstr g) r.rc_expected)
                (Some r.rc_hist);
            r.rc_freed <- true
          end;
          hist_push r.rc_hist tr)

(* ------------------------------------------------------------------ *)
(* Lock events                                                         *)
(* ------------------------------------------------------------------ *)

let observe_lock t ~time ~node ~thread ev =
  let g =
    match ev with
    | Dmutex.Lock_created { g }
    | Lock_acquired { g; _ }
    | Lock_released { g; _ } ->
        g
  in
  let p = phys g in
  let tr = { tr_time = time; tr_node = node; tr_ev = Tr_lock ev } in
  let viol inv detail hist =
    violate t inv ~time ~node ~thread ~addr:(Some p) ~detail hist
  in
  match ev with
  | Dmutex.Lock_created _ ->
      let l = { lk_holder = None; lk_hist = histo () } in
      Hashtbl.replace t.locks p l;
      hist_push l.lk_hist tr
  | Lock_acquired { thread = th; _ } ->
      let l =
        match Hashtbl.find_opt t.locks p with
        | Some l -> l
        | None ->
            let l = { lk_holder = None; lk_hist = histo () } in
            Hashtbl.replace t.locks p l;
            l
      in
      (match l.lk_holder with
      | Some h ->
          viol Lock_discipline
            (Printf.sprintf
               "lock %s granted to thread %d while held by thread %d" (gstr g)
               th h)
            (Some l.lk_hist)
      | None -> ());
      l.lk_holder <- Some th;
      hist_push l.lk_hist tr
  | Lock_released { thread = th; _ } -> (
      match Hashtbl.find_opt t.locks p with
      | None -> ()
      | Some l ->
          (match l.lk_holder with
          | Some h when h = th -> l.lk_holder <- None
          | Some h ->
              viol Lock_discipline
                (Printf.sprintf
                   "lock %s released by thread %d but held by thread %d"
                   (gstr g) th h)
                (Some l.lk_hist)
          | None ->
              viol Lock_discipline
                (Printf.sprintf "lock %s released by thread %d while unheld"
                   (gstr g) th)
                (Some l.lk_hist));
          hist_push l.lk_hist tr)

(* ------------------------------------------------------------------ *)
(* Failover events                                                     *)
(* ------------------------------------------------------------------ *)

(* Shared by failover promotion and planned handoff commit: once a range
   changes server, no alive cache may still hold a copy of it — a lagging
   replica (failover) or the old server's image (handoff) would otherwise
   keep serving superseded values under still-current colors. *)
let check_range_purged t ~time ~node ~why ~home tr =
  (* Address-sorted so any violation report lists objects in a stable
     order, not the shadow table's bucket order. *)
  List.iter
    (fun (p, sh) ->
      if sh.sh_home = home && sh.sh_status <> Dead then begin
        let survivors =
          Drust_util.Tables.sorted_keys sh.sh_copies ~cmp:Int.compare
          |> List.filter (fun n -> n < Array.length t.alive && t.alive.(n))
        in
        if survivors <> [] then begin
          violate t Move_invalidation ~time ~node ~thread:(-1) ~addr:(Some p)
            ~detail:
              (Printf.sprintf
                 "cached copies of range %d survived %s on node(s) %s" home why
                 (String.concat ", " (List.map string_of_int survivors)))
            (Some sh.sh_hist);
          hist_push sh.sh_hist tr
        end
      end)
    (Drust_util.Tables.sorted_bindings t.shadows ~cmp:Int.compare)

let observe_failover t ~time ~node ev =
  let tr = { tr_time = time; tr_node = node; tr_ev = Tr_failover ev } in
  let viol inv ~addr detail hist =
    violate t inv ~time ~node ~thread:(-1) ~addr ~detail hist
  in
  match ev with
  | Replication.Node_failed { node = n } ->
      if n >= 0 && n < Array.length t.alive then t.alive.(n) <- false
  | Promoted { home; by; replica = _ } ->
      let cur = if home < Array.length t.serving then t.serving.(home) else by in
      if cur < Array.length t.alive && t.alive.(cur) then
        viol Promotion_uniqueness ~addr:None
          (Printf.sprintf
             "range %d promoted to node %d while node %d still serves it \
              alive"
             home by cur)
          None;
      if by < Array.length t.alive && not t.alive.(by) then
        viol Promotion_uniqueness ~addr:None
          (Printf.sprintf "range %d promoted to dead node %d" home by)
          None;
      (* A failover promotion may race a planned handoff of the same
         range (server died mid-transfer): the coordinator aborts its
         side when the copy fails, and the prepare record is cleared
         here.  Both endpoints still being alive means the promotion had
         no business pre-empting the handoff. *)
      (match Hashtbl.find_opt t.pending_handoffs home with
      | Some (f, to_) ->
          if
            f < Array.length t.alive && t.alive.(f)
            && to_ < Array.length t.alive
            && t.alive.(to_)
          then
            viol Handoff_atomicity ~addr:None
              (Printf.sprintf
                 "failover promotion of range %d raced a live handoff %d -> %d"
                 home f to_)
              None;
          Hashtbl.remove t.pending_handoffs home
      | None -> ());
      if home < Array.length t.serving then t.serving.(home) <- by;
      (* After a promotion the surviving caches must hold no copy of the
         promoted range: the replica may lag the lost primary, so those
         copies can carry rolled-back values under still-current colors. *)
      check_range_purged t ~time ~node ~why:"failover" ~home tr

(* ------------------------------------------------------------------ *)
(* Membership events                                                   *)
(* ------------------------------------------------------------------ *)

let observe_membership t ~time ~node ev =
  let tr = { tr_time = time; tr_node = node; tr_ev = Tr_member ev } in
  let viol inv detail =
    violate t inv ~time ~node ~thread:(-1) ~addr:None ~detail None
  in
  let check_epoch epoch =
    if epoch <= t.last_epoch then
      viol Epoch_monotonic
        (Printf.sprintf
           "view epoch moved backwards or repeated: saw e%d after e%d" epoch
           t.last_epoch)
    else t.last_epoch <- epoch
  in
  let alive n = n >= 0 && n < Array.length t.alive && t.alive.(n) in
  match ev with
  | Membership.View_change { epoch; reason = _ } -> check_epoch epoch
  | Handoff_prepared { home; from_node; to_node } ->
      if Hashtbl.mem t.pending_handoffs home then
        viol Handoff_atomicity
          (Printf.sprintf
             "second handoff of range %d prepared while one is in flight" home);
      if home < Array.length t.serving && t.serving.(home) <> from_node then
        viol Handoff_atomicity
          (Printf.sprintf
             "handoff of range %d prepared from node %d, but node %d serves it"
             home from_node t.serving.(home));
      if not (alive to_node) then
        viol Handoff_atomicity
          (Printf.sprintf "handoff of range %d prepared toward dead node %d"
             home to_node);
      Hashtbl.replace t.pending_handoffs home (from_node, to_node)
  | Handoff_committed { home; from_node; to_node; epoch } ->
      (match Hashtbl.find_opt t.pending_handoffs home with
      | None ->
          viol Handoff_atomicity
            (Printf.sprintf "handoff of range %d committed without a prepare"
               home)
      | Some (f, to_) ->
          if f <> from_node || to_ <> to_node then
            viol Handoff_atomicity
              (Printf.sprintf
                 "handoff commit of range %d (%d -> %d) does not match its \
                  prepare (%d -> %d)"
                 home from_node to_node f to_));
      Hashtbl.remove t.pending_handoffs home;
      (* The serving swap must be a single step from the preparing server
         to the target: anything else means a window with zero or two
         servers for the range. *)
      if home < Array.length t.serving && t.serving.(home) <> from_node then
        viol Handoff_atomicity
          (Printf.sprintf
             "handoff commit of range %d from node %d, but node %d serves it \
              — the range had two servers"
             home from_node t.serving.(home));
      if not (alive to_node) then
        viol Handoff_atomicity
          (Printf.sprintf "range %d handed off to dead node %d — the range \
                           has zero servers"
             home to_node);
      if home < Array.length t.serving then t.serving.(home) <- to_node;
      check_epoch epoch;
      check_range_purged t ~time ~node ~why:"handoff" ~home tr
  | Handoff_aborted { home; from_node; to_node; reason = _ } -> (
      (* No pending record is legal: a failover promotion that raced the
         crash may have cleared it already. *)
      match Hashtbl.find_opt t.pending_handoffs home with
      | None -> ()
      | Some (f, to_) ->
          if f <> from_node || to_ <> to_node then
            viol Handoff_atomicity
              (Printf.sprintf
                 "handoff abort of range %d (%d -> %d) does not match its \
                  prepare (%d -> %d)"
                 home from_node to_node f to_);
          Hashtbl.remove t.pending_handoffs home)
  | Chain_reseeded { home; server; hosts } ->
      if hosts = [] then
        viol Replica_chain_intact
          (Printf.sprintf
             "range %d has no alive replica host after reseeding" home);
      let seen = Hashtbl.create 4 in
      List.iter
        (fun h ->
          if Hashtbl.mem seen h then
            viol Replica_chain_intact
              (Printf.sprintf
                 "range %d reseeded twice onto the same host %d" home h);
          Hashtbl.replace seen h ();
          if not (alive h) then
            viol Replica_chain_intact
              (Printf.sprintf "range %d reseeded onto dead node %d" home h);
          if h = server then
            viol Replica_chain_intact
              (Printf.sprintf
                 "range %d replica co-located with its server %d" home h))
        hosts;
      if home < Array.length t.serving && t.serving.(home) <> server then
        viol Replica_chain_intact
          (Printf.sprintf
             "range %d reseeded around server %d, but node %d serves it" home
             server t.serving.(home))

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let attach ?(mode = Record) cluster =
  let n = Cluster.node_count cluster in
  let t =
    {
      cluster;
      mode;
      shadows = Hashtbl.create 1024;
      rcs = Hashtbl.create 64;
      locks = Hashtbl.create 16;
      serving = Array.init n (Cluster.serving_node cluster);
      alive = Array.map (fun nd -> nd.Cluster.alive) (Cluster.nodes cluster);
      last_epoch = 0;
      pending_handoffs = Hashtbl.create 4;
      ring = Array.make 16 None;
      ring_idx = 0;
      reports = [];
      report_count = 0;
      counter =
        Metrics.counter (Cluster.metrics cluster)
          ~help:"DSan invariant violations detected" "dsan.violations";
      active = true;
    }
  in
  let now () = Engine.now (Cluster.engine cluster) in
  Protocol.set_probe cluster
    (Some
       (fun ctx ev ->
         observe_protocol t ~time:(now ()) ~node:ctx.Ctx.node
           ~thread:ctx.Ctx.thread_id ev));
  Array.iter
    (fun nd ->
      Cache.set_listener nd.Cluster.cache
        (Some (fun ev -> observe_cache t ~time:(now ()) ~node:nd.Cluster.id ev)))
    (Cluster.nodes cluster);
  let on_rc ctx ev =
    observe_rc t ~time:(now ()) ~node:ctx.Ctx.node ~thread:ctx.Ctx.thread_id ev
  in
  Darc.set_listener cluster (Some on_rc);
  Drc.set_listener cluster (Some on_rc);
  Dmutex.set_listener cluster
    (Some
       (fun ctx ev ->
         observe_lock t ~time:(now ()) ~node:ctx.Ctx.node
           ~thread:ctx.Ctx.thread_id ev));
  Replication.set_listener cluster
    (Some (fun ctx ev -> observe_failover t ~time:(now ()) ~node:ctx.Ctx.node ev));
  Membership.set_listener cluster
    (Some
       (fun ctx ev -> observe_membership t ~time:(now ()) ~node:ctx.Ctx.node ev));
  Fabric.set_observer (Cluster.fabric cluster)
    (Some
       (fun verb ~from ~target ~bytes ->
         ring_push t (now (), verb, from, target, bytes)));
  t

let detach t =
  if t.active then begin
    t.active <- false;
    Protocol.set_probe t.cluster None;
    Array.iter
      (fun nd -> Cache.set_listener nd.Cluster.cache None)
      (Cluster.nodes t.cluster);
    Darc.set_listener t.cluster None;
    Drc.set_listener t.cluster None;
    Dmutex.set_listener t.cluster None;
    Replication.set_listener t.cluster None;
    Membership.set_listener t.cluster None;
    Fabric.set_observer (Cluster.fabric t.cluster) None
  end

let mode t = t.mode
let cluster t = t.cluster
let violations t = List.rev t.reports
let violation_count t = t.report_count

let clear t =
  t.reports <- [];
  t.report_count <- 0

let with_sanitizer ?mode cluster f =
  let t = attach ?mode cluster in
  Fun.protect ~finally:(fun () -> detach t) (fun () -> f t)

(* The auto-attach list is the one deliberate process-global here: it
   spans clusters by design.  The mutex makes it safe to create clusters
   from parallel sweep domains. *)
let auto : t list ref =
  ref []
[@@dlint.allow
  "globals: install_global attaches one sanitizer per future cluster — \
   cross-cluster by design, mutex-protected"]
let auto_mutex = Mutex.create ()

let install_global ?mode () =
  Cluster.set_create_hook
    (Some
       (fun c ->
         let t = attach ?mode c in
         Mutex.protect auto_mutex (fun () -> auto := t :: !auto)))

let uninstall_global () = Cluster.set_create_hook None
let attached () = Mutex.protect auto_mutex (fun () -> List.rev !auto)
let global_reports () = List.concat_map violations (attached ())
