(** The fault-tolerance scenario cores, factored out of the experiment
    harness so a {!Simplan} can drive them directly.

    Each runner executes one seeded scenario body on a cluster the
    caller has already built (with the fault plan installed — see
    [Simplan.execute]); the grids, percentile tables, and robustness
    assertions stay in [lib/experiments].  The bodies are assertion-free
    on purpose: a fuzzer-generated plan that provokes a crash or a DSan
    violation must surface it through the oracle, not die mid-run. *)

module Fault = Drust_sim.Fault
module Cluster = Drust_machine.Cluster
module Metrics = Drust_obs.Metrics

(** {1 Failover: crash a primary mid-flight} *)

type failover_spec = {
  fo_nodes : int;  (** cluster size *)
  fo_keys : int;  (** pinned keys, spread round-robin *)
  fo_key_bytes : int;
  fo_duration : float;  (** run length, virtual seconds *)
  fo_crash_t : float;  (** when the victim fail-stops *)
  fo_victim : int;  (** the crashed primary *)
  fo_bucket : float;  (** throughput-curve bucket width *)
  fo_think : float;  (** per-client think time *)
}

val default_failover : failover_spec
(** The canonical 4-node chaos run: 16 keys, 60 ms, crash node 1 at
    t=20 ms. *)

type failover_result = {
  seed : int;
  victim : int;
  crash_time : float;
  detection_time : float option;  (* detector verdict (absolute) *)
  recovery_time : float option;  (* first post-crash write to victim range *)
  curve : int array;  (* completed ops per bucket *)
  bucket : float;
  total_ops : int;
  failed_ops : int;
  retries : int;
  timeouts : int;
  drops : int;
  op_latency : Metrics.histo option;
      (* merged protocol.op_latency distribution of the run *)
}

val failover :
  cluster:Cluster.t -> fault:Fault.t -> seed:int -> failover_spec ->
  failover_result
(** Run the scenario to completion ([Cluster.run]) and collect the
    result.  The caller must already have scheduled the victim crash on
    [fault] (the plan's fault events are the single source of truth). *)

(** {1 Churn: elastic membership under fire} *)

type churn_spec = {
  ch_nodes : int;
  ch_active0 : int;  (** nodes 0..active0-1 start Active, the rest Standby *)
  ch_joiners : int list;
  ch_leavers : int list;  (** graceful *)
  ch_sabotaged : int;  (** leaver crashed mid-handoff *)
  ch_victim : int;  (** planned fail-stop *)
  ch_crash_t : float;  (** when the victim fail-stops *)
  ch_duration : float;
  ch_churn_start : float;
  ch_churn_gap : float;
  ch_think : float;
  ch_key_bytes : int;
  ch_ballast_bytes : int;
  ch_zipf_theta : float;
  ch_replicas : int;
}

val churn_spec_of : nodes:int -> churn_spec
(** Derive the canonical membership schedule from the node count (the
    same experiment runs at 64 and 16 nodes).  Raises [Invalid_argument]
    below 16 nodes or when the leave schedule does not fit. *)

type churn_result = {
  seed : int;
  nodes : int;
  total_ops : int;
  failed_ops : int;
  lost_writes : int;
  unreadable_keys : int;
  joins : int;  (* committed joins (membership.joins) *)
  leaves : int;  (* completed graceful leaves (membership.leaves) *)
  handoff_commits : int;
  handoff_aborts : int;
  final_epoch : int;
  stale_epochs : int;
  retries : int;
  crashes : (int * float) list;
  detection : (int * float) list;
  recovery : (int * float) list;
  handoff_latency : float list;
  unrecoverable : int list;
  op_latency : Metrics.histo option;
}

val churn :
  cluster:Cluster.t -> fault:Fault.t -> seed:int -> churn_spec ->
  churn_result
(** Run the churn scenario to completion.  As with {!failover}, the
    planned victim crash must already be scheduled on [fault]; the
    mid-handoff sabotage crash is injected by the scenario itself (its
    time depends on the in-flight transfer, so it cannot be a static
    plan event). *)
