module Rng = Drust_util.Rng
module Params = Drust_machine.Params

type verdict = Pass | Violations of string list | Crashed of string

let is_failure = function Pass -> false | Violations _ | Crashed _ -> true

let verdict_to_string = function
  | Pass -> "pass"
  | Violations vs ->
      Printf.sprintf "%d sanitizer violation%s: %s" (List.length vs)
        (if List.length vs = 1 then "" else "s")
        (String.concat " | " vs)
  | Crashed e -> "crashed: " ^ e

let default_oracle plan =
  match Simplan.execute ~sanitize:true plan with
  | { Simplan.violations = []; _ } -> Pass
  | { Simplan.violations; _ } -> Violations violations
  | exception e -> Crashed (Printexc.to_string e)

(* ------------------------------------------------------------------ *)
(* Generation                                                          *)

let add_events plan extra =
  if extra = [] then plan
  else
    match plan.Simplan.spec with
    | Simplan.Sim s ->
        {
          plan with
          Simplan.spec =
            Simplan.Sim
              {
                s with
                Simplan.faults =
                  {
                    s.Simplan.faults with
                    Simplan.events = s.Simplan.faults.Simplan.events @ extra;
                  };
              };
        }
    | Simplan.Suite _ -> plan

(* A lossless link degradation: latency and jitter only, zero drop —
   the one fault shape safe to inject into workloads whose clients do
   not retry. *)
let benign_degrade r ~nodes =
  let from_node = Rng.int r nodes in
  let target = (from_node + 1 + Rng.int r (nodes - 1)) mod nodes in
  Simplan.Degrade
    {
      from_node;
      target;
      drop = 0.0;
      extra_latency = Rng.float r 2e-4;
      jitter = Rng.float r 5e-5;
    }

let gen_failover r ~name ~plan_seed ~max_nodes =
  let nodes = Rng.int_in r 3 (min 8 max_nodes) in
  let victim = Rng.int_in r 1 (nodes - 1) in
  let duration = 30e-3 +. Rng.float r 50e-3 in
  let spec =
    {
      Scenario.fo_nodes = nodes;
      fo_keys = Rng.int_in r 8 48;
      fo_key_bytes = Rng.choose r [| 32; 64; 128; 256 |];
      fo_duration = duration;
      fo_crash_t = duration *. (0.25 +. Rng.float r 0.5);
      fo_victim = victim;
      fo_bucket = 5e-3;
      fo_think = 1e-5 +. Rng.float r 4e-5;
    }
  in
  let plan = Simplan.failover_plan ~name ~spec ~seed:plan_seed () in
  let extra = ref [] in
  (if nodes >= 3 && Rng.bernoulli r ~p:0.35 then
     let others =
       List.filter (fun n -> n <> victim) (List.init (nodes - 1) (fun i -> i + 1))
     in
     match others with
     | [] -> ()
     | _ ->
         let member = List.nth others (Rng.int r (List.length others)) in
         let at = duration *. (0.05 +. Rng.float r 0.3) in
         let heal_at = at +. (duration *. (0.05 +. Rng.float r 0.2)) in
         extra := [ Simplan.Partition { group = [ member ]; at; heal_at } ]);
  (if Rng.bernoulli r ~p:0.35 then
     let from_node = Rng.int r nodes in
     let target = (from_node + 1 + Rng.int r (nodes - 1)) mod nodes in
     let drop = if Rng.bool r then 0.0 else Rng.float r 0.2 in
     extra :=
       !extra
       @ [
           Simplan.Degrade
             {
               from_node;
               target;
               drop;
               extra_latency = Rng.float r 2e-4;
               jitter = Rng.float r 5e-5;
             };
         ]);
  add_events plan !extra

let gen_churn r ~name ~plan_seed ~max_nodes =
  let sizes = List.filter (fun n -> n <= max_nodes) [ 16; 20; 24 ] in
  let nodes = List.nth sizes (Rng.int r (List.length sizes)) in
  let plan = Simplan.churn_plan ~name ~seed:plan_seed ~nodes () in
  if Rng.bernoulli r ~p:0.3 then
    add_events plan [ benign_degrade r ~nodes ]
  else plan

let all_backends = [| Simplan.Drust; Gam; Grappa; Original |]

let gen_ycsb r ~name ~plan_seed ~max_nodes =
  let nodes = Rng.int_in r 1 (min 8 max_nodes) in
  let system = Rng.choose r all_backends in
  let mixes = Array.of_list Drust_workloads.Ycsb.all_workloads in
  let mix = Rng.choose r mixes in
  let ops = Rng.int_in r 1_000 6_000 in
  let params =
    { Params.default with Params.nodes; Params.seed = plan_seed }
  in
  let plan = Simplan.ycsb_plan ~name ~params ~mix ~ops system in
  if nodes >= 2 && Rng.bernoulli r ~p:0.3 then
    add_events plan [ benign_degrade r ~nodes ]
  else plan

let gen_app r ~name ~plan_seed ~max_nodes =
  let nodes = Rng.int_in r 1 (min 4 max_nodes) in
  let system = Rng.choose r all_backends in
  let app = Rng.choose r [| Simplan.Dataframe_app; Socialnet_app; Gemm_app; Kvstore_app |] in
  let affinity =
    (match app with Simplan.Dataframe_app -> true | _ -> false) && Rng.bool r
  in
  let pass_by_value =
    (match app with Simplan.Socialnet_app -> true | _ -> false)
    && Rng.bernoulli r ~p:0.25
  in
  let params =
    { Params.default with Params.nodes; Params.seed = plan_seed }
  in
  let plan =
    Simplan.app_plan ~name ~affinity ~pass_by_value ~params app system
  in
  if nodes >= 2 && Rng.bernoulli r ~p:0.25 then
    add_events plan [ benign_degrade r ~nodes ]
  else plan

let plans ~seed ~count ~max_nodes =
  if max_nodes < 4 then invalid_arg "Fuzz.plans: max_nodes must be >= 4";
  List.init count (fun i ->
      let r = Rng.create ~seed:((seed * 1_000_003) + i) in
      let name = Printf.sprintf "fuzz-s%d-p%03d" seed i in
      let plan_seed = Rng.int r 1_000_000 in
      let k = Rng.int r 100 in
      let plan =
        if k < 40 then gen_failover r ~name ~plan_seed ~max_nodes
        else if k < 65 then gen_ycsb r ~name ~plan_seed ~max_nodes
        else if k < 80 then
          if max_nodes >= 16 then gen_churn r ~name ~plan_seed ~max_nodes
          else gen_failover r ~name ~plan_seed ~max_nodes
        else gen_app r ~name ~plan_seed ~max_nodes
      in
      (match Simplan.validate plan with
      | Ok () -> ()
      | Error es ->
          invalid_arg
            (Printf.sprintf "Fuzz.plans: generator produced invalid plan %s: %s"
               name (String.concat "; " es)));
      plan)

(* ------------------------------------------------------------------ *)
(* Shrinking                                                           *)

let plan_eq a b = String.equal (Simplan.print a) (Simplan.print b)

let drop_nth xs n = List.filteri (fun i _ -> i <> n) xs

(* Candidate simplifications, in the fixed order the greedy loop tries
   them.  Candidates may be invalid (e.g. dropping the scenario's
   required crash event, or shrinking duration below crash_t) — the
   caller filters through [Simplan.validate] before running any. *)
let candidates t =
  match t.Simplan.spec with
  | Simplan.Suite _ -> []
  | Simplan.Sim s ->
      let sim ?topology ?workload ?faults () =
        let topology = Option.value topology ~default:s.Simplan.topology in
        let workload = Option.value workload ~default:s.Simplan.workload in
        let faults = Option.value faults ~default:s.Simplan.faults in
        { t with Simplan.spec = Simplan.Sim { s with topology; workload; faults } }
      in
      let events = s.Simplan.faults.Simplan.events in
      let dropped_events =
        List.mapi
          (fun i _ ->
            sim
              ~faults:
                {
                  s.Simplan.faults with
                  Simplan.events = drop_nth events i;
                }
              ())
          events
      in
      let seed = s.Simplan.topology.Simplan.seed in
      let specific =
        match s.Simplan.workload with
        | Simplan.Failover_kv f ->
            [ Simplan.failover_plan ~name:t.Simplan.name ~seed () ]
            @ (let n' = max 3 (f.Scenario.fo_nodes / 2) in
               if n' < f.Scenario.fo_nodes && f.Scenario.fo_victim < n' then
                 [
                   sim
                     ~topology:{ s.Simplan.topology with Simplan.nodes = n' }
                     ~workload:
                       (Simplan.Failover_kv { f with Scenario.fo_nodes = n' })
                     ();
                 ]
               else [])
            @ (if f.Scenario.fo_keys > 1 then
                 [
                   sim
                     ~workload:
                       (Simplan.Failover_kv
                          { f with Scenario.fo_keys = max 1 (f.Scenario.fo_keys / 2) })
                     ();
                 ]
               else [])
            @ (if f.Scenario.fo_key_bytes > 8 then
                 [
                   sim
                     ~workload:
                       (Simplan.Failover_kv { f with Scenario.fo_key_bytes = 8 })
                     ();
                 ]
               else [])
            @
            let d' = f.Scenario.fo_duration /. 2.0 in
            if f.Scenario.fo_crash_t < d' then
              [
                sim
                  ~workload:
                    (Simplan.Failover_kv { f with Scenario.fo_duration = d' })
                  ();
              ]
            else []
        | Simplan.Churn_kv c ->
            [ Simplan.churn_plan ~name:t.Simplan.name ~seed ~nodes:16 () ]
            @ (if c.Scenario.ch_key_bytes > 8 then
                 [
                   sim
                     ~workload:
                       (Simplan.Churn_kv
                          { c with Scenario.ch_key_bytes = max 8 (c.Scenario.ch_key_bytes / 2) })
                     ();
                 ]
               else [])
            @ (if c.Scenario.ch_ballast_bytes > c.Scenario.ch_key_bytes then
                 [
                   sim
                     ~workload:
                       (Simplan.Churn_kv
                          {
                            c with
                            Scenario.ch_ballast_bytes =
                              max c.Scenario.ch_key_bytes
                                (c.Scenario.ch_ballast_bytes / 2);
                          })
                     ();
                 ]
               else [])
            @
            let d' = c.Scenario.ch_duration /. 2.0 in
            [
              sim
                ~workload:(Simplan.Churn_kv { c with Scenario.ch_duration = d' })
                ();
            ]
        | Simplan.Ycsb_run { mix; ops } ->
            (if ops > 100 then
               [ sim ~workload:(Simplan.Ycsb_run { mix; ops = ops / 2 }) () ]
             else [])
            @
            let n' = max 1 (s.Simplan.topology.Simplan.nodes / 2) in
            if n' < s.Simplan.topology.Simplan.nodes then
              [ sim ~topology:{ s.Simplan.topology with Simplan.nodes = n' } () ]
            else []
        | Simplan.App_run { app; affinity; pass_by_value } ->
            (let n' = max 1 (s.Simplan.topology.Simplan.nodes / 2) in
             if n' < s.Simplan.topology.Simplan.nodes then
               [ sim ~topology:{ s.Simplan.topology with Simplan.nodes = n' } () ]
             else [])
            @ (if affinity then
                 [
                   sim
                     ~workload:
                       (Simplan.App_run { app; affinity = false; pass_by_value })
                     ();
                 ]
               else [])
            @
            if pass_by_value then
              [
                sim
                  ~workload:
                    (Simplan.App_run { app; affinity; pass_by_value = false })
                  ();
              ]
            else []
      in
      dropped_events @ specific

let max_shrink_steps = 64

let shrink ~oracle plan =
  let v0 = oracle plan in
  if not (is_failure v0) then (plan, v0)
  else
    let rec go plan v steps =
      if steps >= max_shrink_steps then (plan, v)
      else
        let cs =
          List.filter
            (fun c ->
              (match Simplan.validate c with Ok () -> true | Error _ -> false)
              && not (plan_eq c plan))
            (candidates plan)
        in
        let rec try_next = function
          | [] -> (plan, v)
          | c :: rest -> (
              let vc = oracle c in
              if is_failure vc then go c vc (steps + 1) else try_next rest)
        in
        try_next cs
    in
    go plan v0 0

type finding = {
  fz_plan : Simplan.t;
  fz_verdict : verdict;
  fz_shrunk : Simplan.t;
  fz_shrunk_verdict : verdict;
}

let run ?(oracle = default_oracle) ~seed ~count ~max_nodes () =
  let sampled = plans ~seed ~count ~max_nodes in
  List.filter_map
    (fun p ->
      let v = oracle p in
      if not (is_failure v) then None
      else
        let shrunk, sv = shrink ~oracle p in
        Some
          { fz_plan = p; fz_verdict = v; fz_shrunk = shrunk; fz_shrunk_verdict = sv })
    sampled
