module Params = Drust_machine.Params
module Cluster = Drust_machine.Cluster
module Fault = Drust_sim.Fault
module Metrics = Drust_obs.Metrics
module Flight = Drust_obs.Flight
module Json = Drust_util.Json
module Rng = Drust_util.Rng
module Ycsb = Drust_workloads.Ycsb
module Dsan = Drust_check.Dsan

type system = Drust | Gam | Grappa | Original
type app = Dataframe_app | Socialnet_app | Gemm_app | Kvstore_app

let system_name = function
  | Drust -> "DRust"
  | Gam -> "GAM"
  | Grappa -> "Grappa"
  | Original -> "Original"

let all_systems = [ Drust; Gam; Grappa ]

let system_slug = function
  | Drust -> "drust"
  | Gam -> "gam"
  | Grappa -> "grappa"
  | Original -> "original"

let system_of_slug = function
  | "drust" -> Some Drust
  | "gam" -> Some Gam
  | "grappa" -> Some Grappa
  | "original" -> Some Original
  | _ -> None

let app_name = function
  | Dataframe_app -> "DataFrame"
  | Socialnet_app -> "SocialNet"
  | Gemm_app -> "GEMM"
  | Kvstore_app -> "KV Store"

let all_apps = [ Dataframe_app; Socialnet_app; Gemm_app; Kvstore_app ]

let app_slug = function
  | Dataframe_app -> "dataframe"
  | Socialnet_app -> "socialnet"
  | Gemm_app -> "gemm"
  | Kvstore_app -> "kvstore"

let app_of_slug = function
  | "dataframe" -> Some Dataframe_app
  | "socialnet" -> Some Socialnet_app
  | "gemm" -> Some Gemm_app
  | "kvstore" -> Some Kvstore_app
  | _ -> None

let make_backend system cluster =
  match system with
  | Drust -> Drust_dsm.Drust_backend.create cluster
  | Gam -> Drust_gam.Gam.backend (Drust_gam.Gam.create cluster)
  | Grappa -> Drust_grappa.Grappa.backend (Drust_grappa.Grappa.create cluster)
  | Original -> Drust_dsm.Local_backend.create cluster

type topology = {
  nodes : int;
  cores_per_node : int;
  mem_per_node : int;
  ghz : float;
  seed : int;
}

let params_of (t : topology) =
  {
    Params.default with
    Params.nodes = t.nodes;
    cores_per_node = t.cores_per_node;
    mem_per_node = t.mem_per_node;
    ghz = t.ghz;
    seed = t.seed;
  }

let topology_of_params (p : Params.t) =
  {
    nodes = p.Params.nodes;
    cores_per_node = p.Params.cores_per_node;
    mem_per_node = p.Params.mem_per_node;
    ghz = p.Params.ghz;
    seed = p.Params.seed;
  }

type fault_event =
  | Crash of { node : int; at : float }
  | Partition of { group : int list; at : float; heal_at : float }
  | Degrade of {
      from_node : int;
      target : int;
      drop : float;
      extra_latency : float;
      jitter : float;
    }

type faults = { fault_seed : int; events : fault_event list }

type workload =
  | App_run of { app : app; affinity : bool; pass_by_value : bool }
  | Ycsb_run of { mix : Ycsb.workload; ops : int }
  | Failover_kv of Scenario.failover_spec
  | Churn_kv of Scenario.churn_spec

type sim = {
  topology : topology;
  system : system;
  workload : workload;
  faults : faults;
}

type suite = {
  su_experiments : string list;
  su_node_counts : int list option;
  su_churn_nodes : int option;
  su_seed : int;
}

type spec = Sim of sim | Suite of suite
type t = { name : string; spec : spec; expect : string }

let bench_schema = "drust-bench-summary/v3"
let plan_schema = "drust-simplan/v1"

(* ------------------------------------------------------------------ *)
(* Constructors                                                        *)

let no_faults = { fault_seed = 0; events = [] }

let app_plan ?name ?(affinity = false) ?(pass_by_value = false) ~params app
    system =
  let topology = topology_of_params params in
  let name =
    match name with
    | Some n -> n
    | None ->
        Printf.sprintf "%s-%s-%dn" (app_slug app) (system_slug system)
          topology.nodes
  in
  {
    name;
    expect = bench_schema;
    spec =
      Sim
        {
          topology;
          system;
          workload = App_run { app; affinity; pass_by_value };
          faults = no_faults;
        };
  }

(* The mix letter alone: workload_name's parenthetical would not be
   usable as a file stem. *)
let mix_slug mix =
  match Ycsb.workload_name mix with
  | "" -> "x"
  | n -> String.lowercase_ascii (String.make 1 n.[0])

let ycsb_plan ?name ~params ~mix ~ops system =
  let topology = topology_of_params params in
  let name =
    match name with
    | Some n -> n
    | None ->
        Printf.sprintf "ycsb-%s-%s-%dn" (mix_slug mix) (system_slug system)
          topology.nodes
  in
  {
    name;
    expect = bench_schema;
    spec =
      Sim
        { topology; system; workload = Ycsb_run { mix; ops }; faults = no_faults };
  }

(* The chaos scenarios run on deliberately small nodes so the fault
   machinery, not the memory system, dominates. *)
let small_topology ~nodes ~seed =
  {
    nodes;
    cores_per_node = 4;
    mem_per_node = Drust_util.Units.mib 64;
    ghz = Params.default.Params.ghz;
    seed;
  }

let failover_plan ?name ?(spec = Scenario.default_failover) ~seed () =
  let name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "failover-%dn-seed%d" spec.Scenario.fo_nodes seed
  in
  {
    name;
    expect = bench_schema;
    spec =
      Sim
        {
          topology = small_topology ~nodes:spec.Scenario.fo_nodes ~seed;
          system = Drust;
          workload = Failover_kv spec;
          faults =
            {
              fault_seed = seed + 17;
              events =
                [
                  Crash
                    {
                      node = spec.Scenario.fo_victim;
                      at = spec.Scenario.fo_crash_t;
                    };
                ];
            };
        };
  }

let churn_plan ?name ~seed ~nodes () =
  let spec = Scenario.churn_spec_of ~nodes in
  let name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "churn-%dn-seed%d" nodes seed
  in
  {
    name;
    expect = bench_schema;
    spec =
      Sim
        {
          topology = small_topology ~nodes ~seed;
          system = Drust;
          workload = Churn_kv spec;
          faults =
            {
              fault_seed = seed + 17;
              events =
                [
                  Crash
                    {
                      node = spec.Scenario.ch_victim;
                      at = spec.Scenario.ch_crash_t;
                    };
                ];
            };
        };
  }

let suite_plan ?node_counts ?churn_nodes ?(seed = 42) ~name experiments =
  {
    name;
    expect = bench_schema;
    spec =
      Suite
        {
          su_experiments = experiments;
          su_node_counts = node_counts;
          su_churn_nodes = churn_nodes;
          su_seed = seed;
        };
  }

(* ------------------------------------------------------------------ *)
(* Codec                                                               *)

let num_of_int i = Json.Num (float_of_int i)
let ints xs = Json.Arr (List.map num_of_int xs)

let topology_json t =
  Json.Obj
    [
      ("nodes", num_of_int t.nodes);
      ("cores_per_node", num_of_int t.cores_per_node);
      ("mem_per_node", num_of_int t.mem_per_node);
      ("ghz", Json.Num t.ghz);
      ("seed", num_of_int t.seed);
    ]

let event_json = function
  | Crash { node; at } ->
      Json.Obj
        [ ("kind", Json.Str "crash"); ("node", num_of_int node);
          ("at", Json.Num at) ]
  | Partition { group; at; heal_at } ->
      Json.Obj
        [
          ("kind", Json.Str "partition");
          ("group", ints group);
          ("at", Json.Num at);
          ("heal_at", Json.Num heal_at);
        ]
  | Degrade { from_node; target; drop; extra_latency; jitter } ->
      Json.Obj
        [
          ("kind", Json.Str "degrade");
          ("from", num_of_int from_node);
          ("target", num_of_int target);
          ("drop", Json.Num drop);
          ("extra_latency", Json.Num extra_latency);
          ("jitter", Json.Num jitter);
        ]

let workload_json = function
  | App_run { app; affinity; pass_by_value } ->
      Json.Obj
        [
          ("kind", Json.Str "app");
          ("app", Json.Str (app_slug app));
          ("affinity", Json.Bool affinity);
          ("pass_by_value", Json.Bool pass_by_value);
        ]
  | Ycsb_run { mix; ops } ->
      Json.Obj
        [
          ("kind", Json.Str "ycsb");
          ("mix", Json.Str (Ycsb.workload_name mix));
          ("ops", num_of_int ops);
        ]
  | Failover_kv s ->
      Json.Obj
        [
          ("kind", Json.Str "failover");
          ("nodes", num_of_int s.Scenario.fo_nodes);
          ("keys", num_of_int s.Scenario.fo_keys);
          ("key_bytes", num_of_int s.Scenario.fo_key_bytes);
          ("duration", Json.Num s.Scenario.fo_duration);
          ("crash_t", Json.Num s.Scenario.fo_crash_t);
          ("victim", num_of_int s.Scenario.fo_victim);
          ("bucket", Json.Num s.Scenario.fo_bucket);
          ("think", Json.Num s.Scenario.fo_think);
        ]
  | Churn_kv s ->
      Json.Obj
        [
          ("kind", Json.Str "churn");
          ("nodes", num_of_int s.Scenario.ch_nodes);
          ("active0", num_of_int s.Scenario.ch_active0);
          ("joiners", ints s.Scenario.ch_joiners);
          ("leavers", ints s.Scenario.ch_leavers);
          ("sabotaged", num_of_int s.Scenario.ch_sabotaged);
          ("victim", num_of_int s.Scenario.ch_victim);
          ("crash_t", Json.Num s.Scenario.ch_crash_t);
          ("duration", Json.Num s.Scenario.ch_duration);
          ("churn_start", Json.Num s.Scenario.ch_churn_start);
          ("churn_gap", Json.Num s.Scenario.ch_churn_gap);
          ("think", Json.Num s.Scenario.ch_think);
          ("key_bytes", num_of_int s.Scenario.ch_key_bytes);
          ("ballast_bytes", num_of_int s.Scenario.ch_ballast_bytes);
          ("zipf_theta", Json.Num s.Scenario.ch_zipf_theta);
          ("replicas", num_of_int s.Scenario.ch_replicas);
        ]

let to_json t =
  let spec =
    match t.spec with
    | Sim s ->
        ( "sim",
          Json.Obj
            [
              ("topology", topology_json s.topology);
              ("system", Json.Str (system_slug s.system));
              ("workload", workload_json s.workload);
              ( "faults",
                Json.Obj
                  [
                    ("fault_seed", num_of_int s.faults.fault_seed);
                    ("events", Json.Arr (List.map event_json s.faults.events));
                  ] );
            ] )
    | Suite s ->
        ( "suite",
          Json.Obj
            (("experiments", Json.Arr (List.map (fun e -> Json.Str e) s.su_experiments))
             :: (match s.su_node_counts with
                | Some ns -> [ ("node_counts", ints ns) ]
                | None -> [])
            @ (match s.su_churn_nodes with
              | Some n -> [ ("churn_nodes", num_of_int n) ]
              | None -> [])
            @ [ ("seed", num_of_int s.su_seed) ]) )
  in
  Json.Obj
    [
      ("schema", Json.Str plan_schema);
      ("name", Json.Str t.name);
      ("expect", Json.Str t.expect);
      spec;
    ]

exception Bad of string

let bad fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

let field o k =
  match Json.member k o with Some v -> v | None -> bad "missing field %S" k

let opt_field o k = Json.member k o

let to_str k = function Json.Str s -> s | _ -> bad "field %S: expected string" k

let to_num k = function
  | Json.Num f -> f
  | _ -> bad "field %S: expected number" k

let to_int k = function
  | Json.Num f when Float.is_integer f -> int_of_float f
  | _ -> bad "field %S: expected integer" k

let to_bool k = function
  | Json.Bool b -> b
  | _ -> bad "field %S: expected bool" k

let to_ints k = function
  | Json.Arr xs -> List.map (to_int k) xs
  | _ -> bad "field %S: expected array of integers" k

let sfield o k = to_str k (field o k)
let nfield o k = to_num k (field o k)
let ifield o k = to_int k (field o k)
let bfield o k = to_bool k (field o k)

let topology_of_json o =
  {
    nodes = ifield o "nodes";
    cores_per_node = ifield o "cores_per_node";
    mem_per_node = ifield o "mem_per_node";
    ghz = nfield o "ghz";
    seed = ifield o "seed";
  }

let event_of_json o =
  match sfield o "kind" with
  | "crash" -> Crash { node = ifield o "node"; at = nfield o "at" }
  | "partition" ->
      Partition
        {
          group = to_ints "group" (field o "group");
          at = nfield o "at";
          heal_at = nfield o "heal_at";
        }
  | "degrade" ->
      Degrade
        {
          from_node = ifield o "from";
          target = ifield o "target";
          drop = nfield o "drop";
          extra_latency = nfield o "extra_latency";
          jitter = nfield o "jitter";
        }
  | k -> bad "unknown fault event kind %S" k

let workload_of_json o =
  match sfield o "kind" with
  | "app" ->
      let slug = sfield o "app" in
      let app =
        match app_of_slug slug with
        | Some a -> a
        | None -> bad "unknown app %S" slug
      in
      App_run
        {
          app;
          affinity = bfield o "affinity";
          pass_by_value = bfield o "pass_by_value";
        }
  | "ycsb" ->
      let name = sfield o "mix" in
      let mix =
        match
          List.find_opt
            (fun w -> String.equal (Ycsb.workload_name w) name)
            Ycsb.all_workloads
        with
        | Some w -> w
        | None -> bad "unknown YCSB mix %S" name
      in
      Ycsb_run { mix; ops = ifield o "ops" }
  | "failover" ->
      Failover_kv
        {
          Scenario.fo_nodes = ifield o "nodes";
          fo_keys = ifield o "keys";
          fo_key_bytes = ifield o "key_bytes";
          fo_duration = nfield o "duration";
          fo_crash_t = nfield o "crash_t";
          fo_victim = ifield o "victim";
          fo_bucket = nfield o "bucket";
          fo_think = nfield o "think";
        }
  | "churn" ->
      Churn_kv
        {
          Scenario.ch_nodes = ifield o "nodes";
          ch_active0 = ifield o "active0";
          ch_joiners = to_ints "joiners" (field o "joiners");
          ch_leavers = to_ints "leavers" (field o "leavers");
          ch_sabotaged = ifield o "sabotaged";
          ch_victim = ifield o "victim";
          ch_crash_t = nfield o "crash_t";
          ch_duration = nfield o "duration";
          ch_churn_start = nfield o "churn_start";
          ch_churn_gap = nfield o "churn_gap";
          ch_think = nfield o "think";
          ch_key_bytes = ifield o "key_bytes";
          ch_ballast_bytes = ifield o "ballast_bytes";
          ch_zipf_theta = nfield o "zipf_theta";
          ch_replicas = ifield o "replicas";
        }
  | k -> bad "unknown workload kind %S" k

let of_json j =
  try
    let schema = sfield j "schema" in
    if not (String.equal schema plan_schema) then
      bad "unknown plan schema %S (expected %s)" schema plan_schema;
    let name = sfield j "name" in
    let expect = sfield j "expect" in
    let spec =
      match (opt_field j "sim", opt_field j "suite") with
      | Some s, None ->
          let system_slug_ = sfield s "system" in
          let system =
            match system_of_slug system_slug_ with
            | Some sys -> sys
            | None -> bad "unknown system %S" system_slug_
          in
          let faults_o = field s "faults" in
          let events =
            match field faults_o "events" with
            | Json.Arr es -> List.map event_of_json es
            | _ -> bad "field \"events\": expected array"
          in
          Sim
            {
              topology = topology_of_json (field s "topology");
              system;
              workload = workload_of_json (field s "workload");
              faults = { fault_seed = ifield faults_o "fault_seed"; events };
            }
      | None, Some s ->
          let experiments =
            match field s "experiments" with
            | Json.Arr es -> List.map (to_str "experiments") es
            | _ -> bad "field \"experiments\": expected array"
          in
          Suite
            {
              su_experiments = experiments;
              su_node_counts =
                Option.map (to_ints "node_counts") (opt_field s "node_counts");
              su_churn_nodes =
                Option.map (to_int "churn_nodes") (opt_field s "churn_nodes");
              su_seed = ifield s "seed";
            }
      | Some _, Some _ -> bad "plan has both \"sim\" and \"suite\" specs"
      | None, None -> bad "plan has neither \"sim\" nor \"suite\" spec"
    in
    Ok { name; spec; expect }
  with Bad m -> Error m

let print t = Json.print (to_json t)

let parse s =
  match Json.parse s with
  | j -> of_json j
  | exception Json.Parse_error m -> Error m

let save ~path t = Json.save ~path (to_json t)

let load ~path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> (
      match parse text with
      | Ok t -> Ok t
      | Error m -> Error (path ^ ": " ^ m))
  | exception Sys_error m -> Error m

let field_names =
  List.sort_uniq String.compare
    [
      "schema"; "name"; "expect"; "sim"; "suite"; "topology"; "system";
      "workload"; "faults"; "fault_seed"; "events"; "nodes"; "cores_per_node";
      "mem_per_node"; "ghz"; "seed"; "kind"; "node"; "at"; "group"; "heal_at";
      "from"; "target"; "drop"; "extra_latency"; "jitter"; "app"; "affinity";
      "pass_by_value"; "mix"; "ops"; "keys"; "key_bytes"; "duration";
      "crash_t"; "victim"; "bucket"; "think"; "active0"; "joiners"; "leavers";
      "sabotaged"; "churn_start"; "churn_gap"; "ballast_bytes"; "zipf_theta";
      "replicas"; "experiments"; "node_counts"; "churn_nodes";
    ]

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)

let validate t =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errs := m :: !errs) fmt in
  let name_ok =
    String.length t.name > 0
    && String.for_all
         (fun c ->
           match c with
           | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' -> true
           | _ -> false)
         t.name
  in
  if not name_ok then
    err "name %S is not usable as a file stem ([A-Za-z0-9._-]+)" t.name;
  if not (String.equal t.expect bench_schema) then
    err "expect %S is not the schema this build writes (%s)" t.expect
      bench_schema;
  (match t.spec with
  | Sim s ->
      let top = s.topology in
      if top.nodes < 1 then err "topology.nodes must be >= 1 (got %d)" top.nodes;
      if top.cores_per_node < 1 then
        err "topology.cores_per_node must be >= 1 (got %d)" top.cores_per_node;
      if top.mem_per_node < 4096 then
        err "topology.mem_per_node must be >= 4096 bytes (got %d)"
          top.mem_per_node;
      if not (top.ghz > 0.0) then err "topology.ghz must be positive";
      let in_range what n =
        if n < 0 || n >= top.nodes then
          err "%s %d out of range [0, %d)" what n top.nodes
      in
      List.iter
        (function
          | Crash { node; at } ->
              in_range "crash node" node;
              if not (at >= 0.0) then err "crash at %g must be >= 0" at
          | Partition { group; at; heal_at } ->
              if group = [] then err "partition group is empty";
              List.iter (in_range "partition node") group;
              if not (at >= 0.0) then err "partition at %g must be >= 0" at;
              if not (heal_at > at) then
                err "partition heal_at %g must be after at %g" heal_at at
          | Degrade { from_node; target; drop; extra_latency; jitter } ->
              in_range "degrade from" from_node;
              in_range "degrade target" target;
              if from_node = target then
                err "degrade link %d -> %d is a self-loop" from_node target;
              if not (drop >= 0.0 && drop <= 1.0) then
                err "degrade drop %g outside [0, 1]" drop;
              if not (extra_latency >= 0.0) then
                err "degrade extra_latency %g must be >= 0" extra_latency;
              if not (jitter >= 0.0) then
                err "degrade jitter %g must be >= 0" jitter)
        s.faults.events;
      let require_crash ~victim ~at =
        let planned =
          List.exists
            (function
              | Crash { node; at = t } -> node = victim && t = at
              | _ -> false)
            s.faults.events
        in
        if not planned then
          err
            "scenario victim crash (node %d at %g) is missing from the fault \
             events — the plan's fault schedule is the single source of truth"
            victim at
      in
      (match s.workload with
      | App_run _ -> ()
      | Ycsb_run { ops; _ } ->
          if ops < 1 then err "ycsb ops must be >= 1 (got %d)" ops
      | Failover_kv f ->
          if f.Scenario.fo_nodes <> top.nodes then
            err "failover nodes %d does not match topology.nodes %d"
              f.Scenario.fo_nodes top.nodes;
          if f.Scenario.fo_keys < 1 then err "failover keys must be >= 1";
          if f.Scenario.fo_key_bytes < 8 then
            err "failover key_bytes must be >= 8";
          if not (f.Scenario.fo_duration > 0.0) then
            err "failover duration must be positive";
          if
            not
              (f.Scenario.fo_crash_t > 0.0
              && f.Scenario.fo_crash_t < f.Scenario.fo_duration)
          then err "failover crash_t must fall inside (0, duration)";
          if f.Scenario.fo_victim < 0 || f.Scenario.fo_victim >= top.nodes then
            err "failover victim %d out of range" f.Scenario.fo_victim;
          if not (f.Scenario.fo_bucket > 0.0) then
            err "failover bucket must be positive";
          if not (f.Scenario.fo_think > 0.0) then
            err "failover think must be positive";
          require_crash ~victim:f.Scenario.fo_victim ~at:f.Scenario.fo_crash_t
      | Churn_kv c ->
          if c.Scenario.ch_nodes <> top.nodes then
            err "churn nodes %d does not match topology.nodes %d"
              c.Scenario.ch_nodes top.nodes;
          if c.Scenario.ch_active0 < 1 || c.Scenario.ch_active0 > top.nodes
          then err "churn active0 %d outside [1, nodes]" c.Scenario.ch_active0;
          let active0 = c.Scenario.ch_active0 in
          List.iter
            (fun j ->
              if j < active0 || j >= top.nodes then
                err "churn joiner %d must be a standby node in [%d, %d)" j
                  active0 top.nodes)
            c.Scenario.ch_joiners;
          List.iter
            (fun l ->
              if l < 0 || l >= active0 then
                err "churn leaver %d must be an active node in [0, %d)" l
                  active0)
            c.Scenario.ch_leavers;
          if c.Scenario.ch_sabotaged < 0 || c.Scenario.ch_sabotaged >= active0
          then err "churn sabotaged %d out of range" c.Scenario.ch_sabotaged;
          if c.Scenario.ch_victim < 0 || c.Scenario.ch_victim >= active0 then
            err "churn victim %d out of range" c.Scenario.ch_victim;
          if
            List.length (List.sort_uniq Int.compare c.Scenario.ch_leavers)
            <> List.length c.Scenario.ch_leavers
          then err "churn leavers contain duplicates";
          if not (c.Scenario.ch_duration > 0.0) then
            err "churn duration must be positive";
          if
            not
              (c.Scenario.ch_churn_start > 0.0
              && c.Scenario.ch_churn_start < c.Scenario.ch_duration)
          then err "churn churn_start must fall inside (0, duration)";
          if not (c.Scenario.ch_churn_gap > 0.0) then
            err "churn churn_gap must be positive";
          if
            not
              (c.Scenario.ch_crash_t > 0.0
              && c.Scenario.ch_crash_t < c.Scenario.ch_duration)
          then err "churn crash_t must fall inside (0, duration)";
          if not (c.Scenario.ch_think > 0.0) then
            err "churn think must be positive";
          if c.Scenario.ch_key_bytes < 8 then err "churn key_bytes must be >= 8";
          if c.Scenario.ch_ballast_bytes < c.Scenario.ch_key_bytes then
            err "churn ballast_bytes must be >= key_bytes";
          if not (c.Scenario.ch_zipf_theta > 0.0) then
            err "churn zipf_theta must be positive";
          if c.Scenario.ch_replicas < 1 then err "churn replicas must be >= 1";
          require_crash ~victim:c.Scenario.ch_victim ~at:c.Scenario.ch_crash_t)
  | Suite s ->
      if s.su_experiments = [] then err "suite names no experiments";
      List.iter
        (fun e ->
          if
            String.length e = 0
            || not
                 (String.for_all
                    (fun c ->
                      match c with
                      | 'a' .. 'z' | '0' .. '9' | '_' | '-' -> true
                      | _ -> false)
                    e)
          then err "experiment name %S is not a valid identifier" e)
        s.su_experiments;
      (match s.su_node_counts with
      | Some [] -> err "node_counts is empty (omit the field instead)"
      | Some ns ->
          List.iter
            (fun n -> if n < 1 then err "node count %d must be >= 1" n)
            ns
      | None -> ());
      (match s.su_churn_nodes with
      | Some n when n < 16 -> err "churn_nodes %d must be >= 16" n
      | _ -> ()));
  match List.rev !errs with [] -> Ok () | es -> Error es

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)

type outcome_result =
  | App_done of {
      result : Drust_appkit.Appkit.result;
      latency : Metrics.histo option;
      snapshot : Metrics.snapshot;
    }
  | Failover_done of Scenario.failover_result
  | Churn_done of Scenario.churn_result

type outcome = { plan : t; result : outcome_result; violations : string list }

let install_faults ~cluster ~nodes faults =
  let engine = Cluster.engine cluster in
  let plan =
    Fault.create ~engine ~rng:(Rng.create ~seed:faults.fault_seed) ~nodes ()
  in
  (* Echo every injection into the flight recorder (on the controller's
     ring, stamped with the fault's scheduled time) so a post-mortem dump
     shows what the plan threw at the run.  Installed before the events
     are declared so the declarations themselves are recorded. *)
  let fl = Cluster.flight cluster in
  Fault.set_recorder plan
    (Some
       (function
         | Fault.Inj_crash { node; at } ->
             Flight.record fl ~node:0 ~time:at ~kind:Flight.k_fault_crash
               ~a:node ~b:0 ~c:0 ~d:0
         | Fault.Inj_partition { group; at; heal_at = _ } ->
             Flight.record fl ~node:0 ~time:at ~kind:Flight.k_fault_partition
               ~a:(match group with n :: _ -> n | [] -> -1)
               ~b:(List.length group) ~c:0 ~d:0
         | Fault.Inj_degrade { from_node; target; drop } ->
             Flight.record fl ~node:0 ~time:0.0 ~kind:Flight.k_fault_degrade
               ~a:from_node ~b:target
               ~c:(int_of_float (drop *. 1000.0))
               ~d:0));
  List.iter
    (function
      | Crash { node; at } -> Fault.crash_at plan ~node ~at
      | Partition { group; at; heal_at } ->
          Fault.partition_at plan ~group ~at ~heal_at
      | Degrade { from_node; target; drop; extra_latency; jitter } ->
          Fault.degrade_link plan ~from:from_node ~target ~drop ~extra_latency
            ~jitter ())
    faults.events;
  Drust_net.Fabric.set_fault_plan (Cluster.fabric cluster) plan;
  plan

let run_app_body ~cluster ~backend ~app ~affinity ~pass_by_value =
  match app with
  | Dataframe_app ->
      Drust_dataframe.Dataframe.run ~cluster ~backend
        {
          Drust_dataframe.Dataframe.default_config with
          Drust_dataframe.Dataframe.use_tbox = affinity;
          use_spawn_to = affinity;
        }
  | Socialnet_app ->
      Drust_socialnet.Socialnet.run ~cluster ~backend
        {
          Drust_socialnet.Socialnet.default_config with
          Drust_socialnet.Socialnet.pass_by_value;
        }
  | Gemm_app ->
      Drust_gemm.Gemm.run ~cluster ~backend Drust_gemm.Gemm.default_config
  | Kvstore_app ->
      Drust_kvstore.Kvstore.run ~cluster ~backend
        Drust_kvstore.Kvstore.default_config

let execute ?(sanitize = false) t =
  (match validate t with
  | Ok () -> ()
  | Error es ->
      invalid_arg
        (Printf.sprintf "Simplan.execute: invalid plan %S: %s" t.name
           (String.concat "; " es)));
  let s =
    match t.spec with
    | Sim s -> s
    | Suite _ ->
        invalid_arg
          (Printf.sprintf
             "Simplan.execute: %S is a suite plan — replay it through the \
              bench CLI (--plan)"
             t.name)
  in
  let cluster = Cluster.create (params_of s.topology) in
  (* The flight recorder's dump stem is the plan name, so a failing run
     leaves [<name>.flight.json] next to the plan that provoked it. *)
  Flight.set_label (Cluster.flight cluster) t.name;
  (* A local sanitizer: each concurrently-executing plan owns its own
     shadow state, so fuzz batches can fan out over domains. *)
  let dsan = if sanitize then Some (Dsan.attach cluster) else None in
  (* Only install a fault plan when the run needs one: an installed plan
     changes the fabric's per-verb bookkeeping, and plain app runs must
     stay byte-identical with the pre-plan harness. *)
  let needs_faults =
    s.faults.events <> []
    || match s.workload with Failover_kv _ | Churn_kv _ -> true | _ -> false
  in
  let fault =
    if needs_faults then
      Some (install_faults ~cluster ~nodes:s.topology.nodes s.faults)
    else None
  in
  let finish result =
    let violations =
      match dsan with
      | None -> []
      | Some d ->
          let reports = List.map Dsan.report_to_string (Dsan.violations d) in
          Dsan.detach d;
          reports
    in
    { plan = t; result; violations }
  in
  (* Any exception escaping the workload — expectation failures, injected
     chaos the harness did not survive, plain bugs — dumps the black box
     before unwinding (docs/FORENSICS.md). *)
  Flight.guard (Cluster.flight cluster)
    ~now:(fun () -> Cluster.now cluster)
  @@ fun () ->
  match s.workload with
  | App_run { app; affinity; pass_by_value } ->
      let backend = make_backend s.system cluster in
      let result =
        run_app_body ~cluster ~backend ~app ~affinity ~pass_by_value
      in
      let snapshot = Metrics.snapshot (Cluster.metrics cluster) in
      finish
        (App_done
           {
             result;
             latency = Metrics.merged_histo snapshot "protocol.op_latency";
             snapshot;
           })
  | Ycsb_run { mix; ops } ->
      let backend = make_backend s.system cluster in
      let result =
        Drust_kvstore.Kvstore.run ~cluster ~backend
          {
            Drust_kvstore.Kvstore.default_config with
            Drust_kvstore.Kvstore.workload = Some mix;
            ops;
          }
      in
      let snapshot = Metrics.snapshot (Cluster.metrics cluster) in
      finish
        (App_done
           {
             result;
             latency = Metrics.merged_histo snapshot "protocol.op_latency";
             snapshot;
           })
  | Failover_kv spec ->
      let fault = Option.get fault in
      finish
        (Failover_done
           (Scenario.failover ~cluster ~fault ~seed:s.topology.seed spec))
  | Churn_kv spec ->
      let fault = Option.get fault in
      finish
        (Churn_done (Scenario.churn ~cluster ~fault ~seed:s.topology.seed spec))
