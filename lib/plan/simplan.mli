(** SimPlan: the declarative, replayable run artifact.

    Every simulation the repo performs — a figure cell, a chaos run, a
    CLI invocation, a fuzzer sample — is described by a [t]: topology
    (the {!Drust_machine.Params.t} fields that vary), DSM system,
    workload, fault schedule, and seeds, plus the output schema the run
    is expected to emit.  A plan has a canonical JSON encoding (built on
    {!Drust_util.Json}), a validator, and a single {!execute} entry
    point, so the exact scenario behind any result can be saved next to
    it and replayed byte-identically with [--plan FILE].

    Two plan kinds share the envelope:

    - a {e sim} plan drives one cluster: {!execute} builds the cluster
      from the topology, installs the fault events, runs the workload,
      and returns the outcome.  [bin/drust_sim.exe] and the fuzzer
      speak this kind.
    - a {e suite} plan names bench-harness experiments plus their knobs
      (node counts, churn cluster size, seed).  [bench/main.exe --plan]
      replays it through the same dispatch table a direct invocation
      uses, which is what makes replay trivially byte-identical.

    Schema documented in docs/SIMPLAN.md (kept two-way consistent with
    {!field_names} by check 8 of tools/check_docs.ml). *)

module Params = Drust_machine.Params
module Cluster = Drust_machine.Cluster
module Metrics = Drust_obs.Metrics

(** {1 Plan records} *)

type system = Drust | Gam | Grappa | Original
type app = Dataframe_app | Socialnet_app | Gemm_app | Kvstore_app

val system_name : system -> string
(** Display name ("DRust", "GAM", ...). *)

val all_systems : system list
(** [Drust; Gam; Grappa] — the three DSMs of Fig. 5. *)

val app_name : app -> string
val all_apps : app list

val make_backend : system -> Cluster.t -> Drust_dsm.Dsm.t

type topology = {
  nodes : int;
  cores_per_node : int;
  mem_per_node : int;  (** bytes *)
  ghz : float;
  seed : int;
}
(** The {!Params.t} fields a plan pins; everything else (network model,
    cycle costs) stays at {!Params.default}, which every current run
    uses. *)

val params_of : topology -> Params.t
val topology_of_params : Params.t -> topology

type fault_event =
  | Crash of { node : int; at : float }
  | Partition of { group : int list; at : float; heal_at : float }
  | Degrade of {
      from_node : int;
      target : int;
      drop : float;
      extra_latency : float;
      jitter : float;
    }

type faults = { fault_seed : int; events : fault_event list }
(** [fault_seed] seeds the fault plan's own RNG stream (drop coins,
    jitter); the scenario constructors default it to [seed + 17],
    matching the historical chaos runs. *)

type workload =
  | App_run of { app : app; affinity : bool; pass_by_value : bool }
  | Ycsb_run of { mix : Drust_workloads.Ycsb.workload; ops : int }
  | Failover_kv of Scenario.failover_spec
  | Churn_kv of Scenario.churn_spec

type sim = {
  topology : topology;
  system : system;
  workload : workload;
  faults : faults;
}

type suite = {
  su_experiments : string list;
  su_node_counts : int list option;  (** fig5's sweep sizes, when pinned *)
  su_churn_nodes : int option;  (** churn's cluster size (default 64) *)
  su_seed : int;
}

type spec = Sim of sim | Suite of suite

type t = { name : string; spec : spec; expect : string }
(** [name] keys the emitted artifact ([<name>.plan.json]); [expect] is
    the output schema the run produces ({!bench_schema}). *)

val bench_schema : string
(** The benchmark-summary schema this build writes
    (["drust-bench-summary/v3"]) — the single definition
    [Report.schema_version] re-exports. *)

val plan_schema : string
(** The plan envelope's own schema tag: ["drust-simplan/v1"]. *)

(** {1 Constructors} *)

val app_plan :
  ?name:string ->
  ?affinity:bool ->
  ?pass_by_value:bool ->
  params:Params.t ->
  app ->
  system ->
  t
(** One application run, no faults.  [name] defaults to
    ["<app>-<system>-<N>n"]. *)

val ycsb_plan :
  ?name:string ->
  params:Params.t ->
  mix:Drust_workloads.Ycsb.workload ->
  ops:int ->
  system ->
  t

val failover_plan :
  ?name:string -> ?spec:Scenario.failover_spec -> seed:int -> unit -> t
(** The canonical failover chaos run: small 4-core/64-MiB nodes, the
    victim crash as a plan fault event, fault seed [seed + 17]. *)

val churn_plan : ?name:string -> seed:int -> nodes:int -> unit -> t
(** The canonical churn run at [nodes]: schedule derived by
    {!Scenario.churn_spec_of} (raises [Invalid_argument] below 16
    nodes), victim crash as a plan fault event. *)

val suite_plan :
  ?node_counts:int list ->
  ?churn_nodes:int ->
  ?seed:int ->
  name:string ->
  string list ->
  t
(** A bench-harness invocation: the experiments to run plus their
    knobs.  [seed] defaults to 42. *)

(** {1 Codec} *)

val to_json : t -> Drust_util.Json.t
val of_json : Drust_util.Json.t -> (t, string) result
val print : t -> string
(** Canonical bytes: [of_json (Json.parse (print t)) = Ok t]. *)

val parse : string -> (t, string) result
val save : path:string -> t -> unit
val load : path:string -> (t, string) result
(** [Error] covers unreadable files, JSON syntax errors, and decode
    errors alike. *)

val field_names : string list
(** Every JSON field name the codec reads or writes, sorted — the
    runtime side of docs/SIMPLAN.md's schema table (check 8). *)

(** {1 Validation} *)

val validate : t -> (unit, string list) result
(** Structural validity: name usable as a file stem, topology positive,
    fault events in range and well-ordered, workload-specific
    consistency (e.g. a scenario plan's victim crash must appear in the
    fault events; a churn schedule must fit its node count).  {!execute}
    validates first and raises [Invalid_argument] on a bad plan. *)

(** {1 Execution} *)

type outcome_result =
  | App_done of {
      result : Drust_appkit.Appkit.result;
      latency : Metrics.histo option;
          (** merged [protocol.op_latency] distribution *)
      snapshot : Metrics.snapshot;
          (** full end-of-run metrics (fabric counters etc.) *)
    }
  | Failover_done of Scenario.failover_result
  | Churn_done of Scenario.churn_result

type outcome = {
  plan : t;
  result : outcome_result;
  violations : string list;
      (** DSan reports, when executed with [~sanitize:true] *)
}

val execute : ?sanitize:bool -> t -> outcome
(** Run a sim plan: validate, build the cluster from the topology,
    schedule the fault events, run the workload to completion, and
    collect the outcome.  [sanitize] attaches a {e local} DSan
    sanitizer to the plan's cluster (parallel-safe: concurrent plan
    executions never share a sanitizer) and returns its reports.
    Suite plans do not execute here — they replay through the bench
    CLI's dispatch table — so passing one raises [Invalid_argument],
    as does a plan that fails {!validate}. *)
