(** Seeded SimPlan fuzzing with greedy shrinking.

    The fuzzer samples {e valid} plans ({!plans} — every sample passes
    [Simplan.validate]), executes each under a local sanitizer
    ({!default_oracle}), and when a plan provokes a DSan violation or a
    crash, shrinks it ({!shrink}) to a minimal plan that still fails —
    the artifact worth committing as a regression.

    Everything here is deterministic: the same [seed] yields the same
    plans, and shrinking explores candidates in a fixed order, so a
    pinned (seed, oracle) pair always reproduces the same minimal plan.
    The module is deliberately sequential and [Parallel]-free (it sits
    below [lib/experiments]); [bench/main.exe fuzz] fans the oracle out
    over domains itself — safe because {!Simplan.execute} attaches a
    {e local} sanitizer per plan cluster. *)

type verdict =
  | Pass
  | Violations of string list  (** DSan reports *)
  | Crashed of string  (** the exception, printed *)

val is_failure : verdict -> bool
(** [Violations _] and [Crashed _]. *)

val verdict_to_string : verdict -> string

val default_oracle : Simplan.t -> verdict
(** [Simplan.execute ~sanitize:true], catching any exception the run
    raises (including [Invalid_argument] from a plan a shrink candidate
    made invalid — though {!shrink} filters those before calling). *)

val plans : seed:int -> count:int -> max_nodes:int -> Simplan.t list
(** [count] valid sim plans sampled from [seed].  The mix leans on the
    chaos scenarios (failover specs with perturbed schedules and extra
    partitions/degrades, churn at >= 16 nodes when [max_nodes] allows)
    plus YCSB and app runs across all systems; fault injection into
    plain app/YCSB runs is limited to lossless link degradation, since
    their clients do not retry.  [max_nodes] caps every topology.
    Raises [Invalid_argument] when [max_nodes < 4]. *)

val shrink :
  oracle:(Simplan.t -> verdict) -> Simplan.t -> Simplan.t * verdict
(** Greedily minimise a failing plan: propose simplifications (fewer
    nodes, fewer fault events, fewer keys/ops, shorter runs, canonical
    specs) in a fixed order, keep the first candidate the oracle still
    fails, and repeat until none fails.  Returns the minimal plan and
    its verdict.  If the input plan itself passes [oracle], it is
    returned unchanged with that [Pass]. *)

type finding = {
  fz_plan : Simplan.t;  (** the sampled plan that failed *)
  fz_verdict : verdict;
  fz_shrunk : Simplan.t;  (** minimal failing plan *)
  fz_shrunk_verdict : verdict;
}

val run :
  ?oracle:(Simplan.t -> verdict) ->
  seed:int ->
  count:int ->
  max_nodes:int ->
  unit ->
  finding list
(** Sequential convenience: sample, test, shrink.  [oracle] defaults to
    {!default_oracle}. *)
