(* The failover and churn scenario bodies, moved verbatim from
   lib/experiments so [Simplan.execute] can drive them from a plan
   record.  The caller builds the cluster and installs the fault plan
   (the plan's declarative fault events), then hands both in; the
   bodies here spawn the clients/daemons, run the engine to completion,
   and collect a result record.  No assertions: robustness checks live
   with the experiment grids, and the fuzzer needs generated plans to
   report violations through the oracle rather than abort mid-run. *)

module Engine = Drust_sim.Engine
module Fault = Drust_sim.Fault
module Cluster = Drust_machine.Cluster
module Ctx = Drust_machine.Ctx
module Fabric = Drust_net.Fabric
module Controller = Drust_runtime.Controller
module Replication = Drust_runtime.Replication
module Membership = Drust_runtime.Membership
module P = Drust_core.Protocol
module Rng = Drust_util.Rng
module Univ = Drust_util.Univ
module Metrics = Drust_obs.Metrics

let int_tag : int Univ.tag = Univ.create_tag ~name:"scenario.int"
let pack = Univ.pack int_tag
let unpack v = Univ.unpack_exn int_tag v

(* ------------------------------------------------------------------ *)
(* Failover                                                            *)

type failover_spec = {
  fo_nodes : int;
  fo_keys : int;
  fo_key_bytes : int;
  fo_duration : float;
  fo_crash_t : float;
  fo_victim : int;
  fo_bucket : float;
  fo_think : float;
}

let default_failover =
  {
    fo_nodes = 4;
    fo_keys = 16;
    fo_key_bytes = 64;
    fo_duration = 60e-3;
    fo_crash_t = 20e-3;
    fo_victim = 1;
    fo_bucket = 5e-3;
    fo_think = 2e-5;
  }

type failover_result = {
  seed : int;
  victim : int;
  crash_time : float;
  detection_time : float option;
  recovery_time : float option;
  curve : int array;
  bucket : float;
  total_ops : int;
  failed_ops : int;
  retries : int;
  timeouts : int;
  drops : int;
  op_latency : Metrics.histo option;
}

let failover ~cluster ~fault ~seed spec =
  let { fo_nodes = nodes; fo_keys = n_keys; fo_key_bytes = key_bytes;
        fo_duration = duration; fo_crash_t = crash_t; fo_victim = victim;
        fo_bucket = bucket_w; fo_think = think } = spec
  in
  let engine = Cluster.engine cluster in
  let fabric = Cluster.fabric cluster in
  let plan = fault in
  let n_buckets = int_of_float (ceil (duration /. bucket_w)) in
  let curve = Array.make n_buckets 0 in
  let total_ops = ref 0 and failed_ops = ref 0 in
  let recovery = ref None in
  let ctrl = ref None in
  ignore
    (Engine.spawn engine (fun () ->
         let ctx = Ctx.make cluster ~node:0 in
         (* Keys are pinned (they never migrate), spread round-robin, so
            node [victim]'s range holds real data when it dies. *)
         let keys =
           Array.init n_keys (fun i ->
               let o =
                 P.create_on ctx ~node:(i mod nodes) ~size:key_bytes (pack 0)
               in
               P.pin ctx o;
               o)
         in
         (* Enable replication after setup so the snapshot captures the
            keys; then hand the manager to the detector. *)
         let repl = Replication.enable cluster in
         let c =
           Controller.start ~probe_interval:0.5e-3 ~probe_timeout:2e-4
             ~miss_threshold:3 ~replication:repl cluster
         in
         ctrl := Some c;
         Engine.schedule engine ~at:duration (fun () -> Controller.stop c);
         (* Periodic checkpoint: without it, write-backs only happen on
            ownership escape, which pinned keys never do. *)
         ignore
           (Engine.spawn engine (fun () ->
                let fctx = Ctx.make cluster ~node:0 in
                while Engine.now engine < duration do
                  Engine.delay engine 2e-3;
                  if Engine.now engine < duration then
                    (* A checkpoint round that hits a dead or partitioned
                       node (compound fault plans reach this; the plain
                       crash-only figure never does) skips the round —
                       the next tick retries after detection/healing. *)
                    try Replication.sync_now fctx repl
                    with
                    | Fabric.Node_down _ | Fabric.Rpc_timeout _
                    | Fabric.Stale_epoch _ ->
                        ()
                done));
         (* One client per node.  A client on a crashed node stops at its
            next iteration — its server is gone. *)
         Array.iteri
           (fun c _ ->
             ignore
               (Engine.spawn engine (fun () ->
                    let w = Ctx.make cluster ~node:c in
                    let i = ref 0 in
                    while
                      Engine.now engine < duration
                      && not (Fault.is_down plan w.Ctx.node)
                    do
                      let k = ((c * 7) + !i) mod n_keys in
                      let key = keys.(k) in
                      let is_write = !i mod 4 = 0 in
                      (match
                         Fabric.retry_with_backoff fabric ~from:w.Ctx.node
                           ~attempts:12 ~base_delay:2e-4 ~budget:0.03
                           (fun () ->
                             if is_write then
                               P.owner_modify w key (fun v ->
                                   pack (unpack v + 1))
                             else ignore (P.owner_read w key))
                       with
                      | () ->
                          total_ops := !total_ops + 1;
                          let b =
                            min (n_buckets - 1)
                              (int_of_float (Engine.now engine /. bucket_w))
                          in
                          curve.(b) <- curve.(b) + 1;
                          if
                            is_write
                            && k mod nodes = victim
                            && Engine.now engine > crash_t
                            && !recovery = None
                          then recovery := Some (Engine.now engine)
                      | exception (Fabric.Node_down _ | Fabric.Rpc_timeout _)
                        ->
                          failed_ops := !failed_ops + 1);
                      incr i;
                      Engine.delay engine think
                    done)))
           (Array.make nodes ())));
  Cluster.run cluster;
  let detection_time =
    match !ctrl with
    | None -> None
    | Some c -> List.assoc_opt victim (Controller.deaths c)
  in
  let snap = Metrics.snapshot (Cluster.metrics cluster) in
  let retries = ref (Metrics.total snap "fabric.retries")
  and timeouts = ref (Metrics.total snap "fabric.timeouts")
  and drops = ref (Metrics.total snap "fabric.drops") in
  {
    seed;
    victim;
    crash_time = crash_t;
    detection_time;
    recovery_time = !recovery;
    curve;
    bucket = bucket_w;
    total_ops = !total_ops;
    failed_ops = !failed_ops;
    retries = !retries;
    timeouts = !timeouts;
    drops = !drops;
    op_latency = Metrics.merged_histo snap "protocol.op_latency";
  }

(* ------------------------------------------------------------------ *)
(* Churn                                                               *)

type churn_spec = {
  ch_nodes : int;
  ch_active0 : int;
  ch_joiners : int list;
  ch_leavers : int list;
  ch_sabotaged : int;
  ch_victim : int;
  ch_crash_t : float;
  ch_duration : float;
  ch_churn_start : float;
  ch_churn_gap : float;
  ch_think : float;
  ch_key_bytes : int;
  ch_ballast_bytes : int;
  ch_zipf_theta : float;
  ch_replicas : int;
}

(* Membership schedule derived from the node count so the same scenario
   runs at 64 nodes (the paper-scale run) and 16 nodes (the CI alias).
   One extra leaver beyond the graceful quota is sabotaged: its leave is
   crashed mid-handoff and must abort, so the graceful quota completes
   regardless. *)
let churn_spec_of ~nodes =
  if nodes < 16 then invalid_arg "Churn: need at least 16 nodes";
  let standby = max 2 (nodes / 4) in
  let active0 = nodes - standby in
  let n_joins = min standby (max 2 (nodes / 8)) in
  let n_leaves = max 2 (nodes / 8) in
  (* Leavers at 2, 5, 8, ... : spaced so no leaver is the ring successor
     of another leaver or of the victim (replica hosts of a crashed
     range must stay alive; replicas = 2 covers one dead successor). *)
  let leaver i = 2 + (3 * i) in
  if leaver n_leaves >= active0 - 2 then
    invalid_arg "Churn: too few active nodes for the leave schedule";
  {
    ch_nodes = nodes;
    ch_active0 = active0;
    ch_joiners = List.init n_joins (fun i -> active0 + i);
    ch_leavers = List.init n_leaves leaver;
    ch_sabotaged = leaver n_leaves;
    ch_victim = active0 - 2;
    ch_crash_t = 30e-3;
    ch_duration = 100e-3;
    ch_churn_start = 10e-3;
    ch_churn_gap = 4e-3;
    ch_think = 5e-5;
    ch_key_bytes = 256;
    ch_ballast_bytes = 256 * 1024;  (* multi-chunk handoffs: copy_chunk is 64 KiB *)
    ch_zipf_theta = 0.99;
    ch_replicas = 2;
  }

type churn_result = {
  seed : int;
  nodes : int;
  total_ops : int;
  failed_ops : int;
  lost_writes : int;
  unreadable_keys : int;
  joins : int;
  leaves : int;
  handoff_commits : int;
  handoff_aborts : int;
  final_epoch : int;
  stale_epochs : int;
  retries : int;
  crashes : (int * float) list;
  detection : (int * float) list;
  recovery : (int * float) list;
  handoff_latency : float list;
  unrecoverable : int list;
  op_latency : Metrics.histo option;
}

(* Zipf(theta) over [0, n): precomputed CDF + binary search. *)
let zipf_cdf n theta =
  let w = Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** theta)) in
  let total = Array.fold_left ( +. ) 0.0 w in
  let acc = ref 0.0 in
  Array.map
    (fun x ->
      acc := !acc +. (x /. total);
      !acc)
    w

let zipf_pick cdf rng =
  let u = Rng.float rng 1.0 in
  let lo = ref 0 and hi = ref (Array.length cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cdf.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo

type op = Join of int | Leave of int

let rec interleave a b =
  match (a, b) with
  | [], r | r, [] -> r
  | x :: xs, y :: ys -> x :: y :: interleave xs ys

let churn ~cluster ~fault ~seed spec =
  let { ch_nodes = nodes; ch_active0 = active0; ch_joiners = joiners;
        ch_leavers = leavers; ch_sabotaged = sabotaged; ch_victim = victim;
        ch_crash_t = planned_crash_t; ch_duration = duration;
        ch_churn_start = churn_start; ch_churn_gap = churn_gap;
        ch_think = think; ch_key_bytes = key_bytes;
        ch_ballast_bytes = ballast_bytes; ch_zipf_theta = zipf_theta;
        ch_replicas = replicas } = spec
  in
  let n_keys = 4 * active0 in
  let engine = Cluster.engine cluster in
  let fabric = Cluster.fabric cluster in
  let fplan = fault in
  let cdf = zipf_cdf n_keys zipf_theta in
  let total_ops = ref 0 and failed_ops = ref 0 in
  let acked = Array.make n_keys 0 in
  (* acked counts as of the last completed replication sync: the floor a
     crash-affected range must still satisfy at the end of the run. *)
  let synced = Array.make n_keys 0 in
  let lost = ref 0 and unreadable = ref 0 in
  (* (victim, crash time, homes the victim was serving), newest first. *)
  let crash_log = ref [] in
  let recovered : (int, float) Hashtbl.t = Hashtbl.create 4 in
  let handoffs = ref [] in
  let sabotage = ref None in
  let ctrl = ref None and member = ref None and repl_ref = ref None in
  let homes_served_by v =
    List.filter
      (fun h -> Cluster.serving_node cluster h = v)
      (List.init nodes Fun.id)
  in
  let log_crash v at =
    crash_log := (v, at, homes_served_by v) :: !crash_log
  in
  ignore
    (Engine.spawn engine (fun () ->
         let ctx = Ctx.make cluster ~node:0 in
         (* Pinned keys round-robin over the initially active nodes, plus
            per-node ballast so every handoff moves a multi-chunk image
            (the chunk boundaries are the mid-handoff crash points). *)
         let keys =
           Array.init n_keys (fun i ->
               let o =
                 P.create_on ctx ~node:(i mod active0) ~size:key_bytes (pack 0)
               in
               P.pin ctx o;
               o)
         in
         for n = 0 to active0 - 1 do
           let b = P.create_on ctx ~node:n ~size:ballast_bytes (pack 0) in
           P.pin ctx b
         done;
         let repl = Replication.enable ~replicas cluster in
         repl_ref := Some repl;
         let m = Membership.create ~active:active0 cluster ~replication:repl in
         member := Some m;
         let c =
           Controller.start ~probe_interval:0.5e-3 ~probe_timeout:2e-4
             ~miss_threshold:3 ~replication:repl ~membership:m cluster
         in
         ctrl := Some c;
         Engine.schedule engine ~at:duration (fun () -> Controller.stop c);
         Engine.schedule engine ~at:planned_crash_t (fun () ->
             log_crash victim planned_crash_t);
         (* Replication checkpoint daemon; [synced] snapshots the acked
            counts from *before* each flush (writes acked mid-flush make
            no durability promise until the next one). *)
         ignore
           (Engine.spawn engine (fun () ->
                let fctx = Ctx.make cluster ~node:0 in
                while Engine.now engine < duration do
                  Engine.delay engine 1e-3;
                  if Engine.now engine < duration then begin
                    let before = Array.copy acked in
                    Replication.sync_now fctx repl;
                    Array.blit before 0 synced 0 n_keys
                  end
                done));
         (* Mid-handoff saboteur: once armed with a leaver, poll the
            in-flight transfer and fail-stop the departing server while
            its range is mid-copy.  The handoff must abort cleanly and
            the heartbeat detector must recover the node's ranges. *)
         ignore
           (Engine.spawn engine (fun () ->
                let armed = ref true in
                while !armed && Engine.now engine < duration do
                  Engine.delay engine 2e-5;
                  match (!sabotage, Membership.in_flight_handoff m) with
                  | Some l, Some (_, from_node, _) when from_node = l ->
                      let now = Engine.now engine in
                      Fault.crash_at fplan ~node:l ~at:now;
                      log_crash l now;
                      sabotage := None;
                      armed := false
                  | _ -> ()
                done));
         (* One client per initially-active node, zipf key choice (each
            client's rank->key permutation differs, spreading the hot
            set across ranges).  Writes go to a per-client disjoint key
            set: pinned keys are write-through without ownership
            transfer, so two concurrent read-modify-writes of one key
            would race (both read v, both ack v+1) and break the
            acked-increment ledger the lost-write audit relies on. *)
         for cl = 0 to active0 - 1 do
           ignore
             (Engine.spawn engine (fun () ->
                  let w = Ctx.make cluster ~node:cl in
                  let rng =
                    Rng.create ~seed:((seed * 9176) + (cl * 131) + 7)
                  in
                  let own_keys =
                    Array.of_list
                      (List.filter
                         (fun k -> ((k * 7) + 3) mod active0 = cl)
                         (List.init n_keys Fun.id))
                  in
                  Engine.delay engine
                    (think *. float_of_int cl /. float_of_int active0);
                  let i = ref 0 in
                  while
                    Engine.now engine < duration
                    && not (Fault.is_down fplan cl)
                  do
                    let is_write =
                      !i mod 4 = 0 && Array.length own_keys > 0
                    in
                    let k =
                      let r = zipf_pick cdf rng in
                      if is_write then own_keys.(r mod Array.length own_keys)
                      else (r + (cl * 13)) mod n_keys
                    in
                    let key = keys.(k) in
                    let home = k mod active0 in
                    (match
                       Fabric.retry_with_backoff fabric ~from:cl ~attempts:16
                         ~base_delay:2e-4 ~budget:0.05 (fun () ->
                           (* Epoch-stamped routing probe: a client whose
                              node has not yet heard the latest view is
                              NAKed here and retries after the
                              announcement lands. *)
                           let server = Cluster.serving_node cluster home in
                           if server <> cl then
                             Fabric.rdma_read fabric ~from:cl ~target:server
                               ~bytes:16
                               ~epoch:(Membership.known_epoch m ~node:cl);
                           if is_write then
                             P.owner_modify w key (fun v -> pack (unpack v + 1))
                           else ignore (P.owner_read w key))
                     with
                    | () ->
                        incr total_ops;
                        if is_write then begin
                          acked.(k) <- acked.(k) + 1;
                          let now = Engine.now engine in
                          List.iter
                            (fun (v, ct, homes) ->
                              if
                                (not (Hashtbl.mem recovered v))
                                && now > ct && List.mem home homes
                              then Hashtbl.replace recovered v (now -. ct))
                            !crash_log
                        end
                    | exception
                        ( Fabric.Node_down _ | Fabric.Rpc_timeout _
                        | Fabric.Stale_epoch _ ) ->
                        incr failed_ops);
                    incr i;
                    Engine.delay engine think
                  done))
         done;
         (* The churn driver: joins and leaves interleaved, one every
            [churn_gap]; the sabotaged leave arms the watcher first. *)
         let ops =
           interleave
             (List.map (fun n -> Join n) joiners)
             (List.map (fun n -> Leave n) (leavers @ [ sabotaged ]))
         in
         Engine.delay engine (churn_start -. Engine.now engine);
         List.iter
           (fun op ->
             if Engine.now engine < duration then begin
               let t0 = Engine.now engine in
               (match op with
               | Join n -> (
                   match Membership.join ctx m ~node:n with
                   | Ok _ -> handoffs := (Engine.now engine -. t0) :: !handoffs
                   | Error _ -> ())
               | Leave n -> (
                   if n = sabotaged then sabotage := Some n;
                   match Membership.leave ctx m ~node:n with
                   | Ok _ -> handoffs := (Engine.now engine -. t0) :: !handoffs
                   | Error _ -> ()));
               Engine.delay engine churn_gap
             end)
           ops;
         (* Post-run audit (after the dust settles): every key must read
            back at least its committed floor. *)
         Engine.schedule engine ~at:(duration +. 1e-3) (fun () ->
             ignore
               (Engine.spawn engine (fun () ->
                    let v = Ctx.make cluster ~node:0 in
                    let crashed_homes =
                      List.concat_map (fun (_, _, hs) -> hs) !crash_log
                    in
                    Array.iteri
                      (fun k key ->
                        let floor =
                          if List.mem (k mod active0) crashed_homes then
                            synced.(k)
                          else acked.(k)
                        in
                        match
                          Fabric.retry_with_backoff fabric ~from:0 ~attempts:8
                            ~base_delay:2e-4 (fun () ->
                              unpack (P.owner_read v key))
                        with
                        | value -> if value < floor then incr lost
                        | exception
                            (Fabric.Node_down _ | Fabric.Rpc_timeout _) ->
                            incr unreadable)
                      keys)))));
  Cluster.run cluster;
  let snap = Metrics.snapshot (Cluster.metrics cluster) in
  let total name = Metrics.total snap name in
  let crash_list = List.rev_map (fun (v, t, _) -> (v, t)) !crash_log in
  let detection =
    match !ctrl with
    | None -> []
    | Some c ->
        List.filter_map
          (fun (v, ct) ->
            match List.assoc_opt v (Controller.deaths c) with
            | Some t -> Some (v, t -. ct)
            | None -> None)
          crash_list
  in
  let recovery =
    List.filter_map
      (fun (v, _) ->
        match Hashtbl.find_opt recovered v with
        | Some dt -> Some (v, dt)
        | None -> None)
      crash_list
  in
  {
    seed;
    nodes;
    total_ops = !total_ops;
    failed_ops = !failed_ops;
    lost_writes = !lost;
    unreadable_keys = !unreadable;
    joins = total "membership.joins";
    leaves = total "membership.leaves";
    handoff_commits = total "membership.handoff_commits";
    handoff_aborts = total "membership.handoff_aborts";
    final_epoch = (match !member with Some m -> Membership.epoch m | None -> 0);
    stale_epochs = total "fabric.stale_epochs";
    retries = total "fabric.retries";
    crashes = crash_list;
    detection;
    recovery;
    handoff_latency = List.rev !handoffs;
    unrecoverable =
      (match !repl_ref with
      | Some r -> Replication.unrecoverable_ranges r
      | None -> []);
    op_latency = Metrics.merged_histo snap "protocol.op_latency";
  }
