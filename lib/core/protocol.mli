(** The DRust ownership-guided coherence protocol (paper §4.1.1 and
    Appendix B, Algorithms 1–8), over untyped {!Drust_util.Univ.t} values.

    This module is the reproduction's core contribution.  It implements:

    - {b owners} (the paper's repurposed [Box]) with a colored global
      address, an extension field holding either a cached-copy pointer or
      the U bit, and a dynamic borrow automaton standing in for rustc;
    - {b immutable borrows}: remote reads copy the object into the
      per-node cache keyed by the {e colored} address and pin it with a
      reference count (Alg. 4);
    - {b mutable borrows}: remote writes {e move} the object into the
      writer's heap partition — changing its global address and thereby
      implicitly invalidating every stale cached copy — and write the new
      colored address back to the owner when dropped (Alg. 6);
    - {b pointer coloring}: local writes bump the 16-bit color instead of
      moving, with the U bit suppressing redundant bumps within a write
      epoch and a move-on-overflow fallback (Alg. 3/5);
    - {b affinity groups} ([TBox], §4.1.3): children tied to an owner are
      fetched/moved with it in one batched verb, and their dereferences
      skip the runtime location check;
    - {b ownership transfer} and {b deallocation} with the asynchronous
      cached-copy invalidation of Appendix B.4.

    Every operation takes a {!Drust_machine.Ctx.t} and charges simulated
    time: local dereference cycles, cache-hashmap cycles, and fabric verbs
    for remote traffic.  State mutations and cost charging are kept in
    lockstep so the protocol can be property-tested for the paper's
    data-value invariant while also driving the performance model. *)

module Ctx = Drust_machine.Ctx
module Gaddr = Drust_memory.Gaddr

type owner
type imm
type mut

(** {1 Owners} *)

val create : Ctx.t -> size:int -> Drust_util.Univ.t -> owner
(** Allocate in the global heap: the local partition when it has room,
    otherwise the most vacant server (§4.2.1).  The owner box lives with
    the calling thread. *)

val create_on : Ctx.t -> node:int -> size:int -> Drust_util.Univ.t -> owner
(** Explicit placement (used by workload setup code). *)

val gaddr : owner -> Gaddr.t
(** Current colored global address. *)

val size : owner -> int
val is_valid : owner -> bool

val owner_read : Ctx.t -> owner -> Drust_util.Univ.t
(** Immutable access through the owner (Alg. 7): local objects are read in
    place; remote objects are copied into the node cache. *)

val owner_write : Ctx.t -> owner -> Drust_util.Univ.t -> unit
(** Mutable access through the owner (Alg. 8): local objects get a color
    bump (U-bit-elided); remote objects move into the local partition. *)

val owner_modify :
  Ctx.t -> owner -> (Drust_util.Univ.t -> Drust_util.Univ.t) -> unit
(** Read-modify-write through the owner under the same rules. *)

(** {1 Immutable borrows (Alg. 4)} *)

val borrow_imm : Ctx.t -> owner -> imm
(** Creates an immutable reference; resets the owner's U bit so the next
    post-borrow write is sure to change the colored address (App. B.4). *)

val clone_imm : Ctx.t -> imm -> imm
(** New reference from an existing one: only the colored global address is
    copied; the local-copy field starts null (App. D.2). *)

val imm_deref : Ctx.t -> imm -> Drust_util.Univ.t
(** Read: local → direct; remote → cache lookup by colored address, fetch
    on miss, pin with a refcount. *)

val drop_imm : Ctx.t -> imm -> unit
(** Unpins the cached copy and returns the borrow. *)

val imm_gaddr : imm -> Gaddr.t

(** {1 Mutable borrows (Alg. 1/6)} *)

val borrow_mut : Ctx.t -> owner -> mut

val mut_read : Ctx.t -> mut -> Drust_util.Univ.t
(** Reads through a mutable reference; moves the object local first, since
    a mutable dereference always claims exclusive local access. *)

val mut_write : Ctx.t -> mut -> Drust_util.Univ.t -> unit
val mut_modify : Ctx.t -> mut -> (Drust_util.Univ.t -> Drust_util.Univ.t) -> unit

val drop_mut : Ctx.t -> mut -> unit
(** Writes the (possibly moved / recolored) global address back into the
    owner box — a synchronous 8-byte WRITE when the owner box lives on a
    different server. *)

val mut_gaddr : mut -> Gaddr.t

(** {1 Ownership transfer and deallocation} *)

val transfer : Ctx.t -> owner -> to_node:int -> unit
(** Ship the owner box to another node (thread spawn / channel send):
    requires no outstanding borrows; evicts this node's cached copy
    (App. D.2) and re-homes the box.  Affinity children move along. *)

val drop_owner : Ctx.t -> owner -> unit
(** End of lifetime: frees the heap object (and affinity children),
    asynchronously invalidating cached copies cluster-wide (App. B.4). *)

(** {1 Affinity (TBox, §4.1.3)} *)

val tie : Ctx.t -> parent:owner -> child:owner -> unit
(** Tie [child] to [parent]: co-locate now and forever; fetches and moves
    of [parent] carry the whole group in one batched verb.  Raises
    [Invalid_argument] on cycles or if [child] is already tied. *)

val pin : Ctx.t -> owner -> unit
(** Pin the object to its current server (a TBox owned by a stack
    variable): it will never move; remote mutable access degrades to
    copy-and-write-back (App. D.1). *)

val is_pinned : owner -> bool
val group_size : owner -> int
(** Total bytes of the owner plus its transitive affinity children. *)

(** {1 Introspection for tests and stats} *)

(** {1 Ablation switches}

    Used by the design-choice ablation benchmarks; both default to off. *)

val set_always_move : Drust_machine.Cluster.t -> bool -> unit
(** Disable pointer coloring: every local write moves the object to a
    fresh local address (the naive variant §4.1.1 motivates against). *)

val set_no_ubit : Drust_machine.Cluster.t -> bool -> unit
(** Disable the U-bit elision: every write bumps the color even within an
    uninterrupted write epoch. *)

(** {1 Hooks for the fault-tolerance layer (§4.2.3)} *)

val set_commit_listener :
  Drust_machine.Cluster.t ->
  (Ctx.t -> Gaddr.t -> int -> Drust_util.Univ.t -> unit) option ->
  unit
(** Invoked after each committed write epoch (drop of a modified mutable
    borrow, or an owner write) with the object's current physical address,
    size and value.  The replication manager batches these into backup
    write-backs. *)

val set_transfer_listener :
  Drust_machine.Cluster.t -> (Ctx.t -> Gaddr.t -> unit) option -> unit
(** Invoked on ownership transfer — the point at which batched
    modifications must be flushed to the backup (§4.2.3). *)

(** {1 Shadow-state probe (the DSan sanitizer, lib/check)}

    One event per protocol transition, emitted synchronously at the state
    change, with nothing allocated unless a probe is installed.  Read
    events fire at the instant the access path is decided and write events
    right after the new colored address is published, so a shadow model
    driven by these events is never separated from the real state by a
    scheduler yield.  A probe must never touch the engine or any RNG —
    sanitized runs stay bit-identical to unsanitized ones. *)

(** How a read was served: the local heap, a cache copy (carrying the
    colored key the copy was fetched under), or a fresh remote fetch. *)
type access_path = Path_local | Path_cache of Gaddr.t | Path_fetch

(** How a write epoch changed the colored address: [W_in_place] is a
    U-bit-elided write (same address), [W_bump] a color bump, [W_move] a
    relocation. *)
type write_kind = W_bump | W_move | W_in_place

type probe_event =
  | Ev_create of { g : Gaddr.t; size : int }
  | Ev_read of { g : Gaddr.t; path : access_path }
  | Ev_write of {
      before : Gaddr.t;
      after : Gaddr.t;
      size : int;
      kind : write_kind;
    }
  | Ev_borrow_imm of { g : Gaddr.t }
  | Ev_return_imm of { g : Gaddr.t }
  | Ev_borrow_mut of { g : Gaddr.t }
  | Ev_return_mut of { g : Gaddr.t }
  | Ev_transfer of { g : Gaddr.t; to_node : int }
  | Ev_drop of { g : Gaddr.t }
  | Ev_app of { g : Gaddr.t; verb : string; tag : string }
      (** Application-level attribution from the typed [Dbox] layer: the
          [Univ] tag name and the access verb, for violation provenance. *)

val set_probe : Drust_machine.Cluster.t -> (Ctx.t -> probe_event -> unit) option -> unit

val note_app : Ctx.t -> g:Gaddr.t -> verb:string -> tag:string -> unit
(** Emit an [Ev_app] attribution event (used by [Dbox]). *)

val color : owner -> int
val ubit : owner -> bool
val moves : Ctx.t -> int
(** Number of object moves performed through this context's cluster.
    Backed by the cluster metrics registry ([protocol.moves]). *)

val color_bumps : Ctx.t -> int
(** Writes resolved by a color bump alone ([protocol.color_bumps]). *)

val fetches : Ctx.t -> int
(** Remote fetches into a node cache ([protocol.fetches]). *)

val reset_protocol_stats : Ctx.t -> unit
(** Zero this cluster's [protocol.*] counters. *)

val op_latency_kinds : string list
(** The outcome labels of the always-on [protocol.op_latency{op=...}]
    histograms: which access path a read took ([read_local] /
    [read_cached] / [read_fetch] / [read_remote]) or how a write changed
    the colored address ([write_inplace] / [write_bump] / [write_move]),
    plus [transfer] and [drop].  One histogram per kind is registered in
    the cluster's metrics registry the first time the protocol touches
    it; latency is elapsed virtual time plus compute charged but not yet
    flushed, so measurement never perturbs a run. *)

val op_latency_buckets : float array
(** Upper bounds (seconds) of the op-latency histograms — finer than the
    registry default because local derefs cost tens of nanoseconds. *)

val audit : Drust_machine.Cluster.t -> string list
(** Executable form of the Appendix C coherence proof: checks, for every
    live owner, that no node cache can serve a stale value under the
    owner's current colored address (Stale-Value-Elimination) and that
    owners reference live heap slots.  Returns violation descriptions;
    an empty list means the cluster is coherent.  Intended for tests and
    debugging — it scans every cache. *)
