module Ctx = Drust_machine.Ctx
module Cluster = Drust_machine.Cluster
module Params = Drust_machine.Params
module Gaddr = Drust_memory.Gaddr
module Partition = Drust_memory.Partition
module Cache = Drust_memory.Cache
module Fabric = Drust_net.Fabric
module Borrow_state = Drust_ownership.Borrow_state
module Univ = Drust_util.Univ
module Metrics = Drust_obs.Metrics
module Span = Drust_obs.Span

type owner = {
  mutable g : Gaddr.t;
  size : int;
  borrow : Borrow_state.t;
  mutable box_node : int; (* node holding the owner box (the thread stack) *)
  mutable local_copy : Cache.copy option; (* extension field: cached copy *)
  mutable ubit : bool; (* extension field: color-updated bit *)
  mutable valid : bool;
  mutable children : owner list; (* TBox affinity children, in tie order *)
  mutable tied : bool; (* this owner is someone's affinity child *)
  mutable pinned : bool;
}

type imm = {
  i_g : Gaddr.t;
  i_size : int;
  i_group : int; (* batched fetch size: owner + affinity children *)
  i_borrow : Borrow_state.t;
  i_children : owner list;
  mutable i_copy : Cache.copy option;
  mutable i_live : bool;
}

type mut = {
  mutable m_g : Gaddr.t;
  m_size : int;
  m_owner : owner;
  mutable m_ubit : bool;
  mutable m_live : bool;
}

(* ------------------------------------------------------------------ *)
(* Per-cluster protocol state.

   Everything the protocol keeps per cluster — stat counters, op-latency
   histograms, ablation switches, the sanitizer probe, fault-tolerance
   listeners, and the owner registry — lives in ONE record under a
   single Env key, and the resolved record is cached on the Ctx.  Hot
   operations therefore read a field of an already-resolved pointer
   instead of hashing into the Env (and then into a string-keyed
   histogram table) on every access. *)

module Env = Drust_machine.Env

type stats = {
  moves : Metrics.counter;
  bumps : Metrics.counter;
  fetches : Metrics.counter;
}

(* ------------------------------------------------------------------ *)
(* Per-op-kind latency histograms (protocol.op_latency{op=...}).  The
   kind is the operation's *outcome* — which access path a read took,
   how a write changed the colored address — decided at the same branch
   points that emit the DSan probe events.  Buckets are finer than the
   registry default because local derefs cost tens of nanoseconds while
   a contended move can take milliseconds. *)

let op_latency_buckets =
  [| 1e-8; 2e-8; 5e-8; 1e-7; 2e-7; 5e-7; 1e-6; 2e-6; 5e-6; 1e-5; 2e-5; 5e-5;
     1e-4; 2e-4; 5e-4; 1e-3; 2e-3; 5e-3; 1e-2 |]

(* Outcome kinds as dense ints: indices into the histogram array and the
   values [Ctx.op_kind] carries while an operation is in flight.  Must
   stay in sync with [op_kind_names]. *)
let k_read_local = 0
let k_read_cached = 1
let k_read_fetch = 2
let k_read_remote = 3
let k_write_inplace = 4
let k_write_bump = 5
let k_write_move = 6
let k_transfer = 7
let k_drop = 8

let op_kind_names =
  [| "read_local"; "read_cached"; "read_fetch"; "read_remote";
     "write_inplace"; "write_bump"; "write_move"; "transfer"; "drop" |]

let op_latency_kinds = Array.to_list op_kind_names

let register_op_hist cluster kind =
  Metrics.histogram (Cluster.metrics cluster) ~buckets:op_latency_buckets
    ~labels:[ ("op", kind) ] ~unit_:"s" "protocol.op_latency"

(* ------------------------------------------------------------------ *)
(* Probe and write-kind types (defined before the state record that
   stores the installed probe; semantics documented at their section
   below and in the mli). *)

type access_path = Path_local | Path_cache of Gaddr.t | Path_fetch

type write_kind = W_bump | W_move | W_in_place

type probe_event =
  | Ev_create of { g : Gaddr.t; size : int }
  | Ev_read of { g : Gaddr.t; path : access_path }
  | Ev_write of {
      before : Gaddr.t;
      after : Gaddr.t;
      size : int;
      kind : write_kind;
    }
  | Ev_borrow_imm of { g : Gaddr.t }
  | Ev_return_imm of { g : Gaddr.t }
  | Ev_borrow_mut of { g : Gaddr.t }
  | Ev_return_mut of { g : Gaddr.t }
  | Ev_transfer of { g : Gaddr.t; to_node : int }
  | Ev_drop of { g : Gaddr.t }
  | Ev_app of { g : Gaddr.t; verb : string; tag : string }

(* Ablation switches (per cluster): disable the local-write
   optimizations to quantify their contribution. *)
type options = { mutable always_move : bool; mutable no_ubit : bool }

type pstate = {
  mutable ps_hists : Metrics.histogram array;
      (* one histogram per op kind, indexed by the [k_*] constants;
         [[||]] until the first measured operation registers them — the
         same lazy timing the old per-piece Env cells had, so the
         metrics registry keeps its registration (and report) order *)
  mutable ps_stats : stats option;
      (* counters, registered on first increment/read as before *)
  ps_options : options;
  mutable ps_probe : (Ctx.t -> probe_event -> unit) option;
  mutable ps_commit : (Ctx.t -> Gaddr.t -> int -> Univ.t -> unit) option;
  mutable ps_transfer : (Ctx.t -> Gaddr.t -> unit) option;
  mutable ps_registry : owner list;
}

let pstate_key : pstate Env.key = Env.key ~name:"protocol.state"

let fresh_pstate () =
  {
    ps_hists = [||];
    ps_stats = None;
    ps_options = { always_move = false; no_ubit = false };
    ps_probe = None;
    ps_commit = None;
    ps_transfer = None;
    ps_registry = [];
  }

let pstate_of_cluster cluster =
  Env.get (Cluster.env cluster) pstate_key ~init:fresh_pstate

(* Per-Ctx pointer cache: a Ctx is bound to one cluster for life, so the
   resolved pstate is stashed in the Ctx's [layer_cache] slot — encoded
   as an extensible-variant constructor, the same trick Env keys use —
   and every later access is a single constructor-tag match. *)
exception Pstate_cache of pstate

let pstate_of ctx =
  match ctx.Ctx.layer_cache with
  | Pstate_cache ps -> ps
  | _ ->
      let ps = pstate_of_cluster (Ctx.cluster ctx) in
      ctx.Ctx.layer_cache <- Pstate_cache ps;
      ps

let hists_of cluster ps =
  if Array.length ps.ps_hists = 0 then
    (* Register every kind eagerly so snapshots carry the same sample
       set on every cluster (mergeable) and the docs-catalogue check
       sees the name even on an idle cluster. *)
    ps.ps_hists <- Array.map (register_op_hist cluster) op_kind_names;
  ps.ps_hists

let stats_of_ps cluster ps =
  match ps.ps_stats with
  | Some s -> s
  | None ->
      (* Histograms register first, as the old stats_of_cluster did. *)
      ignore (hists_of cluster ps);
      let m = Cluster.metrics cluster in
      let s =
        {
          moves = Metrics.counter m ~unit_:"ops" "protocol.moves";
          bumps = Metrics.counter m ~unit_:"ops" "protocol.color_bumps";
          fetches = Metrics.counter m ~unit_:"ops" "protocol.fetches";
        }
      in
      ps.ps_stats <- Some s;
      s

let stats_of ctx = stats_of_ps (Ctx.cluster ctx) (pstate_of ctx)

(* Close one measured operation: classify the outcome, observe the
   latency, restore the context's saved measurement state.  Toplevel —
   not a closure — so the measurement wrapper allocates nothing per
   operation when tracing is off. *)
let finish_op ctx hists ~default ~saved_kind ~saved_span ~sp ~t0 ~p0 =
  let kind = if ctx.Ctx.op_kind < 0 then default else ctx.Ctx.op_kind in
  let t1 = Drust_sim.Engine.now (Ctx.engine ctx) in
  let pending =
    Params.cycles_to_seconds (Ctx.params ctx) (ctx.Ctx.pending_cycles -. p0)
  in
  let lat = t1 -. t0 +. pending in
  Metrics.observe (Array.unsafe_get hists kind) lat;
  (match sp with
  | Some s -> Span.finish (Cluster.spans (Ctx.cluster ctx)) s
  | None -> ());
  ctx.Ctx.current_span <- saved_span;
  ctx.Ctx.op_kind <- saved_kind

(* Wrap one protocol-level operation: always observe its end-to-end
   latency (elapsed virtual time plus compute charged but not yet
   flushed — both pure reads of existing state, so measurement never
   perturbs the run), and, when tracing is enabled, open a root span the
   operation's fabric verbs and core waits parent under.  [ctx.op_kind]
   starts unset (-1) and the branch that decides the outcome overwrites
   it; [default] covers operations with a single outcome. *)
let measure_op ctx ~default f =
  let cluster = Ctx.cluster ctx in
  let hists = hists_of cluster (pstate_of ctx) in
  let saved_kind = ctx.Ctx.op_kind in
  ctx.Ctx.op_kind <- -1;
  let t0 = Drust_sim.Engine.now (Ctx.engine ctx) in
  let p0 = ctx.Ctx.pending_cycles in
  let spans = Cluster.spans cluster in
  let saved_span = ctx.Ctx.current_span in
  let sp =
    if Span.is_enabled spans then begin
      let sp =
        Span.start spans ~track:ctx.Ctx.node ?parent:saved_span
          ~category:"protocol" op_kind_names.(default)
      in
      ctx.Ctx.current_span <- Some sp;
      Some sp
    end
    else None
  in
  match f () with
  | v ->
      finish_op ctx hists ~default ~saved_kind ~saved_span ~sp ~t0 ~p0;
      v
  | exception e ->
      finish_op ctx hists ~default ~saved_kind ~saved_span ~sp ~t0 ~p0;
      raise e

let tag ctx kind = ctx.Ctx.op_kind <- kind

(* Weak variant: only classifies when no stronger branch did already
   (e.g. a pinned read-through inside an op the claim already tagged). *)
let tag_weak ctx kind = if ctx.Ctx.op_kind < 0 then ctx.Ctx.op_kind <- kind

(* Instant span mark on the acting node's timeline; argument lists are
   only built when tracing is live. *)
let proto_mark ctx name ~bytes =
  let sp = Cluster.spans (Ctx.cluster ctx) in
  if Span.is_enabled sp then
    Span.instant sp ~track:ctx.Ctx.node ~category:"protocol"
      ~args:[ ("bytes", string_of_int bytes) ]
      name

(* Registry of live owners, per cluster — powers the executable audit of
   the paper's Appendix C invariants. *)
let register_owner ctx o =
  let ps = pstate_of ctx in
  ps.ps_registry <- o :: ps.ps_registry

let prune_registry cluster =
  let ps = pstate_of_cluster cluster in
  ps.ps_registry <- List.filter (fun o -> o.valid) ps.ps_registry

let moves ctx = Metrics.value (stats_of ctx).moves
let color_bumps ctx = Metrics.value (stats_of ctx).bumps
let fetches ctx = Metrics.value (stats_of ctx).fetches

let reset_protocol_stats ctx =
  let s = stats_of ctx in
  Metrics.reset_counter s.moves;
  Metrics.reset_counter s.bumps;
  Metrics.reset_counter s.fetches

(* Listeners installed by the fault-tolerance layer. *)
let set_commit_listener cluster f = (pstate_of_cluster cluster).ps_commit <- f
let set_transfer_listener cluster f =
  (pstate_of_cluster cluster).ps_transfer <- f

let notify_commit ctx g size =
  match (pstate_of ctx).ps_commit with
  | None -> ()
  | Some f ->
      let cluster = Ctx.cluster ctx in
      if Cluster.heap_mem cluster g then
        f ctx (Gaddr.clear_color g) size
          (Cluster.heap_read cluster g).Drust_memory.Partition.value

let notify_transfer ctx g =
  match (pstate_of ctx).ps_transfer with
  | None -> ()
  | Some f -> f ctx (Gaddr.clear_color g)

(* ------------------------------------------------------------------ *)
(* Shadow-state probe (the DSan sanitizer, lib/check): one event per
   protocol transition, emitted synchronously at the state change.  Each
   event is allocated only when a probe is installed, and a probe must
   never touch the engine or any RNG — sanitized runs stay bit-identical.

   Emission points are chosen so that the address an event carries and
   the shadow state a checker keeps can never be separated by a scheduler
   yield: read events fire at the instant the access path is decided,
   write events right after the new address is published.

   The event types are declared next to the [pstate] record above. *)

let set_probe cluster f = (pstate_of_cluster cluster).ps_probe <- f

let[@inline] with_probe ctx k =
  match (pstate_of ctx).ps_probe with None -> () | Some f -> k f

(* How a write changed the colored address: same address (U-bit elision),
   color bump in place, or relocation. *)
let write_kind ~before ~after =
  if Gaddr.equal before after then W_in_place
  else if Gaddr.equal (Gaddr.clear_color before) (Gaddr.clear_color after) then
    W_bump
  else W_move

let note_app ctx ~g ~verb ~tag =
  with_probe ctx (fun f -> f ctx (Ev_app { g; verb; tag }))

let tag_of_write_kind = function
  | W_in_place -> k_write_inplace
  | W_bump -> k_write_bump
  | W_move -> k_write_move

(* ------------------------------------------------------------------ *)
(* Ablation switches (declared on [pstate] above). *)

let options_of_cluster cluster = (pstate_of_cluster cluster).ps_options
let options_of ctx = (pstate_of ctx).ps_options

let set_always_move cluster v = (options_of_cluster cluster).always_move <- v
let set_no_ubit cluster v = (options_of_cluster cluster).no_ubit <- v

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)

let serving ctx g = Cluster.serving_node (Ctx.cluster ctx) (Gaddr.node_of g)

let is_local ctx g = serving ctx g = ctx.Ctx.node

(* ------------------------------------------------------------------ *)
(* Flight recording: every op outcome also lands in the cluster's
   always-on black box, at the same branch points that set the op tag
   and emit the DSan probe event.  Recording is pure array stores into
   preallocated rings — no engine or RNG access, no allocation — so
   instrumented runs stay bit-identical (docs/FORENSICS.md).

   Field layout per kind (must match [Flight.pp_event]):
     reads           a=physical addr  b=serving node   c=color
     write_inplace   a=physical addr                   c=color  d=home
     write_bump/move a=phys after     b=phys before    c=color  d=home
     transfer        a=physical addr  b=destination node
     drop            a=physical addr  b=serving node
     create          a=physical addr  b=home node      c=color  d=size *)

module Flight = Drust_obs.Flight

let[@inline] fr ctx ~kind ~g ~b ~d =
  Flight.record
    (Cluster.flight (Ctx.cluster ctx))
    ~node:ctx.Ctx.node
    ~time:(Drust_sim.Engine.now (Ctx.engine ctx))
    ~kind
    ~a:(Gaddr.to_int (Gaddr.clear_color g))
    ~b ~c:(Gaddr.color_of g) ~d

let[@inline] fr_read ctx ~kind ~g = fr ctx ~kind ~g ~b:(serving ctx g) ~d:0

(* A write's flight kind mirrors its op tag; bump/move carry the old
   physical address in [b] so the object slice follows relocations. *)
let fr_write ctx ~before ~after ~kind =
  let code =
    match kind with
    | W_in_place -> Flight.k_write_inplace
    | W_bump -> Flight.k_write_bump
    | W_move -> Flight.k_write_move
  in
  fr ctx ~kind:code ~g:after
    ~b:(if kind = W_in_place then 0 else Gaddr.to_int (Gaddr.clear_color before))
    ~d:(Gaddr.node_of after)

let check_cycles ctx = (Ctx.params ctx).Params.runtime_check_cycles
let local_cycles ctx = (Ctx.params ctx).Params.local_deref_cycles
let cache_cycles ctx = (Ctx.params ctx).Params.cache_hit_cycles

let charge_local_deref ctx =
  Ctx.charge_cycles ctx (check_cycles ctx +. local_cycles ctx)

let charge_cache_hit ctx =
  Ctx.charge_cycles ctx (check_cycles ctx +. cache_cycles ctx)

let cache_of ctx = (Ctx.current_node ctx).Cluster.cache

let assert_valid o context =
  if not o.valid then
    raise
      (Borrow_state.Violation
         { kind = Borrow_state.Use_after_death; state = Borrow_state.Dead; context })

let assert_live live context =
  if not live then
    raise
      (Borrow_state.Violation
         { kind = Borrow_state.Use_after_death; state = Borrow_state.Dead; context })

(* Transitive affinity group rooted at [o], including [o] itself. *)
let rec group o = o :: List.concat_map group o.children

let group_size o = List.fold_left (fun acc m -> acc + m.size) 0 (group o)

(* Cluster-wide invalidation of cached copies for a physical address that
   is being deallocated or moved away (App. B.4).  In the real system this
   is asynchronous and the allocator defers reuse of the address until the
   invalidations are acknowledged; here the invalidation is state-only
   (the paper batches these off the critical path, so no blocking cost is
   charged) and runs before the address is freed, which models exactly
   that reuse barrier. *)
let invalidate_all_caches cluster g =
  Array.iter
    (fun n -> Cache.invalidate_physical n.Cluster.cache g)
    (Cluster.nodes cluster)

(* Request the old home to deallocate a moved object: a small async
   message off the critical path (Alg. 1 step 3).  Caches are invalidated
   before the address becomes reusable. *)
let async_dealloc ctx g =
  let cluster = Ctx.cluster ctx in
  let target = serving ctx g in
  Fabric.send_async ?parent:ctx.Ctx.current_span (Ctx.fabric ctx)
    ~from:ctx.Ctx.node ~target ~bytes:16
    (fun () ->
      invalidate_all_caches cluster g;
      if Cluster.heap_mem cluster g then Cluster.heap_free cluster g)

(* ------------------------------------------------------------------ *)
(* Allocation                                                          *)

let alloc_cycles = 90.0

(* Under memory pressure the allocator first reclaims unreferenced cache
   copies (the lazy eviction of S4.2.1); only if the partition is still
   tight does it fall back to the most vacant server. *)
let pick_alloc_node ctx ~size =
  let cluster = Ctx.cluster ctx in
  let node = Cluster.node cluster ctx.Ctx.node in
  let part = node.Cluster.partition in
  (* Cached copies live in the regular heap partition (S4.2.1), so they
     count against its capacity. *)
  let headroom () =
    Partition.used_bytes part + Cache.used_bytes node.Cluster.cache + size
    < Float.to_int (0.95 *. Float.of_int (Partition.capacity_bytes part))
  in
  if headroom () then ctx.Ctx.node
  else begin
    let reclaimed = Cache.evict_unreferenced node.Cluster.cache in
    Ctx.charge_cycles ctx (300.0 +. (0.02 *. Float.of_int reclaimed));
    if headroom () then ctx.Ctx.node
    else begin
      (* Ask the global controller (launch node) for the most vacant
         server (S4.2.1). *)
      if ctx.Ctx.node <> 0 then begin
        Ctx.flush ctx;
        Fabric.rpc ?parent:ctx.Ctx.current_span (Ctx.fabric ctx)
          ~from:ctx.Ctx.node ~target:0 ~req_bytes:32 ~resp_bytes:16
          (fun () -> ())
      end;
      Cluster.most_vacant_node cluster
    end
  end

let create_on ctx ~node ~size v =
  Ctx.charge_cycles ctx alloc_cycles;
  let cluster = Ctx.cluster ctx in
  if node <> ctx.Ctx.node then
    (* Remote allocation: the request is forwarded to the target server
       through the communication layer (§4.2.1). *)
    Ctx.flush ctx;
  let g =
    if node <> ctx.Ctx.node then
      Fabric.rpc ?parent:ctx.Ctx.current_span (Ctx.fabric ctx)
        ~from:ctx.Ctx.node ~target:node ~req_bytes:32 ~resp_bytes:16
        (fun () -> Cluster.heap_alloc cluster ~node ~size v)
    else begin
      Ctx.note_local_alloc ctx ~bytes:size;
      Cluster.heap_alloc cluster ~node ~size v
    end
  in
  let o =
    {
      g;
      size;
      borrow = Borrow_state.create ();
      box_node = ctx.Ctx.node;
      local_copy = None;
      ubit = false;
      valid = true;
      children = [];
      tied = false;
      pinned = false;
    }
  in
  register_owner ctx o;
  with_probe ctx (fun f -> f ctx (Ev_create { g; size }));
  fr ctx ~kind:Flight.k_create ~g ~b:(Gaddr.node_of g) ~d:size;
  o

let create ctx ~size v = create_on ctx ~node:(pick_alloc_node ctx ~size) ~size v

let gaddr o = o.g
let size o = o.size
let is_valid o = o.valid
let color o = Gaddr.color_of o.g
let ubit o = o.ubit
let imm_gaddr r = r.i_g
let mut_gaddr m = m.m_g

(* ------------------------------------------------------------------ *)
(* Shared fetch path: read a remote object (and its affinity group)    *)
(* into the local cache under its colored address.                     *)

let fetch_into_cache ctx ~g ~size ~group_bytes ~children =
  let cluster = Ctx.cluster ctx in
  Metrics.incr (stats_of ctx).fetches;
  proto_mark ctx "FETCH" ~bytes:group_bytes;
  let target = serving ctx g in
  Ctx.note_remote_access ctx ~target;
  Ctx.flush ctx;
  Fabric.rdma_read ?parent:ctx.Ctx.current_span (Ctx.fabric ctx)
    ~from:ctx.Ctx.node ~target ~bytes:group_bytes;
  let entry = Cluster.heap_read cluster g in
  let copy = Cache.insert (cache_of ctx) g ~size entry.Partition.value in
  (* The batched verb carried the children too: seed the local cache so
     their dereferences are local (the TBox guarantee, §4.1.3). *)
  List.iter
    (fun child ->
      List.iter
        (fun member ->
          if Cluster.heap_mem cluster member.g then begin
            let e = Cluster.heap_read cluster member.g in
            let c =
              Cache.insert (cache_of ctx) member.g ~size:member.size
                e.Partition.value
            in
            (* Nobody pins the prefetched copy yet. *)
            Cache.release (cache_of ctx) c
          end)
        (group child))
    children;
  copy

(* ------------------------------------------------------------------ *)
(* Immutable borrows (Alg. 4)                                          *)

let borrow_imm ctx o =
  assert_valid o "Protocol.borrow_imm";
  Borrow_state.borrow_imm o.borrow ~context:"Protocol.borrow_imm";
  (* Creating an immutable reference resets the owner's U bit so the next
     write epoch is guaranteed to change the colored address (App. B.4). *)
  o.ubit <- false;
  with_probe ctx (fun f -> f ctx (Ev_borrow_imm { g = o.g }));
  Ctx.charge_cycles ctx 12.0;
  {
    i_g = o.g;
    i_size = o.size;
    i_group = group_size o;
    i_borrow = o.borrow;
    i_children = o.children;
    i_copy = None;
    i_live = true;
  }

let clone_imm ctx r =
  assert_live r.i_live "Protocol.clone_imm";
  Borrow_state.borrow_imm r.i_borrow ~context:"Protocol.clone_imm";
  with_probe ctx (fun f -> f ctx (Ev_borrow_imm { g = r.i_g }));
  Ctx.charge_cycles ctx 12.0;
  (* Only the global-address field is duplicated; the local-copy field of
     the clone starts null (App. D.2). *)
  { r with i_copy = None }

let imm_deref_inner ctx r =
  assert_live r.i_live "Protocol.imm_deref";
  let cluster = Ctx.cluster ctx in
  if is_local ctx r.i_g then begin
    tag ctx k_read_local;
    fr_read ctx ~kind:Flight.k_read_local ~g:r.i_g;
    with_probe ctx (fun f -> f ctx (Ev_read { g = r.i_g; path = Path_local }));
    charge_local_deref ctx;
    (Cluster.heap_read cluster r.i_g).Partition.value
  end
  else begin
    match r.i_copy with
    | Some copy when Gaddr.equal copy.Cache.key r.i_g && not copy.Cache.dead ->
        tag ctx k_read_cached;
        fr_read ctx ~kind:Flight.k_read_cached ~g:r.i_g;
        with_probe ctx (fun f ->
            f ctx (Ev_read { g = r.i_g; path = Path_cache copy.Cache.key }));
        charge_cache_hit ctx;
        copy.Cache.value
    | _ -> (
        let cache = cache_of ctx in
        charge_cache_hit ctx;
        match Cache.lookup cache r.i_g with
        | Some copy ->
            tag ctx k_read_cached;
            fr_read ctx ~kind:Flight.k_read_cached ~g:r.i_g;
            with_probe ctx (fun f ->
                f ctx (Ev_read { g = r.i_g; path = Path_cache copy.Cache.key }));
            Cache.retain copy;
            r.i_copy <- Some copy;
            copy.Cache.value
        | None ->
            tag ctx k_read_fetch;
            fr_read ctx ~kind:Flight.k_read_fetch ~g:r.i_g;
            let copy =
              fetch_into_cache ctx ~g:r.i_g ~size:r.i_size
                ~group_bytes:r.i_group ~children:r.i_children
            in
            with_probe ctx (fun f ->
                f ctx (Ev_read { g = r.i_g; path = Path_fetch }));
            r.i_copy <- Some copy;
            copy.Cache.value)
  end

let imm_deref ctx r =
  measure_op ctx ~default:k_read_local (fun () -> imm_deref_inner ctx r)

let drop_imm ctx r =
  assert_live r.i_live "Protocol.drop_imm";
  r.i_live <- false;
  (match r.i_copy with
  | Some copy -> Cache.release (cache_of ctx) copy
  | None -> ());
  r.i_copy <- None;
  Ctx.charge_cycles ctx 10.0;
  Borrow_state.return_imm r.i_borrow ~context:"Protocol.drop_imm";
  with_probe ctx (fun f -> f ctx (Ev_return_imm { g = r.i_g }))

(* ------------------------------------------------------------------ *)
(* Move machinery                                                      *)

(* Move the object at [g] (size [size]) into the local partition,
   returning the new color-0 address.  Children of an affinity group move
   along in the same batched verb. *)
let move_local ctx ~g ~size ~children =
  let cluster = Ctx.cluster ctx in
  Metrics.incr (stats_of ctx).moves;
  let group_members = List.concat_map group children in
  let batch = size + List.fold_left (fun a m -> a + m.size) 0 group_members in
  proto_mark ctx "MOVE" ~bytes:batch;
  let target = serving ctx g in
  Ctx.note_remote_access ctx ~target;
  Ctx.flush ctx;
  if target <> ctx.Ctx.node then
    Fabric.rdma_read ?parent:ctx.Ctx.current_span (Ctx.fabric ctx)
      ~from:ctx.Ctx.node ~target ~bytes:batch;
  let entry = Cluster.heap_read cluster g in
  let fresh =
    Cluster.heap_alloc cluster ~node:ctx.Ctx.node ~size entry.Partition.value
  in
  Ctx.note_local_alloc ctx ~bytes:size;
  async_dealloc ctx g;
  (* Relocate affinity children next to the new home. *)
  List.iter
    (fun member ->
      if Cluster.heap_mem cluster member.g then begin
        let e = Cluster.heap_read cluster member.g in
        let child_fresh =
          Cluster.heap_alloc cluster ~node:ctx.Ctx.node ~size:member.size
            e.Partition.value
        in
        async_dealloc ctx member.g;
        let old = member.g in
        member.g <- child_fresh;
        member.ubit <- false;
        with_probe ctx (fun f ->
            f ctx
              (Ev_write
                 {
                   before = old;
                   after = child_fresh;
                   size = member.size;
                   kind = W_move;
                 }))
      end)
    group_members;
  fresh

(* Bump the color of a locally-written object; on overflow (or under the
   always-move ablation), move it to a fresh local address with color 0
   (the move-on-overflow strategy). *)
let bump_or_move ctx ~g ~size =
  let s = stats_of ctx in
  let forced_move =
    if (options_of ctx).always_move then Some (Gaddr.Color_overflow g) else None
  in
  match
    match forced_move with Some e -> raise e | None -> Gaddr.bump_color g
  with
  | g' ->
      Metrics.incr s.bumps;
      proto_mark ctx "BUMP" ~bytes:size;
      g'
  | exception Gaddr.Color_overflow _ ->
      let cluster = Ctx.cluster ctx in
      Metrics.incr s.moves;
      proto_mark ctx "MOVE(overflow)" ~bytes:size;
      let entry = Cluster.heap_read cluster g in
      let fresh =
        Cluster.heap_alloc cluster ~node:ctx.Ctx.node ~size entry.Partition.value
      in
      invalidate_all_caches cluster g;
      Cluster.heap_free cluster g;
      (* Allocation bookkeeping plus the local memcpy of the object. *)
      Ctx.charge_cycles ctx (200.0 +. (0.3 *. Float.of_int size));
      fresh

(* ------------------------------------------------------------------ *)
(* Mutable borrows (Alg. 1/6)                                          *)

let borrow_mut ctx o =
  assert_valid o "Protocol.borrow_mut";
  Borrow_state.borrow_mut o.borrow ~context:"Protocol.borrow_mut";
  (* The owner's cached-copy field cannot stay valid across a write epoch:
     the object is about to change address or color, and the copy's slot
     could even be recycled for a different object after the move.  Unpin
     it now — the owner cannot read while the mutable borrow is live. *)
  (match o.local_copy with
  | Some copy -> Cache.release (cache_of ctx) copy
  | None -> ());
  o.local_copy <- None;
  with_probe ctx (fun f -> f ctx (Ev_borrow_mut { g = o.g }));
  Ctx.charge_cycles ctx 12.0;
  { m_g = o.g; m_size = o.size; m_owner = o; m_ubit = false; m_live = true }

(* DerefMut (Alg. 6): claim exclusive local access, updating color or
   moving as needed.  Returns unit; the caller then reads/writes the heap
   slot directly. *)
let mut_claim ctx m ~for_write =
  let o = m.m_owner in
  let before = m.m_g in
  (if is_local ctx m.m_g then begin
     if not for_write then begin
       tag ctx k_read_local;
       fr_read ctx ~kind:Flight.k_read_local ~g:m.m_g
     end;
     charge_local_deref ctx;
     if for_write && ((not m.m_ubit) || (options_of ctx).no_ubit) then
       if o.pinned then begin
         (* Pinned objects keep their address; the color still changes via
            the owner struct on drop (App. D.1). *)
         m.m_ubit <- true;
         m.m_g <- bump_or_move ctx ~g:m.m_g ~size:m.m_size
       end
       else begin
         m.m_ubit <- true;
         m.m_g <- bump_or_move ctx ~g:m.m_g ~size:m.m_size
       end
   end
   else if o.pinned then begin
     (* Copy-and-write-back path (App. D.1): the object cannot move, so
        mutable access works on a local scratch copy; every write is
        written through to the pinned home synchronously. *)
     charge_local_deref ctx;
     if for_write && ((not m.m_ubit) || (options_of ctx).no_ubit) then begin
       m.m_ubit <- true;
       Metrics.incr (stats_of ctx).bumps;
       proto_mark ctx "BUMP" ~bytes:m.m_size;
       m.m_g <-
         (try Gaddr.bump_color m.m_g
          with Gaddr.Color_overflow g -> Gaddr.clear_color g)
     end
   end
   else begin
     m.m_ubit <- true;
     let fresh = move_local ctx ~g:m.m_g ~size:m.m_size ~children:o.children in
     m.m_g <- fresh
   end);
  (* A write claim always announces its epoch (even U-bit-elided ones, so
     a checker can prove no live copy is reachable under the unchanged
     colored address); a read claim only reports relocations. *)
  if for_write || not (Gaddr.equal before m.m_g) then begin
    let kind = write_kind ~before ~after:m.m_g in
    tag ctx (tag_of_write_kind kind);
    fr_write ctx ~before ~after:m.m_g ~kind;
    with_probe ctx (fun f ->
        f ctx
          (Ev_write { before; after = m.m_g; size = m.m_size; kind }))
  end

let heap_slot_read ctx m =
  let cluster = Ctx.cluster ctx in
  if is_local ctx m.m_g then (Cluster.heap_read cluster m.m_g).Partition.value
  else begin
    (* Pinned remote object: read through (one-sided READ). *)
    tag_weak ctx k_read_remote;
    fr_read ctx ~kind:Flight.k_read_remote ~g:m.m_g;
    let target = serving ctx m.m_g in
    Ctx.flush ctx;
    Fabric.rdma_read ?parent:ctx.Ctx.current_span (Ctx.fabric ctx)
      ~from:ctx.Ctx.node ~target ~bytes:m.m_size;
    (Cluster.heap_read cluster m.m_g).Partition.value
  end

let heap_slot_write ctx m v =
  let cluster = Ctx.cluster ctx in
  if is_local ctx m.m_g then Cluster.heap_write cluster m.m_g v
  else begin
    let target = serving ctx m.m_g in
    Ctx.flush ctx;
    Fabric.rdma_write ?parent:ctx.Ctx.current_span (Ctx.fabric ctx)
      ~from:ctx.Ctx.node ~target ~bytes:m.m_size;
    Cluster.heap_write cluster m.m_g v
  end

let mut_read ctx m =
  measure_op ctx ~default:k_read_local (fun () ->
      assert_live m.m_live "Protocol.mut_read";
      mut_claim ctx m ~for_write:false;
      heap_slot_read ctx m)

let mut_write ctx m v =
  measure_op ctx ~default:k_write_inplace (fun () ->
      assert_live m.m_live "Protocol.mut_write";
      mut_claim ctx m ~for_write:true;
      heap_slot_write ctx m v)

let mut_modify ctx m f =
  measure_op ctx ~default:k_write_inplace (fun () ->
      assert_live m.m_live "Protocol.mut_modify";
      mut_claim ctx m ~for_write:true;
      let v = heap_slot_read ctx m in
      heap_slot_write ctx m (f v))

let drop_mut ctx m =
  assert_live m.m_live "Protocol.drop_mut";
  m.m_live <- false;
  let o = m.m_owner in
  (* Synchronously write the colored global address back into the owner
     box (Alg. 6 DropMutRef); 8-byte one-sided WRITE when the box lives on
     another server. *)
  if o.box_node <> ctx.Ctx.node then begin
    Ctx.flush ctx;
    Fabric.rdma_write ?parent:ctx.Ctx.current_span (Ctx.fabric ctx)
      ~from:ctx.Ctx.node ~target:o.box_node ~bytes:8
  end
  else Ctx.charge_cycles ctx 8.0;
  o.g <- m.m_g;
  o.ubit <- o.ubit || m.m_ubit;
  Borrow_state.return_mut o.borrow ~context:"Protocol.drop_mut";
  with_probe ctx (fun f -> f ctx (Ev_return_mut { g = m.m_g }));
  if m.m_ubit then notify_commit ctx m.m_g m.m_size

(* ------------------------------------------------------------------ *)
(* Owner access without borrow (Alg. 7/8): a direct access behaves as a
   borrow-and-return pair.                                             *)

let owner_read_inner ctx o =
  assert_valid o "Protocol.owner_read";
  Borrow_state.assert_owner_readable o.borrow ~context:"Protocol.owner_read";
  let cluster = Ctx.cluster ctx in
  if is_local ctx o.g then begin
    tag ctx k_read_local;
    fr_read ctx ~kind:Flight.k_read_local ~g:o.g;
    with_probe ctx (fun f -> f ctx (Ev_read { g = o.g; path = Path_local }));
    charge_local_deref ctx;
    (Cluster.heap_read cluster o.g).Partition.value
  end
  else begin
    (* A remote read of a pinned object observes the current write epoch:
       reset the U bit so the next write-through is forced to bump the
       color.  Without this, an in-place write-through would leave the
       copy this read produces reachable under a still-current colored
       address — a lost-update visible to every later read (App. D.1). *)
    if o.pinned then o.ubit <- false;
    match o.local_copy with
    | Some copy when Gaddr.equal copy.Cache.key o.g && not copy.Cache.dead ->
        tag ctx k_read_cached;
        fr_read ctx ~kind:Flight.k_read_cached ~g:o.g;
        with_probe ctx (fun f ->
            f ctx (Ev_read { g = o.g; path = Path_cache copy.Cache.key }));
        charge_cache_hit ctx;
        copy.Cache.value
    | stale -> (
        (* Release a copy cached under an outdated color. *)
        (match stale with
        | Some old -> Cache.release (cache_of ctx) old
        | None -> ());
        o.local_copy <- None;
        let cache = cache_of ctx in
        charge_cache_hit ctx;
        match Cache.lookup cache o.g with
        | Some copy ->
            tag ctx k_read_cached;
            fr_read ctx ~kind:Flight.k_read_cached ~g:o.g;
            with_probe ctx (fun f ->
                f ctx (Ev_read { g = o.g; path = Path_cache copy.Cache.key }));
            Cache.retain copy;
            o.local_copy <- Some copy;
            copy.Cache.value
        | None ->
            tag ctx k_read_fetch;
            fr_read ctx ~kind:Flight.k_read_fetch ~g:o.g;
            let copy =
              fetch_into_cache ctx ~g:o.g ~size:o.size
                ~group_bytes:(group_size o) ~children:o.children
            in
            with_probe ctx (fun f ->
                f ctx (Ev_read { g = o.g; path = Path_fetch }));
            o.local_copy <- Some copy;
            copy.Cache.value)
  end

let owner_read ctx o =
  measure_op ctx ~default:k_read_local (fun () -> owner_read_inner ctx o)

let owner_claim_mut ctx o =
  let cluster = Ctx.cluster ctx in
  if is_local ctx o.g then begin
    charge_local_deref ctx;
    if (not o.ubit) || (options_of ctx).no_ubit then begin
      o.ubit <- true;
      o.g <- bump_or_move ctx ~g:o.g ~size:o.size
    end
  end
  else if o.pinned then charge_local_deref ctx
  else begin
    (* Alg. 8 remote path: reuse a local cached copy as the new home when
       one exists, otherwise move the object over the wire. *)
    (match o.local_copy with
    | Some copy when Gaddr.equal copy.Cache.key o.g && not copy.Cache.dead ->
        let fresh =
          Cluster.heap_alloc cluster ~node:ctx.Ctx.node ~size:o.size
            copy.Cache.value
        in
        Cache.release (cache_of ctx) copy;
        o.local_copy <- None;
        async_dealloc ctx o.g;
        (* Affinity children still need to come over. *)
        List.iter
          (fun member ->
            if Cluster.heap_mem cluster member.g then begin
              let e = Cluster.heap_read cluster member.g in
              let child_fresh =
                Cluster.heap_alloc cluster ~node:ctx.Ctx.node ~size:member.size
                  e.Partition.value
              in
              async_dealloc ctx member.g;
              let old = member.g in
              member.g <- child_fresh;
              member.ubit <- false;
              with_probe ctx (fun f ->
                  f ctx
                    (Ev_write
                       {
                         before = old;
                         after = child_fresh;
                         size = member.size;
                         kind = W_move;
                       }))
            end)
          (List.concat_map group o.children);
        Metrics.incr (stats_of ctx).moves;
        proto_mark ctx "MOVE(reuse-copy)" ~bytes:o.size;
        o.g <- fresh
    | stale ->
        (match stale with
        | Some old -> Cache.release (cache_of ctx) old
        | None -> ());
        o.local_copy <- None;
        o.g <- move_local ctx ~g:o.g ~size:o.size ~children:o.children);
    o.ubit <- true
  end

(* Close a pinned write-through epoch: publish a fresh color on the owner
   box so every copy fetched under the old color becomes unreachable
   (App. D.1).  This runs {e after} the written value has landed at the
   pinned home — publishing the color first would open a window where a
   concurrent fetch caches the pre-write value under the new, still-
   current color, a permanently reachable stale copy. *)
let pinned_epoch_bump ctx o =
  if (not o.ubit) || (options_of ctx).no_ubit then begin
    o.ubit <- true;
    Metrics.incr (stats_of ctx).bumps;
    proto_mark ctx "BUMP" ~bytes:o.size;
    o.g <-
      (try Gaddr.bump_color o.g
       with Gaddr.Color_overflow g -> Gaddr.clear_color g)
  end

let owner_write_inner ctx o v =
  assert_valid o "Protocol.owner_write";
  Borrow_state.assert_owner_usable o.borrow ~context:"Protocol.owner_write";
  let before = o.g in
  owner_claim_mut ctx o;
  if is_local ctx o.g then Cluster.heap_write (Ctx.cluster ctx) o.g v
  else begin
    (* Pinned remote object: write through, then close the epoch. *)
    let target = serving ctx o.g in
    Ctx.flush ctx;
    Fabric.rdma_write ?parent:ctx.Ctx.current_span (Ctx.fabric ctx)
      ~from:ctx.Ctx.node ~target ~bytes:o.size;
    Cluster.heap_write (Ctx.cluster ctx) o.g v;
    pinned_epoch_bump ctx o
  end;
  let kind = write_kind ~before ~after:o.g in
  tag ctx (tag_of_write_kind kind);
  fr_write ctx ~before ~after:o.g ~kind;
  with_probe ctx (fun f ->
      f ctx (Ev_write { before; after = o.g; size = o.size; kind }));
  notify_commit ctx o.g o.size

let owner_write ctx o v =
  measure_op ctx ~default:k_write_inplace (fun () -> owner_write_inner ctx o v)

let owner_modify_inner ctx o f =
  assert_valid o "Protocol.owner_modify";
  Borrow_state.assert_owner_usable o.borrow ~context:"Protocol.owner_modify";
  let before = o.g in
  owner_claim_mut ctx o;
  let cluster = Ctx.cluster ctx in
  if is_local ctx o.g then
    Cluster.heap_write cluster o.g
      (f (Cluster.heap_read cluster o.g).Partition.value)
  else begin
    let target = serving ctx o.g in
    Ctx.flush ctx;
    Fabric.rdma_read ?parent:ctx.Ctx.current_span (Ctx.fabric ctx)
      ~from:ctx.Ctx.node ~target ~bytes:o.size;
    let v = f (Cluster.heap_read cluster o.g).Partition.value in
    Fabric.rdma_write ?parent:ctx.Ctx.current_span (Ctx.fabric ctx)
      ~from:ctx.Ctx.node ~target ~bytes:o.size;
    Cluster.heap_write cluster o.g v;
    pinned_epoch_bump ctx o
  end;
  let kind = write_kind ~before ~after:o.g in
  tag ctx (tag_of_write_kind kind);
  fr_write ctx ~before ~after:o.g ~kind;
  with_probe ctx (fun f ->
      f ctx (Ev_write { before; after = o.g; size = o.size; kind }));
  notify_commit ctx o.g o.size

let owner_modify ctx o f =
  measure_op ctx ~default:k_write_inplace (fun () -> owner_modify_inner ctx o f)

(* ------------------------------------------------------------------ *)
(* Ownership transfer, deallocation                                    *)

let transfer_inner ctx o ~to_node =
  assert_valid o "Protocol.transfer";
  Borrow_state.transfer o.borrow ~context:"Protocol.transfer";
  (* Evict this node's cached copy to avoid cache leakage (§4.1.1,
     App. D.2), then re-home the box.  Only the pointer ships; the heap
     object stays where it is. *)
  (match o.local_copy with
  | Some copy ->
      Cache.release (cache_of ctx) copy;
      Cache.invalidate_physical (cache_of ctx) copy.Cache.key
  | None -> ());
  o.local_copy <- None;
  o.box_node <- to_node;
  List.iter (fun child -> child.box_node <- to_node) (List.concat_map group o.children);
  Ctx.charge_cycles ctx 20.0;
  with_probe ctx (fun f -> f ctx (Ev_transfer { g = o.g; to_node }));
  fr ctx ~kind:Flight.k_transfer ~g:o.g ~b:to_node ~d:0;
  notify_transfer ctx o.g

let transfer ctx o ~to_node =
  measure_op ctx ~default:k_transfer (fun () -> transfer_inner ctx o ~to_node)

let rec drop_owner_inner ctx o =
  assert_valid o "Protocol.drop_owner";
  Borrow_state.kill o.borrow ~context:"Protocol.drop_owner";
  o.valid <- false;
  with_probe ctx (fun f -> f ctx (Ev_drop { g = o.g }));
  fr ctx ~kind:Flight.k_drop ~g:o.g ~b:(serving ctx o.g) ~d:0;
  (match o.local_copy with
  | Some copy -> Cache.release (cache_of ctx) copy
  | None -> ());
  o.local_copy <- None;
  (* Drop every owned child first, then the object itself. *)
  List.iter
    (fun child -> if child.valid then drop_owner_inner ctx child)
    o.children;
  o.children <- [];
  let cluster = Ctx.cluster ctx in
  let target = serving ctx o.g in
  if target = ctx.Ctx.node then begin
    Ctx.charge_cycles ctx 60.0;
    invalidate_all_caches cluster o.g;
    if Cluster.heap_mem cluster o.g then Cluster.heap_free cluster o.g
  end
  else async_dealloc ctx o.g

let drop_owner ctx o =
  measure_op ctx ~default:k_drop (fun () -> drop_owner_inner ctx o)

(* ------------------------------------------------------------------ *)
(* Affinity (TBox)                                                     *)

let rec reaches o target =
  ((o == target)
  [@dlint.allow
    "determinism: identity test on unique mutable object records — affinity \
     cycles are about this object, not a structural twin"])
  || List.exists (fun c -> reaches c target) o.children

let tie ctx ~parent ~child =
  assert_valid parent "Protocol.tie";
  assert_valid child "Protocol.tie";
  if child.tied then invalid_arg "Protocol.tie: child already tied";
  if reaches child parent then invalid_arg "Protocol.tie: affinity cycle";
  if child.pinned then invalid_arg "Protocol.tie: child is pinned";
  child.tied <- true;
  parent.children <- parent.children @ [ child ];
  (* Enforce co-location at tie time: bring the child next to the parent
     if they currently live on different servers. *)
  let cluster = Ctx.cluster ctx in
  let parent_home = serving ctx parent.g in
  if serving ctx child.g <> parent_home then begin
    let entry = Cluster.heap_read cluster child.g in
    let fresh =
      Cluster.heap_alloc cluster ~node:parent_home ~size:child.size
        entry.Partition.value
    in
    if serving ctx child.g <> ctx.Ctx.node || parent_home <> ctx.Ctx.node then begin
      Ctx.flush ctx;
      Fabric.rdma_write ?parent:ctx.Ctx.current_span (Ctx.fabric ctx)
        ~from:ctx.Ctx.node ~target:parent_home ~bytes:child.size
    end;
    async_dealloc ctx child.g;
    let old = child.g in
    child.g <- fresh;
    with_probe ctx (fun f ->
        f ctx
          (Ev_write
             { before = old; after = fresh; size = child.size; kind = W_move }))
  end

let is_pinned o = o.pinned

let pin ctx o =
  assert_valid o "Protocol.pin";
  if o.tied then invalid_arg "Protocol.pin: tied child cannot be pinned";
  o.pinned <- true;
  Ctx.charge_cycles ctx 10.0


(* ------------------------------------------------------------------ *)
(* Executable coherence audit (Appendix C).

   For every live owner, any cache entry reachable under the owner's
   CURRENT colored address must hold exactly the heap value — this is the
   Stale-Value-Elimination invariant: a copy cached under an old colored
   address can never be returned, and one cached under the current
   address is by construction up to date.  Returns human-readable
   violation descriptions (empty = coherent). *)
let audit cluster =
  prune_registry cluster;
  let violations = ref [] in
  let note fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  List.iter
    (fun o ->
      if o.valid && not (Borrow_state.is_dead o.borrow) then begin
        if not (Cluster.heap_mem cluster o.g) then
          (* A mutable borrow may legitimately hold the object mid-move;
             only settled owners are audited. *)
          (if not (Borrow_state.is_mut_borrowed o.borrow) then
             note "owner %s points at a dead heap slot"
               (Format.asprintf "%a" Gaddr.pp o.g))
        else begin
          let heap_value = (Cluster.heap_read cluster o.g).Partition.value in
          Array.iter
            (fun n ->
              match Cache.lookup n.Cluster.cache o.g with
              | Some copy ->
                  if
                    ((copy.Cache.value != heap_value)
                    [@dlint.allow
                      "determinism: staleness audit is exactly a physical \
                       identity check — a cached copy must alias the heap \
                       slot's value"])
                  then
                    note "node %d caches a stale value for %s" n.Cluster.id
                      (Format.asprintf "%a" Gaddr.pp o.g)
              | None -> ())
            (Cluster.nodes cluster)
        end
      end)
    (pstate_of_cluster cluster).ps_registry;
  List.rev !violations
