module Ctx = Drust_machine.Ctx
module Univ = Drust_util.Univ

type 'a t = { o : Protocol.owner; tag : 'a Univ.tag }

let make ctx ~tag ~size v =
  { o = Protocol.create ctx ~size (Univ.pack tag v); tag }

let make_on ctx ~node ~tag ~size v =
  { o = Protocol.create_on ctx ~node ~size (Univ.pack tag v); tag }

(* App-level attribution for the DSan sanitizer: tag the typed access
   with the Univ tag name before the protocol-level events fire, so a
   violation report can say which application object was involved. *)
let note ctx b verb =
  Protocol.note_app ctx ~g:(Protocol.gaddr b.o) ~verb ~tag:(Univ.tag_name b.tag)

let read ctx b =
  note ctx b "read";
  Univ.unpack_exn b.tag (Protocol.owner_read ctx b.o)

let write ctx b v =
  note ctx b "write";
  Protocol.owner_write ctx b.o (Univ.pack b.tag v)

let modify ctx b f =
  note ctx b "modify";
  Protocol.owner_modify ctx b.o (fun u ->
      Univ.pack b.tag (f (Univ.unpack_exn b.tag u)))

let owner b = b.o
let gaddr b = Protocol.gaddr b.o
let size b = Protocol.size b.o

let transfer ctx b ~to_node = Protocol.transfer ctx b.o ~to_node
let drop ctx b = Protocol.drop_owner ctx b.o

module Imm = struct
  type 'a r = { i : Protocol.imm; itag : 'a Univ.tag }

  let borrow ctx b = { i = Protocol.borrow_imm ctx b.o; itag = b.tag }
  let clone ctx r = { r with i = Protocol.clone_imm ctx r.i }
  let deref ctx r = Univ.unpack_exn r.itag (Protocol.imm_deref ctx r.i)
  let drop ctx r = Protocol.drop_imm ctx r.i
end

module Mut = struct
  type 'a r = { m : Protocol.mut; mtag : 'a Univ.tag }

  let borrow ctx b = { m = Protocol.borrow_mut ctx b.o; mtag = b.tag }
  let deref ctx r = Univ.unpack_exn r.mtag (Protocol.mut_read ctx r.m)
  let write ctx r v = Protocol.mut_write ctx r.m (Univ.pack r.mtag v)

  let modify ctx r f =
    Protocol.mut_modify ctx r.m (fun u ->
        Univ.pack r.mtag (f (Univ.unpack_exn r.mtag u)))

  let drop ctx r = Protocol.drop_mut ctx r.m
end

let with_borrow ctx b f =
  let r = Imm.borrow ctx b in
  match f (Imm.deref ctx r) with
  | v ->
      Imm.drop ctx r;
      v
  | exception e ->
      Imm.drop ctx r;
      raise e

let with_borrow_mut ctx b f =
  let m = Mut.borrow ctx b in
  match f (Mut.deref ctx m) with
  | new_value, result ->
      Mut.write ctx m new_value;
      Mut.drop ctx m;
      result
  | exception e ->
      Mut.drop ctx m;
      raise e

module Tbox = struct
  let tie ctx ~parent ~child = Protocol.tie ctx ~parent:parent.o ~child:child.o
  let pin ctx b = Protocol.pin ctx b.o
end
