module Ctx = Drust_machine.Ctx
module Cluster = Drust_machine.Cluster
module Gaddr = Drust_memory.Gaddr
module Dmutex = Drust_runtime.Dmutex
module Univ = Drust_util.Univ

type Dsm.handle += H of Gaddr.t
type Dsm.mutex += M of Dmutex.t

let unit_tag : unit Univ.tag = Univ.create_tag ~name:"local.mutex.unit"

let gaddr_of = function H g -> g | _ -> Dsm.foreign "local"
let mutex_of = function M m -> m | _ -> Dsm.foreign "local"

(* Ordinary Rust pointer dereference cost (Table 2). *)
let deref_cycles = 364.0

let create cluster =
  ignore cluster;
  {
    Dsm.name = "Original";
    alloc =
      (fun ctx ~size v ->
        Ctx.charge_cycles ctx 90.0;
        H (Cluster.heap_alloc (Ctx.cluster ctx) ~node:ctx.Ctx.node ~size v));
    alloc_on =
      (fun ctx ~node ~size v ->
        Ctx.charge_cycles ctx 90.0;
        H (Cluster.heap_alloc (Ctx.cluster ctx) ~node ~size v));
    read =
      (fun ctx h ->
        Ctx.charge_cycles ctx deref_cycles;
        (Cluster.heap_read (Ctx.cluster ctx) (gaddr_of h))
          .Drust_memory.Partition.value);
    write =
      (fun ctx h v ->
        Ctx.charge_cycles ctx deref_cycles;
        Cluster.heap_write (Ctx.cluster ctx) (gaddr_of h) v);
    update =
      (fun ctx h f ->
        Ctx.charge_cycles ctx (2.0 *. deref_cycles);
        let cluster = Ctx.cluster ctx in
        let g = gaddr_of h in
        Cluster.heap_write cluster g
          (f (Cluster.heap_read cluster g).Drust_memory.Partition.value));
    free =
      (fun ctx h ->
        Ctx.charge_cycles ctx 60.0;
        Cluster.heap_free (Ctx.cluster ctx) (gaddr_of h));
    read_part =
      (fun ctx h ~bytes:_ ->
        ignore (gaddr_of h);
        Ctx.charge_cycles ctx deref_cycles);
    process =
      (fun ctx h ~cycles ->
        Ctx.charge_cycles ctx deref_cycles;
        let v =
          (Cluster.heap_read (Ctx.cluster ctx) (gaddr_of h))
            .Drust_memory.Partition.value
        in
        Ctx.compute ctx ~cycles;
        v);
    process_update =
      (fun ctx h ~cycles f ->
        Ctx.charge_cycles ctx (2.0 *. deref_cycles);
        let cluster = Ctx.cluster ctx in
        let g = gaddr_of h in
        Cluster.heap_write cluster g
          (f (Cluster.heap_read cluster g).Drust_memory.Partition.value);
        Ctx.compute ctx ~cycles);
    home = (fun h -> Gaddr.node_of (gaddr_of h));
    tie = (fun _ctx ~parent:_ ~child:_ -> ());
    supports_affinity = false;
    mutex_create =
      (fun ctx -> M (Dmutex.create ctx ~size:8 (Univ.pack unit_tag ())));
    mutex_lock =
      (fun ctx m ->
        (Dmutex.lock ctx (mutex_of m)
        [@dlint.allow
          "ownership: vtable delegation — the Dsm API pairs lock/unlock at \
           the call site and DSan's lock_discipline invariant enforces it"]));
    mutex_unlock = (fun ctx m -> Dmutex.unlock ctx (mutex_of m));
  }
