module Ctx = Drust_machine.Ctx
module Cluster = Drust_machine.Cluster
module Protocol = Drust_core.Protocol
module Dmutex = Drust_runtime.Dmutex
module Gaddr = Drust_memory.Gaddr
module Univ = Drust_util.Univ

type Dsm.handle += H of Protocol.owner
type Dsm.mutex += M of Dmutex.t

let unit_tag : unit Univ.tag = Univ.create_tag ~name:"drust.mutex.unit"

let owner_of = function H o -> o | _ -> Dsm.foreign "drust"
let mutex_of = function M m -> m | _ -> Dsm.foreign "drust"

(* The Dsm interface lets applications race a reader against a writer on
   the same object (e.g. polling a shared index entry while its builder
   publishes it).  Under real DRust such code holds borrows for an
   instant each; when two instants collide, the loser simply borrows a
   moment later.  We model that by retrying the borrow after a short
   backoff when the dynamic checker reports a conflict. *)
let rec with_borrow_retry ctx tries f =
  match f () with
  | v -> v
  | exception Drust_ownership.Borrow_state.Violation _ when tries < 200_000 ->
      Drust_sim.Engine.delay (Ctx.engine ctx) 1e-6;
      with_borrow_retry ctx (tries + 1) f

let create cluster =
  ignore cluster;
  {
    Dsm.name = "DRust";
    alloc = (fun ctx ~size v -> H (Protocol.create ctx ~size v));
    alloc_on = (fun ctx ~node ~size v -> H (Protocol.create_on ctx ~node ~size v));
    read =
      (fun ctx h ->
        let o = owner_of h in
        with_borrow_retry ctx 0 (fun () ->
            let r = Protocol.borrow_imm ctx o in
            let v = Protocol.imm_deref ctx r in
            Protocol.drop_imm ctx r;
            v));
    write =
      (fun ctx h v ->
        let o = owner_of h in
        with_borrow_retry ctx 0 (fun () ->
            let m = Protocol.borrow_mut ctx o in
            Protocol.mut_write ctx m v;
            Protocol.drop_mut ctx m));
    update =
      (fun ctx h f ->
        let o = owner_of h in
        with_borrow_retry ctx 0 (fun () ->
            let m = Protocol.borrow_mut ctx o in
            Protocol.mut_modify ctx m f;
            Protocol.drop_mut ctx m));
    free = (fun ctx h -> Protocol.drop_owner ctx (owner_of h));
    read_part =
      (fun ctx h ~bytes:_ ->
        let o = owner_of h in
        with_borrow_retry ctx 0 (fun () ->
            let r = Protocol.borrow_imm ctx o in
            ignore (Protocol.imm_deref ctx r);
            Protocol.drop_imm ctx r));
    process =
      (fun ctx h ~cycles ->
        let o = owner_of h in
        let v =
          with_borrow_retry ctx 0 (fun () ->
              let r = Protocol.borrow_imm ctx o in
              let v = Protocol.imm_deref ctx r in
              Protocol.drop_imm ctx r;
              v)
        in
        Ctx.compute ctx ~cycles;
        v);
    process_update =
      (fun ctx h ~cycles f ->
        let o = owner_of h in
        with_borrow_retry ctx 0 (fun () ->
            let m = Protocol.borrow_mut ctx o in
            Protocol.mut_modify ctx m f;
            Protocol.drop_mut ctx m);
        Ctx.compute ctx ~cycles);
    home =
      (fun h ->
        let o = owner_of h in
        Gaddr.node_of (Protocol.gaddr o));
    tie =
      (fun ctx ~parent ~child ->
        Protocol.tie ctx ~parent:(owner_of parent) ~child:(owner_of child));
    supports_affinity = true;
    mutex_create =
      (fun ctx -> M (Dmutex.create ctx ~size:8 (Univ.pack unit_tag ())));
    mutex_lock =
      (fun ctx m ->
        (Dmutex.lock ctx (mutex_of m)
        [@dlint.allow
          "ownership: vtable delegation — the Dsm API pairs lock/unlock at \
           the call site and DSan's lock_discipline invariant enforces it"]));
    mutex_unlock = (fun ctx m -> Dmutex.unlock ctx (mutex_of m));
  }
