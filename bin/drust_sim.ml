(* CLI: run one application on one DSM system with a chosen node count.

   Examples:
     dune exec bin/drust_sim.exe -- --app kvstore --system drust --nodes 8
     dune exec bin/drust_sim.exe -- --app dataframe --system gam --nodes 4
     dune exec bin/drust_sim.exe -- --app gemm --scan-nodes 1,2,4,8 --jobs 4
     dune exec bin/drust_sim.exe -- --app gemm --nodes 4 --profile
     dune exec bin/drust_sim.exe -- --app gemm --nodes 4 --emit-plan p.json
     dune exec bin/drust_sim.exe -- --plan p.json

   A run's scenario can be saved as a SimPlan artifact (--emit-plan)
   and replayed byte-identically (--plan); docs/SIMPLAN.md has the
   schema.  drust_sim replays {e sim} plans (one cluster, one
   workload); suite plans belong to bench/main.exe --plan. *)

module B = Drust_experiments.Bench_setup
module Simplan = Drust_plan.Simplan
module Scenario = Drust_plan.Scenario
module Appkit = Drust_appkit.Appkit
open Cmdliner

let app_conv =
  Arg.enum
    [
      ("dataframe", B.Dataframe_app);
      ("socialnet", B.Socialnet_app);
      ("gemm", B.Gemm_app);
      ("kvstore", B.Kvstore_app);
    ]

let system_conv =
  Arg.enum
    [
      ("drust", B.Drust);
      ("gam", B.Gam);
      ("grappa", B.Grappa);
      ("original", B.Original);
    ]

let app_t =
  Arg.(value & opt app_conv B.Kvstore_app & info [ "a"; "app" ] ~doc:"Application")

let system_t =
  Arg.(value & opt system_conv B.Drust & info [ "s"; "system" ] ~doc:"DSM system")

let nodes = Arg.(value & opt int 8 & info [ "n"; "nodes" ] ~doc:"Cluster size")
let affinity = Arg.(value & flag & info [ "affinity" ] ~doc:"Enable TBox/spawn_to")
let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Deterministic seed")

let trace_n =
  Arg.(
    value & opt int 0
    & info [ "trace" ] ~doc:"Dump the last N trace events of an instrumented re-run")

let trace_out_t =
  Arg.(
    value & opt_all string []
    & info
        [ "trace-out"; "chrome-trace" ]
        ~docv:"FILE"
        ~doc:
          "Write a Chrome trace_event JSON (load it in Perfetto or \
           chrome://tracing) of an instrumented re-run to $(docv).  \
           $(b,--chrome-trace) is the historical spelling of the same \
           flag; giving both with different paths is an error (exit 2)")

let explain_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "explain" ] ~docv:"ADDR"
        ~doc:
          "After the run, reconstruct the per-object timeline of the \
           object at physical address $(docv) (decimal or 0x hex) from \
           the flight recorder's retained rings: creation, every \
           move/fetch, ownership transfers, epoch events")

let profile_t =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:
          "Re-run on an instrumented cluster and print the top-10 critical \
           paths: each protocol operation's end-to-end latency attributed to \
           queue/wire/serialize/protocol/compute segments (the throughput \
           numbers above stay unprofiled)")

let sanitize_t =
  Arg.(
    value & flag
    & info [ "sanitize" ]
        ~doc:
          "Attach the DSan shadow-state sanitizer to every cluster the run \
           creates and report any coherence/ownership invariant violations \
           (exit status 3 if any are found)")

let jobs_t =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Size of the domain pool used to fan out independent simulated \
           clusters (one cluster stays strictly single-domain).  Output is \
           byte-identical for every $(docv)")

let scan_nodes_t =
  Arg.(
    value
    & opt (some (list int)) None
    & info [ "scan-nodes" ] ~docv:"N,N,..."
        ~doc:
          "Instead of one run, sweep the app over these cluster sizes (one \
           independent cluster each, fanned out over --jobs domains) and \
           print a scaling table")

let plan_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "plan" ] ~docv:"FILE"
        ~doc:
          "Replay the sim plan in $(docv) instead of building one from the \
           CLI flags; output is byte-identical to the run that emitted it")

let emit_plan_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "emit-plan" ] ~docv:"FILE"
        ~doc:"Also write this run's SimPlan artifact to $(docv)")

let usage_error fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "drust_sim: %s\n" msg;
      exit 2)
    fmt

let report_sanitizer () =
  let module Dsan = Drust_check.Dsan in
  let total =
    List.fold_left
      (fun acc t -> acc + Dsan.violation_count t)
      0 (Dsan.attached ())
  in
  if total = 0 then
    Printf.printf "DSan: no invariant violations (%d cluster(s) checked)\n"
      (List.length (Dsan.attached ()))
  else begin
    List.iter
      (fun r -> prerr_endline (Dsan.report_to_string r))
      (Dsan.global_reports ());
    Printf.eprintf "DSan: %d invariant violation(s)\n" total;
    exit 3
  end

let scan app system affinity seed counts =
  let results =
    Drust_experiments.Parallel.map
      (fun nodes ->
        B.run_app ~affinity app system
          ~params:(B.testbed ~nodes ~seed ())
          ~pass_by_value:(system = B.Original))
      counts
  in
  Printf.printf "%s on %s, node scan:\n" (B.app_name app)
    (B.system_name system);
  Printf.printf "  %5s  %12s  %14s  %12s\n" "nodes" "ops" "elapsed (s)"
    "ops/s";
  List.iter2
    (fun nodes r ->
      Printf.printf "  %5d  %12.0f  %14.6f  %12.1f\n" nodes r.Appkit.ops
        r.Appkit.elapsed r.Appkit.throughput)
    counts results

let print_app_result ~name ~system ~nodes (r : Appkit.result) =
  Printf.printf "%s on %s, %d node(s):\n" name (Simplan.system_name system)
    nodes;
  Printf.printf "  ops        : %.0f\n" r.Appkit.ops;
  Printf.printf "  elapsed    : %.6f virtual s\n" r.Appkit.elapsed;
  Printf.printf "  throughput : %.1f ops/s\n" r.Appkit.throughput;
  List.iter (fun (k, v) -> Printf.printf "  %-10s : %.3f\n" k v) r.Appkit.extra

(* Replay a sim plan: one cluster, one workload, a local sanitizer when
   asked — the printed summary depends only on the plan, so replaying
   the artifact a run emitted reproduces that run's stdout exactly. *)
let run_plan ~file ~sanitize =
  let plan =
    match Simplan.load ~path:file with
    | Ok plan -> plan
    | Error e -> usage_error "--plan %s: %s" file e
  in
  (match Simplan.validate plan with
  | Ok () -> ()
  | Error errs ->
      usage_error "--plan %s: invalid plan: %s" file (String.concat "; " errs));
  let sim =
    match plan.Simplan.spec with
    | Simplan.Sim sim -> sim
    | Simplan.Suite _ ->
        usage_error
          "--plan %s is a suite plan; replay it with bench/main.exe --plan"
          file
  in
  let outcome = Simplan.execute ~sanitize plan in
  let nodes = sim.Simplan.topology.Simplan.nodes in
  (match outcome.Simplan.result with
  | Simplan.App_done { result; _ } ->
      let name =
        match sim.Simplan.workload with
        | Simplan.App_run { app; _ } -> Simplan.app_name app
        | Simplan.Ycsb_run { mix; _ } ->
            "kv-store/ycsb-" ^ Drust_workloads.Ycsb.workload_name mix
        | Simplan.Failover_kv _ | Simplan.Churn_kv _ -> assert false
      in
      print_app_result ~name ~system:sim.Simplan.system ~nodes result
  | Simplan.Failover_done r ->
      Printf.printf "failover plan %s, %d node(s):\n" plan.Simplan.name nodes;
      Printf.printf "  ops        : %d completed, %d failed\n"
        r.Scenario.total_ops r.Scenario.failed_ops;
      Printf.printf "  crash      : node %d at %.6f s\n" r.Scenario.victim
        r.Scenario.crash_time;
      (match r.Scenario.detection_time with
      | Some t -> Printf.printf "  detection  : %.6f s\n" t
      | None -> Printf.printf "  detection  : never\n");
      (match r.Scenario.recovery_time with
      | Some t -> Printf.printf "  recovery   : %.6f s\n" t
      | None -> Printf.printf "  recovery   : never\n")
  | Simplan.Churn_done r ->
      Printf.printf "churn plan %s, %d node(s):\n" plan.Simplan.name nodes;
      Printf.printf "  ops        : %d completed, %d failed\n"
        r.Scenario.total_ops r.Scenario.failed_ops;
      Printf.printf "  membership : %d joins, %d leaves, epoch %d\n"
        r.Scenario.joins r.Scenario.leaves r.Scenario.final_epoch;
      Printf.printf "  handoffs   : %d committed, %d aborted\n"
        r.Scenario.handoff_commits r.Scenario.handoff_aborts;
      Printf.printf "  integrity  : %d lost writes, %d unreadable keys\n"
        r.Scenario.lost_writes r.Scenario.unreadable_keys);
  if sanitize then begin
    match outcome.Simplan.violations with
    | [] -> Printf.printf "DSan: no invariant violations (1 cluster checked)\n"
    | vs ->
        List.iter prerr_endline vs;
        Printf.eprintf "DSan: %d invariant violation(s)\n" (List.length vs);
        exit 3
  end

let run app system nodes affinity seed trace_n trace_outs explain profile
    sanitize jobs scan_nodes plan_file emit_plan =
  if jobs < 1 then begin
    prerr_endline "drust_sim: --jobs expects a positive integer";
    exit 1
  end;
  let chrome_path =
    match List.sort_uniq String.compare trace_outs with
    | [] -> None
    | [ p ] -> Some p
    | p :: q :: _ ->
        usage_error "--trace-out %s conflicts with --trace-out %s" p q
  in
  let explain_addr =
    match explain with
    | None -> None
    | Some s -> (
        match int_of_string_opt s with
        | Some a when a >= 0 -> Some a
        | _ -> usage_error "--explain expects a physical address, got %S" s)
  in
  Drust_experiments.Parallel.set_default_jobs jobs;
  match plan_file with
  | Some file ->
      if scan_nodes <> None then
        usage_error "--plan does not combine with --scan-nodes";
      if emit_plan <> None then
        usage_error "--plan does not combine with --emit-plan";
      if trace_n > 0 || chrome_path <> None || profile || explain_addr <> None
      then usage_error "--plan does not combine with instrumentation flags";
      run_plan ~file ~sanitize
  | None ->
  if sanitize then Drust_check.Dsan.install_global ();
  match scan_nodes with
  | Some counts when counts <> [] ->
      if emit_plan <> None then
        usage_error "--emit-plan describes one run; drop --scan-nodes";
      scan app system affinity seed counts;
      if sanitize then report_sanitizer ()
  | _ ->
  let params = B.testbed ~nodes ~seed () in
  (match emit_plan with
  | None -> ()
  | Some file ->
      let plan =
        Simplan.app_plan ~affinity
          ~pass_by_value:(system = B.Original)
          ~params app system
      in
      Simplan.save ~path:file plan;
      Printf.eprintf "[drust_sim] plan written to %s\n%!" file);
  let t0 =
    (Unix.gettimeofday ()
    [@dlint.allow
      "determinism: human-facing wall-clock note, printed to stderr only — \
       stdout stays comparable across runs"])
  in
  (* With --trace the run is repeated on an instrumented cluster so the
     throughput numbers above stay untraced. *)
  let r =
    B.run_app ~affinity app system ~params ~pass_by_value:(system = B.Original)
  in
  print_app_result ~name:(B.app_name app) ~system ~nodes r;
  (* Wall-clock is machine-dependent: stderr, so stdout replays clean. *)
  Printf.eprintf "(wall-clock: %.2f s)\n"
    ((Unix.gettimeofday () -. t0)
    [@dlint.allow
      "determinism: human-facing wall-clock note, printed to stderr only — \
       stdout stays comparable across runs"]);
  if trace_n > 0 || chrome_path <> None || profile || explain_addr <> None
  then begin
    let module Cluster = Drust_machine.Cluster in
    let module Span = Drust_obs.Span in
    let cluster = Cluster.create params in
    let spans = Cluster.spans cluster in
    Span.enable spans;
    let backend = B.make_backend system cluster in
    (match app with
    | B.Dataframe_app ->
        ignore
          (Drust_dataframe.Dataframe.run ~cluster ~backend
             Drust_dataframe.Dataframe.default_config)
    | B.Socialnet_app ->
        ignore
          (Drust_socialnet.Socialnet.run ~cluster ~backend
             Drust_socialnet.Socialnet.default_config)
    | B.Gemm_app ->
        ignore (Drust_gemm.Gemm.run ~cluster ~backend Drust_gemm.Gemm.default_config)
    | B.Kvstore_app ->
        ignore
          (Drust_kvstore.Kvstore.run ~cluster ~backend
             Drust_kvstore.Kvstore.default_config));
    if trace_n > 0 then Format.printf "%a@." (Span.dump ~limit:trace_n) spans;
    if profile then begin
      Printf.printf "critical paths (top 10 operations by end-to-end latency):\n";
      print_string (Drust_obs.Critical_path.report ~k:10 (Span.events spans))
    end;
    (match explain_addr with
    | None -> ()
    | Some addr ->
        let module Flight = Drust_obs.Flight in
        let events = Flight.events (Cluster.flight cluster) in
        Printf.printf "object timeline for 0x%x (flight recorder):\n" addr;
        let lines = Flight.explain_object ~object_:addr events in
        if lines = [] then
          print_endline "  (no events about this object in the retained rings)"
        else List.iter (fun l -> Printf.printf "  %s\n" l) lines);
    match chrome_path with
    | Some path ->
        Drust_obs.Export.write_chrome_trace ~path spans;
        Printf.printf "wrote Chrome trace (%d events) to %s\n"
          (List.length (Span.events spans))
          path
    | None -> ()
  end;
  if sanitize then report_sanitizer ()

let cmd =
  Cmd.v
    (Cmd.info "drust_sim"
       ~doc:"Run a DRust evaluation application on the simulated cluster")
    Term.(
      const run $ app_t $ system_t $ nodes $ affinity $ seed $ trace_n
      $ trace_out_t $ explain_t $ profile_t $ sanitize_t $ jobs_t
      $ scan_nodes_t $ plan_t $ emit_plan_t)

let () = exit (Cmd.eval cmd)
