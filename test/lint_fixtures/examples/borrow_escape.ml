(* dlint fixture: a borrow escaping into a long-lived store. *)

let stash tbl o = Hashtbl.add tbl 0 (Own.borrow o)
