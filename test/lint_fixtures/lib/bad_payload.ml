(* dlint fixture: malformed and unknown-pass allow payloads. *)

let a = (ignore [@dlint.allow "no separator here"]) 0
let b = (ignore [@dlint.allow "nosuchpass: reason"]) 0
let c = (ignore [@dlint.allow "determinism:   "]) 0
