(* dlint fixture: process-global mutable state at module level.  The
   multi-line binding and the submodule binding are exactly the shapes
   the old regex lint could not see. *)

let cache =
  Hashtbl.create 64

module Inner = struct
  let pending = Queue.create ()
end
