(* dlint fixture: Dmutex.lock with no unlock in the same function. *)

let enter ctx m =
  Dmutex.lock ctx m;
  ignore ctx
