(* dlint fixture: one determinism violation per construct class. *)

let seed () = Random.self_init ()
let now () = Unix.gettimeofday ()
let dump f tbl = Hashtbl.iter f tbl
let order xs = List.sort compare xs
let digest x = Hashtbl.hash x
let same a b = a == b
let cast x = Obj.magic x
