(* dlint fixture: an allow that no longer suppresses anything. *)

let total xs =
  (List.fold_left ( + ) 0 xs
  [@dlint.allow "determinism: nothing nondeterministic left here"])
