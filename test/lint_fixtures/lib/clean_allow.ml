(* dlint fixture: a clean file whose single allow is exercised. *)

let dump f tbl =
  (Hashtbl.iter f tbl
  [@dlint.allow "determinism: fixture — iteration order irrelevant here"])
