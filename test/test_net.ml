(* Tests for the simulated RDMA fabric: verb latencies, cost model
   calibration, RPC handler semantics, and traffic counters. *)

module Engine = Drust_sim.Engine
module Model = Drust_net.Model
module Fabric = Drust_net.Fabric
module Rng = Drust_util.Rng

(* A fabric with jitter disabled so latencies are exact. *)
let quiet_fabric ?(nodes = 4) () =
  let engine = Engine.create () in
  let model = { Model.infiniband_40g with Model.jitter = 0.0 } in
  let fabric =
    Fabric.create ~engine ~rng:(Rng.create ~seed:1) ~model ~nodes ()
  in
  (engine, fabric)

let run_in engine body =
  let out = ref None in
  ignore (Engine.spawn engine (fun () -> out := Some (body ())));
  Engine.run engine;
  match !out with Some v -> v | None -> Alcotest.fail "no result"

let checkf epsilon = Alcotest.check (Alcotest.float epsilon)

(* ------------------------------------------------------------------ *)
(* Model calibration *)

let test_oneside_512b_is_3_6us () =
  (* The paper's S3 measurement: 512 B over the wire is 3.6 us. *)
  checkf 1e-8 "3.6us" 3.6e-6 (Model.oneside_time Model.infiniband_40g ~bytes:512)

let test_transfer_time_scales () =
  let m = Model.infiniband_40g in
  checkf 1e-9 "1MB at 5GB/s" 2.097152e-4
    (Model.transfer_time m ~bytes:(Drust_util.Units.mib 1))

let test_twoside_slower_than_oneside () =
  let m = Model.infiniband_40g in
  Alcotest.(check bool) "receiver CPU costs" true
    (Model.twoside_time m ~bytes:64 > Model.oneside_time m ~bytes:64)

(* ------------------------------------------------------------------ *)
(* Fabric verbs *)

let test_rdma_read_latency () =
  let engine, fabric = quiet_fabric () in
  let elapsed =
    run_in engine (fun () ->
        let t0 = Engine.now engine in
        Fabric.rdma_read fabric ~from:0 ~target:1 ~bytes:512;
        Engine.now engine -. t0)
  in
  checkf 1e-8 "read latency" 3.6e-6 elapsed

let test_local_verb_cheap () =
  let engine, fabric = quiet_fabric () in
  let elapsed =
    run_in engine (fun () ->
        let t0 = Engine.now engine in
        Fabric.rdma_read fabric ~from:2 ~target:2 ~bytes:512;
        Engine.now engine -. t0)
  in
  Alcotest.(check bool) "loopback ~0.25us" true (elapsed < 0.5e-6)

let test_rpc_runs_handler_and_returns () =
  let engine, fabric = quiet_fabric () in
  let v =
    run_in engine (fun () ->
        Fabric.rpc fabric ~from:0 ~target:3 ~req_bytes:64 ~resp_bytes:64
          (fun () -> 41 + 1))
  in
  Alcotest.(check int) "handler result" 42 v

let test_rpc_latency_includes_both_legs () =
  let engine, fabric = quiet_fabric () in
  let elapsed =
    run_in engine (fun () ->
        let t0 = Engine.now engine in
        ignore
          (Fabric.rpc fabric ~from:0 ~target:1 ~req_bytes:0 ~resp_bytes:0
             (fun () -> ()));
        Engine.now engine -. t0)
  in
  checkf 1e-8 "two one-way legs" 9.0e-6 elapsed

let test_rdma_atomic_executes_at_target () =
  let engine, fabric = quiet_fabric () in
  let cell = ref 0 in
  let old =
    run_in engine (fun () ->
        Fabric.rdma_atomic fabric ~from:0 ~target:1 (fun () ->
            let v = !cell in
            cell := v + 1;
            v))
  in
  Alcotest.(check int) "faa old" 0 old;
  Alcotest.(check int) "faa applied" 1 !cell

let test_write_async_completion () =
  let engine, fabric = quiet_fabric () in
  let landed = ref (-1.0) in
  ignore
    (Engine.spawn engine (fun () ->
         Fabric.rdma_write_async fabric ~from:0 ~target:1 ~bytes:64 (fun () ->
             landed := Engine.now engine);
         (* Caller was not blocked: *)
         Alcotest.(check bool) "not blocked" true (Engine.now engine < 1e-9)));
  Engine.run engine;
  Alcotest.(check bool) "completion fired later" true (!landed > 3e-6)

let test_send_async_handler_can_block () =
  let engine, fabric = quiet_fabric () in
  let done_ = ref false in
  ignore
    (Engine.spawn engine (fun () ->
         Fabric.send_async fabric ~from:0 ~target:1 ~bytes:32 (fun () ->
             (* Handlers run as processes: blocking is allowed. *)
             Engine.delay engine 1e-6;
             done_ := true)));
  Engine.run engine;
  Alcotest.(check bool) "handler completed" true !done_

let test_counters () =
  let engine, fabric = quiet_fabric () in
  run_in engine (fun () ->
      Fabric.rdma_read fabric ~from:0 ~target:1 ~bytes:100;
      Fabric.rdma_write fabric ~from:0 ~target:2 ~bytes:50;
      ignore
        (Fabric.rpc fabric ~from:0 ~target:1 ~req_bytes:10 ~resp_bytes:20
           (fun () -> ()));
      Fabric.rdma_read fabric ~from:0 ~target:0 ~bytes:10);
  let c = Fabric.counters_of fabric 0 in
  Alcotest.(check int) "reads" 2 c.Fabric.reads;
  Alcotest.(check int) "writes" 1 c.Fabric.writes;
  Alcotest.(check int) "rpcs" 1 c.Fabric.rpcs;
  Alcotest.(check int) "remote ops exclude loopback" 3 c.Fabric.remote_ops;
  Alcotest.(check int) "bytes" 190 c.Fabric.bytes_out;
  Fabric.reset_counters fabric;
  Alcotest.(check int) "reset" 0 (Fabric.counters_of fabric 0).Fabric.reads

let test_jitter_bounded () =
  let engine = Engine.create () in
  let fabric =
    Fabric.create ~engine ~rng:(Rng.create ~seed:3)
      ~model:Model.infiniband_40g ~nodes:2 ()
  in
  let base = Model.oneside_time Model.infiniband_40g ~bytes:512 in
  ignore
    (Engine.spawn engine (fun () ->
         for _ = 1 to 200 do
           let t0 = Engine.now engine in
           Fabric.rdma_read fabric ~from:0 ~target:1 ~bytes:512;
           let dt = Engine.now engine -. t0 in
           Alcotest.(check bool) "within clamp" true
             (dt >= 0.5 *. base && dt <= 2.0 *. base)
         done));
  Engine.run engine

let test_nic_egress_serializes_bulk () =
  let engine, fabric = quiet_fabric () in
  let finish = ref [] in
  (* Two 1 MiB reads pulling from the same node must queue at its NIC
     (~0.21 s of wire time each at 5 GB/s... scaled: 0.21 ms). *)
  for _ = 1 to 2 do
    ignore
      (Engine.spawn engine (fun () ->
           Fabric.rdma_read fabric ~from:0 ~target:1
             ~bytes:(Drust_util.Units.mib 1);
           finish := Engine.now engine :: !finish))
  done;
  Engine.run engine;
  let times = List.sort compare !finish in
  (match times with
  | [ first; second ] ->
      Alcotest.(check bool) "second waits for the wire" true
        (second -. first > 1.5e-4)
  | _ -> Alcotest.fail "expected two completions");
  (* Different sources do not contend. *)
  let engine2, fabric2 = quiet_fabric () in
  let finish2 = ref [] in
  List.iter
    (fun target ->
      ignore
        (Engine.spawn engine2 (fun () ->
             Fabric.rdma_read fabric2 ~from:0 ~target
               ~bytes:(Drust_util.Units.mib 1);
             finish2 := Engine.now engine2 :: !finish2)))
    [ 1; 2 ];
  Engine.run engine2;
  match List.sort compare !finish2 with
  | [ a; b ] ->
      Alcotest.(check bool) "parallel from distinct NICs" true (b -. a < 1e-5)
  | _ -> Alcotest.fail "expected two completions"

let test_small_messages_skip_nic () =
  let engine, fabric = quiet_fabric () in
  let finish = ref [] in
  for _ = 1 to 4 do
    ignore
      (Engine.spawn engine (fun () ->
           Fabric.rdma_read fabric ~from:0 ~target:1 ~bytes:64;
           finish := Engine.now engine :: !finish))
  done;
  Engine.run engine;
  (* All four complete at (virtually) the same time: no queuing. *)
  match (List.sort compare !finish : float list) with
  | first :: rest ->
      List.iter
        (fun t ->
          Alcotest.(check bool) "no serialization" true (t -. first < 1e-6))
        rest
  | [] -> Alcotest.fail "no completions"

(* Same-edge deliveries issued at one instant coalesce into a single
   queue entry when batching is on (the default), and the coalescing
   must be observationally invisible: identical callback order and
   timestamps, identical logical dispatch count — only the number of
   raw queue pushes shrinks. *)
let test_delivery_batching_identity () =
  let scenario ~batching =
    let engine, fabric = quiet_fabric () in
    Fabric.set_delivery_batching fabric batching;
    let log = ref [] in
    let note tag () = log := (tag, Engine.now engine) :: !log in
    ignore
      (Engine.spawn engine (fun () ->
           (* Ten writes on edge 0->1 at the same instant, with another
              edge and a send_async interleaved between them. *)
           for i = 0 to 4 do
             Fabric.rdma_write_async fabric ~from:0 ~target:1 ~bytes:256
               (note i)
           done;
           Fabric.rdma_write_async fabric ~from:2 ~target:3 ~bytes:256
             (note 100);
           Fabric.send_async fabric ~from:0 ~target:1 ~bytes:64 (note 200);
           for i = 5 to 9 do
             Fabric.rdma_write_async fabric ~from:0 ~target:1 ~bytes:256
               (note i)
           done));
    Engine.run engine;
    (List.rev !log, Engine.dispatched engine, Engine.pushes engine)
  in
  let log_on, dispatched_on, pushes_on = scenario ~batching:true in
  let log_off, dispatched_off, pushes_off = scenario ~batching:false in
  Alcotest.(check (list (pair int (float 0.0))))
    "same callbacks, order, and timestamps" log_off log_on;
  Alcotest.(check int) "same logical dispatch count" dispatched_off
    dispatched_on;
  Alcotest.(check bool)
    (Printf.sprintf "fewer queue pushes when batching (%d < %d)" pushes_on
       pushes_off)
    true (pushes_on < pushes_off)

let test_bad_node_rejected () =
  let engine, fabric = quiet_fabric () in
  ignore engine;
  Alcotest.(check bool) "out of range" true
    (try
       Fabric.rdma_read fabric ~from:0 ~target:9 ~bytes:1;
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "net"
    [
      ( "model",
        [
          Alcotest.test_case "512B = 3.6us" `Quick test_oneside_512b_is_3_6us;
          Alcotest.test_case "transfer scales" `Quick test_transfer_time_scales;
          Alcotest.test_case "twoside > oneside" `Quick test_twoside_slower_than_oneside;
        ] );
      ( "fabric",
        [
          Alcotest.test_case "read latency" `Quick test_rdma_read_latency;
          Alcotest.test_case "local verb" `Quick test_local_verb_cheap;
          Alcotest.test_case "rpc result" `Quick test_rpc_runs_handler_and_returns;
          Alcotest.test_case "rpc latency" `Quick test_rpc_latency_includes_both_legs;
          Alcotest.test_case "atomic" `Quick test_rdma_atomic_executes_at_target;
          Alcotest.test_case "write async" `Quick test_write_async_completion;
          Alcotest.test_case "send async blocks ok" `Quick test_send_async_handler_can_block;
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "jitter bounded" `Quick test_jitter_bounded;
          Alcotest.test_case "nic egress serializes" `Quick
            test_nic_egress_serializes_bulk;
          Alcotest.test_case "small msgs skip nic" `Quick
            test_small_messages_skip_nic;
          Alcotest.test_case "delivery batching identity" `Quick
            test_delivery_batching_identity;
          Alcotest.test_case "bad node" `Quick test_bad_node_rejected;
        ] );
    ]
