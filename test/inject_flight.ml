(* Seeded forensics injector for the @forensics CI alias.

   Runs a real protocol workload on a small cluster (create on node 0, a
   remote fetch caches a copy on node 1, a color-bump write strands it),
   then injects a stale-cache-read observation stream into a DSan
   sanitizer attached to the same cluster.  The violation makes the
   flight recorder auto-write <dir>/forensics-demo.flight.json; the
   alias then asserts the dump exists and that
   `bench/main.exe forensics <dump> --object <addr>` reconstructs the
   pinned timeline.

   Usage: inject_flight.exe DUMP_DIR
   Prints the offending physical address (hex) on stdout. *)

module Flight = Drust_obs.Flight
module Engine = Drust_sim.Engine
module Cluster = Drust_machine.Cluster
module Params = Drust_machine.Params
module Ctx = Drust_machine.Ctx
module P = Drust_core.Protocol
module Gaddr = Drust_memory.Gaddr
module Cache = Drust_memory.Cache
module Univ = Drust_util.Univ
module Dsan = Drust_check.Dsan

let int_tag : int Univ.tag = Univ.create_tag ~name:"int"
let pack = Univ.pack int_tag

let () =
  let dir =
    match Sys.argv with
    | [| _; dir |] -> dir
    | _ ->
        prerr_endline "usage: inject_flight.exe DUMP_DIR";
        exit 2
  in
  Flight.set_dump_dir (Some dir);
  let cluster =
    Cluster.create
      {
        Params.default with
        Params.nodes = 4;
        cores_per_node = 4;
        mem_per_node = Drust_util.Units.mib 64;
      }
  in
  let phys = ref 0 in
  ignore
    (Engine.spawn (Cluster.engine cluster) (fun () ->
         let fl = Cluster.flight cluster in
         Flight.set_label fl "forensics-demo";
         let ctx0 = Ctx.make cluster ~node:0 in
         let ctx1 = Ctx.make cluster ~node:1 in
         let o = P.create_on ctx0 ~node:0 ~size:64 (pack 1) in
         let r = P.borrow_imm ctx1 o in
         ignore (P.imm_deref ctx1 r);
         P.drop_imm ctx1 r;
         P.owner_write ctx0 o (pack 2);
         let g = P.gaddr o in
         phys := Gaddr.to_int (Gaddr.clear_color g);
         let t = Dsan.attach cluster in
         Fun.protect
           ~finally:(fun () -> Dsan.detach t)
           (fun () ->
             let g0 = Gaddr.clear_color g in
             let g1 = Gaddr.bump_color g0 in
             Dsan.observe_protocol t ~time:1e-5 ~node:0 ~thread:0
               (P.Ev_create { g = g0; size = 64 });
             Dsan.observe_cache t ~time:1.1e-5 ~node:1
               (Cache.Insert { key = g0; size = 64 });
             Dsan.observe_protocol t ~time:1.2e-5 ~node:0 ~thread:0
               (P.Ev_write
                  { before = g0; after = g1; size = 64; kind = P.W_bump });
             Dsan.observe_protocol t ~time:1.3e-5 ~node:1 ~thread:2
               (P.Ev_read { g = g1; path = P.Path_cache g0 });
             if Dsan.violations t = [] then begin
               prerr_endline
                 "inject_flight: sanitizer did not flag the injection";
               exit 1
             end)));
  Cluster.run cluster;
  let dump = Filename.concat dir "forensics-demo.flight.json" in
  if not (Sys.file_exists dump) then begin
    Printf.eprintf "inject_flight: no dump at %s\n" dump;
    exit 1
  end;
  Printf.printf "0x%x\n" !phys
